//===- tests/smt/FuzzTest.cpp - Differential SMT fuzzing -------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized differential testing of the SMT solver: generate random
/// quantifier-free formulas over booleans, linear Int arithmetic and
/// Int->Int / Int->Bool arrays from a seeded PRNG, run Solver::checkSat,
/// and cross-check every Sat answer by evaluating the original formula
/// under the produced Model via Model::evaluate. A Sat verdict whose model
/// does not satisfy the formula is a solver soundness bug.
///
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"
#include "smt/TermPrinter.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

using namespace ids;
using namespace ids::smt;

namespace {

/// Random QF formula generator over a fixed small vocabulary. Sizes are
/// kept small so 500+ instances solve well under the 10s budget.
class FormulaGen {
public:
  FormulaGen(TermManager &TM, std::mt19937 &Rng) : TM(TM), Rng(Rng) {
    for (int I = 0; I < 4; ++I)
      BoolVars.push_back(TM.mkVar("p" + std::to_string(I), TM.boolSort()));
    for (int I = 0; I < 4; ++I)
      IntVars.push_back(TM.mkVar("x" + std::to_string(I), TM.intSort()));
    const Sort *IntInt = TM.getArraySort(TM.intSort(), TM.intSort());
    const Sort *IntBool = TM.getArraySort(TM.intSort(), TM.boolSort());
    for (int I = 0; I < 2; ++I)
      ArrVars.push_back(TM.mkVar("a" + std::to_string(I), IntInt));
    SetVars.push_back(TM.mkVar("s0", IntBool));
  }

  TermRef boolFormula(unsigned Depth) {
    if (Depth == 0)
      return boolLeaf();
    switch (pick(8)) {
    case 0:
      return TM.mkNot(boolFormula(Depth - 1));
    case 1:
      return TM.mkAnd(boolFormula(Depth - 1), boolFormula(Depth - 1));
    case 2:
      return TM.mkOr(boolFormula(Depth - 1), boolFormula(Depth - 1));
    case 3:
      return TM.mkImplies(boolFormula(Depth - 1), boolFormula(Depth - 1));
    case 4:
      return TM.mkEq(boolFormula(Depth - 1), boolFormula(Depth - 1));
    case 5:
      return TM.mkIte(boolFormula(Depth - 1), boolFormula(Depth - 1),
                      boolFormula(Depth - 1));
    case 6:
      return intAtom(Depth - 1);
    default:
      return setAtom(Depth - 1);
    }
  }

private:
  // Drawn from the raw engine rather than uniform_int_distribution: the
  // distribution's mapping is implementation-defined, and the corpus (and
  // the verdict-count thresholds below) must reproduce identically on
  // every standard library. Modulo bias is irrelevant for fuzzing.
  unsigned pick(unsigned N) { return Rng() % N; }

  TermRef boolLeaf() {
    switch (pick(4)) {
    case 0:
      return TM.mkBool(pick(2) == 0);
    case 1:
      return intAtom(0);
    default:
      return BoolVars[pick(BoolVars.size())];
    }
  }

  TermRef intTerm(unsigned Depth) {
    if (Depth == 0)
      return intLeaf();
    switch (pick(5)) {
    case 0:
      return TM.mkAdd(intTerm(Depth - 1), intTerm(Depth - 1));
    case 1:
      return TM.mkSub(intTerm(Depth - 1), intTerm(Depth - 1));
    case 2:
      return TM.mkMulConst(Rational(BigInt(int64_t(pick(7)) - 3)),
                           intTerm(Depth - 1));
    case 3:
      return TM.mkSelect(arrTerm(Depth - 1), intTerm(Depth - 1));
    default:
      return intLeaf();
    }
  }

  TermRef intLeaf() {
    if (pick(2) == 0)
      return TM.mkIntConst(int64_t(pick(9)) - 4);
    return IntVars[pick(IntVars.size())];
  }

  TermRef arrTerm(unsigned Depth) {
    if (Depth == 0 || pick(3) == 0)
      return ArrVars[pick(ArrVars.size())];
    return TM.mkStore(arrTerm(Depth - 1), intTerm(Depth - 1),
                      intTerm(Depth - 1));
  }

  TermRef setTerm(unsigned Depth) {
    if (Depth == 0 || pick(3) == 0) {
      if (pick(3) == 0)
        return TM.mkEmptySet(TM.intSort());
      return SetVars[pick(SetVars.size())];
    }
    switch (pick(4)) {
    case 0:
      return TM.mkSetUnion(setTerm(Depth - 1), setTerm(Depth - 1));
    case 1:
      return TM.mkSetIntersect(setTerm(Depth - 1), setTerm(Depth - 1));
    case 2:
      return TM.mkSetMinus(setTerm(Depth - 1), setTerm(Depth - 1));
    default:
      return TM.mkSetInsert(setTerm(Depth - 1), intTerm(Depth - 1));
    }
  }

  TermRef intAtom(unsigned Depth) {
    TermRef A = intTerm(Depth), B = intTerm(Depth);
    switch (pick(3)) {
    case 0:
      return TM.mkLe(A, B);
    case 1:
      return TM.mkLt(A, B);
    default:
      return TM.mkEq(A, B);
    }
  }

  TermRef setAtom(unsigned Depth) {
    switch (pick(3)) {
    case 0:
      return TM.mkMember(intTerm(Depth), setTerm(Depth));
    case 1:
      return TM.mkSubset(setTerm(Depth), setTerm(Depth));
    default:
      return TM.mkEq(setTerm(Depth), setTerm(Depth));
    }
  }

  TermManager &TM;
  std::mt19937 &Rng;
  std::vector<TermRef> BoolVars, IntVars, ArrVars, SetVars;
};

/// Runs \p Iters random formulas at \p Depth through a fresh solver each,
/// cross-checking every Sat model. Returns {sat, unsat, unknown} counts.
struct Counts {
  unsigned Sat = 0, Unsat = 0, Unknown = 0;
};

Counts runDifferential(uint32_t Seed, unsigned Iters, unsigned Depth) {
  std::mt19937 Rng(Seed);
  Counts C;
  for (unsigned I = 0; I < Iters; ++I) {
    TermManager TM;
    FormulaGen Gen(TM, Rng);
    TermRef F = Gen.boolFormula(Depth);

    Solver::Options Opts;
    Opts.MaxTheoryChecks = 20000; // bound pathological instances
    Solver S(TM, Opts);
    Solver::Result R = S.checkSat(F);
    switch (R) {
    case Solver::Result::Sat: {
      ++C.Sat;
      Value V = S.model().evaluate(F);
      EXPECT_EQ(V.K, Value::Kind::Bool)
          << "model evaluation of a Bool formula produced a non-Bool value "
          << "(seed " << Seed << ", iter " << I << ")\n"
          << printTerm(F);
      EXPECT_TRUE(V.B) << "solver said Sat but its model refutes the "
                       << "formula (seed " << Seed << ", iter " << I << ")\n"
                       << printTerm(F) << "\nmodel:\n"
                       << S.model().toString();
      break;
    }
    case Solver::Result::Unsat:
      ++C.Unsat;
      break;
    case Solver::Result::Unknown:
      ++C.Unknown;
      break;
    }
  }
  return C;
}

TEST(SmtFuzzTest, DifferentialShallow) {
  Counts C = runDifferential(/*Seed=*/0xC0FFEE, /*Iters=*/300, /*Depth=*/3);
  // The generator must exercise both verdicts, otherwise it is too easy.
  EXPECT_GT(C.Sat, 25u);
  EXPECT_GT(C.Unsat, 15u);
}

TEST(SmtFuzzTest, DifferentialDeep) {
  Counts C = runDifferential(/*Seed=*/0xDECAF, /*Iters=*/200, /*Depth=*/4);
  EXPECT_GT(C.Sat + C.Unsat, 150u);
}

TEST(SmtFuzzTest, DifferentialArrayHeavy) {
  // A third seed, biased deeper, to stress the array reduction paths.
  Counts C = runDifferential(/*Seed=*/0xBADF00D, /*Iters=*/100, /*Depth=*/5);
  EXPECT_GT(C.Sat + C.Unsat, 60u);
}

} // namespace
