# Warm-cache double-run test. Invoked by ctest as
#   cmake -DIDS_VERIFY=<exe> -DWORKDIR=<dir> -P RunWarmCache.cmake
#
# Runs `--benchmark all --cache-dir <d>` twice against the same fresh
# cache directory and checks the acceptance criterion for the persistent
# cache: both runs exit 0 with identical verdicts, and the second run
# replays procedure verdicts from disk (proc hits > 0). A third run with
# --no-reverify-cache forces every procedure to re-solve and must then
# hit the persisted per-query outcomes instead (disk query hits > 0).

if(NOT DEFINED IDS_VERIFY OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "usage: cmake -DIDS_VERIFY=... -DWORKDIR=... -P RunWarmCache.cmake")
endif()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")
set(CacheDir "${WORKDIR}/cache")

# Normalizes a run for verdict comparison: timings vary, and the cache
# summary line legitimately differs between cold and warm runs. Works on
# the whole string — no line-list conversion, since the summary line
# itself contains a semicolon and would split mid-line.
function(normalize InVar OutVar)
  set(S "${${InVar}}")
  string(REGEX REPLACE "cache summary:[^\n]*" "" S "${S}")
  string(REGEX REPLACE "[0-9]+\\.[0-9]+s" "<time>" S "${S}")
  string(REGEX REPLACE "  +" " " S "${S}")
  set(${OutVar} "${S}" PARENT_SCOPE)
endfunction()

foreach(Run 1 2)
  execute_process(
    COMMAND "${IDS_VERIFY}" --benchmark all --cache-dir "${CacheDir}"
    OUTPUT_VARIABLE Out${Run}
    ERROR_VARIABLE Err${Run}
    RESULT_VARIABLE Exit${Run})
  if(NOT Exit${Run} EQUAL 0)
    message(FATAL_ERROR "run ${Run} exited ${Exit${Run}}\n${Out${Run}}\n"
            "${Err${Run}}")
  endif()
endforeach()

normalize(Out1 Norm1)
normalize(Out2 Norm2)
if(NOT Norm1 STREQUAL Norm2)
  message(FATAL_ERROR "warm run changed verdicts\n--- cold ---\n${Norm1}\n"
          "--- warm ---\n${Norm2}")
endif()

# Run 2 must actually have used the disk cache.
if(NOT Out2 MATCHES "([0-9]+) proc hits")
  message(FATAL_ERROR "no cache summary in warm run output\n${Out2}")
endif()
set(ProcHits ${CMAKE_MATCH_1})
if(ProcHits EQUAL 0)
  message(FATAL_ERROR "warm run replayed no procedure verdicts\n${Out2}")
endif()
message(STATUS "warm run replayed ${ProcHits} procedure verdicts")

# With verdict replay disabled, the persisted per-query outcomes take
# over: every re-solved query must hit the disk-loaded entries.
execute_process(
  COMMAND "${IDS_VERIFY}" --benchmark all --cache-dir "${CacheDir}"
          --no-reverify-cache
  OUTPUT_VARIABLE Out3
  ERROR_VARIABLE Err3
  RESULT_VARIABLE Exit3)
if(NOT Exit3 EQUAL 0)
  message(FATAL_ERROR "no-reverify-cache run exited ${Exit3}\n${Out3}\n${Err3}")
endif()
normalize(Out3 Norm3)
if(NOT Norm1 STREQUAL Norm3)
  message(FATAL_ERROR "re-solve run changed verdicts\n--- cold ---\n${Norm1}\n"
          "--- re-solve ---\n${Norm3}")
endif()
if(NOT Out3 MATCHES "\\(([0-9]+) disk\\)")
  message(FATAL_ERROR "no disk-hit count in cache summary\n${Out3}")
endif()
if(CMAKE_MATCH_1 EQUAL 0)
  message(FATAL_ERROR "re-solve run hit no persisted query outcomes\n${Out3}")
endif()
message(STATUS "re-solve run hit ${CMAKE_MATCH_1} persisted query outcomes")

file(REMOVE_RECURSE "${WORKDIR}")
