//===- structures/CircularList.cpp - Circular list benchmark ---------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Circular singly-linked lists via a scaffold: every node names the
/// circle's distinguished last node (`last`), and a rational rank strictly
/// decreases along `next` until the last node is reached — the scaffold is
/// the acyclic list obtained by cutting the circle behind `last`. Ranks
/// are order-dense, so insertion picks a rank strictly between its
/// neighbours and no other node's ghost state changes (an exact distance
/// map would shift globally on every insert).
///
//===----------------------------------------------------------------------===//

#include "structures/Sources.h"

const char *ids::structures::CircularListSource = R"IDS(
structure CircularList {
  field next: Loc;
  field key: int;
  ghost field prev: Loc;
  ghost field last: Loc;
  ghost field rank: rat;

  // Every node is on a circle: next never dangles, the inverse pointer
  // closes, the scaffold pointer `last` is shared with the successor, and
  // ranks strictly decrease until the last node (acyclicity of the cut
  // list: a cycle avoiding `last` would need rank < itself).
  local c (x) {
    x.next != nil && x.last != nil
    && x.next.prev == x
    && x.next.last == x.last
    && (x.prev != nil ==> x.prev.next == x)
    && (x != x.last ==> x.rank > x.next.rank)
  }

  correlation (y) { y.last == y }

  impact next [c] { x, old(x.next) }
  impact prev [c] { x, old(x.prev) }
  impact last [c] { x, x.prev }
  impact rank [c] { x, x.prev }
}

// Rotating a circular list is just stepping the entry point.
procedure rotate(x: Loc) returns (h: Loc)
  requires br(c) == {}
  requires x != nil
  ensures  br(c) == {}
  ensures  h == old(x.next) && h != nil
  ensures  h.last == old(x.last)
{
  InferLCOutsideBr(c, x);
  h := x.next;
}

// Splice a fresh node between x and its successor. The new rank is the
// midpoint of the neighbours' ranks — or one past the head's rank when
// inserting behind the last node (where no upper bound constrains it).
procedure insert_after(x: Loc, k: int) returns (z: Loc)
  requires br(c) == {}
  requires x != nil
  ensures  br(c) == {}
  ensures  z != nil && z != x
  ensures  x.next == z && z.next == old(x.next)
  ensures  z.key == k && z.last == old(x.last)
  modifies {x, x.next}
{
  var y: Loc;
  InferLCOutsideBr(c, x);
  y := x.next;
  InferLCOutsideBr(c, y);
  NewObj(z);
  Mut(z.key, k);
  Mut(z.next, y);
  Mut(x.next, z);
  ghost {
    Mut(y.prev, z);
    Mut(z.prev, x);
    Mut(z.last, x.last);
    Mut(z.rank, ite(x == x.last, y.rank + 1, (x.rank + y.rank) / 2));
  }
  AssertLCAndRemove(c, z);
  AssertLCAndRemove(c, y);
  AssertLCAndRemove(c, x);
}
)IDS";
