//===- pipeline/QueryCache.h - Structural query result cache ---*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Caches solver outcomes per query formula across procedures and
/// impact checks, keyed by the interned terms' structural DAG hash
/// (128-bit, manager-independent: two queries built in different
/// TermManagers hit the same entry iff they are structurally identical,
/// up to the negligible 2^-128 collision odds of the hash pair). The
/// hash is computed incrementally at term-interning time, so keying a
/// query is O(1) — this replaced a canonical-string serialization that
/// rebuilt an O(formula-size) key on every lookup. The cache stores the
/// raw solver outcome — Sat with model text, or Unsat — never an
/// obligation verdict, so entries stay valid regardless of which
/// obligation (sliced or not) produced the query. Unknown outcomes are
/// NEVER stored: an Unknown is a property of the (budget, timeout) that
/// produced it, not of the query, and replaying one under a larger
/// budget would weaken verdicts (and poison a persisted cache for every
/// later run).
///
/// The cache can be disk-backed (`attachDir`): entries load from a
/// versioned append-only file at startup and every later insert is
/// appended immediately, so verdict reuse survives the process — the
/// persistence layer behind `--cache-dir` and serve mode. Sat/Unsat
/// outcomes are budget-independent, which is exactly what makes them
/// safe to replay across runs with different budgets. Thread-safe;
/// shared by all scheduler workers.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_PIPELINE_QUERYCACHE_H
#define IDS_PIPELINE_QUERYCACHE_H

#include "smt/Solver.h"
#include "smt/Term.h"

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>

namespace ids {
namespace pipeline {

class QueryCache {
public:
  struct Outcome {
    smt::Solver::Result R = smt::Solver::Result::Unknown;
    std::string ModelText; ///< countermodel when R == Sat
    unsigned NumAtoms = 0;
    unsigned NumArrayLemmas = 0;
  };

  /// 128-bit structural key of a query DAG.
  struct Key {
    uint64_t Lo = 0;
    uint64_t Hi = 0;
    bool operator==(const Key &O) const { return Lo == O.Lo && Hi == O.Hi; }
    bool operator!=(const Key &O) const { return !(*this == O); }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      return static_cast<size_t>(K.Lo ^ (K.Hi * 0x9e3779b97f4a7c15ull));
    }
  };

  /// Cross-run persistence counters (all zero while memory-only).
  struct DiskStats {
    size_t LoadedFromDisk = 0; ///< entries read at attachDir time
    uint64_t Lookups = 0;      ///< lookup() calls
    uint64_t Hits = 0;         ///< lookup() calls that found an entry
    uint64_t DiskHits = 0;     ///< hits on entries loaded from disk
    uint64_t Appended = 0;     ///< entries appended to the backing file
  };

  QueryCache() = default;
  ~QueryCache();
  QueryCache(const QueryCache &) = delete;
  QueryCache &operator=(const QueryCache &) = delete;

  /// O(1): reads the structural hash computed when the term was interned.
  static Key keyFor(smt::TermRef Query) {
    return {Query->getStructHashLo(), Query->getStructHashHi()};
  }

  bool lookup(const Key &K, Outcome &Out) const;

  /// Inserts a definitive outcome. Unknown outcomes are rejected (see the
  /// file comment): callers may pass them, but they are dropped here so no
  /// code path can poison the cache.
  void insert(const Key &K, Outcome O);
  size_t size() const;

  /// Attaches an on-disk backing file `queries.v1` inside \p Dir (created
  /// if missing): existing entries are loaded now, later inserts append
  /// and flush immediately. A file with an unrecognized header (format
  /// version bump) is discarded and rewritten — it is a cache. Returns
  /// false with \p Error set when the directory or file is unusable.
  bool attachDir(const std::string &Dir, std::string &Error);

  DiskStats diskStats() const;

  /// On-disk format version tag; bump when the record layout changes.
  static constexpr const char *FileHeader = "IDSQC v1";
  static constexpr const char *FileName = "queries.v1";

private:
  struct Entry {
    Outcome O;
    bool FromDisk = false;
  };

  void appendLocked(const Key &K, const Outcome &O);
  size_t loadLocked(std::FILE *F);

  mutable std::mutex Mutex;
  std::unordered_map<Key, Entry, KeyHash> Map;
  std::FILE *Append = nullptr; ///< open append handle when disk-backed
  mutable DiskStats Stats; ///< lookup counters mutate under the mutex
};

} // namespace pipeline
} // namespace ids

#endif // IDS_PIPELINE_QUERYCACHE_H
