//===- smt/Model.cpp - Models and term evaluation --------------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "smt/Model.h"

#include <algorithm>

using namespace ids;
using namespace ids::smt;

Value Value::ofBool(bool V) {
  Value R;
  R.K = Kind::Bool;
  R.B = V;
  return R;
}
Value Value::ofInt(BigInt V) {
  Value R;
  R.K = Kind::Int;
  R.I = std::move(V);
  return R;
}
Value Value::ofRat(Rational V) {
  Value R;
  R.K = Kind::Rat;
  R.R = std::move(V);
  return R;
}
Value Value::ofLoc(int64_t Id) {
  Value R;
  R.K = Kind::Loc;
  R.Loc = Id;
  return R;
}
Value Value::ofArray(std::shared_ptr<const ArrayValue> A) {
  Value R;
  R.K = Kind::Array;
  R.Arr = std::move(A);
  return R;
}

int Value::compare(const Value &RHS) const {
  if (K != RHS.K)
    return K < RHS.K ? -1 : 1;
  switch (K) {
  case Kind::Bool:
    return B == RHS.B ? 0 : (B ? 1 : -1);
  case Kind::Int:
    return I.compare(RHS.I);
  case Kind::Rat:
    return R.compare(RHS.R);
  case Kind::Loc:
    return Loc == RHS.Loc ? 0 : (Loc < RHS.Loc ? -1 : 1);
  case Kind::Array:
    return Arr->compare(*RHS.Arr);
  }
  return 0;
}

std::string Value::toString() const {
  switch (K) {
  case Kind::Bool:
    return B ? "true" : "false";
  case Kind::Int:
    return I.toString();
  case Kind::Rat:
    return R.toString();
  case Kind::Loc:
    return Loc == 0 ? "nil" : "loc!" + std::to_string(Loc);
  case Kind::Array:
    return Arr->toString();
  }
  return "<bad-value>";
}

int ArrayValue::compare(const ArrayValue &RHS) const {
  int C = Default.compare(RHS.Default);
  if (C != 0)
    return C;
  // Normalised entries: direct lexicographic map comparison.
  auto It1 = Entries.begin(), It2 = RHS.Entries.begin();
  while (It1 != Entries.end() && It2 != RHS.Entries.end()) {
    C = It1->first.compare(It2->first);
    if (C != 0)
      return C;
    C = It1->second.compare(It2->second);
    if (C != 0)
      return C;
    ++It1;
    ++It2;
  }
  if (It1 != Entries.end())
    return 1;
  if (It2 != RHS.Entries.end())
    return -1;
  return 0;
}

std::string ArrayValue::toString() const {
  std::string S = "{";
  bool First = true;
  for (const auto &[K, V] : Entries) {
    if (!First)
      S += ", ";
    First = false;
    S += K.toString() + "->" + V.toString();
  }
  S += "; default " + Default.toString() + "}";
  return S;
}

Value Model::defaultFor(const Sort *S) {
  switch (S->getKind()) {
  case SortKind::Bool:
    return Value::ofBool(false);
  case SortKind::Int:
    return Value::ofInt(BigInt(0));
  case SortKind::Rat:
    return Value::ofRat(Rational(0));
  case SortKind::Uninterpreted:
    return Value::ofLoc(0);
  case SortKind::Array: {
    auto A = std::make_shared<ArrayValue>();
    A->Default = defaultFor(S->getValue());
    return Value::ofArray(std::move(A));
  }
  }
  return Value::ofBool(false);
}

Value Model::eval(TermRef T) const {
  std::unordered_map<TermRef, Value> Cache;
  return evalImpl(T, Cache);
}

/// Inserts an entry, keeping the no-default-entries normalisation.
static void setEntry(ArrayValue &A, Value Key, Value Val) {
  if (Val == A.Default)
    A.Entries.erase(Key);
  else
    A.Entries[std::move(Key)] = std::move(Val);
}

Value Model::evalImpl(TermRef T,
                      std::unordered_map<TermRef, Value> &Cache) const {
  auto CIt = Cache.find(T);
  if (CIt != Cache.end())
    return CIt->second;

  auto Rec = [&](TermRef S) { return evalImpl(S, Cache); };
  Value Result;
  switch (T->getKind()) {
  case TermKind::True:
    Result = Value::ofBool(true);
    break;
  case TermKind::False:
    Result = Value::ofBool(false);
    break;
  case TermKind::IntConst:
    Result = Value::ofInt(T->getIntValue());
    break;
  case TermKind::RatConst:
    Result = Value::ofRat(T->getRatValue());
    break;
  case TermKind::Var:
  case TermKind::Apply: {
    auto It = Base.find(T);
    Result = It != Base.end() ? It->second : defaultFor(T->getSort());
    break;
  }
  case TermKind::Not:
    Result = Value::ofBool(!Rec(T->getArg(0)).B);
    break;
  case TermKind::And: {
    bool B = true;
    for (TermRef A : T->getArgs())
      B = B && Rec(A).B;
    Result = Value::ofBool(B);
    break;
  }
  case TermKind::Or: {
    bool B = false;
    for (TermRef A : T->getArgs())
      B = B || Rec(A).B;
    Result = Value::ofBool(B);
    break;
  }
  case TermKind::Implies: {
    Result = Value::ofBool(!Rec(T->getArg(0)).B || Rec(T->getArg(1)).B);
    break;
  }
  case TermKind::Ite:
    Result = Rec(T->getArg(0)).B ? Rec(T->getArg(1)) : Rec(T->getArg(2));
    break;
  case TermKind::Eq:
    Result = Value::ofBool(Rec(T->getArg(0)) == Rec(T->getArg(1)));
    break;
  case TermKind::Add: {
    const Sort *S = T->getSort();
    if (S->isInt()) {
      BigInt Sum(0);
      for (TermRef A : T->getArgs())
        Sum += Rec(A).I;
      Result = Value::ofInt(std::move(Sum));
    } else {
      Rational Sum;
      for (TermRef A : T->getArgs())
        Sum += Rec(A).R;
      Result = Value::ofRat(std::move(Sum));
    }
    break;
  }
  case TermKind::Mul: {
    Value C = Rec(T->getArg(0));
    Value V = Rec(T->getArg(1));
    if (T->getSort()->isInt())
      Result = Value::ofInt(C.I * V.I);
    else
      Result = Value::ofRat(C.R * V.R);
    break;
  }
  case TermKind::Le: {
    Value A = Rec(T->getArg(0)), B = Rec(T->getArg(1));
    if (A.K == Value::Kind::Int)
      Result = Value::ofBool(A.I <= B.I);
    else
      Result = Value::ofBool(A.R <= B.R);
    break;
  }
  case TermKind::Lt: {
    Value A = Rec(T->getArg(0)), B = Rec(T->getArg(1));
    if (A.K == Value::Kind::Int)
      Result = Value::ofBool(A.I < B.I);
    else
      Result = Value::ofBool(A.R < B.R);
    break;
  }
  case TermKind::Select: {
    Value A = Rec(T->getArg(0));
    Value I = Rec(T->getArg(1));
    auto It = A.Arr->Entries.find(I);
    Result = It != A.Arr->Entries.end() ? It->second : A.Arr->Default;
    break;
  }
  case TermKind::Store: {
    Value A = Rec(T->getArg(0));
    auto New = std::make_shared<ArrayValue>(*A.Arr);
    setEntry(*New, Rec(T->getArg(1)), Rec(T->getArg(2)));
    Result = Value::ofArray(std::move(New));
    break;
  }
  case TermKind::ConstArray: {
    auto New = std::make_shared<ArrayValue>();
    New->Default = Rec(T->getArg(0));
    Result = Value::ofArray(std::move(New));
    break;
  }
  case TermKind::MapOr:
  case TermKind::MapAnd:
  case TermKind::MapDiff: {
    Value A = Rec(T->getArg(0)), B = Rec(T->getArg(1));
    auto Combine = [&](bool X, bool Y) {
      switch (T->getKind()) {
      case TermKind::MapOr:
        return X || Y;
      case TermKind::MapAnd:
        return X && Y;
      default:
        return X && !Y;
      }
    };
    auto New = std::make_shared<ArrayValue>();
    New->Default = Value::ofBool(Combine(A.Arr->Default.B, B.Arr->Default.B));
    auto Lookup = [](const ArrayValue &Arr, const Value &Key) {
      auto It = Arr.Entries.find(Key);
      return It != Arr.Entries.end() ? It->second.B : Arr.Default.B;
    };
    for (const auto &[K, V] : A.Arr->Entries)
      setEntry(*New, K, Value::ofBool(Combine(V.B, Lookup(*B.Arr, K))));
    for (const auto &[K, V] : B.Arr->Entries)
      if (!A.Arr->Entries.count(K))
        setEntry(*New, K, Value::ofBool(Combine(A.Arr->Default.B, V.B)));
    Result = Value::ofArray(std::move(New));
    break;
  }
  case TermKind::PwIte: {
    Value G = Rec(T->getArg(0));
    Value A = Rec(T->getArg(1));
    Value B = Rec(T->getArg(2));
    auto GuardAt = [&](const Value &Key) {
      auto It = G.Arr->Entries.find(Key);
      return It != G.Arr->Entries.end() ? It->second.B : G.Arr->Default.B;
    };
    auto At = [](const ArrayValue &Arr, const Value &Key) {
      auto It = Arr.Entries.find(Key);
      return It != Arr.Entries.end() ? It->second : Arr.Default;
    };
    auto New = std::make_shared<ArrayValue>();
    New->Default = G.Arr->Default.B ? A.Arr->Default : B.Arr->Default;
    // Keys with explicit entries anywhere.
    std::map<Value, bool> Keys;
    for (const auto &[K, V] : G.Arr->Entries)
      Keys.emplace(K, true);
    for (const auto &[K, V] : A.Arr->Entries)
      Keys.emplace(K, true);
    for (const auto &[K, V] : B.Arr->Entries)
      Keys.emplace(K, true);
    for (const auto &[K, Unused] : Keys)
      setEntry(*New, K, GuardAt(K) ? At(*A.Arr, K) : At(*B.Arr, K));
    Result = Value::ofArray(std::move(New));
    break;
  }
  case TermKind::Forall:
    assert(false && "cannot evaluate quantified terms");
    Result = Value::ofBool(true);
    break;
  }
  Cache.emplace(T, Result);
  return Result;
}

std::string Model::toString() const {
  // Sort by name for stable output.
  std::vector<std::pair<std::string, std::string>> Lines;
  for (const auto &[T, V] : Base) {
    if (T->getKind() == TermKind::Var)
      Lines.emplace_back(T->getName(), V.toString());
  }
  std::sort(Lines.begin(), Lines.end());
  std::string S;
  for (const auto &[N, V] : Lines)
    S += N + " = " + V + "\n";
  return S;
}
