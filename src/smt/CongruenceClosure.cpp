//===- smt/CongruenceClosure.cpp - EUF congruence closure -----------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "smt/CongruenceClosure.h"

#include <algorithm>

using namespace ids;
using namespace ids::smt;

int CongruenceClosure::getId(TermRef T) {
  int Existing = nodeOf(T);
  if (Existing >= 0)
    return Existing;
  // Register children first so signatures can reference them.
  for (TermRef Arg : T->getArgs())
    getId(Arg);
  int Id = static_cast<int>(NodeTerms.size());
  if (T->getId() >= NodeOf.size())
    NodeOf.resize(T->getId() + 1, -1);
  NodeOf[T->getId()] = Id;
  NodeTerms.push_back(T);
  UnionParent.push_back(Id);
  ClassSize.push_back(1);
  ProofParent.push_back(-1);
  ProofReason.push_back(Reason());
  UseLists.emplace_back();
  DiseqIdx.emplace_back();
  EqWatches.emplace_back();
  ValueNode.push_back(T->isValue() ? Id : -1);
  if (!Levels.empty())
    Trail.push_back({TrailEntry::Register, Id});
  if (!T->getArgs().empty()) {
    // Enter into the signature table and record use-lists.
    for (TermRef Arg : T->getArgs()) {
      int Root = findRoot(nodeOf(Arg));
      UseLists[Root].push_back(Id);
      if (!Levels.empty())
        Trail.push_back({TrailEntry::UseListPush, Root});
    }
    signatureOf(Id, SigScratch);
    auto [SigIt, Inserted] = SigTable.emplace(SigScratch, Id);
    if (Inserted && !Levels.empty()) {
      Trail.push_back(
          {TrailEntry::SigInsert, static_cast<int>(SigKeys.size())});
      SigKeys.push_back(SigIt->first);
    }
    if (!Inserted && findRoot(SigIt->second) != Id) {
      Reason R;
      R.CongA = Id;
      R.CongB = SigIt->second;
      Pending.emplace_back(Id, SigIt->second, R);
      processPending();
    }
  }
  return Id;
}

void CongruenceClosure::registerTerm(TermRef T) { getId(T); }

void CongruenceClosure::signatureOf(int Node, std::vector<int> &Sig) {
  TermRef T = NodeTerms[Node];
  Sig.clear();
  Sig.reserve(T->getNumArgs() + 3);
  Sig.push_back(static_cast<int>(T->getKind()));
  // Distinguish different Apply symbols and different sorts of e.g. Select.
  Sig.push_back(static_cast<int>(
      reinterpret_cast<uintptr_t>(T->getKind() == TermKind::Apply
                                      ? static_cast<const void *>(T->getDecl())
                                      : static_cast<const void *>(T->getSort()))));
  for (TermRef Arg : T->getArgs())
    Sig.push_back(findRoot(nodeOf(Arg)));
}

int CongruenceClosure::findRoot(int Node) {
  int Root = Node;
  while (UnionParent[Root] != Root)
    Root = UnionParent[Root];
  bool Record = !Levels.empty();
  while (UnionParent[Node] != Root) {
    int Next = UnionParent[Node];
    // Path compression mutates parent pointers, so under an active undo
    // level every change is trailed (a compressed pointer may skip a root
    // boundary that a pop re-establishes).
    if (Record)
      Trail.push_back({TrailEntry::Compress, Node, UnionParent[Node]});
    UnionParent[Node] = Root;
    Node = Next;
  }
  return Root;
}

bool CongruenceClosure::assertEqual(TermRef T1, TermRef T2, int Tag) {
  if (Failed)
    return false;
  int A = getId(T1), B = getId(T2);
  if (Failed)
    return false; // registration may already trigger congruence conflicts
  Reason R;
  R.Tag = Tag;
  Pending.emplace_back(A, B, R);
  return processPending();
}

bool CongruenceClosure::assertDisequal(TermRef T1, TermRef T2, int Tag) {
  if (Failed)
    return false;
  int A = getId(T1), B = getId(T2);
  if (Failed)
    return false;
  int Ra = findRoot(A), Rb = findRoot(B);
  if (Ra == Rb) {
    Failed = true;
    std::set<int> Tags;
    std::set<std::pair<int, int>> Seen;
    explainPair(A, B, Tags, Seen);
    Tags.insert(Tag);
    ConflictTags.assign(Tags.begin(), Tags.end());
    return false;
  }
  int Idx = static_cast<int>(Diseqs.size());
  Diseqs.emplace_back(A, B, Tag);
  DiseqIdx[Ra].push_back(Idx);
  DiseqIdx[Rb].push_back(Idx);
  if (!Levels.empty())
    Trail.push_back({TrailEntry::Diseq, Ra, Rb});
  // Watched equalities spanning exactly these two classes just became
  // entailed false.
  const std::vector<EqWatch> &WL =
      EqWatches[Ra].size() <= EqWatches[Rb].size() ? EqWatches[Ra]
                                                   : EqWatches[Rb];
  for (const EqWatch &W : WL) {
    int Wa = findRoot(W.Na), Wb = findRoot(W.Nb);
    if ((Wa == Ra && Wb == Rb) || (Wa == Rb && Wb == Ra))
      PendingEntailed.emplace_back(W.AtomId, false);
  }
  return true;
}

int CongruenceClosure::proofAncestorDepth(int Node) {
  int Depth = 0;
  while (ProofParent[Node] != -1) {
    Node = ProofParent[Node];
    ++Depth;
  }
  return Depth;
}

void CongruenceClosure::rerootProofTree(int NewRoot) {
  // Reverses every proof edge on the path from NewRoot to its current
  // proof root, shifting the edge reasons along so each edge keeps its
  // label. Involutive: rerooting back at the former root restores the
  // original forest exactly (which is how Merge undo works).
  int Prev = -1;
  Reason PrevReason;
  int Cur = NewRoot;
  while (Cur != -1) {
    int Next = ProofParent[Cur];
    Reason NextReason = ProofReason[Cur];
    ProofParent[Cur] = Prev;
    ProofReason[Cur] = PrevReason;
    Prev = Cur;
    PrevReason = NextReason;
    Cur = Next;
  }
}

bool CongruenceClosure::mergeRoots(int A, int B) {
  // A and B are arbitrary nodes whose classes merge; the proof edge runs
  // between the original nodes, the union operates on the roots.
  int Ra = findRoot(A), Rb = findRoot(B);
  assert(Ra != Rb);
  if (ClassSize[Ra] > ClassSize[Rb]) {
    std::swap(Ra, Rb);
    std::swap(A, B);
  }
  bool Record = !Levels.empty();
  int OldProofRoot = -1;
  if (Record) {
    OldProofRoot = A;
    while (ProofParent[OldProofRoot] != -1)
      OldProofRoot = ProofParent[OldProofRoot];
  }
  // Reverse the proof path from A to its root so A can take B as parent.
  rerootProofTree(A);
  ProofParent[A] = B;
  // Reason for this edge was staged by the caller in StagedReason.
  ProofReason[A] = StagedReason;

  // Union: Ra (smaller) under Rb.
  UnionParent[Ra] = Rb;
  ClassSize[Rb] += ClassSize[Ra];

  int OldValueRb = ValueNode[Rb];
  if (ValueNode[Rb] == -1)
    ValueNode[Rb] = ValueNode[Ra];

  // Recompute signatures of parents of the smaller class.
  std::vector<int> Moved;
  Moved.swap(UseLists[Ra]);
  for (int ParentNode : Moved) {
    signatureOf(ParentNode, SigScratch);
    auto [It, Inserted] = SigTable.emplace(SigScratch, ParentNode);
    if (Inserted && Record) {
      Trail.push_back(
          {TrailEntry::SigInsert, static_cast<int>(SigKeys.size())});
      SigKeys.push_back(It->first);
    }
    if (!Inserted && findRoot(It->second) != findRoot(ParentNode)) {
      Reason R;
      R.CongA = ParentNode;
      R.CongB = It->second;
      Pending.emplace_back(ParentNode, It->second, R);
    }
    UseLists[Rb].push_back(ParentNode);
  }
  // Move the absorbed root's disequality index onto the survivor; only
  // these entries can have become violated by this merge.
  int MovedDiseqs = static_cast<int>(DiseqIdx[Ra].size());
  DiseqIdx[Rb].insert(DiseqIdx[Rb].end(), DiseqIdx[Ra].begin(),
                      DiseqIdx[Ra].end());
  DiseqIdx[Ra].clear();
  // Same movement for the equality watches: only watches touching the
  // absorbed class can change status on this merge.
  int MovedWatches = static_cast<int>(EqWatches[Ra].size());
  EqWatches[Rb].insert(EqWatches[Rb].end(), EqWatches[Ra].begin(),
                       EqWatches[Ra].end());
  EqWatches[Ra].clear();
  if (Record)
    Trail.push_back({TrailEntry::Merge, Ra, Rb, A, OldProofRoot, OldValueRb,
                     static_cast<int>(Moved.size()), MovedDiseqs,
                     MovedWatches});

  // Value clash detection (after the state is fully applied, so undo sees
  // one complete Merge entry regardless of the outcome).
  if (ValueNode[Ra] != -1 && OldValueRb != -1 &&
      NodeTerms[ValueNode[Ra]] != NodeTerms[OldValueRb]) {
    Failed = true;
    std::set<int> Tags;
    std::set<std::pair<int, int>> Seen;
    explainPair(ValueNode[Ra], OldValueRb, Tags, Seen);
    ConflictTags.assign(Tags.begin(), Tags.end());
    return false;
  }

  if (!checkMovedDiseqs(Rb, MovedDiseqs))
    return false;

  // Moved watches may have flipped to entailed (their two classes just
  // merged, or the merge brought a value/disequality into reach).
  const std::vector<EqWatch> &WRb = EqWatches[Rb];
  for (size_t I = WRb.size() - MovedWatches; I < WRb.size(); ++I) {
    int Wa = findRoot(WRb[I].Na), Wb = findRoot(WRb[I].Nb);
    if (Wa == Wb)
      PendingEntailed.emplace_back(WRb[I].AtomId, true);
    else if (rootsDisequal(Wa, Wb))
      PendingEntailed.emplace_back(WRb[I].AtomId, false);
  }
  return true;
}

bool CongruenceClosure::checkMovedDiseqs(int Root, int MovedCount) {
  const std::vector<int> &L = DiseqIdx[Root];
  for (size_t I = L.size() - MovedCount; I < L.size(); ++I) {
    auto &[DA, DB, DTag] = Diseqs[L[I]];
    if (findRoot(DA) == findRoot(DB)) {
      Failed = true;
      std::set<int> Tags;
      std::set<std::pair<int, int>> Seen;
      explainPair(DA, DB, Tags, Seen);
      Tags.insert(DTag);
      ConflictTags.assign(Tags.begin(), Tags.end());
      return false;
    }
  }
  return true;
}

bool CongruenceClosure::processPending() {
  while (!Pending.empty()) {
    auto [A, B, R] = Pending.back();
    Pending.pop_back();
    if (findRoot(A) == findRoot(B))
      continue;
    StagedReason = R;
    if (!mergeRoots(A, B))
      return false;
  }
  return !Failed;
}

void CongruenceClosure::push() {
  assert(Pending.empty() && "push mid-assertion");
  Levels.push_back({Trail.size(), SigKeys.size(), Failed, ConflictTags});
}

void CongruenceClosure::pop() {
  assert(!Levels.empty() && "pop without matching push");
  LevelMark M = std::move(Levels.back());
  Levels.pop_back();
  Pending.clear();
  undoTo(M.TrailSize);
  SigKeys.resize(M.SigKeysSize);
  Failed = M.Failed;
  ConflictTags = std::move(M.ConflictTags);
}

void CongruenceClosure::undoTo(size_t TrailSize) {
  while (Trail.size() > TrailSize) {
    TrailEntry E = Trail.back();
    Trail.pop_back();
    switch (E.K) {
    case TrailEntry::Register: {
      assert(E.A == static_cast<int>(NodeTerms.size()) - 1 &&
             "registrations must unwind in stack order");
      NodeOf[NodeTerms[E.A]->getId()] = -1;
      NodeTerms.pop_back();
      UnionParent.pop_back();
      ClassSize.pop_back();
      ProofParent.pop_back();
      ProofReason.pop_back();
      UseLists.pop_back();
      DiseqIdx.pop_back();
      EqWatches.pop_back();
      ValueNode.pop_back();
      break;
    }
    case TrailEntry::UseListPush:
      UseLists[E.A].pop_back();
      break;
    case TrailEntry::SigInsert:
      SigTable.erase(SigKeys[E.A]);
      break;
    case TrailEntry::Merge: {
      // Reverse of mergeRoots: restore use-lists, value node, union, and
      // the proof forest orientation.
      std::vector<int> &LB = UseLists[E.B];
      std::vector<int> &LA = UseLists[E.A];
      assert(LA.empty() && "absorbed root's use-list must still be empty");
      LA.insert(LA.end(), LB.end() - E.F, LB.end());
      LB.erase(LB.end() - E.F, LB.end());
      std::vector<int> &DB = DiseqIdx[E.B];
      std::vector<int> &DA = DiseqIdx[E.A];
      assert(DA.empty() && "absorbed root's diseq index must still be empty");
      DA.insert(DA.end(), DB.end() - E.G, DB.end());
      DB.erase(DB.end() - E.G, DB.end());
      std::vector<EqWatch> &WB = EqWatches[E.B];
      std::vector<EqWatch> &WA = EqWatches[E.A];
      assert(WA.empty() && "absorbed root's watch list must still be empty");
      WA.insert(WA.end(), WB.end() - E.H, WB.end());
      WB.erase(WB.end() - E.H, WB.end());
      ValueNode[E.B] = E.E;
      ClassSize[E.B] -= ClassSize[E.A];
      UnionParent[E.A] = E.A;
      ProofParent[E.C] = -1;
      ProofReason[E.C] = Reason();
      if (E.D != E.C)
        rerootProofTree(E.D);
      break;
    }
    case TrailEntry::Diseq:
      // Merges after this entry have already been undone, so the index
      // entries sit back under the roots recorded at assertion time.
      DiseqIdx[E.A].pop_back();
      DiseqIdx[E.B].pop_back();
      Diseqs.pop_back();
      break;
    case TrailEntry::Compress:
      UnionParent[E.A] = E.B;
      break;
    case TrailEntry::WatchPush:
      EqWatches[E.A].pop_back();
      break;
    }
  }
}

bool CongruenceClosure::areEqual(TermRef T1, TermRef T2) {
  if (T1 == T2)
    return true;
  int N1 = nodeOf(T1), N2 = nodeOf(T2);
  if (N1 < 0 || N2 < 0)
    return false;
  return findRoot(N1) == findRoot(N2);
}

bool CongruenceClosure::rootsDisequal(int Ra, int Rb) {
  if (Ra == Rb)
    return false;
  if (ValueNode[Ra] != -1 && ValueNode[Rb] != -1)
    return true; // distinct interpreted values
  // Scan the smaller of the two classes' disequality indices.
  const std::vector<int> &L =
      DiseqIdx[Ra].size() <= DiseqIdx[Rb].size() ? DiseqIdx[Ra] : DiseqIdx[Rb];
  for (int Idx : L) {
    auto &[DA, DB, DTag] = Diseqs[Idx];
    (void)DTag;
    int Da = findRoot(DA), Db = findRoot(DB);
    if ((Da == Ra && Db == Rb) || (Da == Rb && Db == Ra))
      return true;
  }
  return false;
}

bool CongruenceClosure::areDisequal(TermRef T1, TermRef T2) {
  int N1 = nodeOf(T1), N2 = nodeOf(T2);
  if (N1 < 0 || N2 < 0)
    return false;
  return rootsDisequal(findRoot(N1), findRoot(N2));
}

void CongruenceClosure::watchEquality(int AtomId, TermRef X, TermRef Y) {
  if (Failed)
    return;
  int Na = getId(X), Nb = getId(Y);
  if (Failed)
    return; // registration itself can conflict; the assert path reports it
  int Ra = findRoot(Na), Rb = findRoot(Nb);
  EqWatch W{AtomId, Na, Nb};
  if (Ra == Rb) {
    // Already equal: fire now, and keep one watch in case an undo splits
    // the class and a later merge re-joins it.
    PendingEntailed.emplace_back(AtomId, true);
    EqWatches[Ra].push_back(W);
    if (!Levels.empty())
      Trail.push_back({TrailEntry::WatchPush, Ra});
    return;
  }
  if (rootsDisequal(Ra, Rb))
    PendingEntailed.emplace_back(AtomId, false);
  EqWatches[Ra].push_back(W);
  EqWatches[Rb].push_back(W);
  if (!Levels.empty()) {
    Trail.push_back({TrailEntry::WatchPush, Ra});
    Trail.push_back({TrailEntry::WatchPush, Rb});
  }
}

bool CongruenceClosure::explainDisequality(TermRef T1, TermRef T2,
                                           std::set<int> &TagsOut) {
  int N1 = nodeOf(T1), N2 = nodeOf(T2);
  assert(N1 >= 0 && N2 >= 0 && "explaining unregistered terms");
  int Ra = findRoot(N1), Rb = findRoot(N2);
  assert(Ra != Rb && "explaining a disequality of one class");
  std::set<std::pair<int, int>> Seen;
  if (ValueNode[Ra] != -1 && ValueNode[Rb] != -1) {
    // Distinct interpreted values: T1 equals one value, T2 the other.
    explainPair(N1, ValueNode[Ra], TagsOut, Seen);
    explainPair(N2, ValueNode[Rb], TagsOut, Seen);
    return true;
  }
  const std::vector<int> &L =
      DiseqIdx[Ra].size() <= DiseqIdx[Rb].size() ? DiseqIdx[Ra] : DiseqIdx[Rb];
  for (int Idx : L) {
    auto &[DA, DB, DTag] = Diseqs[Idx];
    int Da = findRoot(DA), Db = findRoot(DB);
    if (Da == Ra && Db == Rb) {
      TagsOut.insert(DTag);
      explainPair(N1, DA, TagsOut, Seen);
      explainPair(N2, DB, TagsOut, Seen);
      return true;
    }
    if (Da == Rb && Db == Ra) {
      TagsOut.insert(DTag);
      explainPair(N1, DB, TagsOut, Seen);
      explainPair(N2, DA, TagsOut, Seen);
      return true;
    }
  }
  return false;
}

bool CongruenceClosure::diseqWitness(TermRef T1, TermRef T2,
                                     DiseqWitness &Out) {
  int N1 = nodeOf(T1), N2 = nodeOf(T2);
  assert(N1 >= 0 && N2 >= 0 && "witnessing unregistered terms");
  int Ra = findRoot(N1), Rb = findRoot(N2);
  assert(Ra != Rb && "witnessing a disequality of one class");
  if (ValueNode[Ra] != -1 && ValueNode[Rb] != -1) {
    Out.Tag = -1;
    Out.A1 = N1;
    Out.B1 = ValueNode[Ra];
    Out.A2 = N2;
    Out.B2 = ValueNode[Rb];
    return true;
  }
  const std::vector<int> &L =
      DiseqIdx[Ra].size() <= DiseqIdx[Rb].size() ? DiseqIdx[Ra] : DiseqIdx[Rb];
  for (int Idx : L) {
    auto &[DA, DB, DTag] = Diseqs[Idx];
    int Da = findRoot(DA), Db = findRoot(DB);
    if (Da == Ra && Db == Rb) {
      Out = {DTag, N1, DA, N2, DB};
      return true;
    }
    if (Da == Rb && Db == Ra) {
      Out = {DTag, N1, DB, N2, DA};
      return true;
    }
  }
  return false;
}

void CongruenceClosure::explainWitness(const DiseqWitness &W,
                                       std::set<int> &TagsOut) {
  std::set<std::pair<int, int>> Seen;
  if (W.Tag >= 0)
    TagsOut.insert(W.Tag);
  explainPair(W.A1, W.B1, TagsOut, Seen);
  explainPair(W.A2, W.B2, TagsOut, Seen);
}

void CongruenceClosure::explainEquality(TermRef T1, TermRef T2,
                                        std::set<int> &TagsOut) {
  assert(areEqual(T1, T2) && "explaining an equality that does not hold");
  std::set<std::pair<int, int>> Seen;
  explainPair(nodeOf(T1), nodeOf(T2), TagsOut, Seen);
}

void CongruenceClosure::explainPair(int A, int B, std::set<int> &TagsOut,
                                    std::set<std::pair<int, int>> &SeenPairs) {
  if (A == B)
    return;
  auto Key = std::minmax(A, B);
  if (!SeenPairs.insert({Key.first, Key.second}).second)
    return;
  explainPath(A, B, TagsOut, SeenPairs);
}

void CongruenceClosure::explainPath(int A, int B, std::set<int> &TagsOut,
                                    std::set<std::pair<int, int>> &SeenPairs) {
  // Find the common ancestor in the proof forest by depth alignment.
  int DepthA = proofAncestorDepth(A);
  int DepthB = proofAncestorDepth(B);
  int WalkA = A, WalkB = B;
  auto Step = [&](int Node) {
    Reason &R = ProofReason[Node];
    if (R.Tag >= 0) {
      TagsOut.insert(R.Tag);
    } else {
      // Congruence edge: children of CongA/CongB are pairwise equal.
      TermRef TA = NodeTerms[R.CongA];
      TermRef TB = NodeTerms[R.CongB];
      assert(TA->getNumArgs() == TB->getNumArgs());
      for (unsigned I = 0; I < TA->getNumArgs(); ++I)
        explainPair(nodeOf(TA->getArg(I)), nodeOf(TB->getArg(I)), TagsOut,
                    SeenPairs);
    }
    return ProofParent[Node];
  };
  while (DepthA > DepthB) {
    WalkA = Step(WalkA);
    --DepthA;
  }
  while (DepthB > DepthA) {
    WalkB = Step(WalkB);
    --DepthB;
  }
  while (WalkA != WalkB) {
    WalkA = Step(WalkA);
    WalkB = Step(WalkB);
  }
  assert(WalkA == WalkB && "proof forest paths failed to meet");
}

TermRef CongruenceClosure::representative(TermRef T) {
  int N = nodeOf(T);
  assert(N >= 0 && "term not registered");
  return NodeTerms[findRoot(N)];
}
