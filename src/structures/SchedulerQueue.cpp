//===- structures/SchedulerQueue.cpp - Overlaid scheduler queue ------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An overlaid scheduler run-queue: the same task nodes form a
/// deadline-ordered dispatch list (group q) and a BST index (group t),
/// over disjoint link fields but sharing the `key` (deadline) field —
/// both groups read it, so its impact clause lists both groups at once.
/// enqueue threads an urgent task onto the queue front and discharges
/// both groups' broken sets; find searches through the index alone.
///
//===----------------------------------------------------------------------===//

#include "structures/Sources.h"

const char *ids::structures::SchedulerQueueSource = R"IDS(
structure SchedQueue {
  field qnext: Loc;
  field l: Loc;
  field r: Loc;
  field key: int;
  ghost field qprev: Loc;
  ghost field qlen: int;
  ghost field qkeys: set<int>;
  ghost field p: Loc;
  ghost field rank: rat;
  ghost field min: int;
  ghost field max: int;

  // Group q: the dispatch list, ascending by deadline, with inverse
  // pointers, lengths and key-sets (equation (2) over the q-fields).
  local q (x) {
    (x.qnext != nil ==>
         x.key <= x.qnext.key
      && x.qnext.qprev == x
      && x.qlen == x.qnext.qlen + 1
      && x.qkeys == {x.key} union x.qnext.qkeys)
    && (x.qprev != nil ==> x.qprev.qnext == x)
    && (x.qnext == nil ==> x.qlen == 1 && x.qkeys == {x.key})
  }

  // Group t: the BST index over the same nodes (Appendix D.2).
  local t (x) {
    x.min <= x.key && x.key <= x.max
    && (x.p != nil ==> (x.p.l == x || x.p.r == x))
    && (x.l == nil ==> x.min == x.key)
    && (x.l != nil ==>
          x.l.p == x && x.l.rank < x.rank
       && x.l.max < x.key && x.min == x.l.min)
    && (x.r == nil ==> x.max == x.key)
    && (x.r != nil ==>
          x.r.p == x && x.r.rank < x.rank
       && x.key < x.r.min && x.max == x.r.max)
  }

  correlation (y) { y.qprev == nil }

  impact qnext [q] { x, old(x.qnext) }
  impact qprev [q] { x, old(x.qprev) }
  impact qlen  [q] { x, x.qprev }
  impact qkeys [q] { x, x.qprev }
  // Both overlays read the deadline: one clause, one impact set per group.
  impact key [t, q] { x, x.qprev }
  impact l    [t] { x, old(x.l) }
  impact r    [t] { x, old(x.r) }
  impact p    [t] { x, old(x.p) }
  impact min  [t] { x, x.p }
  impact max  [t] { x, x.p }
  impact rank [t] { x, x.p }
}

// Search by deadline through the BST index; the queue group is untouched.
procedure find(root: Loc, k: int) returns (res: Loc)
  requires br(t) == {}
  requires root != nil
  ensures  br(t) == {}
  ensures  res != nil ==> res.key == k
{
  var cur: Loc;
  cur := root;
  res := nil;
  while (cur != nil && res == nil)
    invariant br(t) == {}
    invariant res != nil ==> res.key == k
  {
    InferLCOutsideBr(t, cur);
    if (cur.key == k) {
      res := cur;
    } else {
      if (k < cur.key) {
        cur := cur.l;
      } else {
        cur := cur.r;
      }
    }
  }
}

// Thread a task more urgent than the current front onto the queue. The
// fresh node enters both broken sets: it leaves q by linking ahead of h,
// and leaves t as a detached singleton index node awaiting insertion.
procedure enqueue(h: Loc, k: int) returns (z: Loc)
  requires br(q) == {} && br(t) == {}
  requires h != nil && h.qprev == nil
  requires k <= h.key
  ensures  br(q) == {} && br(t) == {}
  ensures  z != nil && z.qnext == h && z.qprev == nil
  ensures  z.qlen == old(h.qlen) + 1
  ensures  z.qkeys == {k} union old(h.qkeys)
  ensures  z.key == k && z.p == nil
  modifies {h}
{
  InferLCOutsideBr(q, h);
  NewObj(z);
  Mut(z.key, k);
  Mut(z.qnext, h);
  ghost {
    Mut(h.qprev, z);
    Mut(z.qlen, h.qlen + 1);
    Mut(z.qkeys, {k} union h.qkeys);
    Mut(z.min, k);
    Mut(z.max, k);
  }
  AssertLCAndRemove(q, z);
  AssertLCAndRemove(q, h);
  AssertLCAndRemove(t, z);
}
)IDS";
