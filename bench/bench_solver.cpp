//===- bench/bench_solver.cpp - Solver-config differential bench -----------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-procedure solver benchmark across the SAT-core configurations:
/// the default (lazy array instantiation + clause deletion + theory
/// propagation), --eager-arrays (up-front array demand closure),
/// --no-reduce-db (learned clauses kept forever) and --no-theory-prop
/// (lazy full-model theory checks only). For every target procedure and
/// configuration it reports wall-clock seconds plus the solver counters
/// that explain the difference — conflicts, propagations, lemmas
/// deleted, reduceDB sweeps, restarts, lazy instantiations, theory
/// propagations — and writes everything to BENCH_solver.json.
///
/// The run doubles as a differential check: the four configurations
/// must agree on every verdict (a lazy-mode, deletion- or
/// propagation-induced verdict flip is exactly the regression this
/// benchmark exists to catch), and any disagreement or Failed verdict
/// makes the exit code nonzero.
///
/// Usage: bench_solver [benchmark:procedure ...]
/// Default targets are the two heaviest procedures of the suite
/// (sorted-list:insert and bst:rotate_right) — the set CI runs.
///
//===----------------------------------------------------------------------===//

#include "driver/Verifier.h"
#include "structures/Registry.h"
#include "support/Json.h"
#include "support/Trace.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace ids;

namespace {

struct Target {
  std::string Bench;
  std::string Proc;
};

struct ConfigSpec {
  const char *Name;
  bool LazyArrays;
  bool ReduceDb;
  bool TheoryProp;
};

// The four corners that matter: the production solver, and one
// baseline per tentpole feature (each disables exactly one of them).
const ConfigSpec Configs[] = {
    {"default", true, true, true},
    {"eager-arrays", false, true, true},
    {"no-reduce-db", true, false, true},
    {"no-theory-prop", true, true, false},
};

const char *statusName(driver::Status St) {
  switch (St) {
  case driver::Status::Verified:
    return "verified";
  case driver::Status::Failed:
    return "failed";
  case driver::Status::Unknown:
    break;
  }
  return "unknown";
}

// Solver counters snapshotted around each run; the delta is the
// per-procedure cost under that configuration.
const char *const CounterKeys[] = {
    "smt.conflicts",      "smt.propagations",     "smt.lemmas_deleted",
    "smt.reduce_db_sweeps", "smt.restarts",       "smt.lazy_instantiations",
    "smt.decisions",      "smt.theory_checks",    "smt.theory_propagations",
    "smt.propagation_conflicts", "smt.cc_registrations_reused",
};

std::vector<uint64_t> snapshotCounters() {
  std::vector<uint64_t> Vals;
  for (const char *Key : CounterKeys)
    Vals.push_back(trace::counter(Key).value());
  return Vals;
}

const structures::Benchmark *findBenchmark(const std::string &Name) {
  for (const structures::Benchmark &B : structures::allBenchmarks())
    if (B.Name == Name)
      return &B;
  return nullptr;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<Target> Targets;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    size_t Colon = Arg.find(':');
    if (Colon == std::string::npos || Colon == 0 || Colon + 1 == Arg.size()) {
      fprintf(stderr, "usage: bench_solver [benchmark:procedure ...]\n");
      return 2;
    }
    Targets.push_back({Arg.substr(0, Colon), Arg.substr(Colon + 1)});
  }
  if (Targets.empty())
    Targets = {{"sorted-list", "insert"}, {"bst", "rotate_right"}};

  FILE *Json = fopen("BENCH_solver.json", "w");
  if (!Json) {
    fprintf(stderr, "cannot open BENCH_solver.json for writing\n");
    return 1;
  }

  json::Value Root = json::Value::object();
  Root.set("bench", json::Value::string("solver"));
  json::Value Procs = json::Value::array();

  bool Ok = true;
  for (const Target &T : Targets) {
    const structures::Benchmark *B = findBenchmark(T.Bench);
    if (!B) {
      fprintf(stderr, "unknown benchmark '%s' (see ids-verify --list)\n",
              T.Bench.c_str());
      Ok = false;
      continue;
    }

    printf("%s:%s\n", T.Bench.c_str(), T.Proc.c_str());
    json::Value ProcObj = json::Value::object();
    ProcObj.set("benchmark", json::Value::string(T.Bench));
    ProcObj.set("procedure", json::Value::string(T.Proc));
    json::Value Runs = json::Value::array();

    std::string FirstStatus;
    bool ProcFound = true;
    for (const ConfigSpec &C : Configs) {
      DiagEngine Diags;
      driver::VerifyOptions Opts;
      Opts.OnlyProc = T.Proc;
      // Solver-only measurement: the impact checks are a separate,
      // uniformly cheap workload and would just add noise here.
      Opts.CheckImpacts = false;
      Opts.LazyArrays = C.LazyArrays;
      Opts.ReduceDb = C.ReduceDb;
      Opts.TheoryProp = C.TheoryProp;
      // Same guard rails as bench_table2: a configuration that cannot
      // finish reports a bounded 'unknown', not an open-ended run.
      Opts.QueryTimeoutSeconds = 300;
      if (B->DefaultBudget > 0)
        Opts.MaxTheoryChecks = B->DefaultBudget;

      std::vector<uint64_t> Before = snapshotCounters();
      auto Start = std::chrono::steady_clock::now();
      driver::ModuleResult R = driver::verifySource(B->Source, Opts, Diags);
      double Seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        Start)
              .count();
      std::vector<uint64_t> After = snapshotCounters();

      if (!R.FrontEndOk) {
        fprintf(stderr, "front-end error on '%s':\n%s", T.Bench.c_str(),
                Diags.toString().c_str());
        Ok = false;
        break;
      }
      const driver::ProcResult *P = nullptr;
      for (const driver::ProcResult &Candidate : R.Procs)
        if (Candidate.Name == T.Proc)
          P = &Candidate;
      if (!P) {
        fprintf(stderr, "benchmark '%s' has no procedure '%s'\n",
                T.Bench.c_str(), T.Proc.c_str());
        Ok = false;
        ProcFound = false;
        break;
      }

      json::Value Run = json::Value::object();
      Run.set("config", json::Value::string(C.Name));
      Run.set("status", json::Value::string(statusName(P->St)));
      Run.set("seconds", json::Value::number(Seconds));
      for (size_t I = 0; I < sizeof(CounterKeys) / sizeof(CounterKeys[0]);
           ++I)
        Run.set(CounterKeys[I],
                json::Value::number(double(After[I] - Before[I])));
      Runs.push(std::move(Run));

      printf("  %-14s %-9s %8.2fs  conflicts=%llu propagations=%llu "
             "lemmas_deleted=%llu lazy_inst=%llu theory_props=%llu "
             "theory_checks=%llu\n",
             C.Name, statusName(P->St), Seconds,
             (unsigned long long)(After[0] - Before[0]),
             (unsigned long long)(After[1] - Before[1]),
             (unsigned long long)(After[2] - Before[2]),
             (unsigned long long)(After[5] - Before[5]),
             (unsigned long long)(After[8] - Before[8]),
             (unsigned long long)(After[7] - Before[7]));

      if (P->St == driver::Status::Failed)
        Ok = false;
      if (FirstStatus.empty())
        FirstStatus = statusName(P->St);
      else if (FirstStatus != statusName(P->St)) {
        // The whole point of the matrix: all three solver
        // configurations must reach the same verdict.
        fprintf(stderr,
                "VERDICT MISMATCH on %s:%s — '%s' under default, '%s' "
                "under %s\n",
                T.Bench.c_str(), T.Proc.c_str(), FirstStatus.c_str(),
                statusName(P->St), C.Name);
        Ok = false;
      }
    }
    if (!ProcFound)
      continue;
    ProcObj.set("runs", std::move(Runs));
    Procs.push(std::move(ProcObj));
  }

  Root.set("procs", std::move(Procs));
  fprintf(Json, "%s\n", Root.serialize().c_str());
  fclose(Json);
  printf("Wrote BENCH_solver.json (%zu procedures x %zu configs).\n",
         Targets.size(), sizeof(Configs) / sizeof(Configs[0]));
  return Ok ? 0 : 1;
}
