//===- smt/QuantInst.h - Ground quantifier instantiation -------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Round-based ground instantiation of universal quantifiers. This is the
/// engine behind the "Dafny-style" quantified encoding measured by RQ3 of
/// the paper: heap change across calls and allocation are modelled with
/// universally quantified axioms, so the solver must guess instantiations
/// — which is exactly the unpredictable/heuristic behaviour the paper's
/// quantifier-free encoding avoids.
///
/// Positive-polarity quantifiers are replaced by finite conjunctions over
/// the ground terms of the matching sort; negative ones are skolemised.
/// The result is an equisatisfiability *approximation*: Unsat answers are
/// sound, Sat answers are only "unknown" when instantiation was incomplete.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SMT_QUANTINST_H
#define IDS_SMT_QUANTINST_H

#include "smt/Term.h"

namespace ids {
namespace smt {

struct QuantInstResult {
  TermRef Formula = nullptr;
  /// False when any universal quantifier had to be approximated.
  bool Complete = true;
  unsigned NumInstantiations = 0;
};

/// Instantiates quantifiers in \p Formula over \p Rounds rounds, with at
/// most \p MaxInstPerQuant ground tuples per quantifier occurrence.
QuantInstResult instantiateQuantifiers(TermManager &TM, TermRef Formula,
                                       unsigned Rounds = 2,
                                       unsigned MaxInstPerQuant = 2048);

} // namespace smt
} // namespace ids

#endif // IDS_SMT_QUANTINST_H
