# Serve-mode smoke test. Invoked by ctest as
#   cmake -DIDS_VERIFY=<exe> -DWORKDIR=<dir> -P RunServe.cmake
#
# Spawns `ids-verify serve`, pipes it a session of three requests —
# valid, malformed, valid — and checks that:
#   * the daemon answers every line and exits 0 (the malformed request
#     is answered with an error, it does not kill the process);
#   * both valid answers report ok:true with all procedures verified;
#   * every ("name","status") pair in a serve answer matches the verdict
#     the one-shot CLI prints for the same benchmark (the acceptance
#     criterion: serve verdicts are the one-shot verdicts).

if(NOT DEFINED IDS_VERIFY OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "usage: cmake -DIDS_VERIFY=... -DWORKDIR=... -P RunServe.cmake")
endif()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

set(Requests "${WORKDIR}/requests.jsonl")
file(WRITE "${Requests}"
"{\"id\":1,\"benchmark\":\"singly-linked-list\"}
this line is not JSON
{\"id\":3,\"benchmark\":\"bst\"}
{\"id\":4,\"cmd\":\"stats\"}
")

execute_process(
  COMMAND "${IDS_VERIFY}" serve
  INPUT_FILE "${Requests}"
  OUTPUT_VARIABLE Out
  ERROR_VARIABLE Err
  RESULT_VARIABLE ExitCode)

if(NOT ExitCode EQUAL 0)
  message(FATAL_ERROR "serve exited ${ExitCode} (a request must never kill "
          "the daemon)\n--- stdout ---\n${Out}\n--- stderr ---\n${Err}")
endif()

string(REGEX REPLACE "\n$" "" Trimmed "${Out}")
string(REPLACE "\n" ";" Lines "${Trimmed}")
list(LENGTH Lines NumLines)
if(NOT NumLines EQUAL 4)
  message(FATAL_ERROR "expected 4 response lines, got ${NumLines}\n${Out}")
endif()

list(GET Lines 0 Resp1)
list(GET Lines 1 Resp2)
list(GET Lines 2 Resp3)
list(GET Lines 3 Resp4)

# Every response — success or error — reports its wall clock.
foreach(Var Resp1 Resp2 Resp3 Resp4)
  string(FIND "${${Var}}" "\"elapsed_ms\":" P)
  if(P EQUAL -1)
    message(FATAL_ERROR "response lacks elapsed_ms: ${${Var}}")
  endif()
endforeach()

# The stats command answers the cumulative metrics snapshot — the same
# schema --stats-json writes — and after two verify requests the
# pipeline/smt/driver counter families must all be populated.
foreach(Tag "\"id\":4" "\"ok\":true" "\"schema\":\"ids-stats-v1\""
        "\"counters\":{" "\"driver.requests\":2" "\"pipeline.obligations\":"
        "\"smt.check_sats\":")
  string(FIND "${Resp4}" "${Tag}" P)
  if(P EQUAL -1)
    message(FATAL_ERROR "stats answer lacks ${Tag}: ${Resp4}")
  endif()
endforeach()

# Verify responses carry this request's cache traffic.
foreach(Var Resp1 Resp3)
  string(FIND "${${Var}}" "\"cache\":{\"query_hits\":" P)
  if(P EQUAL -1)
    message(FATAL_ERROR "verify response lacks per-request cache stats: "
            "${${Var}}")
  endif()
endforeach()

foreach(Pair "Resp1|\"id\":1" "Resp3|\"id\":3")
  string(REPLACE "|" ";" Parts "${Pair}")
  list(GET Parts 0 Var)
  list(GET Parts 1 Tag)
  string(FIND "${${Var}}" "${Tag}" P)
  if(P EQUAL -1)
    message(FATAL_ERROR "response does not echo ${Tag}: ${${Var}}")
  endif()
  string(FIND "${${Var}}" "\"ok\":true" P)
  if(P EQUAL -1)
    message(FATAL_ERROR "valid request not answered ok:true: ${${Var}}")
  endif()
  string(FIND "${${Var}}" "\"all_verified\":true" P)
  if(P EQUAL -1)
    message(FATAL_ERROR "benchmark did not fully verify over serve: ${${Var}}")
  endif()
endforeach()

string(FIND "${Resp2}" "\"ok\":false" P)
if(P EQUAL -1)
  message(FATAL_ERROR "malformed request must answer ok:false: ${Resp2}")
endif()
string(FIND "${Resp2}" "\"error\":\"invalid request" P)
if(P EQUAL -1)
  message(FATAL_ERROR "malformed request must report a parse error: ${Resp2}")
endif()

# Each serve verdict must match the one-shot CLI's verdict for the same
# procedure: one-shot prints ` NAME ... STATUS` per procedure, serve
# answers pin "name" directly before "status" (a documented part of the
# protocol), so the pairs can be matched textually.
foreach(Case "singly-linked-list|Resp1" "bst|Resp3")
  string(REPLACE "|" ";" Parts "${Case}")
  list(GET Parts 0 Bench)
  list(GET Parts 1 Var)
  execute_process(
    COMMAND "${IDS_VERIFY}" --benchmark "${Bench}"
    OUTPUT_VARIABLE OneShot
    RESULT_VARIABLE OneShotExit)
  if(NOT OneShotExit EQUAL 0)
    message(FATAL_ERROR "one-shot --benchmark ${Bench} exited ${OneShotExit}")
  endif()
  string(REGEX MATCHALL "\"name\":\"[^\"]+\",\"status\":\"[a-z]+\""
         Pairs "${${Var}}")
  list(LENGTH Pairs NumProcs)
  if(NumProcs EQUAL 0)
    message(FATAL_ERROR "no procedure verdicts in serve answer: ${${Var}}")
  endif()
  foreach(P ${Pairs})
    string(REGEX REPLACE "\"name\":\"([^\"]+)\",\"status\":\"([a-z]+)\""
           "\\1;\\2" NameStatus "${P}")
    list(GET NameStatus 0 ProcName)
    list(GET NameStatus 1 ProcStatus)
    if(NOT OneShot MATCHES " ${ProcName} [^\n]* ${ProcStatus}")
      message(FATAL_ERROR "serve verdict ${ProcName}=${ProcStatus} does not "
              "match the one-shot output for ${Bench}:\n${OneShot}")
    endif()
  endforeach()
  message(STATUS "${Bench}: ${NumProcs} serve verdicts match one-shot")
endforeach()

file(REMOVE_RECURSE "${WORKDIR}")
