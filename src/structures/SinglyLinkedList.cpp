//===- structures/SinglyLinkedList.cpp - SLL benchmark ---------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Intrinsic definition of (plain) singly-linked lists and the Table 2
/// methods. The monadic maps follow Section 4.1: `prev` (inverse pointer),
/// `length`, `keys` and the heaplet `hslist`; the local condition is the
/// non-sorted variant of equation (2).
///
//===----------------------------------------------------------------------===//

#include "structures/Sources.h"

const char *ids::structures::SinglyLinkedListSource = R"IDS(
structure List {
  field next: Loc;
  field key: int;
  ghost field prev: Loc;
  ghost field length: int;
  ghost field keys: set<int>;
  ghost field hslist: set<Loc>;

  // Local condition: non-sorted lists with inverse pointers, lengths,
  // key-sets and heaplets (the paper's equation (2) minus sortedness).
  local l (x) {
    (x.next != nil ==>
         x.next.prev == x
      && x.length == x.next.length + 1
      && x.keys == {x.key} union x.next.keys
      && x.hslist == {x} duplus x.next.hslist)
    && (x.prev != nil ==> x.prev.next == x)
    && (x.next == nil ==>
         x.length == 1 && x.keys == {x.key} && x.hslist == {x})
  }

  correlation (y) { y.prev == nil }

  // Table 1 of the paper.
  impact next   [l] { x, old(x.next) }
  impact key    [l] { x, x.prev }
  impact prev   [l] { x, old(x.prev) }
  impact length [l] { x, x.prev }
  impact keys   [l] { x, x.prev }
  impact hslist [l] { x, x.prev }
}

// Push a new key onto the head of the list.
procedure insert_front(x: Loc, k: int) returns (r: Loc)
  requires br(l) == {}
  requires x != nil && x.prev == nil
  ensures  br(l) == {}
  ensures  r != nil && r.prev == nil
  ensures  r.keys == {k} union old(x.keys)
  ensures  r.length == old(x.length) + 1
  ensures  r.next == x
  modifies {x}
{
  var z: Loc;
  InferLCOutsideBr(l, x);
  NewObj(z);
  Mut(z.key, k);
  Mut(z.next, x);
  Mut(x.prev, z);
  Mut(z.length, x.length + 1);
  Mut(z.keys, {k} union x.keys);
  Mut(z.hslist, {z} union x.hslist);
  AssertLCAndRemove(l, x);
  AssertLCAndRemove(l, z);
  r := z;
}

// Membership via the keys map, walking the list.
procedure find(x: Loc, k: int) returns (found: bool)
  requires br(l) == {}
  requires x != nil
  ensures  br(l) == {}
  ensures  found <==> k in old(x.keys)
{
  var cur: Loc;
  cur := x;
  found := false;
  InferLCOutsideBr(l, x);
  while (cur != nil && !found)
    invariant br(l) == {}
    invariant found ==> k in x.keys
    invariant (!found && cur != nil) ==> (k in x.keys <==> k in cur.keys)
    invariant (!found && cur == nil) ==> !(k in x.keys)
  {
    InferLCOutsideBr(l, cur);
    if (cur.key == k) {
      found := true;
    } else {
      cur := cur.next;
    }
  }
}
)IDS";
