//===- smt/ArrayReduction.h - Eager array-theory reduction -----*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Eager reduction of the generalized/combinatory array fragment to EUF:
/// every select over a composite array term (store, const-array, pointwise
/// combinator) is axiomatised over the finite set of relevant index terms,
/// and extensionality witnesses are introduced for array equalities that
/// occur negatively. After reduction the only remaining array reasoning is
/// congruence of `select`, which the EUF engine provides.
///
/// This mirrors how the paper obtains decidability: FWYB verification
/// conditions live in the quantifier-free generalized array theory of
/// de Moura & Bjorner (FMCAD'09), which admits exactly this reduction.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SMT_ARRAYREDUCTION_H
#define IDS_SMT_ARRAYREDUCTION_H

#include "smt/Term.h"

namespace ids {
namespace smt {

struct ArrayReductionStats {
  unsigned NumIndexTerms = 0;
  unsigned NumArrayTerms = 0;
  unsigned NumLemmas = 0;
  unsigned NumWitnesses = 0;
};

/// Returns \p Formula conjoined with the reduction lemmas. \p Formula must
/// be ite-lifted (no non-boolean ite nodes) and quantifier-free.
///
/// By default instantiation is relevancy-driven: axioms are emitted only
/// for (array, index) pairs demanded by an actual select, closed under
/// structural peeling and equality congruence. \p Eager restores the
/// blind composite-times-every-same-sort-index product — quadratically
/// larger, but it forces the model builder's extensional array values
/// consistent everywhere, which decides a few query shapes the demanded
/// set alone leaves Unknown (the solver escalates to it on demand).
TermRef reduceArrays(TermManager &TM, TermRef Formula,
                     ArrayReductionStats *Stats = nullptr,
                     bool Eager = false);

/// Replaces every non-boolean ite subterm by a fresh constant constrained
/// by `(cond => v = then) && (!cond => v = else)` hoisted to the top level.
TermRef liftItes(TermManager &TM, TermRef Formula);

} // namespace smt
} // namespace ids

#endif // IDS_SMT_ARRAYREDUCTION_H
