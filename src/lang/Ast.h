//===- lang/Ast.h - Surface language AST -----------------------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST of the IDS surface language: `structure` declarations (the paper's
/// intrinsic definitions — ghost monadic maps, local conditions,
/// correlation formula, impact sets of Section 4.1) and procedures in the
/// while-language of Figure 1 extended with the ghost grammar of Figure 6
/// and the four well-behavedness macros of Section 4.1 (Mut, NewObj,
/// AssertLCAndRemove, InferLCOutsideBr).
///
//===----------------------------------------------------------------------===//

#ifndef IDS_LANG_AST_H
#define IDS_LANG_AST_H

#include "support/BigInt.h"
#include "support/Diag.h"
#include "support/Rational.h"

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace ids {
namespace lang {

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

/// Scalar/base type discriminator.
enum class TypeKind : uint8_t { Int, Rat, Bool, Loc, Set };

/// A surface-language type. Set types carry their element kind (which is
/// never itself a set in this language).
struct Type {
  TypeKind Kind = TypeKind::Int;
  TypeKind Elem = TypeKind::Int; // Set only

  static Type intTy() { return {TypeKind::Int, TypeKind::Int}; }
  static Type ratTy() { return {TypeKind::Rat, TypeKind::Int}; }
  static Type boolTy() { return {TypeKind::Bool, TypeKind::Int}; }
  static Type locTy() { return {TypeKind::Loc, TypeKind::Int}; }
  static Type setTy(TypeKind Elem) { return {TypeKind::Set, Elem}; }

  bool operator==(const Type &RHS) const {
    return Kind == RHS.Kind && (Kind != TypeKind::Set || Elem == RHS.Elem);
  }
  bool operator!=(const Type &RHS) const { return !(*this == RHS); }
  bool isSet() const { return Kind == TypeKind::Set; }
  bool isNumeric() const {
    return Kind == TypeKind::Int || Kind == TypeKind::Rat;
  }
  std::string toString() const;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind : uint8_t {
  IntLit,
  BoolLit,
  NilLit,
  EmptySetLit, ///< `{}`; element type resolved by the checker
  VarRef,
  FieldRead, ///< e.f  (user or ghost field)
  Old,       ///< old(e): pre-state value (contracts / impact sets)
  BrSet,     ///< br(group): the broken set of a local-condition group
  AllocSet,  ///< alloc: the set of allocated objects
  Unary,     ///< ! or unary -
  Binary,
  IteExpr, ///< ite(c, a, b)
  SetLit,  ///< { e1, ..., en }
  Fresh,   ///< fresh(S): S was freshly allocated (ensures only)
  LcApp,   ///< lc(group, e): the local condition instantiated at e
};

enum class UnOp : uint8_t { Not, Neg };

enum class BinOp : uint8_t {
  Add,
  Sub,
  Mul, ///< linear: one side must be a literal
  Div, ///< by non-zero literal; rat only
  Union,
  Isect,
  SetMinus,
  DuPlus, ///< disjoint union (paper's ⊎); only as RHS of ==
  In,
  Subset,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
  Implies,
  Iff,
};

struct Expr {
  ExprKind Kind = ExprKind::IntLit;
  SourceLoc Loc;
  Type Ty; // filled in by the type checker

  BigInt IntVal;            // IntLit
  bool BoolVal = false;     // BoolLit
  std::string Name;         // VarRef, FieldRead (field), BrSet/LcApp (group)
  UnOp UOp = UnOp::Not;     // Unary
  BinOp BOp = BinOp::Add;   // Binary
  std::vector<Expr *> Args; // children

  Expr *arg(unsigned I) const { return Args[I]; }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t {
  VarDecl,      ///< var x: T (:= e)?   (ghost variants marked IsGhost)
  Assign,       ///< x := e   (also field lookup y := x.f via FieldRead expr)
  Mut,          ///< Mut(x.f, e): mutation + impact-set update (Section 4.1)
  NewObj,       ///< NewObj(x): allocation + add to every broken set
  AssertLcRemove, ///< AssertLCAndRemove(group, e)
  InferLc,      ///< InferLCOutsideBr(group, e)
  Assert,
  Assume,
  If,
  While,
  Call, ///< call r1, r2 := proc(args)
  Return,
  Block,
  GhostBlock, ///< ghost { ... }
};

struct Stmt;

struct Stmt {
  StmtKind Kind = StmtKind::Block;
  SourceLoc Loc;
  bool IsGhost = false; ///< VarDecl/Assign inside ghost context or declared

  // VarDecl
  std::string VarName;
  Type VarType;
  Expr *Init = nullptr; // optional

  // Assign: LHS var name (VarName) and RHS (Init). Field reads appear as
  // FieldRead on the RHS; there is no field write outside Mut.
  // Mut: Target (FieldRead expr: base.field), Init = value
  Expr *Target = nullptr;

  // AssertLcRemove / InferLc / BrSet group
  std::string Group;

  // Assert/Assume/If/While condition
  Expr *Cond = nullptr;

  // If/While/Block/GhostBlock bodies
  std::vector<Stmt *> Body;
  std::vector<Stmt *> ElseBody;

  // While annotations
  std::vector<Expr *> Invariants;
  Expr *Decreases = nullptr;

  // Call
  std::string Callee;
  std::vector<std::string> CallLhs;
  std::vector<Expr *> CallArgs;
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

struct FieldDecl {
  std::string Name;
  Type Ty;
  bool IsGhost = false;
  SourceLoc Loc;
};

/// One named group of local conditions (Definition 2.4's LC; several
/// groups model the finer-grained broken sets of Sections 3.5/4.4).
struct LocalCondDecl {
  std::string Name;
  std::string Param; ///< the universally quantified location variable
  Expr *Body = nullptr;
  SourceLoc Loc;
};

/// Impact set for mutations of one field w.r.t. one group (Table 1/3/4).
struct ImpactDecl {
  std::string Field;
  std::string Group;
  Expr *Precondition = nullptr;  ///< optional mutation precondition (Table 4)
  std::vector<Expr *> Terms;     ///< location terms over the variable `x`
  std::string Param = "x";
  SourceLoc Loc;
};

/// An intrinsic definition (Definition 2.4): ghost maps G as ghost fields,
/// local condition(s) LC, correlation formula phi.
struct StructureDecl {
  std::string Name;
  std::vector<FieldDecl> Fields;
  std::vector<LocalCondDecl> Locals;
  std::string CorrelationParam;
  Expr *CorrelationBody = nullptr; // optional
  std::vector<ImpactDecl> Impacts;
  SourceLoc Loc;

  const FieldDecl *findField(const std::string &N) const {
    for (const FieldDecl &F : Fields)
      if (F.Name == N)
        return &F;
    return nullptr;
  }
  const LocalCondDecl *findLocal(const std::string &N) const {
    for (const LocalCondDecl &L : Locals)
      if (L.Name == N)
        return &L;
    return nullptr;
  }
};

struct ParamDecl {
  std::string Name;
  Type Ty;
  bool IsGhost = false;
};

struct ProcDecl {
  std::string Name;
  std::vector<ParamDecl> Params;
  std::vector<ParamDecl> Returns;
  std::vector<Expr *> Requires;
  std::vector<Expr *> Ensures;
  std::vector<Expr *> Modifies; ///< set<Loc>-typed frame terms
  Stmt *Body = nullptr;         ///< Block
  SourceLoc Loc;

  const ParamDecl *findParam(const std::string &N) const {
    for (const ParamDecl &P : Params)
      if (P.Name == N)
        return &P;
    for (const ParamDecl &P : Returns)
      if (P.Name == N)
        return &P;
    return nullptr;
  }
};

/// A compilation unit: one structure plus its procedures. Owns all AST
/// nodes.
class Module {
public:
  StructureDecl Structure;
  std::vector<ProcDecl> Procs;

  ProcDecl *findProc(const std::string &N) {
    for (ProcDecl &P : Procs)
      if (P.Name == N)
        return &P;
    return nullptr;
  }
  const ProcDecl *findProc(const std::string &N) const {
    for (const ProcDecl &P : Procs)
      if (P.Name == N)
        return &P;
    return nullptr;
  }

  // --- Node factories (arena-owned) ---
  Expr *newExpr(ExprKind K, SourceLoc Loc) {
    ExprArena.emplace_back(new Expr());
    Expr *E = ExprArena.back().get();
    E->Kind = K;
    E->Loc = Loc;
    return E;
  }
  Stmt *newStmt(StmtKind K, SourceLoc Loc) {
    StmtArena.emplace_back(new Stmt());
    Stmt *S = StmtArena.back().get();
    S->Kind = K;
    S->Loc = Loc;
    return S;
  }

private:
  std::deque<std::unique_ptr<Expr>> ExprArena;
  std::deque<std::unique_ptr<Stmt>> StmtArena;
};

} // namespace lang
} // namespace ids

#endif // IDS_LANG_AST_H
