//===- lang/Checks.h - Ghost-flow and well-behavedness checks --*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static disciplines from the paper:
///
///  - Ghost-code discipline (Figure 6 / Appendix A.2): ghost data may read
///    user data but never the other way around; ghost control flow cannot
///    steer user code; ghost loops must carry a `decreases` measure.
///
///  - Well-behavedness (Figure 2 / Section 4.1): mutations and allocations
///    happen only through the macros (guaranteed syntactically here),
///    branch/loop conditions never mention broken sets, and every mutated
///    field has a declared impact set for every local-condition group
///    whose LC reads that field.
///
/// Also provides the per-procedure annotation metrics used to regenerate
/// Table 2 (lines of code / spec / ghost annotation) and the LC size
/// (number of conjuncts).
///
//===----------------------------------------------------------------------===//

#ifndef IDS_LANG_CHECKS_H
#define IDS_LANG_CHECKS_H

#include "lang/Ast.h"

#include <set>

namespace ids {
namespace lang {

/// Checks the ghost-code discipline. Requires a type-checked module.
bool checkGhostDiscipline(Module &M, DiagEngine &Diags);

/// Checks well-behavedness. Requires a type-checked module.
bool checkWellBehaved(Module &M, DiagEngine &Diags);

/// Fields read by the local condition of group \p G (transitively through
/// the LC body), used for impact-set coverage and macro expansion.
std::set<std::string> fieldsReadByLocal(const StructureDecl &S,
                                        const std::string &Group);

/// True when \p E reads ghost state (ghost fields, ghost vars from
/// \p GhostVars, broken sets, the alloc set, lc(...) applications).
bool isGhostExpr(const StructureDecl &S, const Expr *E,
                 const std::set<std::string> &GhostVars);

/// Table 2 metrics for one procedure.
struct ProcMetrics {
  unsigned CodeLines = 0; ///< executable (user) statements
  unsigned SpecLines = 0; ///< requires / ensures / modifies clauses
  unsigned AnnotLines = 0; ///< ghost statements, macros, invariants
};
ProcMetrics computeMetrics(const StructureDecl &S, const ProcDecl &P);

/// Number of conjuncts across all local-condition groups (Table 2 col 2).
unsigned localConditionSize(const StructureDecl &S);

} // namespace lang
} // namespace ids

#endif // IDS_LANG_CHECKS_H
