//===- pipeline/QueryCache.h - Structural query result cache ---*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Caches solver outcomes per query formula across procedures and
/// impact checks, keyed by a canonical, manager-independent
/// serialization of the term DAG (two queries built in different
/// TermManagers hit the same entry iff they are structurally
/// identical). The cache stores the raw solver outcome — Sat with model
/// text, Unsat, or Unknown — never an obligation verdict, so entries
/// stay valid regardless of which obligation (sliced or not) produced
/// the query. Thread-safe; shared by all scheduler workers.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_PIPELINE_QUERYCACHE_H
#define IDS_PIPELINE_QUERYCACHE_H

#include "smt/Solver.h"
#include "smt/Term.h"

#include <mutex>
#include <string>
#include <unordered_map>

namespace ids {
namespace pipeline {

class QueryCache {
public:
  struct Outcome {
    smt::Solver::Result R = smt::Solver::Result::Unknown;
    std::string ModelText; ///< countermodel when R == Sat
    unsigned NumAtoms = 0;
    unsigned NumArrayLemmas = 0;
  };

  /// Canonical serialization of the query DAG: linear in DAG size, equal
  /// strings exactly for structurally identical DAGs, independent of the
  /// owning TermManager's interning order.
  static std::string keyFor(smt::TermRef Query);

  bool lookup(const std::string &Key, Outcome &Out) const;
  void insert(const std::string &Key, Outcome O);
  size_t size() const;

private:
  mutable std::mutex Mutex;
  std::unordered_map<std::string, Outcome> Map;
};

} // namespace pipeline
} // namespace ids

#endif // IDS_PIPELINE_QUERYCACHE_H
