//===- support/Trace.h - Structured tracing & metrics ----------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe, low-overhead span/counter subsystem — the measurement
/// foundation under the verifier's "predictable verification" claim.
/// Where the time of a 98-second `insert` goes must be a tracked
/// artifact, not folklore, before any of it is optimized.
///
/// Three facilities share one registry:
///
///  - **Counters** (`trace::counter("smt.decisions")`): named atomic
///    cells, always on. Call sites cache the returned reference in a
///    function-local static so the name is interned once; an increment
///    is a relaxed fetch_add. Counters carry either a running sum
///    (`add`) or a high-water mark (`recordMax`) — which one is the
///    call site's contract, recorded in the metric name ("max_*").
///    `statsJson()` snapshots every counter into one JSON object; the
///    same snapshot backs `--stats-json`, the human `--stats` footer
///    and serve mode's `{"cmd":"stats"}` answer, so the three can never
///    disagree.
///
///  - **Spans** (`trace::ScopedSpan`): RAII wall-clock intervals with
///    optional string/number args, collected into per-thread buffers
///    (one uncontended mutex each, registered once per thread) and
///    merged at export time into Chrome trace-event JSON
///    (`writeChromeTrace`, loadable in Perfetto or chrome://tracing).
///    Span collection is off unless `enableSpans()` ran (--trace-out);
///    a disabled span costs one relaxed atomic load.
///
///  - **Slow-query log**: `appendSlowQuery` writes one JSON object per
///    line (JSONL) to the file configured by `openSlowQueryLog`,
///    gated on `slowQueryThresholdMs()` (--slow-query-ms, default off).
///    The pipeline records every solver query that exceeds the
///    threshold: VC hash, procedure, atoms, lemmas, stage timings and
///    verdict.
///
/// Timestamps are steady_clock microseconds relative to a process-wide
/// epoch captured on first use — monotonic, comparable across threads.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SUPPORT_TRACE_H
#define IDS_SUPPORT_TRACE_H

#include "support/Json.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ids {
namespace trace {

// --------------------------------------------------------------- Counters --

/// A named metric cell. Monotonic counters use add(); high-water marks
/// use recordMax(). The address is stable for the process lifetime.
class Counter {
public:
  void add(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  void recordMax(uint64_t X) {
    uint64_t Cur = V.load(std::memory_order_relaxed);
    while (Cur < X &&
           !V.compare_exchange_weak(Cur, X, std::memory_order_relaxed)) {
    }
  }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  /// Tests only (via resetCountersForTest): zeroes the cell.
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Interns and returns the counter named \p Name. The lookup takes a
/// registry mutex — hot call sites cache the reference:
///   static trace::Counter &C = trace::counter("smt.decisions");
Counter &counter(const std::string &Name);

/// Name-sorted snapshot of every registered counter.
std::vector<std::pair<std::string, uint64_t>> counterSnapshot();

/// The cumulative metrics snapshot as one JSON object
/// {"schema":"ids-stats-v1","counters":{name:value,...}} — the single
/// source for --stats-json, the --stats footer and serve `stats`.
json::Value statsJson();
bool writeStatsJson(const std::string &Path, std::string &Error);

/// Zeroes every registered counter (tests only; addresses stay valid).
void resetCountersForTest();

// ------------------------------------------------------------------ Spans --

/// Microseconds since the process trace epoch (steady clock).
uint64_t nowUs();

bool spansEnabled();
void setSpansEnabled(bool On);

/// RAII span: records [construction, destruction) into the current
/// thread's buffer when span collection is enabled. Args attach
/// Perfetto-visible metadata; both arg() and the destructor are no-ops
/// on an inactive span, so call sites need no enabled-checks of their
/// own beyond skipping expensive arg construction via active().
class ScopedSpan {
public:
  explicit ScopedSpan(const char *Name);
  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;
  ~ScopedSpan();

  bool active() const { return Active; }
  void arg(const char *Key, std::string Val);
  void arg(const char *Key, double Num);

private:
  const char *Name;
  uint64_t StartUs = 0;
  std::vector<std::pair<std::string, json::Value>> Args;
  bool Active = false;
};

/// Merges every thread buffer into a Chrome trace-event document:
/// {"traceEvents":[{"name","ph":"X","ts","dur","pid","tid","args"},...]}.
json::Value chromeTraceJson();
bool writeChromeTrace(const std::string &Path, std::string &Error);

/// Drops every buffered span event (tests only).
void resetSpansForTest();

// --------------------------------------------------------- Slow-query log --

/// Threshold in milliseconds above which the pipeline records a solver
/// query into the slow-query log; 0 (the default) disables recording.
void setSlowQueryThresholdMs(double Ms);
double slowQueryThresholdMs();

/// Opens (appends to) the JSONL sink for slow-query records.
bool openSlowQueryLog(const std::string &Path, std::string &Error);
void closeSlowQueryLog();

/// Serializes \p Record as one line of the slow-query log (flushed per
/// record). No-op when no log is open.
void appendSlowQuery(const json::Value &Record);

} // namespace trace
} // namespace ids

#endif // IDS_SUPPORT_TRACE_H
