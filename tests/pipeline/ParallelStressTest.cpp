//===- tests/pipeline/ParallelStressTest.cpp - --jobs differential test ----===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel dispatch must be invisible in the verdicts: the full embedded
/// suite (procedures and impact checks) run at --jobs 8 — worker deques,
/// stealing, snapshot term managers, batch dependency chains and all —
/// must produce exactly the verdicts of the serial --jobs 1 run, which in
/// turn must match each benchmark's registry expectations. Eight workers
/// on any host forces heavy oversubscription and stealing even on small
/// core counts, which is the point of the stress.
///
//===----------------------------------------------------------------------===//

#include "driver/Verifier.h"
#include "structures/Registry.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

using namespace ids;

namespace {

const char *statusName(driver::Status St) {
  switch (St) {
  case driver::Status::Verified:
    return "verified";
  case driver::Status::Failed:
    return "failed";
  case driver::Status::Unknown:
    break;
  }
  return "unknown";
}

/// Every verdict the suite produces under --jobs N, keyed
/// "bench:proc" / "bench!field/group" so omissions surface as missing
/// keys rather than silently shrinking the comparison.
std::map<std::string, std::string> runSuite(unsigned Jobs) {
  std::map<std::string, std::string> Verdicts;
  for (const structures::Benchmark &B : structures::allBenchmarks()) {
    DiagEngine Diags;
    driver::VerifyOptions Opts;
    Opts.Jobs = Jobs;
    Opts.QueryTimeoutSeconds = 300;
    if (B.DefaultBudget > 0)
      Opts.MaxTheoryChecks = B.DefaultBudget;
    driver::ModuleResult M = driver::verifySource(B.Source, Opts, Diags);
    EXPECT_TRUE(M.FrontEndOk) << B.Name << ": " << Diags.toString();
    for (const driver::ProcResult &P : M.Procs)
      Verdicts[std::string(B.Name) + ":" + P.Name] = statusName(P.St);
    for (const driver::ImpactResult &I : M.Impacts)
      Verdicts[std::string(B.Name) + "!" + I.Field + "/" + I.Group] =
          I.Ok ? "ok" : "refuted";
  }
  return Verdicts;
}

TEST(ParallelStressTest, Jobs8MatchesJobs1AcrossFullSuite) {
  std::map<std::string, std::string> Serial = runSuite(1);
  std::map<std::string, std::string> Parallel = runSuite(8);

  ASSERT_FALSE(Serial.empty());
  EXPECT_EQ(Serial.size(), Parallel.size());
  for (const auto &KV : Serial) {
    auto It = Parallel.find(KV.first);
    ASSERT_NE(It, Parallel.end()) << "missing under --jobs 8: " << KV.first;
    EXPECT_EQ(It->second, KV.second) << KV.first;
  }

  // And the serial baseline itself matches the registry's expectations,
  // so "both wrong the same way" can't pass.
  for (const structures::Benchmark &B : structures::allBenchmarks())
    for (const structures::ProcExpectation &E : B.Expected) {
      auto It = Serial.find(std::string(B.Name) + ":" + E.Proc);
      ASSERT_NE(It, Serial.end()) << B.Name << ":" << E.Proc;
      EXPECT_EQ(It->second, E.Status) << B.Name << ":" << E.Proc;
    }
}

} // namespace
