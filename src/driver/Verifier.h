//===- driver/Verifier.h - End-to-end verification facade ------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point of the library: parse an IDS module, run the
/// static disciplines (types, ghost flow, well-behavedness), prove the
/// declared impact sets correct (Appendix C), and verify every procedure
/// by discharging its quantifier-free VC with the SMT solver. Reports
/// per-procedure timing, Table 2 metrics and counterexamples.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_DRIVER_VERIFIER_H
#define IDS_DRIVER_VERIFIER_H

#include "lang/Ast.h"
#include "lang/Checks.h"
#include "pipeline/Pipeline.h"

#include <memory>
#include <string>
#include <vector>

namespace ids {
namespace driver {

enum class Status { Verified, Failed, Unknown };

struct ProcResult {
  std::string Name;
  Status St = Status::Verified;
  double Seconds = 0.0;
  unsigned NumObligations = 0;
  std::string FailedObligation; ///< description + location when Failed
  std::string Counterexample;   ///< model text when Failed
  lang::ProcMetrics Metrics;
  pipeline::Stats Pipeline; ///< per-procedure VC pipeline statistics
  /// Verdict replayed from the instance's procedure-verdict cache (every
  /// obligation hash hit a previously solved, definitive verdict) — no
  /// solver query ran for this procedure.
  bool Cached = false;
};

struct ImpactResult {
  std::string Field;
  std::string Group;
  bool Ok = true;
  double Seconds = 0.0;
  pipeline::Stats Pipeline;
  bool Cached = false;   ///< replayed from the instance's verdict cache
  /// The request deadline expired before this check ran: Ok is false
  /// conservatively, but the impact set was NOT refuted.
  bool TimedOut = false;
};

struct ModuleResult {
  bool FrontEndOk = false;
  std::string StructureName;
  unsigned LcSize = 0;
  std::vector<ImpactResult> Impacts;
  std::vector<ProcResult> Procs;
  double ImpactSeconds = 0.0;

  bool allVerified() const {
    if (!FrontEndOk)
      return false;
    for (const ImpactResult &I : Impacts)
      if (!I.Ok)
        return false;
    for (const ProcResult &P : Procs)
      if (P.St != Status::Verified)
        return false;
    return true;
  }
};

struct VerifyOptions {
  /// Dafny-style quantified encoding (RQ3 baseline) instead of the
  /// default quantifier-free encoding.
  bool QuantifiedMode = false;
  /// Check mutation/callee footprints against modifies clauses.
  bool CheckFrames = true;
  /// Prove the declared impact sets correct before verifying procedures.
  bool CheckImpacts = true;
  /// Legacy VC splitting: partition obligations into this many
  /// disjunctive solver queries (the paper's Boogie configuration uses
  /// max 8). 0, the default, is the pipeline's native mode — one query
  /// per obligation, the independently decidable unit the methodology is
  /// built on.
  unsigned VcSplits = 0;
  /// VC pipeline stages (each independently disableable for differential
  /// testing) and the solver dispatch width.
  bool SimplifyVc = true;  ///< --no-simp
  bool SliceVc = true;     ///< --no-slice
  bool CacheQueries = true; ///< --no-cache
  /// Shared-prefix obligation batching on incremental solver contexts;
  /// --no-incremental falls back to a fresh one-shot solve per query.
  bool Incremental = true;
  /// Lazy in-search array instantiation inside batch contexts;
  /// --eager-arrays restores the up-front demand closure (the
  /// differential baseline for the lazy mode).
  bool LazyArrays = true;
  /// Activity-based learned-clause deletion in the SAT core;
  /// --no-reduce-db disables it (differential baseline).
  bool ReduceDb = true;
  /// DPLL(T) theory propagation + incremental frame-pinned registration in
  /// batch contexts; --no-theory-prop restores the purely lazy full-model
  /// behavior (differential baseline).
  bool TheoryProp = true;
  unsigned Jobs = 0;        ///< --jobs N; 0 auto-detects hardware threads
  /// Restrict verification to this procedure (empty = all).
  std::string OnlyProc;
  /// Cross-check that generated VCs are quantifier-free (Section 5.1);
  /// always true in QF mode.
  bool CrossCheckQf = true;
  /// Per-query theory-check budget forwarded to the solver (0 =
  /// unlimited). Exhaustion is reported as Status::Unknown.
  uint64_t MaxTheoryChecks = 0;
  /// Per-query wall-clock budget in seconds (0 = unlimited).
  double QueryTimeoutSeconds = 0;
  /// Whole-request wall-clock budget in seconds (0 = unlimited): each
  /// impact check and procedure solves under the time remaining, and
  /// work past the deadline is reported as Status::Unknown instead of
  /// running. This is serve mode's per-request timeout; deadline
  /// Unknowns are never cached (they are budget artifacts).
  double TotalTimeoutSeconds = 0;
  /// Consult/populate the instance's procedure-verdict cache — skip
  /// procedures whose obligation hashes all match a previously solved,
  /// definitive (non-Unknown) verdict, replaying it as ProcResult::Cached.
  /// --no-reverify-cache disables reuse to force a fresh solve (entries
  /// are still recorded).
  bool ReuseProcVerdicts = true;
};

/// Parses and verifies a whole module from source text.
ModuleResult verifySource(const std::string &Source,
                          const VerifyOptions &Opts, DiagEngine &Diags);

/// Runs the front-end only (parse + checks); exposed for tooling/tests.
std::unique_ptr<lang::Module> frontEnd(const std::string &Source,
                                       DiagEngine &Diags);

} // namespace driver
} // namespace ids

#endif // IDS_DRIVER_VERIFIER_H
