//===- pipeline/QueryCache.h - Structural query result cache ---*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Caches solver outcomes per query formula across procedures and
/// impact checks, keyed by the interned terms' structural DAG hash
/// (128-bit, manager-independent: two queries built in different
/// TermManagers hit the same entry iff they are structurally identical,
/// up to the negligible 2^-128 collision odds of the hash pair). The
/// hash is computed incrementally at term-interning time, so keying a
/// query is O(1) — this replaced a canonical-string serialization that
/// rebuilt an O(formula-size) key on every lookup. The cache stores the
/// raw solver outcome — Sat with model text, Unsat, or Unknown — never
/// an obligation verdict, so entries stay valid regardless of which
/// obligation (sliced or not) produced the query. Thread-safe; shared by
/// all scheduler workers.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_PIPELINE_QUERYCACHE_H
#define IDS_PIPELINE_QUERYCACHE_H

#include "smt/Solver.h"
#include "smt/Term.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace ids {
namespace pipeline {

class QueryCache {
public:
  struct Outcome {
    smt::Solver::Result R = smt::Solver::Result::Unknown;
    std::string ModelText; ///< countermodel when R == Sat
    unsigned NumAtoms = 0;
    unsigned NumArrayLemmas = 0;
  };

  /// 128-bit structural key of a query DAG.
  struct Key {
    uint64_t Lo = 0;
    uint64_t Hi = 0;
    bool operator==(const Key &O) const { return Lo == O.Lo && Hi == O.Hi; }
    bool operator!=(const Key &O) const { return !(*this == O); }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      return static_cast<size_t>(K.Lo ^ (K.Hi * 0x9e3779b97f4a7c15ull));
    }
  };

  /// O(1): reads the structural hash computed when the term was interned.
  static Key keyFor(smt::TermRef Query) {
    return {Query->getStructHashLo(), Query->getStructHashHi()};
  }

  bool lookup(const Key &K, Outcome &Out) const;
  void insert(const Key &K, Outcome O);
  size_t size() const;

private:
  mutable std::mutex Mutex;
  std::unordered_map<Key, Outcome, KeyHash> Map;
};

} // namespace pipeline
} // namespace ids

#endif // IDS_PIPELINE_QUERYCACHE_H
