//===- driver/Serve.cpp - verification-as-a-service loop -------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "driver/Serve.h"

#include "driver/VerifierInstance.h"
#include "structures/Registry.h"
#include "support/Json.h"
#include "support/Trace.h"

#include <fstream>
#include <iostream>
#include <sstream>

using namespace ids;
using namespace ids::driver;

namespace {

json::Value errorResponse(const json::Value *Id, const std::string &Msg) {
  json::Value R = json::Value::object();
  if (Id)
    R.set("id", *Id);
  R.set("ok", json::Value::boolean(false));
  R.set("error", json::Value::string(Msg));
  return R;
}

const char *statusName(Status St) {
  switch (St) {
  case Status::Verified:
    return "verified";
  case Status::Failed:
    return "failed";
  case Status::Unknown:
    break;
  }
  return "unknown";
}

/// Reads an optional boolean request field; false return = type error.
bool readBool(const json::Value &Req, const char *Key, bool &Out,
              std::string &Err) {
  const json::Value *V = Req.get(Key);
  if (!V)
    return true;
  if (!V->isBool()) {
    Err = std::string("field '") + Key + "' must be a boolean";
    return false;
  }
  Out = V->asBool();
  return true;
}

/// Reads an optional non-negative number field; false return = type error.
bool readNumber(const json::Value &Req, const char *Key, double &Out,
                std::string &Err) {
  const json::Value *V = Req.get(Key);
  if (!V)
    return true;
  if (!V->isNumber() || V->asNumber() < 0) {
    Err = std::string("field '") + Key + "' must be a non-negative number";
    return false;
  }
  Out = V->asNumber();
  return true;
}

json::Value handleRequest(VerifierInstance &Inst, const CliArgs &Base,
                          const std::string &Line) {
  std::string ParseErr;
  json::Value Req = json::Value::parse(Line, ParseErr);
  if (!ParseErr.empty())
    return errorResponse(nullptr, "invalid request: " + ParseErr);
  if (!Req.isObject())
    return errorResponse(nullptr, "invalid request: expected a JSON object");
  const json::Value *Id = Req.get("id");

  // ---- Commands: non-verify requests, dispatched before selector
  // validation ("cmd" and a source selector are mutually exclusive). ----
  if (const json::Value *Cmd = Req.get("cmd")) {
    if (!Cmd->isString())
      return errorResponse(Id, "field 'cmd' must be a string");
    if (Cmd->asString() == "stats") {
      // The same snapshot --stats-json writes: {"schema","counters"}
      // spliced into the response envelope.
      json::Value Resp = json::Value::object();
      if (Id)
        Resp.set("id", *Id);
      Resp.set("ok", json::Value::boolean(true));
      const json::Value Snap = trace::statsJson();
      for (const auto &[Key, Val] : Snap.members())
        Resp.set(Key, Val);
      return Resp;
    }
    return errorResponse(Id, "unknown cmd '" + Cmd->asString() +
                                 "' (supported: \"stats\")");
  }

  // ---- Source selection: exactly one of source/path/benchmark. ----
  const json::Value *Src = Req.get("source");
  const json::Value *Path = Req.get("path");
  const json::Value *Bench = Req.get("benchmark");
  int Selectors = (Src != nullptr) + (Path != nullptr) + (Bench != nullptr);
  if (Selectors != 1)
    return errorResponse(
        Id, "request must carry exactly one of \"source\", \"path\", "
            "\"benchmark\"");
  std::string Source;
  if (Src) {
    if (!Src->isString())
      return errorResponse(Id, "field 'source' must be a string");
    Source = Src->asString();
  } else if (Path) {
    if (!Path->isString())
      return errorResponse(Id, "field 'path' must be a string");
    std::ifstream In(Path->asString());
    if (!In)
      return errorResponse(Id, "cannot open '" + Path->asString() + "'");
    std::stringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  } else {
    if (!Bench->isString())
      return errorResponse(Id, "field 'benchmark' must be a string");
    const char *S = structures::findBenchmarkSource(Bench->asString());
    if (!S)
      return errorResponse(Id, "unknown benchmark '" + Bench->asString() +
                                   "' (try the --list command)");
    Source = S;
  }

  // ---- Per-request option overrides on top of the CLI defaults. ----
  VerifyOptions Opts = Base.Opts;
  std::string Err;
  bool Quant = Opts.QuantifiedMode, Frames = Opts.CheckFrames,
       Impacts = Opts.CheckImpacts, Reverify = !Opts.ReuseProcVerdicts;
  if (!readBool(Req, "quant", Quant, Err) ||
      !readBool(Req, "frames", Frames, Err) ||
      !readBool(Req, "impacts", Impacts, Err) ||
      !readBool(Req, "reverify", Reverify, Err))
    return errorResponse(Id, Err);
  Opts.QuantifiedMode = Quant;
  Opts.CheckFrames = Frames;
  Opts.CheckImpacts = Impacts;
  Opts.ReuseProcVerdicts = !Reverify;
  double Budget = -1;
  if (!readNumber(Req, "budget", Budget, Err) ||
      !readNumber(Req, "timeout", Opts.QueryTimeoutSeconds, Err) ||
      !readNumber(Req, "request_timeout", Opts.TotalTimeoutSeconds, Err))
    return errorResponse(Id, Err);
  if (Budget >= 0)
    Opts.MaxTheoryChecks = static_cast<uint64_t>(Budget);
  if (const json::Value *P = Req.get("proc")) {
    if (!P->isString())
      return errorResponse(Id, "field 'proc' must be a string");
    Opts.OnlyProc = P->asString();
  }

  // ---- Verify, with the request isolated from the daemon. ----
  // Cache-counter window: the instance counters are cumulative across
  // the daemon's lifetime, so THIS request's cache traffic is the delta.
  const pipeline::QueryCache::DiskStats QBefore = Inst.queryCache().diskStats();
  const VerifierInstance::Stats IBefore = Inst.stats();
  DiagEngine Diags;
  ModuleResult R;
  try {
    R = Inst.verify(Source, Opts, Diags);
  } catch (const std::exception &E) {
    return errorResponse(Id, std::string("internal error: ") + E.what());
  } catch (...) {
    return errorResponse(Id, "internal error: unknown exception");
  }
  if (!R.FrontEndOk)
    return errorResponse(Id, "front-end rejected module: " +
                                 Diags.toString());

  json::Value Resp = json::Value::object();
  if (Id)
    Resp.set("id", *Id);
  Resp.set("ok", json::Value::boolean(true));
  Resp.set("structure", json::Value::string(R.StructureName));
  Resp.set("lc_size", json::Value::number(R.LcSize));
  Resp.set("all_verified", json::Value::boolean(R.allVerified()));
  json::Value Imps = json::Value::array();
  for (const ImpactResult &I : R.Impacts) {
    json::Value V = json::Value::object();
    V.set("field", json::Value::string(I.Field));
    V.set("group", json::Value::string(I.Group));
    V.set("ok", json::Value::boolean(I.Ok));
    V.set("cached", json::Value::boolean(I.Cached));
    if (I.TimedOut)
      V.set("timed_out", json::Value::boolean(true));
    Imps.push(std::move(V));
  }
  Resp.set("impacts", std::move(Imps));
  json::Value Procs = json::Value::array();
  for (const ProcResult &P : R.Procs) {
    // name-first, status-adjacent member order is part of the protocol:
    // the serve e2e test textually matches "name":"x","status":"y".
    json::Value V = json::Value::object();
    V.set("name", json::Value::string(P.Name));
    V.set("status", json::Value::string(statusName(P.St)));
    V.set("cached", json::Value::boolean(P.Cached));
    V.set("seconds", json::Value::number(P.Seconds));
    V.set("obligations", json::Value::number(P.NumObligations));
    if (P.St != Status::Verified) {
      V.set("failed_obligation", json::Value::string(P.FailedObligation));
      if (!P.Counterexample.empty())
        V.set("counterexample", json::Value::string(P.Counterexample));
    }
    Procs.push(std::move(V));
  }
  Resp.set("procs", std::move(Procs));

  // Per-request cache statistics (PR 6 surfaced these only as a
  // daemon-exit stderr summary): query-cache traffic plus the verdict
  // replays that explain any zero-stat cached rows above.
  const pipeline::QueryCache::DiskStats QAfter = Inst.queryCache().diskStats();
  const VerifierInstance::Stats IAfter = Inst.stats();
  json::Value CacheObj = json::Value::object();
  CacheObj.set("query_hits",
               json::Value::number(double(QAfter.Hits - QBefore.Hits)));
  CacheObj.set("query_misses",
               json::Value::number(double((QAfter.Lookups - QBefore.Lookups) -
                                          (QAfter.Hits - QBefore.Hits))));
  CacheObj.set(
      "verdict_replays",
      json::Value::number(double((IAfter.ProcsCached - IBefore.ProcsCached) +
                                 (IAfter.ImpactsCached -
                                  IBefore.ImpactsCached))));
  Resp.set("cache", std::move(CacheObj));
  return Resp;
}

} // namespace

int driver::runServe(const CliArgs &Base, std::istream &In,
                     std::ostream &Out) {
  VerifierInstance Inst;
  if (!Base.CacheDir.empty()) {
    std::string Error;
    if (!Inst.attachCacheDir(Base.CacheDir, Error)) {
      std::cerr << Error << "\n";
      return 2;
    }
  }
  std::string Line;
  while (std::getline(In, Line)) {
    // Blank lines keep the connection alive without a response burst.
    bool Blank = true;
    for (char C : Line)
      Blank = Blank && (C == ' ' || C == '\t' || C == '\r');
    if (Blank)
      continue;
    static trace::Counter &ReqC = trace::counter("serve.requests");
    static trace::Counter &ErrC = trace::counter("serve.errors");
    ReqC.add();
    const uint64_t T0 = trace::nowUs();
    json::Value Resp;
    try {
      Resp = handleRequest(Inst, Base, Line);
    } catch (const std::exception &E) {
      Resp = errorResponse(nullptr, std::string("internal error: ") + E.what());
    } catch (...) {
      Resp = errorResponse(nullptr, "internal error: unknown exception");
    }
    const json::Value *Ok = Resp.get("ok");
    if (!Ok || !Ok->isBool() || !Ok->asBool())
      ErrC.add();
    // Appended last so existing member adjacency (tests textually match
    // "name":"x","status":"y") is untouched.
    Resp.set("elapsed_ms",
             json::Value::number(double(trace::nowUs() - T0) / 1000.0));
    Out << Resp.serialize() << "\n" << std::flush;
  }
  if (!Base.CacheDir.empty())
    std::cerr << Inst.cacheSummary() << "\n";
  return 0;
}
