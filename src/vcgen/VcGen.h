//===- vcgen/VcGen.h - Verification condition generation -------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates an annotated procedure into verification conditions over the
/// quantifier-free theories of Section 3.7 / Appendix A.3 of the paper:
///
///  - fields and monadic maps become updatable arrays `M_f : Loc -> T`,
///  - allocation is modelled with an `Alloc` set and closure assumptions,
///  - per-group broken sets `Br_g` are threaded through the FWYB macros,
///  - heap change across calls uses parameterized map updates (pwIte) over
///    the callee's `modifies` footprint plus fresh allocations,
///  - loops are cut at user-supplied invariants; ghost loops additionally
///    prove their `decreases` measure,
///  - frame obligations: every mutation target must lie in the procedure's
///    declared footprint or be freshly allocated, and every callee
///    footprint must be covered by the caller's.
///
/// The alternative "Dafny-style" quantified encoding (RQ3) replaces the
/// parameterized updates and allocation growth by universally quantified
/// axioms.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_VCGEN_VCGEN_H
#define IDS_VCGEN_VCGEN_H

#include "lang/Ast.h"
#include "smt/Term.h"

#include <string>
#include <vector>

namespace ids {
namespace vcgen {

/// One proof obligation: Guard => Claim must be valid.
struct Obligation {
  smt::TermRef Guard = nullptr;
  smt::TermRef Claim = nullptr;
  SourceLoc Loc;
  std::string Description;
};

struct VcOptions {
  /// Use quantified frame/allocation axioms instead of parameterized map
  /// updates (the RQ3 baseline).
  bool QuantifiedMode = false;
  /// Emit footprint obligations for mutations and callee frames.
  bool CheckFrames = true;
};

struct ProcVc {
  std::vector<Obligation> Obligations;

  /// All obligations as a single formula (to refute in one query).
  smt::TermRef conjoined(smt::TermManager &TM) const;
};

/// Generates the VC for \p P. The module must be fully checked.
ProcVc generateVc(smt::TermManager &TM, const lang::Module &M,
                  const lang::ProcDecl &P, const VcOptions &Opts);

/// Generates the impact-set correctness VC for one impact declaration
/// (Appendix C): mutating x.f must preserve LC_g(u) for any u outside the
/// declared impact set. Returns the obligations to prove.
ProcVc generateImpactVc(smt::TermManager &TM, const lang::Module &M,
                        const lang::ImpactDecl &Impact);

} // namespace vcgen
} // namespace ids

#endif // IDS_VCGEN_VCGEN_H
