//===- structures/Treap.cpp - Treap benchmark ------------------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Treaps: a BST on keys that is simultaneously a max-heap on priorities.
/// The intrinsic definition composes the BST local condition with a local
/// heap condition on the `prio` field — the priority order doubles as the
/// rank (acyclicity comes for free, Section 5.2's treap rows).
///
//===----------------------------------------------------------------------===//

#include "structures/Sources.h"

const char *ids::structures::TreapSource = R"IDS(
structure Treap {
  field l: Loc;
  field r: Loc;
  field key: int;
  field prio: int;
  ghost field p: Loc;
  ghost field min: int;
  ghost field max: int;

  // BST ordering via min/max plus the max-heap property on priorities;
  // the strictly decreasing priorities double as the rank map.
  local t (x) {
    x.min <= x.key && x.key <= x.max
    && (x.p != nil ==> (x.p.l == x || x.p.r == x))
    && (x.l == nil ==> x.min == x.key)
    && (x.l != nil ==>
          x.l.p == x && x.l.prio < x.prio
       && x.l.max < x.key && x.min == x.l.min)
    && (x.r == nil ==> x.max == x.key)
    && (x.r != nil ==>
          x.r.p == x && x.r.prio < x.prio
       && x.key < x.r.min && x.max == x.r.max)
  }

  correlation (y) { y.p == nil }

  impact l    [t] { x, old(x.l) }
  impact r    [t] { x, old(x.r) }
  impact p    [t] { x, old(x.p) }
  impact key  [t] { x }
  impact prio [t] { x, x.p }
  impact min  [t] { x, x.p }
  impact max  [t] { x, x.p }
}

// Key lookup; identical control structure to the BST search.
procedure find(root: Loc, k: int) returns (res: Loc)
  requires br(t) == {}
  requires root != nil
  ensures  br(t) == {}
  ensures  res != nil ==> res.key == k
{
  var cur: Loc;
  cur := root;
  res := nil;
  while (cur != nil && res == nil)
    invariant br(t) == {}
    invariant res != nil ==> res.key == k
  {
    InferLCOutsideBr(t, cur);
    if (cur.key == k) {
      res := cur;
    } else {
      if (k < cur.key) {
        cur := cur.l;
      } else {
        cur := cur.r;
      }
    }
  }
}

// The root of a valid treap carries the maximum priority among the nodes
// inspected on any root-to-node path; walking down priorities decrease.
procedure find_max_prio_on_path(root: Loc, k: int) returns (best: int)
  requires br(t) == {}
  requires root != nil
  ensures  br(t) == {}
  ensures  best == old(root.prio)
{
  var cur: Loc;
  InferLCOutsideBr(t, root);
  best := root.prio;
  cur := root;
  while (cur != nil)
    invariant br(t) == {}
    invariant cur != nil ==> cur.prio <= best
    invariant best == old(root.prio)
  {
    InferLCOutsideBr(t, cur);
    if (k < cur.key) {
      cur := cur.l;
    } else {
      cur := cur.r;
    }
  }
}
)IDS";
