//===- support/BigInt.cpp - Arbitrary-precision integers ------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace ids;

static constexpr uint32_t Base = 1000000000u; // 10^9

/// |Value| in unsigned space (handles INT64_MIN without overflow).
static uint64_t magnitudeOf(int64_t Value) {
  return Value < 0 ? ~static_cast<uint64_t>(Value) + 1
                   : static_cast<uint64_t>(Value);
}

BigInt BigInt::fromMagnitude(bool Neg, std::vector<uint32_t> L) {
  trim(L);
  // 2^63 has 19 decimal digits => at most 3 limbs can possibly fit int64.
  if (L.size() <= 3) {
    unsigned __int128 Magnitude = 0;
    for (size_t I = L.size(); I-- > 0;)
      Magnitude = Magnitude * Base + L[I];
    unsigned __int128 Limit = static_cast<unsigned __int128>(1) << 63;
    if (Neg ? Magnitude <= Limit : Magnitude < Limit) {
      BigInt R;
      R.Small = Neg ? static_cast<int64_t>(-static_cast<__int128>(Magnitude))
                    : static_cast<int64_t>(Magnitude);
      return R;
    }
  }
  BigInt R;
  R.IsBig = true;
  R.Negative = Neg;
  R.Limbs = std::move(L);
  return R;
}

BigInt BigInt::fromUnsignedMagnitude(bool Neg, uint64_t Magnitude) {
  uint64_t Limit = static_cast<uint64_t>(1) << 63;
  if (Neg ? Magnitude <= Limit : Magnitude < Limit) {
    BigInt R;
    R.Small = Neg ? static_cast<int64_t>(~Magnitude + 1)
                  : static_cast<int64_t>(Magnitude);
    return R;
  }
  std::vector<uint32_t> L;
  while (Magnitude != 0) {
    L.push_back(static_cast<uint32_t>(Magnitude % Base));
    Magnitude /= Base;
  }
  BigInt R;
  R.IsBig = true;
  R.Negative = Neg;
  R.Limbs = std::move(L);
  return R;
}

std::vector<uint32_t> BigInt::magnitudeLimbs() const {
  if (IsBig)
    return Limbs;
  std::vector<uint32_t> L;
  uint64_t Magnitude = magnitudeOf(Small);
  while (Magnitude != 0) {
    L.push_back(static_cast<uint32_t>(Magnitude % Base));
    Magnitude /= Base;
  }
  return L;
}

BigInt BigInt::fromString(const std::string &Text) {
  assert(!Text.empty() && "empty decimal literal");
  size_t Start = 0;
  bool Neg = false;
  if (Text[0] == '-') {
    Neg = true;
    Start = 1;
  }
  assert(Start < Text.size() && "sign without digits");
  std::vector<uint32_t> L;
  // Consume 9 decimal digits at a time from the least-significant end.
  size_t End = Text.size();
  while (End > Start) {
    size_t ChunkBegin = End >= Start + 9 ? End - 9 : Start;
    uint32_t Chunk = 0;
    for (size_t I = ChunkBegin; I < End; ++I) {
      assert(Text[I] >= '0' && Text[I] <= '9' && "malformed decimal literal");
      Chunk = Chunk * 10 + static_cast<uint32_t>(Text[I] - '0');
    }
    L.push_back(Chunk);
    End = ChunkBegin;
  }
  // We pushed most-significant chunks last while scanning right-to-left,
  // but each push corresponds to an increasing power of Base, which is
  // exactly the little-endian layout; fromMagnitude trims and smallifies.
  return fromMagnitude(Neg, std::move(L));
}

std::string BigInt::toString() const {
  if (!IsBig)
    return std::to_string(Small);
  std::string Result;
  if (Negative)
    Result += '-';
  char Buffer[16];
  snprintf(Buffer, sizeof(Buffer), "%u", Limbs.back());
  Result += Buffer;
  for (size_t I = Limbs.size() - 1; I-- > 0;) {
    snprintf(Buffer, sizeof(Buffer), "%09u", Limbs[I]);
    Result += Buffer;
  }
  return Result;
}

BigInt BigInt::operator-() const {
  if (!IsBig && Small != INT64_MIN)
    return BigInt(-Small);
  if (isZero())
    return BigInt();
  return fromMagnitude(!negSign(), magnitudeLimbs());
}

int BigInt::compareMagnitude(const std::vector<uint32_t> &A,
                             const std::vector<uint32_t> &B) {
  if (A.size() != B.size())
    return A.size() < B.size() ? -1 : 1;
  for (size_t I = A.size(); I-- > 0;)
    if (A[I] != B[I])
      return A[I] < B[I] ? -1 : 1;
  return 0;
}

void BigInt::trim(std::vector<uint32_t> &Limbs) {
  while (!Limbs.empty() && Limbs.back() == 0)
    Limbs.pop_back();
}

std::vector<uint32_t> BigInt::addMagnitude(const std::vector<uint32_t> &A,
                                           const std::vector<uint32_t> &B) {
  std::vector<uint32_t> Result;
  Result.reserve(std::max(A.size(), B.size()) + 1);
  uint32_t Carry = 0;
  for (size_t I = 0; I < A.size() || I < B.size(); ++I) {
    uint64_t Sum = Carry;
    if (I < A.size())
      Sum += A[I];
    if (I < B.size())
      Sum += B[I];
    Result.push_back(static_cast<uint32_t>(Sum % Base));
    Carry = static_cast<uint32_t>(Sum / Base);
  }
  if (Carry)
    Result.push_back(Carry);
  return Result;
}

std::vector<uint32_t> BigInt::subMagnitude(const std::vector<uint32_t> &A,
                                           const std::vector<uint32_t> &B) {
  assert(compareMagnitude(A, B) >= 0 && "subMagnitude requires |A| >= |B|");
  std::vector<uint32_t> Result;
  Result.reserve(A.size());
  int64_t Borrow = 0;
  for (size_t I = 0; I < A.size(); ++I) {
    int64_t Diff = static_cast<int64_t>(A[I]) - Borrow -
                   (I < B.size() ? static_cast<int64_t>(B[I]) : 0);
    if (Diff < 0) {
      Diff += Base;
      Borrow = 1;
    } else {
      Borrow = 0;
    }
    Result.push_back(static_cast<uint32_t>(Diff));
  }
  trim(Result);
  return Result;
}

BigInt BigInt::addBig(const BigInt &A, const BigInt &B) {
  std::vector<uint32_t> MA = A.magnitudeLimbs();
  std::vector<uint32_t> MB = B.magnitudeLimbs();
  bool NA = A.negSign(), NB = B.negSign();
  if (NA == NB)
    return fromMagnitude(NA, addMagnitude(MA, MB));
  int Cmp = compareMagnitude(MA, MB);
  if (Cmp == 0)
    return BigInt();
  if (Cmp > 0)
    return fromMagnitude(NA, subMagnitude(MA, MB));
  return fromMagnitude(NB, subMagnitude(MB, MA));
}

BigInt BigInt::operator+(const BigInt &RHS) const {
  if (!IsBig && !RHS.IsBig) {
    int64_t R;
    if (!__builtin_add_overflow(Small, RHS.Small, &R))
      return BigInt(R);
  }
  return addBig(*this, RHS);
}

BigInt BigInt::operator-(const BigInt &RHS) const {
  if (!IsBig && !RHS.IsBig) {
    int64_t R;
    if (!__builtin_sub_overflow(Small, RHS.Small, &R))
      return BigInt(R);
  }
  return addBig(*this, -RHS);
}

BigInt BigInt::operator*(const BigInt &RHS) const {
  if (!IsBig && !RHS.IsBig) {
    int64_t R;
    if (!__builtin_mul_overflow(Small, RHS.Small, &R))
      return BigInt(R);
  }
  if (isZero() || RHS.isZero())
    return BigInt();
  std::vector<uint32_t> MA = magnitudeLimbs();
  std::vector<uint32_t> MB = RHS.magnitudeLimbs();
  std::vector<uint64_t> Acc(MA.size() + MB.size(), 0);
  for (size_t I = 0; I < MA.size(); ++I) {
    uint64_t Carry = 0;
    for (size_t J = 0; J < MB.size(); ++J) {
      uint64_t Cur = Acc[I + J] + static_cast<uint64_t>(MA[I]) * MB[J] + Carry;
      Acc[I + J] = Cur % Base;
      Carry = Cur / Base;
    }
    size_t K = I + MB.size();
    while (Carry) {
      uint64_t Cur = Acc[K] + Carry;
      Acc[K] = Cur % Base;
      Carry = Cur / Base;
      ++K;
    }
  }
  std::vector<uint32_t> Product(Acc.begin(), Acc.end());
  return fromMagnitude(negSign() != RHS.negSign(), std::move(Product));
}

std::vector<uint32_t>
BigInt::divModMagnitude(const std::vector<uint32_t> &A,
                        const std::vector<uint32_t> &B,
                        std::vector<uint32_t> &Rem) {
  assert(!B.empty() && "division by zero");
  Rem.clear();
  if (compareMagnitude(A, B) < 0) {
    Rem = A;
    return {};
  }
  // Fast path: single-limb divisor.
  if (B.size() == 1) {
    std::vector<uint32_t> Quot(A.size(), 0);
    uint64_t Divisor = B[0];
    uint64_t Carry = 0;
    for (size_t I = A.size(); I-- > 0;) {
      uint64_t Cur = Carry * Base + A[I];
      Quot[I] = static_cast<uint32_t>(Cur / Divisor);
      Carry = Cur % Divisor;
    }
    trim(Quot);
    if (Carry)
      Rem.push_back(static_cast<uint32_t>(Carry));
    return Quot;
  }
  // Schoolbook long division, one result limb at a time, estimating each
  // quotient digit with 128-bit arithmetic on the top limbs and correcting
  // by at most a couple of steps.
  std::vector<uint32_t> Quot(A.size(), 0);
  std::vector<uint32_t> Current; // running remainder, little-endian
  auto MulSmall = [](const std::vector<uint32_t> &V, uint32_t D) {
    std::vector<uint32_t> R;
    R.reserve(V.size() + 1);
    uint64_t Carry = 0;
    for (uint32_t Limb : V) {
      uint64_t Cur = static_cast<uint64_t>(Limb) * D + Carry;
      R.push_back(static_cast<uint32_t>(Cur % Base));
      Carry = Cur / Base;
    }
    if (Carry)
      R.push_back(static_cast<uint32_t>(Carry));
    trim(R);
    return R;
  };
  for (size_t I = A.size(); I-- > 0;) {
    Current.insert(Current.begin(), A[I]);
    trim(Current);
    if (compareMagnitude(Current, B) < 0)
      continue;
    // Estimate the quotient digit from the aligned top limbs: take the top
    // T limbs of B and the corresponding T + (|Current| - |B|) top limbs of
    // Current (at most 4 limbs, which fits in 128 bits). Truncating the low
    // limbs leaves the estimate off by at most a couple of units in either
    // direction; the loops below correct it.
    size_t M = Current.size(), N = B.size();
    assert(M == N || M == N + 1);
    size_t T = N < 3 ? N : 3;
    unsigned __int128 Top = 0;
    for (size_t K = M; K-- > N - T;)
      Top = Top * Base + Current[K];
    unsigned __int128 Den = 0;
    for (size_t K = N; K-- > N - T;)
      Den = Den * Base + B[K];
    uint64_t Digit = static_cast<uint64_t>(Top / Den);
    if (Digit >= Base)
      Digit = Base - 1;
    std::vector<uint32_t> Product = MulSmall(B, static_cast<uint32_t>(Digit));
    while (compareMagnitude(Product, Current) > 0) {
      --Digit;
      Product = MulSmall(B, static_cast<uint32_t>(Digit));
    }
    // The estimate can also be low; correct upward.
    for (;;) {
      std::vector<uint32_t> Next = MulSmall(B, static_cast<uint32_t>(Digit + 1));
      if (compareMagnitude(Next, Current) > 0)
        break;
      ++Digit;
      Product = Next;
    }
    Current = subMagnitude(Current, Product);
    Quot[I] = static_cast<uint32_t>(Digit);
  }
  trim(Quot);
  Rem = Current;
  return Quot;
}

BigInt BigInt::operator/(const BigInt &RHS) const {
  assert(!RHS.isZero() && "division by zero");
  if (!IsBig && !RHS.IsBig) {
    // INT64_MIN / -1 overflows int64; let the limb path produce +2^63.
    if (!(Small == INT64_MIN && RHS.Small == -1))
      return BigInt(Small / RHS.Small);
  }
  std::vector<uint32_t> Rem;
  std::vector<uint32_t> Quot =
      divModMagnitude(magnitudeLimbs(), RHS.magnitudeLimbs(), Rem);
  return fromMagnitude(negSign() != RHS.negSign(), std::move(Quot));
}

BigInt BigInt::operator%(const BigInt &RHS) const {
  assert(!RHS.isZero() && "division by zero");
  if (!IsBig && !RHS.IsBig) {
    if (Small == INT64_MIN && RHS.Small == -1)
      return BigInt(); // quotient overflows; remainder is exactly 0
    return BigInt(Small % RHS.Small);
  }
  std::vector<uint32_t> Rem;
  divModMagnitude(magnitudeLimbs(), RHS.magnitudeLimbs(), Rem);
  return fromMagnitude(negSign(), std::move(Rem));
}

int BigInt::compare(const BigInt &RHS) const {
  if (!IsBig && !RHS.IsBig)
    return Small < RHS.Small ? -1 : (Small > RHS.Small ? 1 : 0);
  // Canonical representation: a big magnitude always exceeds any small one.
  if (!IsBig)
    return RHS.Negative ? 1 : -1;
  if (!RHS.IsBig)
    return Negative ? -1 : 1;
  if (Negative != RHS.Negative)
    return Negative ? -1 : 1;
  int MagCmp = compareMagnitude(Limbs, RHS.Limbs);
  return Negative ? -MagCmp : MagCmp;
}

BigInt BigInt::abs() const {
  if (!isNegative())
    return *this;
  return -*this;
}

BigInt BigInt::gcd(BigInt A, BigInt B) {
  if (!A.IsBig && !B.IsBig) {
    uint64_t X = magnitudeOf(A.Small), Y = magnitudeOf(B.Small);
    while (Y != 0) {
      uint64_t T = X % Y;
      X = Y;
      Y = T;
    }
    return fromUnsignedMagnitude(false, X);
  }
  A = A.abs();
  B = B.abs();
  while (!B.isZero()) {
    BigInt R = A % B;
    A = B;
    B = R;
  }
  return A;
}

size_t BigInt::hash() const {
  size_t H = isNegative() ? 0x9e3779b97f4a7c15ull : 0;
  if (!IsBig) {
    uint64_t Magnitude = magnitudeOf(Small);
    while (Magnitude != 0) {
      H = H * 1000003ull + static_cast<uint32_t>(Magnitude % Base);
      Magnitude /= Base;
    }
    return H;
  }
  for (uint32_t Limb : Limbs)
    H = H * 1000003ull + Limb;
  return H;
}
