//===- smt/SolverContext.h - Incremental SMT solving -----------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental SMT solving over an assertion stack: assertTerm() adds a
/// formula at the current level, push()/pop() bracket levels, and
/// checkSat() decides the conjunction of every active assertion. The
/// point is shared-prefix reuse across the many near-identical queries of
/// a verification run:
///
///  - the Tseitin CNF of an assertion is built once and its clauses are
///    retracted exactly when the level that added them pops (SatSolver
///    assertion levels);
///  - theory conflict clauses learned while solving one query are valid
///    theory lemmas (assertion level 0), so they survive pops and prune
///    the search of every later query on the same prefix;
///  - demand-driven array instantiations triggered by prefix assertions
///    are computed once and survive across queries (ArrayReducer levels),
///    while instantiations made above the current level are retracted on
///    pop;
///  - the congruence closure and simplex engines are persistent and
///    backtrackable, synced to the SAT trail so consecutive theory checks
///    re-assert only the diverging suffix of the assignment.
///
/// The intended protocol for a batched obligation group:
///
///   SolverContext Ctx(TM, Opts);
///   Ctx.assertTerm(SharedPrefix);          // level 0, asserted once
///   for (auto &Claim : Claims) {
///     Ctx.push();
///     Ctx.assertTerm(Negate(Claim));
///     auto R = Ctx.checkSat();             // Unsat == claim proved
///     Ctx.pop();
///   }
///
/// checkSatAssuming() wraps one push/assert/check/pop round.
///
/// Quantifier-free only: the quantified (RQ3) encoding instantiates ahead
/// of time and keeps using the one-shot Solver.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SMT_SOLVERCONTEXT_H
#define IDS_SMT_SOLVERCONTEXT_H

#include "smt/SolverTypes.h"
#include "smt/TheoryEngine.h"

#include <memory>
#include <vector>

namespace ids {
namespace smt {

class SolverContext {
public:
  using Result = SolverResult;

  SolverContext(TermManager &TM, SolverOptions O);
  ~SolverContext();

  /// Opens an assertion level.
  void push();
  /// Retracts everything asserted above the matching push.
  void pop();
  unsigned numLevels() const { return Core.Sat.assertLevel(); }

  /// Asserts \p F (quantifier-free) at the current level.
  void assertTerm(TermRef F);

  /// Decides the conjunction of all active assertions.
  Result checkSat();

  /// push(); assertTerm(Assumption); checkSat(); pop() — the verdict of
  /// the active stack strengthened by \p Assumption.
  Result checkSatAssuming(TermRef Assumption);

  /// The model after a Sat result (valid until the next mutating call).
  const Model &model() const { return Core.CurrentModel; }

  /// Cumulative statistics over the whole context lifetime.
  const SolverStats &stats() const { return Core.St; }

  /// Statistics of the most recent checkSat() alone. Counters like
  /// ModelGiveUps are deltas per solve — a give-up while solving one query
  /// must not bleed into the escalation decision of the next (the stats
  /// level-safety the incremental refactor requires).
  struct CheckStats {
    SolverResult R = SolverResult::Unknown;
    uint64_t TheoryChecks = 0;
    uint64_t ModelGiveUps = 0;
    uint64_t TheoryAssertsReused = 0;
    uint64_t LemmasRetained = 0;
    /// Deferred array lemmas asserted from inside this check's CDCL loop
    /// (lazy instantiation mode; 0 in the up-front modes).
    uint64_t LazyInstantiations = 0;
    /// Theory-propagation activity inside this check (0 with
    /// --no-theory-prop): literals asserted from partial-trail entailment
    /// and conflicts caught before a full propositional model.
    uint64_t TheoryPropagations = 0;
    uint64_t PropagationConflicts = 0;
    unsigned NumAtoms = 0;       ///< atoms live in the CNF for this check
    unsigned NumArrayLemmas = 0; ///< cumulative reducer lemmas at check time
  };
  const CheckStats &lastCheckStats() const { return LastCheck; }

  /// Live counter snapshots between checks: the atoms interned and array
  /// lemmas instantiated so far in this context. Callers batching many
  /// queries on one context use these to turn the context-cumulative
  /// CheckStats counters into per-query deltas (e.g. "prefix share +
  /// what this member added"), comparable with a one-shot solve.
  unsigned numAtoms() const {
    return static_cast<unsigned>(Core.Atoms.size());
  }
  unsigned numArrayLemmas() const { return Reducer.stats().NumLemmas; }

private:
  SolverCore Core;
  ArrayReducer Reducer;
  TheoryEngine Engine;
  /// Lifted forms of the assertions per level (for the model-evaluation
  /// safety net: a candidate model must satisfy every ACTIVE assertion).
  std::vector<std::vector<TermRef>> LevelAsserts;
  /// Non-atom terms Tseitin-encoded per level: their defining clauses die
  /// with the level, so the cache entries must be invalidated on pop or a
  /// re-assertion would reference an unconstrained auxiliary variable.
  std::vector<TermRef> EncodingLog;
  std::vector<size_t> EncodingMarks;
  CheckStats LastCheck;
  bool NeedReset = false; ///< a solve left its assignment in place
  /// CcRegistrationsReused already folded into the metrics registry
  /// (registration reuse accrues in assertTerm AND during in-search lemma
  /// flushes, so both checkSat and assertTerm flush the delta).
  uint64_t CcReusedFlushed = 0;
  void flushRegistrationCounter();
};

} // namespace smt
} // namespace ids

#endif // IDS_SMT_SOLVERCONTEXT_H
