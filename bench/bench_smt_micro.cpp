//===- bench/bench_smt_micro.cpp - Solver substrate micro-benchmarks -------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E7 (DESIGN.md): google-benchmark micro-benchmarks for the solver
/// substrate the reproduction is built on — SAT search (pigeonhole), EUF
/// congruence chains, simplex feasibility, and the generalized-array
/// reduction pattern used by parameterized map updates (Appendix A.3).
///
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#include <benchmark/benchmark.h>

using namespace ids;
using namespace ids::smt;

static void BM_SatPigeonhole(benchmark::State &State) {
  const int Holes = static_cast<int>(State.range(0));
  for (auto _ : State) {
    sat::SatSolver S;
    std::vector<std::vector<sat::Var>> P(Holes + 1);
    for (auto &Row : P)
      for (int H = 0; H < Holes; ++H)
        Row.push_back(S.newVar());
    for (auto &Row : P) {
      std::vector<sat::Lit> C;
      for (int H = 0; H < Holes; ++H)
        C.push_back(sat::Lit(Row[H], false));
      S.addClause(C);
    }
    for (int H = 0; H < Holes; ++H)
      for (int I = 0; I <= Holes; ++I)
        for (int J = I + 1; J <= Holes; ++J)
          S.addClause({sat::Lit(P[I][H], true), sat::Lit(P[J][H], true)});
    benchmark::DoNotOptimize(S.solve());
  }
}
BENCHMARK(BM_SatPigeonhole)->Arg(5)->Arg(6)->Arg(7);

static void BM_EufCongruenceChain(benchmark::State &State) {
  const int Depth = static_cast<int>(State.range(0));
  for (auto _ : State) {
    TermManager TM;
    const FuncDecl *F =
        TM.getFuncDecl("f", {TM.locSort()}, TM.locSort());
    TermRef A = TM.mkVar("a", TM.locSort());
    TermRef B = TM.mkVar("b", TM.locSort());
    TermRef FA = A, FB = B;
    for (int I = 0; I < Depth; ++I) {
      FA = TM.mkApply(F, {FA});
      FB = TM.mkApply(F, {FB});
    }
    // a = b && f^n(a) != f^n(b): UNSAT via congruence.
    Solver S(TM);
    benchmark::DoNotOptimize(
        S.checkSat(TM.mkAnd(TM.mkEq(A, B), TM.mkDistinct(FA, FB))));
  }
}
BENCHMARK(BM_EufCongruenceChain)->Arg(8)->Arg(32)->Arg(128);

static void BM_SimplexChain(benchmark::State &State) {
  const int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    TermManager TM;
    std::vector<TermRef> Xs;
    for (int I = 0; I < N; ++I)
      Xs.push_back(TM.mkVar("x" + std::to_string(I), TM.ratSort()));
    // x0 < x1 < ... < x_{n-1} < x0: UNSAT cycle.
    std::vector<TermRef> Cs;
    for (int I = 0; I + 1 < N; ++I)
      Cs.push_back(TM.mkLt(Xs[I], Xs[I + 1]));
    Cs.push_back(TM.mkLt(Xs[N - 1], Xs[0]));
    Solver S(TM);
    benchmark::DoNotOptimize(S.checkSat(TM.mkAnd(Cs)));
  }
}
BENCHMARK(BM_SimplexChain)->Arg(8)->Arg(32)->Arg(64);

static void BM_ParameterizedMapUpdate(benchmark::State &State) {
  const int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    TermManager TM;
    const Sort *ArrS = TM.getArraySort(TM.locSort(), TM.intSort());
    const Sort *SetS = TM.getArraySort(TM.locSort(), TM.boolSort());
    TermRef M = TM.mkVar("M", ArrS);
    TermRef H = TM.mkVar("H", ArrS);
    TermRef Mod = TM.mkVar("Mod", SetS);
    TermRef Upd = TM.mkPwIte(Mod, H, M);
    std::vector<TermRef> Cs;
    for (int I = 0; I < N; ++I) {
      TermRef O = TM.mkVar("o" + std::to_string(I), TM.locSort());
      Cs.push_back(TM.mkNot(TM.mkMember(O, Mod)));
      Cs.push_back(TM.mkEq(TM.mkSelect(Upd, O), TM.mkSelect(M, O)));
    }
    // All frame equalities hold: SAT query exercising the reduction.
    Solver S(TM);
    benchmark::DoNotOptimize(S.checkSat(TM.mkAnd(Cs)));
  }
}
BENCHMARK(BM_ParameterizedMapUpdate)->Arg(4)->Arg(16)->Arg(32);

BENCHMARK_MAIN();
