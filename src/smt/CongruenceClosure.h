//===- smt/CongruenceClosure.h - EUF congruence closure --------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Congruence closure over the term DAG with conflict explanations
/// (Nieuwenhuis-Oliveras proof forest). This is the EUF half of the theory
/// stack: after the eager array reduction, VC reasoning needs exactly
/// congruence of `select`/`Apply` applications, equality/disequality
/// bookkeeping, and clash detection between distinct interpreted values
/// (numerals, true/false) that arithmetic merges into classes.
///
/// Every assertion carries an integer tag; conflicts and equality
/// explanations are reported as sets of tags, which the SMT driver maps
/// back to literals (or to composite theory-propagation reasons).
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SMT_CONGRUENCECLOSURE_H
#define IDS_SMT_CONGRUENCECLOSURE_H

#include "smt/Term.h"

#include <set>
#include <unordered_map>
#include <vector>

namespace ids {
namespace smt {

/// Congruence closure with explanations and a trail-based undo stack:
/// push() opens a backtracking level, pop() undoes every registration,
/// merge, disequality, signature entry and path compression performed
/// above it (Failed state included). The persistent theory engine uses
/// one level per synced SAT-trail literal so consecutive theory checks
/// only re-assert the diverging suffix of the assignment instead of
/// rebuilding the closure from scratch.
class CongruenceClosure {
public:
  explicit CongruenceClosure(TermManager &TM) : TM(TM) {}

  /// Opens an undo level.
  void push();
  /// Undoes everything since the matching push (including a conflict
  /// entered above it).
  void pop();
  unsigned numLevels() const { return static_cast<unsigned>(Levels.size()); }

  /// Registers \p T and all subterms. Idempotent.
  void registerTerm(TermRef T);

  /// Asserts T1 == T2 under explanation tag \p Tag. Returns false on
  /// conflict (query conflictTags() for the explanation).
  bool assertEqual(TermRef T1, TermRef T2, int Tag);

  /// Asserts T1 != T2 under \p Tag. Returns false on conflict.
  bool assertDisequal(TermRef T1, TermRef T2, int Tag);

  bool inConflict() const { return Failed; }
  const std::vector<int> &conflictTags() const { return ConflictTags; }

  /// True when \p T has been registered (directly or as a subterm).
  bool isRegistered(TermRef T) const { return nodeOf(T) >= 0; }

  /// True when both terms are registered and currently in the same class,
  /// or are the identical term.
  bool areEqual(TermRef T1, TermRef T2);
  /// True when the classes of the two terms are known distinct (asserted
  /// disequal or hold distinct interpreted values).
  bool areDisequal(TermRef T1, TermRef T2);

  /// Explanation (set of tags) for an equality that currently holds.
  void explainEquality(TermRef T1, TermRef T2, std::set<int> &TagsOut);

  /// Explanation for a disequality that currently holds (areDisequal):
  /// the tag of a witnessing input disequality plus the equality paths
  /// from T1/T2 to its endpoints, or the paths to the two distinct
  /// interpreted values. Returns false if no witness was found (caller
  /// should then skip the propagation).
  bool explainDisequality(TermRef T1, TermRef T2, std::set<int> &TagsOut);

  /// A pinned disequality witness: the separating input disequality's tag
  /// (or -1 for a distinct-interpreted-values clash) plus the two proof
  /// path endpoint pairs (A1 ~ B1 and A2 ~ B2) that tie the queried terms
  /// to it. Because proof-forest paths between two connected nodes are
  /// frozen while both stay connected (later merges only join previously
  /// disconnected classes), a witness captured now can be explained
  /// LATER — after further merges — and still yield exactly the tags
  /// that justified the disequality at capture time. This is what makes
  /// lazy propagation reasons sound.
  struct DiseqWitness {
    int Tag = -1;
    int A1 = -1, B1 = -1;
    int A2 = -1, B2 = -1;
  };
  /// Finds a witness for a currently-holding disequality without walking
  /// the proof paths (the expensive part of explainDisequality). Returns
  /// false if none is found.
  bool diseqWitness(TermRef T1, TermRef T2, DiseqWitness &Out);
  /// Expands a pinned witness into tags: the witness tag plus both
  /// equality paths.
  void explainWitness(const DiseqWitness &W, std::set<int> &TagsOut);

  // ---------------------------------------------- Equality watching --
  /// Registers both terms and watches their classes: whenever a merge or
  /// disequality assertion makes X == Y entailed true or false, the pair
  /// (AtomId, polarity) is appended to pendingEntailed(). Watches are
  /// trailed (undone by pop) and fire immediately when the status is
  /// already decided at registration time. Best-effort: a missed
  /// propagation is harmless, the full-model check remains the backstop.
  void watchEquality(int AtomId, TermRef X, TermRef Y);
  /// Atoms whose watched equality became entailed, with the entailed
  /// polarity. May contain duplicates and stale entries (generated under
  /// state that was since popped); consumers must revalidate.
  const std::vector<std::pair<int, bool>> &pendingEntailed() const {
    return PendingEntailed;
  }
  void clearPendingEntailed() { PendingEntailed.clear(); }

  /// Representative term of T's class (for model construction).
  TermRef representative(TermRef T);

  /// All registered terms, for model enumeration.
  const std::vector<TermRef> &terms() const { return NodeTerms; }

private:
  int getId(TermRef T);
  /// CC node of a registered term, or -1. Terms carry a dense per-manager
  /// interning id, so this is a flat array read — no hashing.
  int nodeOf(TermRef T) const {
    unsigned TId = T->getId();
    return TId < NodeOf.size() ? NodeOf[TId] : -1;
  }
  int findRoot(int Node);
  bool mergeRoots(int A, int B);
  bool processPending();
  /// areDisequal on class roots (no term lookup): distinct interpreted
  /// values, or a witnessing input disequality between the two classes.
  bool rootsDisequal(int Ra, int Rb);
  void explainPath(int A, int B, std::set<int> &TagsOut,
                   std::set<std::pair<int, int>> &SeenPairs);
  void explainPair(int A, int B, std::set<int> &TagsOut,
                   std::set<std::pair<int, int>> &SeenPairs);
  int proofAncestorDepth(int Node);
  /// Checks the last \p MovedCount entries of DiseqIdx[\p Root] for a
  /// violated disequality (both endpoints now in Root's class).
  bool checkMovedDiseqs(int Root, int MovedCount);
  /// Fills \p Sig with the node's current signature (kind, symbol, child
  /// roots). Caller-provided scratch so lookups allocate nothing.
  void signatureOf(int Node, std::vector<int> &Sig);

  struct Reason {
    // Tag >= 0: input assertion; Tag == -1: congruence of (CongA, CongB).
    int Tag = -1;
    int CongA = -1;
    int CongB = -1;
  };

  /// One undoable mutation. Entries are replayed in reverse on pop().
  struct TrailEntry {
    enum Kind : uint8_t {
      Register, ///< node A was created
      UseListPush, ///< a parent was pushed onto UseLists[A]
      SigInsert,   ///< SigIdx names the inserted key (in SigKeys)
      Merge,       ///< class of root A absorbed into root B; C is the
                   ///< proof child, D its former proof root, E the former
                   ///< ValueNode[B], F the number of use-list entries moved,
                   ///< G the number of diseq-index entries moved, H the
                   ///< number of equality watches moved
      Diseq,       ///< a disequality was appended (indexed under roots A, B)
      Compress,    ///< UnionParent[A] changed from B (path compression)
      WatchPush,   ///< an equality watch was pushed onto EqWatches[A]
    };
    Kind K;
    int A = -1, B = -1, C = -1, D = -1, E = -1, F = 0, G = 0, H = 0;
  };
  struct LevelMark {
    size_t TrailSize;
    size_t SigKeysSize;
    bool Failed;
    std::vector<int> ConflictTags;
  };

  void undoTo(size_t TrailSize);
  void rerootProofTree(int NewRoot);

  TermManager &TM;
  /// Term interning id -> CC node (-1 when unregistered).
  std::vector<int> NodeOf;
  std::vector<TermRef> NodeTerms;
  std::vector<int> SigScratch; // signatureOf scratch
  std::vector<int> UnionParent;   // union-find with path compression
  std::vector<int> ClassSize;
  std::vector<int> ProofParent;   // explanation forest (no compression)
  std::vector<Reason> ProofReason;
  std::vector<std::vector<int>> UseLists; // parents per root
  std::vector<int> ValueNode;     // interpreted value in class, or -1
  /// FNV-style hash over a signature vector (kind, symbol, child roots).
  struct SigHash {
    size_t operator()(const std::vector<int> &Sig) const {
      size_t H = 0xcbf29ce484222325ull;
      for (int V : Sig)
        H = (H ^ static_cast<uint32_t>(V)) * 0x100000001b3ull;
      return H;
    }
  };
  std::unordered_map<std::vector<int>, int, SigHash> SigTable;
  std::vector<std::tuple<int, int, int>> Diseqs; // (a, b, tag)
  /// Per-root index into Diseqs: the disequalities with one endpoint in
  /// that root's class. A merge moves the absorbed root's entries onto the
  /// surviving root, so violation checks touch only the moved entries
  /// instead of scanning every disequality.
  std::vector<std::vector<int>> DiseqIdx;
  /// A watched equality atom: fire (AtomId, polarity) when nodes A and B
  /// land in one class (true) or in provably distinct classes (false).
  struct EqWatch {
    int AtomId;
    int Na;
    int Nb;
  };
  /// Per-root equality watches, moved small-into-large on merges exactly
  /// like DiseqIdx (Merge trail field H records the moved count).
  std::vector<std::vector<EqWatch>> EqWatches;
  std::vector<std::pair<int, bool>> PendingEntailed;
  std::vector<std::tuple<int, int, Reason>> Pending;
  Reason StagedReason; // reason of the merge currently being applied

  std::vector<TrailEntry> Trail;
  /// Keys of signature-table insertions, referenced by SigInsert entries
  /// (kept separately so TrailEntry stays POD-sized).
  std::vector<std::vector<int>> SigKeys;
  std::vector<LevelMark> Levels;

  bool Failed = false;
  std::vector<int> ConflictTags;
};

} // namespace smt
} // namespace ids

#endif // IDS_SMT_CONGRUENCECLOSURE_H
