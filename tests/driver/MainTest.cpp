//===- tests/driver/MainTest.cpp - Driver facade / CLI-surface tests -------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the driver-layer surface the `ids-verify` CLI is built on: the
/// embedded benchmark registry (--list / --benchmark resolution), the
/// front-end entry points including the bad-input paths that map to CLI
/// exit code 2, command-line parsing (strict numeric validation and
/// missing-argument reporting), and the VerifierInstance warm state —
/// procedure-verdict replay within a process and across processes via
/// --cache-dir. Process-level exit codes themselves are pinned by the
/// driver_cli_* ctest entries registered in CMakeLists.txt.
///
//===----------------------------------------------------------------------===//

#include "driver/Cli.h"
#include "driver/Verifier.h"
#include "driver/VerifierInstance.h"
#include "structures/Registry.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <unistd.h>
#include <vector>

using namespace ids;

namespace {

TEST(RegistryTest, ListIsNonEmptyAndUnique) {
  const std::vector<structures::Benchmark> &All = structures::allBenchmarks();
  ASSERT_FALSE(All.empty());
  std::set<std::string> Names;
  for (const structures::Benchmark &B : All) {
    ASSERT_NE(B.Name, nullptr);
    ASSERT_NE(B.Table2Name, nullptr);
    ASSERT_NE(B.Source, nullptr);
    EXPECT_TRUE(Names.insert(B.Name).second)
        << "duplicate registry key: " << B.Name;
  }
}

TEST(RegistryTest, FindBenchmarkRoundTrips) {
  for (const structures::Benchmark &B : structures::allBenchmarks()) {
    const structures::Benchmark *Found = structures::findBenchmark(B.Name);
    ASSERT_NE(Found, nullptr) << B.Name;
    EXPECT_EQ(Found->Source, B.Source) << B.Name;
    EXPECT_EQ(structures::findBenchmarkSource(B.Name), B.Source) << B.Name;
  }
}

TEST(RegistryTest, FindBenchmarkUnknownIsNull) {
  EXPECT_EQ(structures::findBenchmark("no-such-structure"), nullptr);
  EXPECT_EQ(structures::findBenchmark(""), nullptr);
  EXPECT_EQ(structures::findBenchmarkSource("no-such-structure"), nullptr);
}

TEST(RegistryTest, MetadataIsComplete) {
  // The metadata-driven registry: every entry carries a description,
  // tags and at least one expected per-procedure verdict, and every
  // expectation names a legal status.
  for (const structures::Benchmark &B : structures::allBenchmarks()) {
    EXPECT_NE(B.Description, nullptr) << B.Name;
    EXPECT_NE(B.Tags, nullptr) << B.Name;
    ASSERT_FALSE(B.Expected.empty()) << B.Name;
    for (const structures::ProcExpectation &E : B.Expected) {
      std::string St = E.Status;
      EXPECT_TRUE(St == "verified" || St == "unknown" || St == "failed")
          << B.Name << "." << E.Proc << ": " << St;
    }
    EXPECT_EQ(B.expectedStatus("no-such-proc"), nullptr);
  }
}

TEST(DriverTest, FrontEndAcceptsEveryBenchmark) {
  for (const structures::Benchmark &B : structures::allBenchmarks()) {
    DiagEngine Diags;
    std::unique_ptr<lang::Module> M = driver::frontEnd(B.Source, Diags);
    EXPECT_NE(M, nullptr) << B.Name << ": " << Diags.toString();
  }
}

TEST(DriverTest, FrontEndRejectsGarbage) {
  DiagEngine Diags;
  std::unique_ptr<lang::Module> M =
      driver::frontEnd("this is not an ids module", Diags);
  EXPECT_EQ(M, nullptr);
  EXPECT_FALSE(Diags.toString().empty());
}

TEST(DriverTest, VerifySourceReportsFrontEndFailure) {
  DiagEngine Diags;
  driver::VerifyOptions Opts;
  driver::ModuleResult R = driver::verifySource("garbage {", Opts, Diags);
  EXPECT_FALSE(R.FrontEndOk);
  EXPECT_FALSE(R.allVerified());
}

//===----------------------------------------------------------------------===//
// CLI parsing
//===----------------------------------------------------------------------===//

driver::CliArgs parse(std::vector<const char *> Args) {
  Args.insert(Args.begin(), "ids-verify");
  return driver::parseCli(static_cast<int>(Args.size()), Args.data());
}

TEST(CliTest, NoInputMeansUsage) {
  driver::CliArgs A = parse({});
  EXPECT_TRUE(A.ok());
  EXPECT_EQ(A.Cmd, driver::CliArgs::Command::Usage);
}

TEST(CliTest, CommandsResolve) {
  EXPECT_EQ(parse({"--list"}).Cmd, driver::CliArgs::Command::List);
  EXPECT_EQ(parse({"foo.ids"}).Cmd, driver::CliArgs::Command::OneShot);
  EXPECT_EQ(parse({"--benchmark", "bst"}).Cmd,
            driver::CliArgs::Command::OneShot);
  EXPECT_EQ(parse({"--benchmark", "all"}).Cmd,
            driver::CliArgs::Command::BenchAll);
  EXPECT_EQ(parse({"serve"}).Cmd, driver::CliArgs::Command::Serve);
}

TEST(CliTest, ServeTakesNoInputArgument) {
  EXPECT_FALSE(parse({"serve", "--benchmark", "bst"}).ok());
  EXPECT_FALSE(parse({"serve", "--list"}).ok());
  EXPECT_FALSE(parse({"--benchmark", "bst", "serve"}).ok());
  // But serve composes with option flags.
  driver::CliArgs A = parse({"serve", "--cache-dir", "/tmp/c", "--jobs", "2"});
  EXPECT_TRUE(A.ok()) << A.Error;
  EXPECT_EQ(A.Cmd, driver::CliArgs::Command::Serve);
  EXPECT_EQ(A.CacheDir, "/tmp/c");
}

TEST(CliTest, NumericFlagsRejectGarbage) {
  // The regression this parser exists for: atoi("abc") == 0 used to mean
  // "every core", and (unsigned)atoi("-4") was ~4 billion workers.
  for (const char *Flag :
       {"--jobs", "--splits", "--budget", "--timeout", "--request-timeout"}) {
    for (const char *Bad : {"abc", "-4", "", "12x", "--stats"}) {
      driver::CliArgs A = parse({Flag, Bad});
      EXPECT_FALSE(A.ok()) << Flag << " " << Bad;
      EXPECT_NE(A.Error.find(std::string("invalid value for ") + Flag),
                std::string::npos)
          << Flag << " " << Bad << " -> " << A.Error;
    }
  }
  // Integer flags additionally reject fractions; the seconds flags accept
  // them.
  EXPECT_FALSE(parse({"--jobs", "1.5"}).ok());
  EXPECT_FALSE(parse({"--budget", "1e3"}).ok());
  EXPECT_TRUE(parse({"--timeout", "1.5", "--list"}).ok());
  EXPECT_FALSE(parse({"--jobs", "2000"}).ok()); // above the worker cap
}

TEST(CliTest, MissingArgumentNamesTheFlag) {
  for (const char *Flag :
       {"--jobs", "--splits", "--budget", "--timeout", "--request-timeout",
        "--proc", "--benchmark", "--cache-dir", "--trace-out",
        "--stats-json", "--slow-query-ms", "--slow-query-log"}) {
    driver::CliArgs A = parse({Flag});
    EXPECT_FALSE(A.ok()) << Flag;
    EXPECT_EQ(A.Error, std::string("missing argument for ") + Flag);
  }
}

TEST(CliTest, UnknownOptionRejected) {
  driver::CliArgs A = parse({"--no-such-flag"});
  EXPECT_FALSE(A.ok());
  EXPECT_NE(A.Error.find("unknown option"), std::string::npos);
}

TEST(CliTest, ValuesLandInOptions) {
  driver::CliArgs A =
      parse({"--jobs", "4", "--splits", "8", "--budget", "100", "--timeout",
             "1.5", "--request-timeout", "30", "--proc", "insert",
             "--cache-dir", "/tmp/c", "--no-reverify-cache", "--stats",
             "--benchmark", "bst"});
  ASSERT_TRUE(A.ok()) << A.Error;
  EXPECT_EQ(A.Opts.Jobs, 4u);
  EXPECT_EQ(A.Opts.VcSplits, 8u);
  EXPECT_EQ(A.Opts.MaxTheoryChecks, 100u);
  EXPECT_DOUBLE_EQ(A.Opts.QueryTimeoutSeconds, 1.5);
  EXPECT_DOUBLE_EQ(A.Opts.TotalTimeoutSeconds, 30.0);
  EXPECT_EQ(A.Opts.OnlyProc, "insert");
  EXPECT_EQ(A.CacheDir, "/tmp/c");
  EXPECT_FALSE(A.Opts.ReuseProcVerdicts);
  EXPECT_TRUE(A.ShowStats);
  EXPECT_EQ(A.BenchName, "bst");
}

TEST(CliTest, ObservabilityFlagsLand) {
  driver::CliArgs A = parse({"--benchmark", "bst", "--trace-out", "t.json",
                             "--stats-json", "s.json", "--slow-query-ms",
                             "250", "--slow-query-log", "slow.jsonl"});
  ASSERT_TRUE(A.ok()) << A.Error;
  EXPECT_EQ(A.TraceOut, "t.json");
  EXPECT_EQ(A.StatsJson, "s.json");
  EXPECT_DOUBLE_EQ(A.SlowQueryMs, 250.0);
  EXPECT_EQ(A.SlowQueryLog, "slow.jsonl");
}

TEST(CliTest, SlowQueryThresholdDefaultsTheSink) {
  driver::CliArgs A = parse({"--benchmark", "bst", "--slow-query-ms", "10"});
  ASSERT_TRUE(A.ok()) << A.Error;
  EXPECT_EQ(A.SlowQueryLog, "ids-slow-queries.jsonl");
  // ...but a sink without a threshold would silently never record.
  driver::CliArgs B =
      parse({"--benchmark", "bst", "--slow-query-log", "slow.jsonl"});
  EXPECT_FALSE(B.ok());
  EXPECT_NE(B.Error.find("--slow-query-ms"), std::string::npos);
  // Off stays off: no default sink materializes.
  driver::CliArgs C = parse({"--benchmark", "bst"});
  ASSERT_TRUE(C.ok());
  EXPECT_TRUE(C.SlowQueryLog.empty());
  EXPECT_FALSE(parse({"--slow-query-ms", "-5", "--benchmark", "bst"}).ok());
}

//===----------------------------------------------------------------------===//
// VerifierInstance warm state
//===----------------------------------------------------------------------===//

class VerifierInstanceTest : public ::testing::Test {
protected:
  void SetUp() override {
    Source = structures::findBenchmarkSource("singly-linked-list");
    ASSERT_NE(Source, nullptr);
    Dir = std::filesystem::temp_directory_path() /
          ("idsvi_test_" + std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(Dir);
  }
  void TearDown() override { std::filesystem::remove_all(Dir); }

  const char *Source = nullptr;
  std::filesystem::path Dir;
};

TEST_F(VerifierInstanceTest, SecondVerifyReplaysVerdicts) {
  driver::VerifierInstance Inst;
  driver::VerifyOptions Opts;
  DiagEngine D1, D2;
  driver::ModuleResult R1 = Inst.verify(Source, Opts, D1);
  ASSERT_TRUE(R1.FrontEndOk) << D1.toString();
  for (const driver::ProcResult &P : R1.Procs)
    EXPECT_FALSE(P.Cached) << P.Name;

  driver::ModuleResult R2 = Inst.verify(Source, Opts, D2);
  ASSERT_TRUE(R2.FrontEndOk) << D2.toString();
  ASSERT_EQ(R2.Procs.size(), R1.Procs.size());
  for (size_t I = 0; I < R2.Procs.size(); ++I) {
    EXPECT_TRUE(R2.Procs[I].Cached) << R2.Procs[I].Name;
    EXPECT_EQ(R2.Procs[I].St, R1.Procs[I].St) << R2.Procs[I].Name;
    EXPECT_EQ(R2.Procs[I].Name, R1.Procs[I].Name);
  }
  ASSERT_EQ(R2.Impacts.size(), R1.Impacts.size());
  for (const driver::ImpactResult &I : R2.Impacts) {
    EXPECT_TRUE(I.Cached) << I.Field;
    EXPECT_TRUE(I.Ok) << I.Field;
  }
  EXPECT_EQ(Inst.stats().ProcsCached, R1.Procs.size());
  EXPECT_EQ(Inst.stats().Requests, 2u);
}

TEST_F(VerifierInstanceTest, ReuseDisabledForcesResolve) {
  driver::VerifierInstance Inst;
  driver::VerifyOptions Opts;
  DiagEngine D1, D2;
  driver::ModuleResult R1 = Inst.verify(Source, Opts, D1);
  ASSERT_TRUE(R1.FrontEndOk) << D1.toString();

  Opts.ReuseProcVerdicts = false;
  driver::ModuleResult R2 = Inst.verify(Source, Opts, D2);
  ASSERT_TRUE(R2.FrontEndOk) << D2.toString();
  for (const driver::ProcResult &P : R2.Procs) {
    EXPECT_FALSE(P.Cached) << P.Name;
    EXPECT_EQ(P.St, driver::Status::Verified) << P.Name;
  }
  // Even re-solving, the structural query cache still serves the repeat
  // queries.
  EXPECT_GT(Inst.queryCache().diskStats().Hits, 0u);
}

TEST_F(VerifierInstanceTest, VerdictsRoundTripAcrossInstances) {
  driver::VerifyOptions Opts;
  size_t NumProcs = 0;
  {
    driver::VerifierInstance A;
    std::string Err;
    ASSERT_TRUE(A.attachCacheDir(Dir.string(), Err)) << Err;
    DiagEngine D;
    driver::ModuleResult R = A.verify(Source, Opts, D);
    ASSERT_TRUE(R.FrontEndOk) << D.toString();
    NumProcs = R.Procs.size();
    EXPECT_GT(A.stats().VerdictsRecorded, 0u);
  }
  driver::VerifierInstance B;
  std::string Err;
  ASSERT_TRUE(B.attachCacheDir(Dir.string(), Err)) << Err;
  EXPECT_GT(B.stats().VerdictsLoadedFromDisk, 0u);
  DiagEngine D;
  driver::ModuleResult R = B.verify(Source, Opts, D);
  ASSERT_TRUE(R.FrontEndOk) << D.toString();
  ASSERT_EQ(R.Procs.size(), NumProcs);
  for (const driver::ProcResult &P : R.Procs) {
    EXPECT_TRUE(P.Cached) << P.Name;
    EXPECT_EQ(P.St, driver::Status::Verified) << P.Name;
  }
}

TEST_F(VerifierInstanceTest, RequestDeadlineReportsUnknown) {
  driver::VerifierInstance Inst;
  driver::VerifyOptions Opts;
  Opts.TotalTimeoutSeconds = 1e-9; // expires before any procedure runs
  DiagEngine D;
  driver::ModuleResult R = Inst.verify(Source, Opts, D);
  ASSERT_TRUE(R.FrontEndOk) << D.toString();
  EXPECT_FALSE(R.allVerified());
  for (const driver::ProcResult &P : R.Procs) {
    EXPECT_EQ(P.St, driver::Status::Unknown) << P.Name;
    EXPECT_NE(P.FailedObligation.find("wall-clock"), std::string::npos)
        << P.Name;
  }
  for (const driver::ImpactResult &I : R.Impacts) {
    EXPECT_FALSE(I.Ok) << I.Field;
    EXPECT_TRUE(I.TimedOut) << I.Field;
  }
  // Deadline Unknowns are budget artifacts: none may enter the verdict
  // cache, so a later unbudgeted verify must actually solve — and prove.
  Opts.TotalTimeoutSeconds = 0;
  DiagEngine D2;
  driver::ModuleResult R2 = Inst.verify(Source, Opts, D2);
  ASSERT_TRUE(R2.FrontEndOk) << D2.toString();
  EXPECT_TRUE(R2.allVerified());
  for (const driver::ProcResult &P : R2.Procs)
    EXPECT_FALSE(P.Cached) << P.Name;
}

TEST(DriverTest, OnlyProcRestrictsVerification) {
  // Verify a single procedure of the first benchmark; the result must
  // contain exactly the requested procedure.
  const std::vector<structures::Benchmark> &All = structures::allBenchmarks();
  ASSERT_FALSE(All.empty());
  DiagEngine ParseDiags;
  std::unique_ptr<lang::Module> M =
      driver::frontEnd(All[0].Source, ParseDiags);
  ASSERT_NE(M, nullptr) << ParseDiags.toString();
  ASSERT_FALSE(M->Procs.empty());
  const std::string Target = M->Procs[0].Name;

  DiagEngine Diags;
  driver::VerifyOptions Opts;
  Opts.OnlyProc = Target;
  Opts.CheckImpacts = false;
  driver::ModuleResult R = driver::verifySource(All[0].Source, Opts, Diags);
  ASSERT_TRUE(R.FrontEndOk) << Diags.toString();
  ASSERT_EQ(R.Procs.size(), 1u);
  EXPECT_EQ(R.Procs[0].Name, Target);
}

} // namespace
