//===- structures/Registry.cpp - Embedded benchmark suite ------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "structures/Registry.h"

using namespace ids;
using namespace ids::structures;

#include "structures/Sources.h"

const std::vector<Benchmark> &structures::allBenchmarks() {
  static const std::vector<Benchmark> All = {
      {"singly-linked-list",
       "Singly-Linked List",
       "Plain linked lists with inverse pointers, lengths, key-sets and "
       "heaplets (equation (2) minus sortedness)",
       "list",
       0,
       {{"insert_front", "verified"}, {"find", "verified"}},
       SinglyLinkedListSource},
      {"sorted-list",
       "Sorted List",
       "The paper's running example: sorted lists with the monadic maps "
       "of equation (2) and the recursive insertion of Figure 7",
       "list,sorted",
       0,
       {{"find", "verified"}, {"insert", "verified"}},
       SortedListSource},
      {"sorted-list-minmax",
       "Sorted List (min/max)",
       "Sorted lists augmented with suffix-min/max maps; get_min/get_max "
       "answer from the maps without scanning keys",
       "list,sorted,minmax",
       0,
       {{"find", "verified"},
        {"get_min", "verified"},
        {"get_max", "verified"}},
       SortedListMinMaxSource},
      {"circular-list",
       "Circular List",
       "Circular singly-linked lists via a last-node scaffold: every node "
       "names the circle's last node and a distance map decreases to it",
       "list,circular,scaffold",
       0,
       {{"rotate", "verified"}, {"insert_after", "verified"}},
       CircularListSource},
      {"bst",
       "Binary Search Tree",
       "Binary search trees with parent pointers, rational ranks and "
       "min/max ordering maps (Appendix D.2)",
       "tree,ordered",
       0,
       {{"find", "verified"}, {"rotate_right", "verified"}},
       BstSource},
      {"bst-scaffold",
       "BST + Scaffold",
       "Binary search tree overlaid with an enumeration list over the "
       "same nodes: two independent local-condition groups",
       "tree,overlay,multigroup",
       0,
       {{"find", "verified"},
        {"register_node", "verified"},
        {"scaffold_length", "verified"}},
       BstScaffoldSource},
      {"avl",
       "AVL Tree",
       "Height-balanced search trees: exact height arithmetic and the "
       "balanced right rotation of the left-left rebalancing case",
       "tree,ordered,balanced,arith",
       0,
       {{"find", "verified"}, {"rotate_right", "verified"}},
       AvlSource},
      {"red-black-tree",
       "Red-Black Tree",
       "Red-black trees with color fields and a black-height ghost map; "
       "count_blacks walks a path and checks the counted black nodes",
       "tree,ordered,balanced,arith",
       0,
       {{"find", "verified"},
        {"paint_root_black", "verified"},
        {"count_blacks", "verified"}},
       RedBlackTreeSource},
      {"treap",
       "Treap",
       "BST on keys that is simultaneously a max-heap on priorities; the "
       "priority order doubles as the rank",
       "tree,ordered,heap",
       0,
       {{"find", "verified"}, {"find_max_prio_on_path", "verified"}},
       TreapSource},
      {"scheduler-queue",
       "Scheduler Queue",
       "Overlaid scheduler run-queue: a FIFO list group and a BST index "
       "group over the same nodes sharing the key field",
       "list,tree,overlay,multigroup",
       0,
       {{"find", "verified"}, {"enqueue", "verified"}},
       SchedulerQueueSource},
  };
  return All;
}

const Benchmark *structures::findBenchmark(const std::string &Name) {
  for (const Benchmark &B : allBenchmarks())
    if (Name == B.Name)
      return &B;
  return nullptr;
}

const char *structures::findBenchmarkSource(const std::string &Name) {
  const Benchmark *B = findBenchmark(Name);
  return B ? B->Source : nullptr;
}
