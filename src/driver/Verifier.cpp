//===- driver/Verifier.cpp - End-to-end verification facade ----------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "driver/Verifier.h"

#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "pipeline/Pipeline.h"
#include "vcgen/VcGen.h"

#include <chrono>

using namespace ids;
using namespace ids::driver;

std::unique_ptr<lang::Module> driver::frontEnd(const std::string &Source,
                                               DiagEngine &Diags) {
  std::unique_ptr<lang::Module> M = lang::parseModule(Source, Diags);
  if (!M)
    return nullptr;
  if (!lang::typeCheck(*M, Diags))
    return nullptr;
  if (!lang::checkGhostDiscipline(*M, Diags))
    return nullptr;
  if (!lang::checkWellBehaved(*M, Diags))
    return nullptr;
  return M;
}

namespace {
double seconds(std::chrono::steady_clock::time_point Start) {
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

pipeline::Options pipelineOptions(const VerifyOptions &Opts) {
  pipeline::Options P;
  P.Simplify = Opts.SimplifyVc;
  P.Slice = Opts.SliceVc;
  P.Cache = Opts.CacheQueries;
  P.Incremental = Opts.Incremental;
  P.Jobs = Opts.Jobs;
  P.VcSplits = Opts.VcSplits;
  P.AllowQuantifiers = Opts.QuantifiedMode;
  P.CrossCheckQf = Opts.CrossCheckQf;
  P.MaxTheoryChecks = Opts.MaxTheoryChecks;
  P.QueryTimeoutSeconds = Opts.QueryTimeoutSeconds;
  return P;
}

Status statusOf(pipeline::Verdict V) {
  switch (V) {
  case pipeline::Verdict::Proved:
    return Status::Verified;
  case pipeline::Verdict::Failed:
    return Status::Failed;
  case pipeline::Verdict::Unknown:
    break;
  }
  return Status::Unknown;
}
} // namespace

ModuleResult driver::verifySource(const std::string &Source,
                                  const VerifyOptions &Opts,
                                  DiagEngine &Diags) {
  ModuleResult Result;
  std::unique_ptr<lang::Module> M = frontEnd(Source, Diags);
  if (!M)
    return Result;
  Result.FrontEndOk = true;
  Result.StructureName = M->Structure.Name;
  Result.LcSize = lang::localConditionSize(M->Structure);

  pipeline::Options POpts = pipelineOptions(Opts);
  // One cache for the whole module: identical obligations across
  // procedures and impact checks solve once.
  pipeline::QueryCache Cache;

  // Impact-set correctness (Appendix C; Section 5.3 reports this <3s per
  // structure).
  if (Opts.CheckImpacts) {
    auto Start = std::chrono::steady_clock::now();
    for (const lang::ImpactDecl &I : M->Structure.Impacts) {
      ImpactResult IR;
      IR.Field = I.Field;
      IR.Group = I.Group;
      auto IStart = std::chrono::steady_clock::now();
      smt::TermManager TM;
      vcgen::ProcVc Vc = vcgen::generateImpactVc(TM, *M, I);
      pipeline::Result PR =
          pipeline::solveObligations(TM, Vc.Obligations, POpts, &Cache);
      IR.Ok = PR.V == pipeline::Verdict::Proved;
      IR.Pipeline = PR.St;
      IR.Seconds = seconds(IStart);
      Result.Impacts.push_back(std::move(IR));
    }
    Result.ImpactSeconds = seconds(Start);
  }

  for (const lang::ProcDecl &P : M->Procs) {
    if (!Opts.OnlyProc.empty() && P.Name != Opts.OnlyProc)
      continue;
    ProcResult PR;
    PR.Name = P.Name;
    PR.Metrics = lang::computeMetrics(M->Structure, P);
    auto Start = std::chrono::steady_clock::now();
    smt::TermManager TM;
    vcgen::VcOptions VOpts;
    VOpts.QuantifiedMode = Opts.QuantifiedMode;
    VOpts.CheckFrames = Opts.CheckFrames;
    vcgen::ProcVc Vc = vcgen::generateVc(TM, *M, P, VOpts);
    PR.NumObligations = static_cast<unsigned>(Vc.Obligations.size());
    pipeline::Result R =
        pipeline::solveObligations(TM, Vc.Obligations, POpts, &Cache);
    PR.St = statusOf(R.V);
    PR.FailedObligation = R.FailedDescription;
    PR.Counterexample = R.Counterexample;
    PR.Pipeline = R.St;
    PR.Seconds = seconds(Start);
    Result.Procs.push_back(std::move(PR));
  }
  return Result;
}
