//===- bench/bench_impact_sets.cpp - Impact-set verification ---------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the impact-set artifacts (E3 in DESIGN.md): Tables 1/3/4 of
/// the paper list the impact set of every field mutation; Section 5.3
/// reports that proving them correct (the Appendix C construction) takes
/// under 3 seconds per data structure. This harness machine-checks every
/// declared impact set in the suite and prints the per-structure totals.
///
//===----------------------------------------------------------------------===//

#include "driver/Verifier.h"
#include "structures/Registry.h"

#include <cstdio>

using namespace ids;

int main() {
  printf("Impact-set correctness (Appendix C check per declared impact "
         "set)\n");
  printf("%-22s %-10s %-8s %10s  %s\n", "Structure", "Field", "Group",
         "Time (s)", "Status");
  printf("---------------------------------------------------------------"
         "--\n");
  bool AllOk = true;
  for (const structures::Benchmark &B : structures::allBenchmarks()) {
    DiagEngine Diags;
    driver::VerifyOptions Opts;
    Opts.OnlyProc = "<none>"; // impact sets only
    driver::ModuleResult R =
        driver::verifySource(B.Source, Opts, Diags);
    if (!R.FrontEndOk)
      continue;
    for (const driver::ImpactResult &I : R.Impacts) {
      printf("%-22s %-10s %-8s %10.3f  %s\n", B.Table2Name,
             I.Field.c_str(), I.Group.c_str(), I.Seconds,
             I.Ok ? "correct" : "WRONG");
      AllOk = AllOk && I.Ok;
    }
    printf("%-22s total %.2fs %s\n", "", R.ImpactSeconds,
           R.ImpactSeconds < 3.0 ? "(< 3s, matching Section 5.3)"
                                 : "(over the paper's 3s)");
  }
  return AllOk ? 0 : 1;
}
