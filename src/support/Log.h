//===- support/Log.h - Leveled stderr diagnostics --------------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One leveled logger for the diagnostics that used to hide behind
/// scattered `getenv("IDS_PIPE_DEBUG")` / `getenv("IDS_SMT_DEBUG")`
/// checks. Levels come from `IDS_LOG=debug|info|off` (default: info);
/// the legacy per-subsystem variables still force debug for their
/// subsystem ("pipe", "smt") so existing invocations keep working.
///
/// Output is byte-stable with the fprintf calls this replaces: each
/// line is `[subsys] ` followed by the formatted message, written to
/// stderr in a single stdio call chain. Environment lookups happen
/// once per process (function-local statics), so `debugEnabled` is
/// cheap enough for per-theory-check call sites.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SUPPORT_LOG_H
#define IDS_SUPPORT_LOG_H

namespace ids {
namespace logging {

enum class Level { Off = 0, Info = 1, Debug = 2 };

/// The process log level from IDS_LOG (resolved once).
Level level();

/// True when \p Subsys should emit debug lines: IDS_LOG=debug, or the
/// subsystem's legacy variable (IDS_PIPE_DEBUG for "pipe",
/// IDS_SMT_DEBUG for "smt") is set.
bool debugEnabled(const char *Subsys);

/// True unless IDS_LOG=off.
bool infoEnabled();

/// Writes `[subsys] <formatted message>` to stderr when debug is
/// enabled for \p Subsys. The format string carries its own trailing
/// newline (matching the fprintf sites this replaces).
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void debugf(const char *Subsys, const char *Fmt, ...);

/// Writes `[subsys] <formatted message>` to stderr unless IDS_LOG=off.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void infof(const char *Subsys, const char *Fmt, ...);

} // namespace logging
} // namespace ids

#endif // IDS_SUPPORT_LOG_H
