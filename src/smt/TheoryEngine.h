//===- smt/TheoryEngine.h - DPLL(T) theory integration ---------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The theory side of the CDCL(T) loop, shared by the one-shot Solver and
/// the incremental SolverContext:
///
///  - SolverCore holds the state both drivers own: the SAT core, the
///    Tseitin literal cache, the theory-atom table, the evaluation safety
///    net and the model.
///  - TheoryEngine is the TheoryCallback invoked on full propositional
///    assignments. It runs congruence closure and simplex to fixpoint
///    with Nelson-Oppen style equality exchange, constructs a candidate
///    model, and validates it against the original formula.
///
/// TheoryEngine has two modes. In one-shot mode (the historical behavior)
/// it rebuilds the theory engines from scratch on every full assignment.
/// In persistent mode it keeps backtrackable CongruenceClosure/ArithSolver
/// instances synced to the SAT assignment trail: one undo level per
/// assigned atom, so consecutive theory checks pop to the longest common
/// trail prefix and re-assert only the diverging suffix — with phase
/// saving and backjumping, that suffix is typically a small fraction of
/// the assignment. Exchange equalities, probes and model-repair
/// separations live in an extra scratch level popped at the start of the
/// next check, so nothing assignment-specific leaks across checks.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SMT_THEORYENGINE_H
#define IDS_SMT_THEORYENGINE_H

#include "smt/ArithSolver.h"
#include "smt/CongruenceClosure.h"
#include "smt/Model.h"
#include "smt/SatSolver.h"
#include "smt/SolverTypes.h"
#include "smt/Term.h"

#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ids {
namespace smt {

/// State shared between a solver driver (Solver or SolverContext) and its
/// TheoryEngine.
struct SolverCore {
  SolverCore(TermManager &TM, SolverOptions O) : TM(TM), Opts(std::move(O)) {}

  TermManager &TM;
  SolverOptions Opts;
  SolverStats St;
  Model CurrentModel;

  // CNF state.
  sat::SatSolver Sat;
  std::unordered_map<TermRef, int> LitCache; // term -> Lit.Code (positive)
  std::vector<TermRef> Atoms;
  std::unordered_map<TermRef, int> AtomIndex;
  std::vector<sat::Var> AtomVar;
  TermRef EvalFormula = nullptr; // pre-reduction formula for the safety net

  bool BudgetExhausted = false;
  double SolveDeadline = 0;      // monotonic seconds; 0 = none
  uint64_t TheoryCheckBase = 0;  // budget window start for the current check

  /// When non-null, litFor logs every NON-atom term it encodes here. The
  /// incremental context uses the log to invalidate cache entries whose
  /// defining clauses die with a popped level (theory atoms stay cached —
  /// their meaning is the theory check, not any clause). One-shot solving
  /// leaves it null.
  std::vector<TermRef> *EncodingLog = nullptr;

  /// Lazy array instantiation (persistent mode): the context's reducer,
  /// set by SolverContext when the reducer runs in Lazy mode, null
  /// otherwise. The engine scans the reducer's pending lemmas against
  /// candidate models and queues violated ones here; the SAT core then
  /// flushes the queue at decision level zero and resumes search.
  ArrayReducer *Reducer = nullptr;
  std::vector<TermRef> PendingInstantiations;

  /// Tseitin encoding; defining clauses are added at the current assertion
  /// level, so the cache entry of a structure term is only valid while the
  /// level that created it is alive (see EncodingLog).
  sat::Lit litFor(TermRef T);
};

/// The per-full-model theory check. Construct once per solve (one-shot
/// mode) or once per context (persistent mode).
class TheoryEngine : public sat::TheoryCallback {
public:
  TheoryEngine(SolverCore &C, bool Persistent);
  ~TheoryEngine() override;

  bool onFullModel(std::vector<sat::Lit> &ConflictOut) override;
  bool hasPendingLemmas() override;
  bool flushPendingLemmas() override;

  /// DPLL(T) theory propagation (persistent mode with TheoryPropagation
  /// on; a no-op otherwise): syncs the theory stack to the partial SAT
  /// trail, reports conflicts early, and proposes unassigned atoms whose
  /// truth value is already entailed — CC-entailed (dis)equalities via the
  /// equality watches, bound-implied arithmetic atoms via the bound-change
  /// log. Best-effort: every missed propagation is caught by onFullModel.
  bool propagatePartial(std::vector<sat::Lit> &ImpliedOut,
                        std::vector<sat::Lit> &ConflictOut) override;
  void explainPropagation(sat::Lit P,
                          std::vector<sat::Lit> &ReasonOut) override;

  // ------------------------------------------- Incremental registration --
  /// Brackets one SolverContext assertion level. Registrations (term
  /// graph, equality watches, arith vars) made while a frame is open are
  /// retracted when it pops; registrations made with no frame open — the
  /// shared prefix of a batched obligation group — are pinned permanently,
  /// so each batch member's checks only register its own delta.
  void pushAssertionFrame();
  void popAssertionFrame();
  /// Pre-registers the theory atoms reachable in \p F (called after the
  /// formula was Tseitin-encoded, so every atom is interned): CC term
  /// graph and equality watches for Eq/boolean atoms, slack variables and
  /// bound watches for inequality atoms. Idempotent per atom and frame.
  void preRegister(TermRef F);

private:
  bool atomValue(int AtomIdx) const {
    return C.Sat.modelValue(C.AtomVar[AtomIdx]);
  }
  /// Stale atoms (all their clauses died with popped levels) stay
  /// unassigned by design; model construction must not read them.
  bool atomAssigned(int AtomIdx) const {
    return C.Sat.value(sat::Lit(C.AtomVar[AtomIdx], false)) !=
           sat::LBool::Undef;
  }

  /// Converts a numeric term into a polynomial over opaque arith vars,
  /// registering opaque terms with the congruence closure as a side
  /// effect.
  LinTerm polyOf(TermRef T);
  int arithVarFor(TermRef T);

  int newCompositeTag(const std::set<int> &Expl);
  void expandTags(const std::set<int> &In, std::set<int> &Out) const;
  void clauseFromTags(const std::set<int> &Tags,
                      std::vector<sat::Lit> &Out) const;

  bool assertOneAtom(int AtomIdx, std::vector<sat::Lit> &ConflictOut);
  bool equalityFixpoint(std::vector<sat::Lit> &ConflictOut);

  /// Hybrid lemma evaluation for the lazy-instantiation violation scan:
  /// terms the theory stack knows (CC-registered terms, assigned atoms)
  /// take their CANDIDATE values — possibly inconsistent with array
  /// semantics, which is exactly the signal — while everything else is
  /// evaluated structurally under the candidate model. A purely
  /// structural evaluation would be useless here: array lemmas are
  /// theory-valid, so they always evaluate true from the leaves up.
  Value lazyEval(TermRef T, std::unordered_map<TermRef, Value> &Hybrid,
                 std::unordered_map<TermRef, Value> &Structural);
  /// Scans the reducer's pending pool against the current candidate model
  /// and queues violated lemmas; returns true if any were queued.
  bool collectViolatedLemmas();
  /// Queues every non-activated pending lemma (the full-flush fallback at
  /// the give-up point: guarantees lazy mode converges to the same lemma
  /// set the up-front closure would have asserted).
  bool queueAllPendingLemmas();
  void computeInterfaceTerms();
  bool separateCollisions();
  void buildModel();
  Value valueOfTerm(TermRef T);
  Value buildClassArray(TermRef Root);

  /// Persistent mode: pop the scratch level and every synced atom level
  /// that diverges from the current SAT trail, then return the number of
  /// atoms already in sync (the reuse window).
  size_t syncToTrail();
  void popTheoryLevel();
  /// syncToTrail + per-atom push/assert of the diverging suffix (the
  /// shared core of onFullModel and propagatePartial). Returns false with
  /// \p ConflictOut filled on a theory conflict. \p CountReuse guards the
  /// TheoryAssertsReused statistic (full-model checks only, preserving its
  /// historical meaning).
  bool syncAssert(std::vector<sat::Lit> &ConflictOut, bool CountReuse);
  /// Pops the scratch level and every synced atom level, returning the
  /// engines to the current assertion-frame base. Registration (frames,
  /// preRegister) must happen from this state so nothing gets trailed
  /// under an atom level that a later sync pops.
  void resetSyncedLevels();
  /// True while the equality watch registered for \p AtomIdx is alive
  /// (registered at base, or under a still-open frame).
  bool ccWatchValid(int AtomIdx) const;
  /// Revalidates and proposes one CC-entailed equality atom: rechecks the
  /// entailment against the live closure, builds the reason clause from
  /// the explanation tags, and appends the implied literal.
  void proposeCcEntailment(int AtomIdx, bool Polarity,
                           std::vector<sat::Lit> &ImpliedOut);
  /// Same for a bound-watched inequality atom: an O(1) compare of the
  /// watched variable's live bound against the atom's precomputed
  /// threshold, reason = the single entailing bound's tag.
  void proposeArithEntailment(int AtomIdx,
                              std::vector<sat::Lit> &ImpliedOut);
  /// Common filter + reason construction for both proposal paths; returns
  /// false when the atom is assigned/stale or a cited tag fails
  /// validation (out of atom range, unassigned, or self-referential).
  bool proposeEntailment(int AtomIdx, bool Polarity,
                         const std::set<int> &Tags,
                         std::vector<sat::Lit> &ImpliedOut);

  SolverCore &C;
  TermManager &TM;
  const bool Persistent;
  std::unique_ptr<CongruenceClosure> CC;
  std::unique_ptr<ArithSolver> Arith;
  std::unordered_map<TermRef, int> ArithVars;
  std::vector<TermRef> OpaqueNumeric;
  /// Arith variable ids survive pops (bounds are retracted, the tableau
  /// persists); this map lets a re-asserted term reuse its variable.
  std::unordered_map<TermRef, int> VarOfTerm;
  std::unordered_set<TermRef> InterfaceTerms;
  /// Constant index terms (value keyed by sort): an opaque index whose
  /// model value collides with one of these must be separated too, or
  /// the model builder merges their array entries with no repair.
  std::map<std::pair<const Sort *, Rational>, TermRef> ConstIndexValues;
  std::vector<std::vector<int>> CompositeExpl;
  std::set<std::pair<TermRef, TermRef>> AssertedCCEqualities;

  // Persistent-mode sync state.
  std::vector<std::pair<int, bool>> SyncedAtoms; // (atom idx, polarity)
  std::vector<std::pair<int, bool>> CurAtomTrail; // scratch for syncToTrail
  std::vector<size_t> LevelOpaqueSize; // OpaqueNumeric size per level
  bool ScratchPushed = false;
  std::vector<int> VarToAtom; // sat var -> atom idx (or -1)
  size_t MappedAtoms = 0;     // VarToAtom covers atoms below this index

  // Theory-propagation state (persistent mode, TheoryPropagation on).
  /// Propagation mode: persistent engines plus the propagatePartial hook.
  /// False keeps the engine byte-identical to the propagation-free
  /// behavior (--no-theory-prop, the differential baseline).
  const bool PropMode;
  uint64_t PropCalls = 0; // deadline probe divisor
  /// SatSolver::theoryTrailResets() at the last sync. While unchanged the
  /// theory trail only grew, so the synced prefix is known intact and the
  /// elementwise prefix compare is skipped.
  uint64_t TrailResetsSeen = 0;
  bool PropSyncValid = false;
  /// Open assertion frames as monotone epoch ids. An equality watch
  /// registered under epoch E is alive while E is still open (or E == 0,
  /// the permanent base); watches die silently with their frame's CC
  /// trail, so liveness is tracked engine-side to re-register on demand.
  std::vector<int> FrameEpochs;
  int NextEpoch = 1;
  std::unordered_map<int, int> CcWatchEpoch; // atom idx -> epoch
  /// One precomputed bound-entailment test per inequality-atom polarity:
  /// the atom under that polarity asserts (IsUpper ? W <= B : W >= B), so
  /// it is entailed as soon as the live bound on W is at least as strong.
  struct PolarityWatch {
    int W = -1; // arith var; -1 = constant atom, no watch
    bool IsUpper = false;
    DeltaRat B;
  };
  struct ArithWatch {
    PolarityWatch Pos, Neg;
  };
  std::unordered_map<int, ArithWatch> ArithWatchOf; // atom idx -> watch
  std::unordered_map<int, std::vector<int>> VarWatchers; // var -> atom ids
  /// Deferred propagation reason, keyed by the implied literal's code:
  /// either an eagerly captured literal vector (arith single-tag reasons)
  /// or pinned CC endpoints whose frozen proof-forest paths are expanded
  /// only if conflict analysis ever asks for the reason — the vast
  /// majority of propagations never are. Sound because paths between two
  /// connected nodes are frozen while both stay connected, the cited tags
  /// are plain atom indices assigned before the implied literal, and they
  /// stay assigned as long as it is (trail prefix order).
  struct PendingExpl {
    enum class Kind { Lits, CcEq, CcDiseq };
    Kind K = Kind::Lits;
    std::vector<sat::Lit> Lits;        // Kind::Lits: implied literal first
    TermRef X = nullptr, Y = nullptr;  // Kind::CcEq endpoints
    CongruenceClosure::DiseqWitness W; // Kind::CcDiseq pinned witness
  };
  std::unordered_map<int, PendingExpl> PendingReasons;
  std::unordered_set<int> ProposedLits; // per-call dedup scratch

  // Model scratch.
  std::unordered_map<TermRef, Value> TermValues;
  std::unordered_map<TermRef, Value> ClassArrays;
  /// Select terms grouped by their base array's class representative,
  /// built once per model so buildClassArray avoids an all-terms scan
  /// per array class.
  std::unordered_map<TermRef, std::vector<TermRef>> SelectsByRoot;
  bool SelectsIndexValid = false;
  std::unordered_map<TermRef, int64_t> LocIds;
  int64_t NextLocId = 1;
};

} // namespace smt
} // namespace ids

#endif // IDS_SMT_THEORYENGINE_H
