//===- structures/Registry.h - Embedded benchmark suite --------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Table 2 benchmark suite: every data structure of the paper's
/// evaluation, re-authored in the IDS surface language with FWYB
/// annotations, embedded as sources so tests/benches/examples are
/// self-contained.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_STRUCTURES_REGISTRY_H
#define IDS_STRUCTURES_REGISTRY_H

#include <string>
#include <vector>

namespace ids {
namespace structures {

struct Benchmark {
  /// Registry key, e.g. "singly-linked-list".
  const char *Name;
  /// Display name matching Table 2, e.g. "Singly-Linked List".
  const char *Table2Name;
  /// Full module source (structure + procedures).
  const char *Source;
};

/// All benchmarks in Table 2 order.
const std::vector<Benchmark> &allBenchmarks();

/// Source by registry key; nullptr when unknown.
const char *findBenchmark(const std::string &Name);

} // namespace structures
} // namespace ids

#endif // IDS_STRUCTURES_REGISTRY_H
