//===- structures/Avl.cpp - AVL tree benchmark -----------------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AVL trees: the BST intrinsic definition (parent pointers, min/max
/// ordering maps) with an exact height map in place of the rational rank —
/// heights strictly decrease downwards, which doubles as the acyclicity
/// argument, and sibling heights differ by at most one. The rotation is
/// the left-left rebalancing case: the pivot enters with its local
/// condition broken (the tree is mid-insertion, left-heavy by two) and the
/// rotation re-establishes it everywhere, leaving the subtree height seen
/// by the parent unchanged.
///
//===----------------------------------------------------------------------===//

#include "structures/Sources.h"

const char *ids::structures::AvlSource = R"IDS(
structure Avl {
  field l: Loc;
  field r: Loc;
  field key: int;
  ghost field p: Loc;
  ghost field height: int;
  ghost field min: int;
  ghost field max: int;

  // BST ordering via min/max plus exact height arithmetic: a leaf has
  // height 1, a one-child node height 2 over a height-1 child (balance
  // forces it), and an inner node is one above its taller child with the
  // children within one of each other.
  local t (x) {
    x.min <= x.key && x.key <= x.max
    && x.height >= 1
    && (x.p != nil ==> (x.p.l == x || x.p.r == x))
    && (x.l == nil ==> x.min == x.key)
    && (x.l != nil ==>
          x.l.p == x && x.l.height < x.height
       && x.l.max < x.key && x.min == x.l.min)
    && (x.r == nil ==> x.max == x.key)
    && (x.r != nil ==>
          x.r.p == x && x.r.height < x.height
       && x.key < x.r.min && x.max == x.r.max)
    && (x.l == nil && x.r == nil ==> x.height == 1)
    && (x.l != nil && x.r == nil ==> x.height == 2 && x.l.height == 1)
    && (x.l == nil && x.r != nil ==> x.height == 2 && x.r.height == 1)
    && (x.l != nil && x.r != nil ==>
          x.l.height <= x.r.height + 1
       && x.r.height <= x.l.height + 1
       && x.height ==
            ite(x.l.height < x.r.height, x.r.height, x.l.height) + 1)
  }

  correlation (y) { y.p == nil }

  impact l      [t] { x, old(x.l) }
  impact r      [t] { x, old(x.r) }
  impact p      [t] { x, old(x.p) }
  impact key    [t] { x }
  impact min    [t] { x, x.p }
  impact max    [t] { x, x.p }
  impact height [t] { x, x.p }
}

// Search by key, walking the ordering maps (as in the plain BST).
procedure find(root: Loc, k: int) returns (res: Loc)
  requires br(t) == {}
  requires root != nil
  ensures  br(t) == {}
  ensures  res != nil ==> res.key == k
{
  var cur: Loc;
  cur := root;
  res := nil;
  while (cur != nil && res == nil)
    invariant br(t) == {}
    invariant res != nil ==> res.key == k
  {
    InferLCOutsideBr(t, cur);
    if (cur.key == k) {
      res := cur;
    } else {
      if (k < cur.key) {
        cur := cur.l;
      } else {
        cur := cur.r;
      }
    }
  }
}

// Left-left rebalancing rotation. The pivot x is the one broken node: its
// shape and ordering conjuncts still hold (spelled out as preconditions)
// but it is left-heavy by two with its height field already updated, the
// state an AVL insertion reaches just before rotating. y = x.l is
// balanced with equal-height children, which pins every height exactly;
// after the rotation the subtree root y has the height x had, so the
// parent's own local condition survives untouched.
procedure rotate_right(x: Loc, xp: Loc) returns (ret: Loc)
  requires br(t) == {x}
  requires x != nil && x.l != nil && x.l != x && x.p == xp
  requires xp != nil ==> xp != x && xp.height > x.height
  requires xp != nil ==> xp.l == x || xp.r == x
  requires x.l.p == x
  requires x.l.l != nil && x.l.r != nil
  requires x.l.l.height == x.l.r.height
  requires x.height == x.l.height + 1
  requires x.r == nil ==> x.l.height == 2
  requires x.r != nil ==> x.l.height == x.r.height + 2
  requires x.r != nil ==> x.r.p == x && x.key < x.r.min && x.max == x.r.max
  requires x.r == nil ==> x.max == x.key
  requires x.l.max < x.key && x.min == x.l.min
  requires x.min <= x.key && x.key <= x.max
  ensures  br(t) == {}
  ensures  ret == old(x.l) && ret.p == xp
  ensures  ret.r == x && x.p == ret
  ensures  ret.l == old(x.l.l) && x.l == old(x.l.r) && x.r == old(x.r)
  ensures  ret.min == old(x.min) && ret.max == old(x.max)
  ensures  ret.height == old(x.height)
  ensures  xp != nil ==> (old(xp.l) == x ==> xp.l == ret)
  ensures  xp != nil ==> (old(xp.r) == x ==> xp.r == ret)
  modifies {x, x.l, x.l.r, x.p}
{
  var y: Loc;
  var mid: Loc;
  y := x.l;
  InferLCOutsideBr(t, y);
  mid := y.r;
  InferLCOutsideBr(t, mid);
  if (xp != nil) {
    InferLCOutsideBr(t, xp);
    if (xp.l == x) {
      Mut(xp.l, y);
    } else {
      Mut(xp.r, y);
    }
  }
  Mut(x.l, mid);
  ghost {
    Mut(mid.p, x);
  }
  Mut(y.r, x);
  ghost {
    Mut(x.p, y);
    Mut(y.p, xp);
    Mut(x.min, mid.min);
    Mut(x.height, mid.height + 1);
    Mut(y.max, x.max);
    Mut(y.height, x.height + 1);
  }
  ghost {
    AssertLCAndRemove(t, mid);
  }
  AssertLCAndRemove(t, x);
  AssertLCAndRemove(t, y);
  if (xp != nil) {
    AssertLCAndRemove(t, xp);
  }
  ret := y;
}
)IDS";
