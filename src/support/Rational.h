//===- support/Rational.h - Exact rational arithmetic ----------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rational numbers over BigInt.
///
/// Used by the simplex core (tableau coefficients, bounds, models) and by
/// the interpreter for `rat`-typed ghost fields such as the `rank` maps of
/// Section 1 / Example 2.6 of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SUPPORT_RATIONAL_H
#define IDS_SUPPORT_RATIONAL_H

#include "support/BigInt.h"

#include <cassert>
#include <functional>
#include <string>

namespace ids {

/// Exact rational number, always stored in lowest terms with a positive
/// denominator.
class Rational {
public:
  Rational() : Num(0), Den(1) {}
  Rational(int64_t Value) : Num(Value), Den(1) {}
  Rational(BigInt Numerator) : Num(std::move(Numerator)), Den(1) {}
  Rational(BigInt Numerator, BigInt Denominator);
  Rational(int64_t Numerator, int64_t Denominator)
      : Rational(BigInt(Numerator), BigInt(Denominator)) {}

  const BigInt &numerator() const { return Num; }
  const BigInt &denominator() const { return Den; }

  bool isZero() const { return Num.isZero(); }
  bool isNegative() const { return Num.isNegative(); }
  bool isInteger() const { return Den.isOne(); }

  Rational operator-() const;
  Rational operator+(const Rational &RHS) const;
  Rational operator-(const Rational &RHS) const;
  Rational operator*(const Rational &RHS) const;
  Rational operator/(const Rational &RHS) const;

  Rational &operator+=(const Rational &RHS) { return *this = *this + RHS; }
  Rational &operator-=(const Rational &RHS) { return *this = *this - RHS; }
  Rational &operator*=(const Rational &RHS) { return *this = *this * RHS; }
  Rational &operator/=(const Rational &RHS) { return *this = *this / RHS; }

  bool operator==(const Rational &RHS) const {
    return Num == RHS.Num && Den == RHS.Den;
  }
  bool operator!=(const Rational &RHS) const { return !(*this == RHS); }
  bool operator<(const Rational &RHS) const { return compare(RHS) < 0; }
  bool operator<=(const Rational &RHS) const { return compare(RHS) <= 0; }
  bool operator>(const Rational &RHS) const { return compare(RHS) > 0; }
  bool operator>=(const Rational &RHS) const { return compare(RHS) >= 0; }

  int compare(const Rational &RHS) const;

  /// Largest integer <= this value.
  BigInt floor() const;
  /// Smallest integer >= this value.
  BigInt ceil() const;

  std::string toString() const;

  size_t hash() const { return Num.hash() * 31 + Den.hash(); }

private:
  void normalize();

  BigInt Num;
  BigInt Den; // always positive
};

} // namespace ids

template <> struct std::hash<ids::Rational> {
  size_t operator()(const ids::Rational &Value) const { return Value.hash(); }
};

#endif // IDS_SUPPORT_RATIONAL_H
