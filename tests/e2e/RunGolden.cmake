# Golden-file runner for one embedded benchmark. Invoked by ctest as
#   cmake -DIDS_VERIFY=<exe> -DBENCH=<name> -DGOLDEN=<file> -P RunGolden.cmake
# Runs `ids-verify --benchmark <name>`, normalizes the output (timings are
# nondeterministic) and diffs it against the checked-in golden file.
#
# Regenerate a golden after an intended output change with:
#   cmake -DIDS_VERIFY=<exe> -DBENCH=<name> -DGOLDEN=<file> -DREGEN=1 \
#         -P RunGolden.cmake

if(NOT DEFINED IDS_VERIFY OR NOT DEFINED BENCH OR NOT DEFINED GOLDEN)
  message(FATAL_ERROR "usage: cmake -DIDS_VERIFY=... -DBENCH=... -DGOLDEN=... -P RunGolden.cmake")
endif()

# EXTRA_ARGS is a comma-separated list of additional ids-verify flags
# (e.g. a deterministic --budget for benchmarks with slow procedures).
set(Extra "")
if(DEFINED EXTRA_ARGS AND NOT EXTRA_ARGS STREQUAL "")
  string(REPLACE "," ";" Extra "${EXTRA_ARGS}")
endif()

execute_process(
  COMMAND "${IDS_VERIFY}" --benchmark "${BENCH}" ${Extra}
  OUTPUT_VARIABLE RawOut
  ERROR_VARIABLE RawErr
  RESULT_VARIABLE ExitCode)

# Normalize: timings like `0.03s` or `(1.27s)` vary run to run, and the
# fixed-width columns around them collapse; squeeze runs of spaces too.
string(REGEX REPLACE "[0-9]+\\.[0-9]+s" "<time>" Out "${RawOut}")
string(REGEX REPLACE "  +" " " Out "${Out}")
set(Out "exit: ${ExitCode}\n${Out}")

if(DEFINED REGEN)
  file(WRITE "${GOLDEN}" "${Out}")
  message(STATUS "wrote ${GOLDEN}")
  return()
endif()

file(READ "${GOLDEN}" Expected)
if(NOT Out STREQUAL Expected)
  message(FATAL_ERROR "golden mismatch for benchmark '${BENCH}'\n"
          "--- expected (${GOLDEN}) ---\n${Expected}\n"
          "--- actual (normalized) ---\n${Out}\n"
          "--- stderr ---\n${RawErr}\n"
          "Regenerate with -DREGEN=1 if the change is intended.")
endif()
