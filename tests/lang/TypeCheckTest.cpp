//===- tests/lang/TypeCheckTest.cpp - Type checker tests -------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/TypeCheck.h"

#include <gtest/gtest.h>

using namespace ids;
using namespace ids::lang;

namespace {
const char *Prelude = R"(
structure S {
  field next: Loc;
  field key: int;
  ghost field prev: Loc;
  ghost field rank: rat;
  ghost field keys: set<int>;
  ghost field hs: set<Loc>;
  local l (x) { (x.next != nil ==> x.next.prev == x) }
  correlation (y) { y.prev == nil }
  impact next [l] { x, old(x.next) }
  impact prev [l] { x, old(x.prev) }
}
)";

bool checks(const std::string &ProcText, std::string *Err = nullptr) {
  DiagEngine Diags;
  auto M = parseModule(std::string(Prelude) + ProcText, Diags);
  if (!M) {
    if (Err)
      *Err = Diags.toString();
    return false;
  }
  bool Ok = typeCheck(*M, Diags);
  if (Err)
    *Err = Diags.toString();
  return Ok;
}
} // namespace

TEST(TypeCheckTest, WellTypedProcedure) {
  std::string Err;
  EXPECT_TRUE(checks(R"(
procedure p(a: Loc, k: int) returns (r: int)
  requires a != nil
  ensures r == old(a.key) + k
{
  r := a.key + k;
}
)",
                     &Err))
      << Err;
}

TEST(TypeCheckTest, RatCoercionAndDivision) {
  std::string Err;
  EXPECT_TRUE(checks(R"(
procedure p(a: Loc, b: Loc) returns (r: rat)
{
  r := (a.rank + b.rank) / 2;
}
)",
                     &Err))
      << Err;
}

TEST(TypeCheckTest, RejectsNonLinearMultiplication) {
  EXPECT_FALSE(checks(R"(
procedure p(a: int, b: int) returns (r: int)
{
  r := a * b;
}
)"));
}

TEST(TypeCheckTest, RejectsDivisionByVariable) {
  EXPECT_FALSE(checks(R"(
procedure p(a: rat, b: int) returns (r: rat)
{
  r := a / b;
}
)"));
}

TEST(TypeCheckTest, RejectsUnknownField) {
  EXPECT_FALSE(checks(R"(
procedure p(a: Loc) returns (r: int)
{
  r := a.nonexistent;
}
)"));
}

TEST(TypeCheckTest, RejectsUnknownVariable) {
  EXPECT_FALSE(checks(R"(
procedure p(a: Loc) returns (r: Loc)
{
  r := zz;
}
)"));
}

TEST(TypeCheckTest, RejectsSetElementMismatch) {
  EXPECT_FALSE(checks(R"(
procedure p(a: Loc) returns (r: bool)
{
  r := 3 in a.hs;
}
)"));
}

TEST(TypeCheckTest, EmptySetNeedsContext) {
  EXPECT_TRUE(checks(R"(
procedure p(a: Loc) returns (r: bool)
{
  r := a.keys == {};
}
)"));
  EXPECT_FALSE(checks(R"(
procedure p(a: Loc) returns (r: bool)
{
  r := {} == {};
}
)"));
}

TEST(TypeCheckTest, DuplusOnlyUnderEquality) {
  EXPECT_TRUE(checks(R"(
procedure p(a: Loc) returns (r: bool)
{
  r := a.hs == {a} duplus a.hs;
}
)"));
  EXPECT_FALSE(checks(R"(
procedure p(a: Loc) returns (r: set<Loc>)
{
  r := {a} duplus a.hs;
}
)"));
}

TEST(TypeCheckTest, OldOnlyInSpecPositions) {
  EXPECT_FALSE(checks(R"(
procedure p(a: Loc) returns (r: int)
{
  r := old(a.key);
}
)"));
}

TEST(TypeCheckTest, CallArityAndTypes) {
  EXPECT_TRUE(checks(R"(
procedure callee(a: Loc) returns (r: Loc)
{
  r := a;
}
procedure caller(a: Loc) returns (r: Loc)
{
  call r := callee(a);
}
)"));
  EXPECT_FALSE(checks(R"(
procedure callee(a: Loc) returns (r: Loc)
{
  r := a;
}
procedure caller(a: Loc) returns (r: Loc)
{
  call r := callee(a, a);
}
)"));
}

TEST(TypeCheckTest, BrSetRequiresKnownGroup) {
  EXPECT_TRUE(checks(R"(
procedure p(a: Loc) returns (r: bool)
  requires br(l) == {}
{
  r := true;
}
)"));
  EXPECT_FALSE(checks(R"(
procedure p(a: Loc) returns (r: bool)
  requires br(wrong) == {}
{
  r := true;
}
)"));
}

TEST(TypeCheckTest, DecreasesMustBeInt) {
  EXPECT_FALSE(checks(R"(
procedure p(a: Loc) returns (r: int)
{
  while (r > 0) decreases a.rank { r := r - 1; }
}
)"));
}

TEST(TypeCheckTest, UnknownGroupInImpactRejected) {
  DiagEngine Diags;
  auto M = parseModule(R"(
structure S {
  field key: int;
  local l (x) { x.key >= 0 }
  impact key [nope] { x }
}
)",
                       Diags);
  ASSERT_TRUE(M != nullptr) << Diags.toString();
  EXPECT_FALSE(typeCheck(*M, Diags));
  EXPECT_NE(Diags.toString().find("unknown group"), std::string::npos)
      << Diags.toString();
}

TEST(TypeCheckTest, UnknownGroupInMultiGroupImpactRejected) {
  DiagEngine Diags;
  auto M = parseModule(R"(
structure S {
  field key: int;
  local l (x) { x.key >= 0 }
  impact key [l, nope] { x }
}
)",
                       Diags);
  ASSERT_TRUE(M != nullptr) << Diags.toString();
  EXPECT_FALSE(typeCheck(*M, Diags));
}

TEST(TypeCheckTest, OverlappingImpactClaimsRejected) {
  // Two impact sets for the same (field, group) pair would race to define
  // one mutation's broken-set growth.
  DiagEngine Diags;
  auto M = parseModule(R"(
structure S {
  field key: int;
  local l (x) { x.key >= 0 }
  impact key [l] { x }
  impact key [l] { x }
}
)",
                       Diags);
  ASSERT_TRUE(M != nullptr) << Diags.toString();
  EXPECT_FALSE(typeCheck(*M, Diags));
  EXPECT_NE(Diags.toString().find("duplicate impact set"),
            std::string::npos)
      << Diags.toString();
}

TEST(TypeCheckTest, RepeatedGroupInOneImpactClauseRejected) {
  // `impact f [l, l]` desugars to a duplicate pair — same error.
  DiagEngine Diags;
  auto M = parseModule(R"(
structure S {
  field key: int;
  local l (x) { x.key >= 0 }
  impact key [l, l] { x }
}
)",
                       Diags);
  ASSERT_TRUE(M != nullptr) << Diags.toString();
  EXPECT_FALSE(typeCheck(*M, Diags));
}

TEST(TypeCheckTest, DistinctGroupsMayShareAField) {
  DiagEngine Diags;
  auto M = parseModule(R"(
structure S {
  field next: Loc;
  field key: int;
  local a (x) { x.key >= 0 }
  local b (x) { x.next != nil ==> x.key <= x.next.key }
  impact key [a, b] { x }
  impact next [b] { x, old(x.next) }
}
)",
                       Diags);
  ASSERT_TRUE(M != nullptr) << Diags.toString();
  EXPECT_TRUE(typeCheck(*M, Diags)) << Diags.toString();
}
