//===- vcgen/VcGen.cpp - Verification condition generation -----------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "vcgen/VcGen.h"

#include "lang/Checks.h"

#include <functional>
#include <map>
#include <set>

using namespace ids;
using namespace ids::vcgen;
using namespace ids::lang;
using smt::TermManager;
using smt::TermRef;

smt::TermRef ProcVc::conjoined(TermManager &TM) const {
  std::vector<TermRef> Parts;
  Parts.reserve(Obligations.size());
  for (const Obligation &O : Obligations)
    Parts.push_back(TM.mkImplies(O.Guard, O.Claim));
  return TM.mkAnd(std::move(Parts));
}

namespace {
/// Symbolic state: current incarnation term for every variable, field map,
/// broken set and the alloc set.
struct Env {
  std::map<std::string, TermRef> Vars;
  std::map<std::string, TermRef> Fields;
  std::map<std::string, TermRef> Br;
  TermRef Alloc = nullptr;
};

/// Havoc targets of a loop body.
struct Targets {
  std::set<std::string> Vars;
  std::set<std::string> Fields;
  std::set<std::string> BrGroups;
  bool Alloc = false;
};

class VcGenerator {
public:
  VcGenerator(TermManager &TM, const Module &M, const VcOptions &Opts)
      : TM(TM), M(M), Opts(Opts) {}

  ProcVc run(const ProcDecl &P);
  ProcVc runImpact(const ImpactDecl &Impact);

private:
  // --- plumbing ---
  const smt::Sort *sortOf(const Type &T) {
    switch (T.Kind) {
    case TypeKind::Int:
      return TM.intSort();
    case TypeKind::Rat:
      return TM.ratSort();
    case TypeKind::Bool:
      return TM.boolSort();
    case TypeKind::Loc:
      return TM.locSort();
    case TypeKind::Set:
      return TM.getArraySort(sortOf(Type{T.Elem, TypeKind::Int}),
                             TM.boolSort());
    }
    return TM.boolSort();
  }
  const smt::Sort *fieldMapSort(const FieldDecl &F) {
    return TM.getArraySort(TM.locSort(), sortOf(F.Ty));
  }
  TermRef defaultValue(const Type &T) {
    switch (T.Kind) {
    case TypeKind::Int:
      return TM.mkIntConst(0);
    case TypeKind::Rat:
      return TM.mkRatConst(Rational(0));
    case TypeKind::Bool:
      return TM.mkFalse();
    case TypeKind::Loc:
      return TM.mkNil();
    case TypeKind::Set:
      return TM.mkEmptySet(sortOf(Type{T.Elem, TypeKind::Int}));
    }
    return TM.mkFalse();
  }

  void oblige(TermRef Guard, TermRef Claim, SourceLoc Loc,
              const std::string &Desc) {
    if (Claim == TM.mkTrue())
      return;
    Obls.push_back({Guard, Claim, Loc, Desc});
  }

  /// Introduces a fresh incarnation constant equal to \p Value; keeps env
  /// entries small and shares structure through the equality.
  TermRef incarnate(const std::string &Prefix, TermRef Value,
                    std::vector<TermRef> &Assumes) {
    TermRef V = TM.mkFreshVar(Prefix, Value->getSort());
    Assumes.push_back(TM.mkEq(V, Value));
    return V;
  }

  // --- expression translation ---
  struct SideFx {
    std::vector<TermRef> Assumes; ///< guarded closure assumptions
  };

  /// Translates an expression. \p Fx non-null marks an executable context:
  /// field reads emit null-dereference obligations (guarded by \p Guard,
  /// the accumulated short-circuit guard) and alloc-closure assumptions.
  /// old(...) resolves against \p OldE.
  TermRef tr(const Expr *E, const Env &Cur, const Env *OldE, TermRef Ctx,
             TermRef Guard, SideFx *Fx);

  TermRef trSpec(const Expr *E, const Env &Cur, const Env *OldE) {
    return tr(E, Cur, OldE, TM.mkTrue(), TM.mkTrue(), nullptr);
  }

  /// The local condition of \p Group instantiated at \p LocTerm.
  TermRef lcAt(const std::string &Group, TermRef LocTerm, const Env &E);

  /// Allocation-closure assumption for an object (Appendix A.3): its
  /// location fields are nil-or-allocated and its set<Loc> fields are
  /// subsets of Alloc.
  TermRef allocClosure(TermRef Obj, const Env &E);

  // --- statements ---
  TermRef execSeq(const std::vector<Stmt *> &Body, Env &E, TermRef Ctx);
  TermRef exec(const Stmt *S, Env &E, TermRef Ctx);
  void emitEnsures(const Env &E, TermRef Ctx, SourceLoc Loc);
  void collectTargets(const std::vector<Stmt *> &Body, Targets &T);
  /// Merges two branch environments; returns the joined env and appends
  /// join equations to the per-branch assumption terms.
  Env mergeEnvs(const Env &E1, std::vector<TermRef> &A1, const Env &E2,
                std::vector<TermRef> &A2);

  TermManager &TM;
  const Module &M;
  VcOptions Opts;
  std::vector<Obligation> Obls;
  Env Entry;
  TermRef ModAtEntry = nullptr;
  const ProcDecl *Proc = nullptr;
};
} // namespace

TermRef VcGenerator::tr(const Expr *E, const Env &Cur, const Env *OldE,
                        TermRef Ctx, TermRef Guard, SideFx *Fx) {
  auto Rec = [&](const Expr *Sub) {
    return tr(Sub, Cur, OldE, Ctx, Guard, Fx);
  };
  switch (E->Kind) {
  case ExprKind::IntLit:
    return E->Ty.Kind == TypeKind::Rat
               ? TM.mkRatConst(Rational(E->IntVal))
               : TM.mkIntConst(E->IntVal);
  case ExprKind::BoolLit:
    return TM.mkBool(E->BoolVal);
  case ExprKind::NilLit:
    return TM.mkNil();
  case ExprKind::EmptySetLit:
    return TM.mkEmptySet(sortOf(Type{E->Ty.Elem, TypeKind::Int}));
  case ExprKind::VarRef: {
    auto It = Cur.Vars.find(E->Name);
    assert(It != Cur.Vars.end() && "unbound variable after type checking");
    return It->second;
  }
  case ExprKind::FieldRead: {
    TermRef Base = Rec(E->arg(0));
    if (Fx) {
      oblige(TM.mkAnd(Ctx, Guard), TM.mkDistinct(Base, TM.mkNil()),
             E->Loc, "dereference of '" + E->Name + "' on non-nil object");
      if (E->Ty.Kind == TypeKind::Loc ||
          (E->Ty.isSet() && E->Ty.Elem == TypeKind::Loc)) {
        TermRef Read = TM.mkSelect(Cur.Fields.at(E->Name), Base);
        TermRef Closure =
            E->Ty.Kind == TypeKind::Loc
                ? TM.mkOr(TM.mkEq(Read, TM.mkNil()),
                          TM.mkMember(Read, Cur.Alloc))
                : TM.mkSubset(Read, Cur.Alloc);
        Fx->Assumes.push_back(TM.mkImplies(Guard, Closure));
      }
    }
    return TM.mkSelect(Cur.Fields.at(E->Name), Base);
  }
  case ExprKind::Old: {
    assert(OldE && "old() with no old-state environment");
    return tr(E->arg(0), *OldE, OldE, Ctx, Guard, nullptr);
  }
  case ExprKind::BrSet:
    return Cur.Br.at(E->Name);
  case ExprKind::AllocSet:
    return Cur.Alloc;
  case ExprKind::Unary:
    return E->UOp == UnOp::Not ? TM.mkNot(Rec(E->arg(0)))
                               : TM.mkNeg(Rec(E->arg(0)));
  case ExprKind::Binary: {
    const Expr *L = E->arg(0), *R = E->arg(1);
    switch (E->BOp) {
    case BinOp::And: {
      TermRef LT = Rec(L);
      TermRef RT = tr(R, Cur, OldE, Ctx, TM.mkAnd(Guard, LT), Fx);
      return TM.mkAnd(LT, RT);
    }
    case BinOp::Or: {
      TermRef LT = Rec(L);
      TermRef RT = tr(R, Cur, OldE, Ctx, TM.mkAnd(Guard, TM.mkNot(LT)), Fx);
      return TM.mkOr(LT, RT);
    }
    case BinOp::Implies: {
      TermRef LT = Rec(L);
      TermRef RT = tr(R, Cur, OldE, Ctx, TM.mkAnd(Guard, LT), Fx);
      return TM.mkImplies(LT, RT);
    }
    case BinOp::Iff:
      return TM.mkEq(Rec(L), Rec(R));
    case BinOp::Add:
      return TM.mkAdd(Rec(L), Rec(R));
    case BinOp::Sub:
      return TM.mkSub(Rec(L), Rec(R));
    case BinOp::Mul: {
      if (L->Kind == ExprKind::IntLit ||
          (L->Kind == ExprKind::Unary && L->UOp == UnOp::Neg))
        std::swap(L, R);
      // R is the literal (possibly negated).
      TermRef LT = Rec(L);
      Rational C = R->Kind == ExprKind::IntLit
                       ? Rational(R->IntVal)
                       : -Rational(R->arg(0)->IntVal);
      return TM.mkMulConst(C, LT);
    }
    case BinOp::Div: {
      Rational C(R->IntVal);
      return TM.mkMulConst(Rational(1) / C, Rec(L));
    }
    case BinOp::Union:
      return TM.mkSetUnion(Rec(L), Rec(R));
    case BinOp::Isect:
      return TM.mkSetIntersect(Rec(L), Rec(R));
    case BinOp::SetMinus:
      return TM.mkSetMinus(Rec(L), Rec(R));
    case BinOp::DuPlus:
      assert(false && "duplus outside an equality; rejected by checker");
      return TM.mkTrue();
    case BinOp::In:
      return TM.mkMember(Rec(L), Rec(R));
    case BinOp::Subset:
      return TM.mkSubset(Rec(L), Rec(R));
    case BinOp::Eq:
    case BinOp::Ne: {
      if (R->Kind == ExprKind::Binary && R->BOp == BinOp::DuPlus) {
        // a == b duplus c  ~~>  a == b union c  &&  disjoint(b, c)
        TermRef A = Rec(L);
        TermRef B = Rec(R->arg(0));
        TermRef C = Rec(R->arg(1));
        TermRef Conj = TM.mkAnd(TM.mkEq(A, TM.mkSetUnion(B, C)),
                                TM.mkDisjoint(B, C));
        return Conj;
      }
      TermRef Eq = TM.mkEq(Rec(L), Rec(R));
      return E->BOp == BinOp::Eq ? Eq : TM.mkNot(Eq);
    }
    case BinOp::Lt:
      return TM.mkLt(Rec(L), Rec(R));
    case BinOp::Le:
      return TM.mkLe(Rec(L), Rec(R));
    case BinOp::Gt:
      return TM.mkGt(Rec(L), Rec(R));
    case BinOp::Ge:
      return TM.mkGe(Rec(L), Rec(R));
    }
    return TM.mkTrue();
  }
  case ExprKind::IteExpr: {
    TermRef C = Rec(E->arg(0));
    TermRef T = tr(E->arg(1), Cur, OldE, Ctx, TM.mkAnd(Guard, C), Fx);
    TermRef F = tr(E->arg(2), Cur, OldE, Ctx, TM.mkAnd(Guard, TM.mkNot(C)),
                   Fx);
    return TM.mkIte(C, T, F);
  }
  case ExprKind::SetLit: {
    TermRef S = TM.mkEmptySet(sortOf(Type{E->Ty.Elem, TypeKind::Int}));
    for (const Expr *Elem : E->Args)
      S = TM.mkSetInsert(S, Rec(Elem));
    return S;
  }
  case ExprKind::Fresh: {
    assert(OldE);
    TermRef S = Rec(E->arg(0));
    return TM.mkAnd(TM.mkDisjoint(S, OldE->Alloc),
                    TM.mkSubset(S, Cur.Alloc));
  }
  case ExprKind::LcApp:
    return lcAt(E->Name, Rec(E->arg(0)), Cur);
  }
  return TM.mkTrue();
}

TermRef VcGenerator::lcAt(const std::string &Group, TermRef LocTerm,
                          const Env &E) {
  const LocalCondDecl *L = M.Structure.findLocal(Group);
  assert(L && "unknown LC group after checking");
  Env Scoped = E;
  Scoped.Vars[L->Param] = LocTerm;
  return tr(L->Body, Scoped, /*OldE=*/nullptr, TM.mkTrue(), TM.mkTrue(),
            nullptr);
}

TermRef VcGenerator::allocClosure(TermRef Obj, const Env &E) {
  std::vector<TermRef> Parts;
  for (const FieldDecl &F : M.Structure.Fields) {
    TermRef Read = TM.mkSelect(E.Fields.at(F.Name), Obj);
    if (F.Ty.Kind == TypeKind::Loc)
      Parts.push_back(TM.mkOr(TM.mkEq(Read, TM.mkNil()),
                              TM.mkMember(Read, E.Alloc)));
    else if (F.Ty.isSet() && F.Ty.Elem == TypeKind::Loc)
      Parts.push_back(TM.mkSubset(Read, E.Alloc));
  }
  TermRef Guard = TM.mkAnd(TM.mkDistinct(Obj, TM.mkNil()),
                           TM.mkMember(Obj, E.Alloc));
  return TM.mkImplies(Guard, TM.mkAnd(std::move(Parts)));
}

void VcGenerator::collectTargets(const std::vector<Stmt *> &Body,
                                 Targets &T) {
  for (const Stmt *S : Body) {
    switch (S->Kind) {
    case StmtKind::VarDecl:
    case StmtKind::Assign:
      T.Vars.insert(S->VarName);
      break;
    case StmtKind::Mut: {
      T.Fields.insert(S->Target->Name);
      for (const LocalCondDecl &L : M.Structure.Locals)
        if (fieldsReadByLocal(M.Structure, L.Name).count(S->Target->Name))
          T.BrGroups.insert(L.Name);
      break;
    }
    case StmtKind::NewObj:
      T.Vars.insert(S->VarName);
      for (const FieldDecl &F : M.Structure.Fields)
        T.Fields.insert(F.Name);
      for (const LocalCondDecl &L : M.Structure.Locals)
        T.BrGroups.insert(L.Name);
      T.Alloc = true;
      break;
    case StmtKind::AssertLcRemove:
      T.BrGroups.insert(S->Group);
      break;
    case StmtKind::Call:
      for (const std::string &N : S->CallLhs)
        T.Vars.insert(N);
      for (const FieldDecl &F : M.Structure.Fields)
        T.Fields.insert(F.Name);
      for (const LocalCondDecl &L : M.Structure.Locals)
        T.BrGroups.insert(L.Name);
      T.Alloc = true;
      break;
    case StmtKind::If:
      collectTargets(S->Body, T);
      collectTargets(S->ElseBody, T);
      break;
    case StmtKind::While:
    case StmtKind::Block:
    case StmtKind::GhostBlock:
      collectTargets(S->Body, T);
      break;
    default:
      break;
    }
  }
}

Env VcGenerator::mergeEnvs(const Env &E1, std::vector<TermRef> &A1,
                           const Env &E2, std::vector<TermRef> &A2) {
  Env Out;
  auto Join = [&](TermRef V1, TermRef V2, const std::string &Name) {
    if (V1 == V2)
      return V1;
    TermRef J = TM.mkFreshVar(Name + "@join", V1->getSort());
    A1.push_back(TM.mkEq(J, V1));
    A2.push_back(TM.mkEq(J, V2));
    return J;
  };
  // Variables may be scoped to one branch; join only common ones.
  for (const auto &[N, V1] : E1.Vars) {
    auto It = E2.Vars.find(N);
    if (It != E2.Vars.end())
      Out.Vars[N] = Join(V1, It->second, N);
  }
  for (const auto &[N, V1] : E1.Fields)
    Out.Fields[N] = Join(V1, E2.Fields.at(N), "M_" + N);
  for (const auto &[N, V1] : E1.Br)
    Out.Br[N] = Join(V1, E2.Br.at(N), "Br_" + N);
  Out.Alloc = Join(E1.Alloc, E2.Alloc, "Alloc");
  return Out;
}

void VcGenerator::emitEnsures(const Env &E, TermRef Ctx, SourceLoc Loc) {
  for (const Expr *Post : Proc->Ensures)
    oblige(Ctx, tr(Post, E, &Entry, Ctx, TM.mkTrue(), nullptr), Loc,
           "postcondition of '" + Proc->Name + "'");
}

TermRef VcGenerator::execSeq(const std::vector<Stmt *> &Body, Env &E,
                             TermRef Ctx) {
  std::vector<TermRef> Assumes;
  for (const Stmt *S : Body) {
    TermRef A = exec(S, E, TM.mkAnd(Ctx, TM.mkAnd(Assumes)));
    Assumes.push_back(A);
  }
  return TM.mkAnd(std::move(Assumes));
}

TermRef VcGenerator::exec(const Stmt *S, Env &E, TermRef Ctx) {
  switch (S->Kind) {
  case StmtKind::VarDecl: {
    std::vector<TermRef> Assumes;
    TermRef Init = nullptr;
    if (S->Init) {
      SideFx Fx;
      Init = tr(S->Init, E, &Entry, Ctx, TM.mkTrue(), &Fx);
      Assumes = std::move(Fx.Assumes);
    }
    TermRef V = TM.mkFreshVar(S->VarName, sortOf(S->VarType));
    if (Init)
      Assumes.push_back(TM.mkEq(V, Init));
    E.Vars[S->VarName] = V;
    return TM.mkAnd(std::move(Assumes));
  }
  case StmtKind::Assign: {
    SideFx Fx;
    TermRef Val = tr(S->Init, E, &Entry, Ctx, TM.mkTrue(), &Fx);
    std::vector<TermRef> Assumes = std::move(Fx.Assumes);
    E.Vars[S->VarName] =
        incarnate(S->VarName, Val, Assumes);
    return TM.mkAnd(std::move(Assumes));
  }
  case StmtKind::Mut: {
    SideFx Fx;
    TermRef Base = tr(S->Target->arg(0), E, &Entry, Ctx, TM.mkTrue(), &Fx);
    TermRef Val = tr(S->Init, E, &Entry, Ctx, TM.mkTrue(), &Fx);
    std::vector<TermRef> Assumes = std::move(Fx.Assumes);
    const std::string &Field = S->Target->Name;
    oblige(Ctx, TM.mkDistinct(Base, TM.mkNil()), S->Loc,
           "Mut target is non-nil");
    if (Opts.CheckFrames && ModAtEntry)
      oblige(Ctx,
             TM.mkOr(TM.mkMember(Base, ModAtEntry),
                     TM.mkNot(TM.mkMember(Base, Entry.Alloc))),
             S->Loc, "mutation stays within the modifies footprint");
    // Impact-set updates per group, evaluated in the pre-mutation state
    // (old() inside impact terms refers to the state before this Mut).
    std::vector<std::pair<std::string, TermRef>> BrUpdates;
    for (const ImpactDecl &I : M.Structure.Impacts) {
      if (I.Field != Field)
        continue;
      Env ImpEnv = E;
      ImpEnv.Vars[I.Param] = Base;
      if (I.Precondition)
        oblige(Ctx, tr(I.Precondition, ImpEnv, &ImpEnv, Ctx, TM.mkTrue(),
                       nullptr),
               S->Loc, "mutation precondition for field '" + Field + "'");
      TermRef NewBr = E.Br.at(I.Group);
      for (const Expr *T : I.Terms) {
        TermRef TT = tr(T, ImpEnv, &ImpEnv, Ctx, TM.mkTrue(), nullptr);
        NewBr = TM.mkIte(TM.mkEq(TT, TM.mkNil()), NewBr,
                         TM.mkSetInsert(NewBr, TT));
      }
      BrUpdates.emplace_back(I.Group, NewBr);
    }
    // Apply the store and the broken-set growth.
    E.Fields[Field] = incarnate(
        "M_" + Field, TM.mkStore(E.Fields.at(Field), Base, Val), Assumes);
    for (auto &[Group, NewBr] : BrUpdates)
      E.Br[Group] = incarnate("Br_" + Group, NewBr, Assumes);
    return TM.mkAnd(std::move(Assumes));
  }
  case StmtKind::NewObj: {
    std::vector<TermRef> Assumes;
    TermRef O = TM.mkFreshVar("obj", TM.locSort());
    Assumes.push_back(TM.mkDistinct(O, TM.mkNil()));
    Assumes.push_back(TM.mkNot(TM.mkMember(O, E.Alloc)));
    E.Alloc = incarnate("Alloc", TM.mkSetInsert(E.Alloc, O), Assumes);
    for (const FieldDecl &F : M.Structure.Fields)
      E.Fields[F.Name] =
          incarnate("M_" + F.Name,
                    TM.mkStore(E.Fields.at(F.Name), O, defaultValue(F.Ty)),
                    Assumes);
    for (const LocalCondDecl &L : M.Structure.Locals)
      E.Br[L.Name] = incarnate(
          "Br_" + L.Name, TM.mkSetInsert(E.Br.at(L.Name), O), Assumes);
    E.Vars[S->VarName] = O;
    return TM.mkAnd(std::move(Assumes));
  }
  case StmtKind::AssertLcRemove: {
    SideFx Fx;
    TermRef X = tr(S->Cond, E, &Entry, Ctx, TM.mkTrue(), &Fx);
    std::vector<TermRef> Assumes = std::move(Fx.Assumes);
    oblige(Ctx, TM.mkDistinct(X, TM.mkNil()), S->Loc,
           "AssertLCAndRemove target is non-nil");
    oblige(TM.mkAnd(Ctx, TM.mkAnd(Assumes)), lcAt(S->Group, X, E), S->Loc,
           "local condition '" + S->Group + "' holds (Assert LC and "
           "Remove, Figure 2)");
    E.Br[S->Group] = incarnate(
        "Br_" + S->Group, TM.mkSetRemove(E.Br.at(S->Group), X), Assumes);
    return TM.mkAnd(std::move(Assumes));
  }
  case StmtKind::InferLc: {
    SideFx Fx;
    TermRef X = tr(S->Cond, E, &Entry, Ctx, TM.mkTrue(), &Fx);
    std::vector<TermRef> Assumes = std::move(Fx.Assumes);
    oblige(Ctx, TM.mkDistinct(X, TM.mkNil()), S->Loc,
           "InferLCOutsideBr target is non-nil");
    oblige(Ctx, TM.mkNot(TM.mkMember(X, E.Br.at(S->Group))), S->Loc,
           "object is outside the broken set (Infer LC Outside Br, "
           "Figure 2)");
    Assumes.push_back(lcAt(S->Group, X, E));
    Assumes.push_back(allocClosure(X, E));
    return TM.mkAnd(std::move(Assumes));
  }
  case StmtKind::Assert: {
    TermRef C = tr(S->Cond, E, &Entry, Ctx, TM.mkTrue(), nullptr);
    oblige(Ctx, C, S->Loc, "assertion");
    return C;
  }
  case StmtKind::Assume:
    return tr(S->Cond, E, &Entry, Ctx, TM.mkTrue(), nullptr);
  case StmtKind::If: {
    SideFx Fx;
    TermRef Cond = tr(S->Cond, E, &Entry, Ctx, TM.mkTrue(), &Fx);
    TermRef Pre = TM.mkAnd(Fx.Assumes);
    Env E1 = E, E2 = E;
    std::vector<TermRef> A1 = {
        execSeq(S->Body, E1, TM.mkAnd({Ctx, Pre, Cond}))};
    std::vector<TermRef> A2 = {execSeq(
        S->ElseBody, E2, TM.mkAnd({Ctx, Pre, TM.mkNot(Cond)}))};
    E = mergeEnvs(E1, A1, E2, A2);
    return TM.mkAnd(
        {Pre, TM.mkImplies(Cond, TM.mkAnd(std::move(A1))),
         TM.mkImplies(TM.mkNot(Cond), TM.mkAnd(std::move(A2)))});
  }
  case StmtKind::While: {
    // 1. Invariants hold on entry.
    for (const Expr *Inv : S->Invariants)
      oblige(Ctx, tr(Inv, E, &Entry, Ctx, TM.mkTrue(), nullptr), Inv->Loc,
             "loop invariant holds on entry");
    // 2. Havoc the loop targets.
    Targets T;
    collectTargets(S->Body, T);
    std::vector<TermRef> Assumes;
    for (const std::string &V : T.Vars) {
      auto It = E.Vars.find(V);
      if (It != E.Vars.end())
        It->second = TM.mkFreshVar(V, It->second->getSort());
    }
    for (const std::string &F : T.Fields)
      E.Fields[F] = TM.mkFreshVar("M_" + F, E.Fields.at(F)->getSort());
    for (const std::string &G : T.BrGroups)
      E.Br[G] = TM.mkFreshVar("Br_" + G, E.Br.at(G)->getSort());
    if (T.Alloc) {
      TermRef NewAlloc = TM.mkFreshVar("Alloc", E.Alloc->getSort());
      Assumes.push_back(TM.mkSubset(E.Alloc, NewAlloc));
      Assumes.push_back(TM.mkNot(TM.mkMember(TM.mkNil(), NewAlloc)));
      E.Alloc = NewAlloc;
    }
    // 3. Assume invariants for the arbitrary iteration.
    for (const Expr *Inv : S->Invariants)
      Assumes.push_back(tr(Inv, E, &Entry, Ctx, TM.mkTrue(), nullptr));
    TermRef LoopCtx = TM.mkAnd(Ctx, TM.mkAnd(Assumes));
    SideFx Fx;
    TermRef Cond = tr(S->Cond, E, &Entry, LoopCtx, TM.mkTrue(), &Fx);
    for (TermRef A : Fx.Assumes)
      Assumes.push_back(A);
    LoopCtx = TM.mkAnd(Ctx, TM.mkAnd(Assumes));
    // 4. Body branch: runs under cond; invariants are re-established.
    Env BodyEnv = E;
    TermRef D0 = S->Decreases
                     ? tr(S->Decreases, E, &Entry, LoopCtx, TM.mkTrue(),
                          nullptr)
                     : nullptr;
    TermRef ABody =
        execSeq(S->Body, BodyEnv, TM.mkAnd(LoopCtx, Cond));
    TermRef LatchCtx = TM.mkAnd({LoopCtx, Cond, ABody});
    for (const Expr *Inv : S->Invariants)
      oblige(LatchCtx, tr(Inv, BodyEnv, &Entry, LatchCtx, TM.mkTrue(),
                          nullptr),
             Inv->Loc, "loop invariant is preserved");
    if (D0) {
      TermRef D1 = tr(S->Decreases, BodyEnv, &Entry, LatchCtx, TM.mkTrue(),
                      nullptr);
      oblige(LatchCtx,
             TM.mkAnd(TM.mkLe(TM.mkIntConst(0), D1), TM.mkLt(D1, D0)),
             S->Loc, "loop measure decreases and stays non-negative");
    }
    // 5. Continue after the loop with the negated condition.
    Assumes.push_back(TM.mkNot(Cond));
    return TM.mkAnd(std::move(Assumes));
  }
  case StmtKind::Call: {
    const ProcDecl *Callee = M.findProc(S->Callee);
    assert(Callee && "unresolved call after checking");
    SideFx Fx;
    std::vector<TermRef> ArgTerms;
    for (const Expr *A : S->CallArgs)
      ArgTerms.push_back(tr(A, E, &Entry, Ctx, TM.mkTrue(), &Fx));
    std::vector<TermRef> Assumes = std::move(Fx.Assumes);
    TermRef PreCtx = TM.mkAnd(Ctx, TM.mkAnd(Assumes));

    // Callee environment for requires/modifies (pre-state, args bound).
    Env CalleePre = E;
    CalleePre.Vars.clear();
    for (size_t I = 0; I < ArgTerms.size(); ++I)
      CalleePre.Vars[Callee->Params[I].Name] = ArgTerms[I];
    for (const Expr *Req : Callee->Requires)
      oblige(PreCtx, tr(Req, CalleePre, nullptr, PreCtx, TM.mkTrue(),
                        nullptr),
             S->Loc, "precondition of '" + Callee->Name + "' at call site");

    TermRef ModCallee = TM.mkEmptySet(TM.locSort());
    for (const Expr *ModE : Callee->Modifies)
      ModCallee = TM.mkSetUnion(
          ModCallee,
          tr(ModE, CalleePre, nullptr, PreCtx, TM.mkTrue(), nullptr));
    if (Opts.CheckFrames && ModAtEntry)
      oblige(PreCtx,
             TM.mkSubset(ModCallee,
                         TM.mkSetUnion(ModAtEntry,
                                       TM.mkSetMinus(E.Alloc, Entry.Alloc))),
             S->Loc, "callee footprint lies within the caller's");

    Env PreCall = E; // old() state for the callee's ensures
    // Allocation can only grow across the call.
    TermRef AllocPost = TM.mkFreshVar("Alloc", E.Alloc->getSort());
    if (Opts.QuantifiedMode) {
      TermRef O = TM.mkFreshVar("qo", TM.locSort());
      Assumes.push_back(TM.mkForall(
          {O}, TM.mkImplies(TM.mkMember(O, E.Alloc),
                            TM.mkMember(O, AllocPost))));
    } else {
      Assumes.push_back(TM.mkSubset(E.Alloc, AllocPost));
    }
    Assumes.push_back(TM.mkNot(TM.mkMember(TM.mkNil(), AllocPost)));
    E.Alloc = AllocPost;
    // Heap change: parameterized map update over footprint + fresh objs.
    TermRef FrameGuard = TM.mkSetUnion(
        ModCallee, TM.mkSetMinus(AllocPost, PreCall.Alloc));
    for (const FieldDecl &F : M.Structure.Fields) {
      TermRef Havoc = TM.mkFreshVar("M_" + F.Name,
                                    PreCall.Fields.at(F.Name)->getSort());
      if (Opts.QuantifiedMode) {
        TermRef O = TM.mkFreshVar("qo", TM.locSort());
        Assumes.push_back(TM.mkForall(
            {O},
            TM.mkImplies(
                TM.mkNot(TM.mkMember(O, FrameGuard)),
                TM.mkEq(TM.mkSelect(Havoc, O),
                        TM.mkSelect(PreCall.Fields.at(F.Name), O)))));
        E.Fields[F.Name] = Havoc;
      } else {
        E.Fields[F.Name] = incarnate(
            "M_" + F.Name,
            TM.mkPwIte(FrameGuard, Havoc, PreCall.Fields.at(F.Name)),
            Assumes);
      }
    }
    // Broken sets are governed by the callee's contract.
    for (const LocalCondDecl &L : M.Structure.Locals)
      E.Br[L.Name] =
          TM.mkFreshVar("Br_" + L.Name, E.Br.at(L.Name)->getSort());
    // Results.
    Env CalleePost = E;
    CalleePost.Vars.clear();
    for (size_t I = 0; I < ArgTerms.size(); ++I)
      CalleePost.Vars[Callee->Params[I].Name] = ArgTerms[I];
    Env CalleeOld = PreCall;
    CalleeOld.Vars = CalleePost.Vars;
    for (size_t I = 0; I < S->CallLhs.size(); ++I) {
      TermRef R = TM.mkFreshVar(S->CallLhs[I],
                                sortOf(Callee->Returns[I].Ty));
      CalleePost.Vars[Callee->Returns[I].Name] = R;
      E.Vars[S->CallLhs[I]] = R;
      if (Callee->Returns[I].Ty.Kind == TypeKind::Loc) {
        Assumes.push_back(TM.mkOr(TM.mkEq(R, TM.mkNil()),
                                  TM.mkMember(R, E.Alloc)));
        Assumes.push_back(allocClosure(R, E));
      }
    }
    for (const Expr *Post : Callee->Ensures)
      Assumes.push_back(tr(Post, CalleePost, &CalleeOld, Ctx, TM.mkTrue(),
                           nullptr));
    return TM.mkAnd(std::move(Assumes));
  }
  case StmtKind::Return:
    emitEnsures(E, Ctx, S->Loc);
    return TM.mkFalse(); // cuts the rest of the path
  case StmtKind::Block:
  case StmtKind::GhostBlock:
    return execSeq(S->Body, E, Ctx);
  }
  return TM.mkTrue();
}

ProcVc VcGenerator::run(const ProcDecl &P) {
  Proc = &P;
  Obls.clear();

  Env E;
  for (const FieldDecl &F : M.Structure.Fields)
    E.Fields[F.Name] = TM.mkFreshVar("M_" + F.Name, fieldMapSort(F));
  for (const LocalCondDecl &L : M.Structure.Locals)
    E.Br[L.Name] = TM.mkFreshVar(
        "Br_" + L.Name, TM.getArraySort(TM.locSort(), TM.boolSort()));
  E.Alloc = TM.mkFreshVar("Alloc",
                          TM.getArraySort(TM.locSort(), TM.boolSort()));
  std::vector<TermRef> Assumes;
  Assumes.push_back(TM.mkNot(TM.mkMember(TM.mkNil(), E.Alloc)));
  for (const ParamDecl &Param : P.Params) {
    TermRef V = TM.mkFreshVar(Param.Name, sortOf(Param.Ty));
    E.Vars[Param.Name] = V;
    if (Param.Ty.Kind == TypeKind::Loc) {
      Assumes.push_back(
          TM.mkOr(TM.mkEq(V, TM.mkNil()), TM.mkMember(V, E.Alloc)));
      Assumes.push_back(allocClosure(V, E));
    } else if (Param.Ty.isSet() && Param.Ty.Elem == TypeKind::Loc) {
      Assumes.push_back(TM.mkSubset(V, E.Alloc));
    }
  }
  for (const ParamDecl &Ret : P.Returns)
    E.Vars[Ret.Name] = TM.mkFreshVar(Ret.Name, sortOf(Ret.Ty));

  Entry = E;
  for (const Expr *Req : P.Requires)
    Assumes.push_back(tr(Req, E, nullptr, TM.mkTrue(), TM.mkTrue(),
                         nullptr));
  ModAtEntry = TM.mkEmptySet(TM.locSort());
  for (const Expr *ModE : P.Modifies)
    ModAtEntry = TM.mkSetUnion(
        ModAtEntry, tr(ModE, E, nullptr, TM.mkTrue(), TM.mkTrue(), nullptr));

  TermRef Ctx = TM.mkAnd(std::move(Assumes));
  TermRef ABody = execSeq(P.Body->Body, E, Ctx);
  emitEnsures(E, TM.mkAnd(Ctx, ABody), P.Loc);

  ProcVc Result;
  Result.Obligations = std::move(Obls);
  return Result;
}

ProcVc VcGenerator::runImpact(const ImpactDecl &Impact) {
  Obls.clear();
  Proc = nullptr;

  Env E;
  for (const FieldDecl &F : M.Structure.Fields)
    E.Fields[F.Name] = TM.mkFreshVar("M_" + F.Name, fieldMapSort(F));
  for (const LocalCondDecl &L : M.Structure.Locals)
    E.Br[L.Name] = TM.mkFreshVar(
        "Br_" + L.Name, TM.getArraySort(TM.locSort(), TM.boolSort()));
  E.Alloc = TM.mkFreshVar("Alloc",
                          TM.getArraySort(TM.locSort(), TM.boolSort()));

  const FieldDecl *F = M.Structure.findField(Impact.Field);
  assert(F);
  TermRef X = TM.mkFreshVar("x", TM.locSort());
  TermRef U = TM.mkFreshVar("u", TM.locSort());
  TermRef V = TM.mkFreshVar("v", sortOf(F->Ty));

  Env ImpEnv = E;
  ImpEnv.Vars[Impact.Param] = X;

  std::vector<TermRef> Assumes;
  Assumes.push_back(TM.mkDistinct(X, TM.mkNil()));
  Assumes.push_back(TM.mkDistinct(U, TM.mkNil()));
  // u is outside the declared impact set (pre-state terms).
  for (const Expr *T : Impact.Terms) {
    TermRef TT = tr(T, ImpEnv, &ImpEnv, TM.mkTrue(), TM.mkTrue(), nullptr);
    Assumes.push_back(TM.mkDistinct(U, TT));
  }
  if (Impact.Precondition)
    Assumes.push_back(tr(Impact.Precondition, ImpEnv, &ImpEnv, TM.mkTrue(),
                         TM.mkTrue(), nullptr));
  // LC_g(u) holds before the mutation.
  Assumes.push_back(lcAt(Impact.Group, U, E));

  // Mutate x.f := v.
  Env Post = E;
  Post.Fields[Impact.Field] =
      TM.mkStore(E.Fields.at(Impact.Field), X, V);

  // LC_g(u) must still hold.
  oblige(TM.mkAnd(std::move(Assumes)), lcAt(Impact.Group, U, Post),
         Impact.Loc,
         "impact set for field '" + Impact.Field + "' w.r.t. group '" +
             Impact.Group + "' is correct (Appendix C)");

  ProcVc Result;
  Result.Obligations = std::move(Obls);
  return Result;
}

ProcVc vcgen::generateVc(TermManager &TM, const Module &M,
                         const ProcDecl &P, const VcOptions &Opts) {
  VcGenerator G(TM, M, Opts);
  return G.run(P);
}

ProcVc vcgen::generateImpactVc(TermManager &TM, const Module &M,
                               const ImpactDecl &Impact) {
  VcGenerator G(TM, M, VcOptions());
  return G.runImpact(Impact);
}
