//===- pipeline/Simplify.h - VC simplification pass ------------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bottom-up VC simplification beyond the TermManager's smart
/// constructors, applied per obligation before the SMT solver sees it:
///
///  - complementary-literal collapse in n-ary And/Or (x /\ !x -> false),
///  - read-over-write resolution through Store chains when the indices
///    are provably distinct (distinct interned constants), and select
///    expansion over the pointwise map combinators (MapOr/MapAnd/MapDiff
///    and the parameterized-update PwIte), which is where the FWYB
///    encoding's heap-update chains blow up,
///  - equality substitution under the guard: passified VCs are dominated
///    by incarnation equalities `x_k == e`; substituting and dropping
///    them shrinks the obligation without changing its verdict.
///
/// Every rewrite preserves equivalence (and the guard-equality
/// elimination preserves equisatisfiability of Guard /\ !Claim), so the
/// solver verdict on the simplified obligation is the verdict on the
/// original — the property the differential fuzz suite pins.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_PIPELINE_SIMPLIFY_H
#define IDS_PIPELINE_SIMPLIFY_H

#include "smt/Term.h"

#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace ids {
namespace pipeline {

struct SimplifyStats {
  /// Guard equalities substituted and eliminated.
  unsigned EqualitiesSubstituted = 0;
  /// Select-over-store reads resolved past a provably distinct index.
  unsigned StoresResolved = 0;
  /// Obligations discharged without any solver query.
  unsigned ProvedTrivially = 0;
};

/// The top-level conjuncts of a guard (a non-And guard is its own sole
/// conjunct) — the unit of granularity shared by the simplifier's
/// equality propagation and the slicer.
inline std::vector<smt::TermRef> guardConjuncts(smt::TermRef Guard) {
  if (Guard->getKind() == smt::TermKind::And)
    return Guard->getArgs();
  return {Guard};
}

/// Stateless-per-term rewriter with a persistent memo table; one instance
/// per (manager, obligation batch).
class Simplifier {
public:
  explicit Simplifier(smt::TermManager &TM) : TM(TM) {}

  /// Rewrites \p T bottom-up to an equivalent, usually smaller term.
  smt::TermRef rewrite(smt::TermRef T);

  /// Simplifies the obligation Guard => Claim in place (rewriting plus
  /// iterated guard-equality substitution). Returns true when the
  /// obligation is discharged outright: the claim rewrote to true, the
  /// guard to false, or the guard conjuncts subsume the claim.
  bool simplifyObligation(smt::TermRef &Guard, smt::TermRef &Claim,
                          SimplifyStats *St = nullptr);

private:
  smt::TermRef rewriteNode(smt::TermRef T,
                           const std::vector<smt::TermRef> &Args);
  smt::TermRef simplifySelect(smt::TermRef Array, smt::TermRef Index);
  bool propagateGuardEqualities(std::vector<smt::TermRef> &Conjuncts,
                                smt::TermRef &Claim, SimplifyStats *St);

  smt::TermManager &TM;
  std::unordered_map<smt::TermRef, smt::TermRef> Cache;
  /// Memo for simplifySelect: (array, index) pairs recur across the
  /// combinator expansion (shared DAG nodes would otherwise make the
  /// recursion exponential).
  std::map<std::pair<smt::TermRef, smt::TermRef>, smt::TermRef> SelectCache;
  unsigned StoresResolved = 0;
};

} // namespace pipeline
} // namespace ids

#endif // IDS_PIPELINE_SIMPLIFY_H
