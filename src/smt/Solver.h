//===- smt/Solver.h - CDCL(T) SMT solver -----------------------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-shot SMT solver facade: decides quantifier-free formulas over
/// the combination of EUF, linear Int/Rat arithmetic and the generalized
/// array fragment — the decidable combination the paper's verification
/// conditions live in (Section 3.7). Architecture:
///
///   formula --(quantifier instantiation; RQ3 mode only)-->
///           --(ite lifting)--> --(eager array reduction)-->
///           --(Tseitin CNF)--> CDCL SAT core
///
/// and on every full propositional assignment, a theory check
/// (TheoryEngine, one-shot mode) runs congruence closure and simplex to
/// fixpoint with Nelson-Oppen style equality exchange; conflicts come
/// back as small explanation clauses. Sat answers are validated by
/// evaluating the original formula under the constructed model before
/// being reported.
///
/// For incremental solving (push/pop/assert with shared-prefix reuse) see
/// SolverContext.h; this class remains the fresh-solve baseline that
/// `--no-incremental` falls back to.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SMT_SOLVER_H
#define IDS_SMT_SOLVER_H

#include "smt/TheoryEngine.h"

namespace ids {
namespace smt {

/// One-shot SMT solver over a TermManager.
class Solver {
public:
  using Result = SolverResult;
  using Options = SolverOptions;
  using Stats = SolverStats;

  explicit Solver(TermManager &TM, Options O) : Core(TM, std::move(O)) {}
  explicit Solver(TermManager &TM) : Solver(TM, Options()) {}

  /// Decides satisfiability of \p Formula. One shot per Solver instance.
  Result checkSat(TermRef Formula);

  /// The model after a Sat result.
  const Model &model() const { return Core.CurrentModel; }
  const Stats &stats() const { return Core.St; }

private:
  SolverCore Core;
};

} // namespace smt
} // namespace ids

#endif // IDS_SMT_SOLVER_H
