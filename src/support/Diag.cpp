//===- support/Diag.cpp - Source locations and diagnostics ----------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "support/Diag.h"

using namespace ids;

std::string SourceLoc::toString() const {
  if (!isValid())
    return "<unknown>";
  return std::to_string(Line) + ":" + std::to_string(Column);
}

std::string Diagnostic::toString() const {
  const char *Prefix = "error";
  if (Kind == DiagKind::Warning)
    Prefix = "warning";
  else if (Kind == DiagKind::Note)
    Prefix = "note";
  return Loc.toString() + ": " + Prefix + ": " + Message;
}

std::string DiagEngine::toString() const {
  std::string Result;
  for (const Diagnostic &D : Diags) {
    Result += D.toString();
    Result += '\n';
  }
  return Result;
}
