//===- tests/smt/FuzzTest.cpp - Differential SMT fuzzing -------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized differential testing of the SMT solver: generate random
/// quantifier-free formulas over booleans, linear Int arithmetic and
/// Int->Int / Int->Bool arrays from a seeded PRNG, run Solver::checkSat,
/// and cross-check every Sat answer by evaluating the original formula
/// under the produced Model via Model::evaluate. A Sat verdict whose model
/// does not satisfy the formula is a solver soundness bug.
///
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"
#include "smt/SolverContext.h"
#include "smt/TermPrinter.h"

#include "FormulaGen.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

using namespace ids;
using namespace ids::smt;

namespace {

/// Runs \p Iters random formulas at \p Depth through a fresh solver each,
/// cross-checking every Sat model. Returns {sat, unsat, unknown} counts.
struct Counts {
  unsigned Sat = 0, Unsat = 0, Unknown = 0;
};

Counts runDifferential(uint32_t Seed, unsigned Iters, unsigned Depth) {
  std::mt19937 Rng(Seed);
  Counts C;
  for (unsigned I = 0; I < Iters; ++I) {
    TermManager TM;
    FormulaGen Gen(TM, Rng);
    TermRef F = Gen.boolFormula(Depth);

    Solver::Options Opts;
    Opts.MaxTheoryChecks = 20000; // bound pathological instances
    Solver S(TM, Opts);
    Solver::Result R = S.checkSat(F);
    switch (R) {
    case Solver::Result::Sat: {
      ++C.Sat;
      Value V = S.model().evaluate(F);
      EXPECT_EQ(V.K, Value::Kind::Bool)
          << "model evaluation of a Bool formula produced a non-Bool value "
          << "(seed " << Seed << ", iter " << I << ")\n"
          << printTerm(F);
      EXPECT_TRUE(V.B) << "solver said Sat but its model refutes the "
                       << "formula (seed " << Seed << ", iter " << I << ")\n"
                       << printTerm(F) << "\nmodel:\n"
                       << S.model().toString();
      break;
    }
    case Solver::Result::Unsat:
      ++C.Unsat;
      break;
    case Solver::Result::Unknown:
      ++C.Unknown;
      break;
    }
  }
  return C;
}

TEST(SmtFuzzTest, DifferentialShallow) {
  Counts C = runDifferential(/*Seed=*/0xC0FFEE, /*Iters=*/300, /*Depth=*/3);
  // The generator must exercise both verdicts, otherwise it is too easy.
  EXPECT_GT(C.Sat, 25u);
  EXPECT_GT(C.Unsat, 15u);
}

TEST(SmtFuzzTest, DifferentialDeep) {
  Counts C = runDifferential(/*Seed=*/0xDECAF, /*Iters=*/200, /*Depth=*/4);
  EXPECT_GT(C.Sat + C.Unsat, 150u);
}

TEST(SmtFuzzTest, DifferentialArrayHeavy) {
  // A third seed, biased deeper, to stress the array reduction paths.
  Counts C = runDifferential(/*Seed=*/0xBADF00D, /*Iters=*/100, /*Depth=*/5);
  EXPECT_GT(C.Sat + C.Unsat, 60u);
}

/// Solves every formula under two solver configurations and demands
/// verdict agreement (Unknown abstains — a budget artifact, not a
/// soundness statement). Sat models on both sides are still validated
/// against the formula. Returns the number of decided checks.
unsigned runConfigDifferential(uint32_t Seed, unsigned Iters, unsigned Depth,
                               const Solver::Options &OptsA,
                               const Solver::Options &OptsB) {
  std::mt19937 Rng(Seed);
  unsigned Decided = 0;
  for (unsigned I = 0; I < Iters; ++I) {
    TermManager TM;
    FormulaGen Gen(TM, Rng);
    TermRef F = Gen.boolFormula(Depth);

    Solver::Result RA = Solver(TM, OptsA).checkSat(F);
    Solver::Result RB = Solver(TM, OptsB).checkSat(F);
    bool Mismatch =
        (RA == Solver::Result::Sat && RB == Solver::Result::Unsat) ||
        (RA == Solver::Result::Unsat && RB == Solver::Result::Sat);
    EXPECT_FALSE(Mismatch)
        << "config A says " << (RA == Solver::Result::Sat ? "Sat" : "Unsat")
        << ", config B says "
        << (RB == Solver::Result::Sat ? "Sat" : "Unsat") << " (seed "
        << Seed << ", iter " << I << ")\n"
        << printTerm(F);
    if (RA != Solver::Result::Unknown && RB != Solver::Result::Unknown)
      ++Decided;
  }
  return Decided;
}

Solver::Options fuzzOpts() {
  Solver::Options Opts;
  Opts.MaxTheoryChecks = 20000;
  return Opts;
}

TEST(SmtFuzzTest, DeletionDifferential) {
  // Clause deletion stressed with a tiny reduceDB trigger (sweeps fire
  // on instances this small only because of it) against the
  // deletion-free baseline: learned-clause deletion must never flip a
  // verdict.
  Solver::Options Stressed = fuzzOpts();
  Stressed.ReduceDbLimit = 4;
  Solver::Options Baseline = fuzzOpts();
  Baseline.ClauseDeletion = false;
  unsigned Decided = runConfigDifferential(/*Seed=*/0xDE1E7E, /*Iters=*/250,
                                           /*Depth=*/4, Stressed, Baseline);
  EXPECT_GT(Decided, 150u);
}

TEST(SmtFuzzTest, EagerInstantiationDifferential) {
  // Blind quadratic array instantiation against the relevancy-driven
  // default — the two one-shot array strategies must agree.
  Solver::Options Eager = fuzzOpts();
  Eager.EagerArrayInstantiation = true;
  unsigned Decided = runConfigDifferential(/*Seed=*/0xEA6E4, /*Iters=*/150,
                                           /*Depth=*/5, Eager, fuzzOpts());
  EXPECT_GT(Decided, 90u);
}

TEST(SmtFuzzTest, TheoryPropDifferential) {
  // DPLL(T) theory propagation on vs off, both through the persistent
  // SolverContext (propagation only runs in persistent mode — one-shot
  // solves never take the partial-trail path). Propagation is an
  // optimization over the same theory stack: lazily explained reason
  // clauses, early conflicts and theory-aware branching must never flip
  // a verdict, and propagation-side Sat models must still satisfy the
  // formula.
  std::mt19937 Rng(0x7E09);
  unsigned Decided = 0, PropChecks = 0;
  for (unsigned I = 0; I < 200; ++I) {
    TermManager TM;
    FormulaGen Gen(TM, Rng);
    TermRef F = Gen.boolFormula(/*Depth=*/4);

    SolverOptions PropOpts;
    PropOpts.MaxTheoryChecks = 20000;
    SolverOptions NoPropOpts = PropOpts;
    NoPropOpts.TheoryPropagation = false;

    SolverContext Prop(TM, PropOpts);
    Prop.assertTerm(F);
    SolverResult RP = Prop.checkSat();
    PropChecks += Prop.lastCheckStats().TheoryPropagations != 0;

    SolverContext NoProp(TM, NoPropOpts);
    NoProp.assertTerm(F);
    SolverResult RN = NoProp.checkSat();

    bool Mismatch = (RP == SolverResult::Sat && RN == SolverResult::Unsat) ||
                    (RP == SolverResult::Unsat && RN == SolverResult::Sat);
    EXPECT_FALSE(Mismatch)
        << "theory propagation flipped the verdict: prop says "
        << (RP == SolverResult::Sat ? "Sat" : "Unsat") << ", baseline says "
        << (RN == SolverResult::Sat ? "Sat" : "Unsat") << " (iter " << I
        << ")\n"
        << printTerm(F);
    if (RP == SolverResult::Sat) {
      Value V = Prop.model().evaluate(F);
      EXPECT_TRUE(V.K == Value::Kind::Bool && V.B)
          << "propagating solver's Sat model refutes the formula (iter " << I
          << ")\n"
          << printTerm(F) << "\nmodel:\n"
          << Prop.model().toString();
    }
    if (RP != SolverResult::Unknown && RN != SolverResult::Unknown)
      ++Decided;
  }
  EXPECT_GT(Decided, 120u);
  // The corpus must actually trigger propagations, or the test is vacuous.
  // (Most random instances decide during BCP before any theory entailment
  // can fire; roughly 1 in 20 exercises the propagation path.)
  EXPECT_GT(PropChecks, 5u);
}

} // namespace
