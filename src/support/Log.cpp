//===- support/Log.cpp - Leveled stderr diagnostics -------------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "support/Log.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace ids;

namespace {

logging::Level resolveLevel() {
  const char *E = std::getenv("IDS_LOG");
  if (!E)
    return logging::Level::Info;
  if (std::strcmp(E, "debug") == 0)
    return logging::Level::Debug;
  if (std::strcmp(E, "off") == 0)
    return logging::Level::Off;
  // Unknown values fall back to the default rather than erroring:
  // diagnostics must never take down a verification run.
  return logging::Level::Info;
}

bool legacyDebug(const char *Subsys) {
  if (std::strcmp(Subsys, "pipe") == 0) {
    static const bool On = std::getenv("IDS_PIPE_DEBUG") != nullptr;
    return On;
  }
  if (std::strcmp(Subsys, "smt") == 0) {
    static const bool On = std::getenv("IDS_SMT_DEBUG") != nullptr;
    return On;
  }
  return false;
}

void vlogf(const char *Subsys, const char *Fmt, va_list Ap) {
  std::fprintf(stderr, "[%s] ", Subsys);
  std::vfprintf(stderr, Fmt, Ap);
}

} // namespace

logging::Level logging::level() {
  static const Level L = resolveLevel();
  return L;
}

bool logging::debugEnabled(const char *Subsys) {
  return level() == Level::Debug || legacyDebug(Subsys);
}

bool logging::infoEnabled() { return level() != Level::Off; }

void logging::debugf(const char *Subsys, const char *Fmt, ...) {
  if (!debugEnabled(Subsys))
    return;
  va_list Ap;
  va_start(Ap, Fmt);
  vlogf(Subsys, Fmt, Ap);
  va_end(Ap);
}

void logging::infof(const char *Subsys, const char *Fmt, ...) {
  if (!infoEnabled())
    return;
  va_list Ap;
  va_start(Ap, Fmt);
  vlogf(Subsys, Fmt, Ap);
  va_end(Ap);
}
