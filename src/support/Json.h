//===- support/Json.h - Minimal JSON value, parser, writer -----*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dependency-free JSON layer for the serve-mode line protocol:
/// an ordered-member document value, a recursive-descent parser with a
/// depth cap (a malformed or hostile request must produce an error
/// response, never take the daemon down), and a compact serializer whose
/// member order is insertion order — responses are built name-first so
/// process-level tests can match `"name":"x","status":"y"` textually.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SUPPORT_JSON_H
#define IDS_SUPPORT_JSON_H

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ids {
namespace json {

class Value {
public:
  enum class Kind { Null, Bool, Number, String, Object, Array };

  Value() : K(Kind::Null) {}
  static Value null() { return Value(); }
  static Value boolean(bool B) {
    Value V;
    V.K = Kind::Bool;
    V.B = B;
    return V;
  }
  static Value number(double N) {
    Value V;
    V.K = Kind::Number;
    V.Num = N;
    return V;
  }
  static Value string(std::string S) {
    Value V;
    V.K = Kind::String;
    V.Str = std::move(S);
    return V;
  }
  static Value object() {
    Value V;
    V.K = Kind::Object;
    return V;
  }
  static Value array() {
    Value V;
    V.K = Kind::Array;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }

  bool asBool() const { return B; }
  double asNumber() const { return Num; }
  const std::string &asString() const { return Str; }

  /// Object member by key; nullptr when absent or not an object.
  const Value *get(const std::string &Key) const;
  /// Appends/overwrites an object member (insertion order preserved).
  void set(const std::string &Key, Value V);
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Members;
  }

  void push(Value V) { Elems.push_back(std::move(V)); }
  const std::vector<Value> &elements() const { return Elems; }

  /// Compact single-line serialization (never emits raw newlines: all
  /// control characters are escaped, so one value is one protocol line).
  std::string serialize() const;

  /// Parses \p Text as a single JSON document. On failure returns a Null
  /// value and sets \p Error to a position-annotated message; trailing
  /// non-whitespace after the document is an error too.
  static Value parse(const std::string &Text, std::string &Error);

private:
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<std::pair<std::string, Value>> Members;
  std::vector<Value> Elems;
};

} // namespace json
} // namespace ids

#endif // IDS_SUPPORT_JSON_H
