//===- smt/TermPrinter.h - SMT-LIB style term printing ---------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders terms as SMT-LIB-flavoured s-expressions. Used for debugging,
/// golden tests and the generated-VC artifact dump (the paper cross-checks
/// the SMT files it emits; `ids-verify --dump-vc` offers the same).
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SMT_TERMPRINTER_H
#define IDS_SMT_TERMPRINTER_H

#include "smt/Term.h"

#include <string>

namespace ids {
namespace smt {

/// Renders \p T as an s-expression.
std::string printTerm(TermRef T);

/// Renders a whole satisfiability query: sort/const declarations followed
/// by an `(assert ...)` of \p T.
std::string printQuery(TermRef T);

} // namespace smt
} // namespace ids

#endif // IDS_SMT_TERMPRINTER_H
