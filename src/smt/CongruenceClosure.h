//===- smt/CongruenceClosure.h - EUF congruence closure --------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Congruence closure over the term DAG with conflict explanations
/// (Nieuwenhuis-Oliveras proof forest). This is the EUF half of the theory
/// stack: after the eager array reduction, VC reasoning needs exactly
/// congruence of `select`/`Apply` applications, equality/disequality
/// bookkeeping, and clash detection between distinct interpreted values
/// (numerals, true/false) that arithmetic merges into classes.
///
/// Every assertion carries an integer tag; conflicts and equality
/// explanations are reported as sets of tags, which the SMT driver maps
/// back to literals (or to composite theory-propagation reasons).
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SMT_CONGRUENCECLOSURE_H
#define IDS_SMT_CONGRUENCECLOSURE_H

#include "smt/Term.h"

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

namespace ids {
namespace smt {

/// Congruence closure with explanations and a trail-based undo stack:
/// push() opens a backtracking level, pop() undoes every registration,
/// merge, disequality, signature entry and path compression performed
/// above it (Failed state included). The persistent theory engine uses
/// one level per synced SAT-trail literal so consecutive theory checks
/// only re-assert the diverging suffix of the assignment instead of
/// rebuilding the closure from scratch.
class CongruenceClosure {
public:
  explicit CongruenceClosure(TermManager &TM) : TM(TM) {}

  /// Opens an undo level.
  void push();
  /// Undoes everything since the matching push (including a conflict
  /// entered above it).
  void pop();
  unsigned numLevels() const { return static_cast<unsigned>(Levels.size()); }

  /// Registers \p T and all subterms. Idempotent.
  void registerTerm(TermRef T);

  /// Asserts T1 == T2 under explanation tag \p Tag. Returns false on
  /// conflict (query conflictTags() for the explanation).
  bool assertEqual(TermRef T1, TermRef T2, int Tag);

  /// Asserts T1 != T2 under \p Tag. Returns false on conflict.
  bool assertDisequal(TermRef T1, TermRef T2, int Tag);

  bool inConflict() const { return Failed; }
  const std::vector<int> &conflictTags() const { return ConflictTags; }

  /// True when \p T has been registered (directly or as a subterm).
  bool isRegistered(TermRef T) const { return Ids.count(T) != 0; }

  /// True when both terms are registered and currently in the same class,
  /// or are the identical term.
  bool areEqual(TermRef T1, TermRef T2);
  /// True when the classes of the two terms are known distinct (asserted
  /// disequal or hold distinct interpreted values).
  bool areDisequal(TermRef T1, TermRef T2);

  /// Explanation (set of tags) for an equality that currently holds.
  void explainEquality(TermRef T1, TermRef T2, std::set<int> &TagsOut);

  /// Representative term of T's class (for model construction).
  TermRef representative(TermRef T);

  /// All registered terms, for model enumeration.
  const std::vector<TermRef> &terms() const { return NodeTerms; }

private:
  int getId(TermRef T);
  int findRoot(int Node);
  bool mergeRoots(int A, int B);
  bool processPending();
  void explainPath(int A, int B, std::set<int> &TagsOut,
                   std::set<std::pair<int, int>> &SeenPairs);
  void explainPair(int A, int B, std::set<int> &TagsOut,
                   std::set<std::pair<int, int>> &SeenPairs);
  int proofAncestorDepth(int Node);
  bool checkDiseqsAndValues(int NewRoot);
  std::vector<int> signatureOf(int Node);

  struct Reason {
    // Tag >= 0: input assertion; Tag == -1: congruence of (CongA, CongB).
    int Tag = -1;
    int CongA = -1;
    int CongB = -1;
  };

  /// One undoable mutation. Entries are replayed in reverse on pop().
  struct TrailEntry {
    enum Kind : uint8_t {
      Register, ///< node A was created
      UseListPush, ///< a parent was pushed onto UseLists[A]
      SigInsert,   ///< SigIdx names the inserted key (in SigKeys)
      Merge,       ///< class of root A absorbed into root B; C is the
                   ///< proof child, D its former proof root, E the former
                   ///< ValueNode[B], F the number of use-list entries moved
      Diseq,       ///< a disequality was appended
      Compress,    ///< UnionParent[A] changed from B (path compression)
    };
    Kind K;
    int A = -1, B = -1, C = -1, D = -1, E = -1, F = 0;
  };
  struct LevelMark {
    size_t TrailSize;
    size_t SigKeysSize;
    bool Failed;
    std::vector<int> ConflictTags;
  };

  void undoTo(size_t TrailSize);
  void rerootProofTree(int NewRoot);

  TermManager &TM;
  std::unordered_map<TermRef, int> Ids;
  std::vector<TermRef> NodeTerms;
  std::vector<int> UnionParent;   // union-find with path compression
  std::vector<int> ClassSize;
  std::vector<int> ProofParent;   // explanation forest (no compression)
  std::vector<Reason> ProofReason;
  std::vector<std::vector<int>> UseLists; // parents per root
  std::vector<int> ValueNode;     // interpreted value in class, or -1
  std::map<std::vector<int>, int> SigTable;
  std::vector<std::tuple<int, int, int>> Diseqs; // (a, b, tag)
  std::vector<std::tuple<int, int, Reason>> Pending;
  Reason StagedReason; // reason of the merge currently being applied

  std::vector<TrailEntry> Trail;
  /// Keys of signature-table insertions, referenced by SigInsert entries
  /// (kept separately so TrailEntry stays POD-sized).
  std::vector<std::vector<int>> SigKeys;
  std::vector<LevelMark> Levels;

  bool Failed = false;
  std::vector<int> ConflictTags;
};

} // namespace smt
} // namespace ids

#endif // IDS_SMT_CONGRUENCECLOSURE_H
