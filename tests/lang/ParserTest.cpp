//===- tests/lang/ParserTest.cpp - Parser tests ----------------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace ids;
using namespace ids::lang;

namespace {
const char *MiniStructure = R"(
structure S {
  field next: Loc;
  field key: int;
  ghost field prev: Loc;
  ghost field keys: set<int>;
  local l (x) { (x.next != nil ==> x.next.prev == x) }
  correlation (y) { y.prev == nil }
  impact next [l] { x, old(x.next) }
  impact prev [l] requires x != nil { x, old(x.prev) }
}
)";

std::unique_ptr<Module> parseOk(const std::string &S) {
  DiagEngine Diags;
  auto M = parseModule(S, Diags);
  EXPECT_TRUE(M != nullptr) << Diags.toString();
  return M;
}
} // namespace

TEST(ParserTest, StructureMembers) {
  auto M = parseOk(MiniStructure);
  const StructureDecl &S = M->Structure;
  EXPECT_EQ(S.Name, "S");
  ASSERT_EQ(S.Fields.size(), 4u);
  EXPECT_FALSE(S.Fields[0].IsGhost);
  EXPECT_TRUE(S.Fields[2].IsGhost);
  EXPECT_EQ(S.Fields[3].Ty, Type::setTy(TypeKind::Int));
  ASSERT_EQ(S.Locals.size(), 1u);
  EXPECT_EQ(S.Locals[0].Name, "l");
  EXPECT_EQ(S.Locals[0].Param, "x");
  ASSERT_EQ(S.Impacts.size(), 2u);
  EXPECT_EQ(S.Impacts[0].Field, "next");
  EXPECT_EQ(S.Impacts[0].Terms.size(), 2u);
  EXPECT_EQ(S.Impacts[1].Precondition != nullptr, true);
}

TEST(ParserTest, ProcedureWithContracts) {
  auto M = parseOk(std::string(MiniStructure) + R"(
procedure p(a: Loc, ghost g: int) returns (r: Loc)
  requires a != nil
  ensures r == a
  modifies {a}
{
  r := a;
  return;
}
)");
  ASSERT_EQ(M->Procs.size(), 1u);
  const ProcDecl &P = M->Procs[0];
  EXPECT_EQ(P.Params.size(), 2u);
  EXPECT_TRUE(P.Params[1].IsGhost);
  EXPECT_EQ(P.Requires.size(), 1u);
  EXPECT_EQ(P.Ensures.size(), 1u);
  EXPECT_EQ(P.Modifies.size(), 1u);
  EXPECT_EQ(P.Body->Body.size(), 2u);
}

TEST(ParserTest, StatementsAndMacros) {
  auto M = parseOk(std::string(MiniStructure) + R"(
procedure p(a: Loc) returns (r: Loc)
{
  var z: Loc;
  NewObj(z);
  Mut(z.next, a);
  InferLCOutsideBr(l, a);
  AssertLCAndRemove(l, z);
  if (a == nil) { r := z; } else { r := a; }
  while (r != nil)
    invariant true
    decreases 0
  { r := r.next; }
  ghost { var g: int := 3; }
  call r := p(r);
}
)");
  const ProcDecl &P = M->Procs[0];
  ASSERT_GE(P.Body->Body.size(), 9u);
  EXPECT_EQ(P.Body->Body[1]->Kind, StmtKind::NewObj);
  EXPECT_EQ(P.Body->Body[2]->Kind, StmtKind::Mut);
  EXPECT_EQ(P.Body->Body[3]->Kind, StmtKind::InferLc);
  EXPECT_EQ(P.Body->Body[4]->Kind, StmtKind::AssertLcRemove);
  EXPECT_EQ(P.Body->Body[5]->Kind, StmtKind::If);
  EXPECT_EQ(P.Body->Body[6]->Kind, StmtKind::While);
  EXPECT_EQ(P.Body->Body[6]->Invariants.size(), 1u);
  EXPECT_NE(P.Body->Body[6]->Decreases, nullptr);
  EXPECT_EQ(P.Body->Body[7]->Kind, StmtKind::GhostBlock);
  EXPECT_EQ(P.Body->Body[8]->Kind, StmtKind::Call);
}

TEST(ParserTest, ExpressionPrecedence) {
  auto M = parseOk(std::string(MiniStructure) + R"(
procedure p(a: int, b: int) returns (r: bool)
{
  r := a + 2 * b <= a || a == b && true;
}
)");
  // (a + (2*b) <= a) || ((a == b) && true): top is Or.
  const Stmt *S = M->Procs[0].Body->Body[0];
  ASSERT_EQ(S->Init->Kind, ExprKind::Binary);
  EXPECT_EQ(S->Init->BOp, BinOp::Or);
  EXPECT_EQ(S->Init->arg(0)->BOp, BinOp::Le);
  EXPECT_EQ(S->Init->arg(1)->BOp, BinOp::And);
}

TEST(ParserTest, ImpliesRightAssociative) {
  auto M = parseOk(std::string(MiniStructure) + R"(
procedure p(a: bool, b: bool, c: bool) returns (r: bool)
{
  r := a ==> b ==> c;
}
)");
  const Expr *E = M->Procs[0].Body->Body[0]->Init;
  EXPECT_EQ(E->BOp, BinOp::Implies);
  EXPECT_EQ(E->arg(1)->BOp, BinOp::Implies);
}

TEST(ParserTest, SetLiteralsAndDuplus) {
  auto M = parseOk(std::string(MiniStructure) + R"(
procedure p(a: Loc) returns (r: bool)
{
  assert a.keys == {1, 2} union ({} union {3});
  assert a.keys == {1} duplus {2};
}
)");
  EXPECT_EQ(M->Procs[0].Body->Body.size(), 2u);
}

TEST(ParserTest, ErrorRecoveryReportsLocation) {
  DiagEngine Diags;
  auto M = parseModule("structure S { field x }", Diags);
  EXPECT_EQ(M, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics()[0].Loc.isValid());
}

TEST(ParserTest, MultiGroupImpactDesugars) {
  // `impact f [g1, g2] { ... }` declares one impact set per listed group,
  // sharing the terms (overlaid structures whose groups read one field).
  auto M = parseOk(R"(
structure S {
  field next: Loc;
  field key: int;
  ghost field prev: Loc;
  local a (x) { x.key >= 0 }
  local b (x) { x.next != nil ==> x.key <= x.next.key }
  impact key [a, b] { x, x.prev }
  impact next [b] { x, old(x.next) }
}
)");
  const StructureDecl &S = M->Structure;
  ASSERT_EQ(S.Impacts.size(), 3u);
  EXPECT_EQ(S.Impacts[0].Field, "key");
  EXPECT_EQ(S.Impacts[0].Group, "a");
  EXPECT_EQ(S.Impacts[1].Field, "key");
  EXPECT_EQ(S.Impacts[1].Group, "b");
  ASSERT_EQ(S.Impacts[0].Terms.size(), 2u);
  ASSERT_EQ(S.Impacts[1].Terms.size(), 2u);
  EXPECT_EQ(S.Impacts[0].Terms[0], S.Impacts[1].Terms[0]);
  EXPECT_EQ(S.Impacts[2].Field, "next");
  EXPECT_EQ(S.Impacts[2].Group, "b");
}

TEST(ParserTest, EmptyImpactGroupListRejected) {
  DiagEngine Diags;
  auto M = parseModule(R"(
structure S {
  field key: int;
  local a (x) { x.key >= 0 }
  impact key [] { x }
}
)",
                       Diags);
  EXPECT_EQ(M, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}
