//===- tests/smt/SolverTest.cpp - End-to-end SMT solver tests --------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#include <gtest/gtest.h>

#include <random>

using namespace ids;
using namespace ids::smt;

namespace {
class SolverTest : public ::testing::Test {
protected:
  TermManager TM;

  Solver::Result check(TermRef F) {
    Solver S(TM);
    LastModelText.clear();
    Solver::Result R = S.checkSat(F);
    if (R == Solver::Result::Sat)
      LastModelText = S.model().toString();
    return R;
  }

  /// Checks that F is valid by refuting its negation.
  void expectValid(TermRef F) {
    EXPECT_EQ(check(TM.mkNot(F)), Solver::Result::Unsat)
        << "not valid; counterexample:\n" << LastModelText;
  }
  void expectSat(TermRef F) { EXPECT_EQ(check(F), Solver::Result::Sat); }
  void expectUnsat(TermRef F) { EXPECT_EQ(check(F), Solver::Result::Unsat); }

  std::string LastModelText;
};
} // namespace

TEST_F(SolverTest, PropositionalBasics) {
  TermRef P = TM.mkVar("p", TM.boolSort());
  TermRef Q = TM.mkVar("q", TM.boolSort());
  expectSat(TM.mkAnd(P, TM.mkNot(Q)));
  expectUnsat(TM.mkAnd(P, TM.mkNot(P)));
  expectValid(TM.mkOr(P, TM.mkNot(P)));
  // Pierce's law ((p -> q) -> p) -> p
  expectValid(
      TM.mkImplies(TM.mkImplies(TM.mkImplies(P, Q), P), P));
}

TEST_F(SolverTest, EufBasics) {
  TermRef X = TM.mkVar("x", TM.locSort());
  TermRef Y = TM.mkVar("y", TM.locSort());
  const FuncDecl *F = TM.getFuncDecl("f", {TM.locSort()}, TM.locSort());
  TermRef FX = TM.mkApply(F, {X});
  TermRef FY = TM.mkApply(F, {Y});
  // x = y => f(x) = f(y)
  expectValid(TM.mkImplies(TM.mkEq(X, Y), TM.mkEq(FX, FY)));
  // f(x) != f(y) => x != y
  expectValid(
      TM.mkImplies(TM.mkDistinct(FX, FY), TM.mkDistinct(X, Y)));
  // x = y && f(x) != f(y) unsat
  expectUnsat(TM.mkAnd(TM.mkEq(X, Y), TM.mkDistinct(FX, FY)));
  // f(f(x)) = x && f(x) = x => nothing wrong
  expectSat(TM.mkAnd(TM.mkEq(TM.mkApply(F, {FX}), X), TM.mkEq(FX, X)));
}

TEST_F(SolverTest, ArithBasics) {
  TermRef X = TM.mkVar("xi", TM.intSort());
  TermRef Y = TM.mkVar("yi", TM.intSort());
  // x < y => x + 1 <= y (integers)
  expectValid(TM.mkImplies(TM.mkLt(X, Y),
                           TM.mkLe(TM.mkAdd(X, TM.mkIntConst(1)), Y)));
  // x < y && y < x unsat
  expectUnsat(TM.mkAnd(TM.mkLt(X, Y), TM.mkLt(Y, X)));
  // Over rationals the integer tightening must NOT hold.
  TermRef A = TM.mkVar("ar", TM.ratSort());
  TermRef B = TM.mkVar("br", TM.ratSort());
  expectSat(TM.mkAnd(TM.mkLt(A, B),
                     TM.mkLt(B, TM.mkAdd(A, TM.mkRatConst(Rational(1))))));
}

TEST_F(SolverTest, EufArithCombination) {
  // The Nelson-Oppen classic: x <= y && y <= x && f(x) != f(y) is unsat —
  // requires propagating the arithmetic-implied equality into EUF.
  TermRef X = TM.mkVar("xc", TM.intSort());
  TermRef Y = TM.mkVar("yc", TM.intSort());
  const FuncDecl *F = TM.getFuncDecl("g", {TM.intSort()}, TM.locSort());
  TermRef FX = TM.mkApply(F, {X});
  TermRef FY = TM.mkApply(F, {Y});
  expectUnsat(TM.mkAnd({TM.mkLe(X, Y), TM.mkLe(Y, X),
                        TM.mkDistinct(FX, FY)}));
  // And the EUF-implied equality must reach arithmetic: x = y && x < y.
  expectUnsat(TM.mkAnd(TM.mkEq(X, Y), TM.mkLt(X, Y)));
  // f(x)=a && f(y)=b && x=y && a != b unsat (euf->euf via congruence)
  TermRef AL = TM.mkVar("al", TM.locSort());
  TermRef BL = TM.mkVar("bl", TM.locSort());
  expectUnsat(TM.mkAnd({TM.mkEq(FX, AL), TM.mkEq(FY, BL), TM.mkEq(X, Y),
                        TM.mkDistinct(AL, BL)}));
}

TEST_F(SolverTest, ArrayReadOverWrite) {
  const Sort *ArrS = TM.getArraySort(TM.locSort(), TM.intSort());
  TermRef M = TM.mkVar("M", ArrS);
  TermRef X = TM.mkVar("x", TM.locSort());
  TermRef Y = TM.mkVar("y", TM.locSort());
  TermRef V = TM.mkVar("v", TM.intSort());
  TermRef St = TM.mkStore(M, X, V);
  // select(store(M,x,v), y) == (y==x ? v : select(M,y)) — both directions.
  expectValid(TM.mkImplies(TM.mkEq(Y, X), TM.mkEq(TM.mkSelect(St, Y), V)));
  expectValid(TM.mkImplies(TM.mkDistinct(Y, X),
                           TM.mkEq(TM.mkSelect(St, Y), TM.mkSelect(M, Y))));
  // A wrong claim must have a countermodel.
  expectSat(TM.mkNot(TM.mkEq(TM.mkSelect(St, Y), TM.mkSelect(M, Y))));
}

TEST_F(SolverTest, ArrayExtensionality) {
  const Sort *ArrS = TM.getArraySort(TM.locSort(), TM.intSort());
  TermRef A = TM.mkVar("A", ArrS);
  TermRef B = TM.mkVar("B", ArrS);
  TermRef X = TM.mkVar("x", TM.locSort());
  // A = B => A[x] = B[x]
  expectValid(TM.mkImplies(TM.mkEq(A, B),
                           TM.mkEq(TM.mkSelect(A, X), TM.mkSelect(B, X))));
  // store(A, x, A[x]) == A
  expectValid(TM.mkEq(TM.mkStore(A, X, TM.mkSelect(A, X)), A));
  // stores on distinct indices commute
  TermRef Y = TM.mkVar("y", TM.locSort());
  TermRef V1 = TM.mkIntConst(1), V2 = TM.mkIntConst(2);
  expectValid(TM.mkImplies(
      TM.mkDistinct(X, Y),
      TM.mkEq(TM.mkStore(TM.mkStore(A, X, V1), Y, V2),
              TM.mkStore(TM.mkStore(A, Y, V2), X, V1))));
  // ... but not on equal indices with different values.
  expectSat(TM.mkNot(
      TM.mkEq(TM.mkStore(TM.mkStore(A, X, V1), Y, V2),
              TM.mkStore(TM.mkStore(A, Y, V2), X, V1))));
}

TEST_F(SolverTest, SetAlgebra) {
  TermRef S1 = TM.mkVar("S1", TM.getArraySort(TM.locSort(), TM.boolSort()));
  TermRef S2 = TM.mkVar("S2", TM.getArraySort(TM.locSort(), TM.boolSort()));
  TermRef X = TM.mkVar("x", TM.locSort());
  // x in S1 => x in S1 union S2
  expectValid(TM.mkImplies(TM.mkMember(X, S1),
                           TM.mkMember(X, TM.mkSetUnion(S1, S2))));
  // x in S1 \ S2 => !(x in S2)
  expectValid(TM.mkImplies(TM.mkMember(X, TM.mkSetMinus(S1, S2)),
                           TM.mkNot(TM.mkMember(X, S2))));
  // union is commutative (extensional equality)
  expectValid(TM.mkEq(TM.mkSetUnion(S1, S2), TM.mkSetUnion(S2, S1)));
  // S1 subset S2 && x in S1 => x in S2
  expectValid(TM.mkImplies(TM.mkAnd(TM.mkSubset(S1, S2), TM.mkMember(X, S1)),
                           TM.mkMember(X, S2)));
  // disjoint(S1,S2) && x in S1 => !(x in S2)
  expectValid(TM.mkImplies(
      TM.mkAnd(TM.mkDisjoint(S1, S2), TM.mkMember(X, S1)),
      TM.mkNot(TM.mkMember(X, S2))));
  // insert then member
  expectValid(TM.mkMember(X, TM.mkSetInsert(S1, X)));
  // remove then not member
  expectValid(TM.mkNot(TM.mkMember(X, TM.mkSetRemove(S1, X))));
  // {x} disjoint S && S1 = {x} duplus S is like the paper's heaplets:
  // x must not be in S.
  TermRef Single = TM.mkSingleton(X);
  expectValid(TM.mkImplies(
      TM.mkAnd(TM.mkEq(S1, TM.mkSetUnion(Single, S2)),
               TM.mkDisjoint(Single, S2)),
      TM.mkNot(TM.mkMember(X, S2))));
}

TEST_F(SolverTest, ParameterizedMapUpdate) {
  // The paper's frame rule: M' = pwIte(Mod, H, M) leaves M'[o] == M[o]
  // for o outside Mod (Appendix A.3).
  const Sort *ArrS = TM.getArraySort(TM.locSort(), TM.intSort());
  const Sort *SetS = TM.getArraySort(TM.locSort(), TM.boolSort());
  TermRef M = TM.mkVar("Mf", ArrS);
  TermRef H = TM.mkVar("Hf", ArrS);
  TermRef Mod = TM.mkVar("Mod", SetS);
  TermRef O = TM.mkVar("o", TM.locSort());
  TermRef Updated = TM.mkPwIte(Mod, H, M);
  expectValid(TM.mkImplies(
      TM.mkNot(TM.mkMember(O, Mod)),
      TM.mkEq(TM.mkSelect(Updated, O), TM.mkSelect(M, O))));
  expectValid(TM.mkImplies(
      TM.mkMember(O, Mod),
      TM.mkEq(TM.mkSelect(Updated, O), TM.mkSelect(H, O))));
  // And inside Mod the value may genuinely change.
  expectSat(TM.mkAnd(
      TM.mkMember(O, Mod),
      TM.mkNot(TM.mkEq(TM.mkSelect(Updated, O), TM.mkSelect(M, O)))));
}

TEST_F(SolverTest, NestedSetValuedMaps) {
  // keys : Loc -> Set(Int), the shape of the paper's monadic keys map.
  const Sort *SetInt = TM.getArraySort(TM.intSort(), TM.boolSort());
  const Sort *KeysS = TM.getArraySort(TM.locSort(), SetInt);
  TermRef Keys = TM.mkVar("keys", KeysS);
  TermRef X = TM.mkVar("x", TM.locSort());
  TermRef Y = TM.mkVar("y", TM.locSort());
  TermRef K = TM.mkVar("k", TM.intSort());
  // keys(x) = {k} union keys(y) => k in keys(x)
  TermRef KX = TM.mkSelect(Keys, X);
  TermRef KY = TM.mkSelect(Keys, Y);
  expectValid(TM.mkImplies(
      TM.mkEq(KX, TM.mkSetUnion(TM.mkSingleton(K), KY)),
      TM.mkMember(K, KX)));
  // ... and members of keys(y) stay members of keys(x).
  TermRef J = TM.mkVar("j", TM.intSort());
  expectValid(TM.mkImplies(
      TM.mkAnd(TM.mkEq(KX, TM.mkSetUnion(TM.mkSingleton(K), KY)),
               TM.mkMember(J, KY)),
      TM.mkMember(J, KX)));
}

TEST_F(SolverTest, ModelEvaluationOnSat) {
  // On Sat the reported model must satisfy the formula (safety net is
  // internal, but double-check through the public API).
  TermRef X = TM.mkVar("x", TM.intSort());
  TermRef Y = TM.mkVar("y", TM.intSort());
  TermRef F = TM.mkAnd({TM.mkLt(X, Y), TM.mkLt(Y, TM.mkIntConst(10)),
                        TM.mkLt(TM.mkIntConst(5), X)});
  Solver S(TM);
  ASSERT_EQ(S.checkSat(F), Solver::Result::Sat);
  Value V = S.model().eval(F);
  EXPECT_TRUE(V.B);
}

TEST_F(SolverTest, RankMidpointPattern) {
  // rank(z) = (rank(x)+rank(y))/2 && rank(x) < rank(y)
  //   => rank(x) < rank(z) < rank(y): the sorted-list insert repair.
  const Sort *RankS = TM.getArraySort(TM.locSort(), TM.ratSort());
  TermRef Rank = TM.mkVar("rank", RankS);
  TermRef X = TM.mkVar("x", TM.locSort());
  TermRef Y = TM.mkVar("y", TM.locSort());
  TermRef Z = TM.mkVar("z", TM.locSort());
  TermRef RX = TM.mkSelect(Rank, X);
  TermRef RY = TM.mkSelect(Rank, Y);
  TermRef RZ = TM.mkSelect(Rank, Z);
  TermRef Mid = TM.mkMulConst(Rational(1, 2), TM.mkAdd(RX, RY));
  expectValid(TM.mkImplies(
      TM.mkAnd(TM.mkEq(RZ, Mid), TM.mkLt(RX, RY)),
      TM.mkAnd(TM.mkLt(RX, RZ), TM.mkLt(RZ, RY))));
}

TEST_F(SolverTest, QuantifiedModeFrameAxiom) {
  // The RQ3 "Dafny-style" frame axiom with an explicit quantifier:
  // (forall o. o notin Mod => M'[o] = M[o]) && x notin Mod
  //    => M'[x] = M[x]
  Solver::Options Opts;
  Opts.AllowQuantifiers = true;
  const Sort *ArrS = TM.getArraySort(TM.locSort(), TM.intSort());
  const Sort *SetS = TM.getArraySort(TM.locSort(), TM.boolSort());
  TermRef M = TM.mkVar("Mq", ArrS);
  TermRef M2 = TM.mkVar("M2q", ArrS);
  TermRef Mod = TM.mkVar("Modq", SetS);
  TermRef X = TM.mkVar("xq", TM.locSort());
  TermRef O = TM.mkVar("oq", TM.locSort());
  TermRef Frame = TM.mkForall(
      {O}, TM.mkImplies(TM.mkNot(TM.mkMember(O, Mod)),
                        TM.mkEq(TM.mkSelect(M2, O), TM.mkSelect(M, O))));
  TermRef Claim = TM.mkImplies(
      TM.mkAnd(Frame, TM.mkNot(TM.mkMember(X, Mod))),
      TM.mkEq(TM.mkSelect(M2, X), TM.mkSelect(M, X)));
  Solver S(TM, Opts);
  EXPECT_EQ(S.checkSat(TM.mkNot(Claim)), Solver::Result::Unsat);
}

TEST_F(SolverTest, QuantifiedModeIncompleteSatIsUnknown) {
  Solver::Options Opts;
  Opts.AllowQuantifiers = true;
  TermRef O = TM.mkVar("ou", TM.locSort());
  TermRef X = TM.mkVar("xu", TM.locSort());
  // forall o. o = x — satisfiable (singleton domain); instantiation cannot
  // conclude, so the answer must be Unknown, never a wrong Unsat.
  TermRef F = TM.mkForall({O}, TM.mkEq(O, X));
  Solver S(TM, Opts);
  EXPECT_EQ(S.checkSat(F), Solver::Result::Unknown);
}

/// Property test: random formulas over bounded integer variables agree
/// with a brute-force enumerator. Sat answers must also evaluate true.
TEST_F(SolverTest, PropertyRandomBoundedIntFormulas) {
  std::mt19937 Rng(777);
  for (int Iter = 0; Iter < 60; ++Iter) {
    const int NumVars = 3;
    const int64_t Lo = -2, Hi = 2;
    std::vector<TermRef> Vars;
    for (int I = 0; I < NumVars; ++I)
      Vars.push_back(TM.mkVar("pv" + std::to_string(Iter) + "_" +
                                  std::to_string(I),
                              TM.intSort()));
    // Random conjunction/disjunction tree of comparison atoms.
    std::function<TermRef(int)> Gen = [&](int Depth) -> TermRef {
      if (Depth == 0 || Rng() % 3 == 0) {
        TermRef A = Vars[Rng() % NumVars];
        TermRef B = Rng() % 2 ? Vars[Rng() % NumVars]
                              : TM.mkIntConst(static_cast<int64_t>(
                                    Rng() % 5) - 2);
        switch (Rng() % 3) {
        case 0:
          return TM.mkLe(A, B);
        case 1:
          return TM.mkLt(A, B);
        default:
          return TM.mkEq(A, B);
        }
      }
      TermRef L = Gen(Depth - 1), R = Gen(Depth - 1);
      switch (Rng() % 3) {
      case 0:
        return TM.mkAnd(L, R);
      case 1:
        return TM.mkOr(L, R);
      default:
        return TM.mkNot(L);
      }
    };
    TermRef F = Gen(3);
    // Bound the variables so brute force is exact.
    std::vector<TermRef> Conj = {F};
    for (TermRef V : Vars) {
      Conj.push_back(TM.mkLe(TM.mkIntConst(Lo), V));
      Conj.push_back(TM.mkLe(V, TM.mkIntConst(Hi)));
    }
    TermRef Bounded = TM.mkAnd(Conj);

    // Brute force.
    bool Expected = false;
    for (int64_t A = Lo; A <= Hi && !Expected; ++A)
      for (int64_t B = Lo; B <= Hi && !Expected; ++B)
        for (int64_t C = Lo; C <= Hi && !Expected; ++C) {
          Model M;
          M.set(Vars[0], Value::ofInt(BigInt(A)));
          M.set(Vars[1], Value::ofInt(BigInt(B)));
          M.set(Vars[2], Value::ofInt(BigInt(C)));
          Expected = M.eval(Bounded).B;
        }
    Solver S(TM);
    Solver::Result R = S.checkSat(Bounded);
    EXPECT_EQ(R == Solver::Result::Sat, Expected) << "iter " << Iter;
    if (R == Solver::Result::Sat)
      EXPECT_TRUE(S.model().eval(Bounded).B);
  }
}
