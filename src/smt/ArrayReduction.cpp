//===- smt/ArrayReduction.cpp - Eager array-theory reduction --------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "smt/ArrayReduction.h"

#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

using namespace ids;
using namespace ids::smt;

namespace {
/// Ite-lifting rewriter.
class IteLifter {
public:
  explicit IteLifter(TermManager &TM) : TM(TM) {}

  TermRef run(TermRef F) {
    TermRef Core = visit(F);
    if (Defs.empty())
      return Core;
    Defs.push_back(Core);
    return TM.mkAnd(std::move(Defs));
  }

private:
  TermRef visit(TermRef T) {
    auto It = Cache.find(T);
    if (It != Cache.end())
      return It->second;
    TermRef Result = compute(T);
    Cache.emplace(T, Result);
    return Result;
  }

  TermRef compute(TermRef T) {
    if (T->getArgs().empty())
      return T;
    std::vector<TermRef> NewArgs;
    NewArgs.reserve(T->getNumArgs());
    for (TermRef A : T->getArgs())
      NewArgs.push_back(visit(A));
    TermRef Rebuilt = rebuild(T, NewArgs);
    if (Rebuilt->getKind() == TermKind::Ite &&
        !Rebuilt->getSort()->isBool()) {
      TermRef V = TM.mkFreshVar("ite", Rebuilt->getSort());
      Defs.push_back(TM.mkImplies(Rebuilt->getArg(0),
                                  TM.mkEq(V, Rebuilt->getArg(1))));
      Defs.push_back(TM.mkImplies(TM.mkNot(Rebuilt->getArg(0)),
                                  TM.mkEq(V, Rebuilt->getArg(2))));
      return V;
    }
    return Rebuilt;
  }

  TermRef rebuild(TermRef T, std::vector<TermRef> &NewArgs) {
    switch (T->getKind()) {
    case TermKind::Not:
      return TM.mkNot(NewArgs[0]);
    case TermKind::And:
      return TM.mkAnd(std::move(NewArgs));
    case TermKind::Or:
      return TM.mkOr(std::move(NewArgs));
    case TermKind::Ite:
      return TM.mkIte(NewArgs[0], NewArgs[1], NewArgs[2]);
    case TermKind::Eq:
      return TM.mkEq(NewArgs[0], NewArgs[1]);
    case TermKind::Add:
      return TM.mkAdd(std::move(NewArgs));
    case TermKind::Mul:
      return TM.mkMulConst(NewArgs[0]->getKind() == TermKind::IntConst
                               ? Rational(NewArgs[0]->getIntValue())
                               : NewArgs[0]->getRatValue(),
                           NewArgs[1]);
    case TermKind::Le:
      return TM.mkLe(NewArgs[0], NewArgs[1]);
    case TermKind::Lt:
      return TM.mkLt(NewArgs[0], NewArgs[1]);
    case TermKind::Select:
      return TM.mkSelect(NewArgs[0], NewArgs[1]);
    case TermKind::Store:
      return TM.mkStore(NewArgs[0], NewArgs[1], NewArgs[2]);
    case TermKind::ConstArray:
      return TM.mkConstArray(T->getSort(), NewArgs[0]);
    case TermKind::MapOr:
      return TM.mkMapOr(NewArgs[0], NewArgs[1]);
    case TermKind::MapAnd:
      return TM.mkMapAnd(NewArgs[0], NewArgs[1]);
    case TermKind::MapDiff:
      return TM.mkMapDiff(NewArgs[0], NewArgs[1]);
    case TermKind::PwIte:
      return TM.mkPwIte(NewArgs[0], NewArgs[1], NewArgs[2]);
    case TermKind::Apply:
      return TM.mkApply(T->getDecl(), std::move(NewArgs));
    case TermKind::Forall:
      assert(false && "lift ites after quantifier elimination");
      return T;
    default:
      return T;
    }
  }

  TermManager &TM;
  std::unordered_map<TermRef, TermRef> Cache;
  std::vector<TermRef> Defs;
};

/// Collects every subterm of a DAG once.
void collectSubterms(TermRef T, std::unordered_set<TermRef> &Out) {
  if (!Out.insert(T).second)
    return;
  for (TermRef A : T->getArgs())
    collectSubterms(A, Out);
}

/// Marks the polarities under which each Eq-over-arrays atom occurs.
/// Bit 1 = positive, bit 2 = negative.
void markPolarities(TermRef T, int Pol,
                    std::unordered_map<TermRef, int> &Out,
                    std::set<std::pair<TermRef, int>> &Seen) {
  if (!Seen.insert({T, Pol}).second)
    return;
  switch (T->getKind()) {
  case TermKind::Not:
    markPolarities(T->getArg(0), Pol ^ 3, Out, Seen);
    return;
  case TermKind::And:
  case TermKind::Or:
    for (TermRef A : T->getArgs())
      markPolarities(A, Pol, Out, Seen);
    return;
  case TermKind::Ite:
    // Boolean ite only (non-boolean are lifted). Condition sees both
    // polarities, the branches keep the current one.
    markPolarities(T->getArg(0), 3, Out, Seen);
    markPolarities(T->getArg(1), Pol, Out, Seen);
    markPolarities(T->getArg(2), Pol, Out, Seen);
    return;
  case TermKind::Eq:
    if (T->getArg(0)->getSort()->isBool()) {
      // Iff: sub-atoms occur in both polarities.
      markPolarities(T->getArg(0), 3, Out, Seen);
      markPolarities(T->getArg(1), 3, Out, Seen);
      return;
    }
    if (T->getArg(0)->getSort()->isArray())
      Out[T] |= Pol;
    return;
  default:
    return;
  }
}

bool isCompositeArray(TermRef T) {
  switch (T->getKind()) {
  case TermKind::Store:
  case TermKind::ConstArray:
  case TermKind::MapOr:
  case TermKind::MapAnd:
  case TermKind::MapDiff:
  case TermKind::PwIte:
    return true;
  default:
    return false;
  }
}
} // namespace

TermRef smt::liftItes(TermManager &TM, TermRef Formula) {
  IteLifter L(TM);
  return L.run(Formula);
}

TermRef smt::reduceArrays(TermManager &TM, TermRef Formula,
                          ArrayReductionStats *Stats) {
  std::vector<TermRef> Lemmas;

  // Step 1: witnesses for array equalities that occur negatively.
  {
    std::unordered_map<TermRef, int> Polarities;
    std::set<std::pair<TermRef, int>> Seen;
    markPolarities(Formula, 1, Polarities, Seen);
    for (const auto &[EqTerm, Pol] : Polarities) {
      if (!(Pol & 2))
        continue;
      TermRef A = EqTerm->getArg(0), B = EqTerm->getArg(1);
      TermRef W = TM.mkFreshVar("extw", A->getSort()->getKey());
      // a == b  \/  a[w] != b[w]
      Lemmas.push_back(TM.mkOr(
          EqTerm, TM.mkNot(TM.mkEq(TM.mkSelect(A, W), TM.mkSelect(B, W)))));
      if (Stats)
        ++Stats->NumWitnesses;
    }
  }

  // Step 2: gather array terms and index terms (from the formula and the
  // witness lemmas).
  std::unordered_set<TermRef> All;
  collectSubterms(Formula, All);
  for (TermRef L : Lemmas)
    collectSubterms(L, All);

  std::map<const Sort *, std::vector<TermRef>> IndexTerms;
  std::vector<TermRef> ArrayTerms;
  {
    std::set<std::pair<const Sort *, TermRef>> IndexSeen;
    for (TermRef T : All) {
      if (T->getSort()->isArray())
        ArrayTerms.push_back(T);
      if (T->getKind() == TermKind::Select ||
          T->getKind() == TermKind::Store) {
        TermRef Index = T->getArg(1);
        const Sort *KeySort = T->getArg(0)->getSort()->getKey();
        if (IndexSeen.insert({KeySort, Index}).second)
          IndexTerms[KeySort].push_back(Index);
      }
    }
  }
  if (Stats) {
    Stats->NumArrayTerms = static_cast<unsigned>(ArrayTerms.size());
    for (const auto &[S, V] : IndexTerms)
      Stats->NumIndexTerms += static_cast<unsigned>(V.size());
  }

  // Step 3: instantiate read-over-composite axioms for every composite
  // array term and every index term of its key sort.
  for (TermRef A : ArrayTerms) {
    if (!isCompositeArray(A))
      continue;
    const Sort *KeySort = A->getSort()->getKey();
    auto It = IndexTerms.find(KeySort);
    if (It == IndexTerms.end())
      continue;
    for (TermRef I : It->second) {
      TermRef SelAI = TM.mkSelect(A, I);
      switch (A->getKind()) {
      case TermKind::Store: {
        TermRef Base = A->getArg(0), J = A->getArg(1), V = A->getArg(2);
        TermRef Same = TM.mkEq(I, J);
        Lemmas.push_back(TM.mkImplies(Same, TM.mkEq(SelAI, V)));
        Lemmas.push_back(
            TM.mkImplies(TM.mkNot(Same),
                         TM.mkEq(SelAI, TM.mkSelect(Base, I))));
        break;
      }
      case TermKind::ConstArray:
        Lemmas.push_back(TM.mkEq(SelAI, A->getArg(0)));
        break;
      case TermKind::MapOr:
        Lemmas.push_back(TM.mkEq(
            SelAI, TM.mkOr(TM.mkSelect(A->getArg(0), I),
                           TM.mkSelect(A->getArg(1), I))));
        break;
      case TermKind::MapAnd:
        Lemmas.push_back(TM.mkEq(
            SelAI, TM.mkAnd(TM.mkSelect(A->getArg(0), I),
                            TM.mkSelect(A->getArg(1), I))));
        break;
      case TermKind::MapDiff:
        Lemmas.push_back(TM.mkEq(
            SelAI,
            TM.mkAnd(TM.mkSelect(A->getArg(0), I),
                     TM.mkNot(TM.mkSelect(A->getArg(1), I)))));
        break;
      case TermKind::PwIte: {
        TermRef Guard = TM.mkSelect(A->getArg(0), I);
        Lemmas.push_back(TM.mkImplies(
            Guard, TM.mkEq(SelAI, TM.mkSelect(A->getArg(1), I))));
        Lemmas.push_back(TM.mkImplies(
            TM.mkNot(Guard), TM.mkEq(SelAI, TM.mkSelect(A->getArg(2), I))));
        break;
      }
      default:
        break;
      }
    }
  }

  // Step 4: read-over-equality. When an array equality atom is asserted,
  // congruence alone cannot connect `select(A, i)` with the semantics of a
  // composite right-hand side whose select folds at construction (constant
  // arrays, store at the same index). Instantiate
  //     Eq(A,B) => select(A,i) == select(B,i)
  // for every array-equality atom and every relevant index. New equalities
  // between nested (set-valued) selects are processed transitively; the
  // loop terminates because sort nesting is finite.
  {
    std::set<TermRef> EqAtoms;
    std::vector<TermRef> Work;
    auto ConsiderEq = [&](TermRef T) {
      if (T->getKind() == TermKind::Eq &&
          T->getArg(0)->getSort()->isArray() && EqAtoms.insert(T).second)
        Work.push_back(T);
    };
    for (TermRef T : All)
      ConsiderEq(T);
    while (!Work.empty()) {
      TermRef EqT = Work.back();
      Work.pop_back();
      TermRef A = EqT->getArg(0), B = EqT->getArg(1);
      const Sort *KeySort = A->getSort()->getKey();
      // Only selects that FOLD at construction need this: const arrays
      // (every index folds) and stores (their own index folds). Selects
      // over the other combinators materialise as terms, so the merged
      // equivalence class already carries their constraints.
      auto Emit = [&](TermRef I) {
        TermRef SelEq = TM.mkEq(TM.mkSelect(A, I), TM.mkSelect(B, I));
        if (SelEq == TM.mkTrue())
          return;
        Lemmas.push_back(TM.mkImplies(EqT, SelEq));
        ConsiderEq(SelEq);
      };
      bool ConstInvolved = A->getKind() == TermKind::ConstArray ||
                           B->getKind() == TermKind::ConstArray;
      if (ConstInvolved) {
        auto It = IndexTerms.find(KeySort);
        if (It != IndexTerms.end())
          for (TermRef I : It->second)
            Emit(I);
        continue;
      }
      for (TermRef Side : {A, B})
        if (Side->getKind() == TermKind::Store)
          Emit(Side->getArg(1));
    }
  }

  if (Stats)
    Stats->NumLemmas = static_cast<unsigned>(Lemmas.size());
  if (Lemmas.empty())
    return Formula;
  Lemmas.push_back(Formula);
  return TM.mkAnd(std::move(Lemmas));
}
