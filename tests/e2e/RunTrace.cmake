# Observability e2e test. Invoked by ctest as
#   cmake -DIDS_VERIFY=<exe> -DWORKDIR=<dir> -P RunTrace.cmake
#
# Runs one benchmark with every observability surface enabled and checks:
#   * --trace-out writes well-formed, non-empty Chrome trace-event JSON
#     with at least one span per pipeline stage and driver layer;
#   * --stats-json writes the ids-stats-v1 snapshot, and every line of
#     the human --stats "cumulative metrics:" footer agrees with it
#     (the acceptance criterion: the two renderings can never diverge);
#   * a tiny --slow-query-ms threshold records parseable JSONL rows.

if(NOT DEFINED IDS_VERIFY OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "usage: cmake -DIDS_VERIFY=... -DWORKDIR=... -P RunTrace.cmake")
endif()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

execute_process(
  COMMAND "${IDS_VERIFY}" --benchmark singly-linked-list --stats
          --trace-out "${WORKDIR}/trace.json"
          --stats-json "${WORKDIR}/stats.json"
          --slow-query-ms 0.000001
          --slow-query-log "${WORKDIR}/slow.jsonl"
  OUTPUT_VARIABLE Out
  ERROR_VARIABLE Err
  RESULT_VARIABLE ExitCode)
if(NOT ExitCode EQUAL 0)
  message(FATAL_ERROR "traced run exited ${ExitCode}\n--- stdout ---\n${Out}"
          "\n--- stderr ---\n${Err}")
endif()

foreach(F trace.json stats.json slow.jsonl)
  if(NOT EXISTS "${WORKDIR}/${F}")
    message(FATAL_ERROR "traced run did not write ${F}")
  endif()
endforeach()

file(READ "${WORKDIR}/trace.json" Trace)
string(LENGTH "${Trace}" TraceLen)
if(TraceLen LESS 100)
  message(FATAL_ERROR "trace.json is empty or truncated (${TraceLen} bytes)")
endif()

# One span per stage per obligation: each stage name must appear, and the
# events must be complete ("ph":"X") with VC-hash attribution on solves.
foreach(Tag "\"traceEvents\":" "\"ph\":\"X\"" "pipeline.simplify"
        "pipeline.slice" "pipeline.cache_probe" "pipeline.solve"
        "pipeline.batch_group" "driver.proc" "driver.request")
  string(FIND "${Trace}" "${Tag}" P)
  if(P EQUAL -1)
    message(FATAL_ERROR "trace.json lacks ${Tag}")
  endif()
endforeach()
if(NOT Trace MATCHES "\"vc\":\"[0-9a-f][0-9a-f][0-9a-f][0-9a-f]")
  message(FATAL_ERROR "no VC-hash span args in trace.json")
endif()

# Structural validation: both documents must actually parse as JSON
# (string(JSON) needs CMake >= 3.19; older configure still runs the
# textual checks above).
file(READ "${WORKDIR}/stats.json" Stats)
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  foreach(Doc Trace Stats)
    string(JSON Kind ERROR_VARIABLE JsonErr TYPE "${${Doc}}")
    if(NOT JsonErr STREQUAL "NOTFOUND" OR NOT Kind STREQUAL "OBJECT")
      message(FATAL_ERROR "${Doc} is not a valid JSON object: ${JsonErr}")
    endif()
  endforeach()
endif()

foreach(Tag "\"schema\":\"ids-stats-v1\"" "\"counters\":{"
        "\"pipeline.obligations\":" "\"smt.check_sats\":"
        "\"driver.requests\":1" "\"pipeline.slow_queries\":")
  string(FIND "${Stats}" "${Tag}" P)
  if(P EQUAL -1)
    message(FATAL_ERROR "stats.json lacks ${Tag}")
  endif()
endforeach()

# --stats footer vs --stats-json: every `  name = value` line of the
# human rendering must appear as "name":value in the JSON snapshot.
string(REGEX MATCHALL "  [a-z_.0-9]+ = [0-9]+" FooterLines "${Out}")
list(LENGTH FooterLines NumFooter)
if(NumFooter LESS 10)
  message(FATAL_ERROR "--stats printed only ${NumFooter} cumulative metric "
          "lines:\n${Out}")
endif()
foreach(Line ${FooterLines})
  string(REGEX REPLACE "  ([a-z_.0-9]+) = ([0-9]+)" "\"\\1\":\\2" Pair
         "${Line}")
  string(FIND "${Stats}" "${Pair}" P)
  if(P EQUAL -1)
    message(FATAL_ERROR "--stats line '${Line}' disagrees with stats.json "
            "(expected ${Pair})")
  endif()
endforeach()
message(STATUS "${NumFooter} cumulative metrics match between --stats and "
        "stats.json")

# Slow-query log: the absurd threshold catches every solver query, each
# line carries the documented fields.
file(READ "${WORKDIR}/slow.jsonl" Slow)
foreach(Tag "\"vc\":\"" "\"proc\":\"" "\"verdict\":\"" "\"seconds\":"
        "\"atoms\":")
  string(FIND "${Slow}" "${Tag}" P)
  if(P EQUAL -1)
    message(FATAL_ERROR "slow.jsonl lacks ${Tag}:\n${Slow}")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORKDIR}")
