//===- bench/bench_table2.cpp - Regenerates Table 2 ------------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 2 of the paper (E1/E4 in DESIGN.md): for every data
/// structure and method in the embedded suite, the LC size (number of
/// conjuncts), lines of executable code + specification + ghost
/// annotation, and the verification time in the default quantifier-free
/// mode. Impact-set verification time per structure is reported alongside
/// (the paper states it is < 3s per structure).
///
/// Besides the human-readable table (VC pipeline enabled), the run is
/// repeated with the pipeline transforms disabled and both configurations
/// are written to BENCH_table2.json — per-benchmark seconds, obligation
/// and atom counts — so the performance trajectory is machine-readable.
///
//===----------------------------------------------------------------------===//

#include "driver/Verifier.h"
#include "pipeline/Pipeline.h"
#include "structures/Registry.h"
#include "support/Json.h"

#include <cstdio>
#include <string>

using namespace ids;

namespace {

const char *statusName(driver::Status St) {
  switch (St) {
  case driver::Status::Verified:
    return "verified";
  case driver::Status::Failed:
    return "failed";
  case driver::Status::Unknown:
    break;
  }
  return "unknown";
}

driver::VerifyOptions configFor(bool Pipeline) {
  driver::VerifyOptions Opts;
  // Bounded resources, but generous enough that every method that CAN
  // verify does: sorted-list insert's hardest per-obligation query runs
  // ~2 min on this class of hardware. Exhaustion is reported as
  // 'unknown' instead of an open-ended run.
  Opts.QueryTimeoutSeconds = 300;
  if (!Pipeline) {
    Opts.SimplifyVc = false;
    Opts.SliceVc = false;
    Opts.CacheQueries = false;
    // Without per-obligation simplification, cap the query count the
    // paper's way (Boogie with max 8 VC splits, Section 5.3) and tighten
    // the per-query clock so a slow benchmark costs at most 8 short
    // timeouts per procedure.
    Opts.VcSplits = 8;
    Opts.QueryTimeoutSeconds = 90;
  }
  return Opts;
}

void emitJsonResult(FILE *F, const structures::Benchmark &B,
                    const driver::ModuleResult &R, bool First) {
  json::Value Obj = json::Value::object();
  Obj.set("name", json::Value::string(B.Name));
  Obj.set("table2_name", json::Value::string(B.Table2Name));
  Obj.set("lc_size", json::Value::number(R.LcSize));
  Obj.set("impact_sets", json::Value::number(double(R.Impacts.size())));
  bool ImpactsOk = true;
  for (const driver::ImpactResult &I : R.Impacts)
    ImpactsOk = ImpactsOk && I.Ok;
  Obj.set("impacts_ok", json::Value::boolean(ImpactsOk));
  Obj.set("impact_seconds", json::Value::number(R.ImpactSeconds));
  json::Value Procs = json::Value::array();
  for (const driver::ProcResult &P : R.Procs) {
    json::Value V = json::Value::object();
    V.set("name", json::Value::string(P.Name));
    V.set("status", json::Value::string(statusName(P.St)));
    V.set("seconds", json::Value::number(P.Seconds));
    // The per-proc stat rows come from the pipeline's shared renderer
    // (the same StatsRow table behind --stats-json and the registry's
    // pipeline.* counters), so this artifact can never use key names or
    // semantics that diverge from the live metrics.
    const json::Value St = pipeline::statsToJson(P.Pipeline);
    for (const auto &[Key, Val] : St.members())
      V.set(Key, Val);
    Procs.push(std::move(V));
  }
  Obj.set("procs", std::move(Procs));
  fprintf(F, "%s\n    %s", First ? "" : ",", Obj.serialize().c_str());
}

} // namespace

int main() {
  FILE *Json = fopen("BENCH_table2.json", "w");
  if (!Json) {
    fprintf(stderr, "cannot open BENCH_table2.json for writing\n");
    return 1;
  }
  fprintf(Json, "{\"bench\": \"table2\", \"configs\": [");

  bool AllOk = true;
  for (bool Pipeline : {true, false}) {
    fprintf(Json, "%s\n  {\"pipeline\": %s, \"benchmarks\": [",
            Pipeline ? "" : ",", Pipeline ? "true" : "false");
    if (Pipeline) {
      printf("Table 2: implementation and verification of the benchmark "
             "suite (quantifier-free FWYB encoding, VC pipeline on)\n");
      printf("%-22s %4s  %-26s %-12s %10s  %s\n", "Data Structure", "LC",
             "Method", "LOC+Spec+Ann", "Verif.(s)", "Status");
      printf("-----------------------------------------------------------"
             "-------------------------\n");
    }
    bool FirstBench = true;
    for (const structures::Benchmark &B : structures::allBenchmarks()) {
      DiagEngine Diags;
      driver::VerifyOptions Opts = configFor(Pipeline);
      // Registry-surfaced tuning: a benchmark beyond the solver's reach
      // records its budgeted verdict here exactly as `--benchmark all`
      // and the goldens do (currently every DefaultBudget is 0).
      if (B.DefaultBudget > 0)
        Opts.MaxTheoryChecks = B.DefaultBudget;
      driver::ModuleResult R =
          driver::verifySource(B.Source, Opts, Diags);
      if (!R.FrontEndOk) {
        if (Pipeline)
          printf("%-22s  FRONT-END ERROR\n%s", B.Table2Name,
                 Diags.toString().c_str());
        AllOk = false;
        continue;
      }
      emitJsonResult(Json, B, R, FirstBench);
      FirstBench = false;
      // Both configurations gate the exit code: a verification failure
      // in the pipeline-off pass is exactly the differential regression
      // this second run exists to surface.
      bool ImpactsOk = true;
      for (const driver::ImpactResult &I : R.Impacts)
        ImpactsOk = ImpactsOk && I.Ok;
      AllOk = AllOk && ImpactsOk;
      for (const driver::ProcResult &P : R.Procs)
        AllOk = AllOk && P.St != driver::Status::Failed;
      if (!Pipeline)
        continue;
      bool First = true;
      for (const driver::ProcResult &P : R.Procs) {
        char Counts[32];
        snprintf(Counts, sizeof(Counts), "%u+%u+%u", P.Metrics.CodeLines,
                 P.Metrics.SpecLines, P.Metrics.AnnotLines);
        const char *St = P.St == driver::Status::Verified ? "verified"
                         : P.St == driver::Status::Unknown
                             ? "unknown (budget)"
                             : "FAILED";
        printf("%-22s %4u  %-26s %-12s %10.2f  %s\n",
               First ? B.Table2Name : "", First ? R.LcSize : 0,
               P.Name.c_str(), Counts, P.Seconds, St);
        First = false;
      }
      printf("%-22s       impact sets: %zu checked, %s (%.2fs)\n", "",
             R.Impacts.size(), ImpactsOk ? "all correct" : "FAILURES",
             R.ImpactSeconds);
    }
    fprintf(Json, "]}");
  }
  fprintf(Json, "]}\n");
  fclose(Json);

  printf("\nPaper reference (Table 2): all 42 methods verify, all but "
         "four in under 10 seconds,\nimpact sets < 3s per structure. See "
         "EXPERIMENTS.md for the per-method comparison.\nWrote "
         "BENCH_table2.json (pipeline on + off configurations).\n");
  return AllOk ? 0 : 1;
}
