//===- tests/pipeline/SliceTest.cpp - Slicer unit tests --------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for cone-of-influence slicing on hand-built obligations:
/// reachability through shared variables and function symbols, the
/// constant-claim escape hatch, and end-to-end soundness through the
/// pipeline — in particular the Sat fallback that keeps slicing
/// verdict-preserving when the dropped conjuncts are themselves
/// infeasible.
///
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"
#include "pipeline/Slice.h"

#include <gtest/gtest.h>

using namespace ids;
using namespace ids::pipeline;
using namespace ids::smt;

namespace {

class SliceTest : public ::testing::Test {
protected:
  TermManager TM;

  TermRef intVar(const char *Name) { return TM.mkVar(Name, TM.intSort()); }

  vcgen::Obligation obligation(TermRef Guard, TermRef Claim,
                               const char *Desc) {
    vcgen::Obligation O;
    O.Guard = Guard;
    O.Claim = Claim;
    O.Description = Desc;
    return O;
  }
};

TEST_F(SliceTest, DropsSymbolDisjointConjuncts) {
  TermRef X = intVar("x"), Y = intVar("y"), Z = intVar("z");
  TermRef A = intVar("a"), B = intVar("b");
  std::vector<TermRef> Conjuncts = {TM.mkLe(X, Y), TM.mkLe(Y, Z),
                                    TM.mkLe(A, B)};
  SliceStats St;
  std::vector<TermRef> Kept =
      sliceGuard(Conjuncts, TM.mkLe(X, Z), &St);
  ASSERT_EQ(Kept.size(), 2u);
  EXPECT_EQ(Kept[0], Conjuncts[0]);
  EXPECT_EQ(Kept[1], Conjuncts[1]);
  EXPECT_EQ(St.ConjunctsDropped, 1u);
}

TEST_F(SliceTest, ReachabilityIsTransitive) {
  // claim mentions x only; x-w chain must survive, u-v must not.
  TermRef X = intVar("x"), Y = intVar("y"), W = intVar("w");
  TermRef U = intVar("u"), V = intVar("v");
  std::vector<TermRef> Conjuncts = {TM.mkEq(X, Y), TM.mkEq(Y, W),
                                    TM.mkLe(U, V)};
  std::vector<TermRef> Kept =
      sliceGuard(Conjuncts, TM.mkLe(X, W), nullptr);
  EXPECT_EQ(Kept.size(), 2u);
}

TEST_F(SliceTest, FunctionSymbolsConnectConjuncts) {
  // Two conjuncts share only the uninterpreted function f.
  const FuncDecl *F =
      TM.getFuncDecl("f", {TM.intSort()}, TM.intSort());
  TermRef X = intVar("x"), U = intVar("u");
  std::vector<TermRef> Conjuncts = {
      TM.mkLe(TM.mkApply(F, {U}), U),
      TM.mkLe(intVar("p"), intVar("q"))};
  std::vector<TermRef> Kept =
      sliceGuard(Conjuncts, TM.mkLe(TM.mkApply(F, {X}), X), nullptr);
  // The f-conjunct is reachable through f (congruence may need it); the
  // p/q conjunct is not.
  ASSERT_EQ(Kept.size(), 1u);
  EXPECT_EQ(Kept[0], Conjuncts[0]);
}

TEST_F(SliceTest, ConstantClaimKeepsEverything) {
  TermRef U = intVar("u");
  std::vector<TermRef> Conjuncts = {TM.mkLe(U, TM.mkIntConst(5)),
                                    TM.mkLe(TM.mkIntConst(6), U)};
  std::vector<TermRef> Kept =
      sliceGuard(Conjuncts, TM.mkFalse(), nullptr);
  EXPECT_EQ(Kept.size(), 2u);
}

TEST_F(SliceTest, InfeasibleIrrelevantGuardStillProves) {
  // Guard: u <= 5 /\ 6 <= u (infeasible, symbols disjoint from claim).
  // Claim: x <= y (not valid on its own). Slicing drops the u-conjuncts,
  // the sliced query is Sat, and the fallback on the full guard must
  // rescue the verdict: the obligation holds vacuously.
  TermRef U = intVar("u"), X = intVar("x"), Y = intVar("y");
  TermRef Guard = TM.mkAnd(TM.mkLe(U, TM.mkIntConst(5)),
                           TM.mkLe(TM.mkIntConst(6), U));
  std::vector<vcgen::Obligation> Obls = {
      obligation(Guard, TM.mkLe(X, Y), "vacuous")};
  Options Opts;
  Opts.Simplify = false; // isolate the slicer
  Result R = solveObligations(TM, Obls, Opts, nullptr);
  EXPECT_EQ(R.V, Verdict::Proved);
  EXPECT_EQ(R.St.SliceFallbacks, 1u);
  EXPECT_GE(R.St.ConjunctsSliced, 2u);
}

TEST_F(SliceTest, SlicedAndUnslicedVerdictsAgree) {
  TermRef X = intVar("x"), Y = intVar("y"), Z = intVar("z");
  TermRef A = intVar("a"), B = intVar("b");
  // One provable obligation with irrelevant baggage, one failing one.
  std::vector<vcgen::Obligation> Obls = {
      obligation(TM.mkAnd({TM.mkLe(X, Y), TM.mkLe(Y, Z), TM.mkLe(A, B)}),
                 TM.mkLe(X, Z), "transitive"),
      obligation(TM.mkAnd(TM.mkLe(X, Y), TM.mkLe(A, B)), TM.mkLe(Y, X),
                 "bogus")};
  for (bool Slice : {true, false}) {
    Options Opts;
    Opts.Simplify = false;
    Opts.Slice = Slice;
    Result R = solveObligations(TM, Obls, Opts, nullptr);
    EXPECT_EQ(R.V, Verdict::Failed) << "slice=" << Slice;
    EXPECT_NE(R.FailedDescription.find("bogus"), std::string::npos)
        << "slice=" << Slice;
    EXPECT_FALSE(R.Counterexample.empty()) << "slice=" << Slice;
  }
}

} // namespace
