//===- support/JobManager.h - Work-stealing job system ---------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A work-stealing thread pool with dependency edges — the dispatch
/// engine under `--jobs N`. Each worker owns a deque: new work spawned
/// from inside a task lands at the bottom of the spawning worker's own
/// deque (LIFO, cache-warm), idle workers steal from the top of a
/// victim's deque (FIFO, the oldest — and usually largest — task). This
/// replaces the former flat Scheduler pool, whose single shared task
/// index serialized dispatch and could not express ordering: here a
/// task may name dependencies, and it dispatches only after every
/// dependency completed (the pipeline uses this to run a batch's
/// shared-prefix solve before its members, and to float Sat-recheck /
/// escalation work off the batch's critical path).
///
/// Concurrency contract:
///  - submit() may be called from any thread, including from inside a
///    running task (dynamic spawn); wait() covers dynamically spawned
///    tasks too.
///  - A task that throws does not cancel anything: dependents still
///    run, and wait() rethrows the first exception after every task
///    finished — `--jobs N` fails exactly like `--jobs 1`.
///  - With Jobs <= 1 no threads are created: wait() runs every task
///    inline on the calling thread in submission (FIFO, dependency-
///    respecting) order, keeping the serial path deterministic.
///
/// Activity feeds the metrics registry: `jobs.tasks` counts every task
/// executed, `jobs.steals` counts tasks a worker took from another
/// worker's deque.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SUPPORT_JOBMANAGER_H
#define IDS_SUPPORT_JOBMANAGER_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ids {
namespace jobs {

class JobManager {
public:
  /// Dense task handle, valid for the lifetime of this manager.
  using TaskId = uint32_t;

  /// 0 -> hardware_concurrency() (min 1: the detection may report 0).
  static unsigned resolveJobs(unsigned Jobs);

  /// \p Jobs == 0 auto-detects the worker count; an explicit N pins it.
  /// Worker threads start lazily on the first submit(), so a manager
  /// constructed for an all-cached batch costs nothing.
  explicit JobManager(unsigned Jobs);

  /// Waits for every submitted task (exceptions swallowed — call wait()
  /// first if you need them), then joins the workers.
  ~JobManager();

  JobManager(const JobManager &) = delete;
  JobManager &operator=(const JobManager &) = delete;

  /// Enqueues \p Fn to run once every task in \p Deps has completed
  /// (already-completed dependencies are fine). Callable from inside a
  /// running task; such children are pushed to the spawning worker's
  /// own deque.
  TaskId submit(std::function<void()> Fn,
                const std::vector<TaskId> &Deps = {});

  /// Blocks until every task — including ones spawned while waiting —
  /// has completed, then rethrows the first captured task exception, if
  /// any. With Jobs <= 1 this is where the tasks actually run.
  void wait();

  /// The resolved worker count (>= 1; 1 means inline execution).
  unsigned jobs() const { return NumJobs; }

private:
  struct Task {
    std::function<void()> Fn;
    unsigned PendingDeps = 0;
    bool Done = false;
    std::vector<TaskId> Dependents;
  };

  void workerLoop(unsigned Me);
  void runTask(TaskId Id);
  /// Marks \p Id done and returns the tasks it unblocked.
  std::vector<TaskId> completeLocked(TaskId Id);
  void enqueueReady(TaskId Id);
  void startWorkersLocked();

  const unsigned NumJobs;

  std::mutex Mutex; ///< guards everything below
  std::condition_variable WorkCv; ///< workers: new work / stop
  std::condition_variable IdleCv; ///< waiters: Outstanding hit zero
  std::deque<Task> Tasks;
  /// Per-worker ready deques (index 0..NumJobs-1) plus an inbox for
  /// external submissions at index NumJobs.
  std::vector<std::deque<TaskId>> Ready;
  std::vector<std::thread> Workers;
  size_t Outstanding = 0; ///< submitted, not yet completed
  bool Stopping = false;
  std::exception_ptr FirstError;
};

} // namespace jobs
} // namespace ids

#endif // IDS_SUPPORT_JOBMANAGER_H
