//===- pipeline/Pipeline.h - VC pipeline facade ----------------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VC pipeline sits between vcgen and the SMT solver: each proof
/// obligation is simplified (Simplify.h), sliced to the claim's cone of
/// influence (Slice.h), deduplicated against a structural query cache
/// (QueryCache.h), and the surviving queries are dispatched across a
/// work-stealing job system (support/JobManager.h) — singleton queries
/// as independent tasks, shared-prefix batches as dependency chains
/// whose prefix solve completes before the members dispatch — each task
/// solving in a snapshot overlay of the (frozen) caller TermManager, so
/// workers share the read-mostly term structure and pay only for their
/// own delta. Every stage is
/// independently disableable (`--no-simp`, `--no-slice`, `--no-cache`,
/// `--jobs 1`) so the transforms can be tested differentially.
///
/// This replaces the driver's former monolithic conjoin-and-refute loop:
/// per-obligation queries are exactly the independently decidable units
/// the paper's predictability argument rests on, and they are what makes
/// caching, slicing and parallel dispatch effective.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_PIPELINE_PIPELINE_H
#define IDS_PIPELINE_PIPELINE_H

#include "pipeline/QueryCache.h"
#include "smt/Term.h"
#include "support/Json.h"
#include "vcgen/VcGen.h"

#include <string>
#include <vector>

namespace ids {
namespace pipeline {

struct Options {
  /// Run the simplifier pass (--no-simp disables).
  bool Simplify = true;
  /// Run the cone-of-influence slicer (--no-slice disables).
  bool Slice = true;
  /// Consult/populate the structural query cache (--no-cache disables).
  bool Cache = true;
  /// Batch obligations by shared VC prefix and solve each batch on one
  /// incremental SolverContext: the common conjunct prefix is asserted
  /// once at level 0, then each negated claim is push/checked/popped,
  /// reusing the prefix CNF, its array instantiations and every theory
  /// lemma learned along the way (--no-incremental falls back to a fresh
  /// one-shot solve per query).
  bool Incremental = true;
  /// Worker threads for solver dispatch (--jobs N); 1 = serial, 0 =
  /// auto-detect from hardware concurrency.
  unsigned Jobs = 0;
  /// Legacy grouping: partition obligations round-robin into this many
  /// disjunctive queries (the paper's Boogie-style VC splitting). 0, the
  /// default, solves one query per obligation.
  unsigned VcSplits = 0;
  /// Forwarded solver options.
  bool AllowQuantifiers = false;
  bool CrossCheckQf = true;
  uint64_t MaxTheoryChecks = 0;
  double QueryTimeoutSeconds = 0;
  /// Lazy in-search array instantiation for batched incremental contexts:
  /// only select-rooted demands instantiate up front, the rest on the
  /// first violating candidate model inside the CDCL loop
  /// (--eager-arrays restores the up-front closure as the differential
  /// baseline).
  bool LazyArrays = true;
  /// Activity-based learned-clause deletion in the SAT core
  /// (--no-reduce-db disables, the differential baseline).
  bool ReduceDb = true;
  /// DPLL(T) theory propagation + frame-pinned incremental registration
  /// in batched incremental contexts (--no-theory-prop disables, the
  /// differential baseline restoring purely lazy full-model checking).
  bool TheoryProp = true;
  /// Attribution label for spans and slow-query records (the procedure
  /// or impact-check name this batch of obligations belongs to). Purely
  /// observational; empty is fine.
  std::string TraceLabel;
};

struct Stats {
  unsigned Obligations = 0;
  /// Discharged by the simplifier alone, no solver query.
  unsigned ProvedBySimplify = 0;
  /// Guard conjuncts before/dropped-by slicing, summed over obligations.
  unsigned ConjunctsBeforeSlice = 0;
  unsigned ConjunctsSliced = 0;
  /// Solver queries actually run (after dedup/caching).
  unsigned Queries = 0;
  unsigned CacheHits = 0;
  /// Sat answers on sliced queries re-checked against the full guard.
  unsigned SliceFallbacks = 0;
  /// Unknown answers retried with eager (blind) array instantiation.
  unsigned EscalatedQueries = 0;
  /// Shared-prefix batches formed (incremental mode; singleton batches
  /// fall back to one-shot solving and are not counted).
  unsigned PrefixGroups = 0;
  /// Checks that reused an already-asserted shared prefix (every batch
  /// member after the first).
  unsigned ContextReuses = 0;
  /// Learned theory lemmas retained across pops inside batch contexts.
  uint64_t LemmasRetained = 0;
  /// Deferred array lemmas asserted from inside the CDCL loop (lazy
  /// instantiation mode; 0 under --eager-arrays).
  uint64_t LazyArrayLemmas = 0;
  /// Theory-propagation activity inside batch contexts (0 under
  /// --no-theory-prop): literals asserted from partial-trail entailment,
  /// conflicts caught before a full propositional model, and term
  /// registrations skipped thanks to frame-pinned shared prefixes.
  uint64_t TheoryPropagations = 0;
  uint64_t PropagationConflicts = 0;
  uint64_t CcRegistrationsReused = 0;
  /// Sat answers from an incremental batch re-confirmed on a fresh
  /// one-shot solver (clean countermodel, independent of context state).
  unsigned IncrSatRechecks = 0;
  /// Largest query the solver saw (post-pipeline), and totals.
  unsigned MaxAtoms = 0;
  unsigned MaxArrayLemmas = 0;
  uint64_t TotalAtoms = 0;
  uint64_t TotalArrayLemmas = 0;

  void merge(const Stats &O);
};

/// Renders \p St as a JSON object — one member per Stats field, in
/// declaration order. The row table behind this also drives
/// recordStatsInRegistry, so bench_table2's per-proc rows and the
/// cumulative pipeline.* metrics can never use diverging key names or
/// semantics.
json::Value statsToJson(const Stats &St);

/// Folds \p St into the global metrics registry (pipeline.<key> cells;
/// max_* fields as high-water marks, everything else summed).
void recordStatsInRegistry(const Stats &St);

/// Formats a query's 128-bit structural DAG hash (QueryCache::keyFor)
/// as 32 hex digits — the VC identity used in span args, slow-query
/// records and cache keys alike.
std::string vcHashHex(smt::TermRef Query);

enum class Verdict { Proved, Failed, Unknown };

struct Result {
  Verdict V = Verdict::Proved;
  /// Description + location of the first failing (or undecided)
  /// obligation.
  std::string FailedDescription;
  std::string Counterexample;
  Stats St;
};

/// Discharges every obligation (all obligations are checked; the first
/// failure in obligation order is reported). \p Cache may be null
/// (equivalent to Options::Cache = false) and may be shared across calls
/// — entries are keyed structurally, so identical obligations from
/// different procedures or impact checks solve once.
Result solveObligations(smt::TermManager &TM,
                        const std::vector<vcgen::Obligation> &Obls,
                        const Options &Opts, QueryCache *Cache);

} // namespace pipeline
} // namespace ids

#endif // IDS_PIPELINE_PIPELINE_H
