#!/usr/bin/env python3
"""Render the README's Table 2 status matrix from BENCH_table2.json.

Reads the pipeline-on configuration of BENCH_table2.json (written by
build/bench_table2) and prints the markdown table between the
`<!-- BEGIN/END TABLE2 MATRIX -->` markers in README.md. With --update,
splices it into README.md in place:

    build/bench_table2                 # writes BENCH_table2.json
    python3 bench/render_table2.py --update
"""

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BEGIN = "<!-- BEGIN TABLE2 MATRIX -->"
END = "<!-- END TABLE2 MATRIX -->"


def render(data: dict) -> str:
    cfg = next(c for c in data["configs"] if c["pipeline"])
    lines = [
        "| Benchmark | LC | Impact sets | Procedure | Verdict | Time (s) |",
        "|-----------|---:|-------------|-----------|---------|---------:|",
    ]
    for bench in cfg["benchmarks"]:
        impacts = "%d ok" % bench["impact_sets"]
        if not bench["impacts_ok"]:
            impacts = "%d (FAILURES)" % bench["impact_sets"]
        first = True
        for proc in bench["procs"]:
            lines.append(
                "| %s | %s | %s | %s | %s | %.2f |"
                % (
                    bench["table2_name"] if first else "",
                    bench["lc_size"] if first else "",
                    impacts if first else "",
                    proc["name"],
                    proc["status"],
                    proc["seconds"],
                )
            )
            first = False
    return "\n".join(lines)


def main() -> int:
    table = render(json.loads((ROOT / "BENCH_table2.json").read_text()))
    if "--update" in sys.argv:
        readme = (ROOT / "README.md").read_text()
        begin = readme.index(BEGIN) + len(BEGIN)
        end = readme.index(END)
        (ROOT / "README.md").write_text(
            readme[:begin] + "\n" + table + "\n" + readme[end:]
        )
        print("README.md updated")
    else:
        print(table)
    return 0


if __name__ == "__main__":
    sys.exit(main())
