//===- smt/SatSolver.h - CDCL SAT core -------------------------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conflict-driven clause-learning SAT solver: two-watched-literal
/// propagation, 1UIP conflict analysis with backjumping, EVSIDS branching,
/// phase saving and Luby restarts.
///
/// The SMT layer drives it lazily (offline DPLL(T)): whenever the solver
/// reaches a full assignment it invokes a TheoryCallback, which either
/// accepts the model or returns a conflict clause (an explanation from the
/// theory stack) that is learned and search resumes. This is terminating:
/// each theory clause removes at least one total assignment.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SMT_SATSOLVER_H
#define IDS_SMT_SATSOLVER_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ids {
namespace sat {

/// Boolean variable index (0-based).
using Var = int;

/// A literal: variable + sign, encoded as 2*Var+Sign (Sign==1 is negation).
struct Lit {
  int Code = -1;

  Lit() = default;
  Lit(Var V, bool Negated) : Code(2 * V + (Negated ? 1 : 0)) {}

  Var var() const { return Code >> 1; }
  bool negated() const { return Code & 1; }
  Lit operator~() const {
    Lit Result;
    Result.Code = Code ^ 1;
    return Result;
  }
  bool operator==(const Lit &RHS) const { return Code == RHS.Code; }
  bool operator!=(const Lit &RHS) const { return Code != RHS.Code; }
};

/// Three-valued assignment.
enum class LBool : uint8_t { False, True, Undef };

/// Theory hook invoked on full propositional assignments.
class TheoryCallback {
public:
  virtual ~TheoryCallback();

  /// Returns true to accept the model. Returns false and fills
  /// \p ConflictOut (a clause that is currently all-false) to reject it.
  virtual bool onFullModel(std::vector<Lit> &ConflictOut) = 0;
};

/// CDCL solver. Not reusable across solve() calls with removed clauses,
/// but supports repeated solve() with monotonically added clauses.
class SatSolver {
public:
  enum class Result { Sat, Unsat };

  /// Creates a new variable and returns its index.
  Var newVar();
  int numVars() const { return static_cast<int>(Assign.size()); }

  /// Adds a clause; returns false if the solver is already unsatisfiable
  /// at level zero. Must be called at decision level zero (fresh solver or
  /// between solve() calls).
  bool addClause(std::vector<Lit> Lits);

  /// Runs CDCL search. \p Theory may be null for pure SAT.
  Result solve(TheoryCallback *Theory = nullptr);

  /// Model access after Sat.
  bool modelValue(Var V) const {
    assert(Assign[V] != LBool::Undef);
    return Assign[V] == LBool::True;
  }
  LBool value(Lit L) const {
    LBool A = Assign[L.var()];
    if (A == LBool::Undef)
      return LBool::Undef;
    bool B = (A == LBool::True) != L.negated();
    return B ? LBool::True : LBool::False;
  }

  // Statistics (exposed for the micro-bench harness).
  uint64_t numConflicts() const { return Conflicts; }
  uint64_t numDecisions() const { return Decisions; }
  uint64_t numPropagations() const { return Propagations; }
  uint64_t numTheoryConflicts() const { return TheoryConflicts; }

private:
  struct Clause {
    std::vector<Lit> Lits;
    bool Learned = false;
  };
  struct Watcher {
    int ClauseIdx;
    Lit Blocker;
  };

  void enqueue(Lit L, int Reason);
  /// Returns the index of a conflicting clause, or -1.
  int propagate();
  void analyze(int ConflictIdx, std::vector<Lit> &LearnedOut,
               int &BacktrackLevel);
  void backtrack(int Level);
  Lit pickBranchLit();
  void bumpVar(Var V);
  void decayActivities();
  void attachClause(int Idx);
  int currentLevel() const { return static_cast<int>(TrailLim.size()); }
  /// Learns a clause whose literals are all currently false (theory
  /// conflict), backjumping appropriately. Returns false on level-0
  /// refutation.
  bool learnConflict(std::vector<Lit> Lits);
  static uint64_t luby(uint64_t I);

  std::vector<Clause> Clauses;
  std::vector<std::vector<Watcher>> Watches; // indexed by Lit.Code
  std::vector<LBool> Assign;
  std::vector<int> Level;
  std::vector<int> ReasonIdx; // clause index or -1
  std::vector<Lit> Trail;
  std::vector<int> TrailLim;
  size_t PropagateHead = 0;

  std::vector<double> Activity;
  std::vector<bool> SavedPhase;
  std::vector<std::pair<double, Var>> Heap; // lazy max-heap with stale entries
  double VarInc = 1.0;

  bool Unsat = false;
  uint64_t Conflicts = 0;
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
  uint64_t TheoryConflicts = 0;

  std::vector<char> SeenBuffer; // scratch for analyze()
};

} // namespace sat
} // namespace ids

#endif // IDS_SMT_SATSOLVER_H
