//===- smt/ArrayReduction.cpp - Eager array-theory reduction --------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "smt/ArrayReduction.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

using namespace ids;
using namespace ids::smt;

namespace {
/// Ite-lifting rewriter.
class IteLifter {
public:
  explicit IteLifter(TermManager &TM) : TM(TM) {}

  TermRef run(TermRef F) {
    TermRef Core = visit(F);
    if (Defs.empty())
      return Core;
    Defs.push_back(Core);
    return TM.mkAnd(std::move(Defs));
  }

private:
  TermRef visit(TermRef T) {
    auto It = Cache.find(T);
    if (It != Cache.end())
      return It->second;
    TermRef Result = compute(T);
    Cache.emplace(T, Result);
    return Result;
  }

  TermRef compute(TermRef T) {
    if (T->getArgs().empty())
      return T;
    std::vector<TermRef> NewArgs;
    NewArgs.reserve(T->getNumArgs());
    for (TermRef A : T->getArgs())
      NewArgs.push_back(visit(A));
    TermRef Rebuilt = rebuild(T, NewArgs);
    if (Rebuilt->getKind() == TermKind::Ite &&
        !Rebuilt->getSort()->isBool()) {
      TermRef V = TM.mkFreshVar("ite", Rebuilt->getSort());
      Defs.push_back(TM.mkImplies(Rebuilt->getArg(0),
                                  TM.mkEq(V, Rebuilt->getArg(1))));
      Defs.push_back(TM.mkImplies(TM.mkNot(Rebuilt->getArg(0)),
                                  TM.mkEq(V, Rebuilt->getArg(2))));
      return V;
    }
    return Rebuilt;
  }

  TermRef rebuild(TermRef T, std::vector<TermRef> &NewArgs) {
    switch (T->getKind()) {
    case TermKind::Not:
      return TM.mkNot(NewArgs[0]);
    case TermKind::And:
      return TM.mkAnd(std::move(NewArgs));
    case TermKind::Or:
      return TM.mkOr(std::move(NewArgs));
    case TermKind::Ite:
      return TM.mkIte(NewArgs[0], NewArgs[1], NewArgs[2]);
    case TermKind::Eq:
      return TM.mkEq(NewArgs[0], NewArgs[1]);
    case TermKind::Add:
      return TM.mkAdd(std::move(NewArgs));
    case TermKind::Mul:
      return TM.mkMulConst(NewArgs[0]->getKind() == TermKind::IntConst
                               ? Rational(NewArgs[0]->getIntValue())
                               : NewArgs[0]->getRatValue(),
                           NewArgs[1]);
    case TermKind::Le:
      return TM.mkLe(NewArgs[0], NewArgs[1]);
    case TermKind::Lt:
      return TM.mkLt(NewArgs[0], NewArgs[1]);
    case TermKind::Select:
      return TM.mkSelect(NewArgs[0], NewArgs[1]);
    case TermKind::Store:
      return TM.mkStore(NewArgs[0], NewArgs[1], NewArgs[2]);
    case TermKind::ConstArray:
      return TM.mkConstArray(T->getSort(), NewArgs[0]);
    case TermKind::MapOr:
      return TM.mkMapOr(NewArgs[0], NewArgs[1]);
    case TermKind::MapAnd:
      return TM.mkMapAnd(NewArgs[0], NewArgs[1]);
    case TermKind::MapDiff:
      return TM.mkMapDiff(NewArgs[0], NewArgs[1]);
    case TermKind::PwIte:
      return TM.mkPwIte(NewArgs[0], NewArgs[1], NewArgs[2]);
    case TermKind::Apply:
      return TM.mkApply(T->getDecl(), std::move(NewArgs));
    case TermKind::Forall:
      assert(false && "lift ites after quantifier elimination");
      return T;
    default:
      return T;
    }
  }

  TermManager &TM;
  std::unordered_map<TermRef, TermRef> Cache;
  std::vector<TermRef> Defs;
};

/// Collects every subterm of a DAG once.
void collectSubterms(TermRef T, std::unordered_set<TermRef> &Out) {
  if (!Out.insert(T).second)
    return;
  for (TermRef A : T->getArgs())
    collectSubterms(A, Out);
}

/// Marks the polarities under which each Eq-over-arrays atom occurs.
/// Bit 1 = positive, bit 2 = negative. \p NegOrderOut receives each atom
/// once, in traversal order, when it first gains the negative bit —
/// witness emission iterates it instead of the unordered map, so the
/// fresh witness variables are minted in a deterministic order.
void markPolarities(TermRef T, int Pol,
                    std::unordered_map<TermRef, int> &Out,
                    std::set<std::pair<TermRef, int>> &Seen,
                    std::vector<TermRef> &NegOrderOut) {
  if (!Seen.insert({T, Pol}).second)
    return;
  switch (T->getKind()) {
  case TermKind::Not:
    // Both-polarity stays both-polarity under negation (3 ^ 3 would
    // wrongly drop to "neither").
    markPolarities(T->getArg(0), Pol == 3 ? 3 : Pol ^ 3, Out, Seen,
                   NegOrderOut);
    return;
  case TermKind::And:
  case TermKind::Or:
    for (TermRef A : T->getArgs())
      markPolarities(A, Pol, Out, Seen, NegOrderOut);
    return;
  case TermKind::Ite:
    // Boolean ite only (non-boolean are lifted). Condition sees both
    // polarities, the branches keep the current one.
    markPolarities(T->getArg(0), 3, Out, Seen, NegOrderOut);
    markPolarities(T->getArg(1), Pol, Out, Seen, NegOrderOut);
    markPolarities(T->getArg(2), Pol, Out, Seen, NegOrderOut);
    return;
  case TermKind::Eq:
    if (T->getArg(0)->getSort()->isBool()) {
      // Iff: sub-atoms occur in both polarities.
      markPolarities(T->getArg(0), 3, Out, Seen, NegOrderOut);
      markPolarities(T->getArg(1), 3, Out, Seen, NegOrderOut);
      return;
    }
    if (T->getArg(0)->getSort()->isArray()) {
      if ((Pol & 2) && !(Out[T] & 2))
        NegOrderOut.push_back(T);
      Out[T] |= Pol;
    }
    return;
  default:
    return;
  }
}

bool isCompositeArray(TermRef T) {
  switch (T->getKind()) {
  case TermKind::Store:
  case TermKind::ConstArray:
  case TermKind::MapOr:
  case TermKind::MapAnd:
  case TermKind::MapDiff:
  case TermKind::PwIte:
    return true;
  default:
    return false;
  }
}
} // namespace

TermRef smt::liftItes(TermManager &TM, TermRef Formula) {
  IteLifter L(TM);
  return L.run(Formula);
}

TermRef smt::reduceArrays(TermManager &TM, TermRef Formula,
                          ArrayReductionStats *Stats, bool Eager) {
  std::vector<TermRef> Lemmas;

  // Step 1: witnesses for array equalities that occur negatively.
  {
    std::unordered_map<TermRef, int> Polarities;
    std::set<std::pair<TermRef, int>> Seen;
    std::vector<TermRef> NegEqs;
    markPolarities(Formula, 1, Polarities, Seen, NegEqs);
    for (TermRef EqTerm : NegEqs) {
      TermRef A = EqTerm->getArg(0), B = EqTerm->getArg(1);
      TermRef W = TM.mkFreshVar("extw", A->getSort()->getKey());
      // a == b  \/  a[w] != b[w]
      Lemmas.push_back(TM.mkOr(
          EqTerm, TM.mkNot(TM.mkEq(TM.mkSelect(A, W), TM.mkSelect(B, W)))));
      if (Stats)
        ++Stats->NumWitnesses;
    }
  }

  // Step 2: gather array terms and index terms (from the formula and the
  // witness lemmas). Iteration over the unordered subterm set is made
  // deterministic by sorting on term ids — lemma instantiation order
  // must not depend on pointer hashing, or budgeted runs flake.
  std::unordered_set<TermRef> AllSet;
  collectSubterms(Formula, AllSet);
  for (TermRef L : Lemmas)
    collectSubterms(L, AllSet);
  std::vector<TermRef> All(AllSet.begin(), AllSet.end());
  std::sort(All.begin(), All.end(),
            [](TermRef A, TermRef B) { return A->getId() < B->getId(); });

  // Relevancy-driven instantiation (replaces blind per-sort or
  // per-component products): a read-over-composite axiom for (A, I) is
  // needed only when some select actually demands A at I. Demands seed
  // from every select in the formula/witness lemmas and propagate
  //   - down through structure: peeling a store demands its base, the
  //     pointwise combinators demand their operands (and the pwIte its
  //     guard), each at the same index, exactly mirroring the select
  //     terms their axioms introduce, and
  //   - across array equality atoms: congruence makes select(B, I)
  //     relevant whenever A == B occurs and select(A, I) is demanded.
  // The demand closure is a unique fixpoint, so the emitted lemma SET is
  // deterministic (emission iterates it in term-id order). Demanding
  // fewer pairs than the old blind product can only under-approximate
  // toward Sat, and Sat answers are validated against the original
  // formula by the model evaluator — failures surface as Unknown, never
  // as a wrong verdict; the pipeline differential fuzzer and the
  // e2e-nopipe suite guard exactly this.
  std::map<const Sort *, std::vector<TermRef>> IndexTerms;
  {
    std::set<std::pair<const Sort *, TermRef>> IndexSeen;
    unsigned NumArrayTerms = 0;
    for (TermRef T : All) {
      if (T->getSort()->isArray())
        ++NumArrayTerms;
      if (T->getKind() == TermKind::Select ||
          T->getKind() == TermKind::Store) {
        TermRef Index = T->getArg(1);
        const Sort *KeySort = T->getArg(0)->getSort()->getKey();
        if (IndexSeen.insert({KeySort, Index}).second)
          IndexTerms[KeySort].push_back(Index);
      }
    }
    if (Stats) {
      Stats->NumArrayTerms = NumArrayTerms;
      for (const auto &[S, V] : IndexTerms)
        Stats->NumIndexTerms += static_cast<unsigned>(V.size());
    }
  }

  std::unordered_map<TermRef, std::vector<TermRef>> EqAdj;
  for (TermRef T : All)
    if (T->getKind() == TermKind::Eq && T->getArg(0)->getSort()->isArray()) {
      EqAdj[T->getArg(0)].push_back(T->getArg(1));
      EqAdj[T->getArg(1)].push_back(T->getArg(0));
    }

  // Upward demand edges. An array equality pins the VALUE of its sides,
  // so an index demanded anywhere below a side (on an operand of its
  // combinator tree) must also be demanded on the enclosing combinators
  // — `mapAnd(single, S2) == empty` with `x in S2` asserted needs the
  // mapAnd instantiated at x, although no select reads the mapAnd there.
  // Restricting the upward flow to the operand closure of equality-atom
  // sides keeps it from degenerating into the blind product.
  std::unordered_map<TermRef, std::vector<TermRef>> UpEdges;
  {
    std::unordered_set<TermRef> UpSet;
    std::vector<TermRef> UpWork;
    auto MarkUp = [&](TermRef T) {
      if (T->getSort()->isArray() && UpSet.insert(T).second)
        UpWork.push_back(T);
    };
    for (TermRef T : All)
      if (T->getKind() == TermKind::Eq &&
          T->getArg(0)->getSort()->isArray()) {
        MarkUp(T->getArg(0));
        MarkUp(T->getArg(1));
      }
    while (!UpWork.empty()) {
      TermRef C = UpWork.back();
      UpWork.pop_back();
      switch (C->getKind()) {
      case TermKind::Store:
      case TermKind::MapOr:
      case TermKind::MapAnd:
      case TermKind::MapDiff:
      case TermKind::PwIte:
        for (TermRef O : C->getArgs())
          if (O->getSort()->isArray()) {
            UpEdges[O].push_back(C);
            MarkUp(O);
          }
        break;
      default:
        break;
      }
    }
  }

  std::set<std::pair<TermRef, TermRef>> Need; // (array term, index)
  std::vector<std::pair<TermRef, TermRef>> NeedWork;
  auto Demand = [&](TermRef A, TermRef I) {
    if (!A->getSort()->isArray() || A->getSort()->getKey() != I->getSort())
      return;
    if (Need.insert({A, I}).second)
      NeedWork.push_back({A, I});
  };
  for (TermRef T : All)
    if (T->getKind() == TermKind::Select)
      Demand(T->getArg(0), T->getArg(1));
  if (Eager) {
    // Blind product: every array term is demanded at every index term of
    // its key sort (the demand closure below then only adds more).
    for (TermRef T : All) {
      if (!T->getSort()->isArray())
        continue;
      auto It = IndexTerms.find(T->getSort()->getKey());
      if (It == IndexTerms.end())
        continue;
      for (TermRef I : It->second)
        Demand(T, I);
    }
  }
  while (!NeedWork.empty()) {
    auto [A, I] = NeedWork.back();
    NeedWork.pop_back();
    switch (A->getKind()) {
    case TermKind::Store:
      Demand(A->getArg(0), I);
      break;
    case TermKind::MapOr:
    case TermKind::MapAnd:
    case TermKind::MapDiff:
      Demand(A->getArg(0), I);
      Demand(A->getArg(1), I);
      break;
    case TermKind::PwIte:
      Demand(A->getArg(0), I);
      Demand(A->getArg(1), I);
      Demand(A->getArg(2), I);
      break;
    default:
      break;
    }
    auto AdjIt = EqAdj.find(A);
    if (AdjIt != EqAdj.end())
      for (TermRef B : AdjIt->second)
        Demand(B, I);
    auto UpIt = UpEdges.find(A);
    if (UpIt != UpEdges.end())
      for (TermRef C : UpIt->second)
        Demand(C, I);
  }

  // Per-array demanded index lists (term-id order) for the equality step.
  std::unordered_map<TermRef, std::vector<TermRef>> DemandedIndices;
  {
    std::vector<std::pair<TermRef, TermRef>> Ordered(Need.begin(),
                                                     Need.end());
    std::sort(Ordered.begin(), Ordered.end(),
              [](const auto &L, const auto &R) {
                return std::make_pair(L.first->getId(), L.second->getId()) <
                       std::make_pair(R.first->getId(), R.second->getId());
              });
    for (const auto &[A, I] : Ordered)
      DemandedIndices[A].push_back(I);

    // Step 3: read-over-composite axioms for every demanded pair.
    for (const auto &[A, I] : Ordered) {
      if (!isCompositeArray(A))
        continue;
      TermRef SelAI = TM.mkSelect(A, I);
      switch (A->getKind()) {
      case TermKind::Store: {
        TermRef Base = A->getArg(0), J = A->getArg(1), V = A->getArg(2);
        TermRef Same = TM.mkEq(I, J);
        Lemmas.push_back(TM.mkImplies(Same, TM.mkEq(SelAI, V)));
        Lemmas.push_back(
            TM.mkImplies(TM.mkNot(Same),
                         TM.mkEq(SelAI, TM.mkSelect(Base, I))));
        break;
      }
      case TermKind::ConstArray:
        Lemmas.push_back(TM.mkEq(SelAI, A->getArg(0)));
        break;
      case TermKind::MapOr:
        Lemmas.push_back(TM.mkEq(
            SelAI, TM.mkOr(TM.mkSelect(A->getArg(0), I),
                           TM.mkSelect(A->getArg(1), I))));
        break;
      case TermKind::MapAnd:
        Lemmas.push_back(TM.mkEq(
            SelAI, TM.mkAnd(TM.mkSelect(A->getArg(0), I),
                            TM.mkSelect(A->getArg(1), I))));
        break;
      case TermKind::MapDiff:
        Lemmas.push_back(TM.mkEq(
            SelAI,
            TM.mkAnd(TM.mkSelect(A->getArg(0), I),
                     TM.mkNot(TM.mkSelect(A->getArg(1), I)))));
        break;
      case TermKind::PwIte: {
        TermRef Guard = TM.mkSelect(A->getArg(0), I);
        Lemmas.push_back(TM.mkImplies(
            Guard, TM.mkEq(SelAI, TM.mkSelect(A->getArg(1), I))));
        Lemmas.push_back(TM.mkImplies(
            TM.mkNot(Guard), TM.mkEq(SelAI, TM.mkSelect(A->getArg(2), I))));
        break;
      }
      default:
        break;
      }
    }
  }

  // Step 4: read-over-equality. When an array equality atom is asserted,
  // congruence alone cannot connect `select(A, i)` with the semantics of a
  // composite right-hand side whose select folds at construction (constant
  // arrays, store at the same index). Instantiate
  //     Eq(A,B) => select(A,i) == select(B,i)
  // for every array-equality atom and the relevant (demanded) indices.
  // New equalities between nested (set-valued) selects are processed
  // transitively; the loop terminates because sort nesting is finite.
  {
    std::set<TermRef> EqAtoms;
    std::vector<TermRef> Work;
    auto ConsiderEq = [&](TermRef T) {
      if (T->getKind() == TermKind::Eq &&
          T->getArg(0)->getSort()->isArray() && EqAtoms.insert(T).second)
        Work.push_back(T);
    };
    for (TermRef T : All)
      ConsiderEq(T);
    while (!Work.empty()) {
      TermRef EqT = Work.back();
      Work.pop_back();
      TermRef A = EqT->getArg(0), B = EqT->getArg(1);
      // Only selects that FOLD at construction need this: const arrays
      // (every index folds) and stores (their own index folds). Selects
      // over the other combinators materialise as terms, so the merged
      // equivalence class already carries their constraints.
      auto Emit = [&](TermRef I) {
        TermRef SelEq = TM.mkEq(TM.mkSelect(A, I), TM.mkSelect(B, I));
        if (SelEq == TM.mkTrue())
          return;
        Lemmas.push_back(TM.mkImplies(EqT, SelEq));
        ConsiderEq(SelEq);
      };
      bool ConstInvolved = A->getKind() == TermKind::ConstArray ||
                           B->getKind() == TermKind::ConstArray;
      if (ConstInvolved) {
        // Indices demanded on the non-constant side (constant arrays
        // deliberately carry no demands of their own).
        TermRef NonConst = A->getKind() == TermKind::ConstArray ? B : A;
        auto It = DemandedIndices.find(NonConst);
        if (It != DemandedIndices.end())
          for (TermRef I : It->second)
            Emit(I);
        continue;
      }
      for (TermRef Side : {A, B})
        if (Side->getKind() == TermKind::Store)
          Emit(Side->getArg(1));
    }
  }

  if (Stats)
    Stats->NumLemmas = static_cast<unsigned>(Lemmas.size());
  if (Lemmas.empty())
    return Formula;
  Lemmas.push_back(Formula);
  return TM.mkAnd(std::move(Lemmas));
}

//===----------------------------------------------------------------------===//
// ArrayReducer: incremental, level-aware demand closure.
//===----------------------------------------------------------------------===//

void ArrayReducer::collectNewSubterms(TermRef T, std::vector<TermRef> &Out) {
  if (!KnownTerms.insert(T).second)
    return;
  Trail.push_back({Undo::KnownTerm, T});
  Out.push_back(T);
  for (TermRef A : T->getArgs())
    collectNewSubterms(A, Out);
}

void ArrayReducer::demand(TermRef A, TermRef I, bool Seed) {
  if (!A->getSort()->isArray() || A->getSort()->getKey() != I->getSort())
    return;
  if (!Need.insert({A, I}).second)
    return;
  Trail.push_back({Undo::NeedAdd, A, I});
  DemandedIndices[A].push_back(I);
  Work.push_back({A, I, Seed});
}

void ArrayReducer::markUp(TermRef T) {
  if (!T->getSort()->isArray() || !UpSet.insert(T).second)
    return;
  Trail.push_back({Undo::UpSetAdd, T});
  switch (T->getKind()) {
  case TermKind::Store:
  case TermKind::MapOr:
  case TermKind::MapAnd:
  case TermKind::MapDiff:
  case TermKind::PwIte:
    for (TermRef O : T->getArgs())
      if (O->getSort()->isArray()) {
        UpEdges[O].push_back(T);
        Trail.push_back({Undo::UpEdgePush, O});
        // A new upward edge must carry the operand's existing demands.
        auto It = DemandedIndices.find(O);
        if (It != DemandedIndices.end()) {
          std::vector<TermRef> Existing = It->second;
          for (TermRef I : Existing)
            demand(T, I);
        }
        markUp(O);
      }
    break;
  default:
    break;
  }
}

void ArrayReducer::emitLemma(TermRef L, bool Defer) {
  if (!EmittedLemmas.insert(L).second)
    return;
  if (Defer) {
    Trail.push_back({Undo::PendingAdd, L});
    Pending.push_back(L);
    return;
  }
  Trail.push_back({Undo::LemmaAdd, L});
  NewLemmas.push_back(L);
  ++Stats.NumLemmas;
}

void ArrayReducer::markActivated(TermRef L) {
  if (!Activated.insert(L).second)
    return;
  Trail.push_back({Undo::ActivatedAdd, L});
  ++Stats.NumLemmas;
}

void ArrayReducer::emitReadOverComposite(TermRef A, TermRef I, bool Defer) {
  TermRef SelAI = TM.mkSelect(A, I);
  switch (A->getKind()) {
  case TermKind::Store: {
    TermRef Base = A->getArg(0), J = A->getArg(1), V = A->getArg(2);
    TermRef Same = TM.mkEq(I, J);
    emitLemma(TM.mkImplies(Same, TM.mkEq(SelAI, V)), Defer);
    emitLemma(TM.mkImplies(TM.mkNot(Same),
                           TM.mkEq(SelAI, TM.mkSelect(Base, I))),
              Defer);
    break;
  }
  case TermKind::ConstArray:
    emitLemma(TM.mkEq(SelAI, A->getArg(0)), Defer);
    break;
  case TermKind::MapOr:
    emitLemma(TM.mkEq(SelAI, TM.mkOr(TM.mkSelect(A->getArg(0), I),
                                     TM.mkSelect(A->getArg(1), I))),
              Defer);
    break;
  case TermKind::MapAnd:
    emitLemma(TM.mkEq(SelAI, TM.mkAnd(TM.mkSelect(A->getArg(0), I),
                                      TM.mkSelect(A->getArg(1), I))),
              Defer);
    break;
  case TermKind::MapDiff:
    emitLemma(TM.mkEq(SelAI,
                      TM.mkAnd(TM.mkSelect(A->getArg(0), I),
                               TM.mkNot(TM.mkSelect(A->getArg(1), I)))),
              Defer);
    break;
  case TermKind::PwIte: {
    TermRef Guard = TM.mkSelect(A->getArg(0), I);
    emitLemma(TM.mkImplies(Guard,
                           TM.mkEq(SelAI, TM.mkSelect(A->getArg(1), I))),
              Defer);
    emitLemma(TM.mkImplies(TM.mkNot(Guard),
                           TM.mkEq(SelAI, TM.mkSelect(A->getArg(2), I))),
              Defer);
    break;
  }
  default:
    break;
  }
}

void ArrayReducer::emitEqLemma(TermRef EqT, TermRef I) {
  TermRef A = EqT->getArg(0), B = EqT->getArg(1);
  TermRef SelEq = TM.mkEq(TM.mkSelect(A, I), TM.mkSelect(B, I));
  if (SelEq == TM.mkTrue())
    return;
  // Read-over-equality lemmas are never select-rooted; in lazy mode they
  // all wait for an in-search violation.
  emitLemma(TM.mkImplies(EqT, SelEq), lazy());
  // Equalities between nested (set-valued) selects chain transitively;
  // sort nesting is finite, so this terminates.
  if (SelEq->getKind() == TermKind::Eq &&
      SelEq->getArg(0)->getSort()->isArray())
    considerEqAtom(SelEq);
}

void ArrayReducer::considerEqAtom(TermRef EqT) {
  if (!EqAtoms.insert(EqT).second)
    return;
  Trail.push_back({Undo::EqAtomAdd, EqT});
  TermRef A = EqT->getArg(0), B = EqT->getArg(1);
  // Only selects that FOLD at construction need read-over-equality: const
  // arrays (every index folds) and stores (their own index folds). Selects
  // over the other combinators materialise as terms, so the merged
  // equivalence class already carries their constraints.
  bool ConstInvolved = A->getKind() == TermKind::ConstArray ||
                       B->getKind() == TermKind::ConstArray;
  if (ConstInvolved) {
    TermRef NonConst = A->getKind() == TermKind::ConstArray ? B : A;
    ConstEqIndex[NonConst].push_back(EqT);
    Trail.push_back({Undo::ConstEqPush, NonConst});
    auto It = DemandedIndices.find(NonConst);
    if (It != DemandedIndices.end()) {
      std::vector<TermRef> Existing = It->second;
      for (TermRef I : Existing)
        emitEqLemma(EqT, I);
    }
    return;
  }
  for (TermRef Side : {A, B})
    if (Side->getKind() == TermKind::Store)
      emitEqLemma(EqT, Side->getArg(1));
}

void ArrayReducer::processWork() {
  while (!Work.empty()) {
    auto [A, I, Seed] = Work.back();
    Work.pop_back();
    switch (A->getKind()) {
    case TermKind::Store:
      demand(A->getArg(0), I);
      break;
    case TermKind::MapOr:
    case TermKind::MapAnd:
    case TermKind::MapDiff:
      demand(A->getArg(0), I);
      demand(A->getArg(1), I);
      break;
    case TermKind::PwIte:
      demand(A->getArg(0), I);
      demand(A->getArg(1), I);
      demand(A->getArg(2), I);
      break;
    default:
      break;
    }
    if (auto It = EqAdj.find(A); It != EqAdj.end()) {
      std::vector<TermRef> Adj = It->second;
      for (TermRef B : Adj)
        demand(B, I);
    }
    if (auto It = UpEdges.find(A); It != UpEdges.end()) {
      std::vector<TermRef> Ups = It->second;
      for (TermRef Up : Ups)
        demand(Up, I);
    }
    if (isCompositeArray(A))
      emitReadOverComposite(A, I, /*Defer=*/lazy() && !Seed);
    if (auto It = ConstEqIndex.find(A); It != ConstEqIndex.end()) {
      std::vector<TermRef> Eqs = It->second;
      for (TermRef EqT : Eqs)
        emitEqLemma(EqT, I);
    }
  }
}

std::vector<TermRef> ArrayReducer::assertFormula(TermRef F) {
  assert(Work.empty() && "reentrant assertFormula");
  NewLemmas.clear();
  std::vector<TermRef> Inputs;
  collectNewSubterms(F, Inputs);

  // Extensionality witnesses for array equalities occurring negatively
  // (once per equality per active level; popped witnesses re-emit with a
  // fresh witness variable on re-assertion).
  {
    std::unordered_map<TermRef, int> Polarities;
    std::set<std::pair<TermRef, int>> Seen;
    std::vector<TermRef> NegEqs;
    markPolarities(F, 1, Polarities, Seen, NegEqs);
    for (TermRef EqTerm : NegEqs) {
      if (!WitnessedNegEqs.insert(EqTerm).second)
        continue;
      Trail.push_back({Undo::WitnessAdd, EqTerm});
      TermRef A = EqTerm->getArg(0), B = EqTerm->getArg(1);
      TermRef W = TM.mkFreshVar("extw", A->getSort()->getKey());
      // a == b  \/  a[w] != b[w]
      TermRef L = TM.mkOr(
          EqTerm, TM.mkNot(TM.mkEq(TM.mkSelect(A, W), TM.mkSelect(B, W))));
      ++Stats.NumWitnesses;
      NewLemmas.push_back(L);
      // The witness lemma's selects seed demands like any input term.
      collectNewSubterms(L, Inputs);
    }
  }

  for (TermRef T : Inputs) {
    const Sort *S = T->getSort();
    if (S->isArray()) {
      ++Stats.NumArrayTerms;
      if (eager()) {
        ArrayTermsBySort[S->getKey()].push_back(T);
        Trail.push_back({Undo::ArrayTerm, T, nullptr, S->getKey()});
        auto It = IndexTermsBySort.find(S->getKey());
        if (It != IndexTermsBySort.end()) {
          std::vector<TermRef> Idx = It->second;
          for (TermRef I : Idx)
            demand(T, I);
        }
      }
    }
    if (T->getKind() == TermKind::Select || T->getKind() == TermKind::Store) {
      TermRef Index = T->getArg(1);
      const Sort *KeySort = T->getArg(0)->getSort()->getKey();
      if (IndexSeen.insert({KeySort, Index}).second) {
        Trail.push_back({Undo::IndexTerm, Index, nullptr, KeySort});
        IndexTermsBySort[KeySort].push_back(Index);
        ++Stats.NumIndexTerms;
        if (eager()) {
          auto It = ArrayTermsBySort.find(KeySort);
          if (It != ArrayTermsBySort.end()) {
            std::vector<TermRef> Arrays = It->second;
            for (TermRef A : Arrays)
              demand(A, Index);
          }
        }
      }
    }
    if (T->getKind() == TermKind::Select)
      // Select-rooted demands are the seeds: in lazy mode only these
      // instantiate up front, everything the closure derives from them
      // is parked as pending.
      demand(T->getArg(0), T->getArg(1), /*Seed=*/true);
    if (T->getKind() == TermKind::Eq && T->getArg(0)->getSort()->isArray()) {
      TermRef A = T->getArg(0), B = T->getArg(1);
      EqAdj[A].push_back(B);
      Trail.push_back({Undo::EqAdjPush, A});
      EqAdj[B].push_back(A);
      Trail.push_back({Undo::EqAdjPush, B});
      // A new equality edge carries existing demands across.
      for (TermRef Side : {A, B}) {
        TermRef Other = Side == A ? B : A;
        auto It = DemandedIndices.find(Side);
        if (It != DemandedIndices.end()) {
          std::vector<TermRef> Idx = It->second;
          for (TermRef I : Idx)
            demand(Other, I);
        }
      }
      markUp(A);
      markUp(B);
      considerEqAtom(T);
    }
  }
  processWork();
  return std::move(NewLemmas);
}

void ArrayReducer::push() {
  assert(Work.empty() && "push mid-assertion");
  Levels.push_back(Trail.size());
}

void ArrayReducer::pop() {
  assert(!Levels.empty() && "pop without matching push");
  size_t Mark = Levels.back();
  Levels.pop_back();
  while (Trail.size() > Mark) {
    Undo U = Trail.back();
    Trail.pop_back();
    switch (U.K) {
    case Undo::KnownTerm:
      KnownTerms.erase(U.A);
      break;
    case Undo::IndexTerm:
      IndexSeen.erase({U.S, U.A});
      IndexTermsBySort[U.S].pop_back();
      break;
    case Undo::ArrayTerm:
      ArrayTermsBySort[U.S].pop_back();
      break;
    case Undo::EqAdjPush:
      EqAdj[U.A].pop_back();
      break;
    case Undo::UpEdgePush:
      UpEdges[U.A].pop_back();
      break;
    case Undo::UpSetAdd:
      UpSet.erase(U.A);
      break;
    case Undo::NeedAdd:
      Need.erase({U.A, U.B});
      DemandedIndices[U.A].pop_back();
      break;
    case Undo::EqAtomAdd:
      EqAtoms.erase(U.A);
      break;
    case Undo::ConstEqPush:
      ConstEqIndex[U.A].pop_back();
      break;
    case Undo::WitnessAdd:
      WitnessedNegEqs.erase(U.A);
      break;
    case Undo::LemmaAdd:
      EmittedLemmas.erase(U.A);
      break;
    case Undo::PendingAdd:
      EmittedLemmas.erase(U.A);
      Pending.pop_back();
      break;
    case Undo::ActivatedAdd:
      Activated.erase(U.A);
      break;
    }
  }
}
