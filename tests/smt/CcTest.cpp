//===- tests/smt/CcTest.cpp - Congruence closure tests ---------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "smt/CongruenceClosure.h"

#include <gtest/gtest.h>

#include <random>

using namespace ids;
using namespace ids::smt;

namespace {
class CcTest : public ::testing::Test {
protected:
  TermManager TM;

  TermRef loc(const std::string &N) { return TM.mkVar(N, TM.locSort()); }
  TermRef f(TermRef X) {
    const FuncDecl *D =
        TM.getFuncDecl("f", {TM.locSort()}, TM.locSort());
    return TM.mkApply(D, {X});
  }
};
} // namespace

TEST_F(CcTest, TransitivityAndSymmetry) {
  CongruenceClosure CC(TM);
  TermRef A = loc("a"), B = loc("b"), C = loc("c");
  EXPECT_TRUE(CC.assertEqual(A, B, 0));
  EXPECT_TRUE(CC.assertEqual(B, C, 1));
  EXPECT_TRUE(CC.areEqual(A, C));
  EXPECT_TRUE(CC.areEqual(C, A));
}

TEST_F(CcTest, CongruenceOneStep) {
  CongruenceClosure CC(TM);
  TermRef A = loc("a"), B = loc("b");
  CC.registerTerm(f(A));
  CC.registerTerm(f(B));
  EXPECT_FALSE(CC.areEqual(f(A), f(B)));
  EXPECT_TRUE(CC.assertEqual(A, B, 0));
  EXPECT_TRUE(CC.areEqual(f(A), f(B)));
}

TEST_F(CcTest, CongruenceChain) {
  // Classic: a=b implies f^n(a) = f^n(b).
  CongruenceClosure CC(TM);
  TermRef A = loc("a"), B = loc("b");
  TermRef FA = A, FB = B;
  for (int I = 0; I < 10; ++I) {
    FA = f(FA);
    FB = f(FB);
  }
  CC.registerTerm(FA);
  CC.registerTerm(FB);
  EXPECT_TRUE(CC.assertEqual(A, B, 0));
  EXPECT_TRUE(CC.areEqual(FA, FB));
}

TEST_F(CcTest, DisequalityConflict) {
  CongruenceClosure CC(TM);
  TermRef A = loc("a"), B = loc("b"), C = loc("c");
  EXPECT_TRUE(CC.assertDisequal(A, C, 7));
  EXPECT_TRUE(CC.assertEqual(A, B, 1));
  EXPECT_FALSE(CC.assertEqual(B, C, 2));
  EXPECT_TRUE(CC.inConflict());
  // Explanation: all three assertions participate.
  std::vector<int> Tags = CC.conflictTags();
  EXPECT_EQ(Tags.size(), 3u);
}

TEST_F(CcTest, ValueClashIntConstants) {
  CongruenceClosure CC(TM);
  TermRef X = TM.mkVar("x", TM.intSort());
  EXPECT_TRUE(CC.assertEqual(X, TM.mkIntConst(1), 0));
  EXPECT_FALSE(CC.assertEqual(X, TM.mkIntConst(2), 1));
  EXPECT_TRUE(CC.inConflict());
}

TEST_F(CcTest, TrueFalseClash) {
  CongruenceClosure CC(TM);
  TermRef P = TM.mkVar("p", TM.boolSort());
  EXPECT_TRUE(CC.assertEqual(P, TM.mkTrue(), 0));
  EXPECT_FALSE(CC.assertEqual(P, TM.mkFalse(), 1));
}

TEST_F(CcTest, ExplanationMinimality) {
  CongruenceClosure CC(TM);
  TermRef A = loc("a"), B = loc("b"), C = loc("c"), D = loc("d");
  CC.assertEqual(A, B, 0);
  CC.assertEqual(C, D, 1); // irrelevant to a=b
  std::set<int> Tags;
  CC.explainEquality(A, B, Tags);
  EXPECT_EQ(Tags, std::set<int>({0}));
}

TEST_F(CcTest, CongruenceExplanationIncludesChildren) {
  CongruenceClosure CC(TM);
  TermRef A = loc("a"), B = loc("b");
  CC.registerTerm(f(A));
  CC.registerTerm(f(B));
  CC.assertEqual(A, B, 3);
  std::set<int> Tags;
  CC.explainEquality(f(A), f(B), Tags);
  EXPECT_EQ(Tags, std::set<int>({3}));
}

TEST_F(CcTest, SelectCongruence) {
  // select(M, x) == select(M, y) when x == y: the reasoning the array
  // reduction relies on.
  CongruenceClosure CC(TM);
  const Sort *ArrS = TM.getArraySort(TM.locSort(), TM.intSort());
  TermRef M = TM.mkVar("M", ArrS);
  TermRef X = loc("x"), Y = loc("y");
  TermRef SX = TM.mkSelect(M, X), SY = TM.mkSelect(M, Y);
  CC.registerTerm(SX);
  CC.registerTerm(SY);
  CC.assertEqual(X, Y, 0);
  EXPECT_TRUE(CC.areEqual(SX, SY));
}

/// Property test: random equalities on a small universe agree with a
/// naive union-find oracle (no congruence, constants only).
TEST_F(CcTest, PropertyRandomEqualitiesVsUnionFind) {
  std::mt19937 Rng(31337);
  for (int Iter = 0; Iter < 200; ++Iter) {
    const int N = 8;
    std::vector<TermRef> Terms;
    for (int I = 0; I < N; ++I)
      Terms.push_back(loc("v" + std::to_string(Iter) + "_" +
                          std::to_string(I)));
    std::vector<int> Parent(N);
    for (int I = 0; I < N; ++I)
      Parent[I] = I;
    std::function<int(int)> Find = [&](int X) {
      return Parent[X] == X ? X : Parent[X] = Find(Parent[X]);
    };
    CongruenceClosure CC(TM);
    for (int Step = 0; Step < 12; ++Step) {
      int A = static_cast<int>(Rng() % N), B = static_cast<int>(Rng() % N);
      ASSERT_TRUE(CC.assertEqual(Terms[A], Terms[B], Step));
      Parent[Find(A)] = Find(B);
    }
    for (int A = 0; A < N; ++A)
      for (int B = 0; B < N; ++B)
        EXPECT_EQ(CC.areEqual(Terms[A], Terms[B]), Find(A) == Find(B));
  }
}
