//===- pipeline/Slice.cpp - Cone-of-influence obligation slicing -----------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Slice.h"

#include <unordered_map>
#include <unordered_set>

using namespace ids;
using namespace ids::pipeline;
using namespace ids::smt;

namespace {

/// A symbol is a free variable (the Var term, interned so pointer
/// identity works) or an uninterpreted function declaration.
using Symbol = const void *;

void collectSymbols(TermRef T, std::unordered_set<Symbol> &Out) {
  std::vector<TermRef> Work = {T};
  std::unordered_set<TermRef> Seen;
  while (!Work.empty()) {
    TermRef Cur = Work.back();
    Work.pop_back();
    if (!Seen.insert(Cur).second)
      continue;
    if (Cur->getKind() == TermKind::Var)
      Out.insert(Cur);
    else if (Cur->getKind() == TermKind::Apply)
      Out.insert(Cur->getDecl());
    for (TermRef Arg : Cur->getArgs())
      Work.push_back(Arg);
  }
}

} // namespace

std::vector<TermRef>
pipeline::sliceGuard(const std::vector<TermRef> &Conjuncts, TermRef Claim,
                     SliceStats *St) {
  std::unordered_set<Symbol> Relevant;
  collectSymbols(Claim, Relevant);
  if (Relevant.empty()) {
    // Constant claim: every conjunct matters (the obligation reduces to
    // guard infeasibility).
    if (St)
      St->ConjunctsKept += static_cast<unsigned>(Conjuncts.size());
    return Conjuncts;
  }

  std::vector<std::unordered_set<Symbol>> SymsOf(Conjuncts.size());
  std::unordered_map<Symbol, std::vector<size_t>> Occurrences;
  for (size_t I = 0; I < Conjuncts.size(); ++I) {
    collectSymbols(Conjuncts[I], SymsOf[I]);
    for (Symbol S : SymsOf[I])
      Occurrences[S].push_back(I);
  }

  // Fixpoint: keep any conjunct sharing a symbol with the relevant set;
  // kept conjuncts contribute their symbols.
  std::vector<bool> Kept(Conjuncts.size(), false);
  std::vector<Symbol> Work(Relevant.begin(), Relevant.end());
  while (!Work.empty()) {
    Symbol S = Work.back();
    Work.pop_back();
    auto It = Occurrences.find(S);
    if (It == Occurrences.end())
      continue;
    for (size_t I : It->second) {
      if (Kept[I])
        continue;
      Kept[I] = true;
      for (Symbol NS : SymsOf[I])
        if (Relevant.insert(NS).second)
          Work.push_back(NS);
    }
  }

  std::vector<TermRef> Result;
  Result.reserve(Conjuncts.size());
  for (size_t I = 0; I < Conjuncts.size(); ++I)
    if (Kept[I])
      Result.push_back(Conjuncts[I]);
  if (St) {
    St->ConjunctsKept += static_cast<unsigned>(Result.size());
    St->ConjunctsDropped +=
        static_cast<unsigned>(Conjuncts.size() - Result.size());
  }
  return Result;
}
