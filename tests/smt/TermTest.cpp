//===- tests/smt/TermTest.cpp - Term manager tests -------------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "smt/Term.h"
#include "smt/TermPrinter.h"

#include <gtest/gtest.h>

using namespace ids;
using namespace ids::smt;

namespace {
class TermTest : public ::testing::Test {
protected:
  TermManager TM;
};
} // namespace

TEST_F(TermTest, HashConsingSharesStructure) {
  TermRef X = TM.mkVar("x", TM.intSort());
  TermRef Y = TM.mkVar("y", TM.intSort());
  EXPECT_EQ(TM.mkAdd(X, Y), TM.mkAdd(Y, X)); // canonical ordering
  EXPECT_EQ(TM.mkEq(X, Y), TM.mkEq(Y, X));
  EXPECT_EQ(TM.mkVar("x", TM.intSort()), X);
}

TEST_F(TermTest, BooleanSimplification) {
  TermRef P = TM.mkVar("p", TM.boolSort());
  EXPECT_EQ(TM.mkNot(TM.mkNot(P)), P);
  EXPECT_EQ(TM.mkAnd(P, TM.mkTrue()), P);
  EXPECT_EQ(TM.mkAnd(P, TM.mkFalse()), TM.mkFalse());
  EXPECT_EQ(TM.mkOr(P, TM.mkTrue()), TM.mkTrue());
  EXPECT_EQ(TM.mkOr(P, P), P);
  EXPECT_EQ(TM.mkImplies(TM.mkFalse(), P), TM.mkTrue());
  EXPECT_EQ(TM.mkIte(TM.mkTrue(), P, TM.mkFalse()), P);
}

TEST_F(TermTest, AndFlattening) {
  TermRef P = TM.mkVar("p", TM.boolSort());
  TermRef Q = TM.mkVar("q", TM.boolSort());
  TermRef R = TM.mkVar("r", TM.boolSort());
  TermRef Nested = TM.mkAnd(P, TM.mkAnd(Q, R));
  EXPECT_EQ(Nested->getKind(), TermKind::And);
  EXPECT_EQ(Nested->getNumArgs(), 3u);
}

TEST_F(TermTest, ArithmeticFolding) {
  TermRef X = TM.mkVar("x", TM.intSort());
  EXPECT_EQ(TM.mkAdd(TM.mkIntConst(2), TM.mkIntConst(3)), TM.mkIntConst(5));
  EXPECT_EQ(TM.mkMulConst(Rational(0), X), TM.mkIntConst(0));
  EXPECT_EQ(TM.mkMulConst(Rational(1), X), X);
  EXPECT_EQ(TM.mkSub(X, X), TM.mkIntConst(0));
  EXPECT_EQ(TM.mkLe(TM.mkIntConst(1), TM.mkIntConst(2)), TM.mkTrue());
  EXPECT_EQ(TM.mkLt(TM.mkIntConst(2), TM.mkIntConst(2)), TM.mkFalse());
  // -( -x ) == x through nested Mul folding
  EXPECT_EQ(TM.mkNeg(TM.mkNeg(X)), X);
}

TEST_F(TermTest, EqualityFolding) {
  TermRef X = TM.mkVar("x", TM.intSort());
  EXPECT_EQ(TM.mkEq(X, X), TM.mkTrue());
  EXPECT_EQ(TM.mkEq(TM.mkIntConst(1), TM.mkIntConst(2)), TM.mkFalse());
  TermRef P = TM.mkVar("p", TM.boolSort());
  EXPECT_EQ(TM.mkEq(P, TM.mkTrue()), P);
  EXPECT_EQ(TM.mkEq(P, TM.mkFalse()), TM.mkNot(P));
}

TEST_F(TermTest, SelectOverStore) {
  const Sort *ArrS = TM.getArraySort(TM.locSort(), TM.intSort());
  TermRef M = TM.mkVar("M", ArrS);
  TermRef X = TM.mkVar("x", TM.locSort());
  TermRef V = TM.mkIntConst(7);
  EXPECT_EQ(TM.mkSelect(TM.mkStore(M, X, V), X), V);
  EXPECT_EQ(TM.mkSelect(TM.mkConstArray(ArrS, V), X), V);
  // store-over-store on the same index collapses
  TermRef S2 = TM.mkStore(TM.mkStore(M, X, V), X, TM.mkIntConst(9));
  EXPECT_EQ(S2->getArg(0), M);
}

TEST_F(TermTest, SetSugar) {
  TermRef X = TM.mkVar("x", TM.locSort());
  TermRef S = TM.mkSingleton(X);
  EXPECT_EQ(TM.mkMember(X, S), TM.mkTrue());
  TermRef Empty = TM.mkEmptySet(TM.locSort());
  EXPECT_EQ(TM.mkSetUnion(S, Empty), S);
  EXPECT_EQ(TM.mkSetIntersect(S, Empty), Empty);
  EXPECT_EQ(TM.mkSetMinus(Empty, S), Empty);
}

TEST_F(TermTest, Substitution) {
  TermRef X = TM.mkVar("x", TM.intSort());
  TermRef Y = TM.mkVar("y", TM.intSort());
  TermRef F = TM.mkLe(TM.mkAdd(X, TM.mkIntConst(1)), Y);
  std::unordered_map<TermRef, TermRef> Map = {{X, TM.mkIntConst(4)}};
  TermRef G = TM.substitute(F, Map);
  EXPECT_EQ(G, TM.mkLe(TM.mkIntConst(5), Y));
}

TEST_F(TermTest, QuantifierDetection) {
  TermRef X = TM.mkVar("x", TM.locSort());
  TermRef Body = TM.mkEq(X, TM.mkNil());
  TermRef Q = TM.mkForall({X}, Body);
  EXPECT_TRUE(TM.containsQuantifier(Q));
  EXPECT_FALSE(TM.containsQuantifier(Body));
  EXPECT_TRUE(TM.containsQuantifier(TM.mkAnd(Q, Body)));
}

TEST_F(TermTest, PrinterRoundTripish) {
  TermRef X = TM.mkVar("x", TM.intSort());
  TermRef F = TM.mkLt(X, TM.mkIntConst(3));
  EXPECT_EQ(printTerm(F), "(< x 3)");
  std::string Query = printQuery(F);
  EXPECT_NE(Query.find("(declare-const x Int)"), std::string::npos);
  EXPECT_NE(Query.find("(check-sat)"), std::string::npos);
}

TEST_F(TermTest, FreshVarsAreFresh) {
  TermRef A = TM.mkFreshVar("tmp", TM.intSort());
  TermRef B = TM.mkFreshVar("tmp", TM.intSort());
  EXPECT_NE(A, B);
  EXPECT_NE(A->getName(), B->getName());
}
