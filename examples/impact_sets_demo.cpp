//===- examples/impact_sets_demo.cpp - Impact sets, right and wrong --------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Impact sets (Table 1 / Appendix C): for each field mutation, the
/// engineer declares which objects may lose their local condition. The
/// declaration is itself machine-checked with a decidable VC. This demo
/// checks the paper's Table 1 for sorted lists, then shows the checker
/// rejecting the subtly wrong variant that forgets `old(x.next)` —
/// exactly the case Figure 3 of the paper illustrates.
///
//===----------------------------------------------------------------------===//

#include "driver/Verifier.h"
#include "structures/Registry.h"

#include <cstdio>
#include <string>

using namespace ids;

static const char *WrongImpact = R"IDS(
structure List {
  field next: Loc;
  ghost field prev: Loc;
  local l (x) {
    (x.next != nil ==> x.next.prev == x)
    && (x.prev != nil ==> x.prev.next == x)
  }
  correlation (y) { y.prev == nil }
  // WRONG: mutating x.next also breaks old(x.next), whose prev pointer
  // now dangles (Figure 3 of the paper).
  impact next [l] { x }
  impact prev [l] { x, old(x.prev) }
}
procedure noop(a: int) returns (b: int) { b := a; }
)IDS";

int main() {
  // Part 1: the paper's Table 1 for sorted lists, machine-checked.
  DiagEngine D1;
  driver::VerifyOptions Opts;
  Opts.OnlyProc = "<impact sets only>";
  driver::ModuleResult Good = driver::verifySource(
      structures::findBenchmarkSource("sorted-list"), Opts, D1);
  printf("Table 1 (sorted list impact sets), checked via Appendix C "
         "VCs:\n");
  for (const driver::ImpactResult &I : Good.Impacts)
    printf("  x.%-7s -> {x, %s}   %s\n", I.Field.c_str(),
           I.Field == "next" || I.Field == "prev" ? "old(x.pointer)"
                                                  : "x.prev",
           I.Ok ? "correct" : "WRONG");

  // Part 2: a wrong impact set is caught.
  DiagEngine D2;
  driver::ModuleResult Bad =
      driver::verifySource(WrongImpact, driver::VerifyOptions(), D2);
  printf("\nDeliberately wrong declaration (impact of x.next without "
         "old(x.next)):\n");
  bool Caught = false;
  for (const driver::ImpactResult &I : Bad.Impacts) {
    printf("  x.%-7s  %s\n", I.Field.c_str(),
           I.Ok ? "accepted" : "REJECTED by the Appendix C check");
    if (I.Field == "next" && !I.Ok)
      Caught = true;
  }
  return Caught ? 0 : 1;
}
