//===- smt/Solver.cpp - CDCL(T) SMT solver --------------------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#include "smt/QuantInst.h"
#include "smt/SmtCounters.h"
#include "support/Log.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace ids;
using namespace ids::smt;

Solver::Result Solver::checkSat(TermRef Formula) {
  SmtCounters &TC = smtCounters();
  TC.CheckSats.add();
  uint64_t DecisionsBefore = Core.Sat.numDecisions();
  uint64_t ConflictsBefore = Core.Sat.numConflicts();
  uint64_t TConflictsBefore = Core.Sat.numTheoryConflicts();
  uint64_t ChecksBefore = Core.St.TheoryChecks;
  uint64_t PropsBefore = Core.St.EqualitiesPropagated;
  uint64_t RepairsBefore = Core.St.ModelRepairs;
  uint64_t GiveUpsBefore = Core.St.ModelGiveUps;
  uint64_t DeletedBefore = Core.Sat.numLemmasDeleted();
  uint64_t SweepsBefore = Core.Sat.numReduceDbSweeps();
  uint64_t RestartsBefore = Core.Sat.numRestarts();
  unsigned ArrayLemmasBefore = Core.St.ArrayStats.NumLemmas;
  Core.Sat.setClauseDeletion(Core.Opts.ClauseDeletion);
  if (Core.Opts.ReduceDbLimit)
    Core.Sat.setReduceDbLimit(Core.Opts.ReduceDbLimit);
  TermManager &TM = Core.TM;
  bool HadQuantifiers = TM.containsQuantifier(Formula);
  bool CompleteInst = true;
  if (HadQuantifiers) {
    assert(Core.Opts.AllowQuantifiers &&
           "quantifier encountered in quantifier-free mode");
    QuantInstResult QR = instantiateQuantifiers(
        TM, Formula, Core.Opts.QuantRounds, Core.Opts.MaxInstPerQuant);
    Formula = QR.Formula;
    CompleteInst = QR.Complete;
    Core.St.Instantiations = QR.NumInstantiations;
  }
  TermRef Lifted = liftItes(TM, Formula);
  Core.EvalFormula = Lifted; // lifted vars are assigned by the model builder
  TermRef Reduced = reduceArrays(TM, Lifted, &Core.St.ArrayStats,
                                 Core.Opts.EagerArrayInstantiation);

  if (Reduced == TM.mkTrue())
    return HadQuantifiers && !CompleteInst ? Result::Unknown : Result::Sat;
  if (Reduced == TM.mkFalse())
    return Result::Unsat;

  sat::Lit Root = Core.litFor(Reduced);
  Core.Sat.addClause({Root});
  Core.St.NumAtoms = static_cast<unsigned>(Core.Atoms.size());
  if (Core.Opts.TimeoutSeconds != 0)
    Core.SolveDeadline =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count() +
        Core.Opts.TimeoutSeconds;
  logging::debugf("smt", "atoms=%u satvars=%d arrayLemmas=%u witnesses=%u\n",
                  Core.St.NumAtoms, Core.Sat.numVars(),
                  Core.St.ArrayStats.NumLemmas,
                  Core.St.ArrayStats.NumWitnesses);
  TheoryEngine Check(Core, /*Persistent=*/false);
  sat::SatSolver::Result R = Core.Sat.solve(&Check);
  Core.St.SatConflicts = Core.Sat.numConflicts();
  Core.St.SatDecisions = Core.Sat.numDecisions();
  Core.St.TheoryConflicts = Core.Sat.numTheoryConflicts();
  TC.Decisions.add(Core.Sat.numDecisions() - DecisionsBefore);
  TC.Conflicts.add(Core.Sat.numConflicts() - ConflictsBefore);
  TC.TheoryConflicts.add(Core.Sat.numTheoryConflicts() - TConflictsBefore);
  TC.TheoryChecks.add(Core.St.TheoryChecks - ChecksBefore);
  TC.Propagations.add(Core.St.EqualitiesPropagated - PropsBefore);
  TC.ModelRepairs.add(Core.St.ModelRepairs - RepairsBefore);
  TC.ModelGiveUps.add(Core.St.ModelGiveUps - GiveUpsBefore);
  TC.ArrayLemmas.add(Core.St.ArrayStats.NumLemmas - ArrayLemmasBefore);
  TC.Instantiations.add(Core.St.Instantiations);
  TC.MaxAtoms.recordMax(Core.St.NumAtoms);
  TC.LemmasDeleted.add(Core.Sat.numLemmasDeleted() - DeletedBefore);
  TC.ReduceDbSweeps.add(Core.Sat.numReduceDbSweeps() - SweepsBefore);
  TC.Restarts.add(Core.Sat.numRestarts() - RestartsBefore);
  if (Core.BudgetExhausted)
    return Result::Unknown;
  if (R == sat::SatSolver::Result::Unsat)
    return Result::Unsat;
  if (HadQuantifiers && !CompleteInst)
    return Result::Unknown;
  return Result::Sat;
}
