//===- support/JobManager.cpp - Work-stealing job system ------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "support/JobManager.h"

#include "support/Trace.h"

#include <algorithm>
#include <cassert>

using namespace ids;
using namespace ids::jobs;

namespace {

/// Which worker the current thread is, or kExternal for threads that do
/// not belong to any JobManager (submissions from those land in the
/// shared inbox). A plain index is enough: a JobManager's workers never
/// run tasks of another JobManager, and the pipeline never nests
/// managers on one thread.
constexpr unsigned kExternal = ~0u;
thread_local unsigned CurrentWorker = kExternal;

} // namespace

unsigned JobManager::resolveJobs(unsigned Jobs) {
  if (Jobs != 0)
    return Jobs;
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : HW;
}

JobManager::JobManager(unsigned Jobs) : NumJobs(resolveJobs(Jobs)) {
  // Slot NumJobs is the inbox for external (non-worker) submissions.
  Ready.resize(NumJobs + 1);
}

JobManager::~JobManager() {
  try {
    wait();
  } catch (...) {
    // wait() already ran everything; a destructor cannot rethrow.
  }
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

JobManager::TaskId JobManager::submit(std::function<void()> Fn,
                                      const std::vector<TaskId> &Deps) {
  TaskId Id;
  bool ReadyNow;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Id = static_cast<TaskId>(Tasks.size());
    Tasks.emplace_back();
    Task &T = Tasks.back();
    T.Fn = std::move(Fn);
    for (TaskId Dep : Deps) {
      assert(Dep < Id && "dependency on a later task");
      if (!Tasks[Dep].Done) {
        Tasks[Dep].Dependents.push_back(Id);
        ++T.PendingDeps;
      }
    }
    ++Outstanding;
    ReadyNow = T.PendingDeps == 0;
    if (ReadyNow)
      enqueueReady(Id);
    if (NumJobs > 1)
      startWorkersLocked();
  }
  trace::counter("jobs.tasks").add(1);
  if (ReadyNow && NumJobs > 1)
    WorkCv.notify_one();
  return Id;
}

void JobManager::enqueueReady(TaskId Id) {
  // Owner-spawned work goes to the bottom of the owner's deque (LIFO
  // for the owner, cache-warm); everything else lands in the inbox.
  unsigned Slot = CurrentWorker < NumJobs ? CurrentWorker : NumJobs;
  Ready[Slot].push_back(Id);
}

void JobManager::startWorkersLocked() {
  while (Workers.size() < NumJobs)
    Workers.emplace_back(
        [this, Me = static_cast<unsigned>(Workers.size())] { workerLoop(Me); });
}

std::vector<JobManager::TaskId> JobManager::completeLocked(TaskId Id) {
  Task &T = Tasks[Id];
  T.Done = true;
  T.Fn = nullptr; // release captures eagerly
  std::vector<TaskId> Unblocked;
  for (TaskId Dep : T.Dependents) {
    assert(Tasks[Dep].PendingDeps > 0);
    if (--Tasks[Dep].PendingDeps == 0)
      Unblocked.push_back(Dep);
  }
  T.Dependents.clear();
  --Outstanding;
  return Unblocked;
}

void JobManager::runTask(TaskId Id) {
  std::function<void()> Fn;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Fn = std::move(Tasks[Id].Fn);
  }
  std::exception_ptr Err;
  try {
    Fn();
  } catch (...) {
    Err = std::current_exception();
  }
  size_t NewlyReady;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Err && !FirstError)
      FirstError = Err;
    std::vector<TaskId> Unblocked = completeLocked(Id);
    NewlyReady = Unblocked.size();
    for (TaskId Dep : Unblocked)
      enqueueReady(Dep);
    if (Outstanding == 0)
      IdleCv.notify_all();
  }
  for (size_t I = 0; I < NewlyReady; ++I)
    WorkCv.notify_one();
}

void JobManager::workerLoop(unsigned Me) {
  CurrentWorker = Me;
  for (;;) {
    TaskId Id;
    bool Stole = false;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      for (;;) {
        if (!Ready[Me].empty()) {
          // Own deque: pop the most recently pushed task (LIFO).
          Id = Ready[Me].back();
          Ready[Me].pop_back();
          break;
        }
        bool Found = false;
        // Inbox first, then round-robin over the other workers'
        // deques; steal the oldest task (FIFO from the top).
        for (unsigned Off = 0; Off <= NumJobs && !Found; ++Off) {
          unsigned Victim = Off == 0 ? NumJobs : (Me + Off) % NumJobs;
          if (Victim == Me || Ready[Victim].empty())
            continue;
          Id = Ready[Victim].front();
          Ready[Victim].pop_front();
          Found = true;
          Stole = Victim != NumJobs;
        }
        if (Found)
          break;
        if (Stopping)
          return;
        WorkCv.wait(Lock);
      }
    }
    if (Stole)
      trace::counter("jobs.steals").add(1);
    runTask(Id);
  }
}

void JobManager::wait() {
  if (NumJobs <= 1) {
    // Inline mode: drain the inbox in dependency-respecting FIFO order
    // on the calling thread. Tasks may spawn more tasks while we run.
    for (;;) {
      TaskId Id;
      {
        std::lock_guard<std::mutex> Lock(Mutex);
        bool Found = false;
        for (unsigned Slot = 0; Slot <= NumJobs && !Found; ++Slot) {
          if (Ready[Slot].empty())
            continue;
          Id = Ready[Slot].front();
          Ready[Slot].pop_front();
          Found = true;
        }
        if (!Found) {
          assert(Outstanding == 0 && "unrunnable tasks (dependency cycle?)");
          break;
        }
      }
      runTask(Id);
    }
  } else {
    std::unique_lock<std::mutex> Lock(Mutex);
    IdleCv.wait(Lock, [this] { return Outstanding == 0; });
  }
  std::lock_guard<std::mutex> Lock(Mutex);
  if (FirstError) {
    std::exception_ptr Err = FirstError;
    FirstError = nullptr;
    std::rethrow_exception(Err);
  }
}
