//===- driver/Main.cpp - ids-verify command line tool ----------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command line front end — a thin dispatcher over the reusable
/// VerifierInstance (parse → typecheck → vcgen → VC pipeline over the
/// instance's warm caches):
///
///   ids-verify FILE.ids            verify a module from a file
///   ids-verify --benchmark NAME    verify an embedded Table 2 benchmark
///   ids-verify --benchmark all     verify the whole embedded suite
///   ids-verify --list              list embedded benchmarks
///   ids-verify serve               line-JSON daemon on stdin/stdout
///
/// Argument parsing/validation lives in Cli.cpp, the serve loop in
/// Serve.cpp. `--cache-dir DIR` makes the instance's caches persistent
/// across runs (solver outcomes + procedure verdicts, versioned
/// append-only files).
///
//===----------------------------------------------------------------------===//

#include "driver/Cli.h"
#include "driver/Serve.h"
#include "driver/VerifierInstance.h"
#include "structures/Registry.h"
#include "support/Trace.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace ids;

static void printPipelineStats(const pipeline::Stats &St) {
  printf("    pipeline: %u obligations (%u simplified away), "
         "%u/%u guard conjuncts sliced, %u queries (%u cache hits, "
         "%u slice fallbacks, %u escalated), max %u atoms / %u array "
         "lemmas\n",
         St.Obligations, St.ProvedBySimplify, St.ConjunctsSliced,
         St.ConjunctsBeforeSlice, St.Queries, St.CacheHits,
         St.SliceFallbacks, St.EscalatedQueries, St.MaxAtoms,
         St.MaxArrayLemmas);
  if (St.PrefixGroups > 0)
    printf("    incremental: %u prefix groups, %u context reuses, "
           "%llu lemmas retained, %llu lazy array lemmas, %u sat rechecks\n",
           St.PrefixGroups, St.ContextReuses,
           (unsigned long long)St.LemmasRetained,
           (unsigned long long)St.LazyArrayLemmas, St.IncrSatRechecks);
}

/// Registry-comparable status key; must produce exactly the strings
/// structures::ProcExpectation::Status uses.
static const char *statusKey(driver::Status St) {
  switch (St) {
  case driver::Status::Verified:
    return "verified";
  case driver::Status::Failed:
    return "failed";
  case driver::Status::Unknown:
    break;
  }
  return "unknown";
}

static void printResult(const driver::ModuleResult &R, bool ShowStats) {
  printf("structure %s  (LC size: %u conjuncts)\n", R.StructureName.c_str(),
         R.LcSize);
  if (!R.Impacts.empty()) {
    unsigned Bad = 0;
    for (const driver::ImpactResult &I : R.Impacts)
      if (!I.Ok)
        ++Bad;
    printf("impact sets: %zu checked, %u failed (%.2fs)\n",
           R.Impacts.size(), Bad, R.ImpactSeconds);
    if (ShowStats) {
      pipeline::Stats Agg;
      for (const driver::ImpactResult &I : R.Impacts)
        Agg.merge(I.Pipeline);
      printPipelineStats(Agg);
    }
    for (const driver::ImpactResult &I : R.Impacts)
      if (!I.Ok)
        printf("  %s impact %s [%s]\n",
               I.TimedOut ? "TIMEOUT (unchecked)" : "FAILED",
               I.Field.c_str(), I.Group.c_str());
  }
  for (const driver::ProcResult &P : R.Procs) {
    const char *St = P.St == driver::Status::Verified ? "verified"
                     : P.St == driver::Status::Failed ? "FAILED"
                                                      : "unknown";
    printf("  %-24s %3u+%u+%-3u  %3u obligations  %7.2fs  %s\n",
           P.Name.c_str(), P.Metrics.CodeLines, P.Metrics.SpecLines,
           P.Metrics.AnnotLines, P.NumObligations, P.Seconds, St);
    if (ShowStats) {
      if (P.Cached)
        printf("    pipeline: verdict replayed from the procedure cache\n");
      else
        printPipelineStats(P.Pipeline);
    }
    if (P.St != driver::Status::Verified) {
      printf("    obligation: %s\n", P.FailedObligation.c_str());
      if (!P.Counterexample.empty()) {
        printf("    counterexample:\n");
        std::istringstream In(P.Counterexample);
        std::string Line;
        while (std::getline(In, Line))
          printf("      %s\n", Line.c_str());
      }
    }
  }
}

/// Attaches --cache-dir when given; exits 2 on I/O failure.
static bool setupCache(driver::VerifierInstance &Inst,
                       const driver::CliArgs &A) {
  if (A.CacheDir.empty())
    return true;
  std::string Error;
  if (!Inst.attachCacheDir(A.CacheDir, Error)) {
    fprintf(stderr, "%s\n", Error.c_str());
    return false;
  }
  return true;
}

static void printCacheSummary(const driver::VerifierInstance &Inst,
                              const driver::CliArgs &A) {
  if (!A.CacheDir.empty())
    printf("%s\n", Inst.cacheSummary().c_str());
}

static int runList() {
  for (const structures::Benchmark &B : structures::allBenchmarks()) {
    printf("%s  (%s)\n", B.Name, B.Table2Name);
    printf("    %s\n", B.Description);
    printf("    tags: %s", B.Tags);
    if (B.DefaultBudget > 0)
      printf("  [default budget: %llu]",
             (unsigned long long)B.DefaultBudget);
    printf("\n    expected:");
    for (const structures::ProcExpectation &E : B.Expected)
      printf(" %s=%s", E.Proc, E.Status);
    printf("\n");
  }
  return 0;
}

static int runBenchAll(const driver::CliArgs &A) {
  // Verify the whole embedded suite in one invocation on ONE instance
  // (identical queries across benchmarks share the warm cache), applying
  // each benchmark's registry default budget unless the user chose one.
  // Success means every procedure lands on its registry-expected verdict
  // (a budgeted "unknown" on record is not a regression).
  driver::VerifierInstance Inst;
  if (!setupCache(Inst, A))
    return 2;
  int Worst = 0;
  for (const structures::Benchmark &B : structures::allBenchmarks()) {
    driver::VerifyOptions BOpts = A.Opts;
    if (BOpts.MaxTheoryChecks == 0 && B.DefaultBudget > 0)
      BOpts.MaxTheoryChecks = B.DefaultBudget;
    printf("=== %s (%s) ===\n", B.Name, B.Table2Name);
    DiagEngine Diags;
    driver::ModuleResult R = Inst.verify(B.Source, BOpts, Diags);
    if (!R.FrontEndOk) {
      fprintf(stderr, "%s", Diags.toString().c_str());
      return 2;
    }
    printResult(R, A.ShowStats);
    for (const driver::ImpactResult &I : R.Impacts)
      if (!I.Ok)
        Worst = 1;
    for (const driver::ProcResult &P : R.Procs) {
      const char *St = statusKey(P.St);
      const char *Want = B.expectedStatus(P.Name);
      if (std::string(St) != (Want ? Want : "verified")) {
        printf("  MISMATCH: %s expected %s, got %s\n", P.Name.c_str(),
               Want ? Want : "verified", St);
        Worst = 1;
      }
    }
    // The reverse direction (skipped under --proc, which restricts the
    // run on purpose): every registry-expected procedure must have
    // actually run, or a renamed/removed procedure would pass silently.
    if (A.Opts.OnlyProc.empty()) {
      for (const structures::ProcExpectation &E : B.Expected) {
        bool Ran = false;
        for (const driver::ProcResult &P : R.Procs)
          Ran = Ran || P.Name == E.Proc;
        if (!Ran) {
          printf("  MISSING: expected procedure '%s' did not run\n",
                 E.Proc);
          Worst = 1;
        }
      }
    }
  }
  printCacheSummary(Inst, A);
  return Worst;
}

static int runOneShot(const driver::CliArgs &A) {
  std::string Source;
  if (!A.BenchName.empty()) {
    const char *Src = structures::findBenchmarkSource(A.BenchName);
    if (!Src) {
      fprintf(stderr, "unknown benchmark '%s' (try --list)\n",
              A.BenchName.c_str());
      return 2;
    }
    Source = Src;
  } else {
    std::ifstream In(A.File);
    if (!In) {
      fprintf(stderr, "cannot open '%s'\n", A.File.c_str());
      return 2;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  }
  driver::VerifierInstance Inst;
  if (!setupCache(Inst, A))
    return 2;
  DiagEngine Diags;
  driver::ModuleResult R = Inst.verify(Source, A.Opts, Diags);
  if (!R.FrontEndOk) {
    fprintf(stderr, "%s", Diags.toString().c_str());
    return 2;
  }
  printResult(R, A.ShowStats);
  printCacheSummary(Inst, A);
  return R.allVerified() ? 0 : 1;
}

/// The cumulative metrics footer under --stats: every registry counter,
/// name-sorted — the human rendering of the exact snapshot that
/// --stats-json and serve's {"cmd":"stats"} serialize.
static void printMetricsRegistry() {
  auto Snap = trace::counterSnapshot();
  if (Snap.empty())
    return;
  printf("cumulative metrics:\n");
  for (const auto &[Name, V] : Snap)
    printf("  %s = %llu\n", Name.c_str(), (unsigned long long)V);
}

int main(int Argc, char **Argv) {
  driver::CliArgs A = driver::parseCli(Argc, Argv);
  if (!A.ok()) {
    fprintf(stderr, "%s\n", A.Error.c_str());
    return 2;
  }
  if (!A.TraceOut.empty())
    trace::setSpansEnabled(true);
  if (A.SlowQueryMs > 0) {
    trace::setSlowQueryThresholdMs(A.SlowQueryMs);
    std::string Error;
    if (!trace::openSlowQueryLog(A.SlowQueryLog, Error)) {
      fprintf(stderr, "%s\n", Error.c_str());
      return 2;
    }
  }

  int Ret = 2;
  switch (A.Cmd) {
  case driver::CliArgs::Command::List:
    Ret = runList();
    break;
  case driver::CliArgs::Command::Serve:
    Ret = driver::runServe(A, std::cin, std::cout);
    break;
  case driver::CliArgs::Command::BenchAll:
    Ret = runBenchAll(A);
    break;
  case driver::CliArgs::Command::OneShot:
    Ret = runOneShot(A);
    break;
  case driver::CliArgs::Command::Usage:
    fprintf(stderr, "%s", driver::usageText());
    return 2;
  }

  // Observability epilogue: the exporters must not change a verification
  // verdict, but an unwritable output file is still a CLI error.
  if (A.ShowStats)
    printMetricsRegistry();
  std::string Error;
  if (!A.StatsJson.empty() && !trace::writeStatsJson(A.StatsJson, Error)) {
    fprintf(stderr, "%s\n", Error.c_str());
    Ret = 2;
  }
  if (!A.TraceOut.empty() && !trace::writeChromeTrace(A.TraceOut, Error)) {
    fprintf(stderr, "%s\n", Error.c_str());
    Ret = 2;
  }
  trace::closeSlowQueryLog();
  return Ret;
}
