//===- structures/SortedListMinMax.cpp - Sorted list (min/max) -------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sorted linked lists augmented with suffix-min/max maps (the "sorted
/// list (min/max)" row of Table 2): because the list is sorted, the
/// minimum of every suffix is the node's own key and the maximum is the
/// last key, so get_min answers without any traversal and get_max walks
/// the list carrying the map value as its invariant.
///
//===----------------------------------------------------------------------===//

#include "structures/Sources.h"

const char *ids::structures::SortedListMinMaxSource = R"IDS(
structure SortedListMinMax {
  field next: Loc;
  field key: int;
  ghost field prev: Loc;
  ghost field minv: int;
  ghost field maxv: int;
  ghost field keys: set<int>;

  // Equation (2)'s sorted list with min/max maps in place of the
  // length/heaplet maps: minv is the minimum of the suffix (the key
  // itself, by sortedness), maxv the maximum (the last key).
  local l (x) {
    x.minv == x.key
    && (x.next != nil ==>
         x.key <= x.next.key
      && x.next.prev == x
      && x.maxv == x.next.maxv
      && x.keys == {x.key} union x.next.keys)
    && (x.prev != nil ==> x.prev.next == x)
    && (x.next == nil ==> x.maxv == x.key && x.keys == {x.key})
  }

  correlation (y) { y.prev == nil }

  impact next [l] { x, old(x.next) }
  impact key  [l] { x, x.prev }
  impact prev [l] { x, old(x.prev) }
  impact minv [l] { x }
  impact maxv [l] { x, x.prev }
  impact keys [l] { x, x.prev }
}

// Membership via the keys map (as in the plain sorted list).
procedure find(x: Loc, k: int) returns (found: bool)
  requires br(l) == {}
  requires x != nil
  ensures  br(l) == {}
  ensures  found <==> k in old(x.keys)
{
  var cur: Loc;
  cur := x;
  found := false;
  InferLCOutsideBr(l, x);
  while (cur != nil && !found)
    invariant br(l) == {}
    invariant found ==> k in x.keys
    invariant (!found && cur != nil) ==> (k in x.keys <==> k in cur.keys)
    invariant (!found && cur == nil) ==> !(k in x.keys)
  {
    InferLCOutsideBr(l, cur);
    if (cur.key == k) {
      found := true;
    } else {
      cur := cur.next;
    }
  }
}

// The suffix minimum of a sorted list is the head key: O(1) from the map.
procedure get_min(x: Loc) returns (r: int)
  requires br(l) == {}
  requires x != nil
  ensures  br(l) == {}
  ensures  r == old(x.minv)
{
  InferLCOutsideBr(l, x);
  r := x.key;
}

// Walk to the last node; the maxv map is constant along the list, so the
// final key is the suffix maximum of the head.
procedure get_max(x: Loc) returns (r: int)
  requires br(l) == {}
  requires x != nil
  ensures  br(l) == {}
  ensures  r == old(x.maxv)
{
  var cur: Loc;
  cur := x;
  InferLCOutsideBr(l, x);
  while (cur.next != nil)
    invariant br(l) == {}
    invariant cur != nil
    invariant cur.maxv == old(x.maxv)
  {
    InferLCOutsideBr(l, cur);
    cur := cur.next;
  }
  InferLCOutsideBr(l, cur);
  r := cur.key;
}
)IDS";
