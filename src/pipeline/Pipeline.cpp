//===- pipeline/Pipeline.cpp - VC pipeline facade --------------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"

#include "pipeline/Simplify.h"
#include "pipeline/Slice.h"
#include "smt/Solver.h"
#include "smt/SolverContext.h"
#include "support/JobManager.h"
#include "support/Log.h"
#include "support/Trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <unordered_map>

using namespace ids;
using namespace ids::pipeline;
using namespace ids::smt;

namespace {

/// One row per Stats field: the single source of truth for the JSON key
/// and the registry folding rule. statsToJson and recordStatsInRegistry
/// both walk this table, which is what makes BENCH_table2.json rows and
/// the cumulative pipeline.* counters definitionally consistent.
struct StatsRow {
  const char *Key;
  uint64_t (*Get)(const Stats &);
  bool IsMax; ///< high-water mark (registry recordMax), else summed
};

const StatsRow StatsRows[] = {
    {"obligations", [](const Stats &S) { return uint64_t(S.Obligations); },
     false},
    {"proved_by_simplify",
     [](const Stats &S) { return uint64_t(S.ProvedBySimplify); }, false},
    {"conjuncts_before_slice",
     [](const Stats &S) { return uint64_t(S.ConjunctsBeforeSlice); }, false},
    {"conjuncts_sliced",
     [](const Stats &S) { return uint64_t(S.ConjunctsSliced); }, false},
    {"queries", [](const Stats &S) { return uint64_t(S.Queries); }, false},
    {"cache_hits", [](const Stats &S) { return uint64_t(S.CacheHits); },
     false},
    {"slice_fallbacks",
     [](const Stats &S) { return uint64_t(S.SliceFallbacks); }, false},
    {"escalated_queries",
     [](const Stats &S) { return uint64_t(S.EscalatedQueries); }, false},
    {"prefix_groups", [](const Stats &S) { return uint64_t(S.PrefixGroups); },
     false},
    {"context_reuses",
     [](const Stats &S) { return uint64_t(S.ContextReuses); }, false},
    {"lemmas_retained",
     [](const Stats &S) { return uint64_t(S.LemmasRetained); }, false},
    {"lazy_array_lemmas",
     [](const Stats &S) { return uint64_t(S.LazyArrayLemmas); }, false},
    {"theory_propagations",
     [](const Stats &S) { return S.TheoryPropagations; }, false},
    {"propagation_conflicts",
     [](const Stats &S) { return S.PropagationConflicts; }, false},
    {"cc_registrations_reused",
     [](const Stats &S) { return S.CcRegistrationsReused; }, false},
    {"incr_sat_rechecks",
     [](const Stats &S) { return uint64_t(S.IncrSatRechecks); }, false},
    {"max_atoms", [](const Stats &S) { return uint64_t(S.MaxAtoms); }, true},
    {"max_array_lemmas",
     [](const Stats &S) { return uint64_t(S.MaxArrayLemmas); }, true},
    {"total_atoms", [](const Stats &S) { return uint64_t(S.TotalAtoms); },
     false},
    {"total_array_lemmas",
     [](const Stats &S) { return uint64_t(S.TotalArrayLemmas); }, false},
};

} // namespace

json::Value pipeline::statsToJson(const Stats &St) {
  json::Value Obj = json::Value::object();
  for (const StatsRow &Row : StatsRows)
    Obj.set(Row.Key, json::Value::number(double(Row.Get(St))));
  return Obj;
}

void pipeline::recordStatsInRegistry(const Stats &St) {
  for (const StatsRow &Row : StatsRows) {
    trace::Counter &C = trace::counter(std::string("pipeline.") + Row.Key);
    if (Row.IsMax)
      C.recordMax(Row.Get(St));
    else
      C.add(Row.Get(St));
  }
}

std::string pipeline::vcHashHex(TermRef Query) {
  QueryCache::Key K = QueryCache::keyFor(Query);
  char Buf[33];
  snprintf(Buf, sizeof(Buf), "%016llx%016llx", (unsigned long long)K.Hi,
           (unsigned long long)K.Lo);
  return Buf;
}

void Stats::merge(const Stats &O) {
  Obligations += O.Obligations;
  ProvedBySimplify += O.ProvedBySimplify;
  ConjunctsBeforeSlice += O.ConjunctsBeforeSlice;
  ConjunctsSliced += O.ConjunctsSliced;
  Queries += O.Queries;
  CacheHits += O.CacheHits;
  SliceFallbacks += O.SliceFallbacks;
  EscalatedQueries += O.EscalatedQueries;
  PrefixGroups += O.PrefixGroups;
  ContextReuses += O.ContextReuses;
  LemmasRetained += O.LemmasRetained;
  LazyArrayLemmas += O.LazyArrayLemmas;
  TheoryPropagations += O.TheoryPropagations;
  PropagationConflicts += O.PropagationConflicts;
  CcRegistrationsReused += O.CcRegistrationsReused;
  IncrSatRechecks += O.IncrSatRechecks;
  MaxAtoms = std::max(MaxAtoms, O.MaxAtoms);
  MaxArrayLemmas = std::max(MaxArrayLemmas, O.MaxArrayLemmas);
  TotalAtoms += O.TotalAtoms;
  TotalArrayLemmas += O.TotalArrayLemmas;
}

namespace {

/// Solves batches of queries with dedup, caching and parallel dispatch
/// through the work-stealing JobManager. Queries are terms of the
/// caller's manager, which must stay FROZEN for the duration of solve():
/// every solve happens in a private snapshot-overlay manager that shares
/// the frozen base read-only and pays only for its own delta — the
/// per-task full-formula TermManager::import copy is gone.
class BatchSolver {
public:
  BatchSolver(const TermManager &TM, const Options &Opts, QueryCache *Cache,
              Stats &St)
      : TM(TM), Opts(Opts), Cache(Opts.Cache ? Cache : nullptr), St(St) {}

  std::vector<QueryCache::Outcome> solve(const std::vector<TermRef> &Queries) {
    size_t N = Queries.size();
    std::vector<QueryCache::Outcome> Out(N);
    std::vector<size_t> RunList;
    std::vector<std::pair<size_t, size_t>> Dups; // (dup index, owner index)
    std::vector<QueryCache::Key> Keys(N);
    if (Opts.Cache) {
      std::unordered_map<QueryCache::Key, size_t, QueryCache::KeyHash> Owner;
      for (size_t I = 0; I < N; ++I) {
        trace::ScopedSpan Sp("pipeline.cache_probe");
        Keys[I] = QueryCache::keyFor(Queries[I]);
        if (Sp.active()) {
          Sp.arg("proc", Opts.TraceLabel);
          Sp.arg("vc", vcHashHex(Queries[I]));
        }
        if (Cache && Cache->lookup(Keys[I], Out[I])) {
          if (Sp.active())
            Sp.arg("hit", 1.0);
          ++St.CacheHits;
          continue;
        }
        auto [It, Inserted] = Owner.emplace(Keys[I], I);
        if (!Inserted) {
          Dups.emplace_back(I, It->second);
          if (Sp.active())
            Sp.arg("dup", 1.0);
          ++St.CacheHits;
        } else {
          RunList.push_back(I);
        }
      }
    } else {
      for (size_t I = 0; I < N; ++I)
        RunList.push_back(I);
    }

    // Shared-prefix batching: obligations of one procedure share most of
    // their guard (the passified program encoding), so their negated-claim
    // queries share a long conjunct prefix. Each batch is solved by ONE
    // worker on ONE incremental context — prefix asserted once at level 0,
    // every member push/checked/popped on top of it.
    std::vector<std::vector<size_t>> Groups =
        Opts.Incremental && !Opts.AllowQuantifiers
            ? groupBySharedPrefix(Queries, RunList)
            : std::vector<std::vector<size_t>>();
    std::vector<char> InGroup(N, 0);
    for (const auto &G : Groups)
      for (size_t Idx : G)
        InGroup[Idx] = 1;

    // Dispatch: singleton queries are independent stealable tasks; each
    // prefix group becomes a dependency chain (prefix solve, then the
    // members in order — they share one SolverContext, so the chain IS
    // the mutual exclusion) whose links any worker can pick up, with
    // escalations and Sat rechecks spawned as independent tasks that
    // float off the group's critical path instead of blocking it.
    {
      jobs::JobManager JM(Opts.Jobs);
      for (size_t Idx : RunList) {
        if (InGroup[Idx])
          continue;
        JM.submit([this, &Queries, &Out, Idx] {
          Out[Idx] = runQuery(Queries[Idx]);
        });
      }
      for (const std::vector<size_t> &G : Groups)
        submitGroup(JM, Queries, G, Out);
      JM.wait();
    }

    St.Queries += static_cast<unsigned>(RunList.size());
    St.EscalatedQueries += Escalations.exchange(0, std::memory_order_relaxed);
    St.PrefixGroups += static_cast<unsigned>(Groups.size());
    for (const auto &G : Groups)
      St.ContextReuses += static_cast<unsigned>(G.size() - 1);
    St.LemmasRetained += GroupLemmasRetained.exchange(0,
                                                      std::memory_order_relaxed);
    St.LazyArrayLemmas += GroupLazyLemmas.exchange(0,
                                                   std::memory_order_relaxed);
    St.IncrSatRechecks += SatRechecks.exchange(0, std::memory_order_relaxed);
    St.TheoryPropagations += GroupTheoryProps.exchange(
        0, std::memory_order_relaxed);
    St.PropagationConflicts += GroupPropConflicts.exchange(
        0, std::memory_order_relaxed);
    St.CcRegistrationsReused += GroupCcReused.exchange(
        0, std::memory_order_relaxed);
    for (size_t Idx : RunList) {
      St.TotalAtoms += Out[Idx].NumAtoms;
      St.TotalArrayLemmas += Out[Idx].NumArrayLemmas;
      // Only definitive outcomes (Sat/Unsat) are cacheable: an Unknown
      // earned under this run's budget/timeout must never answer a later
      // solve of the same query under a larger budget. (QueryCache
      // rejects Unknowns itself too; the guard here keeps the intent at
      // the call site. In-batch duplicate sharing above is unaffected —
      // duplicates within one solve() ran under identical budgets.)
      if (Cache && Out[Idx].R != Solver::Result::Unknown)
        Cache->insert(Keys[Idx], Out[Idx]);
    }
    for (auto [Dup, OwnerIdx] : Dups)
      Out[Dup] = Out[OwnerIdx];
    for (const QueryCache::Outcome &O : Out) {
      St.MaxAtoms = std::max(St.MaxAtoms, O.NumAtoms);
      St.MaxArrayLemmas = std::max(St.MaxArrayLemmas, O.NumArrayLemmas);
    }
    return Out;
  }

private:
  QueryCache::Outcome attempt(TermRef Query, bool Eager, bool &GaveUp) {
    // Snapshot overlay over the frozen base manager: the query term is
    // directly valid in the overlay's view, so there is no per-task
    // formula copy — the solver's own delta (CNF literals, lemma terms)
    // is all this task ever interns.
    TermManager Local(TM, TermManager::Snapshot{});
    Solver::Options SOpts;
    SOpts.AllowQuantifiers = Opts.AllowQuantifiers;
    SOpts.MaxTheoryChecks = Opts.MaxTheoryChecks;
    SOpts.TimeoutSeconds = Opts.QueryTimeoutSeconds;
    SOpts.EagerArrayInstantiation = Eager;
    SOpts.ClauseDeletion = Opts.ReduceDb;
    Solver S(Local, SOpts);
    QueryCache::Outcome O;
    O.R = S.checkSat(Query);
    O.NumAtoms = S.stats().NumAtoms;
    O.NumArrayLemmas = S.stats().ArrayStats.NumLemmas;
    GaveUp = S.stats().ModelGiveUps > 0;
    if (O.R == Solver::Result::Sat)
      O.ModelText = S.model().toString();
    return O;
  }

  /// Splits a query into its top-level conjuncts (a non-And query is its
  /// own single conjunct).
  static std::vector<TermRef> conjunctsOf(TermRef Query) {
    if (Query->getKind() == TermKind::And)
      return Query->getArgs();
    return {Query};
  }

  /// Greedy grouping of the run list by shared conjunct prefix, over the
  /// run list SORTED by conjunct sequence (lexicographic in term ids):
  /// queries sharing a long prefix become neighbours even when obligation
  /// order separated them — a late loop-exit obligation rejoins the batch
  /// of the loop-entry obligations it branched from, instead of opening a
  /// fresh context (the adjacency-only grouping this replaces split such
  /// clusters; the gain is visible as fewer, larger prefix_groups). A
  /// query joins the open group when the longest common prefix with the
  /// group's prefix stays substantial — at least MinSharedConjuncts and
  /// at least half of the query's own conjuncts. Only groups of two or
  /// more queries are returned; singletons keep the one-shot path.
  std::vector<std::vector<size_t>>
  groupBySharedPrefix(const std::vector<TermRef> &Queries,
                      const std::vector<size_t> &RunList) const {
    constexpr size_t MinSharedConjuncts = 3;
    // Activity-based clause deletion keeps a batch context's learned-DB
    // bounded, but the cap still earns its keep: each extra member grows
    // the context's live atom set (every theory check and BCP pass pays
    // for it). Re-measured after theory propagation and incremental CC
    // registration landed: on the heavy sorted-list queries, 16 or 32
    // members still slow the whole procedure ~50% (7.2s -> ~11s) — the
    // propagation watch set and per-sync re-assert suffix scale with the
    // live atom count, so bigger groups hurt the partial-trail path just
    // as they hurt the full-model path. Eight keeps the shared-prefix
    // reuse win without inflating per-check footprints.
    constexpr size_t MaxGroupSize = 8;
    std::vector<std::vector<TermRef>> Conj(Queries.size());
    for (size_t Idx : RunList)
      Conj[Idx] = conjunctsOf(Queries[Idx]);
    // Term ids are interning order — deterministic for a deterministic
    // run — so the sort (and therefore the grouping) is reproducible.
    // stable_sort keeps duplicate queries (possible with the cache off)
    // in obligation order.
    std::vector<size_t> Sorted(RunList);
    std::stable_sort(Sorted.begin(), Sorted.end(),
                     [&](size_t A, size_t B) {
                       const std::vector<TermRef> &CA = Conj[A];
                       const std::vector<TermRef> &CB = Conj[B];
                       return std::lexicographical_compare(
                           CA.begin(), CA.end(), CB.begin(), CB.end(),
                           [](TermRef X, TermRef Y) {
                             return X->getId() < Y->getId();
                           });
                     });
    std::vector<std::vector<size_t>> Groups;
    std::vector<size_t> Open;
    std::vector<TermRef> OpenPrefix;
    auto Close = [&]() {
      if (Open.size() >= 2)
        Groups.push_back(std::move(Open));
      Open.clear();
    };
    for (size_t Idx : Sorted) {
      if (Open.empty()) {
        Open.push_back(Idx);
        OpenPrefix = Conj[Idx];
        continue;
      }
      size_t Lcp = 0;
      while (Lcp < OpenPrefix.size() && Lcp < Conj[Idx].size() &&
             OpenPrefix[Lcp] == Conj[Idx][Lcp])
        ++Lcp;
      if (Open.size() < MaxGroupSize && Lcp >= MinSharedConjuncts &&
          Lcp * 2 >= Conj[Idx].size()) {
        Open.push_back(Idx);
        OpenPrefix.resize(Lcp);
      } else {
        Close();
        Open.push_back(Idx);
        OpenPrefix = Conj[Idx];
      }
    }
    Close();
    if (logging::debugEnabled("pipe")) {
      for (auto &G : Groups) {
        size_t L = SIZE_MAX; size_t MaxC = 0;
        for (size_t I : G) {
          size_t l = 0;
          while (l < Conj[G[0]].size() && l < Conj[I].size() &&
                 Conj[G[0]][l] == Conj[I][l]) ++l;
          L = std::min(L, l); MaxC = std::max(MaxC, Conj[I].size());
        }
        logging::debugf("pipe", "group size=%zu lcp=%zu maxconj=%zu\n",
                        G.size(), L, MaxC);
      }
    }
    // The sort chose the GROUPING; obligation order remains the better
    // SOLVE order within a group (a procedure's obligations grow harder
    // towards the end, and the hardest member profits most from the
    // lemmas its predecessors left in the context).
    for (std::vector<size_t> &G : Groups)
      std::sort(G.begin(), G.end());
    return Groups;
  }

  /// Shared state of one in-flight prefix group: the overlay manager and
  /// incremental context every member task reuses. Owned by shared_ptr —
  /// the last finished task (finalizer, or a straggling escalation)
  /// releases it.
  struct GroupState {
    explicit GroupState(const TermManager &Base)
        : Local(Base, TermManager::Snapshot{}) {}
    TermManager Local;
    std::unique_ptr<SolverContext> Ctx;
    std::vector<std::vector<TermRef>> Conj;
    size_t Lcp = 0;
    // Per-query stats deltas: the context's atom/lemma counters are
    // cumulative over every member ever pushed, so reporting them raw
    // inflates later members with earlier members' residue and makes
    // max_atoms incomparable with the --no-incremental one-shot path.
    // A member's comparable figure is the shared prefix's share plus
    // what THIS member added on top (measured against the counter level
    // just before its push). Prefix-demanded lemmas first discovered
    // while solving member one are attributed to member one — the same
    // lemmas a one-shot solve of prefix+claim would instantiate.
    unsigned PrefixAtoms = 0;
    unsigned PrefixLemmas = 0;
  };

  /// Submits one shared-prefix batch as a task chain: a prefix task that
  /// asserts the common conjuncts at level 0, then one task per member
  /// (chained — members share the context, so the dependency edge is the
  /// mutual exclusion, but each link is stealable by any idle worker),
  /// then a finalizer folding the context's cumulative stats. Sat
  /// answers are re-confirmed one-shot (clean countermodel) and model
  /// give-ups escalate to the eager instantiation exactly like the
  /// one-shot path — both as independent spawned tasks, so a heavy
  /// escalation no longer stalls the remaining members of its batch.
  void submitGroup(jobs::JobManager &JM, const std::vector<TermRef> &Queries,
                   const std::vector<size_t> &Members,
                   std::vector<QueryCache::Outcome> &Out) {
    auto GS = std::make_shared<GroupState>(TM);
    GS->Conj.reserve(Members.size());
    size_t Lcp = SIZE_MAX;
    for (size_t Idx : Members)
      GS->Conj.push_back(conjunctsOf(Queries[Idx]));
    for (const auto &C : GS->Conj) {
      size_t L = 0;
      while (L < GS->Conj[0].size() && L < C.size() && GS->Conj[0][L] == C[L])
        ++L;
      Lcp = std::min(Lcp, L);
    }
    GS->Lcp = Lcp;

    jobs::JobManager::TaskId Prev =
        JM.submit([this, GS, Size = Members.size()] {
          trace::ScopedSpan GroupSp("pipeline.batch_group");
          if (GroupSp.active()) {
            GroupSp.arg("proc", Opts.TraceLabel);
            GroupSp.arg("size", double(Size));
            GroupSp.arg("lcp", double(GS->Lcp));
          }
          Solver::Options SOpts;
          SOpts.AllowQuantifiers = false;
          SOpts.MaxTheoryChecks = Opts.MaxTheoryChecks;
          SOpts.TimeoutSeconds = Opts.QueryTimeoutSeconds;
          SOpts.LazyArrayInstantiation = Opts.LazyArrays;
          SOpts.ClauseDeletion = Opts.ReduceDb;
          SOpts.TheoryPropagation = Opts.TheoryProp;
          GS->Ctx.reset(new SolverContext(GS->Local, SOpts));
          std::vector<TermRef> Prefix(GS->Conj[0].begin(),
                                      GS->Conj[0].begin() + GS->Lcp);
          GS->Ctx->assertTerm(GS->Local.mkAnd(std::move(Prefix)));
          GS->PrefixAtoms = GS->Ctx->numAtoms();
          GS->PrefixLemmas = GS->Ctx->numArrayLemmas();
        });
    for (size_t M = 0; M < Members.size(); ++M) {
      size_t Idx = Members[M];
      Prev = JM.submit(
          [this, GS, &JM, &Queries, &Out, M, Idx] {
            runGroupMember(*GS, JM, Queries, Out, M, Idx);
          },
          {Prev});
    }
    JM.submit(
        [this, GS] {
          GroupLemmasRetained.fetch_add(GS->Ctx->stats().LemmasRetained,
                                        std::memory_order_relaxed);
          GroupCcReused.fetch_add(GS->Ctx->stats().CcRegistrationsReused,
                                  std::memory_order_relaxed);
        },
        {Prev});
  }

  /// One member round on the group's shared context: push, assert the
  /// member's delta past the common prefix, check, pop.
  void runGroupMember(GroupState &GS, jobs::JobManager &JM,
                      const std::vector<TermRef> &Queries,
                      std::vector<QueryCache::Outcome> &Out, size_t M,
                      size_t Idx) {
    SolverContext &Ctx = *GS.Ctx;
    trace::ScopedSpan Sp("pipeline.solve");
    const uint64_t T0 = trace::nowUs();
    const unsigned AtomsBefore = Ctx.numAtoms();
    const unsigned LemmasBefore = Ctx.numArrayLemmas();
    Ctx.push();
    for (size_t K = GS.Lcp; K < GS.Conj[M].size(); ++K)
      Ctx.assertTerm(GS.Conj[M][K]);
    Solver::Result R = Ctx.checkSat();
    const SolverContext::CheckStats &CS = Ctx.lastCheckStats();
    Ctx.pop();
    GroupLazyLemmas.fetch_add(CS.LazyInstantiations,
                              std::memory_order_relaxed);
    GroupTheoryProps.fetch_add(CS.TheoryPropagations,
                               std::memory_order_relaxed);
    GroupPropConflicts.fetch_add(CS.PropagationConflicts,
                                 std::memory_order_relaxed);
    // The batched round's own result; only the terminal branches publish
    // it to Out[Idx]. When a follow-up task (escalation / Sat recheck)
    // is spawned, THAT task is the sole writer of Out[Idx] — the member
    // task records its span/slow rows from this local copy so the two
    // never race on the shared slot.
    QueryCache::Outcome Batched;
    Batched.R = R;
    Batched.NumAtoms =
        GS.PrefixAtoms + (CS.NumAtoms - std::min(CS.NumAtoms, AtomsBefore));
    Batched.NumArrayLemmas =
        GS.PrefixLemmas +
        (CS.NumArrayLemmas - std::min(CS.NumArrayLemmas, LemmasBefore));
    if (R == Solver::Result::Unsat) {
      Out[Idx] = Batched;
    } else if (R == Solver::Result::Unknown && CS.ModelGiveUps > 0) {
      // Same escalation rule as the one-shot path: a model give-up is
      // worth the quadratic eager instantiation; a budget or timeout
      // Unknown would just exhaust again. The escalation solves fresh
      // against the frozen base, so it runs as its own stealable task
      // off the group chain instead of stalling the remaining members;
      // its slow-query row is the member's one record.
      if (Sp.active())
        Sp.arg("escalating", 1.0);
      JM.submit([this, &Queries, &Out, Idx] {
        const uint64_t E0 = trace::nowUs();
        bool GaveUp = false;
        {
          trace::ScopedSpan Esc("pipeline.escalate");
          if (Esc.active()) {
            Esc.arg("proc", Opts.TraceLabel);
            Esc.arg("vc", vcHashHex(Queries[Idx]));
          }
          Out[Idx] = attempt(Queries[Idx], /*Eager=*/true, GaveUp);
        }
        Escalations.fetch_add(1, std::memory_order_relaxed);
        double Sec = double(trace::nowUs() - E0) / 1e6;
        maybeRecordSlow(Queries[Idx], Sec, Sec, Out[Idx], /*Batched=*/true);
      });
      finishQuerySpan(Sp, Queries[Idx], Batched, /*Batched=*/true);
      return;
    } else if (R == Solver::Result::Sat) {
      // A batch-context model ranges over every atom the context has
      // ever seen (stale claims included); re-solve fresh for a clean,
      // independently validated countermodel — as its own stealable
      // task. The recheck logs its own slow-query row tagged
      // recheck:true and does not bump pipeline.slow_queries — the
      // member's batched row below is the real record, one per member.
      JM.submit([this, &Queries, &Out, Idx] {
        Out[Idx] = runQuery(Queries[Idx], /*Recheck=*/true);
        SatRechecks.fetch_add(1, std::memory_order_relaxed);
      });
    } else {
      Batched.R = Solver::Result::Unknown;
      Out[Idx] = Batched;
    }
    finishQuerySpan(Sp, Queries[Idx], Batched, /*Batched=*/true);
    maybeRecordSlow(Queries[Idx], double(trace::nowUs() - T0) / 1e6,
                    /*EscalateSec=*/0, Batched, /*Batched=*/true);
  }

  QueryCache::Outcome runQuery(TermRef Query, bool Recheck = false) {
    trace::ScopedSpan Sp("pipeline.solve");
    const uint64_t T0 = trace::nowUs();
    bool GaveUp = false;
    QueryCache::Outcome O = attempt(Query, /*Eager=*/false, GaveUp);
    double EscalateSec = 0;
    if (O.R == Solver::Result::Unknown && GaveUp) {
      // Escalation: the relevancy-driven array instantiation gives up on
      // a few query shapes (its model builder leaves extensional gaps).
      // The blind product is quadratically bigger but decides them;
      // Unknown is only reported once both attempts fail. Escalate only
      // on a model give-up — a budget or timeout Unknown would just
      // exhaust again on the larger query. The atom counters report the
      // max of both attempts.
      const uint64_t E0 = trace::nowUs();
      {
        trace::ScopedSpan Esc("pipeline.escalate");
        if (Esc.active()) {
          Esc.arg("proc", Opts.TraceLabel);
          Esc.arg("vc", vcHashHex(Query));
        }
        QueryCache::Outcome O2 = attempt(Query, /*Eager=*/true, GaveUp);
        O2.NumAtoms = std::max(O.NumAtoms, O2.NumAtoms);
        O2.NumArrayLemmas = std::max(O.NumArrayLemmas, O2.NumArrayLemmas);
        O = std::move(O2);
      }
      EscalateSec = double(trace::nowUs() - E0) / 1e6;
      Escalations.fetch_add(1, std::memory_order_relaxed);
    }
    finishQuerySpan(Sp, Query, O, /*Batched=*/false);
    maybeRecordSlow(Query, double(trace::nowUs() - T0) / 1e6, EscalateSec, O,
                    /*Batched=*/false, Recheck);
    return O;
  }

  static const char *verdictName(Solver::Result R) {
    switch (R) {
    case Solver::Result::Sat:
      return "sat";
    case Solver::Result::Unsat:
      return "unsat";
    case Solver::Result::Unknown:
      break;
    }
    return "unknown";
  }

  /// Attaches the standard per-query metadata to a pipeline.solve span
  /// (no-op when tracing is off).
  void finishQuerySpan(trace::ScopedSpan &Sp, TermRef Query,
                       const QueryCache::Outcome &O, bool Batched) {
    if (!Sp.active())
      return;
    Sp.arg("proc", Opts.TraceLabel);
    Sp.arg("vc", vcHashHex(Query));
    Sp.arg("verdict", verdictName(O.R));
    Sp.arg("atoms", double(O.NumAtoms));
    Sp.arg("array_lemmas", double(O.NumArrayLemmas));
    if (Batched)
      Sp.arg("batched", 1.0);
  }

  /// Appends a JSONL record when \p Sec crosses --slow-query-ms (no-op
  /// with the threshold unset). One line per heavy query: the artifact
  /// that turns "insert is slow" folklore into attributable data.
  /// Recheck rows (the one-shot Sat re-confirmation of a batched member)
  /// are tagged recheck:true and excluded from pipeline.slow_queries —
  /// the member's batched row already counts it once.
  void maybeRecordSlow(TermRef Query, double Sec, double EscalateSec,
                       const QueryCache::Outcome &O, bool Batched,
                       bool Recheck = false) {
    double Th = trace::slowQueryThresholdMs();
    if (Th <= 0 || Sec * 1000.0 < Th)
      return;
    static trace::Counter &SlowC = trace::counter("pipeline.slow_queries");
    if (!Recheck)
      SlowC.add();
    json::Value Rec = json::Value::object();
    Rec.set("ts_us", json::Value::number(double(trace::nowUs())));
    Rec.set("proc", json::Value::string(Opts.TraceLabel));
    Rec.set("vc", json::Value::string(vcHashHex(Query)));
    Rec.set("verdict", json::Value::string(verdictName(O.R)));
    Rec.set("seconds", json::Value::number(Sec));
    Rec.set("escalate_seconds", json::Value::number(EscalateSec));
    Rec.set("atoms", json::Value::number(double(O.NumAtoms)));
    Rec.set("array_lemmas", json::Value::number(double(O.NumArrayLemmas)));
    Rec.set("batched", json::Value::boolean(Batched));
    if (Recheck)
      Rec.set("recheck", json::Value::boolean(true));
    trace::appendSlowQuery(Rec);
  }

  /// The caller's manager, frozen for the lifetime of this solver: the
  /// shared read-only base every per-task overlay snapshots from.
  const TermManager &TM;
  const Options &Opts;
  QueryCache *Cache;
  Stats &St;
  std::atomic<unsigned> Escalations{0};
  std::atomic<unsigned> SatRechecks{0};
  std::atomic<uint64_t> GroupLemmasRetained{0};
  std::atomic<uint64_t> GroupLazyLemmas{0};
  std::atomic<uint64_t> GroupTheoryProps{0};
  std::atomic<uint64_t> GroupPropConflicts{0};
  std::atomic<uint64_t> GroupCcReused{0};
};

} // namespace

pipeline::Result pipeline::solveObligations(
    TermManager &TM, const std::vector<vcgen::Obligation> &Obls,
    const Options &Opts, QueryCache *Cache) {
  Result R;
  R.St.Obligations = static_cast<unsigned>(Obls.size());
  // Every exit path folds this call's Stats into the global pipeline.*
  // metric cells (per-call Stats are deltas by construction).
  struct RegistryGuard {
    const Stats &St;
    ~RegistryGuard() { recordStatsInRegistry(St); }
  } Guard{R.St};
  if (Obls.empty())
    return R;

  // ---- Stage 1: simplify + slice each obligation. ----
  struct Prepared {
    TermRef Query = nullptr; ///< negated obligation, simplified + sliced
    TermRef Orig = nullptr;  ///< the untransformed negated obligation
    bool Sliced = false;
    bool Proved = false; ///< discharged by the simplifier
  };
  std::vector<Prepared> Prep(Obls.size());
  Simplifier Simp(TM);
  SimplifyStats SimpStats;
  for (size_t I = 0; I < Obls.size(); ++I) {
    TermRef Guard = Obls[I].Guard;
    TermRef Claim = Obls[I].Claim;
    Prep[I].Orig = TM.mkAnd(Guard, TM.mkNot(Claim));
    // The QF cross-check must see the obligation BEFORE slicing or
    // simplification — a quantifier in a sliced-away conjunct is still a
    // vcgen invariant break.
    if (Opts.CrossCheckQf && !Opts.AllowQuantifiers &&
        TM.containsQuantifier(Prep[I].Orig)) {
      R.V = Verdict::Unknown;
      R.FailedDescription = "internal: quantifier leaked into a QF-mode VC";
      return R;
    }
    bool Simplified = false;
    {
      trace::ScopedSpan Sp("pipeline.simplify");
      if (Sp.active()) {
        Sp.arg("proc", Opts.TraceLabel);
        Sp.arg("vc", vcHashHex(Prep[I].Orig));
      }
      Simplified =
          Opts.Simplify && Simp.simplifyObligation(Guard, Claim, &SimpStats);
    }
    if (Simplified) {
      Prep[I].Proved = true;
      continue;
    }
    Prep[I].Query = TM.mkAnd(Guard, TM.mkNot(Claim));
    if (Opts.Slice) {
      trace::ScopedSpan Sp("pipeline.slice");
      if (Sp.active()) {
        Sp.arg("proc", Opts.TraceLabel);
        Sp.arg("vc", vcHashHex(Prep[I].Orig));
      }
      std::vector<TermRef> Conjuncts = guardConjuncts(Guard);
      R.St.ConjunctsBeforeSlice += static_cast<unsigned>(Conjuncts.size());
      SliceStats SS;
      std::vector<TermRef> Kept = sliceGuard(Conjuncts, Claim, &SS);
      R.St.ConjunctsSliced += SS.ConjunctsDropped;
      if (Kept.size() != Conjuncts.size()) {
        Prep[I].Query = TM.mkAnd(TM.mkAnd(std::move(Kept)), TM.mkNot(Claim));
        Prep[I].Sliced = true;
      }
    }
  }
  R.St.ProvedBySimplify = SimpStats.ProvedTrivially;

  // ---- Stage 2: form query units (per obligation, or legacy groups). ----
  struct Unit {
    TermRef MainQuery;
    std::vector<size_t> Members;
  };
  std::vector<Unit> Units;
  std::vector<size_t> Unproved;
  for (size_t I = 0; I < Obls.size(); ++I)
    if (!Prep[I].Proved)
      Unproved.push_back(I);
  if (Opts.VcSplits == 0) {
    for (size_t I : Unproved)
      Units.push_back({Prep[I].Query, {I}});
  } else if (!Unproved.empty()) {
    unsigned NumGroups = std::max(
        1u, std::min<unsigned>(Opts.VcSplits,
                               static_cast<unsigned>(Unproved.size())));
    for (unsigned G = 0; G < NumGroups; ++G) {
      Unit U;
      std::vector<TermRef> Disjuncts;
      for (size_t I = G; I < Unproved.size(); I += NumGroups) {
        U.Members.push_back(Unproved[I]);
        Disjuncts.push_back(Prep[Unproved[I]].Query);
      }
      U.MainQuery = TM.mkOr(std::move(Disjuncts));
      Units.push_back(std::move(U));
    }
  }

  // ---- Stage 3: solve the main queries. ----
  // Every query term (main, and the Stage-4 resolution queries, which
  // reuse the Stage-1 originals) is already built: freeze the manager so
  // worker tasks can share it read-only through snapshot overlays. The
  // guard thaws on every exit path — callers reuse the manager across
  // solveObligations calls.
  struct FreezeGuard {
    TermManager &TM;
    explicit FreezeGuard(TermManager &TM) : TM(TM) { TM.freeze(); }
    ~FreezeGuard() { TM.thaw(); }
  } Freeze{TM};
  BatchSolver Batch(TM, Opts, Cache, R.St);
  std::vector<TermRef> MainQueries;
  MainQueries.reserve(Units.size());
  for (const Unit &U : Units)
    MainQueries.push_back(U.MainQuery);
  std::vector<QueryCache::Outcome> MainOut = Batch.solve(MainQueries);

  // ---- Stage 4: resolve Sat units against the original obligations. ----
  // A Sat answer is definitive only for a single-obligation query that
  // is still the original: slicing can manufacture spurious models (the
  // dropped conjuncts may be infeasible), a group model does not name
  // the failing member, and a model of a simplified query lacks the
  // equality-substituted variables a user needs in a counterexample.
  // Re-checking the untransformed obligation settles all three.
  std::vector<TermRef> ResQueries;
  std::unordered_map<size_t, size_t> ResIdx; // obligation -> res query index
  for (size_t U = 0; U < Units.size(); ++U) {
    if (MainOut[U].R != Solver::Result::Sat)
      continue;
    const Unit &Un = Units[U];
    if (Un.Members.size() == 1 &&
        Prep[Un.Members[0]].Query == Prep[Un.Members[0]].Orig)
      continue; // untransformed single query: Sat is a real counterexample
    for (size_t M : Un.Members) {
      ResIdx.emplace(M, ResQueries.size());
      ResQueries.push_back(Prep[M].Orig);
      if (Prep[M].Sliced)
        ++R.St.SliceFallbacks;
    }
  }
  std::vector<QueryCache::Outcome> ResOut = Batch.solve(ResQueries);

  // ---- Stage 5: per-obligation verdicts, first failure reported. ----
  enum class OV { Proved, Failed, Unknown };
  std::vector<OV> V(Obls.size(), OV::Proved);
  std::unordered_map<size_t, std::string> Models;
  bool GroupNoWitness = false;
  for (size_t U = 0; U < Units.size(); ++U) {
    const Unit &Un = Units[U];
    const QueryCache::Outcome &O1 = MainOut[U];
    if (O1.R == Solver::Result::Unsat)
      continue;
    if (O1.R == Solver::Result::Unknown) {
      for (size_t M : Un.Members)
        V[M] = OV::Unknown;
      continue;
    }
    if (Un.Members.size() == 1 &&
        Prep[Un.Members[0]].Query == Prep[Un.Members[0]].Orig) {
      V[Un.Members[0]] = OV::Failed;
      Models[Un.Members[0]] = O1.ModelText;
      continue;
    }
    bool AnySat = false, AnyUnknown = false, AnyTransformed = false;
    for (size_t M : Un.Members) {
      const QueryCache::Outcome &O2 = ResOut[ResIdx[M]];
      AnyTransformed |= Prep[M].Query != Prep[M].Orig;
      if (O2.R == Solver::Result::Sat) {
        V[M] = OV::Failed;
        Models[M] = O2.ModelText;
        AnySat = true;
      } else if (O2.R == Solver::Result::Unknown) {
        V[M] = OV::Unknown;
        AnyUnknown = true;
      }
    }
    // Every member refuted on its original form: the unit's model came
    // from a pipeline transform (fine — all proved). With no transform
    // in play that state is an internal inconsistency; preserve the
    // legacy diagnosis.
    if (!AnySat && !AnyUnknown && !AnyTransformed)
      GroupNoWitness = true;
  }

  for (size_t I = 0; I < Obls.size(); ++I) {
    if (V[I] != OV::Failed)
      continue;
    R.V = Verdict::Failed;
    R.FailedDescription =
        Obls[I].Description + " (at " + Obls[I].Loc.toString() + ")";
    R.Counterexample = Models[I];
    return R;
  }
  if (GroupNoWitness) {
    R.V = Verdict::Failed;
    R.FailedDescription = "obligation group failed but no single witness found";
    return R;
  }
  for (size_t I = 0; I < Obls.size(); ++I) {
    if (V[I] != OV::Unknown)
      continue;
    R.V = Verdict::Unknown;
    R.FailedDescription =
        Obls[I].Description + " (at " + Obls[I].Loc.toString() + "): " +
        (Opts.AllowQuantifiers
             ? "quantified encoding: instantiation was incomplete"
             : "solver resource budget exhausted");
    return R;
  }
  return R;
}
