//===- driver/Verifier.cpp - End-to-end verification facade ----------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "driver/Verifier.h"

#include "driver/VerifierInstance.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"

using namespace ids;
using namespace ids::driver;

std::unique_ptr<lang::Module> driver::frontEnd(const std::string &Source,
                                               DiagEngine &Diags) {
  std::unique_ptr<lang::Module> M = lang::parseModule(Source, Diags);
  if (!M)
    return nullptr;
  if (!lang::typeCheck(*M, Diags))
    return nullptr;
  if (!lang::checkGhostDiscipline(*M, Diags))
    return nullptr;
  if (!lang::checkWellBehaved(*M, Diags))
    return nullptr;
  return M;
}

ModuleResult driver::verifySource(const std::string &Source,
                                  const VerifyOptions &Opts,
                                  DiagEngine &Diags) {
  // One-shot convenience wrapper: a throwaway instance gives the same
  // intra-module warm state the old local QueryCache did (identical
  // obligations across procedures and impact checks solve once); the
  // instance's cross-request state simply dies with it. Long-lived
  // callers (serve mode, --benchmark all, --cache-dir) hold a
  // VerifierInstance themselves.
  VerifierInstance Instance;
  return Instance.verify(Source, Opts, Diags);
}
