//===- support/Rational.cpp - Exact rational arithmetic -------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "support/Rational.h"

using namespace ids;

Rational::Rational(BigInt Numerator, BigInt Denominator)
    : Num(std::move(Numerator)), Den(std::move(Denominator)) {
  assert(!Den.isZero() && "rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (Den.isNegative()) {
    Num = -Num;
    Den = -Den;
  }
  if (Num.isZero()) {
    Den = BigInt(1);
    return;
  }
  BigInt G = BigInt::gcd(Num, Den);
  if (!G.isOne()) {
    Num = Num / G;
    Den = Den / G;
  }
}

Rational Rational::operator-() const {
  Rational Result = *this;
  Result.Num = -Result.Num;
  return Result;
}

Rational Rational::operator+(const Rational &RHS) const {
  return Rational(Num * RHS.Den + RHS.Num * Den, Den * RHS.Den);
}

Rational Rational::operator-(const Rational &RHS) const {
  return Rational(Num * RHS.Den - RHS.Num * Den, Den * RHS.Den);
}

Rational Rational::operator*(const Rational &RHS) const {
  return Rational(Num * RHS.Num, Den * RHS.Den);
}

Rational Rational::operator/(const Rational &RHS) const {
  assert(!RHS.isZero() && "division by zero rational");
  return Rational(Num * RHS.Den, Den * RHS.Num);
}

int Rational::compare(const Rational &RHS) const {
  return (Num * RHS.Den).compare(RHS.Num * Den);
}

BigInt Rational::floor() const {
  BigInt Quot = Num / Den;
  // Truncation rounds toward zero; fix up negatives with a remainder.
  if (Num.isNegative() && (Quot * Den) != Num)
    Quot = Quot - BigInt(1);
  return Quot;
}

BigInt Rational::ceil() const {
  BigInt Quot = Num / Den;
  if (!Num.isNegative() && (Quot * Den) != Num)
    Quot = Quot + BigInt(1);
  return Quot;
}

std::string Rational::toString() const {
  if (Den.isOne())
    return Num.toString();
  return Num.toString() + "/" + Den.toString();
}
