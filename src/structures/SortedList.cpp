//===- structures/SortedList.cpp - Sorted list benchmark -------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's running example (Sections 3/4.1): sorted linked lists with
/// the monadic maps of equation (2) and the fully annotated insertion of
/// Figure 7, transcribed from the paper.
///
//===----------------------------------------------------------------------===//

#include "structures/Sources.h"

const char *ids::structures::SortedListSource = R"IDS(
structure SortedList {
  field next: Loc;
  field key: int;
  ghost field prev: Loc;
  ghost field length: int;
  ghost field keys: set<int>;
  ghost field hslist: set<Loc>;

  // Equation (2) of the paper.
  local l (x) {
    (x.next != nil ==>
         x.key <= x.next.key
      && x.next.prev == x
      && x.length == x.next.length + 1
      && x.keys == {x.key} union x.next.keys
      && x.hslist == {x} duplus x.next.hslist)
    && (x.prev != nil ==> x.prev.next == x)
    && (x.next == nil ==>
         x.length == 1 && x.keys == {x.key} && x.hslist == {x})
  }

  correlation (y) { y.prev == nil }

  // Table 1 of the paper.
  impact next   [l] { x, old(x.next) }
  impact key    [l] { x, x.prev }
  impact prev   [l] { x, old(x.prev) }
  impact length [l] { x, x.prev }
  impact keys   [l] { x, x.prev }
  impact hslist [l] { x, x.prev }
}

// Membership via the keys map (the sorted-list 'Find' row of Table 2).
procedure find(x: Loc, k: int) returns (found: bool)
  requires br(l) == {}
  requires x != nil
  ensures  br(l) == {}
  ensures  found <==> k in old(x.keys)
{
  var cur: Loc;
  cur := x;
  found := false;
  InferLCOutsideBr(l, x);
  while (cur != nil && !found)
    invariant br(l) == {}
    invariant found ==> k in x.keys
    invariant (!found && cur != nil) ==> (k in x.keys <==> k in cur.keys)
    invariant (!found && cur == nil) ==> !(k in x.keys)
  {
    InferLCOutsideBr(l, cur);
    if (cur.key == k) {
      found := true;
    } else {
      cur := cur.next;
    }
  }
}

// Figure 7 of the paper: recursive insertion into a sorted list.
procedure insert(x: Loc, k: int) returns (r: Loc)
  requires br(l) == {}
  requires x != nil
  ensures  lc(l, r) && r != nil && r.prev == nil
  ensures  br(l) == ite(old(x.prev) == nil, {}, {old(x.prev)})
  ensures  r.length == old(x.length) + 1
  ensures  r.keys == old(x.keys) union {k}
  ensures  old(x.hslist) subsetof r.hslist
  ensures  r.hslist subsetof (old(x.hslist) union (alloc setminus old(alloc)))
  ensures  r.key == old(x.key) || r.key == k
  ensures  r.key <= old(x.key) && r.key <= k
  modifies x.hslist
{
  var z: Loc;
  var y: Loc;
  var tmp: Loc;
  InferLCOutsideBr(l, x);
  if (x.key >= k) {
    // k inserted before x.
    NewObj(z);
    Mut(z.key, k);
    Mut(z.next, x);
    Mut(z.hslist, {z} union x.hslist);
    Mut(z.length, 1 + x.length);
    Mut(z.keys, {k} union x.keys);
    Mut(x.prev, z);
    AssertLCAndRemove(l, z);
    AssertLCAndRemove(l, x);
    r := z;
  } else {
    if (x.next == nil) {
      // One-element list; k goes after x.
      NewObj(z);
      Mut(z.key, k);
      Mut(z.next, nil);
      Mut(z.hslist, {z});
      Mut(z.length, 1);
      Mut(z.keys, {k});
      Mut(x.next, z);
      Mut(z.prev, x);
      AssertLCAndRemove(l, z);
      Mut(x.prev, nil);
      Mut(x.hslist, {x} union {z});
      Mut(x.length, 2);
      Mut(x.keys, {x.key} union {k});
      AssertLCAndRemove(l, x);
      r := x;
    } else {
      // Recursive case.
      y := x.next;
      InferLCOutsideBr(l, y);
      call tmp := insert(y, k);
      InferLCOutsideBr(l, y);
      ghost {
        if (y.prev == x) {
          Mut(y.prev, nil);
        }
      }
      Mut(x.next, tmp);
      AssertLCAndRemove(l, y);
      Mut(tmp.prev, x);
      AssertLCAndRemove(l, tmp);
      Mut(x.hslist, {x} union tmp.hslist);
      Mut(x.length, 1 + tmp.length);
      Mut(x.keys, {x.key} union tmp.keys);
      Mut(x.prev, nil);
      AssertLCAndRemove(l, x);
      r := x;
    }
  }
}
)IDS";
