//===- bench/bench_table2.cpp - Regenerates Table 2 ------------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 2 of the paper (E1/E4 in DESIGN.md): for every data
/// structure and method in the embedded suite, the LC size (number of
/// conjuncts), lines of executable code + specification + ghost
/// annotation, and the verification time in the default quantifier-free
/// mode. Impact-set verification time per structure is reported alongside
/// (the paper states it is < 3s per structure).
///
//===----------------------------------------------------------------------===//

#include "driver/Verifier.h"
#include "structures/Registry.h"

#include <cstdio>

using namespace ids;

int main() {
  printf("Table 2: implementation and verification of the benchmark "
         "suite (quantifier-free FWYB encoding)\n");
  printf("%-22s %4s  %-26s %-12s %10s  %s\n", "Data Structure", "LC",
         "Method", "LOC+Spec+Ann", "Verif.(s)", "Status");
  printf("---------------------------------------------------------------"
         "---------------------\n");
  bool AllOk = true;
  for (const structures::Benchmark &B : structures::allBenchmarks()) {
    DiagEngine Diags;
    driver::VerifyOptions Opts;
    Opts.VcSplits = 8; // the paper's Boogie configuration (Section 5.3)
    // Bounded resources: our from-scratch solver is orders of magnitude
    // behind Z3 on the largest recursive-method VCs; exhaustion is
    // reported as 'unknown (budget)' instead of an open-ended run.
    Opts.QueryTimeoutSeconds = 90;
    driver::ModuleResult R =
        driver::verifySource(B.Source, Opts, Diags);
    if (!R.FrontEndOk) {
      printf("%-22s  FRONT-END ERROR\n%s", B.Table2Name,
             Diags.toString().c_str());
      AllOk = false;
      continue;
    }
    bool ImpactsOk = true;
    for (const driver::ImpactResult &I : R.Impacts)
      ImpactsOk = ImpactsOk && I.Ok;
    bool First = true;
    for (const driver::ProcResult &P : R.Procs) {
      char Counts[32];
      snprintf(Counts, sizeof(Counts), "%u+%u+%u", P.Metrics.CodeLines,
               P.Metrics.SpecLines, P.Metrics.AnnotLines);
      const char *St = P.St == driver::Status::Verified ? "verified"
                       : P.St == driver::Status::Unknown
                           ? "unknown (budget)"
                           : "FAILED";
      printf("%-22s %4u  %-26s %-12s %10.2f  %s\n",
             First ? B.Table2Name : "", First ? R.LcSize : 0,
             P.Name.c_str(), Counts, P.Seconds, St);
      AllOk = AllOk && P.St != driver::Status::Failed;
      First = false;
    }
    printf("%-22s       impact sets: %zu checked, %s (%.2fs)\n", "",
           R.Impacts.size(), ImpactsOk ? "all correct" : "FAILURES",
           R.ImpactSeconds);
    AllOk = AllOk && ImpactsOk;
  }
  printf("\nPaper reference (Table 2): all 42 methods verify, all but "
         "four in under 10 seconds,\nimpact sets < 3s per structure. See "
         "EXPERIMENTS.md for the per-method comparison.\n");
  return AllOk ? 0 : 1;
}
