//===- tests/support/TraceTest.cpp - Tracing & metrics tests ---------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer's contracts: counter atomicity under
/// contention, high-water-mark semantics, the stats snapshot shape that
/// --stats-json / --stats / serve "stats" all share, span nesting and
/// cross-thread buffer merging in the Chrome trace export, and the
/// slow-query JSONL sink. Counters and span buffers are process-global,
/// so every test resets them and uses test-local counter names.
///
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

using namespace ids;

namespace {

/// Fresh global state per test: zeroed counters, empty span buffers,
/// spans disabled.
class TraceTest : public ::testing::Test {
protected:
  void SetUp() override {
    trace::setSpansEnabled(false);
    trace::resetSpansForTest();
    trace::resetCountersForTest();
  }
  void TearDown() override {
    trace::setSpansEnabled(false);
    trace::resetSpansForTest();
    trace::closeSlowQueryLog();
    trace::setSlowQueryThresholdMs(0);
  }
};

TEST_F(TraceTest, CounterAddAndValue) {
  trace::Counter &C = trace::counter("test.add");
  EXPECT_EQ(C.value(), 0u);
  C.add();
  C.add(41);
  EXPECT_EQ(C.value(), 42u);
  // Interning: the same name is the same cell.
  EXPECT_EQ(&trace::counter("test.add"), &C);
  EXPECT_NE(&trace::counter("test.add2"), &C);
}

TEST_F(TraceTest, CounterRecordMaxIsHighWaterMark) {
  trace::Counter &C = trace::counter("test.max");
  C.recordMax(10);
  C.recordMax(3);
  EXPECT_EQ(C.value(), 10u);
  C.recordMax(17);
  EXPECT_EQ(C.value(), 17u);
}

TEST_F(TraceTest, CounterAtomicUnderContention) {
  trace::Counter &Sum = trace::counter("test.contended_sum");
  trace::Counter &Max = trace::counter("test.contended_max");
  constexpr int Threads = 8;
  constexpr uint64_t PerThread = 100000;
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&, T] {
      for (uint64_t I = 1; I <= PerThread; ++I) {
        Sum.add();
        Max.recordMax(uint64_t(T) * PerThread + I);
      }
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(Sum.value(), uint64_t(Threads) * PerThread);
  EXPECT_EQ(Max.value(), uint64_t(Threads) * PerThread);
}

TEST_F(TraceTest, SnapshotIsNameSortedAndComplete) {
  trace::counter("test.b").add(2);
  trace::counter("test.a").add(1);
  auto Snap = trace::counterSnapshot();
  ASSERT_GE(Snap.size(), 2u);
  for (size_t I = 1; I < Snap.size(); ++I)
    EXPECT_LT(Snap[I - 1].first, Snap[I].first);
  uint64_t A = 0, B = 0;
  for (const auto &[Name, V] : Snap) {
    if (Name == "test.a")
      A = V;
    if (Name == "test.b")
      B = V;
  }
  EXPECT_EQ(A, 1u);
  EXPECT_EQ(B, 2u);
}

TEST_F(TraceTest, StatsJsonShape) {
  trace::counter("test.stats_cell").add(7);
  json::Value S = trace::statsJson();
  ASSERT_TRUE(S.isObject());
  const json::Value *Schema = S.get("schema");
  ASSERT_NE(Schema, nullptr);
  EXPECT_EQ(Schema->asString(), "ids-stats-v1");
  const json::Value *Counters = S.get("counters");
  ASSERT_NE(Counters, nullptr);
  ASSERT_TRUE(Counters->isObject());
  const json::Value *Cell = Counters->get("test.stats_cell");
  ASSERT_NE(Cell, nullptr);
  EXPECT_DOUBLE_EQ(Cell->asNumber(), 7.0);
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(trace::spansEnabled());
  {
    trace::ScopedSpan Sp("test.off");
    EXPECT_FALSE(Sp.active());
    Sp.arg("k", 1.0); // must be a harmless no-op
  }
  json::Value T = trace::chromeTraceJson();
  const json::Value *Evs = T.get("traceEvents");
  ASSERT_NE(Evs, nullptr);
  EXPECT_TRUE(Evs->elements().empty());
}

/// Finds the single event named \p Name; fails the test when absent.
const json::Value *findEvent(const json::Value &Trace, const char *Name) {
  const json::Value *Evs = Trace.get("traceEvents");
  if (!Evs)
    return nullptr;
  for (const json::Value &E : Evs->elements()) {
    const json::Value *N = E.get("name");
    if (N && N->asString() == Name)
      return &E;
  }
  return nullptr;
}

TEST_F(TraceTest, SpanNestingIsContainedInExport) {
  trace::setSpansEnabled(true);
  {
    trace::ScopedSpan Outer("test.outer");
    ASSERT_TRUE(Outer.active());
    Outer.arg("proc", std::string("insert"));
    {
      trace::ScopedSpan Inner("test.inner");
      Inner.arg("atoms", 42.0);
    }
  }
  json::Value T = trace::chromeTraceJson();
  const json::Value *Outer = findEvent(T, "test.outer");
  const json::Value *Inner = findEvent(T, "test.inner");
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  // Chrome nests complete events by interval containment per tid.
  double OutTs = Outer->get("ts")->asNumber();
  double OutEnd = OutTs + Outer->get("dur")->asNumber();
  double InTs = Inner->get("ts")->asNumber();
  double InEnd = InTs + Inner->get("dur")->asNumber();
  EXPECT_LE(OutTs, InTs);
  EXPECT_GE(OutEnd, InEnd);
  EXPECT_DOUBLE_EQ(Outer->get("tid")->asNumber(),
                   Inner->get("tid")->asNumber());
  EXPECT_EQ(Outer->get("ph")->asString(), "X");
  EXPECT_EQ(Outer->get("args")->get("proc")->asString(), "insert");
  EXPECT_DOUBLE_EQ(Inner->get("args")->get("atoms")->asNumber(), 42.0);
}

TEST_F(TraceTest, ThreadBuffersMergeWithDistinctTids) {
  trace::setSpansEnabled(true);
  constexpr int Threads = 4;
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([T] {
      std::string Name = "test.thread" + std::to_string(T);
      trace::ScopedSpan Sp(Name.c_str());
    });
  for (std::thread &T : Pool)
    T.join();
  // Exported after the threads exited: the registry must have kept the
  // buffers alive past thread teardown.
  json::Value Trace = trace::chromeTraceJson();
  std::vector<double> Tids;
  for (int T = 0; T < Threads; ++T) {
    std::string Name = "test.thread" + std::to_string(T);
    const json::Value *E = findEvent(Trace, Name.c_str());
    ASSERT_NE(E, nullptr) << Name;
    Tids.push_back(E->get("tid")->asNumber());
  }
  for (size_t I = 0; I < Tids.size(); ++I)
    for (size_t J = I + 1; J < Tids.size(); ++J)
      EXPECT_NE(Tids[I], Tids[J]);
}

TEST_F(TraceTest, ExportsAreTimestampSorted) {
  trace::setSpansEnabled(true);
  for (int I = 0; I < 5; ++I)
    trace::ScopedSpan Sp("test.seq");
  json::Value T = trace::chromeTraceJson();
  const json::Value *Evs = T.get("traceEvents");
  ASSERT_NE(Evs, nullptr);
  ASSERT_EQ(Evs->elements().size(), 5u);
  double Prev = -1;
  for (const json::Value &E : Evs->elements()) {
    double Ts = E.get("ts")->asNumber();
    EXPECT_GE(Ts, Prev);
    Prev = Ts;
  }
}

TEST_F(TraceTest, FileExportsRoundTripThroughParser) {
  trace::setSpansEnabled(true);
  { trace::ScopedSpan Sp("test.file_span"); }
  trace::counter("test.file_cell").add(3);
  std::string Dir = ::testing::TempDir();
  std::string TracePath = Dir + "/trace_test_trace.json";
  std::string StatsPath = Dir + "/trace_test_stats.json";
  std::string Error;
  ASSERT_TRUE(trace::writeChromeTrace(TracePath, Error)) << Error;
  ASSERT_TRUE(trace::writeStatsJson(StatsPath, Error)) << Error;
  for (const std::string &Path : {TracePath, StatsPath}) {
    std::ifstream In(Path);
    ASSERT_TRUE(In.good()) << Path;
    std::stringstream Buf;
    Buf << In.rdbuf();
    std::string Err;
    json::Value V = json::Value::parse(Buf.str(), Err);
    EXPECT_TRUE(Err.empty()) << Path << ": " << Err;
    EXPECT_TRUE(V.isObject());
    std::remove(Path.c_str());
  }
}

TEST_F(TraceTest, WriteFailuresReportAnError) {
  std::string Error;
  EXPECT_FALSE(trace::writeStatsJson("/nonexistent-dir/s.json", Error));
  EXPECT_FALSE(Error.empty());
  Error.clear();
  EXPECT_FALSE(trace::writeChromeTrace("/nonexistent-dir/t.json", Error));
  EXPECT_FALSE(Error.empty());
  Error.clear();
  EXPECT_FALSE(trace::openSlowQueryLog("/nonexistent-dir/q.jsonl", Error));
  EXPECT_FALSE(Error.empty());
}

TEST_F(TraceTest, SlowQueryLogAppendsParseableJsonl) {
  std::string Path = ::testing::TempDir() + "/trace_test_slow.jsonl";
  std::remove(Path.c_str());
  trace::setSlowQueryThresholdMs(5);
  EXPECT_DOUBLE_EQ(trace::slowQueryThresholdMs(), 5.0);
  std::string Error;
  ASSERT_TRUE(trace::openSlowQueryLog(Path, Error)) << Error;
  for (int I = 0; I < 3; ++I) {
    json::Value R = json::Value::object();
    R.set("vc", json::Value::string("deadbeef"));
    R.set("seconds", json::Value::number(I + 0.5));
    trace::appendSlowQuery(R);
  }
  trace::closeSlowQueryLog();
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string Line;
  int Lines = 0;
  while (std::getline(In, Line)) {
    std::string Err;
    json::Value V = json::Value::parse(Line, Err);
    ASSERT_TRUE(Err.empty()) << Line << ": " << Err;
    ASSERT_TRUE(V.isObject());
    EXPECT_EQ(V.get("vc")->asString(), "deadbeef");
    ++Lines;
  }
  EXPECT_EQ(Lines, 3);
  // Re-opening appends rather than truncates (a daemon restart must not
  // erase history).
  ASSERT_TRUE(trace::openSlowQueryLog(Path, Error)) << Error;
  json::Value R = json::Value::object();
  R.set("vc", json::Value::string("feedface"));
  trace::appendSlowQuery(R);
  trace::closeSlowQueryLog();
  std::ifstream In2(Path);
  Lines = 0;
  while (std::getline(In2, Line))
    ++Lines;
  EXPECT_EQ(Lines, 4);
  std::remove(Path.c_str());
}

TEST_F(TraceTest, AppendWithoutOpenLogIsNoOp) {
  json::Value R = json::Value::object();
  R.set("vc", json::Value::string("cafe"));
  trace::appendSlowQuery(R); // must not crash
}

} // namespace
