//===- lang/Lexer.cpp - Surface language lexer -----------------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>

using namespace ids;
using namespace ids::lang;

std::vector<Token> lang::tokenize(const std::string &Src, DiagEngine &Diags) {
  std::vector<Token> Toks;
  unsigned Line = 1, Col = 1;
  size_t I = 0;
  auto Here = [&]() { return SourceLoc{Line, Col}; };
  auto Advance = [&](size_t N = 1) {
    for (size_t K = 0; K < N && I < Src.size(); ++K) {
      if (Src[I] == '\n') {
        ++Line;
        Col = 1;
      } else {
        ++Col;
      }
      ++I;
    }
  };
  auto Push = [&](TokKind K, std::string Text, SourceLoc L) {
    Toks.push_back({K, std::move(Text), L});
  };

  while (I < Src.size()) {
    char C = Src[I];
    if (isspace(static_cast<unsigned char>(C))) {
      Advance();
      continue;
    }
    // Comments: // to end of line, /* ... */.
    if (C == '/' && I + 1 < Src.size() && Src[I + 1] == '/') {
      while (I < Src.size() && Src[I] != '\n')
        Advance();
      continue;
    }
    if (C == '/' && I + 1 < Src.size() && Src[I + 1] == '*') {
      SourceLoc Start = Here();
      Advance(2);
      while (I + 1 < Src.size() && !(Src[I] == '*' && Src[I + 1] == '/'))
        Advance();
      if (I + 1 >= Src.size()) {
        Diags.error(Start, "unterminated block comment");
        break;
      }
      Advance(2);
      continue;
    }
    SourceLoc L = Here();
    if (isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Text;
      while (I < Src.size() &&
             (isalnum(static_cast<unsigned char>(Src[I])) || Src[I] == '_')) {
        Text += Src[I];
        Advance();
      }
      Push(TokKind::Ident, std::move(Text), L);
      continue;
    }
    if (isdigit(static_cast<unsigned char>(C))) {
      std::string Text;
      while (I < Src.size() && isdigit(static_cast<unsigned char>(Src[I]))) {
        Text += Src[I];
        Advance();
      }
      Push(TokKind::IntLit, std::move(Text), L);
      continue;
    }
    auto Two = [&](char A, char B) {
      return C == A && I + 1 < Src.size() && Src[I + 1] == B;
    };
    // Multi-char operators first.
    if (C == '<' && I + 3 < Src.size() && Src.compare(I, 4, "<==>") == 0) {
      Push(TokKind::Iff, "<==>", L);
      Advance(4);
      continue;
    }
    if (C == '=' && I + 2 < Src.size() && Src.compare(I, 3, "==>") == 0) {
      Push(TokKind::Implies, "==>", L);
      Advance(3);
      continue;
    }
    if (Two(':', '=')) {
      Push(TokKind::Assign, ":=", L);
      Advance(2);
      continue;
    }
    if (Two('=', '=')) {
      Push(TokKind::EqEq, "==", L);
      Advance(2);
      continue;
    }
    if (Two('!', '=')) {
      Push(TokKind::NotEq, "!=", L);
      Advance(2);
      continue;
    }
    if (Two('<', '=')) {
      Push(TokKind::LessEq, "<=", L);
      Advance(2);
      continue;
    }
    if (Two('>', '=')) {
      Push(TokKind::GreaterEq, ">=", L);
      Advance(2);
      continue;
    }
    if (Two('&', '&')) {
      Push(TokKind::AndAnd, "&&", L);
      Advance(2);
      continue;
    }
    if (Two('|', '|')) {
      Push(TokKind::OrOr, "||", L);
      Advance(2);
      continue;
    }
    TokKind K;
    switch (C) {
    case '(':
      K = TokKind::LParen;
      break;
    case ')':
      K = TokKind::RParen;
      break;
    case '{':
      K = TokKind::LBrace;
      break;
    case '}':
      K = TokKind::RBrace;
      break;
    case '[':
      K = TokKind::LBracket;
      break;
    case ']':
      K = TokKind::RBracket;
      break;
    case '<':
      K = TokKind::LAngle;
      break;
    case '>':
      K = TokKind::RAngle;
      break;
    case ',':
      K = TokKind::Comma;
      break;
    case ';':
      K = TokKind::Semi;
      break;
    case ':':
      K = TokKind::Colon;
      break;
    case '.':
      K = TokKind::Dot;
      break;
    case '+':
      K = TokKind::Plus;
      break;
    case '-':
      K = TokKind::Minus;
      break;
    case '*':
      K = TokKind::Star;
      break;
    case '/':
      K = TokKind::Slash;
      break;
    case '!':
      K = TokKind::Bang;
      break;
    default:
      Diags.error(L, std::string("unexpected character '") + C + "'");
      Advance();
      continue;
    }
    Push(K, std::string(1, C), L);
    Advance();
  }
  Toks.push_back({TokKind::Eof, "", Here()});
  return Toks;
}
