//===- tests/support/JsonTest.cpp - JSON layer tests -----------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serve-mode protocol rests on this layer: round trips, escaping
/// (a serialized value must never contain a raw newline — one value is
/// one protocol line), member-order preservation, and the malformed
/// inputs that must fail with an error instead of crashing the daemon.
///
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

using namespace ids;
using namespace ids::json;

namespace {

Value parseOk(const std::string &Text) {
  std::string Err;
  Value V = Value::parse(Text, Err);
  EXPECT_TRUE(Err.empty()) << Text << " -> " << Err;
  return V;
}

std::string parseErr(const std::string &Text) {
  std::string Err;
  Value V = Value::parse(Text, Err);
  EXPECT_FALSE(Err.empty()) << "expected a parse error for: " << Text;
  EXPECT_TRUE(V.isNull());
  return Err;
}

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(parseOk("null").isNull());
  EXPECT_TRUE(parseOk("true").asBool());
  EXPECT_FALSE(parseOk("false").asBool());
  EXPECT_DOUBLE_EQ(parseOk("42").asNumber(), 42.0);
  EXPECT_DOUBLE_EQ(parseOk("-3.5").asNumber(), -3.5);
  EXPECT_DOUBLE_EQ(parseOk("1e3").asNumber(), 1000.0);
  EXPECT_EQ(parseOk("\"hi\"").asString(), "hi");
  EXPECT_EQ(parseOk("  \"ws\"  ").asString(), "ws");
}

TEST(JsonTest, ParsesNested) {
  Value V = parseOk(R"({"a": [1, {"b": "c"}], "d": {"e": null}})");
  ASSERT_TRUE(V.isObject());
  const Value *A = V.get("a");
  ASSERT_NE(A, nullptr);
  ASSERT_TRUE(A->isArray());
  ASSERT_EQ(A->elements().size(), 2u);
  EXPECT_DOUBLE_EQ(A->elements()[0].asNumber(), 1.0);
  const Value *B = A->elements()[1].get("b");
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->asString(), "c");
  EXPECT_EQ(V.get("nope"), nullptr);
}

TEST(JsonTest, EscapesRoundTrip) {
  Value V = Value::object();
  V.set("s", Value::string("line1\nline2\t\"quoted\"\\slash\x01"));
  std::string S = V.serialize();
  // One value = one protocol line: no raw control characters may appear.
  for (char C : S)
    EXPECT_GE(static_cast<unsigned char>(C), 0x20u) << S;
  Value Back = parseOk(S);
  EXPECT_EQ(Back.get("s")->asString(), V.get("s")->asString());
}

TEST(JsonTest, UnicodeEscapes) {
  EXPECT_EQ(parseOk("\"\\u0041\"").asString(), "A");
  EXPECT_EQ(parseOk("\"\\u00e9\"").asString(), "\xc3\xa9"); // é
  // Surrogate pair: U+1F600.
  EXPECT_EQ(parseOk("\"\\ud83d\\ude00\"").asString(),
            "\xf0\x9f\x98\x80");
  parseErr("\"\\ud83d\""); // lone high surrogate
  parseErr("\"\\udc00\""); // lone low surrogate
  parseErr("\"\\uZZZZ\"");
}

TEST(JsonTest, MemberOrderIsInsertionOrder) {
  // The serve protocol pins "name" before "status"; the serializer must
  // preserve insertion order for that to hold.
  Value V = Value::object();
  V.set("name", Value::string("find"));
  V.set("status", Value::string("verified"));
  V.set("name", Value::string("insert")); // overwrite keeps position
  EXPECT_EQ(V.serialize(), R"({"name":"insert","status":"verified"})");
}

TEST(JsonTest, NumbersSerializeCompactly) {
  EXPECT_EQ(Value::number(3).serialize(), "3");
  EXPECT_EQ(Value::number(-17).serialize(), "-17");
  EXPECT_EQ(Value::number(0.5).serialize(), "0.5");
  Value Back = parseOk(Value::number(0.1).serialize());
  EXPECT_DOUBLE_EQ(Back.asNumber(), 0.1); // full precision survives
}

TEST(JsonTest, MalformedInputsError) {
  parseErr("");
  parseErr("{");
  parseErr("{\"a\":}");
  parseErr("{\"a\":1,}");
  parseErr("[1,");
  parseErr("nul");
  parseErr("tru");
  parseErr("\"unterminated");
  parseErr("\"bad\\escape\"");
  parseErr("{\"a\":1} trailing");
  parseErr("1 2");
  parseErr("{'single': 1}");
  parseErr("{\"a\" 1}");
  parseErr("--5");
  parseErr("1e");
  parseErr("\"raw\nnewline\"");
}

TEST(JsonTest, DepthCapStopsHostileNesting) {
  std::string Deep(100000, '[');
  std::string Err;
  Value V = Value::parse(Deep, Err);
  EXPECT_FALSE(Err.empty());
  EXPECT_NE(Err.find("nesting"), std::string::npos);
}

} // namespace
