//===- driver/Cli.h - ids-verify command-line parsing ----------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line parsing for `ids-verify`, split from main() so the
/// validation rules are unit-testable: every value-taking flag reports
/// `missing argument for --flag` when the value is absent, and numeric
/// flags reject non-numeric or negative values instead of the old
/// atoi/atof behaviour (`--jobs abc` silently meant 0 = every core,
/// `--jobs -4` wrapped through the unsigned cast to ~4 billion workers).
/// Any parse error maps to CLI exit code 2.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_DRIVER_CLI_H
#define IDS_DRIVER_CLI_H

#include "driver/Verifier.h"

#include <string>

namespace ids {
namespace driver {

struct CliArgs {
  enum class Command {
    Usage,   ///< no input given: print usage, exit 2
    List,    ///< --list
    OneShot, ///< verify FILE or --benchmark NAME once
    BenchAll,///< --benchmark all
    Serve,   ///< long-lived line-JSON daemon on stdin/stdout
  };

  Command Cmd = Command::Usage;
  VerifyOptions Opts;
  std::string File;      ///< positional .ids path (OneShot)
  std::string BenchName; ///< --benchmark NAME
  std::string CacheDir;  ///< --cache-dir DIR ("" = memory-only)
  bool ShowStats = false;

  // Observability (see README "Observability"):
  std::string TraceOut;  ///< --trace-out FILE: Chrome trace-event JSON
  std::string StatsJson; ///< --stats-json FILE: cumulative metrics snapshot
  double SlowQueryMs = 0;   ///< --slow-query-ms N (0 = off)
  std::string SlowQueryLog; ///< --slow-query-log FILE (JSONL sink)

  /// Non-empty when parsing failed; the caller prints it and exits 2.
  std::string Error;
  bool ok() const { return Error.empty(); }
};

/// Parses argv (argv[0] is skipped). Never exits or prints.
CliArgs parseCli(int Argc, const char *const *Argv);

/// The full usage/help text.
const char *usageText();

} // namespace driver
} // namespace ids

#endif // IDS_DRIVER_CLI_H
