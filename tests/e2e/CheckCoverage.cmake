# Verifies the golden-file suite covers every embedded Table 2 benchmark:
# each name printed by `ids-verify --list` must have a golden file, and
# each golden file must correspond to a listed benchmark.
#   cmake -DIDS_VERIFY=<exe> -DGOLDEN_DIR=<dir> -P CheckCoverage.cmake

if(NOT DEFINED IDS_VERIFY OR NOT DEFINED GOLDEN_DIR)
  message(FATAL_ERROR "usage: cmake -DIDS_VERIFY=... -DGOLDEN_DIR=... -P CheckCoverage.cmake")
endif()

execute_process(
  COMMAND "${IDS_VERIFY}" --list
  OUTPUT_VARIABLE ListOut
  RESULT_VARIABLE ExitCode)
if(NOT ExitCode EQUAL 0)
  message(FATAL_ERROR "ids-verify --list failed with exit code ${ExitCode}")
endif()

string(REGEX MATCHALL "[^\n]+" Lines "${ListOut}")
set(Listed "")
foreach(Line ${Lines})
  # Lines look like `singly-linked-list  (Singly-Linked List)`.
  string(REGEX MATCH "^[^ ]+" Name "${Line}")
  if(NOT Name STREQUAL "")
    list(APPEND Listed "${Name}")
    if(NOT EXISTS "${GOLDEN_DIR}/${Name}.golden")
      message(SEND_ERROR "benchmark '${Name}' has no golden file "
              "(expected ${GOLDEN_DIR}/${Name}.golden)")
    endif()
  endif()
endforeach()

if(Listed STREQUAL "")
  message(FATAL_ERROR "ids-verify --list printed no benchmarks")
endif()

file(GLOB Goldens "${GOLDEN_DIR}/*.golden")
foreach(Golden ${Goldens})
  get_filename_component(Name "${Golden}" NAME_WE)
  list(FIND Listed "${Name}" Idx)
  if(Idx EQUAL -1)
    message(SEND_ERROR "stale golden file '${Golden}': no benchmark "
            "named '${Name}' in --list output")
  endif()
endforeach()
