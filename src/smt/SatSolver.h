//===- smt/SatSolver.h - CDCL SAT core -------------------------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conflict-driven clause-learning SAT solver: two-watched-literal
/// propagation, 1UIP conflict analysis with backjumping, EVSIDS branching,
/// phase saving and Luby restarts.
///
/// The SMT layer drives it lazily (offline DPLL(T)): whenever the solver
/// reaches a full assignment it invokes a TheoryCallback, which either
/// accepts the model or returns a conflict clause (an explanation from the
/// theory stack) that is learned and search resumes. This is terminating:
/// each theory clause removes at least one total assignment.
///
/// The clause database is organized in assertion levels for incremental
/// solving (pushAssertLevel / popAssertLevel): every clause carries the
/// assertion level it depends on, and popping a level retracts exactly the
/// clauses above it. Learned clauses record the maximum assertion level of
/// their antecedents, so a lemma derived purely from theory reasoning and
/// level-0 input (assertion level 0) survives every pop — this is what lets
/// an incremental SolverContext reuse theory lemmas across queries that
/// share an assertion-stack prefix.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SMT_SATSOLVER_H
#define IDS_SMT_SATSOLVER_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ids {
namespace sat {

/// Boolean variable index (0-based).
using Var = int;

/// A literal: variable + sign, encoded as 2*Var+Sign (Sign==1 is negation).
struct Lit {
  int Code = -1;

  Lit() = default;
  Lit(Var V, bool Negated) : Code(2 * V + (Negated ? 1 : 0)) {}

  Var var() const { return Code >> 1; }
  bool negated() const { return Code & 1; }
  Lit operator~() const {
    Lit Result;
    Result.Code = Code ^ 1;
    return Result;
  }
  bool operator==(const Lit &RHS) const { return Code == RHS.Code; }
  bool operator!=(const Lit &RHS) const { return Code != RHS.Code; }
};

/// Three-valued assignment.
enum class LBool : uint8_t { False, True, Undef };

/// Theory hook invoked on full propositional assignments.
class TheoryCallback {
public:
  virtual ~TheoryCallback();

  /// Returns true to accept the model. Returns false and fills
  /// \p ConflictOut (a clause that is currently all-false) to reject it.
  virtual bool onFullModel(std::vector<Lit> &ConflictOut) = 0;

  /// DPLL(T) theory propagation, called at BCP fixpoints on the partial
  /// trail. Returns false and fills \p ConflictOut (all-false clause) when
  /// the partial assignment is already theory-inconsistent; otherwise
  /// returns true and appends to \p ImpliedOut unassigned literals
  /// entailed by the current trail. Reasons are requested lazily via
  /// explainPropagation. Propagation is an optimization only: a theory
  /// that never propagates is still complete through onFullModel.
  virtual bool propagatePartial(std::vector<Lit> &ImpliedOut,
                                std::vector<Lit> &ConflictOut) {
    (void)ImpliedOut;
    (void)ConflictOut;
    return true;
  }

  /// Produces the reason clause for a literal previously returned by
  /// propagatePartial: ReasonOut[0] == P, every other literal is the
  /// negation of a trail literal that was assigned before P. The clause
  /// must be theory-valid (assertion level 0).
  virtual void explainPropagation(Lit P, std::vector<Lit> &ReasonOut) {
    (void)P;
    (void)ReasonOut;
  }

  /// Lazy theory instantiation: after onFullModel accepts a model, the
  /// solver asks whether the theory queued lemma clauses that must be
  /// asserted before the Sat verdict can stand. When true, the solver
  /// backtracks to decision level zero, calls flushPendingLemmas(), and
  /// resumes search instead of returning Sat.
  virtual bool hasPendingLemmas() { return false; }
  /// Asserts the queued lemmas (called at decision level zero). Returns
  /// false if asserting them refuted the instance at the current
  /// assertion level.
  virtual bool flushPendingLemmas() { return true; }
};

/// CDCL solver with an assertion-level clause database. One-shot callers
/// ignore the level API entirely (everything lives at level 0 and behaves
/// monotonically); incremental callers bracket clause additions with
/// pushAssertLevel / popAssertLevel and may interleave solve() calls.
class SatSolver {
public:
  enum class Result { Sat, Unsat };

  /// Creates a new variable and returns its index.
  Var newVar();
  int numVars() const { return static_cast<int>(Assign.size()); }

  /// Adds a clause at the current assertion level; returns false if the
  /// solver is unsatisfiable at the current level. Must be called at
  /// decision level zero (fresh solver, between solve() calls, or after
  /// resetToRoot()).
  bool addClause(std::vector<Lit> Lits);

  /// Runs CDCL search. \p Theory may be null for pure SAT. After a Sat
  /// result the assignment is left in place for model reads; call
  /// resetToRoot() before mutating the clause database again.
  Result solve(TheoryCallback *Theory = nullptr);

  // ------------------------------------------------- Assertion levels --
  /// Opens a new assertion level; clauses added from now on are retracted
  /// by the matching popAssertLevel().
  unsigned pushAssertLevel();
  /// Retracts every clause (input and learned) whose derivation depends on
  /// the top assertion level, unassigns root literals implied by them, and
  /// clears an "unsat at level" verdict that rested on the popped level.
  void popAssertLevel();
  unsigned assertLevel() const { return CurrentAssertLevel; }
  /// Undoes any in-progress search state (decision levels) so the clause
  /// database can be mutated. Idempotent.
  void resetToRoot() { backtrack(0); }
  /// True when the instance is unsatisfiable at the current assertion
  /// level (a refutation was derived from clauses at or below it).
  bool unsatAtCurrentLevel() const {
    return UnsatAssertLevel >= 0 &&
           UnsatAssertLevel <= static_cast<int>(CurrentAssertLevel);
  }

  /// Model access after Sat.
  bool modelValue(Var V) const {
    assert(Assign[V] != LBool::Undef);
    return Assign[V] == LBool::True;
  }
  LBool value(Lit L) const {
    LBool A = Assign[L.var()];
    if (A == LBool::Undef)
      return LBool::Undef;
    bool B = (A == LBool::True) != L.negated();
    return B ? LBool::True : LBool::False;
  }

  /// The assignment trail (assigned literals in propagation order). The
  /// persistent theory engine uses it to sync its backtrackable state to
  /// the longest unchanged prefix between consecutive full models.
  const std::vector<Lit> &trail() const { return Trail; }

  // ---------------------------------------------- Theory propagation --
  /// Enables the propagatePartial hook and theory-trail maintenance.
  /// Off by default; --no-theory-prop is the differential baseline.
  void setTheoryPropagation(bool Enabled) { TheoryPropEnabled = Enabled; }
  bool theoryPropagation() const { return TheoryPropEnabled; }
  /// Declares \p V a theory atom: its assignments are mirrored onto the
  /// theory trail (the subsequence of the trail the theory cares about).
  void markTheoryVar(Var V) { IsTheoryVar[V] = 1; }
  /// True while the variable occurs in a live clause. The theory engine
  /// uses this to avoid propagating atoms whose clauses all died with
  /// popped assertion levels (stale-atom suppression).
  bool varActive(Var V) const { return VarOcc[V] > 0; }
  /// Theory-atom subsequence of the trail, in assignment order. Valid
  /// only with theory propagation enabled.
  const std::vector<Lit> &theoryTrail() const { return TheoryTrail; }
  /// Bumped whenever the theory trail shrinks (backtrack or pop): the
  /// engine's cue that a previously synced prefix may be gone. While it
  /// is unchanged the theory trail has only grown.
  uint64_t theoryTrailResets() const { return TheoryTrailResetsCount; }

  // ------------------------------------------------- Clause deletion --
  /// Enables/disables the activity-based learned-clause sweep (on by
  /// default). Differential baselines run with it off (--no-reduce-db).
  void setClauseDeletion(bool Enabled) { ClauseDeletionEnabled = Enabled; }
  /// Deletes the cold half of the deletable learned clauses: learned,
  /// longer than two literals, and not locked (a locked clause is the
  /// reason of a currently assigned literal — deleting it would orphan
  /// the implication graph). solve() invokes this automatically when the
  /// live learned set crosses a growing limit; exposed for tests.
  void reduceDB();
  /// Shrinks the learned-set limit that triggers reduceDB() (tests force
  /// frequent sweeps with a tiny limit; the limit still grows 1.2x per
  /// sweep, which keeps search terminating with regenerable theory
  /// lemmas).
  void setReduceDbLimit(unsigned Limit) { MaxLearned = Limit; }

  // Statistics (exposed for the micro-bench harness).
  uint64_t numConflicts() const { return Conflicts; }
  uint64_t numDecisions() const { return Decisions; }
  uint64_t numPropagations() const { return Propagations; }
  uint64_t numTheoryConflicts() const { return TheoryConflicts; }
  uint64_t numTheoryPropagations() const { return TheoryPropagations; }
  uint64_t numTheoryPropConflicts() const { return TheoryPropConflicts; }
  uint64_t numRestarts() const { return Restarts; }
  uint64_t numLemmasDeleted() const { return LemmasDeleted; }
  uint64_t numReduceDbSweeps() const { return ReduceDbSweeps; }
  /// Live learned clauses (dead slots excluded).
  unsigned numLearnedClauses() const { return NumLearnedLive; }
  /// Distinct learned clauses that survived at least one pop: the
  /// measurable payoff of assertion-level-0 theory lemmas. Each lemma
  /// counts once (at the first pop it outlives), so the metric reflects
  /// reusable lemmas, not lemmas x pops.
  uint64_t numLemmasRetained() const { return LemmasRetained; }
  /// Live clauses in the database (dead slots excluded).
  unsigned numClauses() const { return NumLiveClauses; }

private:
  struct Clause {
    std::vector<Lit> Lits;
    bool Learned = false;
    bool Dead = false;
    /// Already counted toward LemmasRetained (each lemma counts once, at
    /// the first pop it survives).
    bool CountedRetained = false;
    /// Lazily materialized theory-propagation reason: never attached to
    /// the watch lists, excluded from VarOcc and the learned-clause
    /// economy, and freed as soon as its literal is unassigned.
    bool ReasonOnly = false;
    /// Maximum assertion level of the clauses this one was derived from
    /// (== the level it was added at, for input clauses).
    unsigned AssertLevel = 0;
    /// EVSIDS-style clause activity: bumped when the clause participates
    /// in a conflict derivation, decayed (via ClaInc scaling) with every
    /// conflict. reduceDB() deletes the cold half by this score.
    double Act = 0.0;
  };
  struct Watcher {
    int ClauseIdx;
    Lit Blocker;
  };

  /// Reason sentinel for a theory-propagated literal whose reason clause
  /// has not been materialized yet (analyze() asks the theory on demand).
  static constexpr int ReasonTheory = -2;

  void enqueue(Lit L, int Reason);
  /// Returns the index of a conflicting clause, or -1.
  int propagate();
  /// Asks the active theory for the reason clause of the propagated
  /// variable \p V and installs it as a ReasonOnly clause; returns its
  /// index (also written back to ReasonIdx[V]).
  int materializeReason(Var V);
  void analyze(int ConflictIdx, std::vector<Lit> &LearnedOut,
               int &BacktrackLevel, unsigned &AssertLevelOut);
  void backtrack(int Level);
  Lit pickBranchLit();
  void bumpVar(Var V);
  void decayActivities();
  void heapSiftUp(int I);
  void heapSiftDown(int I);
  /// Inserts \p V into the branching heap unless already present.
  void heapInsert(Var V);
  void attachClause(int Idx);
  void detachClause(int Idx);
  int allocClause(std::vector<Lit> Lits, bool Learned, unsigned AssertLevel,
                  bool ReasonOnly = false);
  int currentLevel() const { return static_cast<int>(TrailLim.size()); }
  /// Learns a clause whose literals are all currently false (theory
  /// conflict), backjumping appropriately. Returns false on a refutation
  /// at the current assertion level.
  bool learnConflict(std::vector<Lit> Lits);
  /// Records a refutation valid at assertion level \p Level.
  void markUnsat(unsigned Level);
  static uint64_t luby(uint64_t I);

  void bumpOcc(const std::vector<Lit> &Lits, int Delta);

  void bumpClause(int Idx);
  void decayClauseActivities();
  /// A clause is locked while it is the reason of an assigned literal.
  bool clauseLocked(int Idx) const;
  /// Detaches, kills and recycles one clause (shared by popAssertLevel
  /// and reduceDB).
  void removeClause(int Idx);

  std::vector<Clause> Clauses;
  std::vector<int> FreeClauseSlots;
  /// Live-clause occurrence count per variable. A variable with no live
  /// occurrence is unconstrained — the search never branches on it, so
  /// atoms whose clauses all died with popped levels stay unassigned and
  /// cost the theory engines nothing (stale-atom suppression).
  std::vector<unsigned> VarOcc;
  std::vector<std::vector<Watcher>> Watches; // indexed by Lit.Code
  std::vector<LBool> Assign;
  std::vector<int> Level;
  std::vector<int> ReasonIdx; // clause index or -1
  /// Assertion level a root (decision-level-0) assignment depends on;
  /// meaningful only while Level[V] == 0 and V is assigned.
  std::vector<unsigned> RootAssertLevel;
  std::vector<Lit> Trail;
  std::vector<int> TrailLim;
  size_t PropagateHead = 0;

  std::vector<double> Activity;
  std::vector<bool> SavedPhase;
  /// Indexed binary max-heap over Activity: each variable appears at most
  /// once and bumps sift it in place, so the heap never accumulates stale
  /// duplicate entries the way a lazy heap does.
  std::vector<Var> Heap;
  std::vector<int> HeapPos; // var -> index in Heap, or -1
  double VarInc = 1.0;
  double ClaInc = 1.0;

  bool ClauseDeletionEnabled = true;
  unsigned NumLearnedLive = 0;
  /// Learned-set size that triggers the next reduceDB() sweep; grows 1.2x
  /// per sweep so deletion of regenerable theory lemmas cannot livelock
  /// the search.
  unsigned MaxLearned = 2048;

  unsigned CurrentAssertLevel = 0;
  /// Lowest assertion level at which a refutation was derived, or -1.
  int UnsatAssertLevel = -1;
  unsigned NumLiveClauses = 0;
  uint64_t Conflicts = 0;
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
  uint64_t TheoryConflicts = 0;
  uint64_t LemmasRetained = 0;
  uint64_t Restarts = 0;
  uint64_t LemmasDeleted = 0;
  uint64_t ReduceDbSweeps = 0;

  // Theory propagation state.
  bool TheoryPropEnabled = false;
  std::vector<char> IsTheoryVar;
  /// Theory-atom subsequence of the trail, plus each entry's index into
  /// Trail (so backtrack can pop exactly the retracted suffix).
  std::vector<Lit> TheoryTrail;
  std::vector<int> TheoryTrailSrc;
  uint64_t TheoryTrailResetsCount = 0;
  /// Theory-trail size at the last propagatePartial call: the hook is
  /// skipped while no new theory atom was assigned.
  size_t TheoryPropSeen = 0;
  /// The callback of the running solve(), for lazy reason materialization.
  TheoryCallback *ActiveTheory = nullptr;
  uint64_t TheoryPropagations = 0;
  uint64_t TheoryPropConflicts = 0;
  std::vector<Lit> TheoryImpliedBuf;
  std::vector<Lit> TheoryConflictBuf;

  std::vector<char> SeenBuffer; // scratch for analyze()
};

} // namespace sat
} // namespace ids

#endif // IDS_SMT_SATSOLVER_H
