//===- lang/Parser.h - Surface language parser -----------------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing a Module. On error, diagnostics are
/// reported and nullptr is returned.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_LANG_PARSER_H
#define IDS_LANG_PARSER_H

#include "lang/Ast.h"

#include <memory>

namespace ids {
namespace lang {

/// Parses a complete module (one structure + procedures).
std::unique_ptr<Module> parseModule(const std::string &Source,
                                    DiagEngine &Diags);

} // namespace lang
} // namespace ids

#endif // IDS_LANG_PARSER_H
