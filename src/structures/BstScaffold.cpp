//===- structures/BstScaffold.cpp - BST + scaffold benchmark ---------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A binary search tree overlaid with an enumeration-list scaffold over
/// the same nodes (the systems idiom of chaining all tree nodes for O(1)
/// iteration/reclamation). Two independent local-condition groups: `t` is
/// the BST condition of Appendix D.2, `s` a counted doubly-linked list
/// over separate fields. Procedures touching one group leave the other's
/// broken set alone; register_node must discharge both, because a fresh
/// object enters every group's broken set.
///
//===----------------------------------------------------------------------===//

#include "structures/Sources.h"

const char *ids::structures::BstScaffoldSource = R"IDS(
structure BstScaffold {
  field l: Loc;
  field r: Loc;
  field key: int;
  field snext: Loc;
  ghost field p: Loc;
  ghost field rank: rat;
  ghost field min: int;
  ghost field max: int;
  ghost field sprev: Loc;
  ghost field scount: int;

  // Group t: the BST condition (Appendix D.2).
  local t (x) {
    x.min <= x.key && x.key <= x.max
    && (x.p != nil ==> (x.p.l == x || x.p.r == x))
    && (x.l == nil ==> x.min == x.key)
    && (x.l != nil ==>
          x.l.p == x && x.l.rank < x.rank
       && x.l.max < x.key && x.min == x.l.min)
    && (x.r == nil ==> x.max == x.key)
    && (x.r != nil ==>
          x.r.p == x && x.r.rank < x.rank
       && x.key < x.r.min && x.max == x.r.max)
  }

  // Group s: the enumeration scaffold — a counted list in registration
  // order, fully independent of the tree shape.
  local s (x) {
    (x.snext != nil ==>
         x.snext.sprev == x
      && x.scount == x.snext.scount + 1)
    && (x.sprev != nil ==> x.sprev.snext == x)
    && (x.snext == nil ==> x.scount == 1)
  }

  correlation (y) { y.p == nil && y.sprev == nil }

  impact l      [t] { x, old(x.l) }
  impact r      [t] { x, old(x.r) }
  impact p      [t] { x, old(x.p) }
  impact key    [t] { x }
  impact min    [t] { x, x.p }
  impact max    [t] { x, x.p }
  impact rank   [t] { x, x.p }
  impact snext  [s] { x, old(x.snext) }
  impact sprev  [s] { x, old(x.sprev) }
  impact scount [s] { x, x.sprev }
}

// Search by key in the tree overlay; the scaffold group is untouched.
procedure find(root: Loc, k: int) returns (res: Loc)
  requires br(t) == {}
  requires root != nil
  ensures  br(t) == {}
  ensures  res != nil ==> res.key == k
{
  var cur: Loc;
  cur := root;
  res := nil;
  while (cur != nil && res == nil)
    invariant br(t) == {}
    invariant res != nil ==> res.key == k
  {
    InferLCOutsideBr(t, cur);
    if (cur.key == k) {
      res := cur;
    } else {
      if (k < cur.key) {
        cur := cur.l;
      } else {
        cur := cur.r;
      }
    }
  }
}

// Register a fresh node on the scaffold front. The new object enters both
// groups' broken sets: it leaves `s` by linking ahead of h, and leaves
// `t` as a detached singleton tree node (leaf with min == key == max).
procedure register_node(h: Loc, k: int) returns (z: Loc)
  requires br(t) == {} && br(s) == {}
  requires h != nil && h.sprev == nil
  ensures  br(t) == {} && br(s) == {}
  ensures  z != nil && z.snext == h
  ensures  z.scount == old(h.scount) + 1
  ensures  z.key == k && z.p == nil
  modifies {h}
{
  InferLCOutsideBr(s, h);
  NewObj(z);
  Mut(z.key, k);
  Mut(z.snext, h);
  ghost {
    Mut(h.sprev, z);
    Mut(z.scount, h.scount + 1);
    Mut(z.min, k);
    Mut(z.max, k);
  }
  AssertLCAndRemove(t, z);
  AssertLCAndRemove(s, z);
  AssertLCAndRemove(s, h);
}

// Walk the scaffold to its end; the count map ticks down to exactly 1,
// so the steps taken recover the head's registered-node count.
procedure scaffold_length(h: Loc) returns (n: int)
  requires br(s) == {}
  requires h != nil
  ensures  br(s) == {}
  ensures  n == old(h.scount)
{
  var cur: Loc;
  n := 1;
  cur := h;
  InferLCOutsideBr(s, h);
  while (cur.snext != nil)
    invariant br(s) == {}
    invariant cur != nil
    invariant n + cur.scount == old(h.scount) + 1
  {
    InferLCOutsideBr(s, cur);
    n := n + 1;
    cur := cur.snext;
  }
  InferLCOutsideBr(s, cur);
}
)IDS";
