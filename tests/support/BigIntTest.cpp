//===- tests/support/BigIntTest.cpp - BigInt unit & property tests --------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"

#include <gtest/gtest.h>

#include <random>

using ids::BigInt;

TEST(BigIntTest, ConstructionAndToString) {
  EXPECT_EQ(BigInt(0).toString(), "0");
  EXPECT_EQ(BigInt(42).toString(), "42");
  EXPECT_EQ(BigInt(-42).toString(), "-42");
  EXPECT_EQ(BigInt(1000000000).toString(), "1000000000");
  EXPECT_EQ(BigInt(INT64_MIN).toString(), "-9223372036854775808");
  EXPECT_EQ(BigInt(INT64_MAX).toString(), "9223372036854775807");
}

TEST(BigIntTest, FromStringRoundTrip) {
  const char *Cases[] = {"0",
                         "7",
                         "-7",
                         "123456789012345678901234567890",
                         "-999999999999999999999999999999999"};
  for (const char *C : Cases)
    EXPECT_EQ(BigInt::fromString(C).toString(), C);
}

TEST(BigIntTest, ZeroNormalisation) {
  EXPECT_TRUE((BigInt(5) - BigInt(5)).isZero());
  EXPECT_FALSE((BigInt(5) - BigInt(5)).isNegative());
  EXPECT_EQ(BigInt::fromString("-0").toString(), "0");
}

TEST(BigIntTest, ArithmeticSmall) {
  EXPECT_EQ((BigInt(17) + BigInt(25)).toString(), "42");
  EXPECT_EQ((BigInt(17) - BigInt(25)).toString(), "-8");
  EXPECT_EQ((BigInt(-6) * BigInt(7)).toString(), "-42");
  EXPECT_EQ((BigInt(42) / BigInt(5)).toString(), "8");
  EXPECT_EQ((BigInt(42) % BigInt(5)).toString(), "2");
  EXPECT_EQ((BigInt(-42) / BigInt(5)).toString(), "-8");
  EXPECT_EQ((BigInt(-42) % BigInt(5)).toString(), "-2");
}

TEST(BigIntTest, LargeMultiplyDivide) {
  BigInt A = BigInt::fromString("123456789012345678901234567890");
  BigInt B = BigInt::fromString("987654321098765432109876543210");
  BigInt P = A * B;
  EXPECT_EQ(P / A, B);
  EXPECT_EQ(P / B, A);
  EXPECT_TRUE((P % A).isZero());
  BigInt Q = (P + BigInt(17)) / B;
  BigInt R = (P + BigInt(17)) % B;
  EXPECT_EQ(Q * B + R, P + BigInt(17));
}

TEST(BigIntTest, Gcd) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)).toString(), "6");
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)).toString(), "6");
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)).toString(), "5");
  EXPECT_EQ(BigInt::gcd(BigInt(7), BigInt(0)).toString(), "7");
}

TEST(BigIntTest, ToInt64Bounds) {
  int64_t Out = 0;
  EXPECT_TRUE(BigInt(INT64_MAX).toInt64(Out));
  EXPECT_EQ(Out, INT64_MAX);
  EXPECT_TRUE(BigInt(INT64_MIN).toInt64(Out));
  EXPECT_EQ(Out, INT64_MIN);
  BigInt TooBig = BigInt(INT64_MAX) + BigInt(1);
  EXPECT_FALSE(TooBig.toInt64(Out));
  BigInt TooSmall = BigInt(INT64_MIN) - BigInt(1);
  EXPECT_FALSE(TooSmall.toInt64(Out));
}

/// Property test: BigInt agrees with native 64-bit arithmetic wherever the
/// latter is exact.
TEST(BigIntTest, PropertyAgreesWithInt64) {
  std::mt19937_64 Rng(12345);
  std::uniform_int_distribution<int64_t> Dist(-1000000000LL, 1000000000LL);
  for (int I = 0; I < 2000; ++I) {
    int64_t A = Dist(Rng), B = Dist(Rng);
    EXPECT_EQ((BigInt(A) + BigInt(B)).toString(), std::to_string(A + B));
    EXPECT_EQ((BigInt(A) - BigInt(B)).toString(), std::to_string(A - B));
    EXPECT_EQ((BigInt(A) * BigInt(B)).toString(), std::to_string(A * B));
    if (B != 0) {
      EXPECT_EQ((BigInt(A) / BigInt(B)).toString(), std::to_string(A / B));
      EXPECT_EQ((BigInt(A) % BigInt(B)).toString(), std::to_string(A % B));
    }
    EXPECT_EQ(BigInt(A).compare(BigInt(B)),
              A < B ? -1 : (A == B ? 0 : 1));
  }
}

/// Property test: division invariant a == (a/b)*b + a%b on random large
/// operands.
TEST(BigIntTest, PropertyDivMod) {
  std::mt19937_64 Rng(99);
  auto RandomBig = [&](int Limbs) {
    std::string S = std::to_string(1 + Rng() % 9);
    for (int I = 0; I < Limbs * 9; ++I)
      S += static_cast<char>('0' + Rng() % 10);
    return BigInt::fromString(S);
  };
  for (int I = 0; I < 300; ++I) {
    BigInt A = RandomBig(1 + static_cast<int>(Rng() % 5));
    BigInt B = RandomBig(1 + static_cast<int>(Rng() % 3));
    if (Rng() % 2)
      A = -A;
    if (Rng() % 2)
      B = -B;
    BigInt Q = A / B;
    BigInt R = A % B;
    EXPECT_EQ(Q * B + R, A) << "A=" << A.toString() << " B=" << B.toString();
    EXPECT_TRUE(R.abs() < B.abs());
    // C-style truncation: remainder sign matches dividend (or zero).
    if (!R.isZero())
      EXPECT_EQ(R.isNegative(), A.isNegative());
  }
}
