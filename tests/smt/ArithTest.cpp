//===- tests/smt/ArithTest.cpp - Simplex / LIA solver tests ----------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "smt/ArithSolver.h"

#include <gtest/gtest.h>

#include <random>

using namespace ids;
using namespace ids::smt;

namespace {
LinTerm poly(std::initializer_list<std::pair<int, int64_t>> Cs,
             int64_t Const = 0) {
  LinTerm P;
  for (auto [V, C] : Cs)
    P.add(V, Rational(C));
  P.Const = Rational(Const);
  return P;
}
} // namespace

TEST(ArithTest, SimpleBoundsSat) {
  ArithSolver A;
  int X = A.addVar(false);
  // 1 <= x <= 3
  EXPECT_TRUE(A.assertAtom(poly({{X, -1}}, 1), ArithSolver::Op::Le, 0));
  EXPECT_TRUE(A.assertAtom(poly({{X, 1}}, -3), ArithSolver::Op::Le, 1));
  std::set<int> Core;
  EXPECT_EQ(A.check(Core), ArithSolver::Result::Sat);
  Rational V = A.modelValue(X);
  EXPECT_GE(V, Rational(1));
  EXPECT_LE(V, Rational(3));
}

TEST(ArithTest, ContradictoryBoundsUnsatWithCore) {
  ArithSolver A;
  int X = A.addVar(false);
  EXPECT_TRUE(A.assertAtom(poly({{X, -1}}, 5), ArithSolver::Op::Le, 10));
  // x <= 3 contradicts x >= 5
  A.assertAtom(poly({{X, 1}}, -3), ArithSolver::Op::Le, 11);
  std::set<int> Core;
  EXPECT_EQ(A.check(Core), ArithSolver::Result::Unsat);
  EXPECT_EQ(Core, std::set<int>({10, 11}));
}

TEST(ArithTest, ChainedDifferenceUnsat) {
  // x < y, y < z, z < x: unsat, core includes all three.
  ArithSolver A;
  int X = A.addVar(false), Y = A.addVar(false), Z = A.addVar(false);
  A.assertAtom(poly({{X, 1}, {Y, -1}}), ArithSolver::Op::Lt, 0);
  A.assertAtom(poly({{Y, 1}, {Z, -1}}), ArithSolver::Op::Lt, 1);
  A.assertAtom(poly({{Z, 1}, {X, -1}}), ArithSolver::Op::Lt, 2);
  std::set<int> Core;
  EXPECT_EQ(A.check(Core), ArithSolver::Result::Unsat);
  EXPECT_EQ(Core.size(), 3u);
}

TEST(ArithTest, StrictVsWeakRational) {
  // x < 1 && x > 0 is sat over rationals.
  ArithSolver A;
  int X = A.addVar(false);
  A.assertAtom(poly({{X, 1}}, -1), ArithSolver::Op::Lt, 0);
  A.assertAtom(poly({{X, -1}}, 0), ArithSolver::Op::Lt, 1);
  std::set<int> Core;
  EXPECT_EQ(A.check(Core), ArithSolver::Result::Sat);
  Rational V = A.modelValue(X);
  EXPECT_GT(V, Rational(0));
  EXPECT_LT(V, Rational(1));
}

TEST(ArithTest, IntegerTighteningUnsat) {
  // Over integers, 0 < x < 1 is unsat (after caller rewrite: x>=1, x<=0).
  ArithSolver A;
  int X = A.addVar(true);
  A.assertAtom(poly({{X, -1}}, 1), ArithSolver::Op::Le, 0); // x >= 1
  A.assertAtom(poly({{X, 1}}, 0), ArithSolver::Op::Le, 1);  // x <= 0
  std::set<int> Core;
  EXPECT_EQ(A.check(Core), ArithSolver::Result::Unsat);
}

TEST(ArithTest, BranchAndBound) {
  // 2x == 3 has no integer solution but a rational one.
  ArithSolver A;
  int X = A.addVar(true);
  A.assertAtom(poly({{X, 2}}, -3), ArithSolver::Op::Eq, 0);
  std::set<int> Core;
  EXPECT_EQ(A.check(Core), ArithSolver::Result::Unsat);
  EXPECT_EQ(Core, std::set<int>({0}));

  ArithSolver B;
  int Y = B.addVar(false);
  B.assertAtom(poly({{Y, 2}}, -3), ArithSolver::Op::Eq, 0);
  EXPECT_EQ(B.check(Core), ArithSolver::Result::Sat);
  EXPECT_EQ(B.modelValue(Y), Rational(3, 2));
}

TEST(ArithTest, IntegerCombination) {
  // x + y == 1, x - y == 0 => x = y = 1/2: no integer solution.
  ArithSolver A;
  int X = A.addVar(true), Y = A.addVar(true);
  A.assertAtom(poly({{X, 1}, {Y, 1}}, -1), ArithSolver::Op::Eq, 0);
  A.assertAtom(poly({{X, 1}, {Y, -1}}), ArithSolver::Op::Eq, 1);
  std::set<int> Core;
  EXPECT_EQ(A.check(Core), ArithSolver::Result::Unsat);
}

TEST(ArithTest, DisequalitySplitting) {
  // 0 <= x <= 1 over Int with x != 0 and x != 1: unsat.
  ArithSolver A;
  int X = A.addVar(true);
  A.assertAtom(poly({{X, -1}}, 0), ArithSolver::Op::Le, 0);
  A.assertAtom(poly({{X, 1}}, -1), ArithSolver::Op::Le, 1);
  A.assertAtom(poly({{X, 1}}, 0), ArithSolver::Op::Ne, 2);
  A.assertAtom(poly({{X, 1}}, -1), ArithSolver::Op::Ne, 3);
  std::set<int> Core;
  EXPECT_EQ(A.check(Core), ArithSolver::Result::Unsat);

  // Dropping one disequality makes it sat.
  ArithSolver B;
  X = B.addVar(true);
  B.assertAtom(poly({{X, -1}}, 0), ArithSolver::Op::Le, 0);
  B.assertAtom(poly({{X, 1}}, -1), ArithSolver::Op::Le, 1);
  B.assertAtom(poly({{X, 1}}, 0), ArithSolver::Op::Ne, 2);
  EXPECT_EQ(B.check(Core), ArithSolver::Result::Sat);
  EXPECT_EQ(B.modelValue(X), Rational(1));
}

TEST(ArithTest, RationalDisequality) {
  ArithSolver A;
  int X = A.addVar(false);
  A.assertAtom(poly({{X, 1}}, -2), ArithSolver::Op::Eq, 0);
  A.assertAtom(poly({{X, 1}}, -2), ArithSolver::Op::Ne, 1);
  std::set<int> Core;
  EXPECT_EQ(A.check(Core), ArithSolver::Result::Unsat);
  EXPECT_EQ(Core, std::set<int>({0, 1}));
}

TEST(ArithTest, ProbeForcedEqual) {
  // x <= y, y <= x forces x == y.
  ArithSolver A;
  int X = A.addVar(false), Y = A.addVar(false), Z = A.addVar(false);
  A.assertAtom(poly({{X, 1}, {Y, -1}}), ArithSolver::Op::Le, 0);
  A.assertAtom(poly({{Y, 1}, {X, -1}}), ArithSolver::Op::Le, 1);
  A.assertAtom(poly({{Z, 1}, {X, -1}}), ArithSolver::Op::Le, 2); // z <= x
  std::set<int> Core;
  ASSERT_EQ(A.check(Core), ArithSolver::Result::Sat);
  std::set<int> Tags;
  EXPECT_TRUE(A.probeForcedEqual(X, Y, Tags));
  EXPECT_EQ(Tags, std::set<int>({0, 1}));
  Tags.clear();
  EXPECT_FALSE(A.probeForcedEqual(X, Z, Tags));
  // Solver still usable after probes.
  EXPECT_EQ(A.check(Core), ArithSolver::Result::Sat);
}

TEST(ArithTest, RationalMidpointRank) {
  // The rank-repair pattern: r1 < r2 and m == (r1+r2)/2 => r1 < m < r2.
  ArithSolver A;
  int R1 = A.addVar(false), R2 = A.addVar(false), M = A.addVar(false);
  A.assertAtom(poly({{R1, 1}, {R2, -1}}), ArithSolver::Op::Lt, 0);
  LinTerm Mid;
  Mid.add(M, Rational(1));
  Mid.add(R1, Rational(-1, 2));
  Mid.add(R2, Rational(-1, 2));
  A.assertAtom(Mid, ArithSolver::Op::Eq, 1);
  // Claim: m >= r2 should be unsat.
  A.assertAtom(poly({{R2, 1}, {M, -1}}), ArithSolver::Op::Le, 2);
  std::set<int> Core;
  EXPECT_EQ(A.check(Core), ArithSolver::Result::Unsat);
}

/// Property test: random interval systems with a known feasible point stay
/// sat; random systems declared unsat are cross-checked by substituting a
/// dense grid of candidate points.
TEST(ArithTest, PropertyRandomIntervalSystems) {
  std::mt19937 Rng(2024);
  for (int Iter = 0; Iter < 150; ++Iter) {
    int N = 2 + static_cast<int>(Rng() % 3);
    ArithSolver A;
    std::vector<int> Vars;
    for (int I = 0; I < N; ++I)
      Vars.push_back(A.addVar(false));
    // Random feasible point in [-5, 5]^N; constraints generated to hold.
    std::vector<int64_t> Point;
    for (int I = 0; I < N; ++I)
      Point.push_back(static_cast<int64_t>(Rng() % 11) - 5);
    for (int C = 0; C < 8; ++C) {
      LinTerm P;
      int64_t Eval = 0;
      for (int I = 0; I < N; ++I) {
        int64_t Coeff = static_cast<int64_t>(Rng() % 7) - 3;
        P.add(Vars[I], Rational(Coeff));
        Eval += Coeff * Point[I];
      }
      // Eval + Const <= 0 with Const = -Eval - slack (slack >= 0).
      P.Const = Rational(-Eval - static_cast<int64_t>(Rng() % 4));
      ASSERT_TRUE(A.assertAtom(P, ArithSolver::Op::Le, C));
    }
    std::set<int> Core;
    EXPECT_EQ(A.check(Core), ArithSolver::Result::Sat) << "iter " << Iter;
  }
}
