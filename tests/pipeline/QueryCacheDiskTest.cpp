//===- tests/pipeline/QueryCacheDiskTest.cpp - Disk-backed cache tests -----===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistence layer behind --cache-dir: entries written by one
/// QueryCache load into the next (including multi-line Sat model text),
/// Unknown outcomes are rejected at insert, torn tail records truncate
/// the load instead of failing it, and a version-tag mismatch discards
/// the file rather than misreading a future format.
///
//===----------------------------------------------------------------------===//

#include "pipeline/QueryCache.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>
#include <unistd.h>

using namespace ids;
using namespace ids::pipeline;
using namespace ids::smt;

namespace {

class QueryCacheDiskTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = std::filesystem::temp_directory_path() /
          ("idsqc_test_" + std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(Dir);
  }
  void TearDown() override { std::filesystem::remove_all(Dir); }

  std::filesystem::path Dir;
};

QueryCache::Outcome unsatOutcome(unsigned Atoms) {
  QueryCache::Outcome O;
  O.R = Solver::Result::Unsat;
  O.NumAtoms = Atoms;
  O.NumArrayLemmas = Atoms / 2;
  return O;
}

TEST_F(QueryCacheDiskTest, RoundTripsAcrossInstances) {
  QueryCache::Key K1{0x1111, 0x2222}, K2{0x3333, 0x4444};
  QueryCache::Outcome Sat;
  Sat.R = Solver::Result::Sat;
  Sat.ModelText = "x = 1\ny = 2\n"; // multi-line model text must survive
  Sat.NumAtoms = 7;
  {
    QueryCache A;
    std::string Err;
    ASSERT_TRUE(A.attachDir(Dir.string(), Err)) << Err;
    A.insert(K1, unsatOutcome(5));
    A.insert(K2, Sat);
    EXPECT_EQ(A.diskStats().Appended, 2u);
  }
  QueryCache B;
  std::string Err;
  ASSERT_TRUE(B.attachDir(Dir.string(), Err)) << Err;
  EXPECT_EQ(B.diskStats().LoadedFromDisk, 2u);
  QueryCache::Outcome Out;
  ASSERT_TRUE(B.lookup(K1, Out));
  EXPECT_EQ(Out.R, Solver::Result::Unsat);
  EXPECT_EQ(Out.NumAtoms, 5u);
  ASSERT_TRUE(B.lookup(K2, Out));
  EXPECT_EQ(Out.R, Solver::Result::Sat);
  EXPECT_EQ(Out.ModelText, Sat.ModelText);
  EXPECT_EQ(Out.NumAtoms, 7u);
  EXPECT_EQ(B.diskStats().DiskHits, 2u);
  EXPECT_EQ(B.diskStats().Hits, 2u);
}

TEST_F(QueryCacheDiskTest, UnknownOutcomesAreRejected) {
  QueryCache::Key K{0xdead, 0xbeef};
  {
    QueryCache A;
    std::string Err;
    ASSERT_TRUE(A.attachDir(Dir.string(), Err)) << Err;
    QueryCache::Outcome Unknown; // default R == Unknown
    A.insert(K, Unknown);
    EXPECT_EQ(A.size(), 0u);
    EXPECT_EQ(A.diskStats().Appended, 0u);
  }
  QueryCache B;
  std::string Err;
  ASSERT_TRUE(B.attachDir(Dir.string(), Err)) << Err;
  QueryCache::Outcome Out;
  EXPECT_EQ(B.diskStats().LoadedFromDisk, 0u);
  EXPECT_FALSE(B.lookup(K, Out));
}

TEST_F(QueryCacheDiskTest, TornTailTruncatesLoad) {
  {
    QueryCache A;
    std::string Err;
    ASSERT_TRUE(A.attachDir(Dir.string(), Err)) << Err;
    A.insert({1, 1}, unsatOutcome(3));
    A.insert({2, 2}, unsatOutcome(4));
  }
  // Simulate a process killed mid-append: chop bytes off the tail.
  std::filesystem::path File = Dir / QueryCache::FileName;
  auto Size = std::filesystem::file_size(File);
  std::filesystem::resize_file(File, Size - 10);

  QueryCache B;
  std::string Err;
  ASSERT_TRUE(B.attachDir(Dir.string(), Err)) << Err;
  EXPECT_EQ(B.diskStats().LoadedFromDisk, 1u);
  QueryCache::Outcome Out;
  EXPECT_TRUE(B.lookup({1, 1}, Out));
  EXPECT_FALSE(B.lookup({2, 2}, Out));
}

TEST_F(QueryCacheDiskTest, VersionMismatchDiscardsFile) {
  std::filesystem::create_directories(Dir);
  {
    std::ofstream Old(Dir / QueryCache::FileName);
    Old << "IDSQC v999\nU 0000000000000001 0000000000000002 1 1\n";
  }
  QueryCache A;
  std::string Err;
  ASSERT_TRUE(A.attachDir(Dir.string(), Err)) << Err;
  EXPECT_EQ(A.diskStats().LoadedFromDisk, 0u);
  QueryCache::Outcome Out;
  EXPECT_FALSE(A.lookup({1, 2}, Out));
  // And the rewritten file carries the current header again.
  A.insert({9, 9}, unsatOutcome(1));
  QueryCache B;
  ASSERT_TRUE(B.attachDir(Dir.string(), Err)) << Err;
  EXPECT_EQ(B.diskStats().LoadedFromDisk, 1u);
}

QueryCache::Outcome satOutcome(unsigned Seed) {
  QueryCache::Outcome O;
  O.R = Solver::Result::Sat;
  O.NumAtoms = Seed;
  // Multi-line model text: the payload that a torn or interleaved append
  // would corrupt first.
  O.ModelText = "a = " + std::to_string(Seed) + "\nb = " +
                std::to_string(Seed * 2) + "\nnested newline\n";
  return O;
}

TEST_F(QueryCacheDiskTest, ManyWritersProduceNoTornRecords) {
  // --jobs N hammers insert() from every worker; each append must land as
  // one un-torn record a fresh attach can load back.
  constexpr unsigned Threads = 8, PerThread = 50;
  {
    QueryCache A;
    std::string Err;
    ASSERT_TRUE(A.attachDir(Dir.string(), Err)) << Err;
    std::vector<std::thread> Ws;
    for (unsigned T = 0; T < Threads; ++T)
      Ws.emplace_back([&A, T] {
        for (unsigned I = 0; I < PerThread; ++I) {
          unsigned Seed = T * PerThread + I;
          QueryCache::Key K{Seed, ~uint64_t(Seed)};
          A.insert(K, Seed % 2 ? satOutcome(Seed) : unsatOutcome(Seed));
        }
      });
    for (std::thread &W : Ws)
      W.join();
    EXPECT_EQ(A.diskStats().Appended, Threads * PerThread);
  }
  QueryCache B;
  std::string Err;
  ASSERT_TRUE(B.attachDir(Dir.string(), Err)) << Err;
  ASSERT_EQ(B.diskStats().LoadedFromDisk, Threads * PerThread);
  for (unsigned Seed = 0; Seed < Threads * PerThread; ++Seed) {
    QueryCache::Outcome Out;
    ASSERT_TRUE(B.lookup({Seed, ~uint64_t(Seed)}, Out)) << Seed;
    if (Seed % 2) {
      EXPECT_EQ(Out.R, Solver::Result::Sat);
      EXPECT_EQ(Out.ModelText, satOutcome(Seed).ModelText) << Seed;
    } else {
      EXPECT_EQ(Out.R, Solver::Result::Unsat);
    }
    EXPECT_EQ(Out.NumAtoms, Seed);
  }
}

TEST_F(QueryCacheDiskTest, ConcurrentInstancesInterleaveWholeRecords) {
  // Two caches attached to the same directory (two O_APPEND streams, as
  // with two concurrent --cache-dir runs) may interleave records in any
  // order but never mid-record.
  constexpr unsigned PerWriter = 100;
  {
    QueryCache A, C;
    std::string Err;
    ASSERT_TRUE(A.attachDir(Dir.string(), Err)) << Err;
    ASSERT_TRUE(C.attachDir(Dir.string(), Err)) << Err;
    std::thread W1([&A] {
      for (unsigned I = 0; I < PerWriter; ++I)
        A.insert({I, 1}, satOutcome(I));
    });
    std::thread W2([&C] {
      for (unsigned I = 0; I < PerWriter; ++I)
        C.insert({I, 2}, unsatOutcome(I));
    });
    W1.join();
    W2.join();
  }
  QueryCache B;
  std::string Err;
  ASSERT_TRUE(B.attachDir(Dir.string(), Err)) << Err;
  ASSERT_EQ(B.diskStats().LoadedFromDisk, 2 * PerWriter);
  for (unsigned I = 0; I < PerWriter; ++I) {
    QueryCache::Outcome Out;
    ASSERT_TRUE(B.lookup({I, 1}, Out)) << I;
    EXPECT_EQ(Out.R, Solver::Result::Sat);
    EXPECT_EQ(Out.ModelText, satOutcome(I).ModelText) << I;
    ASSERT_TRUE(B.lookup({I, 2}, Out)) << I;
    EXPECT_EQ(Out.R, Solver::Result::Unsat);
  }
}

TEST_F(QueryCacheDiskTest, MemoryOnlyEntriesPersistOnFreshAttach) {
  // Entries inserted before attachDir are flushed when the backing file
  // is created.
  QueryCache A;
  A.insert({5, 6}, unsatOutcome(2));
  std::string Err;
  ASSERT_TRUE(A.attachDir(Dir.string(), Err)) << Err;
  QueryCache B;
  ASSERT_TRUE(B.attachDir(Dir.string(), Err)) << Err;
  QueryCache::Outcome Out;
  EXPECT_TRUE(B.lookup({5, 6}, Out));
}

} // namespace
