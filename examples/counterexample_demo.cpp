//===- examples/counterexample_demo.cpp - Predictable failure --------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The predictability story of the paper, from the failing side: when an
/// annotated program is wrong, verification does not time out or demand
/// lemmas — the decidable solver returns a concrete countermodel naming
/// the broken object. Here the engineer forgets to repair the ghost
/// `depth` map after an insertion, so `AssertLCAndRemove` cannot prove
/// the local condition.
///
//===----------------------------------------------------------------------===//

#include "driver/Verifier.h"

#include <cstdio>

using namespace ids;

static const char *BuggySource = R"IDS(
structure Stack {
  field next: Loc;
  field val: int;
  ghost field prev: Loc;
  ghost field depth: int;

  local s (x) {
    (x.next != nil ==> x.next.prev == x && x.depth == x.next.depth + 1)
    && (x.prev != nil ==> x.prev.next == x)
    && (x.next == nil ==> x.depth == 1)
  }
  correlation (y) { y.prev == nil }
  impact next  [s] { x, old(x.next) }
  impact prev  [s] { x, old(x.prev) }
  impact val   [s] { x, x.prev }
  impact depth [s] { x, x.prev }
}

procedure push(top: Loc, v: int) returns (r: Loc)
  requires br(s) == {}
  requires top != nil && top.prev == nil
  ensures  br(s) == {}
  modifies {top}
{
  var z: Loc;
  InferLCOutsideBr(s, top);
  NewObj(z);
  Mut(z.val, v);
  Mut(z.next, top);
  Mut(top.prev, z);
  // BUG: forgot `Mut(z.depth, top.depth + 1);` — z's ghost map is stale.
  AssertLCAndRemove(s, top);
  AssertLCAndRemove(s, z);
  r := z;
}
)IDS";

int main() {
  DiagEngine Diags;
  driver::ModuleResult R =
      driver::verifySource(BuggySource, driver::VerifyOptions(), Diags);
  if (!R.FrontEndOk) {
    fprintf(stderr, "front-end error:\n%s", Diags.toString().c_str());
    return 1;
  }
  for (const driver::ProcResult &P : R.Procs) {
    if (P.St == driver::Status::Verified) {
      printf("unexpectedly verified %s\n", P.Name.c_str());
      return 1;
    }
    printf("procedure %s FAILED, as it should (%.2fs):\n", P.Name.c_str(),
           P.Seconds);
    printf("  failing obligation: %s\n", P.FailedObligation.c_str());
    printf("  countermodel (excerpt):\n");
    // Print the first few lines of the model.
    int Lines = 0;
    for (size_t I = 0; I < P.Counterexample.size() && Lines < 12; ++I) {
      putchar(P.Counterexample[I]);
      if (P.Counterexample[I] == '\n')
        ++Lines;
    }
  }
  printf("\nNo triggers, no lemmas, no timeouts: the annotated program is "
         "wrong,\nand the decidable VC says so with a witness "
         "(Section 1, 'Predictable Verification').\n");
  return 0;
}
