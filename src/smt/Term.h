//===- smt/Term.h - Hash-consed term DAG -----------------------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash-consed terms of the quantifier-free logic used by FWYB verification
/// conditions (Section 3.7 of the paper), plus a Forall node used only by
/// the "Dafny-style" quantified encoding of RQ3.
///
/// The operator set covers the decidable combination the paper relies on:
/// booleans, equality, linear Int/Rat arithmetic, and the generalized array
/// fragment (select/store/const-array plus the pointwise combinators mapOr,
/// mapAnd, mapDiff and pwIte used for parameterized map updates).
///
/// Terms are immutable and interned by a TermManager; pointer equality is
/// structural equality, which keeps VC generation (passification + wp over
/// a DAG) linear in practice.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SMT_TERM_H
#define IDS_SMT_TERM_H

#include "smt/Sort.h"
#include "support/BigInt.h"
#include "support/Rational.h"

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

namespace ids {
namespace smt {

class Term;
/// Terms are referenced by interned pointer.
using TermRef = const Term *;

/// Discriminator for Term nodes.
enum class TermKind : uint8_t {
  // Leaves.
  True,
  False,
  IntConst,
  RatConst,
  Var, ///< free constant (includes `nil` and VC incarnations)

  // Boolean structure.
  Not,
  And, ///< n-ary
  Or,  ///< n-ary
  Implies,
  Ite, ///< any sort; condition is Bool

  // Equality over any sort (over Bool it acts as iff).
  Eq,

  // Linear arithmetic over Int or Rat.
  Add, ///< n-ary
  Mul, ///< args[0] is a numeric constant, args[1] arbitrary (linear only)
  Le,
  Lt,

  // Arrays / monadic maps / sets.
  Select,
  Store,
  ConstArray, ///< constant map: args[0] is the default value
  MapOr,      ///< pointwise disjunction, Array(K,Bool)
  MapAnd,     ///< pointwise conjunction, Array(K,Bool)
  MapDiff,    ///< pointwise a && !b, Array(K,Bool)
  PwIte,      ///< pointwise ite(g[k], a[k], b[k]) — parameterized map update

  // Uninterpreted function application.
  Apply,

  // Quantifier (quantified RQ3 encoding only; never in QF-mode VCs).
  Forall,
};

/// An immutable, interned term node.
class Term {
public:
  TermKind getKind() const { return Kind; }
  const Sort *getSort() const { return SortPtr; }
  unsigned getId() const { return Id; }

  const std::vector<TermRef> &getArgs() const { return Args; }
  TermRef getArg(unsigned I) const {
    assert(I < Args.size() && "term argument index out of range");
    return Args[I];
  }
  unsigned getNumArgs() const { return static_cast<unsigned>(Args.size()); }

  /// Name of a Var, or of an Apply's function.
  const std::string &getName() const;

  const BigInt &getIntValue() const {
    assert(Kind == TermKind::IntConst);
    return IntVal;
  }
  const Rational &getRatValue() const {
    assert(Kind == TermKind::RatConst);
    return RatVal;
  }
  const FuncDecl *getDecl() const {
    assert(Kind == TermKind::Apply);
    return Decl;
  }
  /// Bound variables of a Forall (stored as Var terms).
  const std::vector<TermRef> &getBoundVars() const {
    assert(Kind == TermKind::Forall);
    return Bound;
  }

  bool isValue() const {
    return Kind == TermKind::True || Kind == TermKind::False ||
           Kind == TermKind::IntConst || Kind == TermKind::RatConst;
  }

  /// 128-bit structural DAG hash, computed once at interning time from the
  /// node's kind/payload and its children's hashes. Manager-independent:
  /// structurally identical DAGs built in different TermManagers hash
  /// equally. QueryCache uses the pair as the cache key directly, which
  /// replaces the former O(formula-size) canonical-string build per
  /// lookup with an O(1) read.
  uint64_t getStructHashLo() const { return StructHashLo; }
  uint64_t getStructHashHi() const { return StructHashHi; }

private:
  friend class TermManager;
  Term() = default;

  TermKind Kind = TermKind::True;
  const Sort *SortPtr = nullptr;
  unsigned Id = 0;
  uint64_t StructHashLo = 0;
  uint64_t StructHashHi = 0;
  std::vector<TermRef> Args;
  std::string Name;
  BigInt IntVal;
  Rational RatVal;
  const FuncDecl *Decl = nullptr;
  std::vector<TermRef> Bound;
};

/// Owns and interns sorts, function declarations and terms, and provides
/// smart constructors that perform light local simplification (constant
/// folding, flattening, involution) so downstream passes see a small
/// canonical DAG.
class TermManager {
public:
  TermManager();
  TermManager(const TermManager &) = delete;
  TermManager &operator=(const TermManager &) = delete;

  /// Tag type selecting the snapshot-overlay constructor.
  struct Snapshot {};

  /// Builds an overlay manager on top of a frozen \p Base. The overlay
  /// shares the base's interned structure read-only — sorts, function
  /// declarations, named variables and every term the base interned stay
  /// valid TermRefs in the overlay, with no translation and no locking —
  /// and pays only for its own delta: new nodes go into the overlay's
  /// private table with ids continuing from the base's. This is what
  /// lets `--jobs N` workers solve obligations built in a shared base
  /// manager without per-task full-formula `import` copies: terms are
  /// immutable and the base is frozen for the overlay's lifetime, so
  /// concurrent overlay reads of the base are race-free by construction.
  ///
  /// The base must outlive the overlay and stay frozen while any overlay
  /// on it is live; ids are unique within one overlay+base view, but two
  /// sibling overlays assign overlapping ids to different terms — never
  /// mix terms from sibling overlays in one solver.
  TermManager(const TermManager &Base, Snapshot);

  /// Freezing forbids interning anything new (enforced by assert) so the
  /// manager can be shared read-only across worker overlays. Reads —
  /// including intern() calls that hit an existing node — stay allowed.
  void freeze() { Frozen = true; }
  void thaw() { Frozen = false; }
  bool isFrozen() const { return Frozen; }
  /// The frozen base this overlay was snapshotted from, or null.
  const TermManager *base() const { return BaseMgr; }

  // -------------------------------------------------------------- Sorts --
  const Sort *boolSort() const { return BoolSort; }
  const Sort *intSort() const { return IntSort; }
  const Sort *ratSort() const { return RatSort; }
  /// The distinguished heap-location sort.
  const Sort *locSort() const { return LocSort; }
  const Sort *getUninterpretedSort(const std::string &Name);
  const Sort *getArraySort(const Sort *Key, const Sort *Value);

  const FuncDecl *getFuncDecl(const std::string &Name,
                              std::vector<const Sort *> ArgSorts,
                              const Sort *RetSort);

  // ------------------------------------------------------------- Leaves --
  TermRef mkTrue() const { return TrueTerm; }
  TermRef mkFalse() const { return FalseTerm; }
  TermRef mkBool(bool Value) const { return Value ? TrueTerm : FalseTerm; }
  TermRef mkIntConst(BigInt Value);
  TermRef mkIntConst(int64_t Value) { return mkIntConst(BigInt(Value)); }
  TermRef mkRatConst(Rational Value);
  /// Named free constant. Re-requesting the same name returns the same term
  /// (and asserts the sort matches).
  TermRef mkVar(const std::string &Name, const Sort *S);
  /// Fresh free constant with a unique name derived from \p Prefix.
  TermRef mkFreshVar(const std::string &Prefix, const Sort *S);
  /// The distinguished nil location.
  TermRef mkNil() const { return NilTerm; }

  // ------------------------------------------------------------ Boolean --
  TermRef mkNot(TermRef A);
  TermRef mkAnd(std::vector<TermRef> Args);
  TermRef mkAnd(TermRef A, TermRef B) { return mkAnd({A, B}); }
  TermRef mkOr(std::vector<TermRef> Args);
  TermRef mkOr(TermRef A, TermRef B) { return mkOr({A, B}); }
  TermRef mkImplies(TermRef A, TermRef B);
  TermRef mkIte(TermRef Cond, TermRef Then, TermRef Else);
  TermRef mkEq(TermRef A, TermRef B);
  TermRef mkDistinct(TermRef A, TermRef B) { return mkNot(mkEq(A, B)); }

  // --------------------------------------------------------- Arithmetic --
  TermRef mkAdd(std::vector<TermRef> Args);
  TermRef mkAdd(TermRef A, TermRef B) { return mkAdd({A, B}); }
  TermRef mkSub(TermRef A, TermRef B);
  TermRef mkNeg(TermRef A);
  /// Multiplication by a numeric constant (the logic is linear).
  TermRef mkMulConst(const Rational &Const, TermRef A);
  TermRef mkLe(TermRef A, TermRef B);
  TermRef mkLt(TermRef A, TermRef B);
  TermRef mkGe(TermRef A, TermRef B) { return mkLe(B, A); }
  TermRef mkGt(TermRef A, TermRef B) { return mkLt(B, A); }

  // -------------------------------------------------------------- Arrays --
  TermRef mkSelect(TermRef Array, TermRef Index);
  TermRef mkStore(TermRef Array, TermRef Index, TermRef Value);
  TermRef mkConstArray(const Sort *ArraySort, TermRef Value);
  TermRef mkMapOr(TermRef A, TermRef B);
  TermRef mkMapAnd(TermRef A, TermRef B);
  TermRef mkMapDiff(TermRef A, TermRef B);
  /// Parameterized map update: pointwise ite(Guard[k], A[k], B[k]). This is
  /// the paper's `M_f := ite(Mod, M_f', M_f)` (Appendix A.3).
  TermRef mkPwIte(TermRef Guard, TermRef A, TermRef B);

  // Set sugar over Array(K, Bool).
  TermRef mkEmptySet(const Sort *ElemSort);
  TermRef mkSingleton(TermRef Elem);
  TermRef mkMember(TermRef Elem, TermRef SetTerm) {
    return mkSelect(SetTerm, Elem);
  }
  TermRef mkSetUnion(TermRef A, TermRef B) { return mkMapOr(A, B); }
  TermRef mkSetIntersect(TermRef A, TermRef B) { return mkMapAnd(A, B); }
  TermRef mkSetMinus(TermRef A, TermRef B) { return mkMapDiff(A, B); }
  TermRef mkSetInsert(TermRef SetTerm, TermRef Elem) {
    return mkStore(SetTerm, Elem, mkTrue());
  }
  TermRef mkSetRemove(TermRef SetTerm, TermRef Elem) {
    return mkStore(SetTerm, Elem, mkFalse());
  }
  /// A subseteq B, expressed extensionally as A&B == A so the array
  /// reduction handles it with no dedicated theory support.
  TermRef mkSubset(TermRef A, TermRef B) { return mkEq(mkMapAnd(A, B), A); }
  TermRef mkDisjoint(TermRef A, TermRef B) {
    return mkEq(mkMapAnd(A, B), mkEmptySet(A->getSort()->getKey()));
  }
  TermRef mkSetEmptyCheck(TermRef A) {
    return mkEq(A, mkEmptySet(A->getSort()->getKey()));
  }

  // ------------------------------------------------- Apply / quantifier --
  TermRef mkApply(const FuncDecl *Decl, std::vector<TermRef> Args);
  TermRef mkForall(std::vector<TermRef> BoundVars, TermRef Body);

  // ----------------------------------------------------------- Utilities --
  /// Capture-naive simultaneous substitution of free Vars (keys must be
  /// Var terms). Quantified bodies are substituted as well, minus shadowed
  /// binders; callers must ensure no capture (our VC pipeline only
  /// substitutes fresh or program-level names).
  TermRef substitute(TermRef T,
                     const std::unordered_map<TermRef, TermRef> &Map);

  /// True if the term contains a Forall node (QF cross-check, Section 5.1).
  bool containsQuantifier(TermRef T) const;

  /// Translates a sort owned by another manager into this manager
  /// (uninterpreted sorts match by name, array sorts structurally).
  const Sort *importSort(const Sort *Foreign);

  /// Rebuilds a term owned by another manager in this manager, translating
  /// sorts, variables and function declarations by name. Terms are
  /// immutable, so the foreign manager is only read — this is what lets
  /// the VC pipeline hand obligations to per-worker managers without
  /// sharing a (single-threaded) manager across threads. Translations are
  /// memoised for the lifetime of this manager; the foreign terms must
  /// outlive it.
  TermRef import(TermRef Foreign);

  unsigned numTerms() const { return NextId; }

private:
  TermRef intern(Term &&Node);
  static size_t hashTerm(const Term &Node);
  static bool equalTerm(const Term &A, const Term &B);

  std::deque<std::unique_ptr<Term>> Terms;
  std::unordered_map<size_t, std::vector<TermRef>> Table;
  std::deque<std::unique_ptr<Sort>> Sorts;
  std::deque<std::unique_ptr<FuncDecl>> Decls;
  std::unordered_map<std::string, const Sort *> NamedSorts;
  std::unordered_map<std::string, TermRef> NamedVars;
  std::unordered_map<std::string, const FuncDecl *> NamedDecls;
  std::unordered_map<TermRef, TermRef> ImportCache;

  /// Frozen base of a snapshot overlay (null for a root manager). All
  /// probe paths (intern, named sorts/vars/decls) consult the base
  /// read-only before touching the overlay's own tables.
  const TermManager *BaseMgr = nullptr;
  bool Frozen = false;

  const Sort *BoolSort;
  const Sort *IntSort;
  const Sort *RatSort;
  const Sort *LocSort;
  TermRef TrueTerm;
  TermRef FalseTerm;
  TermRef NilTerm;
  unsigned NextId = 0;
  unsigned FreshCounter = 0;
};

} // namespace smt
} // namespace ids

#endif // IDS_SMT_TERM_H
