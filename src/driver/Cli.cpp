//===- driver/Cli.cpp - ids-verify command-line parsing --------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "driver/Cli.h"

#include <cerrno>
#include <cstdlib>

using namespace ids;
using namespace ids::driver;

namespace {

/// Strict non-negative integer: the whole string must be digits (an
/// optional leading '+' is tolerated, '-' is not — these flags have no
/// meaningful negative values).
bool parseUnsigned(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  size_t Start = S[0] == '+' ? 1 : 0;
  if (Start == S.size())
    return false;
  for (size_t I = Start; I < S.size(); ++I)
    if (S[I] < '0' || S[I] > '9')
      return false;
  errno = 0;
  char *End = nullptr;
  uint64_t V = strtoull(S.c_str() + Start, &End, 10);
  if (errno == ERANGE || End != S.c_str() + S.size())
    return false;
  Out = V;
  return true;
}

/// Strict non-negative decimal (seconds): full-string strtod, >= 0,
/// finite.
bool parseSeconds(const std::string &S, double &Out) {
  if (S.empty() || S[0] == '-')
    return false;
  errno = 0;
  char *End = nullptr;
  double V = strtod(S.c_str(), &End);
  if (End != S.c_str() + S.size() || errno == ERANGE || !(V >= 0) ||
      V > 1e18)
    return false;
  Out = V;
  return true;
}

} // namespace

const char *driver::usageText() {
  return
      "usage: ids-verify [options] (FILE | --benchmark NAME | --list | "
      "serve)\n"
      "       --benchmark all verifies the whole embedded suite (each\n"
      "       benchmark under its registry default budget; exit 0 iff every\n"
      "       procedure matches its registry-expected verdict)\n"
      "       --list prints each benchmark's description, tags, default\n"
      "       budget and expected per-procedure verdicts\n"
      "       serve answers line-delimited JSON verify requests on stdin\n"
      "       (one response line per request; see README \"Serve mode\")\n"
      "options: --quant --splits N --proc NAME --no-frames "
      "--no-impacts --budget N --timeout S\n"
      "         --request-timeout S (whole-request wall-clock budget; "
      "work past\n"
      "                      the deadline reports \"unknown\")\n"
      "caching: --cache-dir DIR (persistent cross-run cache: solver "
      "outcomes and\n"
      "                      procedure verdicts load at startup and append "
      "as they\n"
      "                      are produced; format is versioned, see README)\n"
      "         --no-reverify-cache (record procedure verdicts but never "
      "replay\n"
      "                      them: every procedure re-solves, still reusing "
      "cached\n"
      "                      per-query outcomes)\n"
      "VC pipeline: --jobs N (parallel obligation dispatch; "
      "default 0 = auto-detect\n"
      "                      from hardware concurrency)\n"
      "             --no-simp (disable the VC simplifier)\n"
      "             --no-slice (disable cone-of-influence slicing)\n"
      "             --no-cache (disable the structural query cache)\n"
      "             --no-incremental (disable shared-prefix batching on\n"
      "                      incremental solver contexts; every query then\n"
      "                      gets a fresh one-shot solve)\n"
      "             --eager-arrays (instantiate the array-lemma closure\n"
      "                      up front instead of lazily from inside the\n"
      "                      search; the lazy mode's differential baseline)\n"
      "             --no-reduce-db (disable activity-based learned-clause\n"
      "                      deletion in the SAT core)\n"
      "             --no-theory-prop (disable DPLL(T) theory propagation\n"
      "                      and incremental registration in batch\n"
      "                      contexts; the purely lazy differential\n"
      "                      baseline)\n"
      "             --stats (print per-procedure pipeline statistics and\n"
      "                      the cumulative metrics registry)\n"
      "observability: --trace-out FILE (Chrome trace-event JSON of every\n"
      "                      span — open in Perfetto or chrome://tracing)\n"
      "               --stats-json FILE (cumulative metrics snapshot; same\n"
      "                      counters as --stats and serve's "
      "{\"cmd\":\"stats\"})\n"
      "               --slow-query-ms N (append solver queries slower than\n"
      "                      N ms to the slow-query log as JSONL; 0 = off)\n"
      "               --slow-query-log FILE (slow-query sink; default\n"
      "                      ids-slow-queries.jsonl next to the run)\n";
}

CliArgs driver::parseCli(int Argc, const char *const *Argv) {
  CliArgs A;
  bool List = false, Serve = false;

  // Value-taking flags pull their argument here; a missing or malformed
  // value sets A.Error and stops the parse.
  auto takeValue = [&](int &I, const std::string &Flag,
                       std::string &Out) -> bool {
    if (I + 1 >= Argc) {
      A.Error = "missing argument for " + Flag;
      return false;
    }
    Out = Argv[++I];
    return true;
  };
  auto takeUnsigned = [&](int &I, const std::string &Flag,
                          uint64_t &Out) -> bool {
    std::string V;
    if (!takeValue(I, Flag, V))
      return false;
    if (!parseUnsigned(V, Out)) {
      A.Error = "invalid value for " + Flag + ": '" + V +
                "' (expected a non-negative integer)";
      return false;
    }
    return true;
  };
  auto takeSeconds = [&](int &I, const std::string &Flag,
                         double &Out) -> bool {
    std::string V;
    if (!takeValue(I, Flag, V))
      return false;
    if (!parseSeconds(V, Out)) {
      A.Error = "invalid value for " + Flag + ": '" + V +
                "' (expected a non-negative number of seconds)";
      return false;
    }
    return true;
  };

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    uint64_t U = 0;
    if (Arg == "--quant") {
      A.Opts.QuantifiedMode = true;
    } else if (Arg == "--no-frames") {
      A.Opts.CheckFrames = false;
    } else if (Arg == "--no-impacts") {
      A.Opts.CheckImpacts = false;
    } else if (Arg == "--no-simp") {
      A.Opts.SimplifyVc = false;
    } else if (Arg == "--no-slice") {
      A.Opts.SliceVc = false;
    } else if (Arg == "--no-cache") {
      A.Opts.CacheQueries = false;
    } else if (Arg == "--no-incremental") {
      A.Opts.Incremental = false;
    } else if (Arg == "--eager-arrays") {
      A.Opts.LazyArrays = false;
    } else if (Arg == "--no-reduce-db") {
      A.Opts.ReduceDb = false;
    } else if (Arg == "--no-theory-prop") {
      A.Opts.TheoryProp = false;
    } else if (Arg == "--no-reverify-cache") {
      A.Opts.ReuseProcVerdicts = false;
    } else if (Arg == "--stats") {
      A.ShowStats = true;
    } else if (Arg == "--jobs") {
      if (!takeUnsigned(I, Arg, U))
        return A;
      if (U > 1024) {
        A.Error = "invalid value for --jobs: '" + std::to_string(U) +
                  "' (at most 1024 workers)";
        return A;
      }
      A.Opts.Jobs = static_cast<unsigned>(U);
    } else if (Arg == "--splits") {
      if (!takeUnsigned(I, Arg, U))
        return A;
      if (U > 1u << 20) {
        A.Error = "invalid value for --splits: '" + std::to_string(U) +
                  "' (implausibly large)";
        return A;
      }
      A.Opts.VcSplits = static_cast<unsigned>(U);
    } else if (Arg == "--budget") {
      if (!takeUnsigned(I, Arg, A.Opts.MaxTheoryChecks))
        return A;
    } else if (Arg == "--timeout") {
      if (!takeSeconds(I, Arg, A.Opts.QueryTimeoutSeconds))
        return A;
    } else if (Arg == "--request-timeout") {
      if (!takeSeconds(I, Arg, A.Opts.TotalTimeoutSeconds))
        return A;
    } else if (Arg == "--proc") {
      if (!takeValue(I, Arg, A.Opts.OnlyProc))
        return A;
    } else if (Arg == "--benchmark") {
      if (!takeValue(I, Arg, A.BenchName))
        return A;
    } else if (Arg == "--cache-dir") {
      if (!takeValue(I, Arg, A.CacheDir))
        return A;
    } else if (Arg == "--trace-out") {
      if (!takeValue(I, Arg, A.TraceOut))
        return A;
    } else if (Arg == "--stats-json") {
      if (!takeValue(I, Arg, A.StatsJson))
        return A;
    } else if (Arg == "--slow-query-ms") {
      if (!takeSeconds(I, Arg, A.SlowQueryMs))
        return A;
    } else if (Arg == "--slow-query-log") {
      if (!takeValue(I, Arg, A.SlowQueryLog))
        return A;
    } else if (Arg == "--list") {
      List = true;
    } else if (Arg == "serve" && A.File.empty() && !Serve) {
      // The daemon subcommand. A file literally named "serve" is still
      // reachable as ./serve.
      Serve = true;
    } else if (!Arg.empty() && Arg[0] != '-') {
      A.File = Arg;
    } else {
      A.Error = "unknown option: " + Arg;
      return A;
    }
  }

  if (Serve && (!A.File.empty() || !A.BenchName.empty() || List)) {
    A.Error = "serve takes no input argument (sources arrive as requests)";
    return A;
  }
  // A threshold without a sink gets the documented default; a sink
  // without a threshold is an error (it would silently never record).
  if (A.SlowQueryMs > 0 && A.SlowQueryLog.empty())
    A.SlowQueryLog = "ids-slow-queries.jsonl";
  if (A.SlowQueryMs <= 0 && !A.SlowQueryLog.empty()) {
    A.Error = "--slow-query-log requires --slow-query-ms N (N > 0)";
    return A;
  }
  if (List)
    A.Cmd = CliArgs::Command::List;
  else if (Serve)
    A.Cmd = CliArgs::Command::Serve;
  else if (A.BenchName == "all")
    A.Cmd = CliArgs::Command::BenchAll;
  else if (!A.BenchName.empty() || !A.File.empty())
    A.Cmd = CliArgs::Command::OneShot;
  else
    A.Cmd = CliArgs::Command::Usage;
  return A;
}
