//===- lang/Parser.cpp - Surface language parser ---------------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"

using namespace ids;
using namespace ids::lang;

namespace {
class Parser {
public:
  Parser(std::vector<Token> Toks, DiagEngine &Diags, Module &M)
      : Toks(std::move(Toks)), Diags(Diags), M(M) {}

  bool parseModule();

private:
  // --- token helpers ---
  const Token &peek(unsigned Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  const Token &advance() { return Toks[Pos < Toks.size() - 1 ? Pos++ : Pos]; }
  bool check(TokKind K) const { return peek().is(K); }
  bool checkIdent(const char *S) const { return peek().isIdent(S); }
  bool accept(TokKind K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }
  bool acceptIdent(const char *S) {
    if (!checkIdent(S))
      return false;
    advance();
    return true;
  }
  bool expect(TokKind K, const char *What) {
    if (accept(K))
      return true;
    error(std::string("expected ") + What + " but found '" + peek().Text +
          "'");
    return false;
  }
  bool expectIdent(const char *S) {
    if (acceptIdent(S))
      return true;
    error(std::string("expected '") + S + "' but found '" + peek().Text +
          "'");
    return false;
  }
  std::string expectName(const char *What) {
    if (check(TokKind::Ident)) {
      std::string N = peek().Text;
      advance();
      return N;
    }
    error(std::string("expected ") + What);
    return "";
  }
  void error(const std::string &Msg) {
    Diags.error(peek().Loc, Msg);
    Failed = true;
  }

  // --- grammar ---
  bool parseStructure();
  bool parseProcedure();
  bool parseType(Type &Out);
  bool parseParams(std::vector<ParamDecl> &Out);
  Stmt *parseBlock();
  Stmt *parseStmt();
  Expr *parseExpr() { return parseIff(); }
  Expr *parseIff();
  Expr *parseImplies();
  Expr *parseOr();
  Expr *parseAnd();
  Expr *parseRelational();
  Expr *parseAdditive();
  Expr *parseMultiplicative();
  Expr *parseUnary();
  Expr *parsePostfix();
  Expr *parsePrimary();

  Expr *mkBin(BinOp Op, Expr *L, Expr *R, SourceLoc Loc) {
    Expr *E = M.newExpr(ExprKind::Binary, Loc);
    E->BOp = Op;
    E->Args = {L, R};
    return E;
  }

  std::vector<Token> Toks;
  size_t Pos = 0;
  DiagEngine &Diags;
  Module &M;
  bool Failed = false;
};
} // namespace

bool Parser::parseType(Type &Out) {
  if (acceptIdent("int")) {
    Out = Type::intTy();
    return true;
  }
  if (acceptIdent("rat")) {
    Out = Type::ratTy();
    return true;
  }
  if (acceptIdent("bool")) {
    Out = Type::boolTy();
    return true;
  }
  if (acceptIdent("Loc")) {
    Out = Type::locTy();
    return true;
  }
  if (acceptIdent("set")) {
    if (!expect(TokKind::LAngle, "'<'"))
      return false;
    Type Elem;
    if (!parseType(Elem))
      return false;
    if (Elem.isSet()) {
      error("nested set types are not supported");
      return false;
    }
    if (!expect(TokKind::RAngle, "'>'"))
      return false;
    Out = Type::setTy(Elem.Kind);
    return true;
  }
  error("expected a type");
  return false;
}

Expr *Parser::parsePrimary() {
  SourceLoc Loc = peek().Loc;
  if (check(TokKind::IntLit)) {
    Expr *E = M.newExpr(ExprKind::IntLit, Loc);
    E->IntVal = BigInt::fromString(advance().Text);
    return E;
  }
  if (acceptIdent("true") || checkIdent("false")) {
    bool V = Toks[Pos - 1].isIdent("true");
    if (!V) {
      advance();
    }
    Expr *E = M.newExpr(ExprKind::BoolLit, Loc);
    E->BoolVal = V;
    return E;
  }
  if (acceptIdent("nil"))
    return M.newExpr(ExprKind::NilLit, Loc);
  if (acceptIdent("alloc"))
    return M.newExpr(ExprKind::AllocSet, Loc);
  if (acceptIdent("old")) {
    if (!expect(TokKind::LParen, "'('"))
      return nullptr;
    Expr *Inner = parseExpr();
    if (!Inner || !expect(TokKind::RParen, "')'"))
      return nullptr;
    Expr *E = M.newExpr(ExprKind::Old, Loc);
    E->Args = {Inner};
    return E;
  }
  if (acceptIdent("fresh")) {
    if (!expect(TokKind::LParen, "'('"))
      return nullptr;
    Expr *Inner = parseExpr();
    if (!Inner || !expect(TokKind::RParen, "')'"))
      return nullptr;
    Expr *E = M.newExpr(ExprKind::Fresh, Loc);
    E->Args = {Inner};
    return E;
  }
  if (acceptIdent("br")) {
    if (!expect(TokKind::LParen, "'('"))
      return nullptr;
    std::string G = expectName("a local-condition group name");
    if (!expect(TokKind::RParen, "')'"))
      return nullptr;
    Expr *E = M.newExpr(ExprKind::BrSet, Loc);
    E->Name = G;
    return E;
  }
  if (acceptIdent("lc")) {
    if (!expect(TokKind::LParen, "'('"))
      return nullptr;
    std::string G = expectName("a local-condition group name");
    if (!expect(TokKind::Comma, "','"))
      return nullptr;
    Expr *Inner = parseExpr();
    if (!Inner || !expect(TokKind::RParen, "')'"))
      return nullptr;
    Expr *E = M.newExpr(ExprKind::LcApp, Loc);
    E->Name = G;
    E->Args = {Inner};
    return E;
  }
  if (acceptIdent("ite")) {
    if (!expect(TokKind::LParen, "'('"))
      return nullptr;
    Expr *C = parseExpr();
    if (!C || !expect(TokKind::Comma, "','"))
      return nullptr;
    Expr *T = parseExpr();
    if (!T || !expect(TokKind::Comma, "','"))
      return nullptr;
    Expr *E2 = parseExpr();
    if (!E2 || !expect(TokKind::RParen, "')'"))
      return nullptr;
    Expr *E = M.newExpr(ExprKind::IteExpr, Loc);
    E->Args = {C, T, E2};
    return E;
  }
  if (check(TokKind::LBrace)) {
    advance();
    Expr *E;
    if (accept(TokKind::RBrace)) {
      E = M.newExpr(ExprKind::EmptySetLit, Loc);
      return E;
    }
    E = M.newExpr(ExprKind::SetLit, Loc);
    do {
      Expr *Elem = parseExpr();
      if (!Elem)
        return nullptr;
      E->Args.push_back(Elem);
    } while (accept(TokKind::Comma));
    if (!expect(TokKind::RBrace, "'}'"))
      return nullptr;
    return E;
  }
  if (check(TokKind::LParen)) {
    advance();
    Expr *E = parseExpr();
    if (!E || !expect(TokKind::RParen, "')'"))
      return nullptr;
    return E;
  }
  if (check(TokKind::Ident)) {
    Expr *E = M.newExpr(ExprKind::VarRef, Loc);
    E->Name = advance().Text;
    return E;
  }
  error("expected an expression");
  return nullptr;
}

Expr *Parser::parsePostfix() {
  Expr *E = parsePrimary();
  while (E && check(TokKind::Dot)) {
    SourceLoc Loc = peek().Loc;
    advance();
    std::string Field = expectName("a field name");
    Expr *F = M.newExpr(ExprKind::FieldRead, Loc);
    F->Name = Field;
    F->Args = {E};
    E = F;
  }
  return E;
}

Expr *Parser::parseUnary() {
  SourceLoc Loc = peek().Loc;
  if (accept(TokKind::Bang)) {
    Expr *Inner = parseUnary();
    if (!Inner)
      return nullptr;
    Expr *E = M.newExpr(ExprKind::Unary, Loc);
    E->UOp = UnOp::Not;
    E->Args = {Inner};
    return E;
  }
  if (accept(TokKind::Minus)) {
    Expr *Inner = parseUnary();
    if (!Inner)
      return nullptr;
    Expr *E = M.newExpr(ExprKind::Unary, Loc);
    E->UOp = UnOp::Neg;
    E->Args = {Inner};
    return E;
  }
  return parsePostfix();
}

Expr *Parser::parseMultiplicative() {
  Expr *E = parseUnary();
  for (;;) {
    SourceLoc Loc = peek().Loc;
    if (accept(TokKind::Star)) {
      Expr *R = parseUnary();
      if (!R)
        return nullptr;
      E = mkBin(BinOp::Mul, E, R, Loc);
    } else if (accept(TokKind::Slash)) {
      Expr *R = parseUnary();
      if (!R)
        return nullptr;
      E = mkBin(BinOp::Div, E, R, Loc);
    } else if (acceptIdent("isect")) {
      Expr *R = parseUnary();
      if (!R)
        return nullptr;
      E = mkBin(BinOp::Isect, E, R, Loc);
    } else {
      return E;
    }
  }
}

Expr *Parser::parseAdditive() {
  Expr *E = parseMultiplicative();
  for (;;) {
    SourceLoc Loc = peek().Loc;
    if (accept(TokKind::Plus)) {
      Expr *R = parseMultiplicative();
      if (!R)
        return nullptr;
      E = mkBin(BinOp::Add, E, R, Loc);
    } else if (accept(TokKind::Minus)) {
      Expr *R = parseMultiplicative();
      if (!R)
        return nullptr;
      E = mkBin(BinOp::Sub, E, R, Loc);
    } else if (acceptIdent("union")) {
      Expr *R = parseMultiplicative();
      if (!R)
        return nullptr;
      E = mkBin(BinOp::Union, E, R, Loc);
    } else if (acceptIdent("setminus")) {
      Expr *R = parseMultiplicative();
      if (!R)
        return nullptr;
      E = mkBin(BinOp::SetMinus, E, R, Loc);
    } else if (acceptIdent("duplus")) {
      Expr *R = parseMultiplicative();
      if (!R)
        return nullptr;
      E = mkBin(BinOp::DuPlus, E, R, Loc);
    } else {
      return E;
    }
  }
}

Expr *Parser::parseRelational() {
  Expr *E = parseAdditive();
  if (!E)
    return nullptr;
  SourceLoc Loc = peek().Loc;
  BinOp Op;
  if (accept(TokKind::EqEq))
    Op = BinOp::Eq;
  else if (accept(TokKind::NotEq))
    Op = BinOp::Ne;
  else if (accept(TokKind::LessEq))
    Op = BinOp::Le;
  else if (accept(TokKind::GreaterEq))
    Op = BinOp::Ge;
  else if (accept(TokKind::LAngle))
    Op = BinOp::Lt;
  else if (accept(TokKind::RAngle))
    Op = BinOp::Gt;
  else if (acceptIdent("in"))
    Op = BinOp::In;
  else if (acceptIdent("subsetof"))
    Op = BinOp::Subset;
  else
    return E;
  Expr *R = parseAdditive();
  if (!R)
    return nullptr;
  return mkBin(Op, E, R, Loc);
}

Expr *Parser::parseAnd() {
  Expr *E = parseRelational();
  while (E && check(TokKind::AndAnd)) {
    SourceLoc Loc = peek().Loc;
    advance();
    Expr *R = parseRelational();
    if (!R)
      return nullptr;
    E = mkBin(BinOp::And, E, R, Loc);
  }
  return E;
}

Expr *Parser::parseOr() {
  Expr *E = parseAnd();
  while (E && check(TokKind::OrOr)) {
    SourceLoc Loc = peek().Loc;
    advance();
    Expr *R = parseAnd();
    if (!R)
      return nullptr;
    E = mkBin(BinOp::Or, E, R, Loc);
  }
  return E;
}

Expr *Parser::parseImplies() {
  Expr *E = parseOr();
  if (E && check(TokKind::Implies)) {
    SourceLoc Loc = peek().Loc;
    advance();
    Expr *R = parseImplies(); // right-associative
    if (!R)
      return nullptr;
    return mkBin(BinOp::Implies, E, R, Loc);
  }
  return E;
}

Expr *Parser::parseIff() {
  Expr *E = parseImplies();
  while (E && check(TokKind::Iff)) {
    SourceLoc Loc = peek().Loc;
    advance();
    Expr *R = parseImplies();
    if (!R)
      return nullptr;
    E = mkBin(BinOp::Iff, E, R, Loc);
  }
  return E;
}

Stmt *Parser::parseStmt() {
  SourceLoc Loc = peek().Loc;
  bool Ghost = false;
  if (checkIdent("ghost")) {
    if (peek(1).is(TokKind::LBrace)) {
      advance();
      Stmt *S = parseBlock();
      if (!S)
        return nullptr;
      S->Kind = StmtKind::GhostBlock;
      S->IsGhost = true;
      return S;
    }
    advance();
    Ghost = true;
  }
  if (acceptIdent("var")) {
    Stmt *S = M.newStmt(StmtKind::VarDecl, Loc);
    S->IsGhost = Ghost;
    S->VarName = expectName("a variable name");
    if (!expect(TokKind::Colon, "':'"))
      return nullptr;
    if (!parseType(S->VarType))
      return nullptr;
    if (accept(TokKind::Assign)) {
      S->Init = parseExpr();
      if (!S->Init)
        return nullptr;
    }
    if (!expect(TokKind::Semi, "';'"))
      return nullptr;
    return S;
  }
  if (Ghost) {
    error("'ghost' must prefix a variable declaration or a block");
    return nullptr;
  }
  if (acceptIdent("Mut")) {
    Stmt *S = M.newStmt(StmtKind::Mut, Loc);
    if (!expect(TokKind::LParen, "'('"))
      return nullptr;
    S->Target = parseExpr();
    if (!S->Target || !expect(TokKind::Comma, "','"))
      return nullptr;
    S->Init = parseExpr();
    if (!S->Init || !expect(TokKind::RParen, "')'") ||
        !expect(TokKind::Semi, "';'"))
      return nullptr;
    if (S->Target->Kind != ExprKind::FieldRead) {
      Diags.error(Loc, "first argument of Mut must be a field access");
      return nullptr;
    }
    return S;
  }
  if (acceptIdent("NewObj")) {
    Stmt *S = M.newStmt(StmtKind::NewObj, Loc);
    if (!expect(TokKind::LParen, "'('"))
      return nullptr;
    S->VarName = expectName("a variable name");
    if (!expect(TokKind::RParen, "')'") || !expect(TokKind::Semi, "';'"))
      return nullptr;
    return S;
  }
  if (acceptIdent("AssertLCAndRemove") || checkIdent("InferLCOutsideBr")) {
    bool IsRemove = Toks[Pos - 1].isIdent("AssertLCAndRemove");
    if (!IsRemove)
      advance();
    Stmt *S = M.newStmt(
        IsRemove ? StmtKind::AssertLcRemove : StmtKind::InferLc, Loc);
    if (!expect(TokKind::LParen, "'('"))
      return nullptr;
    S->Group = expectName("a local-condition group name");
    if (!expect(TokKind::Comma, "','"))
      return nullptr;
    S->Cond = parseExpr();
    if (!S->Cond || !expect(TokKind::RParen, "')'") ||
        !expect(TokKind::Semi, "';'"))
      return nullptr;
    return S;
  }
  if (acceptIdent("assert") || checkIdent("assume")) {
    bool IsAssert = Toks[Pos - 1].isIdent("assert");
    if (!IsAssert)
      advance();
    Stmt *S =
        M.newStmt(IsAssert ? StmtKind::Assert : StmtKind::Assume, Loc);
    S->Cond = parseExpr();
    if (!S->Cond || !expect(TokKind::Semi, "';'"))
      return nullptr;
    return S;
  }
  if (acceptIdent("if")) {
    Stmt *S = M.newStmt(StmtKind::If, Loc);
    if (!expect(TokKind::LParen, "'('"))
      return nullptr;
    S->Cond = parseExpr();
    if (!S->Cond || !expect(TokKind::RParen, "')'"))
      return nullptr;
    Stmt *Then = parseBlock();
    if (!Then)
      return nullptr;
    S->Body = Then->Body;
    if (acceptIdent("else")) {
      if (checkIdent("if")) {
        Stmt *ElseIf = parseStmt();
        if (!ElseIf)
          return nullptr;
        S->ElseBody = {ElseIf};
      } else {
        Stmt *Else = parseBlock();
        if (!Else)
          return nullptr;
        S->ElseBody = Else->Body;
      }
    }
    return S;
  }
  if (acceptIdent("while")) {
    Stmt *S = M.newStmt(StmtKind::While, Loc);
    if (!expect(TokKind::LParen, "'('"))
      return nullptr;
    S->Cond = parseExpr();
    if (!S->Cond || !expect(TokKind::RParen, "')'"))
      return nullptr;
    while (acceptIdent("invariant")) {
      Expr *Inv = parseExpr();
      if (!Inv)
        return nullptr;
      S->Invariants.push_back(Inv);
    }
    if (acceptIdent("decreases")) {
      S->Decreases = parseExpr();
      if (!S->Decreases)
        return nullptr;
    }
    Stmt *Body = parseBlock();
    if (!Body)
      return nullptr;
    S->Body = Body->Body;
    return S;
  }
  if (acceptIdent("call")) {
    Stmt *S = M.newStmt(StmtKind::Call, Loc);
    // Either `call p(args);` or `call a, b := p(args);`
    std::vector<std::string> Names;
    Names.push_back(expectName("a name"));
    while (accept(TokKind::Comma))
      Names.push_back(expectName("a name"));
    if (accept(TokKind::Assign)) {
      S->CallLhs = std::move(Names);
      S->Callee = expectName("a procedure name");
    } else {
      if (Names.size() != 1) {
        error("expected ':=' in call statement");
        return nullptr;
      }
      S->Callee = Names[0];
    }
    if (!expect(TokKind::LParen, "'('"))
      return nullptr;
    if (!check(TokKind::RParen)) {
      do {
        Expr *A = parseExpr();
        if (!A)
          return nullptr;
        S->CallArgs.push_back(A);
      } while (accept(TokKind::Comma));
    }
    if (!expect(TokKind::RParen, "')'") || !expect(TokKind::Semi, "';'"))
      return nullptr;
    return S;
  }
  if (acceptIdent("return")) {
    Stmt *S = M.newStmt(StmtKind::Return, Loc);
    if (!expect(TokKind::Semi, "';'"))
      return nullptr;
    return S;
  }
  // Assignment: ident := expr ;
  if (check(TokKind::Ident) && peek(1).is(TokKind::Assign)) {
    Stmt *S = M.newStmt(StmtKind::Assign, Loc);
    S->VarName = advance().Text;
    advance(); // :=
    S->Init = parseExpr();
    if (!S->Init || !expect(TokKind::Semi, "';'"))
      return nullptr;
    return S;
  }
  error("expected a statement");
  return nullptr;
}

Stmt *Parser::parseBlock() {
  SourceLoc Loc = peek().Loc;
  if (!expect(TokKind::LBrace, "'{'"))
    return nullptr;
  Stmt *B = M.newStmt(StmtKind::Block, Loc);
  while (!check(TokKind::RBrace) && !check(TokKind::Eof)) {
    Stmt *S = parseStmt();
    if (!S)
      return nullptr;
    B->Body.push_back(S);
  }
  if (!expect(TokKind::RBrace, "'}'"))
    return nullptr;
  return B;
}

bool Parser::parseParams(std::vector<ParamDecl> &Out) {
  if (check(TokKind::RParen))
    return true;
  do {
    ParamDecl P;
    if (acceptIdent("ghost"))
      P.IsGhost = true;
    P.Name = expectName("a parameter name");
    if (!expect(TokKind::Colon, "':'"))
      return false;
    if (!parseType(P.Ty))
      return false;
    Out.push_back(std::move(P));
  } while (accept(TokKind::Comma));
  return true;
}

bool Parser::parseStructure() {
  StructureDecl &S = M.Structure;
  S.Loc = peek().Loc;
  if (!expectIdent("structure"))
    return false;
  S.Name = expectName("a structure name");
  if (!expect(TokKind::LBrace, "'{'"))
    return false;
  while (!check(TokKind::RBrace) && !check(TokKind::Eof)) {
    SourceLoc Loc = peek().Loc;
    bool Ghost = acceptIdent("ghost");
    if (acceptIdent("field")) {
      FieldDecl F;
      F.IsGhost = Ghost;
      F.Loc = Loc;
      F.Name = expectName("a field name");
      if (!expect(TokKind::Colon, "':'"))
        return false;
      if (!parseType(F.Ty))
        return false;
      if (!expect(TokKind::Semi, "';'"))
        return false;
      S.Fields.push_back(std::move(F));
      continue;
    }
    if (Ghost) {
      error("'ghost' must prefix a field declaration here");
      return false;
    }
    if (acceptIdent("local")) {
      LocalCondDecl L;
      L.Loc = Loc;
      L.Name = expectName("a group name");
      if (!expect(TokKind::LParen, "'('"))
        return false;
      L.Param = expectName("a parameter name");
      if (!expect(TokKind::RParen, "')'") || !expect(TokKind::LBrace, "'{'"))
        return false;
      L.Body = parseExpr();
      if (!L.Body || !expect(TokKind::RBrace, "'}'"))
        return false;
      S.Locals.push_back(std::move(L));
      continue;
    }
    if (acceptIdent("correlation")) {
      if (!expect(TokKind::LParen, "'('"))
        return false;
      S.CorrelationParam = expectName("a parameter name");
      if (!expect(TokKind::RParen, "')'") || !expect(TokKind::LBrace, "'{'"))
        return false;
      S.CorrelationBody = parseExpr();
      if (!S.CorrelationBody || !expect(TokKind::RBrace, "'}'"))
        return false;
      continue;
    }
    if (acceptIdent("impact")) {
      // `impact f [g]` or `impact f [g1, g2, ...]`: a field shared by
      // several local-condition groups declares one impact set per group
      // in a single clause (overlaid structures, Section 4.4); the list
      // desugars to one ImpactDecl per group sharing the same terms.
      ImpactDecl I;
      I.Loc = Loc;
      I.Field = expectName("a field name");
      if (!expect(TokKind::LBracket, "'['"))
        return false;
      std::vector<std::string> Groups;
      do {
        Groups.push_back(expectName("a group name"));
      } while (accept(TokKind::Comma));
      if (!expect(TokKind::RBracket, "']'"))
        return false;
      if (acceptIdent("requires")) {
        I.Precondition = parseExpr();
        if (!I.Precondition)
          return false;
      }
      if (!expect(TokKind::LBrace, "'{'"))
        return false;
      do {
        Expr *T = parseExpr();
        if (!T)
          return false;
        I.Terms.push_back(T);
      } while (accept(TokKind::Comma));
      if (!expect(TokKind::RBrace, "'}'"))
        return false;
      for (const std::string &G : Groups) {
        ImpactDecl Copy = I;
        Copy.Group = G;
        S.Impacts.push_back(std::move(Copy));
      }
      continue;
    }
    error("expected a structure member");
    return false;
  }
  return expect(TokKind::RBrace, "'}'");
}

bool Parser::parseProcedure() {
  ProcDecl P;
  P.Loc = peek().Loc;
  if (!expectIdent("procedure"))
    return false;
  P.Name = expectName("a procedure name");
  if (!expect(TokKind::LParen, "'('"))
    return false;
  if (!parseParams(P.Params))
    return false;
  if (!expect(TokKind::RParen, "')'"))
    return false;
  if (acceptIdent("returns")) {
    if (!expect(TokKind::LParen, "'('"))
      return false;
    if (!parseParams(P.Returns))
      return false;
    if (!expect(TokKind::RParen, "')'"))
      return false;
  }
  for (;;) {
    if (acceptIdent("requires")) {
      Expr *E = parseExpr();
      if (!E)
        return false;
      P.Requires.push_back(E);
    } else if (acceptIdent("ensures")) {
      Expr *E = parseExpr();
      if (!E)
        return false;
      P.Ensures.push_back(E);
    } else if (acceptIdent("modifies")) {
      do {
        Expr *E = parseExpr();
        if (!E)
          return false;
        P.Modifies.push_back(E);
      } while (accept(TokKind::Comma));
    } else {
      break;
    }
  }
  P.Body = parseBlock();
  if (!P.Body)
    return false;
  M.Procs.push_back(std::move(P));
  return true;
}

bool Parser::parseModule() {
  if (!parseStructure())
    return false;
  while (!check(TokKind::Eof)) {
    if (!parseProcedure())
      return false;
  }
  return !Failed;
}

std::unique_ptr<Module> lang::parseModule(const std::string &Source,
                                          DiagEngine &Diags) {
  std::vector<Token> Toks = tokenize(Source, Diags);
  if (Diags.hasErrors())
    return nullptr;
  auto M = std::make_unique<Module>();
  Parser P(std::move(Toks), Diags, *M);
  if (!P.parseModule() || Diags.hasErrors())
    return nullptr;
  return M;
}
