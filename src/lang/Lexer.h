//===- lang/Lexer.h - Surface language lexer -------------------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the IDS surface language.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_LANG_LEXER_H
#define IDS_LANG_LEXER_H

#include "support/Diag.h"

#include <string>
#include <vector>

namespace ids {
namespace lang {

enum class TokKind : uint8_t {
  Eof,
  Ident,
  IntLit,
  // punctuation
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  LAngle, // <
  RAngle, // >
  Comma,
  Semi,
  Colon,
  Dot,
  Assign,   // :=
  EqEq,     // ==
  NotEq,    // !=
  LessEq,   // <=
  GreaterEq,// >=
  Plus,
  Minus,
  Star,
  Slash,
  Bang,
  AndAnd,
  OrOr,
  Implies, // ==>
  Iff,     // <==>
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;
  SourceLoc Loc;

  bool is(TokKind K) const { return Kind == K; }
  bool isIdent(const char *S) const {
    return Kind == TokKind::Ident && Text == S;
  }
};

/// Tokenizes a whole buffer. Reports malformed input through \p Diags.
std::vector<Token> tokenize(const std::string &Source, DiagEngine &Diags);

} // namespace lang
} // namespace ids

#endif // IDS_LANG_LEXER_H
