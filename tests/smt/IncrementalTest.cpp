//===- tests/smt/IncrementalTest.cpp - Incremental solving units -----------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the incremental solving core: SatSolver assertion
/// levels (clause retraction, lemma retention), CongruenceClosure and
/// ArithSolver push/pop trails, the level-aware ArrayReducer, and the
/// SolverContext assertion-stack protocol.
///
//===----------------------------------------------------------------------===//

#include "smt/ArrayReduction.h"
#include "smt/SolverContext.h"
#include "smt/Solver.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ids;
using namespace ids::smt;

// ------------------------------------------------------------ SatSolver --

TEST(SatLevelTest, PopRetractsClauses) {
  sat::SatSolver S;
  sat::Var A = S.newVar(), B = S.newVar();
  ASSERT_TRUE(S.addClause({sat::Lit(A, false), sat::Lit(B, false)}));
  S.pushAssertLevel();
  ASSERT_TRUE(S.addClause({sat::Lit(A, true)}));
  // Forcing !b too contradicts (a | b) at the root: addClause reports the
  // level-1 refutation immediately.
  EXPECT_FALSE(S.addClause({sat::Lit(B, true)}));
  EXPECT_EQ(S.solve(), sat::SatSolver::Result::Unsat);
  EXPECT_TRUE(S.unsatAtCurrentLevel());
  S.popAssertLevel();
  EXPECT_FALSE(S.unsatAtCurrentLevel());
  EXPECT_EQ(S.solve(), sat::SatSolver::Result::Sat);
  // (a | b) alone is satisfiable; the unit retractions must be gone.
  EXPECT_TRUE(S.modelValue(A) || S.modelValue(B));
}

TEST(SatLevelTest, PopRetractsRootImplications) {
  sat::SatSolver S;
  sat::Var A = S.newVar(), B = S.newVar();
  // a -> b at level 0.
  ASSERT_TRUE(S.addClause({sat::Lit(A, true), sat::Lit(B, false)}));
  S.pushAssertLevel();
  ASSERT_TRUE(S.addClause({sat::Lit(A, false)})); // forces a, hence b
  EXPECT_EQ(S.solve(), sat::SatSolver::Result::Sat);
  EXPECT_TRUE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));
  S.resetToRoot();
  S.popAssertLevel();
  S.pushAssertLevel();
  ASSERT_TRUE(S.addClause({sat::Lit(B, true)})); // now force !b, hence !a
  EXPECT_EQ(S.solve(), sat::SatSolver::Result::Sat);
  EXPECT_FALSE(S.modelValue(B));
  EXPECT_FALSE(S.modelValue(A));
}

TEST(SatLevelTest, NestedLevels) {
  sat::SatSolver S;
  sat::Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  ASSERT_TRUE(S.addClause({sat::Lit(A, false), sat::Lit(B, false),
                           sat::Lit(C, false)}));
  S.pushAssertLevel();
  ASSERT_TRUE(S.addClause({sat::Lit(A, true)}));
  S.pushAssertLevel();
  ASSERT_TRUE(S.addClause({sat::Lit(B, true)}));
  EXPECT_EQ(S.solve(), sat::SatSolver::Result::Sat);
  EXPECT_TRUE(S.modelValue(C));
  S.resetToRoot();
  S.pushAssertLevel();
  // c was root-implied by the two unit levels; forcing !c refutes at the
  // current level already.
  EXPECT_FALSE(S.addClause({sat::Lit(C, true)}));
  EXPECT_EQ(S.solve(), sat::SatSolver::Result::Unsat);
  S.popAssertLevel(); // drop !c
  S.popAssertLevel(); // drop !b
  EXPECT_EQ(S.solve(), sat::SatSolver::Result::Sat);
  EXPECT_TRUE(S.modelValue(B) || S.modelValue(C));
  S.popAssertLevel(); // drop !a
  EXPECT_EQ(S.solve(), sat::SatSolver::Result::Sat);
}

// --------------------------------------------------- CongruenceClosure --

namespace {
class CcLevelTest : public ::testing::Test {
protected:
  TermManager TM;
  TermRef loc(const std::string &N) { return TM.mkVar(N, TM.locSort()); }
  TermRef f(TermRef X) {
    const FuncDecl *D = TM.getFuncDecl("f", {TM.locSort()}, TM.locSort());
    return TM.mkApply(D, {X});
  }
};
} // namespace

TEST_F(CcLevelTest, PopUndoesMerge) {
  CongruenceClosure CC(TM);
  TermRef A = loc("a"), B = loc("b"), C = loc("c");
  EXPECT_TRUE(CC.assertEqual(A, B, 0));
  CC.push();
  EXPECT_TRUE(CC.assertEqual(B, C, 1));
  EXPECT_TRUE(CC.areEqual(A, C));
  CC.pop();
  EXPECT_TRUE(CC.areEqual(A, B));
  EXPECT_FALSE(CC.areEqual(A, C));
}

TEST_F(CcLevelTest, PopUndoesCongruence) {
  CongruenceClosure CC(TM);
  TermRef A = loc("a"), B = loc("b");
  CC.registerTerm(f(A));
  CC.registerTerm(f(B));
  CC.push();
  EXPECT_TRUE(CC.assertEqual(A, B, 0));
  EXPECT_TRUE(CC.areEqual(f(A), f(B)));
  CC.pop();
  EXPECT_FALSE(CC.areEqual(f(A), f(B)));
  // Re-assert after the pop: congruence must fire again.
  EXPECT_TRUE(CC.assertEqual(A, B, 1));
  EXPECT_TRUE(CC.areEqual(f(A), f(B)));
}

TEST_F(CcLevelTest, PopUndoesRegistration) {
  CongruenceClosure CC(TM);
  TermRef A = loc("a");
  CC.registerTerm(A);
  size_t Before = CC.terms().size();
  CC.push();
  CC.registerTerm(f(f(A)));
  EXPECT_GT(CC.terms().size(), Before);
  CC.pop();
  EXPECT_EQ(CC.terms().size(), Before);
  EXPECT_FALSE(CC.isRegistered(f(A)));
  // Re-registration after pop must not corrupt the signature table.
  CC.registerTerm(f(f(A)));
  EXPECT_TRUE(CC.isRegistered(f(A)));
}

TEST_F(CcLevelTest, PopClearsConflict) {
  CongruenceClosure CC(TM);
  TermRef A = loc("a"), B = loc("b");
  EXPECT_TRUE(CC.assertDisequal(A, B, 0));
  CC.push();
  EXPECT_FALSE(CC.assertEqual(A, B, 1));
  EXPECT_TRUE(CC.inConflict());
  CC.pop();
  EXPECT_FALSE(CC.inConflict());
  EXPECT_FALSE(CC.areEqual(A, B));
  EXPECT_TRUE(CC.areDisequal(A, B));
}

TEST_F(CcLevelTest, DeepPushPopStress) {
  // Interleaved merges across nested levels with congruence chains; after
  // unwinding, the base equalities must be intact and nothing else.
  CongruenceClosure CC(TM);
  std::vector<TermRef> Xs;
  for (int I = 0; I < 8; ++I)
    Xs.push_back(loc("x" + std::to_string(I)));
  for (TermRef X : Xs)
    CC.registerTerm(f(X));
  EXPECT_TRUE(CC.assertEqual(Xs[0], Xs[1], 0));
  for (int Round = 0; Round < 3; ++Round) {
    CC.push();
    EXPECT_TRUE(CC.assertEqual(Xs[2], Xs[3], 10 + Round));
    CC.push();
    EXPECT_TRUE(CC.assertEqual(Xs[1], Xs[2], 20 + Round));
    EXPECT_TRUE(CC.areEqual(f(Xs[0]), f(Xs[3])));
    CC.pop();
    EXPECT_FALSE(CC.areEqual(Xs[1], Xs[2]));
    EXPECT_TRUE(CC.areEqual(f(Xs[2]), f(Xs[3])));
    CC.pop();
    EXPECT_FALSE(CC.areEqual(Xs[2], Xs[3]));
    EXPECT_TRUE(CC.areEqual(f(Xs[0]), f(Xs[1])));
  }
}

// ---------------------------------------------------------- ArithSolver --

namespace {
LinTerm poly(std::initializer_list<std::pair<int, int64_t>> Cs,
             int64_t Const = 0) {
  LinTerm P;
  for (auto [V, C] : Cs)
    P.add(V, Rational(C));
  P.Const = Rational(Const);
  return P;
}
} // namespace

TEST(ArithLevelTest, PopRetractsBounds) {
  ArithSolver A;
  int X = A.addVar(false);
  EXPECT_TRUE(A.assertAtom(poly({{X, -1}}, 1), ArithSolver::Op::Le, 0));
  A.push();
  EXPECT_TRUE(A.assertAtom(poly({{X, 1}}, -3), ArithSolver::Op::Le, 1));
  A.push();
  // x >= 5 contradicts x <= 3: immediate bound conflict.
  EXPECT_FALSE(A.assertAtom(poly({{X, -1}}, 5), ArithSolver::Op::Le, 2));
  std::set<int> Core;
  EXPECT_EQ(A.check(Core), ArithSolver::Result::Unsat);
  A.pop();
  Core.clear();
  EXPECT_EQ(A.check(Core), ArithSolver::Result::Sat);
  EXPECT_LE(A.modelValue(X), Rational(3));
  A.pop();
  // Upper bound gone: x = 10 must be admissible again.
  EXPECT_TRUE(A.assertAtom(poly({{X, -1}}, 10), ArithSolver::Op::Le, 3));
  Core.clear();
  EXPECT_EQ(A.check(Core), ArithSolver::Result::Sat);
  EXPECT_GE(A.modelValue(X), Rational(10));
}

TEST(ArithLevelTest, PopRetractsDiseqsAndTrivialConflict) {
  ArithSolver A;
  int X = A.addVar(true);
  EXPECT_TRUE(A.assertAtom(poly({{X, 1}}, 0), ArithSolver::Op::Eq, 0));
  A.push();
  EXPECT_TRUE(A.assertAtom(poly({{X, 1}}, 0), ArithSolver::Op::Ne, 1));
  std::set<int> Core;
  EXPECT_EQ(A.check(Core), ArithSolver::Result::Unsat);
  A.pop();
  Core.clear();
  EXPECT_EQ(A.check(Core), ArithSolver::Result::Sat);
  EXPECT_EQ(A.modelValue(X), Rational(0));
  // Trivial conflict above a level must clear on pop.
  A.push();
  LinTerm Bad;
  Bad.Const = Rational(1);
  EXPECT_FALSE(A.assertAtom(Bad, ArithSolver::Op::Le, 2));
  A.pop();
  Core.clear();
  EXPECT_EQ(A.check(Core), ArithSolver::Result::Sat);
}

TEST(ArithLevelTest, SlackRowsSurvivePops) {
  // Slack definitions created above a popped level persist; re-asserting
  // the same polynomial must reuse them and still solve correctly.
  ArithSolver A;
  int X = A.addVar(false), Y = A.addVar(false);
  EXPECT_TRUE(A.assertAtom(poly({{X, 1}, {Y, 1}}, -4), ArithSolver::Op::Eq, 0));
  for (int Round = 0; Round < 3; ++Round) {
    A.push();
    EXPECT_TRUE(
        A.assertAtom(poly({{X, 1}, {Y, -1}}, 0), ArithSolver::Op::Eq, 1));
    std::set<int> Core;
    EXPECT_EQ(A.check(Core), ArithSolver::Result::Sat);
    EXPECT_EQ(A.modelValue(X), Rational(2));
    EXPECT_EQ(A.modelValue(Y), Rational(2));
    A.pop();
  }
}

// --------------------------------------------------------- ArrayReducer --

TEST(ArrayReducerTest, MatchesOneShotLemmaSet) {
  // The incremental reducer must reach the same lemma fixpoint as the
  // one-shot reduceArrays for the same assertion set (modulo the fresh
  // witness variables, which both mint independently — this formula has
  // no negative array equality, so the sets must match exactly).
  TermManager TM;
  const Sort *IntInt = TM.getArraySort(TM.intSort(), TM.intSort());
  TermRef A = TM.mkVar("a", IntInt);
  TermRef X = TM.mkVar("x", TM.intSort());
  TermRef Y = TM.mkVar("y", TM.intSort());
  TermRef St = TM.mkStore(A, X, TM.mkIntConst(7));
  TermRef F1 = TM.mkEq(TM.mkSelect(St, Y), TM.mkIntConst(7));
  TermRef F2 = TM.mkLt(TM.mkSelect(A, X), TM.mkIntConst(9));

  ArrayReductionStats OneShot;
  reduceArrays(TM, TM.mkAnd(F1, F2), &OneShot, /*Eager=*/false);

  ArrayReducer R(TM, ArrayReducer::Mode::Demand);
  std::vector<TermRef> L1 = R.assertFormula(F1);
  std::vector<TermRef> L2 = R.assertFormula(F2);
  EXPECT_EQ(L1.size() + L2.size(), OneShot.NumLemmas);
}

TEST(ArrayReducerTest, PopRetractsDemands) {
  TermManager TM;
  const Sort *IntInt = TM.getArraySort(TM.intSort(), TM.intSort());
  TermRef A = TM.mkVar("a", IntInt);
  TermRef X = TM.mkVar("x", TM.intSort());
  TermRef St = TM.mkStore(A, TM.mkIntConst(1), TM.mkIntConst(2));
  TermRef Q = TM.mkEq(TM.mkSelect(St, X), TM.mkIntConst(2));

  ArrayReducer R(TM, ArrayReducer::Mode::Demand);
  R.push();
  std::vector<TermRef> First = R.assertFormula(Q);
  EXPECT_FALSE(First.empty());
  R.pop();
  R.push();
  // After the pop the demand records are retracted, so the same assertion
  // must re-derive the same lemmas rather than returning nothing.
  std::vector<TermRef> Second = R.assertFormula(Q);
  EXPECT_EQ(First.size(), Second.size());
  R.pop();
}

// -------------------------------------------------------- SolverContext --

namespace {
class ContextTest : public ::testing::Test {
protected:
  TermManager TM;
  SolverOptions Opts;
};
} // namespace

TEST_F(ContextTest, PushPopVerdicts) {
  SolverContext Ctx(TM, Opts);
  TermRef X = TM.mkVar("x", TM.intSort());
  Ctx.assertTerm(TM.mkLe(TM.mkIntConst(0), X));
  EXPECT_EQ(Ctx.checkSat(), SolverResult::Sat);
  Ctx.push();
  Ctx.assertTerm(TM.mkLt(X, TM.mkIntConst(0)));
  EXPECT_EQ(Ctx.checkSat(), SolverResult::Unsat);
  Ctx.pop();
  EXPECT_EQ(Ctx.checkSat(), SolverResult::Sat);
  Ctx.push();
  Ctx.assertTerm(TM.mkEq(X, TM.mkIntConst(3)));
  EXPECT_EQ(Ctx.checkSat(), SolverResult::Sat);
  Value V = Ctx.model().evaluate(X);
  EXPECT_EQ(V.K, Value::Kind::Int);
  EXPECT_EQ(V.I, BigInt(3));
  Ctx.pop();
}

TEST_F(ContextTest, CheckSatAssuming) {
  SolverContext Ctx(TM, Opts);
  TermRef P = TM.mkVar("p", TM.boolSort());
  TermRef Q = TM.mkVar("q", TM.boolSort());
  Ctx.assertTerm(TM.mkImplies(P, Q));
  EXPECT_EQ(Ctx.checkSatAssuming(TM.mkAnd(P, TM.mkNot(Q))),
            SolverResult::Unsat);
  EXPECT_EQ(Ctx.checkSatAssuming(TM.mkAnd(P, Q)), SolverResult::Sat);
  EXPECT_EQ(Ctx.checkSat(), SolverResult::Sat);
}

TEST_F(ContextTest, ArrayPrefixSharedAcrossClaims) {
  // The batching pattern: array facts in the prefix, per-claim negations
  // pushed and popped. All three claims are consequences of the prefix.
  SolverContext Ctx(TM, Opts);
  const Sort *IntInt = TM.getArraySort(TM.intSort(), TM.intSort());
  TermRef A = TM.mkVar("a", IntInt);
  TermRef I = TM.mkVar("i", TM.intSort());
  TermRef J = TM.mkVar("j", TM.intSort());
  TermRef St = TM.mkStore(A, I, TM.mkIntConst(5));
  Ctx.assertTerm(TM.mkDistinct(I, J));
  Ctx.assertTerm(TM.mkEq(TM.mkSelect(A, J), TM.mkIntConst(1)));

  std::vector<TermRef> Claims = {
      TM.mkEq(TM.mkSelect(St, I), TM.mkIntConst(5)),
      TM.mkEq(TM.mkSelect(St, J), TM.mkIntConst(1)),
      TM.mkLt(TM.mkSelect(St, J), TM.mkSelect(St, I)),
  };
  for (TermRef C : Claims) {
    Ctx.push();
    Ctx.assertTerm(TM.mkNot(C));
    EXPECT_EQ(Ctx.checkSat(), SolverResult::Unsat) << "claim not proved";
    Ctx.pop();
  }
  // And a non-consequence must stay Sat (no over-retention of lemmas).
  Ctx.push();
  Ctx.assertTerm(TM.mkNot(TM.mkEq(TM.mkSelect(St, J), TM.mkIntConst(2))));
  EXPECT_EQ(Ctx.checkSat(), SolverResult::Sat);
  Ctx.pop();
}

TEST_F(ContextTest, PerCheckStatsAreDeltas) {
  SolverContext Ctx(TM, Opts);
  TermRef X = TM.mkVar("x", TM.intSort());
  Ctx.assertTerm(TM.mkLe(TM.mkIntConst(0), X));
  Ctx.checkSat();
  uint64_t FirstChecks = Ctx.lastCheckStats().TheoryChecks;
  EXPECT_GT(FirstChecks, 0u);
  Ctx.push();
  Ctx.assertTerm(TM.mkLe(X, TM.mkIntConst(10)));
  Ctx.checkSat();
  // The second check's window must not include the first check's count.
  EXPECT_LT(Ctx.lastCheckStats().TheoryChecks, FirstChecks + 10);
  Ctx.pop();
}

TEST_F(ContextTest, TheoryPropReasonsAcrossPop) {
  // An equality chain entails the a=c atom, which theory propagation
  // asserts at the root instead of leaving it to a decision. A later
  // level contradicts it, so conflict analysis must consume the
  // propagated literal's lazily explained reason under an open assertion
  // level — and the pop must retract the level without stranding any
  // propagation bookkeeping (verdicts flip back cleanly).
  SolverOptions PropOpts = Opts;
  PropOpts.TheoryPropagation = true;
  SolverContext Ctx(TM, PropOpts);
  TermRef A = TM.mkVar("a", TM.intSort());
  TermRef B = TM.mkVar("b", TM.intSort());
  TermRef C = TM.mkVar("c", TM.intSort());
  TermRef D = TM.mkVar("d", TM.boolSort());
  Ctx.assertTerm(TM.mkEq(A, B));
  Ctx.assertTerm(TM.mkEq(B, C));
  Ctx.assertTerm(TM.mkOr(TM.mkEq(A, C), D));
  ASSERT_EQ(Ctx.checkSat(), SolverResult::Sat);
  EXPECT_GT(Ctx.lastCheckStats().TheoryPropagations, 0u);

  Ctx.push();
  Ctx.assertTerm(TM.mkNot(TM.mkEq(A, C)));
  EXPECT_EQ(Ctx.checkSat(), SolverResult::Unsat);
  Ctx.pop();
  EXPECT_EQ(Ctx.checkSat(), SolverResult::Sat);

  // Same shape through the arithmetic side: c = a + 1 contradicts the
  // chain via bounds rather than congruence.
  Ctx.push();
  Ctx.assertTerm(TM.mkEq(C, TM.mkAdd(A, TM.mkIntConst(1))));
  EXPECT_EQ(Ctx.checkSat(), SolverResult::Unsat);
  Ctx.pop();
  EXPECT_EQ(Ctx.checkSat(), SolverResult::Sat);
}

TEST_F(ContextTest, AgreesWithOneShotOnConjunction) {
  // Incremental verdicts must match a fresh one-shot solve of the active
  // conjunction at every step of a scripted push/pop sequence.
  SolverContext Ctx(TM, Opts);
  TermRef X = TM.mkVar("x", TM.intSort());
  TermRef Y = TM.mkVar("y", TM.intSort());
  const Sort *IntBool = TM.getArraySort(TM.intSort(), TM.boolSort());
  TermRef S0 = TM.mkVar("s", IntBool);

  std::vector<TermRef> Active;
  auto CrossCheck = [&]() {
    SolverResult Inc = Ctx.checkSat();
    TermManager Fresh;
    Solver OneShot(Fresh);
    SolverResult Ref = OneShot.checkSat(Fresh.import(TM.mkAnd(Active)));
    EXPECT_EQ(static_cast<int>(Inc), static_cast<int>(Ref));
  };

  auto Assert = [&](TermRef F) {
    Ctx.assertTerm(F);
    Active.push_back(F);
  };

  Assert(TM.mkMember(X, TM.mkSetInsert(S0, X)));
  CrossCheck();
  Ctx.push();
  size_t Mark = Active.size();
  Assert(TM.mkNot(TM.mkMember(Y, S0)));
  Assert(TM.mkEq(X, Y));
  CrossCheck();
  Ctx.push();
  size_t Mark2 = Active.size();
  Assert(TM.mkMember(Y, S0));
  CrossCheck(); // unsat
  Ctx.pop();
  Active.resize(Mark2);
  CrossCheck();
  Ctx.pop();
  Active.resize(Mark);
  CrossCheck();
}
