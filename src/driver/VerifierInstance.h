//===- driver/VerifierInstance.h - Long-lived verifier state ---*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reusable verification instance: the warm state a long-lived process
/// (serve mode, `--benchmark all`, tests) keeps between requests, split
/// out of the one-shot CLI the way a compiler keeps a CompilerInstance
/// apart from its command-line `main`.
///
/// The instance owns two caches that outlive any single verify() call:
///
///  - the structural QueryCache (solver outcomes keyed by the query
///    DAG's 128-bit hash), optionally disk-backed via attachCacheDir so
///    outcomes survive the process; and
///  - a procedure-verdict cache for incremental re-verification: each
///    procedure is keyed by the ordered fold of its obligations' VC
///    structural hashes, so a re-submitted source skips every procedure
///    whose VC did not change, replaying the recorded verdict as
///    ProcResult::Cached. Only definitive verdicts (Verified / Failed)
///    are recorded — an Unknown is a budget artifact, not a property of
///    the procedure.
///
/// Every verify() call still builds its own TermManager per procedure
/// (cheap, and it keeps term interning request-isolated); the caches are
/// manager-independent by construction, which is what makes the warm
/// state sound to share.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_DRIVER_VERIFIERINSTANCE_H
#define IDS_DRIVER_VERIFIERINSTANCE_H

#include "driver/Verifier.h"
#include "pipeline/QueryCache.h"

#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>

namespace ids {
namespace driver {

class VerifierInstance {
public:
  struct Stats {
    uint64_t Requests = 0;      ///< verify() calls
    uint64_t ProcsSolved = 0;   ///< procedures run through the pipeline
    uint64_t ProcsCached = 0;   ///< procedures replayed from the verdict cache
    uint64_t ImpactsSolved = 0;
    uint64_t ImpactsCached = 0;
    uint64_t VerdictsRecorded = 0;  ///< definitive verdicts stored
    size_t VerdictsLoadedFromDisk = 0;
  };

  VerifierInstance() = default;
  ~VerifierInstance();
  VerifierInstance(const VerifierInstance &) = delete;
  VerifierInstance &operator=(const VerifierInstance &) = delete;

  /// Backs both caches with files under \p Dir (created if missing):
  /// `queries.v1` for solver outcomes, `verdicts.v1` for procedure
  /// verdicts. Existing entries load now; later entries append
  /// immediately. Returns false with \p Error set on I/O failure.
  bool attachCacheDir(const std::string &Dir, std::string &Error);

  /// Parses and verifies a module, consulting/populating the instance
  /// caches. Front-end failures are reported exactly like
  /// driver::verifySource (FrontEndOk = false, diagnostics in \p Diags).
  ModuleResult verify(const std::string &Source, const VerifyOptions &Opts,
                      DiagEngine &Diags);

  pipeline::QueryCache &queryCache() { return Cache; }
  const Stats &stats() const { return InstStats; }

  /// One-line human-readable cache summary (printed by the CLI when
  /// --cache-dir is in use; parsed by the warm-cache e2e test).
  std::string cacheSummary() const;

  /// On-disk verdict-file version tag; bump when the layout changes.
  static constexpr const char *VerdictHeader = "IDSVC v1";
  static constexpr const char *VerdictFileName = "verdicts.v1";

private:
  /// Procedure key: order-sensitive fold of the obligations' structural
  /// query hashes (the pipeline reports the first failure in obligation
  /// order, so order is part of the contract).
  struct ProcKey {
    uint64_t Lo = 0;
    uint64_t Hi = 0;
    bool operator==(const ProcKey &O) const {
      return Lo == O.Lo && Hi == O.Hi;
    }
  };
  struct ProcKeyHash {
    size_t operator()(const ProcKey &K) const {
      return static_cast<size_t>(K.Lo ^ (K.Hi * 0x9e3779b97f4a7c15ull));
    }
  };
  struct ProcVerdict {
    Status St = Status::Verified;
    unsigned NumObligations = 0;
    std::string FailedObligation;
    std::string Counterexample;
  };

  bool lookupVerdict(const ProcKey &K, ProcVerdict &Out);
  void recordVerdict(const ProcKey &K, const ProcVerdict &V);
  void appendVerdictLocked(const ProcKey &K, const ProcVerdict &V);
  size_t loadVerdictsLocked(std::FILE *F);

  pipeline::QueryCache Cache;
  std::mutex VerdictMutex;
  std::unordered_map<ProcKey, ProcVerdict, ProcKeyHash> Verdicts;
  std::FILE *VerdictAppend = nullptr;
  Stats InstStats;
};

} // namespace driver
} // namespace ids

#endif // IDS_DRIVER_VERIFIERINSTANCE_H
