//===- bench/bench_rq3_scatter.cpp - RQ3 scatter plot ----------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the RQ3 scatter plot of Section 5.3 (E2 in DESIGN.md):
/// verification time of the decidable quantifier-free encoding (x axis,
/// "Boogie" in the paper) against the quantified "Dafny-style" encoding
/// (y axis) for each method. The paper's claim — quantified encodings are
/// consistently slower and unpredictable (they may fail outright) — is
/// what the series exhibits; `unknown` marks methods where quantifier
/// instantiation gave up, the unpredictability the paper's approach
/// eliminates by construction.
///
//===----------------------------------------------------------------------===//

#include "driver/Verifier.h"
#include "structures/Registry.h"

#include <cstdio>

using namespace ids;

int main() {
  printf("RQ3 scatter series: QF (Boogie-style) vs quantified "
         "(Dafny-style) verification time per method\n");
  printf("%-22s %-26s %12s %14s  %s\n", "Structure", "Method", "QF (s)",
         "Quant (s)", "Quant status");
  printf("---------------------------------------------------------------"
         "---------------------\n");
  double QfTotal = 0, QuantTotal = 0;
  unsigned QuantFailures = 0, N = 0;
  for (const structures::Benchmark &B : structures::allBenchmarks()) {
    DiagEngine D1, D2;
    driver::VerifyOptions QfOpts;
    QfOpts.CheckImpacts = false;
    QfOpts.VcSplits = 8;
    QfOpts.QueryTimeoutSeconds = 45;
    driver::VerifyOptions QuantOpts = QfOpts;
    QuantOpts.QuantifiedMode = true;
    driver::ModuleResult Qf = driver::verifySource(B.Source, QfOpts, D1);
    driver::ModuleResult Quant =
        driver::verifySource(B.Source, QuantOpts, D2);
    for (size_t I = 0; I < Qf.Procs.size() && I < Quant.Procs.size();
         ++I) {
      const driver::ProcResult &P1 = Qf.Procs[I];
      const driver::ProcResult &P2 = Quant.Procs[I];
      const char *St = P2.St == driver::Status::Verified ? "verified"
                       : P2.St == driver::Status::Unknown
                           ? "unknown (instantiation gave up)"
                           : "FAILED";
      printf("%-22s %-26s %12.2f %14.2f  %s\n", B.Table2Name,
             P1.Name.c_str(), P1.Seconds, P2.Seconds, St);
      QfTotal += P1.Seconds;
      QuantTotal += P2.Seconds;
      if (P2.St != driver::Status::Verified)
        ++QuantFailures;
      ++N;
    }
  }
  printf("\nTotals over %u methods: QF %.2fs, quantified %.2fs "
         "(%u quantified runs did not verify).\n",
         N, QfTotal, QuantTotal, QuantFailures);
  printf("Paper reference: the scatter plot of Section 5.3 shows the "
         "quantified (Dafny) encoding\nconsistently above the diagonal — "
         "decidable QF encodings are faster and predictable.\n");
  return 0;
}
