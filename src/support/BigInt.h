//===- support/BigInt.h - Arbitrary-precision integers ---------*- C++ -*-===//
//
// Part of the IDSVerify project, an open-source reproduction of
// "Predictable Verification using Intrinsic Definitions" (PLDI 2024).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arbitrary-precision signed integers.
///
/// The simplex core and the rank monadic maps manipulate exact rational
/// numbers whose numerators and denominators can grow without bound during
/// pivoting, so a fixed-width representation is not safe. This is a small,
/// portable sign-magnitude implementation (base 10^9 limbs) with the
/// operations the solver stack needs: ring arithmetic, Euclidean division,
/// gcd, comparisons, hashing, and decimal (de)serialisation.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SUPPORT_BIGINT_H
#define IDS_SUPPORT_BIGINT_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ids {

/// Arbitrary-precision signed integer (sign + base-10^9 magnitude).
///
/// Invariants: \c Limbs has no trailing zero limb, and zero is represented
/// with an empty \c Limbs and \c Negative == false.
class BigInt {
public:
  BigInt() = default;
  BigInt(int64_t Value);

  /// Parses a decimal string with optional leading '-'. Asserts on
  /// malformed input; use only on trusted/validated text.
  static BigInt fromString(const std::string &Text);

  bool isZero() const { return Limbs.empty(); }
  bool isNegative() const { return Negative; }
  bool isOne() const { return !Negative && Limbs.size() == 1 && Limbs[0] == 1; }

  /// Returns true and stores the value into \p Out when it fits in int64.
  bool toInt64(int64_t &Out) const;

  std::string toString() const;

  BigInt operator-() const;
  BigInt operator+(const BigInt &RHS) const;
  BigInt operator-(const BigInt &RHS) const;
  BigInt operator*(const BigInt &RHS) const;

  /// Truncated division (C semantics: rounds toward zero). \p RHS != 0.
  BigInt operator/(const BigInt &RHS) const;
  /// Remainder matching operator/ (same sign as the dividend).
  BigInt operator%(const BigInt &RHS) const;

  BigInt &operator+=(const BigInt &RHS) { return *this = *this + RHS; }
  BigInt &operator-=(const BigInt &RHS) { return *this = *this - RHS; }
  BigInt &operator*=(const BigInt &RHS) { return *this = *this * RHS; }

  bool operator==(const BigInt &RHS) const {
    return Negative == RHS.Negative && Limbs == RHS.Limbs;
  }
  bool operator!=(const BigInt &RHS) const { return !(*this == RHS); }
  bool operator<(const BigInt &RHS) const { return compare(RHS) < 0; }
  bool operator<=(const BigInt &RHS) const { return compare(RHS) <= 0; }
  bool operator>(const BigInt &RHS) const { return compare(RHS) > 0; }
  bool operator>=(const BigInt &RHS) const { return compare(RHS) >= 0; }

  /// Three-way comparison: negative, zero, or positive.
  int compare(const BigInt &RHS) const;

  BigInt abs() const;

  static BigInt gcd(BigInt A, BigInt B);

  size_t hash() const;

private:
  /// Compares magnitudes only.
  static int compareMagnitude(const std::vector<uint32_t> &A,
                              const std::vector<uint32_t> &B);
  static std::vector<uint32_t> addMagnitude(const std::vector<uint32_t> &A,
                                            const std::vector<uint32_t> &B);
  /// Requires |A| >= |B|.
  static std::vector<uint32_t> subMagnitude(const std::vector<uint32_t> &A,
                                            const std::vector<uint32_t> &B);
  static void trim(std::vector<uint32_t> &Limbs);
  /// Magnitude division: returns quotient, stores remainder in \p Rem.
  static std::vector<uint32_t> divModMagnitude(const std::vector<uint32_t> &A,
                                               const std::vector<uint32_t> &B,
                                               std::vector<uint32_t> &Rem);

  bool Negative = false;
  std::vector<uint32_t> Limbs; // little-endian, base 10^9
};

} // namespace ids

template <> struct std::hash<ids::BigInt> {
  size_t operator()(const ids::BigInt &Value) const { return Value.hash(); }
};

#endif // IDS_SUPPORT_BIGINT_H
