//===- driver/VerifierInstance.cpp - Long-lived verifier state -------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
//
// Verdict file format (version tag IDSVC v1), append-only:
//
//   IDSVC v1\n
//   P <lo-hex> <hi-hex> <V|F> <num-obligations> <desc-bytes> <cex-bytes>\n
//   <desc>\n<cex>\n
//
// Like the query cache, a torn tail record stops the load at the last
// complete record.
//
//===----------------------------------------------------------------------===//

#include "driver/VerifierInstance.h"

#include "support/Trace.h"
#include "vcgen/VcGen.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <filesystem>

using namespace ids;
using namespace ids::driver;

namespace {

double seconds(std::chrono::steady_clock::time_point Start) {
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

pipeline::Options pipelineOptions(const VerifyOptions &Opts) {
  pipeline::Options P;
  P.Simplify = Opts.SimplifyVc;
  P.Slice = Opts.SliceVc;
  P.Cache = Opts.CacheQueries;
  P.Incremental = Opts.Incremental;
  P.Jobs = Opts.Jobs;
  P.VcSplits = Opts.VcSplits;
  P.AllowQuantifiers = Opts.QuantifiedMode;
  P.CrossCheckQf = Opts.CrossCheckQf;
  P.MaxTheoryChecks = Opts.MaxTheoryChecks;
  P.QueryTimeoutSeconds = Opts.QueryTimeoutSeconds;
  P.LazyArrays = Opts.LazyArrays;
  P.ReduceDb = Opts.ReduceDb;
  P.TheoryProp = Opts.TheoryProp;
  return P;
}

Status statusOf(pipeline::Verdict V) {
  switch (V) {
  case pipeline::Verdict::Proved:
    return Status::Verified;
  case pipeline::Verdict::Failed:
    return Status::Failed;
  case pipeline::Verdict::Unknown:
    break;
  }
  return Status::Unknown;
}

uint64_t mix(uint64_t A, uint64_t B) {
  return A ^ (B + 0x9e3779b97f4a7c15ull + (A << 6) + (A >> 2));
}

} // namespace

VerifierInstance::~VerifierInstance() {
  std::lock_guard<std::mutex> Lock(VerdictMutex);
  if (VerdictAppend)
    fclose(VerdictAppend);
}

bool VerifierInstance::lookupVerdict(const ProcKey &K, ProcVerdict &Out) {
  std::lock_guard<std::mutex> Lock(VerdictMutex);
  auto It = Verdicts.find(K);
  if (It == Verdicts.end())
    return false;
  Out = It->second;
  return true;
}

void VerifierInstance::recordVerdict(const ProcKey &K, const ProcVerdict &V) {
  // Only definitive verdicts are recorded: an Unknown is a property of
  // the budget/timeout/deadline that produced it, never of the procedure.
  if (V.St == Status::Unknown)
    return;
  std::lock_guard<std::mutex> Lock(VerdictMutex);
  auto [It, Inserted] = Verdicts.emplace(K, V);
  if (!Inserted)
    return;
  ++InstStats.VerdictsRecorded;
  static trace::Counter &RecC = trace::counter("driver.verdicts_recorded");
  RecC.add();
  if (VerdictAppend)
    appendVerdictLocked(K, It->second);
}

void VerifierInstance::appendVerdictLocked(const ProcKey &K,
                                           const ProcVerdict &V) {
  // One buffer, one fwrite, one write(2) on the unbuffered O_APPEND
  // stream: concurrent --cache-dir processes append record-at-a-time
  // instead of interleaving the four-part record mid-line (the same
  // discipline as QueryCache::appendLocked).
  char Header[96];
  int Len = snprintf(Header, sizeof(Header),
                     "P %016" PRIx64 " %016" PRIx64 " %c %u %zu %zu\n", K.Lo,
                     K.Hi, V.St == Status::Verified ? 'V' : 'F',
                     V.NumObligations, V.FailedObligation.size(),
                     V.Counterexample.size());
  std::string Rec(Header, Len);
  Rec += V.FailedObligation;
  Rec += '\n';
  Rec += V.Counterexample;
  Rec += '\n';
  fwrite(Rec.data(), 1, Rec.size(), VerdictAppend);
}

size_t VerifierInstance::loadVerdictsLocked(std::FILE *F) {
  size_t Loaded = 0;
  char Tag;
  while (fscanf(F, " %c", &Tag) == 1) {
    if (Tag != 'P')
      break;
    ProcKey K;
    ProcVerdict V;
    char St;
    size_t DescLen = 0, CexLen = 0;
    if (fscanf(F, "%" SCNx64 " %" SCNx64 " %c %u %zu %zu", &K.Lo, &K.Hi, &St,
               &V.NumObligations, &DescLen, &CexLen) != 6)
      break;
    if (St != 'V' && St != 'F')
      break;
    V.St = St == 'V' ? Status::Verified : Status::Failed;
    if (fgetc(F) != '\n')
      break;
    V.FailedObligation.resize(DescLen);
    if (DescLen > 0 &&
        fread(&V.FailedObligation[0], 1, DescLen, F) != DescLen)
      break;
    if (fgetc(F) != '\n')
      break;
    V.Counterexample.resize(CexLen);
    if (CexLen > 0 && fread(&V.Counterexample[0], 1, CexLen, F) != CexLen)
      break;
    Verdicts[K] = std::move(V);
    ++Loaded;
  }
  return Loaded;
}

bool VerifierInstance::attachCacheDir(const std::string &Dir,
                                      std::string &Error) {
  if (!Cache.attachDir(Dir, Error))
    return false;
  std::lock_guard<std::mutex> Lock(VerdictMutex);
  if (VerdictAppend) {
    Error = "verdict cache already attached to a directory";
    return false;
  }
  std::string Path = Dir + "/" + VerdictFileName;
  bool Fresh = true;
  if (std::FILE *In = fopen(Path.c_str(), "rb")) {
    char Header[32] = {0};
    if (fgets(Header, sizeof(Header), In) &&
        std::string(Header) == std::string(VerdictHeader) + "\n") {
      InstStats.VerdictsLoadedFromDisk = loadVerdictsLocked(In);
      Fresh = false;
    }
    fclose(In);
  }
  VerdictAppend = fopen(Path.c_str(), Fresh ? "wb" : "ab");
  if (!VerdictAppend) {
    Error = "cannot open verdict file '" + Path + "' for writing";
    return false;
  }
  // Unbuffered: each appendVerdictLocked record is a single write(2).
  setvbuf(VerdictAppend, nullptr, _IONBF, 0);
  if (Fresh)
    fprintf(VerdictAppend, "%s\n", VerdictHeader);
  return true;
}

std::string VerifierInstance::cacheSummary() const {
  pipeline::QueryCache::DiskStats QS = Cache.diskStats();
  char Buf[256];
  snprintf(Buf, sizeof(Buf),
           "cache summary: queries %zu loaded, %llu hits (%llu disk), "
           "%llu appended; verdicts %zu loaded, %llu proc hits, "
           "%llu impact hits, %llu recorded",
           QS.LoadedFromDisk, (unsigned long long)QS.Hits,
           (unsigned long long)QS.DiskHits, (unsigned long long)QS.Appended,
           InstStats.VerdictsLoadedFromDisk,
           (unsigned long long)InstStats.ProcsCached,
           (unsigned long long)InstStats.ImpactsCached,
           (unsigned long long)InstStats.VerdictsRecorded);
  return Buf;
}

ModuleResult VerifierInstance::verify(const std::string &Source,
                                      const VerifyOptions &Opts,
                                      DiagEngine &Diags) {
  ++InstStats.Requests;
  static trace::Counter &ReqC = trace::counter("driver.requests");
  ReqC.add();
  trace::ScopedSpan ReqSp("driver.request");
  ModuleResult Result;
  std::unique_ptr<lang::Module> M = frontEnd(Source, Diags);
  if (!M)
    return Result;
  Result.FrontEndOk = true;
  Result.StructureName = M->Structure.Name;
  Result.LcSize = lang::localConditionSize(M->Structure);
  if (ReqSp.active())
    ReqSp.arg("structure", Result.StructureName);

  const auto ReqStart = std::chrono::steady_clock::now();
  const pipeline::Options POptsBase = pipelineOptions(Opts);

  // Incremental re-verification key: the ordered fold of the obligations'
  // structural query hashes. Two runs produce the same key iff vcgen
  // emitted structurally identical obligations in the same order — and
  // then the pipeline verdict is a pure function of them, so a recorded
  // definitive verdict can be replayed. Options that change the VC
  // (quantified mode, frame checks) change the hashes by construction.
  auto keyOf = [](smt::TermManager &TM,
                  const std::vector<vcgen::Obligation> &Obls) {
    ProcKey K;
    K.Lo = mix(0x4944535650524f43ull, Obls.size()); // "IDSVPROC"
    K.Hi = mix(0x4f424c4b45590a01ull, Obls.size()); // "OBLKEY"
    for (const vcgen::Obligation &O : Obls) {
      smt::TermRef Q = TM.mkAnd(O.Guard, TM.mkNot(O.Claim));
      K.Lo = mix(K.Lo, Q->getStructHashLo());
      K.Hi = mix(K.Hi, Q->getStructHashHi());
    }
    return K;
  };

  // Per-request deadline: shrink each solve's per-query timeout to the
  // time remaining; once past the deadline, report Unknown without
  // solving. Returns false when the deadline has expired.
  auto underDeadline = [&](pipeline::Options &P) {
    if (Opts.TotalTimeoutSeconds <= 0)
      return true;
    double Rem = Opts.TotalTimeoutSeconds - seconds(ReqStart);
    if (Rem <= 0)
      return false;
    P.QueryTimeoutSeconds = P.QueryTimeoutSeconds > 0
                                ? std::min(P.QueryTimeoutSeconds, Rem)
                                : Rem;
    return true;
  };

  // Impact-set correctness (Appendix C; Section 5.3 reports this <3s per
  // structure).
  if (Opts.CheckImpacts) {
    auto Start = std::chrono::steady_clock::now();
    for (const lang::ImpactDecl &I : M->Structure.Impacts) {
      ImpactResult IR;
      IR.Field = I.Field;
      IR.Group = I.Group;
      trace::ScopedSpan ISp("driver.impact");
      auto IStart = std::chrono::steady_clock::now();
      smt::TermManager TM;
      vcgen::ProcVc Vc = vcgen::generateImpactVc(TM, *M, I);
      ProcKey K = keyOf(TM, Vc.Obligations);
      ProcVerdict PV;
      pipeline::Options POpts = POptsBase;
      POpts.TraceLabel = "impact:" + I.Field + "[" + I.Group + "]";
      if (ISp.active())
        ISp.arg("name", POpts.TraceLabel);
      if (Opts.ReuseProcVerdicts && lookupVerdict(K, PV)) {
        IR.Ok = PV.St == Status::Verified;
        IR.Cached = true;
        ++InstStats.ImpactsCached;
        trace::counter("driver.impacts_cached").add();
      } else if (!underDeadline(POpts)) {
        IR.Ok = false;
        IR.TimedOut = true;
      } else {
        pipeline::Result PR =
            pipeline::solveObligations(TM, Vc.Obligations, POpts, &Cache);
        IR.Ok = PR.V == pipeline::Verdict::Proved;
        IR.Pipeline = PR.St;
        ++InstStats.ImpactsSolved;
        trace::counter("driver.impacts_solved").add();
        if (PR.V != pipeline::Verdict::Unknown) {
          PV.St = statusOf(PR.V);
          PV.NumObligations = static_cast<unsigned>(Vc.Obligations.size());
          recordVerdict(K, PV);
        }
      }
      IR.Seconds = seconds(IStart);
      Result.Impacts.push_back(std::move(IR));
    }
    Result.ImpactSeconds = seconds(Start);
  }

  for (const lang::ProcDecl &P : M->Procs) {
    if (!Opts.OnlyProc.empty() && P.Name != Opts.OnlyProc)
      continue;
    ProcResult PR;
    PR.Name = P.Name;
    PR.Metrics = lang::computeMetrics(M->Structure, P);
    trace::ScopedSpan PSp("driver.proc");
    if (PSp.active())
      PSp.arg("name", P.Name);
    auto Start = std::chrono::steady_clock::now();
    smt::TermManager TM;
    vcgen::VcOptions VOpts;
    VOpts.QuantifiedMode = Opts.QuantifiedMode;
    VOpts.CheckFrames = Opts.CheckFrames;
    vcgen::ProcVc Vc = vcgen::generateVc(TM, *M, P, VOpts);
    PR.NumObligations = static_cast<unsigned>(Vc.Obligations.size());
    ProcKey K = keyOf(TM, Vc.Obligations);
    ProcVerdict PV;
    pipeline::Options POpts = POptsBase;
    POpts.TraceLabel = P.Name;
    if (Opts.ReuseProcVerdicts && lookupVerdict(K, PV)) {
      PR.St = PV.St;
      PR.FailedObligation = PV.FailedObligation;
      PR.Counterexample = PV.Counterexample;
      PR.Cached = true;
      ++InstStats.ProcsCached;
      trace::counter("driver.procs_cached").add();
    } else if (!underDeadline(POpts)) {
      PR.St = Status::Unknown;
      PR.FailedObligation =
          "request wall-clock budget exhausted before this procedure ran";
    } else {
      pipeline::Result R =
          pipeline::solveObligations(TM, Vc.Obligations, POpts, &Cache);
      PR.St = statusOf(R.V);
      PR.FailedObligation = R.FailedDescription;
      PR.Counterexample = R.Counterexample;
      PR.Pipeline = R.St;
      ++InstStats.ProcsSolved;
      trace::counter("driver.procs_solved").add();
      if (PR.St != Status::Unknown) {
        PV.St = PR.St;
        PV.NumObligations = PR.NumObligations;
        PV.FailedObligation = PR.FailedObligation;
        PV.Counterexample = PR.Counterexample;
        recordVerdict(K, PV);
      }
    }
    PR.Seconds = seconds(Start);
    if (PSp.active()) {
      PSp.arg("status", PR.St == Status::Verified ? "verified"
                        : PR.St == Status::Failed ? "failed"
                                                  : "unknown");
      if (PR.Cached)
        PSp.arg("cached", 1.0);
    }
    Result.Procs.push_back(std::move(PR));
  }
  return Result;
}
