# Verifies the golden-file suites cover every embedded Table 2 benchmark:
# each name printed by `ids-verify --list` must have a golden file in
# EVERY golden directory passed (GOLDEN_DIRS, separated by `|` or `;`,
# or the single GOLDEN_DIR), and each golden file must correspond to a
# listed benchmark — a newly registered benchmark without goldens in all
# four e2e modes (default, nopipe, noincr, eagerarr) fails this test.
#   cmake -DIDS_VERIFY=<exe> "-DGOLDEN_DIRS=<dir>[|<dir>...]" -P CheckCoverage.cmake

if(NOT DEFINED GOLDEN_DIRS AND DEFINED GOLDEN_DIR)
  set(GOLDEN_DIRS "${GOLDEN_DIR}")
endif()
if(NOT DEFINED IDS_VERIFY OR NOT DEFINED GOLDEN_DIRS)
  message(FATAL_ERROR "usage: cmake -DIDS_VERIFY=... -DGOLDEN_DIRS=... -P CheckCoverage.cmake")
endif()
# `|` avoids the add_test/-D semicolon-escaping maze; accept both.
string(REPLACE "|" ";" GOLDEN_DIRS "${GOLDEN_DIRS}")
string(REPLACE "\\;" ";" GOLDEN_DIRS "${GOLDEN_DIRS}")

execute_process(
  COMMAND "${IDS_VERIFY}" --list
  OUTPUT_VARIABLE ListOut
  RESULT_VARIABLE ExitCode)
if(NOT ExitCode EQUAL 0)
  message(FATAL_ERROR "ids-verify --list failed with exit code ${ExitCode}")
endif()

# Benchmark lines lead with the registry key at column 0; the metadata
# lines below each entry are indented.
string(REGEX MATCHALL "[^\n]+" Lines "${ListOut}")
set(Listed "")
foreach(Line ${Lines})
  if(Line MATCHES "^[^ ]")
    string(REGEX MATCH "^[^ ]+" Name "${Line}")
    if(NOT Name STREQUAL "")
      list(APPEND Listed "${Name}")
    endif()
  endif()
endforeach()

if(Listed STREQUAL "")
  message(FATAL_ERROR "ids-verify --list printed no benchmarks")
endif()

foreach(Dir ${GOLDEN_DIRS})
  foreach(Name ${Listed})
    if(NOT EXISTS "${Dir}/${Name}.golden")
      message(SEND_ERROR "benchmark '${Name}' has no golden file "
              "(expected ${Dir}/${Name}.golden)")
    endif()
  endforeach()

  file(GLOB Goldens "${Dir}/*.golden")
  foreach(Golden ${Goldens})
    get_filename_component(Name "${Golden}" NAME_WE)
    list(FIND Listed "${Name}" Idx)
    if(Idx EQUAL -1)
      message(SEND_ERROR "stale golden file '${Golden}': no benchmark "
              "named '${Name}' in --list output")
    endif()
  endforeach()
endforeach()
