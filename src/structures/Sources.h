//===- structures/Sources.h - Benchmark source declarations ----*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal declarations of the embedded benchmark sources, one per
/// translation unit in this directory.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_STRUCTURES_SOURCES_H
#define IDS_STRUCTURES_SOURCES_H

namespace ids {
namespace structures {

extern const char *SinglyLinkedListSource;
extern const char *SortedListSource;
extern const char *SortedListMinMaxSource;
extern const char *CircularListSource;
extern const char *BstSource;
extern const char *TreapSource;
extern const char *AvlSource;
extern const char *RedBlackTreeSource;
extern const char *BstScaffoldSource;
extern const char *SchedulerQueueSource;

} // namespace structures
} // namespace ids

#endif // IDS_STRUCTURES_SOURCES_H
