//===- lang/TypeCheck.cpp - Name resolution and type checking --------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "lang/TypeCheck.h"

#include <map>
#include <vector>

using namespace ids;
using namespace ids::lang;

std::string Type::toString() const {
  switch (Kind) {
  case TypeKind::Int:
    return "int";
  case TypeKind::Rat:
    return "rat";
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Loc:
    return "Loc";
  case TypeKind::Set:
    return "set<" + Type{Elem, TypeKind::Int}.toString() + ">";
  }
  return "<bad-type>";
}

namespace {
/// Context flags describing where an expression occurs.
struct ExprCtx {
  bool AllowOld = false;
  bool AllowFresh = false;
};

class Checker {
public:
  Checker(Module &M, DiagEngine &Diags) : M(M), Diags(Diags) {}

  bool run();

private:
  void error(SourceLoc Loc, const std::string &Msg) {
    Diags.error(Loc, Msg);
    Ok = false;
  }

  // Scope handling.
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  bool declare(const std::string &Name, Type Ty, SourceLoc Loc) {
    if (lookup(Name)) {
      error(Loc, "redeclaration of '" + Name + "'");
      return false;
    }
    Scopes.back()[Name] = Ty;
    return true;
  }
  const Type *lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto F = It->find(Name);
      if (F != It->end())
        return &F->second;
    }
    return nullptr;
  }

  /// Checks \p E; returns false on error. \p Expected (when non-null)
  /// resolves polymorphic literals ({} and integer literals in rat
  /// positions).
  bool checkExpr(Expr *E, const ExprCtx &Ctx, const Type *Expected = nullptr);
  bool checkBinary(Expr *E, const ExprCtx &Ctx, const Type *Expected);
  /// Coerces a literal to \p Target when legal; returns success.
  bool coerce(Expr *E, const Type &Target);
  bool checkStmt(Stmt *S);
  bool checkProc(ProcDecl &P);
  bool checkStructure();

  Module &M;
  DiagEngine &Diags;
  std::vector<std::map<std::string, Type>> Scopes;
  ProcDecl *CurrentProc = nullptr;
  bool Ok = true;
};
} // namespace

bool Checker::coerce(Expr *E, const Type &Target) {
  if (E->Ty == Target)
    return true;
  if (E->Kind == ExprKind::EmptySetLit && Target.isSet()) {
    E->Ty = Target;
    return true;
  }
  if (E->Kind == ExprKind::IntLit && Target.Kind == TypeKind::Rat) {
    E->Ty = Target;
    return true;
  }
  // Unary minus over a coercible literal.
  if (E->Kind == ExprKind::Unary && E->UOp == UnOp::Neg &&
      Target.Kind == TypeKind::Rat && E->arg(0)->Kind == ExprKind::IntLit) {
    E->arg(0)->Ty = Target;
    E->Ty = Target;
    return true;
  }
  return false;
}

bool Checker::checkExpr(Expr *E, const ExprCtx &Ctx, const Type *Expected) {
  switch (E->Kind) {
  case ExprKind::IntLit:
    E->Ty = Expected && Expected->Kind == TypeKind::Rat ? Type::ratTy()
                                                        : Type::intTy();
    return true;
  case ExprKind::BoolLit:
    E->Ty = Type::boolTy();
    return true;
  case ExprKind::NilLit:
    E->Ty = Type::locTy();
    return true;
  case ExprKind::EmptySetLit:
    if (Expected && Expected->isSet()) {
      E->Ty = *Expected;
      return true;
    }
    error(E->Loc, "cannot infer the element type of '{}' here");
    return false;
  case ExprKind::VarRef: {
    const Type *T = lookup(E->Name);
    if (!T) {
      error(E->Loc, "unknown variable '" + E->Name + "'");
      return false;
    }
    E->Ty = *T;
    return true;
  }
  case ExprKind::FieldRead: {
    if (!checkExpr(E->arg(0), Ctx))
      return false;
    if (E->arg(0)->Ty.Kind != TypeKind::Loc) {
      error(E->Loc, "field access on a non-location value");
      return false;
    }
    const FieldDecl *F = M.Structure.findField(E->Name);
    if (!F) {
      error(E->Loc, "unknown field '" + E->Name + "'");
      return false;
    }
    E->Ty = F->Ty;
    return true;
  }
  case ExprKind::Old:
    if (!Ctx.AllowOld) {
      error(E->Loc, "old(...) is only allowed in postconditions, loop "
                    "invariants and impact sets");
      return false;
    }
    if (!checkExpr(E->arg(0), Ctx, Expected))
      return false;
    E->Ty = E->arg(0)->Ty;
    return true;
  case ExprKind::BrSet: {
    if (!M.Structure.findLocal(E->Name)) {
      error(E->Loc, "unknown local-condition group '" + E->Name + "'");
      return false;
    }
    E->Ty = Type::setTy(TypeKind::Loc);
    return true;
  }
  case ExprKind::AllocSet:
    E->Ty = Type::setTy(TypeKind::Loc);
    return true;
  case ExprKind::Unary: {
    if (!checkExpr(E->arg(0), Ctx, Expected))
      return false;
    if (E->UOp == UnOp::Not) {
      if (E->arg(0)->Ty.Kind != TypeKind::Bool) {
        error(E->Loc, "'!' expects a boolean operand");
        return false;
      }
      E->Ty = Type::boolTy();
      return true;
    }
    if (!E->arg(0)->Ty.isNumeric()) {
      error(E->Loc, "unary '-' expects a numeric operand");
      return false;
    }
    E->Ty = E->arg(0)->Ty;
    return true;
  }
  case ExprKind::Binary:
    return checkBinary(E, Ctx, Expected);
  case ExprKind::IteExpr: {
    if (!checkExpr(E->arg(0), Ctx))
      return false;
    if (E->arg(0)->Ty.Kind != TypeKind::Bool) {
      error(E->Loc, "ite condition must be boolean");
      return false;
    }
    if (!checkExpr(E->arg(1), Ctx, Expected))
      return false;
    if (!checkExpr(E->arg(2), Ctx, Expected))
      return false;
    if (E->arg(1)->Ty != E->arg(2)->Ty &&
        !coerce(E->arg(2), E->arg(1)->Ty) &&
        !coerce(E->arg(1), E->arg(2)->Ty)) {
      error(E->Loc, "ite branches have different types");
      return false;
    }
    E->Ty = E->arg(1)->Ty;
    return true;
  }
  case ExprKind::SetLit: {
    Type ElemTy;
    bool First = true;
    for (Expr *Elem : E->Args) {
      const Type *ElemExpected = nullptr;
      Type Scratch;
      if (Expected && Expected->isSet()) {
        Scratch = Type{Expected->Elem, TypeKind::Int};
        ElemExpected = &Scratch;
      }
      if (!checkExpr(Elem, Ctx, ElemExpected))
        return false;
      if (Elem->Ty.isSet()) {
        error(Elem->Loc, "sets of sets are not supported");
        return false;
      }
      if (First) {
        ElemTy = Elem->Ty;
        First = false;
      } else if (Elem->Ty != ElemTy && !coerce(Elem, ElemTy)) {
        error(Elem->Loc, "set literal elements have different types");
        return false;
      }
    }
    E->Ty = Type::setTy(ElemTy.Kind);
    return true;
  }
  case ExprKind::Fresh:
    if (!Ctx.AllowFresh) {
      error(E->Loc, "fresh(...) is only allowed in postconditions");
      return false;
    }
    if (!checkExpr(E->arg(0), Ctx))
      return false;
    if (E->arg(0)->Ty != Type::setTy(TypeKind::Loc)) {
      error(E->Loc, "fresh(...) expects a set<Loc>");
      return false;
    }
    E->Ty = Type::boolTy();
    return true;
  case ExprKind::LcApp: {
    if (!M.Structure.findLocal(E->Name)) {
      error(E->Loc, "unknown local-condition group '" + E->Name + "'");
      return false;
    }
    if (!checkExpr(E->arg(0), Ctx))
      return false;
    if (E->arg(0)->Ty.Kind != TypeKind::Loc) {
      error(E->Loc, "lc(...) expects a location argument");
      return false;
    }
    E->Ty = Type::boolTy();
    return true;
  }
  }
  return false;
}

bool Checker::checkBinary(Expr *E, const ExprCtx &Ctx, const Type *Expected) {
  Expr *L = E->arg(0), *R = E->arg(1);
  switch (E->BOp) {
  case BinOp::And:
  case BinOp::Or:
  case BinOp::Implies:
  case BinOp::Iff: {
    if (!checkExpr(L, Ctx) || !checkExpr(R, Ctx))
      return false;
    if (L->Ty.Kind != TypeKind::Bool || R->Ty.Kind != TypeKind::Bool) {
      error(E->Loc, "boolean connective over non-boolean operands");
      return false;
    }
    E->Ty = Type::boolTy();
    return true;
  }
  case BinOp::Add:
  case BinOp::Sub: {
    if (!checkExpr(L, Ctx, Expected) || !checkExpr(R, Ctx, Expected))
      return false;
    if (!L->Ty.isNumeric() || (L->Ty != R->Ty && !coerce(R, L->Ty) &&
                               !coerce(L, R->Ty))) {
      error(E->Loc, "'+'/'-' expect matching numeric operands");
      return false;
    }
    E->Ty = L->Ty;
    return true;
  }
  case BinOp::Mul: {
    if (!checkExpr(L, Ctx, Expected) || !checkExpr(R, Ctx, Expected))
      return false;
    bool LConst = L->Kind == ExprKind::IntLit ||
                  (L->Kind == ExprKind::Unary && L->UOp == UnOp::Neg &&
                   L->arg(0)->Kind == ExprKind::IntLit);
    bool RConst = R->Kind == ExprKind::IntLit ||
                  (R->Kind == ExprKind::Unary && R->UOp == UnOp::Neg &&
                   R->arg(0)->Kind == ExprKind::IntLit);
    if (!LConst && !RConst) {
      error(E->Loc, "multiplication must have a literal operand (the "
                    "logic is linear; see footnote 1 of the paper)");
      return false;
    }
    if (!L->Ty.isNumeric() || (L->Ty != R->Ty && !coerce(R, L->Ty) &&
                               !coerce(L, R->Ty))) {
      error(E->Loc, "'*' expects matching numeric operands");
      return false;
    }
    E->Ty = L->Ty;
    return true;
  }
  case BinOp::Div: {
    Type Rat = Type::ratTy();
    if (!checkExpr(L, Ctx, &Rat) || !checkExpr(R, Ctx, &Rat))
      return false;
    bool RConst = R->Kind == ExprKind::IntLit && !R->IntVal.isZero();
    if (!RConst) {
      error(E->Loc, "division only by a non-zero integer literal");
      return false;
    }
    if (L->Ty.Kind != TypeKind::Rat && !coerce(L, Rat)) {
      error(E->Loc, "division is only defined on rat operands");
      return false;
    }
    E->Ty = Type::ratTy();
    return true;
  }
  case BinOp::Union:
  case BinOp::Isect:
  case BinOp::SetMinus:
  case BinOp::DuPlus: {
    if (E->BOp == BinOp::DuPlus) {
      error(E->Loc,
            "'duplus' may only appear as the right-hand side of '=='");
      return false;
    }
    if (!checkExpr(L, Ctx, Expected))
      return false;
    const Type *RExp = L->Ty.isSet() ? &L->Ty : Expected;
    if (!checkExpr(R, Ctx, RExp))
      return false;
    if (!L->Ty.isSet() && !coerce(L, R->Ty)) {
      error(E->Loc, "set operator over non-set operands");
      return false;
    }
    if (L->Ty != R->Ty && !coerce(R, L->Ty)) {
      error(E->Loc, "set operator over mismatched element types");
      return false;
    }
    E->Ty = L->Ty;
    return true;
  }
  case BinOp::In: {
    if (!checkExpr(L, Ctx))
      return false;
    Type SetExp = Type::setTy(L->Ty.Kind);
    if (!checkExpr(R, Ctx, &SetExp))
      return false;
    if (!R->Ty.isSet() || Type{R->Ty.Elem, TypeKind::Int} != L->Ty) {
      error(E->Loc, "'in' expects an element and a matching set");
      return false;
    }
    E->Ty = Type::boolTy();
    return true;
  }
  case BinOp::Subset: {
    if (!checkExpr(L, Ctx) || !checkExpr(R, Ctx, &L->Ty))
      return false;
    if (!L->Ty.isSet() || L->Ty != R->Ty) {
      error(E->Loc, "'subsetof' expects two matching sets");
      return false;
    }
    E->Ty = Type::boolTy();
    return true;
  }
  case BinOp::Eq:
  case BinOp::Ne: {
    // duplus allowed as direct RHS of ==: `a == b duplus c`.
    if (R->Kind == ExprKind::Binary && R->BOp == BinOp::DuPlus) {
      if (E->BOp != BinOp::Eq) {
        error(E->Loc, "'duplus' may only appear under '=='");
        return false;
      }
      if (!checkExpr(L, Ctx))
        return false;
      if (!L->Ty.isSet()) {
        error(E->Loc, "disjoint union requires set operands");
        return false;
      }
      if (!checkExpr(R->arg(0), Ctx, &L->Ty) ||
          !checkExpr(R->arg(1), Ctx, &L->Ty))
        return false;
      if (R->arg(0)->Ty != L->Ty || R->arg(1)->Ty != L->Ty) {
        error(E->Loc, "disjoint union over mismatched sets");
        return false;
      }
      R->Ty = L->Ty;
      E->Ty = Type::boolTy();
      return true;
    }
    if (!checkExpr(L, Ctx))
      return false;
    if (!checkExpr(R, Ctx, &L->Ty))
      return false;
    if (L->Ty != R->Ty && !coerce(R, L->Ty) && !coerce(L, R->Ty)) {
      error(E->Loc, "equality between different types (" +
                        L->Ty.toString() + " vs " + R->Ty.toString() + ")");
      return false;
    }
    E->Ty = Type::boolTy();
    return true;
  }
  case BinOp::Lt:
  case BinOp::Le:
  case BinOp::Gt:
  case BinOp::Ge: {
    if (!checkExpr(L, Ctx) || !checkExpr(R, Ctx, &L->Ty))
      return false;
    if (!L->Ty.isNumeric() || (L->Ty != R->Ty && !coerce(R, L->Ty) &&
                               !coerce(L, R->Ty))) {
      error(E->Loc, "comparison over non-matching numeric operands");
      return false;
    }
    E->Ty = Type::boolTy();
    return true;
  }
  }
  return false;
}

bool Checker::checkStmt(Stmt *S) {
  ExprCtx Body; // no old/fresh in executable positions
  ExprCtx InvCtx;
  InvCtx.AllowOld = true;
  switch (S->Kind) {
  case StmtKind::VarDecl: {
    if (S->Init && !checkExpr(S->Init, Body, &S->VarType))
      return false;
    if (S->Init && S->Init->Ty != S->VarType && !coerce(S->Init, S->VarType)) {
      error(S->Loc, "initializer type mismatch for '" + S->VarName + "'");
      return false;
    }
    return declare(S->VarName, S->VarType, S->Loc);
  }
  case StmtKind::Assign: {
    const Type *T = lookup(S->VarName);
    if (!T) {
      error(S->Loc, "assignment to unknown variable '" + S->VarName + "'");
      return false;
    }
    if (!checkExpr(S->Init, Body, T))
      return false;
    if (S->Init->Ty != *T && !coerce(S->Init, *T)) {
      error(S->Loc, "assignment type mismatch for '" + S->VarName + "'");
      return false;
    }
    return true;
  }
  case StmtKind::Mut: {
    if (!checkExpr(S->Target, Body))
      return false;
    const FieldDecl *F = M.Structure.findField(S->Target->Name);
    assert(F && "checked by checkExpr");
    if (!checkExpr(S->Init, Body, &F->Ty))
      return false;
    if (S->Init->Ty != F->Ty && !coerce(S->Init, F->Ty)) {
      error(S->Loc, "Mut value type mismatch for field '" + F->Name + "'");
      return false;
    }
    return true;
  }
  case StmtKind::NewObj: {
    const Type *T = lookup(S->VarName);
    if (!T || T->Kind != TypeKind::Loc) {
      error(S->Loc, "NewObj expects a declared Loc variable");
      return false;
    }
    return true;
  }
  case StmtKind::AssertLcRemove:
  case StmtKind::InferLc: {
    if (!M.Structure.findLocal(S->Group)) {
      error(S->Loc, "unknown local-condition group '" + S->Group + "'");
      return false;
    }
    if (!checkExpr(S->Cond, Body))
      return false;
    if (S->Cond->Ty.Kind != TypeKind::Loc) {
      error(S->Loc, "macro expects a location argument");
      return false;
    }
    return true;
  }
  case StmtKind::Assert:
  case StmtKind::Assume: {
    if (!checkExpr(S->Cond, InvCtx))
      return false;
    if (S->Cond->Ty.Kind != TypeKind::Bool) {
      error(S->Loc, "assert/assume expects a boolean");
      return false;
    }
    return true;
  }
  case StmtKind::If: {
    if (!checkExpr(S->Cond, Body))
      return false;
    if (S->Cond->Ty.Kind != TypeKind::Bool) {
      error(S->Loc, "if condition must be boolean");
      return false;
    }
    pushScope();
    for (Stmt *Sub : S->Body)
      if (!checkStmt(Sub))
        return false;
    popScope();
    pushScope();
    for (Stmt *Sub : S->ElseBody)
      if (!checkStmt(Sub))
        return false;
    popScope();
    return true;
  }
  case StmtKind::While: {
    if (!checkExpr(S->Cond, Body))
      return false;
    if (S->Cond->Ty.Kind != TypeKind::Bool) {
      error(S->Loc, "while condition must be boolean");
      return false;
    }
    for (Expr *Inv : S->Invariants) {
      if (!checkExpr(Inv, InvCtx))
        return false;
      if (Inv->Ty.Kind != TypeKind::Bool) {
        error(Inv->Loc, "invariant must be boolean");
        return false;
      }
    }
    if (S->Decreases) {
      if (!checkExpr(S->Decreases, Body))
        return false;
      if (S->Decreases->Ty.Kind != TypeKind::Int) {
        error(S->Decreases->Loc, "decreases must be an int expression");
        return false;
      }
    }
    pushScope();
    for (Stmt *Sub : S->Body)
      if (!checkStmt(Sub))
        return false;
    popScope();
    return true;
  }
  case StmtKind::Call: {
    const ProcDecl *Callee = M.findProc(S->Callee);
    if (!Callee) {
      error(S->Loc, "call to unknown procedure '" + S->Callee + "'");
      return false;
    }
    if (S->CallArgs.size() != Callee->Params.size()) {
      error(S->Loc, "wrong number of arguments to '" + S->Callee + "'");
      return false;
    }
    for (size_t I = 0; I < S->CallArgs.size(); ++I) {
      if (!checkExpr(S->CallArgs[I], Body, &Callee->Params[I].Ty))
        return false;
      if (S->CallArgs[I]->Ty != Callee->Params[I].Ty &&
          !coerce(S->CallArgs[I], Callee->Params[I].Ty)) {
        error(S->CallArgs[I]->Loc, "argument type mismatch in call to '" +
                                       S->Callee + "'");
        return false;
      }
    }
    if (S->CallLhs.size() != Callee->Returns.size()) {
      error(S->Loc, "wrong number of call results for '" + S->Callee + "'");
      return false;
    }
    for (size_t I = 0; I < S->CallLhs.size(); ++I) {
      const Type *T = lookup(S->CallLhs[I]);
      if (!T) {
        error(S->Loc, "unknown variable '" + S->CallLhs[I] + "'");
        return false;
      }
      if (*T != Callee->Returns[I].Ty) {
        error(S->Loc, "call result type mismatch for '" + S->CallLhs[I] +
                          "'");
        return false;
      }
    }
    return true;
  }
  case StmtKind::Return:
    return true;
  case StmtKind::Block:
  case StmtKind::GhostBlock: {
    pushScope();
    for (Stmt *Sub : S->Body)
      if (!checkStmt(Sub))
        return false;
    popScope();
    return true;
  }
  }
  return false;
}

bool Checker::checkStructure() {
  StructureDecl &S = M.Structure;
  // No duplicate fields/groups.
  for (size_t I = 0; I < S.Fields.size(); ++I)
    for (size_t J = I + 1; J < S.Fields.size(); ++J)
      if (S.Fields[I].Name == S.Fields[J].Name)
        error(S.Fields[J].Loc, "duplicate field '" + S.Fields[J].Name + "'");
  for (size_t I = 0; I < S.Locals.size(); ++I)
    for (size_t J = I + 1; J < S.Locals.size(); ++J)
      if (S.Locals[I].Name == S.Locals[J].Name)
        error(S.Locals[J].Loc,
              "duplicate local-condition group '" + S.Locals[J].Name + "'");

  ExprCtx Plain;
  for (LocalCondDecl &L : S.Locals) {
    pushScope();
    declare(L.Param, Type::locTy(), L.Loc);
    if (checkExpr(L.Body, Plain) && L.Body->Ty.Kind != TypeKind::Bool)
      error(L.Loc, "local condition must be boolean");
    popScope();
  }
  if (S.CorrelationBody) {
    pushScope();
    declare(S.CorrelationParam, Type::locTy(), S.Loc);
    if (checkExpr(S.CorrelationBody, Plain) &&
        S.CorrelationBody->Ty.Kind != TypeKind::Bool)
      error(S.Loc, "correlation formula must be boolean");
    popScope();
  }
  // Overlapping field claims: at most one impact set per (field, group)
  // pair — two declarations would race to define the broken-set growth of
  // one mutation (and `impact f [g, g]` is a typo).
  for (size_t I = 0; I < S.Impacts.size(); ++I)
    for (size_t J = I + 1; J < S.Impacts.size(); ++J)
      if (S.Impacts[I].Field == S.Impacts[J].Field &&
          S.Impacts[I].Group == S.Impacts[J].Group)
        error(S.Impacts[J].Loc, "duplicate impact set for field '" +
                                    S.Impacts[J].Field + "' and group '" +
                                    S.Impacts[J].Group + "'");

  ExprCtx ImpactCtx;
  ImpactCtx.AllowOld = true;
  for (ImpactDecl &I : S.Impacts) {
    if (!S.findField(I.Field)) {
      error(I.Loc, "impact set for unknown field '" + I.Field + "'");
      continue;
    }
    if (!S.findLocal(I.Group)) {
      error(I.Loc, "impact set for unknown group '" + I.Group + "'");
      continue;
    }
    pushScope();
    declare(I.Param, Type::locTy(), I.Loc);
    if (I.Precondition && checkExpr(I.Precondition, Plain) &&
        I.Precondition->Ty.Kind != TypeKind::Bool)
      error(I.Loc, "impact precondition must be boolean");
    for (Expr *T : I.Terms) {
      if (checkExpr(T, ImpactCtx) && T->Ty.Kind != TypeKind::Loc)
        error(T->Loc, "impact terms must denote locations");
    }
    popScope();
  }
  return Ok;
}

bool Checker::checkProc(ProcDecl &P) {
  CurrentProc = &P;
  pushScope();
  for (const ParamDecl &Param : P.Params)
    declare(Param.Name, Param.Ty, P.Loc);
  for (const ParamDecl &Ret : P.Returns)
    declare(Ret.Name, Ret.Ty, P.Loc);

  ExprCtx PreCtx;
  for (Expr *E : P.Requires) {
    if (checkExpr(E, PreCtx) && E->Ty.Kind != TypeKind::Bool)
      error(E->Loc, "requires clause must be boolean");
  }
  ExprCtx PostCtx;
  PostCtx.AllowOld = true;
  PostCtx.AllowFresh = true;
  for (Expr *E : P.Ensures) {
    if (checkExpr(E, PostCtx) && E->Ty.Kind != TypeKind::Bool)
      error(E->Loc, "ensures clause must be boolean");
  }
  Type LocSet = Type::setTy(TypeKind::Loc);
  for (Expr *E : P.Modifies) {
    if (checkExpr(E, PreCtx, &LocSet) && E->Ty != LocSet)
      error(E->Loc, "modifies clause must be a set<Loc> expression");
  }
  if (!checkStmt(P.Body))
    Ok = false;
  popScope();
  CurrentProc = nullptr;
  return Ok;
}

bool Checker::run() {
  checkStructure();
  // Two-pass: signatures are visible before bodies (recursion, forward
  // calls), which findProc already provides since all procs are parsed.
  for (ProcDecl &P : M.Procs)
    checkProc(P);
  return Ok && !Diags.hasErrors();
}

bool lang::typeCheck(Module &M, DiagEngine &Diags) {
  Checker C(M, Diags);
  return C.run();
}
