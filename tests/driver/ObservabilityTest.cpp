//===- tests/driver/ObservabilityTest.cpp - End-to-end tracing tests -------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-process integration tests for the observability subsystem: a real
/// verification run must emit one span per pipeline stage per
/// obligation, populate the counter registry at every layer
/// (driver/pipeline/smt/cache), keep the bench stat renderer and the
/// registry's pipeline.* cells in exact agreement, and record
/// slow-query JSONL rows with the documented fields. Counters and span
/// buffers are process-global, so each test starts from a reset.
///
//===----------------------------------------------------------------------===//

#include "driver/Verifier.h"
#include "pipeline/Pipeline.h"
#include "structures/Registry.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>

using namespace ids;

namespace {

class ObservabilityTest : public ::testing::Test {
protected:
  void SetUp() override {
    Source = structures::findBenchmarkSource("singly-linked-list");
    ASSERT_NE(Source, nullptr);
    trace::setSpansEnabled(false);
    trace::resetSpansForTest();
    trace::resetCountersForTest();
  }
  void TearDown() override {
    trace::setSpansEnabled(false);
    trace::resetSpansForTest();
    trace::closeSlowQueryLog();
    trace::setSlowQueryThresholdMs(0);
  }

  driver::ModuleResult verify() {
    DiagEngine Diags;
    driver::VerifyOptions Opts;
    driver::ModuleResult R = driver::verifySource(Source, Opts, Diags);
    EXPECT_TRUE(R.FrontEndOk) << Diags.toString();
    return R;
  }

  /// name -> occurrence count over the current trace buffers.
  std::map<std::string, unsigned> spanCounts(const json::Value &Trace) {
    std::map<std::string, unsigned> N;
    const json::Value *Evs = Trace.get("traceEvents");
    EXPECT_NE(Evs, nullptr);
    if (Evs)
      for (const json::Value &E : Evs->elements())
        ++N[E.get("name")->asString()];
    return N;
  }

  const char *Source = nullptr;
};

TEST_F(ObservabilityTest, VerifyEmitsStageSpans) {
  trace::setSpansEnabled(true);
  driver::ModuleResult R = verify();
  json::Value Trace = trace::chromeTraceJson();
  std::map<std::string, unsigned> N = spanCounts(Trace);

  // One request, one driver span per procedure and impact set.
  EXPECT_EQ(N["driver.request"], 1u);
  EXPECT_EQ(N["driver.proc"], R.Procs.size());
  EXPECT_EQ(N["driver.impact"], R.Impacts.size());

  // Stage coverage: every obligation passes through simplify; everything
  // not discharged there is sliced, cache-probed and solved.
  pipeline::Stats Agg;
  for (const driver::ProcResult &P : R.Procs)
    Agg.merge(P.Pipeline);
  for (const driver::ImpactResult &I : R.Impacts)
    Agg.merge(I.Pipeline);
  EXPECT_EQ(N["pipeline.simplify"], Agg.Obligations);
  EXPECT_EQ(N["pipeline.slice"], Agg.Obligations - Agg.ProvedBySimplify);
  EXPECT_EQ(N["pipeline.cache_probe"], Agg.Obligations - Agg.ProvedBySimplify);
  EXPECT_EQ(N["pipeline.solve"], Agg.Queries);

  // Span args on a solve: procedure attribution, a 32-hex VC hash, and
  // the verdict.
  const json::Value *Evs = Trace.get("traceEvents");
  unsigned Checked = 0;
  for (const json::Value &E : Evs->elements()) {
    if (E.get("name")->asString() != "pipeline.solve")
      continue;
    const json::Value *Args = E.get("args");
    ASSERT_NE(Args, nullptr);
    EXPECT_FALSE(Args->get("proc")->asString().empty());
    const std::string Vc = Args->get("vc")->asString();
    EXPECT_EQ(Vc.size(), 32u);
    for (char C : Vc)
      EXPECT_TRUE((C >= '0' && C <= '9') || (C >= 'a' && C <= 'f')) << Vc;
    const std::string Verdict = Args->get("verdict")->asString();
    EXPECT_TRUE(Verdict == "sat" || Verdict == "unsat" ||
                Verdict == "unknown")
        << Verdict;
    ++Checked;
  }
  EXPECT_EQ(Checked, Agg.Queries);
}

TEST_F(ObservabilityTest, VerifyPopulatesEveryLayersCounters) {
  driver::ModuleResult R = verify();
  (void)R;
  std::map<std::string, uint64_t> C;
  for (const auto &[Name, V] : trace::counterSnapshot())
    C[Name] = V;
  EXPECT_EQ(C["driver.requests"], 1u);
  EXPECT_GT(C["driver.procs_solved"], 0u);
  EXPECT_GT(C["pipeline.obligations"], 0u);
  EXPECT_GT(C["pipeline.queries"], 0u);
  EXPECT_GT(C["smt.check_sats"], 0u);
  EXPECT_GT(C["smt.theory_checks"], 0u);
  EXPECT_GT(C["cache.query_lookups"], 0u);
  // Every solver query dispatches through the job system (even --jobs 1
  // runs the inline fast path); snapshot overlays keep term copying out
  // of the dispatch path entirely.
  EXPECT_GT(C["jobs.tasks"], 0u);
  EXPECT_EQ(C["smt.term_imports"], 0u);
  // Spans were never enabled: counters populate regardless.
  const json::Value *Evs = trace::chromeTraceJson().get("traceEvents");
  ASSERT_NE(Evs, nullptr);
  EXPECT_TRUE(Evs->elements().empty());
}

TEST_F(ObservabilityTest, BenchRendererAgreesWithRegistry) {
  // The same StatsRow table feeds pipeline::statsToJson (bench rows) and
  // recordStatsInRegistry (pipeline.* cells); summing the per-proc and
  // per-impact stats the renderer sees must reproduce the registry.
  driver::ModuleResult R = verify();
  pipeline::Stats Agg;
  for (const driver::ProcResult &P : R.Procs)
    Agg.merge(P.Pipeline);
  for (const driver::ImpactResult &I : R.Impacts)
    Agg.merge(I.Pipeline);
  json::Value Rows = pipeline::statsToJson(Agg);
  ASSERT_TRUE(Rows.isObject());
  EXPECT_FALSE(Rows.members().empty());
  std::map<std::string, uint64_t> C;
  for (const auto &[Name, V] : trace::counterSnapshot())
    C[Name] = V;
  for (const auto &[Key, Val] : Rows.members()) {
    ASSERT_EQ(C.count("pipeline." + Key), 1u) << Key;
    EXPECT_EQ(C["pipeline." + Key], uint64_t(Val.asNumber())) << Key;
  }
}

TEST_F(ObservabilityTest, SlowQueryLogRecordsEveryQueryAtTinyThreshold) {
  std::string Path = ::testing::TempDir() + "/obs_test_slow.jsonl";
  std::remove(Path.c_str());
  trace::setSlowQueryThresholdMs(1e-9); // every solver query qualifies
  std::string Error;
  ASSERT_TRUE(trace::openSlowQueryLog(Path, Error)) << Error;
  driver::ModuleResult R = verify();
  trace::closeSlowQueryLog();

  pipeline::Stats Agg;
  for (const driver::ProcResult &P : R.Procs)
    Agg.merge(P.Pipeline);
  for (const driver::ImpactResult &I : R.Impacts)
    Agg.merge(I.Pipeline);

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string Line;
  unsigned Records = 0;
  while (std::getline(In, Line)) {
    std::string Err;
    json::Value V = json::Value::parse(Line, Err);
    ASSERT_TRUE(Err.empty()) << Line << ": " << Err;
    ASSERT_TRUE(V.isObject());
    for (const char *Key :
         {"ts_us", "proc", "vc", "verdict", "seconds", "atoms"})
      EXPECT_NE(V.get(Key), nullptr) << Key << " missing in: " << Line;
    EXPECT_EQ(V.get("vc")->asString().size(), 32u);
    ++Records;
  }
  // At least one record per solved query (batched members may also log a
  // sat-recheck row, so >= rather than ==).
  EXPECT_GE(Records, Agg.Queries);
  std::remove(Path.c_str());

  // Counter mirror of the log volume.
  uint64_t Slow = 0;
  for (const auto &[Name, V] : trace::counterSnapshot())
    if (Name == "pipeline.slow_queries")
      Slow = V;
  EXPECT_EQ(Slow, Records);
}

} // namespace
