//===- tests/pipeline/SimplifyFuzzTest.cpp - Pipeline differential fuzz ----===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential fuzzing of the VC pipeline transforms, mirroring
/// tests/smt/FuzzTest.cpp's corpus (same generator shape, same seeds,
/// 600 formulas): for each random quantifier-free formula,
///
///  1. the rewriter must be idempotent and must preserve the solver
///     verdict (decided answers may not flip between the original and
///     simplified formula), and
///  2. random obligations pushed through the full pipeline
///     (simplify + slice + cache + scheduler) must agree with a direct
///     solver call on Guard /\ !Claim.
///
//===----------------------------------------------------------------------===//

#include "pipeline/Pipeline.h"
#include "pipeline/Simplify.h"
#include "smt/Solver.h"
#include "smt/TermPrinter.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

using namespace ids;
using namespace ids::pipeline;
using namespace ids::smt;

namespace {

/// Random QF formula generator over a fixed small vocabulary — the same
/// shape as the solver fuzzer's so the corpus stresses the same
/// operator mix.
class FormulaGen {
public:
  FormulaGen(TermManager &TM, std::mt19937 &Rng) : TM(TM), Rng(Rng) {
    for (int I = 0; I < 4; ++I)
      BoolVars.push_back(TM.mkVar("p" + std::to_string(I), TM.boolSort()));
    for (int I = 0; I < 4; ++I)
      IntVars.push_back(TM.mkVar("x" + std::to_string(I), TM.intSort()));
    const Sort *IntInt = TM.getArraySort(TM.intSort(), TM.intSort());
    const Sort *IntBool = TM.getArraySort(TM.intSort(), TM.boolSort());
    for (int I = 0; I < 2; ++I)
      ArrVars.push_back(TM.mkVar("a" + std::to_string(I), IntInt));
    SetVars.push_back(TM.mkVar("s0", IntBool));
  }

  TermRef boolFormula(unsigned Depth) {
    if (Depth == 0)
      return boolLeaf();
    switch (pick(8)) {
    case 0:
      return TM.mkNot(boolFormula(Depth - 1));
    case 1:
      return TM.mkAnd(boolFormula(Depth - 1), boolFormula(Depth - 1));
    case 2:
      return TM.mkOr(boolFormula(Depth - 1), boolFormula(Depth - 1));
    case 3:
      return TM.mkImplies(boolFormula(Depth - 1), boolFormula(Depth - 1));
    case 4:
      return TM.mkEq(boolFormula(Depth - 1), boolFormula(Depth - 1));
    case 5:
      return TM.mkIte(boolFormula(Depth - 1), boolFormula(Depth - 1),
                      boolFormula(Depth - 1));
    case 6:
      return intAtom(Depth - 1);
    default:
      return setAtom(Depth - 1);
    }
  }

private:
  // Raw engine draws, as in FuzzTest.cpp: reproducible on every standard
  // library.
  unsigned pick(unsigned N) { return Rng() % N; }

  TermRef boolLeaf() {
    switch (pick(4)) {
    case 0:
      return TM.mkBool(pick(2) == 0);
    case 1:
      return intAtom(0);
    default:
      return BoolVars[pick(BoolVars.size())];
    }
  }

  TermRef intTerm(unsigned Depth) {
    if (Depth == 0)
      return intLeaf();
    switch (pick(5)) {
    case 0:
      return TM.mkAdd(intTerm(Depth - 1), intTerm(Depth - 1));
    case 1:
      return TM.mkSub(intTerm(Depth - 1), intTerm(Depth - 1));
    case 2:
      return TM.mkMulConst(Rational(BigInt(int64_t(pick(7)) - 3)),
                           intTerm(Depth - 1));
    case 3:
      return TM.mkSelect(arrTerm(Depth - 1), intTerm(Depth - 1));
    default:
      return intLeaf();
    }
  }

  TermRef intLeaf() {
    if (pick(2) == 0)
      return TM.mkIntConst(int64_t(pick(9)) - 4);
    return IntVars[pick(IntVars.size())];
  }

  TermRef arrTerm(unsigned Depth) {
    if (Depth == 0 || pick(3) == 0)
      return ArrVars[pick(ArrVars.size())];
    return TM.mkStore(arrTerm(Depth - 1), intTerm(Depth - 1),
                      intTerm(Depth - 1));
  }

  TermRef setTerm(unsigned Depth) {
    if (Depth == 0 || pick(3) == 0) {
      if (pick(3) == 0)
        return TM.mkEmptySet(TM.intSort());
      return SetVars[pick(SetVars.size())];
    }
    switch (pick(4)) {
    case 0:
      return TM.mkSetUnion(setTerm(Depth - 1), setTerm(Depth - 1));
    case 1:
      return TM.mkSetIntersect(setTerm(Depth - 1), setTerm(Depth - 1));
    case 2:
      return TM.mkSetMinus(setTerm(Depth - 1), setTerm(Depth - 1));
    default:
      return TM.mkSetInsert(setTerm(Depth - 1), intTerm(Depth - 1));
    }
  }

  TermRef intAtom(unsigned Depth) {
    TermRef A = intTerm(Depth), B = intTerm(Depth);
    switch (pick(3)) {
    case 0:
      return TM.mkLe(A, B);
    case 1:
      return TM.mkLt(A, B);
    default:
      return TM.mkEq(A, B);
    }
  }

  TermRef setAtom(unsigned Depth) {
    switch (pick(3)) {
    case 0:
      return TM.mkMember(intTerm(Depth), setTerm(Depth));
    case 1:
      return TM.mkSubset(setTerm(Depth), setTerm(Depth));
    default:
      return TM.mkEq(setTerm(Depth), setTerm(Depth));
    }
  }

  TermManager &TM;
  std::mt19937 &Rng;
  std::vector<TermRef> BoolVars, IntVars, ArrVars, SetVars;
};

Solver::Result solveDirect(TermManager &TM, TermRef F) {
  Solver::Options Opts;
  Opts.MaxTheoryChecks = 20000;
  Solver S(TM, Opts);
  return S.checkSat(F);
}

/// Rewrite must be idempotent and may not flip a decided verdict.
void runRewriteDifferential(uint32_t Seed, unsigned Iters, unsigned Depth,
                            unsigned &Decided) {
  std::mt19937 Rng(Seed);
  for (unsigned I = 0; I < Iters; ++I) {
    TermManager TM;
    FormulaGen Gen(TM, Rng);
    TermRef F = Gen.boolFormula(Depth);

    Simplifier Simp(TM);
    TermRef Simplified = Simp.rewrite(F);
    EXPECT_EQ(Simp.rewrite(Simplified), Simplified)
        << "rewrite not idempotent (seed " << Seed << ", iter " << I
        << ")\n"
        << printTerm(F);

    Solver::Result Direct = solveDirect(TM, F);
    Solver::Result Simp2 = solveDirect(TM, Simplified);
    if (Direct != Solver::Result::Unknown &&
        Simp2 != Solver::Result::Unknown) {
      ++Decided;
      EXPECT_EQ(Direct, Simp2)
          << "simplification flipped the verdict (seed " << Seed
          << ", iter " << I << ")\n"
          << printTerm(F) << "\n-- simplified --\n"
          << printTerm(Simplified);
    }
  }
}

/// Full pipeline (simplify + slice + cache + scheduler) vs direct solve
/// of Guard /\ !Claim on random obligations.
void runPipelineDifferential(uint32_t Seed, unsigned Iters, unsigned Depth,
                             unsigned &Decided) {
  std::mt19937 Rng(Seed);
  for (unsigned I = 0; I < Iters; ++I) {
    TermManager TM;
    FormulaGen Gen(TM, Rng);
    vcgen::Obligation O;
    O.Guard = TM.mkAnd({Gen.boolFormula(Depth), Gen.boolFormula(Depth),
                        Gen.boolFormula(Depth - 1)});
    O.Claim = Gen.boolFormula(Depth);
    O.Description = "fuzz";

    Solver::Result Direct =
        solveDirect(TM, TM.mkAnd(O.Guard, TM.mkNot(O.Claim)));

    Options Opts;
    Opts.MaxTheoryChecks = 20000;
    Opts.Jobs = (I % 3 == 0) ? 2 : 1; // exercise the pool too
    QueryCache Cache;
    Result R = solveObligations(TM, {O}, Opts, &Cache);

    if (Direct == Solver::Result::Unknown || R.V == Verdict::Unknown)
      continue;
    ++Decided;
    Verdict Expected = Direct == Solver::Result::Unsat ? Verdict::Proved
                                                       : Verdict::Failed;
    EXPECT_EQ(R.V, Expected)
        << "pipeline flipped the verdict (seed " << Seed << ", iter " << I
        << ")\nguard:\n"
        << printTerm(O.Guard) << "\nclaim:\n"
        << printTerm(O.Claim);
  }
}

// The same three seeds and iteration counts as the solver fuzzer: 600
// formulas total per harness.
TEST(PipelineFuzzTest, RewriteShallow) {
  unsigned Decided = 0;
  runRewriteDifferential(/*Seed=*/0xC0FFEE, /*Iters=*/300, /*Depth=*/3,
                         Decided);
  EXPECT_GT(Decided, 200u);
}

TEST(PipelineFuzzTest, RewriteDeep) {
  unsigned Decided = 0;
  runRewriteDifferential(/*Seed=*/0xDECAF, /*Iters=*/200, /*Depth=*/4,
                         Decided);
  EXPECT_GT(Decided, 120u);
}

TEST(PipelineFuzzTest, RewriteArrayHeavy) {
  unsigned Decided = 0;
  runRewriteDifferential(/*Seed=*/0xBADF00D, /*Iters=*/100, /*Depth=*/5,
                         Decided);
  EXPECT_GT(Decided, 50u);
}

TEST(PipelineFuzzTest, ObligationShallow) {
  unsigned Decided = 0;
  runPipelineDifferential(/*Seed=*/0xC0FFEE, /*Iters=*/300, /*Depth=*/3,
                          Decided);
  EXPECT_GT(Decided, 200u);
}

TEST(PipelineFuzzTest, ObligationDeep) {
  unsigned Decided = 0;
  runPipelineDifferential(/*Seed=*/0xDECAF, /*Iters=*/200, /*Depth=*/4,
                          Decided);
  EXPECT_GT(Decided, 120u);
}

TEST(PipelineFuzzTest, ObligationArrayHeavy) {
  unsigned Decided = 0;
  runPipelineDifferential(/*Seed=*/0xBADF00D, /*Iters=*/100, /*Depth=*/5,
                          Decided);
  EXPECT_GT(Decided, 50u);
}

} // namespace
