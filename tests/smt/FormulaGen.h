//===- tests/smt/FormulaGen.h - Shared random QF formula corpus -*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seeded random formula generator behind the differential fuzzers
/// (one-shot solver, pipeline transforms, incremental assertion stacks):
/// quantifier-free formulas over booleans, linear Int arithmetic and
/// Int->Int / Int->Bool arrays from a fixed small vocabulary. The draws
/// come from the raw mt19937 engine so the corpus reproduces identically
/// on every standard library.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_TESTS_SMT_FORMULAGEN_H
#define IDS_TESTS_SMT_FORMULAGEN_H

#include "smt/Term.h"

#include <random>
#include <string>
#include <vector>

namespace ids {
namespace smt {

/// Random QF formula generator over a fixed small vocabulary. Sizes are
/// kept small so 500+ instances solve well under the 10s budget.
class FormulaGen {
public:
  FormulaGen(TermManager &TM, std::mt19937 &Rng) : TM(TM), Rng(Rng) {
    for (int I = 0; I < 4; ++I)
      BoolVars.push_back(TM.mkVar("p" + std::to_string(I), TM.boolSort()));
    for (int I = 0; I < 4; ++I)
      IntVars.push_back(TM.mkVar("x" + std::to_string(I), TM.intSort()));
    const Sort *IntInt = TM.getArraySort(TM.intSort(), TM.intSort());
    const Sort *IntBool = TM.getArraySort(TM.intSort(), TM.boolSort());
    for (int I = 0; I < 2; ++I)
      ArrVars.push_back(TM.mkVar("a" + std::to_string(I), IntInt));
    SetVars.push_back(TM.mkVar("s0", IntBool));
  }

  TermRef boolFormula(unsigned Depth) {
    if (Depth == 0)
      return boolLeaf();
    switch (pick(8)) {
    case 0:
      return TM.mkNot(boolFormula(Depth - 1));
    case 1:
      return TM.mkAnd(boolFormula(Depth - 1), boolFormula(Depth - 1));
    case 2:
      return TM.mkOr(boolFormula(Depth - 1), boolFormula(Depth - 1));
    case 3:
      return TM.mkImplies(boolFormula(Depth - 1), boolFormula(Depth - 1));
    case 4:
      return TM.mkEq(boolFormula(Depth - 1), boolFormula(Depth - 1));
    case 5:
      return TM.mkIte(boolFormula(Depth - 1), boolFormula(Depth - 1),
                      boolFormula(Depth - 1));
    case 6:
      return intAtom(Depth - 1);
    default:
      return setAtom(Depth - 1);
    }
  }

private:
  // Drawn from the raw engine rather than uniform_int_distribution: the
  // distribution's mapping is implementation-defined, and the corpus (and
  // the verdict-count thresholds in the fuzz suites) must reproduce
  // identically on every standard library. Modulo bias is irrelevant for
  // fuzzing.
  unsigned pick(unsigned N) { return Rng() % N; }

  TermRef boolLeaf() {
    switch (pick(4)) {
    case 0:
      return TM.mkBool(pick(2) == 0);
    case 1:
      return intAtom(0);
    default:
      return BoolVars[pick(BoolVars.size())];
    }
  }

  TermRef intTerm(unsigned Depth) {
    if (Depth == 0)
      return intLeaf();
    switch (pick(5)) {
    case 0:
      return TM.mkAdd(intTerm(Depth - 1), intTerm(Depth - 1));
    case 1:
      return TM.mkSub(intTerm(Depth - 1), intTerm(Depth - 1));
    case 2:
      return TM.mkMulConst(Rational(BigInt(int64_t(pick(7)) - 3)),
                           intTerm(Depth - 1));
    case 3:
      return TM.mkSelect(arrTerm(Depth - 1), intTerm(Depth - 1));
    default:
      return intLeaf();
    }
  }

  TermRef intLeaf() {
    if (pick(2) == 0)
      return TM.mkIntConst(int64_t(pick(9)) - 4);
    return IntVars[pick(IntVars.size())];
  }

  TermRef arrTerm(unsigned Depth) {
    if (Depth == 0 || pick(3) == 0)
      return ArrVars[pick(ArrVars.size())];
    return TM.mkStore(arrTerm(Depth - 1), intTerm(Depth - 1),
                      intTerm(Depth - 1));
  }

  TermRef setTerm(unsigned Depth) {
    if (Depth == 0 || pick(3) == 0) {
      if (pick(3) == 0)
        return TM.mkEmptySet(TM.intSort());
      return SetVars[pick(SetVars.size())];
    }
    switch (pick(4)) {
    case 0:
      return TM.mkSetUnion(setTerm(Depth - 1), setTerm(Depth - 1));
    case 1:
      return TM.mkSetIntersect(setTerm(Depth - 1), setTerm(Depth - 1));
    case 2:
      return TM.mkSetMinus(setTerm(Depth - 1), setTerm(Depth - 1));
    default:
      return TM.mkSetInsert(setTerm(Depth - 1), intTerm(Depth - 1));
    }
  }

  TermRef intAtom(unsigned Depth) {
    TermRef A = intTerm(Depth), B = intTerm(Depth);
    switch (pick(3)) {
    case 0:
      return TM.mkLe(A, B);
    case 1:
      return TM.mkLt(A, B);
    default:
      return TM.mkEq(A, B);
    }
  }

  TermRef setAtom(unsigned Depth) {
    switch (pick(3)) {
    case 0:
      return TM.mkMember(intTerm(Depth), setTerm(Depth));
    case 1:
      return TM.mkSubset(setTerm(Depth), setTerm(Depth));
    default:
      return TM.mkEq(setTerm(Depth), setTerm(Depth));
    }
  }

  TermManager &TM;
  std::mt19937 &Rng;
  std::vector<TermRef> BoolVars, IntVars, ArrVars, SetVars;
};

} // namespace smt
} // namespace ids

#endif // IDS_TESTS_SMT_FORMULAGEN_H
