//===- tests/vcgen/VcGenTest.cpp - VC generation + verifier tests ----------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end verification tests on small hand-written modules: valid
/// programs verify, buggy programs fail with the right obligation, the
/// FWYB macros behave per Figure 2, and impact sets are machine-checked
/// (Appendix C) including a deliberately wrong one.
///
//===----------------------------------------------------------------------===//

#include "driver/Verifier.h"

#include "vcgen/VcGen.h"

#include <gtest/gtest.h>

#include <set>

using namespace ids;
using namespace ids::driver;

namespace {
const char *Mini = R"(
structure S {
  field next: Loc;
  field key: int;
  ghost field prev: Loc;
  ghost field len: int;
  local l (x) { (x.next != nil ==> x.next.prev == x
                                && x.len == x.next.len + 1)
             && (x.prev != nil ==> x.prev.next == x)
             && (x.next == nil ==> x.len == 1) }
  correlation (y) { y.prev == nil }
  impact next [l] { x, old(x.next) }
  impact prev [l] { x, old(x.prev) }
  impact len  [l] { x, x.prev }
}
)";

ModuleResult verify(const std::string &Src, VerifyOptions Opts = {}) {
  DiagEngine Diags;
  ModuleResult R = verifySource(Src, Opts, Diags);
  EXPECT_TRUE(R.FrontEndOk) << Diags.toString();
  return R;
}
} // namespace

TEST(VcGenTest, TrivialArithmeticProc) {
  ModuleResult R = verify(std::string(Mini) + R"(
procedure p(a: int) returns (b: int)
  ensures b == a + 1
{
  b := a + 1;
}
)");
  EXPECT_TRUE(R.allVerified());
}

TEST(VcGenTest, WrongPostconditionFailsWithCounterexample) {
  VerifyOptions Opts;
  Opts.CheckImpacts = false;
  ModuleResult R = verify(std::string(Mini) + R"(
procedure p(a: int) returns (b: int)
  ensures b == a + 2
{
  b := a + 1;
}
)",
                          Opts);
  ASSERT_EQ(R.Procs.size(), 1u);
  EXPECT_EQ(R.Procs[0].St, Status::Failed);
  EXPECT_NE(R.Procs[0].FailedObligation.find("postcondition"),
            std::string::npos);
  EXPECT_FALSE(R.Procs[0].Counterexample.empty());
}

TEST(VcGenTest, NullDereferenceCaught) {
  VerifyOptions Opts;
  Opts.CheckImpacts = false;
  ModuleResult R = verify(std::string(Mini) + R"(
procedure p(a: Loc) returns (b: int)
{
  b := a.key;
}
)",
                          Opts);
  EXPECT_EQ(R.Procs[0].St, Status::Failed);
  EXPECT_NE(R.Procs[0].FailedObligation.find("dereference"),
            std::string::npos);
  // Guarding the dereference fixes it.
  ModuleResult R2 = verify(std::string(Mini) + R"(
procedure p(a: Loc) returns (b: int)
  requires a != nil
{
  b := a.key;
}
)",
                           Opts);
  EXPECT_TRUE(R2.Procs[0].St == Status::Verified);
}

TEST(VcGenTest, ShortCircuitGuardsDereference) {
  VerifyOptions Opts;
  Opts.CheckImpacts = false;
  ModuleResult R = verify(std::string(Mini) + R"(
procedure p(a: Loc) returns (b: bool)
{
  b := a != nil && a.key > 0;
}
)",
                          Opts);
  EXPECT_EQ(R.Procs[0].St, Status::Verified);
}

TEST(VcGenTest, InferLcRequiresOutsideBr) {
  VerifyOptions Opts;
  Opts.CheckImpacts = false;
  // Without knowing Br is empty, InferLCOutsideBr must fail.
  ModuleResult R = verify(std::string(Mini) + R"(
procedure p(a: Loc) returns (b: Loc)
  requires a != nil
{
  InferLCOutsideBr(l, a);
  b := a;
}
)",
                          Opts);
  EXPECT_EQ(R.Procs[0].St, Status::Failed);
  // With the emptiness precondition it verifies.
  ModuleResult R2 = verify(std::string(Mini) + R"(
procedure p(a: Loc) returns (b: Loc)
  requires a != nil && br(l) == {}
{
  InferLCOutsideBr(l, a);
  b := a;
}
)",
                           Opts);
  EXPECT_EQ(R2.Procs[0].St, Status::Verified);
}

TEST(VcGenTest, MutGrowsBrokenSetAndAssertShrinksIt) {
  VerifyOptions Opts;
  Opts.CheckImpacts = false;
  // After mutating prev on a fresh node, Br = {node}; removing it needs
  // the LC proof; then Br is empty again.
  ModuleResult R = verify(std::string(Mini) + R"(
procedure p() returns (b: Loc)
  requires br(l) == {}
  ensures  br(l) == {}
{
  var z: Loc;
  NewObj(z);
  Mut(z.len, 1);
  AssertLCAndRemove(l, z);
  b := z;
}
)",
                          Opts);
  EXPECT_EQ(R.Procs[0].St, Status::Verified) << R.Procs[0].FailedObligation;
  // Forgetting the repair leaves z in Br: postcondition fails.
  ModuleResult R2 = verify(std::string(Mini) + R"(
procedure p() returns (b: Loc)
  requires br(l) == {}
  ensures  br(l) == {}
{
  var z: Loc;
  NewObj(z);
  Mut(z.len, 1);
  b := z;
}
)",
                           Opts);
  EXPECT_EQ(R2.Procs[0].St, Status::Failed);
}

TEST(VcGenTest, AssertLcChecksTheLocalCondition) {
  VerifyOptions Opts;
  Opts.CheckImpacts = false;
  // len never set to 1, so LC(z) (next == nil => len == 1) is unprovable.
  ModuleResult R = verify(std::string(Mini) + R"(
procedure p() returns (b: Loc)
  requires br(l) == {}
{
  var z: Loc;
  NewObj(z);
  AssertLCAndRemove(l, z);
  b := z;
}
)",
                          Opts);
  EXPECT_EQ(R.Procs[0].St, Status::Failed);
  EXPECT_NE(R.Procs[0].FailedObligation.find("local condition"),
            std::string::npos);
}

TEST(VcGenTest, FrameObligationCatchesFootprintEscape) {
  // Mutating a non-fresh object outside the modifies footprint fails.
  ModuleResult R = verify(std::string(Mini) + R"(
procedure p(a: Loc) returns (b: Loc)
  requires a != nil && br(l) == {}
  modifies {}
{
  Mut(a.key, 1);
  b := a;
}
)",
                          [] {
                            VerifyOptions O;
                            O.CheckImpacts = false;
                            return O;
                          }());
  EXPECT_EQ(R.Procs[0].St, Status::Failed);
  EXPECT_NE(R.Procs[0].FailedObligation.find("footprint"),
            std::string::npos);
}

TEST(VcGenTest, LoopInvariantEntryAndPreservation) {
  VerifyOptions Opts;
  Opts.CheckImpacts = false;
  ModuleResult R = verify(std::string(Mini) + R"(
procedure count(n: int) returns (s: int)
  requires n >= 0
  ensures s == n
{
  var i: int := 0;
  s := 0;
  while (i < n)
    invariant 0 <= i && i <= n
    invariant s == i
  {
    i := i + 1;
    s := s + 1;
  }
}
)",
                          Opts);
  EXPECT_EQ(R.Procs[0].St, Status::Verified) << R.Procs[0].FailedObligation;
  // A wrong invariant is rejected at the latch.
  ModuleResult R2 = verify(std::string(Mini) + R"(
procedure count(n: int) returns (s: int)
  requires n >= 0
{
  var i: int := 0;
  s := 0;
  while (i < n)
    invariant s == 0
  {
    i := i + 1;
    s := s + 1;
  }
}
)",
                           Opts);
  EXPECT_EQ(R2.Procs[0].St, Status::Failed);
}

TEST(VcGenTest, GhostLoopDecreasesChecked) {
  VerifyOptions Opts;
  Opts.CheckImpacts = false;
  // Measure does not decrease: must fail.
  ModuleResult R = verify(std::string(Mini) + R"(
procedure p(n: int) returns (s: int)
  requires n >= 0
{
  ghost {
    var i: int := n;
    while (i > 0)
      invariant i >= 0
      decreases i
    {
      i := i + 1;
    }
  }
  s := 0;
}
)",
                          Opts);
  EXPECT_EQ(R.Procs[0].St, Status::Failed);
  EXPECT_NE(R.Procs[0].FailedObligation.find("measure"), std::string::npos);
}

TEST(VcGenTest, CallUsesContractAndFrames) {
  VerifyOptions Opts;
  Opts.CheckImpacts = false;
  ModuleResult R = verify(std::string(Mini) + R"(
procedure bump(a: Loc) returns (r: int)
  requires a != nil
  ensures  r == old(a.key) + 1
  ensures  a.key == old(a.key)
  modifies {}
{
  r := a.key + 1;
}
procedure caller(a: Loc, b: Loc) returns (r: int)
  requires a != nil && b != nil
  ensures  r == old(a.key) + 1
  ensures  b.key == old(b.key)
{
  call r := bump(a);
}
)",
                          Opts);
  for (const ProcResult &P : R.Procs)
    EXPECT_EQ(P.St, Status::Verified) << P.Name << ": "
                                      << P.FailedObligation;
}

TEST(VcGenTest, ImpactSetsVerifiedAndWrongOnesRejected) {
  // The declared impact sets of the mini structure are correct.
  ModuleResult R = verify(std::string(Mini) + R"(
procedure p(a: int) returns (b: int) { b := a; }
)");
  for (const ImpactResult &I : R.Impacts)
    EXPECT_TRUE(I.Ok) << I.Field << " [" << I.Group << "]";

  // Dropping old(x.next) from next's impact set makes it wrong
  // (Section 4.1's argument: the old successor's prev-link breaks).
  DiagEngine Diags;
  ModuleResult R2 = verifySource(R"(
structure S {
  field next: Loc;
  ghost field prev: Loc;
  local l (x) { (x.next != nil ==> x.next.prev == x)
             && (x.prev != nil ==> x.prev.next == x) }
  correlation (y) { y.prev == nil }
  impact next [l] { x }
  impact prev [l] { x, old(x.prev) }
}
procedure p(a: int) returns (b: int) { b := a; }
)",
                                 VerifyOptions(), Diags);
  ASSERT_TRUE(R2.FrontEndOk) << Diags.toString();
  bool AnyFailed = false;
  for (const ImpactResult &I : R2.Impacts)
    if (I.Field == "next" && !I.Ok)
      AnyFailed = true;
  EXPECT_TRUE(AnyFailed);
}

TEST(VcGenTest, QuantifiedModeVerifiesSimpleProc) {
  VerifyOptions Opts;
  Opts.CheckImpacts = false;
  Opts.QuantifiedMode = true;
  ModuleResult R = verify(std::string(Mini) + R"(
procedure callee(a: Loc) returns (r: int)
  requires a != nil
  ensures  r == old(a.key)
  modifies {}
{
  r := a.key;
}
procedure caller(a: Loc) returns (r: int)
  requires a != nil
  ensures  r == old(a.key)
{
  call r := callee(a);
}
)",
                          Opts);
  for (const ProcResult &P : R.Procs)
    EXPECT_EQ(P.St, Status::Verified) << P.Name << ": "
                                      << P.FailedObligation;
}

namespace {
void collectVarNames(smt::TermRef T, std::set<const smt::Term *> &Seen,
                     std::set<std::string> &Names) {
  if (!Seen.insert(T).second)
    return;
  if (T->getKind() == smt::TermKind::Var)
    Names.insert(T->getName());
  for (smt::TermRef A : T->getArgs())
    collectVarNames(A, Seen, Names);
}

bool anyWithPrefix(const std::set<std::string> &Names,
                   const std::string &Prefix) {
  for (const std::string &N : Names)
    if (N.compare(0, Prefix.size(), Prefix) == 0)
      return true;
  return false;
}
} // namespace

namespace {
// A well-formed overlay: group a constrains the key alone, group b is a
// counted sorted list; both read `key`, so its impact clause lists both
// groups (each with the inverse-pointer-bounded terms).
const char *Overlay = R"(
structure S {
  field next: Loc;
  field key: int;
  ghost field prev: Loc;
  ghost field qlen: int;
  local a (x) { x.key >= 0 }
  local b (x) { (x.next != nil ==> x.next.prev == x
                                && x.key <= x.next.key
                                && x.qlen == x.next.qlen + 1)
             && (x.prev != nil ==> x.prev.next == x)
             && (x.next == nil ==> x.qlen == 1) }
  impact key  [a, b] { x, x.prev }
  impact qlen [b] { x, x.prev }
  impact next [b] { x, old(x.next) }
  impact prev [b] { x, old(x.prev) }
}
procedure p(v: Loc)
  requires br(a) == {} && br(b) == {}
  requires v != nil && v.next == nil && v.prev == nil
  ensures  br(a) == {} && br(b) == {}
  modifies {v}
{
  Mut(v.key, 1);
  ghost { Mut(v.qlen, 1); }
  REPAIRS
}
)";

std::string overlayWith(const std::string &Repairs) {
  std::string Src = Overlay;
  Src.replace(Src.find("REPAIRS"), 7, Repairs);
  return Src;
}
} // namespace

TEST(VcGenTest, OverlaidGroupsBothAppearInObligations) {
  // An overlaid structure: two local-condition groups over the same
  // nodes. The generated VC must thread BOTH broken sets — the macros
  // acting on group a leave group b's set alone and vice versa, and the
  // postcondition obligations mention the two sets side by side.
  std::string Src =
      overlayWith("AssertLCAndRemove(a, v);\n  AssertLCAndRemove(b, v);");
  DiagEngine Diags;
  std::unique_ptr<lang::Module> M = driver::frontEnd(Src, Diags);
  ASSERT_TRUE(M != nullptr) << Diags.toString();
  smt::TermManager TM;
  vcgen::ProcVc Vc =
      vcgen::generateVc(TM, *M, M->Procs[0], vcgen::VcOptions());
  ASSERT_FALSE(Vc.Obligations.empty());

  // Across the whole VC both groups' broken-set incarnations occur.
  std::set<const smt::Term *> Seen;
  std::set<std::string> All;
  for (const vcgen::Obligation &O : Vc.Obligations) {
    collectVarNames(O.Guard, Seen, All);
    collectVarNames(O.Claim, Seen, All);
  }
  EXPECT_TRUE(anyWithPrefix(All, "Br_a")) << "no Br_a incarnation in VC";
  EXPECT_TRUE(anyWithPrefix(All, "Br_b")) << "no Br_b incarnation in VC";

  // The two local-condition obligations target their own groups.
  unsigned LcA = 0, LcB = 0;
  for (const vcgen::Obligation &O : Vc.Obligations) {
    if (O.Description.find("local condition 'a'") != std::string::npos)
      ++LcA;
    if (O.Description.find("local condition 'b'") != std::string::npos)
      ++LcB;
  }
  EXPECT_EQ(LcA, 1u);
  EXPECT_EQ(LcB, 1u);

  // And the module verifies end-to-end — impact sets included: the
  // overlay's obligations are jointly dischargeable.
  ModuleResult R = verify(Src);
  EXPECT_TRUE(R.allVerified())
      << (R.Procs.empty() ? std::string() : R.Procs[0].FailedObligation);
}

TEST(VcGenTest, MultiGroupImpactGrowsBothBrokenSets) {
  // A shared field's multi-group impact clause: one Mut pushes the
  // mutated node into BOTH groups' broken sets, so forgetting either
  // group's AssertLCAndRemove leaves the postcondition refutable.
  auto Run = [&](const std::string &Repairs) {
    ModuleResult R = verify(overlayWith(Repairs));
    return R.allVerified();
  };
  EXPECT_TRUE(Run("AssertLCAndRemove(a, v);\n  AssertLCAndRemove(b, v);"));
  EXPECT_FALSE(Run("AssertLCAndRemove(a, v);"));
  EXPECT_FALSE(Run("AssertLCAndRemove(b, v);"));
}
