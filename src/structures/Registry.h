//===- structures/Registry.h - Embedded benchmark suite --------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Table 2 benchmark suite: every data structure of the paper's
/// evaluation, re-authored in the IDS surface language with FWYB
/// annotations, embedded as sources so tests/benches/examples are
/// self-contained.
///
/// Each entry is metadata-driven: besides the source, a benchmark
/// carries a description, classification tags, the per-procedure
/// verdicts it is expected to produce, and an optional default
/// theory-check budget for procedures known to exceed the solver's reach
/// (surfaced here instead of being hardcoded in drivers and CI scripts).
///
//===----------------------------------------------------------------------===//

#ifndef IDS_STRUCTURES_REGISTRY_H
#define IDS_STRUCTURES_REGISTRY_H

#include <cstdint>
#include <string>
#include <vector>

namespace ids {
namespace structures {

/// Expected verdict of one procedure under the default pipeline (with the
/// benchmark's DefaultBudget applied, when set).
struct ProcExpectation {
  const char *Proc;
  const char *Status; ///< "verified" | "unknown" | "failed"
};

struct Benchmark {
  /// Registry key, e.g. "singly-linked-list".
  const char *Name;
  /// Display name matching Table 2, e.g. "Singly-Linked List".
  const char *Table2Name;
  /// One-line description of the structure and what it exercises.
  const char *Description;
  /// Comma-separated classification tags, e.g. "list,sorted,arith".
  const char *Tags;
  /// Default per-query theory-check budget applied by `--benchmark all`
  /// (when the user did not pass --budget) and by bench_table2; 0 means
  /// unbudgeted (every procedure is expected to verify outright).
  uint64_t DefaultBudget;
  /// Expected per-procedure statuses under the default pipeline.
  std::vector<ProcExpectation> Expected;
  /// Full module source (structure + procedures).
  const char *Source;

  /// Expected status of \p Proc; nullptr when the procedure is unknown.
  const char *expectedStatus(const std::string &Proc) const {
    for (const ProcExpectation &E : Expected)
      if (Proc == E.Proc)
        return E.Status;
    return nullptr;
  }
};

/// All benchmarks in Table 2 order.
const std::vector<Benchmark> &allBenchmarks();

/// Benchmark metadata by registry key; nullptr when unknown.
const Benchmark *findBenchmark(const std::string &Name);

/// Source by registry key; nullptr when unknown (convenience wrapper).
const char *findBenchmarkSource(const std::string &Name);

} // namespace structures
} // namespace ids

#endif // IDS_STRUCTURES_REGISTRY_H
