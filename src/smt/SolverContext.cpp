//===- smt/SolverContext.cpp - Incremental SMT solving --------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "smt/SolverContext.h"

#include "smt/SmtCounters.h"
#include "support/Log.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace ids;
using namespace ids::smt;

SolverContext::SolverContext(TermManager &TM, SolverOptions O)
    : Core(TM, std::move(O)),
      Reducer(TM, Core.Opts.EagerArrayInstantiation
                      ? ArrayReducer::Mode::Eager
                      : (Core.Opts.LazyArrayInstantiation
                             ? ArrayReducer::Mode::Lazy
                             : ArrayReducer::Mode::Demand)),
      Engine(Core, /*Persistent=*/true) {
  assert(!Core.Opts.AllowQuantifiers &&
         "SolverContext is quantifier-free only");
  LevelAsserts.emplace_back();
  Core.EncodingLog = &EncodingLog;
  Core.Sat.setClauseDeletion(Core.Opts.ClauseDeletion);
  Core.Sat.setTheoryPropagation(Core.Opts.TheoryPropagation);
  if (Core.Opts.ReduceDbLimit)
    Core.Sat.setReduceDbLimit(Core.Opts.ReduceDbLimit);
  if (Reducer.lazy())
    Core.Reducer = &Reducer;
}

SolverContext::~SolverContext() = default;

void SolverContext::push() {
  if (NeedReset) {
    Core.Sat.resetToRoot();
    NeedReset = false;
  }
  Core.Sat.pushAssertLevel();
  Reducer.push();
  Engine.pushAssertionFrame();
  LevelAsserts.emplace_back();
  EncodingMarks.push_back(EncodingLog.size());
}

void SolverContext::pop() {
  assert(LevelAsserts.size() > 1 && "pop without matching push");
  Core.Sat.resetToRoot();
  NeedReset = false;
  Core.Sat.popAssertLevel();
  Reducer.pop();
  Engine.popAssertionFrame();
  LevelAsserts.pop_back();
  // Invalidate Tseitin encodings whose defining clauses just died.
  size_t Mark = EncodingMarks.back();
  EncodingMarks.pop_back();
  while (EncodingLog.size() > Mark) {
    Core.LitCache.erase(EncodingLog.back());
    EncodingLog.pop_back();
  }
}

void SolverContext::assertTerm(TermRef F) {
  assert(!Core.TM.containsQuantifier(F) &&
         "quantifier asserted into a QF context");
  if (NeedReset) {
    Core.Sat.resetToRoot();
    NeedReset = false;
  }
  TermRef Lifted = liftItes(Core.TM, F);
  LevelAsserts.back().push_back(Lifted);
  std::vector<TermRef> Lemmas = Reducer.assertFormula(Lifted);
  sat::Lit Root = Core.litFor(Lifted);
  Core.Sat.addClause({Root});
  for (TermRef L : Lemmas) {
    sat::Lit LL = Core.litFor(L);
    Core.Sat.addClause({LL});
  }
  // Pre-register the theory structure of everything just encoded (a no-op
  // under --no-theory-prop): term graph and watches land at the current
  // assertion frame, so batch members re-register only their own delta on
  // top of the pinned shared prefix.
  Engine.preRegister(Lifted);
  for (TermRef L : Lemmas)
    Engine.preRegister(L);
  flushRegistrationCounter();
}

void SolverContext::flushRegistrationCounter() {
  smtCounters().CcRegistrationsReused.add(Core.St.CcRegistrationsReused -
                                          CcReusedFlushed);
  CcReusedFlushed = Core.St.CcRegistrationsReused;
}

SolverContext::Result SolverContext::checkSat() {
  if (NeedReset) {
    Core.Sat.resetToRoot();
    NeedReset = false;
  }
  // Per-check counter windows (level-safe stats: deltas, not cumulative
  // bleed-through).
  uint64_t ChecksBefore = Core.St.TheoryChecks;
  uint64_t GiveUpsBefore = Core.St.ModelGiveUps;
  uint64_t ReusedBefore = Core.St.TheoryAssertsReused;
  uint64_t RetainedBefore = Core.Sat.numLemmasRetained();
  uint64_t DecisionsBefore = Core.Sat.numDecisions();
  uint64_t ConflictsBefore = Core.Sat.numConflicts();
  uint64_t TConflictsBefore = Core.Sat.numTheoryConflicts();
  uint64_t PropsBefore = Core.St.EqualitiesPropagated;
  uint64_t RepairsBefore = Core.St.ModelRepairs;
  uint64_t DeletedBefore = Core.Sat.numLemmasDeleted();
  uint64_t SweepsBefore = Core.Sat.numReduceDbSweeps();
  uint64_t RestartsBefore = Core.Sat.numRestarts();
  uint64_t LazyBefore = Core.St.LazyInstantiations;
  uint64_t TheoryPropsBefore = Core.Sat.numTheoryPropagations();
  uint64_t PropConflictsBefore = Core.Sat.numTheoryPropConflicts();
  unsigned ArrayLemmasBefore = Reducer.stats().NumLemmas;
  Core.PendingInstantiations.clear();
  Core.BudgetExhausted = false;
  Core.TheoryCheckBase = Core.St.TheoryChecks;
  Core.SolveDeadline =
      Core.Opts.TimeoutSeconds == 0
          ? 0
          : std::chrono::duration<double>(
                std::chrono::steady_clock::now().time_since_epoch())
                    .count() +
                Core.Opts.TimeoutSeconds;

  // The evaluation safety net sees exactly the active assertions.
  std::vector<TermRef> Active;
  for (const std::vector<TermRef> &Lvl : LevelAsserts)
    for (TermRef T : Lvl)
      Active.push_back(T);
  Core.EvalFormula = Core.TM.mkAnd(std::move(Active));
  Core.St.NumAtoms = static_cast<unsigned>(Core.Atoms.size());

  Result R;
  if (Core.EvalFormula == Core.TM.mkFalse()) {
    R = Result::Unsat;
  } else if (Core.Sat.unsatAtCurrentLevel()) {
    R = Result::Unsat;
  } else if (Core.EvalFormula == Core.TM.mkTrue()) {
    R = Result::Sat;
    Core.CurrentModel = Model();
  } else {
    logging::debugf("smt",
                    "incremental check: level=%u atoms=%zu satvars=%d "
                    "clauses=%u lemmas=%u\n",
                    Core.Sat.assertLevel(), Core.Atoms.size(),
                    Core.Sat.numVars(), Core.Sat.numClauses(),
                    Reducer.stats().NumLemmas);
    sat::SatSolver::Result SR = Core.Sat.solve(&Engine);
    NeedReset = true;
    Core.St.SatConflicts = Core.Sat.numConflicts();
    Core.St.SatDecisions = Core.Sat.numDecisions();
    Core.St.TheoryConflicts = Core.Sat.numTheoryConflicts();
    if (Core.BudgetExhausted)
      R = Result::Unknown;
    else
      R = SR == sat::SatSolver::Result::Unsat ? Result::Unsat : Result::Sat;
  }

  Core.St.LemmasRetained = Core.Sat.numLemmasRetained();
  Core.St.TheoryPropagations = Core.Sat.numTheoryPropagations();
  Core.St.PropagationConflicts = Core.Sat.numTheoryPropConflicts();
  Core.St.ArrayStats = Reducer.stats();
  LastCheck.R = R;
  LastCheck.TheoryChecks = Core.St.TheoryChecks - ChecksBefore;
  LastCheck.ModelGiveUps = Core.St.ModelGiveUps - GiveUpsBefore;
  LastCheck.TheoryAssertsReused = Core.St.TheoryAssertsReused - ReusedBefore;
  LastCheck.LemmasRetained = Core.Sat.numLemmasRetained() - RetainedBefore;
  LastCheck.NumAtoms = static_cast<unsigned>(Core.Atoms.size());
  LastCheck.NumArrayLemmas = Reducer.stats().NumLemmas;
  LastCheck.LazyInstantiations = Core.St.LazyInstantiations - LazyBefore;
  LastCheck.TheoryPropagations =
      Core.Sat.numTheoryPropagations() - TheoryPropsBefore;
  LastCheck.PropagationConflicts =
      Core.Sat.numTheoryPropConflicts() - PropConflictsBefore;

  SmtCounters &TC = smtCounters();
  TC.CheckSats.add();
  TC.Decisions.add(Core.Sat.numDecisions() - DecisionsBefore);
  TC.Conflicts.add(Core.Sat.numConflicts() - ConflictsBefore);
  TC.TheoryConflicts.add(Core.Sat.numTheoryConflicts() - TConflictsBefore);
  TC.TheoryChecks.add(LastCheck.TheoryChecks);
  TC.Propagations.add(Core.St.EqualitiesPropagated - PropsBefore);
  TC.ModelRepairs.add(Core.St.ModelRepairs - RepairsBefore);
  TC.ModelGiveUps.add(LastCheck.ModelGiveUps);
  TC.AssertsReused.add(LastCheck.TheoryAssertsReused);
  TC.LemmasRetained.add(LastCheck.LemmasRetained);
  TC.ArrayLemmas.add(Reducer.stats().NumLemmas - ArrayLemmasBefore);
  TC.MaxAtoms.recordMax(LastCheck.NumAtoms);
  TC.LemmasDeleted.add(Core.Sat.numLemmasDeleted() - DeletedBefore);
  TC.ReduceDbSweeps.add(Core.Sat.numReduceDbSweeps() - SweepsBefore);
  TC.Restarts.add(Core.Sat.numRestarts() - RestartsBefore);
  TC.LazyInstantiations.add(LastCheck.LazyInstantiations);
  TC.TheoryPropagations.add(LastCheck.TheoryPropagations);
  TC.PropagationConflicts.add(LastCheck.PropagationConflicts);
  // In-search lemma flushes pre-register too; pick up their reuse delta.
  flushRegistrationCounter();
  return R;
}

SolverContext::Result SolverContext::checkSatAssuming(TermRef Assumption) {
  push();
  assertTerm(Assumption);
  Result R = checkSat();
  pop();
  return R;
}
