//===- lang/TypeCheck.h - Name resolution and type checking ----*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name resolution and type checking for the IDS surface language. Fills
/// in Expr::Ty. Also enforces the structural restrictions the paper's
/// decidability argument needs: multiplication only by literals (linear
/// arithmetic), division only by non-zero literals into `rat`, and the
/// disjoint-union operator (`duplus`, the paper's ⊎) only as the direct
/// right-hand side of an equality.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_LANG_TYPECHECK_H
#define IDS_LANG_TYPECHECK_H

#include "lang/Ast.h"

namespace ids {
namespace lang {

/// Type-checks \p M in place; returns false and reports through \p Diags
/// on error.
bool typeCheck(Module &M, DiagEngine &Diags);

} // namespace lang
} // namespace ids

#endif // IDS_LANG_TYPECHECK_H
