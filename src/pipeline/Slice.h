//===- pipeline/Slice.h - Cone-of-influence obligation slicing -*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-obligation cone-of-influence slicing: a guard conjunct can only
/// affect the claim if its symbols (free variables and uninterpreted
/// function symbols) reach the claim's symbols through a chain of shared
/// symbols. Conjuncts outside that cone are dropped before solving.
///
/// Slicing weakens the guard, so an Unsat answer on the sliced query
/// (obligation proved) carries over to the original; a Sat answer does
/// not — the dropped conjuncts might themselves be infeasible (a
/// contradictory path condition over unrelated symbols). The pipeline
/// therefore re-checks the unsliced obligation before reporting a
/// failure, keeping the transform verdict-preserving end to end.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_PIPELINE_SLICE_H
#define IDS_PIPELINE_SLICE_H

#include "smt/Term.h"

#include <vector>

namespace ids {
namespace pipeline {

struct SliceStats {
  unsigned ConjunctsKept = 0;
  unsigned ConjunctsDropped = 0;
};

/// Returns the subset of \p Conjuncts inside the claim's cone of
/// influence (in the original order). When the claim has no symbols
/// (a constant claim) no slicing is attempted and all conjuncts are
/// returned.
std::vector<smt::TermRef> sliceGuard(const std::vector<smt::TermRef> &Conjuncts,
                                     smt::TermRef Claim,
                                     SliceStats *St = nullptr);

} // namespace pipeline
} // namespace ids

#endif // IDS_PIPELINE_SLICE_H
