//===- tests/pipeline/SimplifyTest.cpp - Simplifier unit tests -------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the VC simplifier: the extra rewrite rules beyond the
/// smart constructors (complement collapse, read-over-write resolution,
/// select expansion over pointwise maps), rewrite idempotence, and
/// guard-equality substitution including its soundness-critical occurs
/// and simultaneity checks.
///
//===----------------------------------------------------------------------===//

#include "pipeline/Simplify.h"

#include <gtest/gtest.h>

using namespace ids;
using namespace ids::pipeline;
using namespace ids::smt;

namespace {

class SimplifyTest : public ::testing::Test {
protected:
  TermManager TM;
  Simplifier Simp{TM};

  TermRef intVar(const char *Name) { return TM.mkVar(Name, TM.intSort()); }
  TermRef boolVar(const char *Name) { return TM.mkVar(Name, TM.boolSort()); }
  TermRef arrVar(const char *Name) {
    return TM.mkVar(Name, TM.getArraySort(TM.intSort(), TM.intSort()));
  }
};

TEST_F(SimplifyTest, ComplementCollapseInAnd) {
  TermRef P = boolVar("p"), Q = boolVar("q");
  TermRef T = TM.mkAnd({P, Q, TM.mkNot(P)});
  EXPECT_EQ(Simp.rewrite(T), TM.mkFalse());
}

TEST_F(SimplifyTest, ComplementCollapseInOr) {
  TermRef X = intVar("x"), Y = intVar("y");
  TermRef A = TM.mkLe(X, Y);
  TermRef T = TM.mkOr({A, TM.mkNot(A)});
  EXPECT_EQ(Simp.rewrite(T), TM.mkTrue());
}

TEST_F(SimplifyTest, ReadOverWriteDistinctConstIndices) {
  TermRef A = arrVar("a");
  TermRef X = intVar("x"), Y = intVar("y");
  // select(store(store(a, 1, x), 2, y), 1): the outer store's index 2 is
  // provably distinct from 1; the inner store hits.
  TermRef T = TM.mkSelect(
      TM.mkStore(TM.mkStore(A, TM.mkIntConst(1), X), TM.mkIntConst(2), Y),
      TM.mkIntConst(1));
  ASSERT_EQ(T->getKind(), TermKind::Select) << "smart ctor must not resolve";
  EXPECT_EQ(Simp.rewrite(T), X);
}

TEST_F(SimplifyTest, ReadOverWriteStopsAtMaybeAliasingIndex) {
  TermRef A = arrVar("a");
  TermRef I = intVar("i"), X = intVar("x");
  // select(store(a, i, x), 0) cannot resolve: i may equal 0.
  TermRef T = TM.mkSelect(TM.mkStore(A, I, X), TM.mkIntConst(0));
  EXPECT_EQ(Simp.rewrite(T), T);
}

TEST_F(SimplifyTest, SelectExpandsOverSetOperations) {
  const Sort *SetSort = TM.getArraySort(TM.intSort(), TM.boolSort());
  TermRef S1 = TM.mkVar("s1", SetSort), S2 = TM.mkVar("s2", SetSort);
  TermRef K = intVar("k");
  TermRef T = TM.mkMember(K, TM.mkSetUnion(S1, S2));
  TermRef R = Simp.rewrite(T);
  EXPECT_EQ(R, TM.mkOr(TM.mkSelect(S1, K), TM.mkSelect(S2, K)));

  // Membership in a freshly inserted element resolves outright.
  TermRef Ins = TM.mkMember(K, TM.mkSetInsert(TM.mkEmptySet(TM.intSort()), K));
  EXPECT_EQ(Simp.rewrite(Ins), TM.mkTrue());
}

TEST_F(SimplifyTest, SelectExpandsOverPwIte) {
  const Sort *SetSort = TM.getArraySort(TM.intSort(), TM.boolSort());
  const Sort *ArrSort = TM.getArraySort(TM.intSort(), TM.intSort());
  TermRef G = TM.mkVar("g", SetSort);
  TermRef A = TM.mkVar("a", ArrSort), B = TM.mkVar("b", ArrSort);
  TermRef K = intVar("k");
  TermRef T = TM.mkSelect(TM.mkPwIte(G, A, B), K);
  EXPECT_EQ(Simp.rewrite(T),
            TM.mkIte(TM.mkSelect(G, K), TM.mkSelect(A, K),
                     TM.mkSelect(B, K)));
}

TEST_F(SimplifyTest, RewriteIsIdempotentOnRandomTerms) {
  // A small deterministic corpus mixing every operator family.
  std::vector<TermRef> Corpus;
  TermRef X = intVar("x"), Y = intVar("y"), Z = intVar("z");
  TermRef P = boolVar("p"), Q = boolVar("q");
  TermRef A = arrVar("a");
  Corpus.push_back(TM.mkAnd({P, TM.mkOr(Q, TM.mkNot(P)), TM.mkLe(X, Y)}));
  Corpus.push_back(TM.mkIte(TM.mkEq(X, Y), TM.mkAdd(X, Z), Y));
  Corpus.push_back(
      TM.mkSelect(TM.mkStore(TM.mkStore(A, TM.mkIntConst(3), X), Y, Z), X));
  Corpus.push_back(TM.mkEq(TM.mkSelect(A, TM.mkAdd(X, TM.mkIntConst(1))), Y));
  Corpus.push_back(TM.mkImplies(TM.mkLt(X, Y), TM.mkLe(X, Y)));
  Corpus.push_back(TM.mkNot(TM.mkAnd(P, TM.mkNot(P))));
  for (TermRef T : Corpus) {
    TermRef Once = Simp.rewrite(T);
    EXPECT_EQ(Simp.rewrite(Once), Once);
  }
}

TEST_F(SimplifyTest, GuardEqualitySubstitutionDischargesObligation) {
  // x == 3 /\ y == x + 1  =>  y <= 4 folds closed.
  TermRef X = intVar("x"), Y = intVar("y");
  TermRef Guard = TM.mkAnd(TM.mkEq(X, TM.mkIntConst(3)),
                           TM.mkEq(Y, TM.mkAdd(X, TM.mkIntConst(1))));
  TermRef Claim = TM.mkLe(Y, TM.mkIntConst(4));
  SimplifyStats St;
  EXPECT_TRUE(Simp.simplifyObligation(Guard, Claim, &St));
  EXPECT_GE(St.EqualitiesSubstituted, 2u);
  EXPECT_EQ(St.ProvedTrivially, 1u);
}

TEST_F(SimplifyTest, BooleanLiteralConjunctsPropagate) {
  // p /\ !q  =>  (p \/ q) rewrites closed.
  TermRef P = boolVar("p"), Q = boolVar("q");
  TermRef Guard = TM.mkAnd(P, TM.mkNot(Q));
  TermRef Claim = TM.mkOr(P, Q);
  EXPECT_TRUE(Simp.simplifyObligation(Guard, Claim));
}

TEST_F(SimplifyTest, CyclicEqualitiesAreNotBothEliminated) {
  // x == y /\ y == x must not drop both equalities; the obligation
  // x == y => f-free claim x <= y must still be provable and, critically,
  // y <= x + 1 must NOT be weakened into an unconstrained claim.
  TermRef X = intVar("x"), Y = intVar("y");
  TermRef Guard = TM.mkAnd(TM.mkEq(X, Y), TM.mkEq(Y, X));
  TermRef Claim = TM.mkLe(X, Y);
  // mkEq interns both conjuncts identically, so this reduces to x == y;
  // substitution maps one variable onto the other and the claim folds.
  EXPECT_TRUE(Simp.simplifyObligation(Guard, Claim));
}

TEST_F(SimplifyTest, ChainedDefinitionsKeepConstraints) {
  // x == f(y)-style chains via arrays: x == a[y] /\ y == 2 => x == a[2].
  TermRef X = intVar("x"), Y = intVar("y");
  TermRef A = arrVar("a");
  TermRef Guard = TM.mkAnd(TM.mkEq(X, TM.mkSelect(A, Y)),
                           TM.mkEq(Y, TM.mkIntConst(2)));
  TermRef Claim = TM.mkEq(X, TM.mkSelect(A, TM.mkIntConst(2)));
  EXPECT_TRUE(Simp.simplifyObligation(Guard, Claim));
}

TEST_F(SimplifyTest, GuardFalseDischarges) {
  TermRef X = intVar("x");
  TermRef Guard = TM.mkAnd(TM.mkLe(X, TM.mkIntConst(1)),
                           TM.mkEq(X, TM.mkIntConst(5)));
  // After substituting x := 5 the first conjunct folds to false.
  TermRef Claim = TM.mkEq(intVar("unrelated"), TM.mkIntConst(0));
  EXPECT_TRUE(Simp.simplifyObligation(Guard, Claim));
}

TEST_F(SimplifyTest, UnprovableObligationIsNotDischarged) {
  TermRef X = intVar("x"), Y = intVar("y");
  TermRef Guard = TM.mkLe(X, Y);
  TermRef Claim = TM.mkLe(Y, X);
  EXPECT_FALSE(Simp.simplifyObligation(Guard, Claim));
}

} // namespace
