//===- pipeline/QueryCache.cpp - Structural query result cache -------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
//
// On-disk format (version tag IDSQC v1), append-only, one record per
// definitive outcome:
//
//   IDSQC v1\n
//   U <lo-hex> <hi-hex> <atoms> <lemmas>\n
//   S <lo-hex> <hi-hex> <atoms> <lemmas> <model-bytes>\n<model>\n
//
// A torn tail record (process killed mid-append) truncates the load at
// the last complete record instead of failing it; the next append goes
// after whatever was readable, so a rare duplicate record is possible
// and harmless (last load wins, outcomes are deterministic).
//
//===----------------------------------------------------------------------===//

#include "pipeline/QueryCache.h"

#include "support/Trace.h"

#include <cinttypes>
#include <filesystem>

using namespace ids;
using namespace ids::pipeline;

QueryCache::~QueryCache() {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Append)
    fclose(Append);
}

bool QueryCache::lookup(const Key &K, Outcome &Out) const {
  static trace::Counter &Lookups = trace::counter("cache.query_lookups");
  static trace::Counter &Hits = trace::counter("cache.query_hits");
  static trace::Counter &DiskHits = trace::counter("cache.query_disk_hits");
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Stats.Lookups;
  Lookups.add();
  auto It = Map.find(K);
  if (It == Map.end())
    return false;
  ++Stats.Hits;
  Hits.add();
  if (It->second.FromDisk) {
    ++Stats.DiskHits;
    DiskHits.add();
  }
  Out = It->second.O;
  return true;
}

void QueryCache::insert(const Key &K, Outcome O) {
  // Unknown is a property of the budget/timeout that produced it, not of
  // the query; caching one would answer a later, better-resourced solve
  // of the same query with the starved verdict. Drop it at the door so no
  // caller can poison the cache (least of all the persistent one).
  if (O.R == smt::Solver::Result::Unknown)
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  auto [It, Inserted] = Map.emplace(K, Entry{std::move(O), false});
  if (Inserted && Append)
    appendLocked(K, It->second.O);
}

size_t QueryCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Map.size();
}

QueryCache::DiskStats QueryCache::diskStats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Stats;
}

void QueryCache::appendLocked(const Key &K, const Outcome &O) {
  // The whole record is marshalled into one buffer and handed to the
  // unbuffered append stream as a SINGLE fwrite — one write(2) on an
  // O_APPEND descriptor, which the kernel serializes at EOF. The mutex
  // serializes writers within this process; the single-write record is
  // what keeps concurrent --cache-dir PROCESSES from interleaving the
  // multi-line Sat records mid-record (a torn tail from a crash is still
  // possible and still tolerated by loadLocked).
  char Header[96];
  int Len;
  if (O.R == smt::Solver::Result::Sat)
    Len = snprintf(Header, sizeof(Header),
                   "S %016" PRIx64 " %016" PRIx64 " %u %u %zu\n", K.Lo, K.Hi,
                   O.NumAtoms, O.NumArrayLemmas, O.ModelText.size());
  else
    Len = snprintf(Header, sizeof(Header),
                   "U %016" PRIx64 " %016" PRIx64 " %u %u\n", K.Lo, K.Hi,
                   O.NumAtoms, O.NumArrayLemmas);
  std::string Rec(Header, Len);
  if (O.R == smt::Solver::Result::Sat) {
    Rec += O.ModelText;
    Rec += '\n';
  }
  fwrite(Rec.data(), 1, Rec.size(), Append);
  ++Stats.Appended;
  static trace::Counter &Appended = trace::counter("cache.query_appended");
  Appended.add();
}

size_t QueryCache::loadLocked(std::FILE *F) {
  size_t Loaded = 0;
  char Tag;
  while (fscanf(F, " %c", &Tag) == 1) {
    Key K;
    Outcome O;
    unsigned Atoms = 0, Lemmas = 0;
    if (Tag == 'U') {
      if (fscanf(F, "%" SCNx64 " %" SCNx64 " %u %u", &K.Lo, &K.Hi, &Atoms,
                 &Lemmas) != 4)
        break;
      O.R = smt::Solver::Result::Unsat;
    } else if (Tag == 'S') {
      size_t Len = 0;
      if (fscanf(F, "%" SCNx64 " %" SCNx64 " %u %u %zu", &K.Lo, &K.Hi, &Atoms,
                 &Lemmas, &Len) != 5)
        break;
      if (fgetc(F) != '\n') // the newline terminating the record header
        break;
      O.ModelText.resize(Len);
      if (Len > 0 && fread(&O.ModelText[0], 1, Len, F) != Len)
        break;
      O.R = smt::Solver::Result::Sat;
    } else {
      break; // unknown tag: stop at the last well-formed record
    }
    O.NumAtoms = Atoms;
    O.NumArrayLemmas = Lemmas;
    Map[K] = Entry{std::move(O), /*FromDisk=*/true};
    ++Loaded;
  }
  return Loaded;
}

bool QueryCache::attachDir(const std::string &Dir, std::string &Error) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Append) {
    Error = "query cache already attached to a directory";
    return false;
  }
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  if (Ec) {
    Error = "cannot create cache directory '" + Dir + "': " + Ec.message();
    return false;
  }
  std::string Path = Dir + "/" + FileName;
  bool Fresh = true;
  if (std::FILE *In = fopen(Path.c_str(), "rb")) {
    char Header[32] = {0};
    if (fgets(Header, sizeof(Header), In) &&
        std::string(Header) == std::string(FileHeader) + "\n") {
      Stats.LoadedFromDisk = loadLocked(In);
      Fresh = false;
    }
    // Missing or mismatched header: a different format version (or not
    // our file at all) — discard and start fresh below.
    fclose(In);
  }
  Append = fopen(Path.c_str(), Fresh ? "wb" : "ab");
  if (!Append) {
    Error = "cannot open cache file '" + Path + "' for writing";
    return false;
  }
  // Unbuffered: appendLocked marshals each record into one fwrite, and
  // an unbuffered stream maps that to one write(2) — the record can't be
  // split across syscalls and interleaved with another process's append.
  setvbuf(Append, nullptr, _IONBF, 0);
  if (Fresh) {
    fprintf(Append, "%s\n", FileHeader);
    // Entries inserted before attachDir (memory-only phase) are worth
    // persisting too.
    for (const auto &KV : Map)
      appendLocked(KV.first, KV.second.O);
  }
  return true;
}
