//===- structures/Bst.cpp - Binary search tree benchmark -------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Intrinsic definition of binary search trees (Appendix D.2 of the
/// paper): parent pointers, rational ranks that strictly decrease
/// downwards (acyclicity), and min/max maps that localise the BST
/// ordering. Methods: find (search by key) and the fully annotated
/// right-rotation of Appendix D.2.
///
//===----------------------------------------------------------------------===//

#include "structures/Sources.h"

const char *ids::structures::BstSource = R"IDS(
structure Bst {
  field l: Loc;
  field r: Loc;
  field key: int;
  ghost field p: Loc;
  ghost field rank: rat;
  ghost field min: int;
  ghost field max: int;

  // Appendix D.2's local condition.
  local t (x) {
    x.min <= x.key && x.key <= x.max
    && (x.p != nil ==> (x.p.l == x || x.p.r == x))
    && (x.l == nil ==> x.min == x.key)
    && (x.l != nil ==>
          x.l.p == x && x.l.rank < x.rank
       && x.l.max < x.key && x.min == x.l.min)
    && (x.r == nil ==> x.max == x.key)
    && (x.r != nil ==>
          x.r.p == x && x.r.rank < x.rank
       && x.key < x.r.min && x.max == x.r.max)
  }

  correlation (y) { y.p == nil }

  // Appendix D.2's impact table.
  impact l    [t] { x, old(x.l) }
  impact r    [t] { x, old(x.r) }
  impact p    [t] { x, old(x.p) }
  impact key  [t] { x }
  impact min  [t] { x, x.p }
  impact max  [t] { x, x.p }
  impact rank [t] { x, x.p }
}

// Search by key, walking the ordering maps.
procedure find(root: Loc, k: int) returns (res: Loc)
  requires br(t) == {}
  requires root != nil
  ensures  br(t) == {}
  ensures  res != nil ==> res.key == k
{
  var cur: Loc;
  cur := root;
  res := nil;
  while (cur != nil && res == nil)
    invariant br(t) == {}
    invariant res != nil ==> res.key == k
  {
    InferLCOutsideBr(t, cur);
    if (cur.key == k) {
      res := cur;
    } else {
      if (k < cur.key) {
        cur := cur.l;
      } else {
        cur := cur.r;
      }
    }
  }
}

// Appendix D.2: right rotation at x (y = x.l becomes the subtree root).
procedure rotate_right(x: Loc, xp: Loc) returns (ret: Loc)
  requires br(t) == {}
  requires x != nil && x.l != nil && x.p == xp
  requires xp != nil ==> xp.rank > x.rank
  ensures  br(t) == {}
  ensures  ret == old(x.l) && ret.p == xp
  ensures  ret.r == x && x.p == ret
  ensures  ret.l == old(x.l.l) && x.l == old(x.l.r) && x.r == old(x.r)
  ensures  ret.min == old(x.min) && ret.max == old(x.max)
  ensures  xp != nil ==> xp.rank > ret.rank
  ensures  xp != nil ==> (old(xp.l) == x ==> xp.l == ret)
  ensures  xp != nil ==> (old(xp.r) == x ==> xp.r == ret)
  modifies {x, x.l, x.l.r, x.p}
{
  var y: Loc;
  var mid: Loc;
  InferLCOutsideBr(t, x);
  y := x.l;
  InferLCOutsideBr(t, y);
  mid := y.r;
  if (mid != nil) {
    InferLCOutsideBr(t, mid);
  }
  if (xp != nil) {
    InferLCOutsideBr(t, xp);
    if (xp.l == x) {
      Mut(xp.l, y);
    } else {
      Mut(xp.r, y);
    }
  }
  Mut(x.l, mid);
  ghost {
    if (mid != nil) {
      Mut(mid.p, x);
    }
  }
  Mut(y.r, x);
  ghost {
    Mut(x.p, y);
    Mut(y.p, xp);
    Mut(x.min, ite(mid == nil, x.key, mid.min));
    Mut(y.max, x.max);
    Mut(y.rank, ite(xp == nil, x.rank + 1, (xp.rank + x.rank) / 2));
  }
  ghost {
    if (mid != nil) {
      AssertLCAndRemove(t, mid);
    }
  }
  AssertLCAndRemove(t, x);
  AssertLCAndRemove(t, y);
  if (xp != nil) {
    AssertLCAndRemove(t, xp);
  }
  ret := y;
}
)IDS";
