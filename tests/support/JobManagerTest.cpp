//===- tests/support/JobManagerTest.cpp -----------------------------------===//
//
// Unit suite for the work-stealing JobManager: steal distribution,
// dependency ordering, dynamic spawn, exception propagation, and
// deterministic shutdown. Every multi-threaded test is written so the
// assertion holds on any interleaving — no sleeps, no timing windows.
//
//===----------------------------------------------------------------------===//

#include "support/JobManager.h"
#include "support/Trace.h"

#include "gtest/gtest.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

using ids::jobs::JobManager;

namespace {

TEST(JobManagerTest, ResolveJobs) {
  EXPECT_EQ(JobManager::resolveJobs(1), 1u);
  EXPECT_EQ(JobManager::resolveJobs(7), 7u);
  EXPECT_GE(JobManager::resolveJobs(0), 1u);
}

TEST(JobManagerTest, RunsAllTasks) {
  for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
    JobManager JM(Jobs);
    std::atomic<int> Count{0};
    for (int I = 0; I < 100; ++I)
      JM.submit([&Count] { Count.fetch_add(1); });
    JM.wait();
    EXPECT_EQ(Count.load(), 100) << "jobs=" << Jobs;
  }
}

TEST(JobManagerTest, InlineModeRunsInSubmissionOrder) {
  JobManager JM(1);
  std::vector<int> Order;
  for (int I = 0; I < 10; ++I)
    JM.submit([&Order, I] { Order.push_back(I); });
  EXPECT_TRUE(Order.empty()) << "inline tasks must not run before wait()";
  JM.wait();
  ASSERT_EQ(Order.size(), 10u);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(Order[I], I);
}

TEST(JobManagerTest, WaitIsReusable) {
  JobManager JM(2);
  std::atomic<int> Count{0};
  JM.submit([&Count] { Count.fetch_add(1); });
  JM.wait();
  EXPECT_EQ(Count.load(), 1);
  JM.submit([&Count] { Count.fetch_add(1); });
  JM.wait();
  EXPECT_EQ(Count.load(), 2);
}

TEST(JobManagerTest, DependencyChainOrdersExecution) {
  for (unsigned Jobs : {1u, 4u}) {
    JobManager JM(Jobs);
    std::vector<int> Order;
    std::mutex OrderMutex;
    auto Record = [&Order, &OrderMutex](int I) {
      std::lock_guard<std::mutex> Lock(OrderMutex);
      Order.push_back(I);
    };
    JobManager::TaskId Prev = JM.submit([&Record] { Record(0); });
    for (int I = 1; I < 20; ++I)
      Prev = JM.submit([&Record, I] { Record(I); }, {Prev});
    JM.wait();
    ASSERT_EQ(Order.size(), 20u) << "jobs=" << Jobs;
    for (int I = 0; I < 20; ++I)
      EXPECT_EQ(Order[I], I) << "jobs=" << Jobs;
  }
}

TEST(JobManagerTest, DiamondDependency) {
  JobManager JM(4);
  std::atomic<bool> RootDone{false};
  std::atomic<int> MidDone{0};
  std::atomic<bool> SinkSawBoth{false};
  JobManager::TaskId Root = JM.submit([&RootDone] { RootDone = true; });
  JobManager::TaskId A = JM.submit(
      [&RootDone, &MidDone] {
        EXPECT_TRUE(RootDone.load());
        MidDone.fetch_add(1);
      },
      {Root});
  JobManager::TaskId B = JM.submit(
      [&RootDone, &MidDone] {
        EXPECT_TRUE(RootDone.load());
        MidDone.fetch_add(1);
      },
      {Root});
  JM.submit([&MidDone, &SinkSawBoth] { SinkSawBoth = MidDone.load() == 2; },
            {A, B});
  JM.wait();
  EXPECT_TRUE(SinkSawBoth.load());
}

TEST(JobManagerTest, DependencyOnCompletedTask) {
  JobManager JM(2);
  std::atomic<int> Count{0};
  JobManager::TaskId First = JM.submit([&Count] { Count.fetch_add(1); });
  JM.wait();
  ASSERT_EQ(Count.load(), 1);
  JM.submit([&Count] { Count.fetch_add(1); }, {First});
  JM.wait();
  EXPECT_EQ(Count.load(), 2);
}

TEST(JobManagerTest, DynamicSpawnFromInsideTask) {
  for (unsigned Jobs : {1u, 4u}) {
    JobManager JM(Jobs);
    std::atomic<int> Count{0};
    JM.submit([&JM, &Count] {
      Count.fetch_add(1);
      for (int I = 0; I < 10; ++I)
        JM.submit([&JM, &Count] {
          Count.fetch_add(1);
          JM.submit([&Count] { Count.fetch_add(1); });
        });
    });
    JM.wait();
    EXPECT_EQ(Count.load(), 21) << "jobs=" << Jobs;
  }
}

// Steal distribution: one spawner task floods its own deque with tasks
// that each block until W-1 of them run concurrently. The only way the
// barrier releases is if W-1 distinct *other* workers steal from the
// spawner's deque — pinning both the steal path and its distribution
// without any timing assumption.
TEST(JobManagerTest, StealsDistributeAcrossWorkers) {
  const unsigned W = 4;
  JobManager JM(W);
  ids::trace::counter("jobs.steals").reset();

  std::mutex M;
  std::condition_variable Cv;
  unsigned Arrived = 0;
  std::set<std::thread::id> Threads;

  JM.submit([&] {
    for (unsigned I = 0; I + 1 < W; ++I)
      JM.submit([&] {
        std::unique_lock<std::mutex> Lock(M);
        Threads.insert(std::this_thread::get_id());
        if (++Arrived == W - 1)
          Cv.notify_all();
        else
          Cv.wait(Lock, [&] { return Arrived == W - 1; });
      });
    // Keep the spawner busy until the waiters release each other so it
    // cannot drain its own deque first.
    std::unique_lock<std::mutex> Lock(M);
    Cv.wait(Lock, [&] { return Arrived == W - 1; });
  });
  JM.wait();

  EXPECT_EQ(Threads.size(), W - 1) << "waiters must run on distinct workers";
  EXPECT_GE(ids::trace::counter("jobs.steals").value(),
            static_cast<uint64_t>(W - 1));
}

TEST(JobManagerTest, TasksCounterTracksSubmissions) {
  ids::trace::counter("jobs.tasks").reset();
  JobManager JM(2);
  for (int I = 0; I < 25; ++I)
    JM.submit([] {});
  JM.wait();
  EXPECT_EQ(ids::trace::counter("jobs.tasks").value(), 25u);
}

TEST(JobManagerTest, ExceptionPropagatesFromWait) {
  for (unsigned Jobs : {1u, 4u}) {
    JobManager JM(Jobs);
    std::atomic<int> Count{0};
    for (int I = 0; I < 10; ++I)
      JM.submit([&Count, I] {
        if (I == 3)
          throw std::runtime_error("task failed");
        Count.fetch_add(1);
      });
    EXPECT_THROW(JM.wait(), std::runtime_error) << "jobs=" << Jobs;
    // The failure does not cancel the other tasks.
    EXPECT_EQ(Count.load(), 9) << "jobs=" << Jobs;
    // The error is consumed: a subsequent wait() is clean.
    JM.submit([&Count] { Count.fetch_add(1); });
    EXPECT_NO_THROW(JM.wait()) << "jobs=" << Jobs;
    EXPECT_EQ(Count.load(), 10) << "jobs=" << Jobs;
  }
}

TEST(JobManagerTest, FirstExceptionWins) {
  JobManager JM(1);
  JM.submit([] { throw std::runtime_error("first"); });
  JM.submit([] { throw std::logic_error("second"); });
  try {
    JM.wait();
    FAIL() << "wait() must rethrow";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "first");
  }
}

TEST(JobManagerTest, DependentsRunAfterFailedDependency) {
  JobManager JM(2);
  std::atomic<bool> DependentRan{false};
  JobManager::TaskId Bad =
      JM.submit([] { throw std::runtime_error("dep failed"); });
  JM.submit([&DependentRan] { DependentRan = true; }, {Bad});
  EXPECT_THROW(JM.wait(), std::runtime_error);
  EXPECT_TRUE(DependentRan.load());
}

// Deterministic shutdown: destroying a manager with tasks still queued
// (wait() never called) must run them all and join every worker — no
// leaks, no hangs, no lost tasks.
TEST(JobManagerTest, DestructorDrainsAndJoins) {
  std::atomic<int> Count{0};
  {
    JobManager JM(4);
    for (int I = 0; I < 50; ++I)
      JM.submit([&Count] { Count.fetch_add(1); });
  }
  EXPECT_EQ(Count.load(), 50);
}

TEST(JobManagerTest, DestructorSwallowsTaskException) {
  std::atomic<int> Count{0};
  {
    JobManager JM(2);
    JM.submit([] { throw std::runtime_error("unobserved"); });
    JM.submit([&Count] { Count.fetch_add(1); });
  }
  EXPECT_EQ(Count.load(), 1);
}

TEST(JobManagerTest, ManyWaitCyclesAreDeterministic) {
  JobManager JM(4);
  std::atomic<int> Count{0};
  for (int Round = 0; Round < 20; ++Round) {
    for (int I = 0; I < 8; ++I)
      JM.submit([&Count] { Count.fetch_add(1); });
    JM.wait();
    EXPECT_EQ(Count.load(), (Round + 1) * 8);
  }
}

} // namespace
