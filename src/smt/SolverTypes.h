//===- smt/SolverTypes.h - Shared solver options/stats ---------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Result/options/statistics types shared by the one-shot Solver and the
/// incremental SolverContext (and the TheoryEngine underneath both).
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SMT_SOLVERTYPES_H
#define IDS_SMT_SOLVERTYPES_H

#include "smt/ArrayReduction.h"

#include <cstdint>

namespace ids {
namespace smt {

enum class SolverResult { Sat, Unsat, Unknown };

struct SolverOptions {
  /// Permit Forall terms and run ground instantiation first (the
  /// "Dafny-style" encoding of RQ3). Off by default: QF-mode asserts
  /// quantifier-freeness, mirroring the paper's cross-check.
  bool AllowQuantifiers = false;
  unsigned QuantRounds = 2;
  unsigned MaxInstPerQuant = 2048;
  /// Iterations of model repair (index-collision separation) before
  /// giving up on the query (SolverResult::Unknown).
  unsigned MaxModelRepairIters = 8;
  /// Resource budget: give up (SolverResult::Unknown) after this many
  /// theory checks per check call. 0 means unlimited. Exhaustion is
  /// reported explicitly — bounded resources, not unpredictable
  /// divergence.
  uint64_t MaxTheoryChecks = 0;
  /// Wall-clock budget per checkSat call in seconds (0 = unlimited).
  double TimeoutSeconds = 0;
  /// Use the blind (quadratic) array instantiation instead of the
  /// relevancy-driven one. The VC pipeline escalates to this when the
  /// relevancy-driven attempt reports Unknown.
  bool EagerArrayInstantiation = false;
  /// Incremental contexts only: defer non-select-rooted array lemmas and
  /// instantiate them from inside the CDCL loop on the first candidate
  /// model that violates them (ArrayReducer::Mode::Lazy). Ignored when
  /// EagerArrayInstantiation is set, and by the one-shot Solver.
  bool LazyArrayInstantiation = false;
  /// Activity-based deletion of cold learned clauses (reduceDB) in the
  /// SAT core. On by default; --no-reduce-db is the differential
  /// baseline.
  bool ClauseDeletion = true;
  /// DPLL(T) theory propagation in incremental contexts: assert atoms
  /// entailed by the partial trail (CC equality watches, arithmetic bound
  /// watches) instead of waiting for a full propositional model, with
  /// incremental registration pinned per assertion frame. On by default;
  /// --no-theory-prop is the differential baseline and restores the
  /// purely lazy full-model behavior bit for bit.
  bool TheoryPropagation = true;
  /// Initial learned-set size that triggers a reduceDB sweep; 0 keeps
  /// the SAT core's default. Tests force frequent sweeps on small
  /// instances with a tiny limit (the limit still grows per sweep, so
  /// search stays terminating).
  unsigned ReduceDbLimit = 0;
};

struct SolverStats {
  uint64_t TheoryChecks = 0;
  uint64_t SatConflicts = 0;
  uint64_t SatDecisions = 0;
  uint64_t TheoryConflicts = 0;
  uint64_t EqualitiesPropagated = 0;
  uint64_t ModelRepairs = 0;
  /// Queries abandoned (Unknown) because model construction failed with
  /// no sound explanation clause available. Formerly these emitted an
  /// unjustified blocking clause, which could manufacture a wrong Unsat.
  uint64_t ModelGiveUps = 0;
  uint64_t Instantiations = 0;
  unsigned NumAtoms = 0;
  /// Incremental-context counters: atom assertions skipped because the
  /// persistent theory engines were already synced to a shared SAT-trail
  /// prefix, and learned clauses retained across pops (theory lemmas).
  uint64_t TheoryAssertsReused = 0;
  uint64_t LemmasRetained = 0;
  /// Deferred array lemmas asserted from inside the CDCL loop (lazy
  /// instantiation mode).
  uint64_t LazyInstantiations = 0;
  /// Theory-propagation counters (incremental contexts): literals asserted
  /// from partial-trail entailment, conflicts detected during partial
  /// sync/propagation, and term registrations skipped because the term
  /// graph was already pinned at a lower assertion frame.
  uint64_t TheoryPropagations = 0;
  uint64_t PropagationConflicts = 0;
  uint64_t CcRegistrationsReused = 0;
  ArrayReductionStats ArrayStats;
};

} // namespace smt
} // namespace ids

#endif // IDS_SMT_SOLVERTYPES_H
