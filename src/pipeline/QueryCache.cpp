//===- pipeline/QueryCache.cpp - Structural query result cache -------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "pipeline/QueryCache.h"

using namespace ids;
using namespace ids::pipeline;

bool QueryCache::lookup(const Key &K, Outcome &Out) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Map.find(K);
  if (It == Map.end())
    return false;
  Out = It->second;
  return true;
}

void QueryCache::insert(const Key &K, Outcome O) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Map.emplace(K, std::move(O));
}

size_t QueryCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Map.size();
}
