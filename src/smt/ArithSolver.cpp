//===- smt/ArithSolver.cpp - Simplex-based linear arithmetic --------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "smt/ArithSolver.h"

#include <cassert>
#include <tuple>

using namespace ids;
using namespace ids::smt;

std::string DeltaRat::toString() const {
  if (D.isZero())
    return R.toString();
  return R.toString() + "+" + D.toString() + "d";
}

void LinTerm::add(int Var, const Rational &C) {
  auto It = Coeffs.find(Var);
  if (It == Coeffs.end()) {
    if (!C.isZero())
      Coeffs.emplace(Var, C);
    return;
  }
  It->second += C;
  if (It->second.isZero())
    Coeffs.erase(It);
}

int ArithSolver::addVar(bool IsIntVar) {
  int V = static_cast<int>(IsInt.size());
  IsInt.push_back(IsIntVar);
  IsBasic.push_back(false);
  Rows.emplace_back();
  Lower.emplace_back();
  Upper.emplace_back();
  Beta.emplace_back();
  return V;
}

int ArithSolver::slackFor(const LinTerm &Poly, Rational &ScaleOut) {
  assert(!Poly.Coeffs.empty());
  // Normalize to a primitive integer coefficient vector with a positive
  // leading coefficient: multiply by the lcm of denominators, divide by
  // the gcd of numerators, flip sign if needed.
  BigInt DenLcm(1);
  for (const auto &[V, C] : Poly.Coeffs) {
    BigInt G = BigInt::gcd(DenLcm, C.denominator());
    DenLcm = DenLcm / G * C.denominator();
  }
  BigInt NumGcd(0);
  for (const auto &[V, C] : Poly.Coeffs) {
    BigInt Scaled = C.numerator() * (DenLcm / C.denominator());
    NumGcd = BigInt::gcd(NumGcd, Scaled);
  }
  Rational Scale(DenLcm, NumGcd); // positive
  bool Flip = Poly.Coeffs.begin()->second.isNegative();
  if (Flip)
    Scale = -Scale;
  ScaleOut = Scale;

  std::vector<std::pair<int, Rational>> Key;
  Key.reserve(Poly.Coeffs.size());
  bool AllInt = true;
  for (const auto &[V, C] : Poly.Coeffs) {
    Key.emplace_back(V, C * Scale);
    AllInt = AllInt && IsInt[V];
  }
  auto It = SlackTable.find(Key);
  if (It != SlackTable.end())
    return It->second;

  int Slack = addVar(AllInt);
  // Build the row over nonbasic variables, substituting rows of any basic
  // variable appearing in the combination, and compute beta.
  std::map<int, Rational> Row;
  DeltaRat Value;
  for (const auto &[V, C] : Key) {
    if (IsBasic[V]) {
      for (const auto &[NB, NC] : Rows[V]) {
        Row[NB] += C * NC;
        if (Row[NB].isZero())
          Row.erase(NB);
      }
    } else {
      Row[V] += C;
      if (Row[V].isZero())
        Row.erase(V);
    }
    Value = Value + Beta[V] * C;
  }
  IsBasic[Slack] = true;
  Rows[Slack] = std::move(Row);
  Beta[Slack] = Value;
  SlackTable.emplace(std::move(Key), Slack);
  return Slack;
}

void ArithSolver::updateNonbasic(int Var, const DeltaRat &NewValue) {
  assert(!IsBasic[Var]);
  DeltaRat Delta = NewValue - Beta[Var];
  if (Delta.R.isZero() && Delta.D.isZero())
    return;
  for (int B = 0; B < numVars(); ++B) {
    if (!IsBasic[B])
      continue;
    auto It = Rows[B].find(Var);
    if (It != Rows[B].end())
      Beta[B] = Beta[B] + Delta * It->second;
  }
  Beta[Var] = NewValue;
}

bool ArithSolver::assertLower(int Var, DeltaRat Value, int Tag,
                              std::set<int> *ConflictOut) {
  if (IsInt[Var]) {
    // Integral tightening: the smallest integer >= Value.
    Rational Ceil(Value.R.ceil());
    if (Ceil == Value.R && Value.D > Rational(0))
      Ceil += Rational(1);
    Value = DeltaRat(Ceil);
  }
  if (Lower[Var].Active && Value <= Lower[Var].Value)
    return true; // not stronger
  if (Upper[Var].Active && Upper[Var].Value < Value) {
    if (ConflictOut) {
      ConflictOut->insert(Tag);
      ConflictOut->insert(Upper[Var].Tag);
    }
    return false;
  }
  if (!Marks.empty())
    BoundTrail.push_back({Var, /*IsLower=*/true, Lower[Var]});
  Lower[Var] = {Value, Tag, true};
  if (!SuppressBoundLog && Var < static_cast<int>(Watched.size()) &&
      Watched[Var])
    BoundLog.push_back(Var);
  if (!IsBasic[Var] && Beta[Var] < Value)
    updateNonbasic(Var, Value);
  return true;
}

bool ArithSolver::assertUpper(int Var, DeltaRat Value, int Tag,
                              std::set<int> *ConflictOut) {
  if (IsInt[Var]) {
    Rational Floor(Value.R.floor());
    if (Floor == Value.R && Value.D < Rational(0))
      Floor -= Rational(1);
    Value = DeltaRat(Floor);
  }
  if (Upper[Var].Active && Upper[Var].Value <= Value)
    return true;
  if (Lower[Var].Active && Value < Lower[Var].Value) {
    if (ConflictOut) {
      ConflictOut->insert(Tag);
      ConflictOut->insert(Lower[Var].Tag);
    }
    return false;
  }
  if (!Marks.empty())
    BoundTrail.push_back({Var, /*IsLower=*/false, Upper[Var]});
  Upper[Var] = {Value, Tag, true};
  if (!SuppressBoundLog && Var < static_cast<int>(Watched.size()) &&
      Watched[Var])
    BoundLog.push_back(Var);
  if (!IsBasic[Var] && Value < Beta[Var])
    updateNonbasic(Var, Value);
  return true;
}

bool ArithSolver::assertAtom(const LinTerm &Poly, Op O, int Tag) {
  if (TriviallyUnsat)
    return false;
  if (Poly.Coeffs.empty()) {
    bool Holds = true;
    switch (O) {
    case Op::Le:
      Holds = Poly.Const <= Rational(0);
      break;
    case Op::Lt:
      Holds = Poly.Const < Rational(0);
      break;
    case Op::Eq:
      Holds = Poly.Const.isZero();
      break;
    case Op::Ne:
      Holds = !Poly.Const.isZero();
      break;
    }
    if (!Holds) {
      TriviallyUnsat = true;
      TrivialConflict = {Tag};
      return false;
    }
    return true;
  }

  Rational Scale;
  int Var;
  Rational BoundVal;
  if (Poly.Coeffs.size() == 1) {
    // Fast path: bound directly on the variable.
    Var = Poly.Coeffs.begin()->first;
    Rational C = Poly.Coeffs.begin()->second;
    BoundVal = -Poly.Const / C;
    Scale = C; // sign carries the direction flip
  } else {
    Var = slackFor(Poly, Scale);
    // slack == Scale * varpart, atom: varpart + Const <op> 0
    // => slack <op'> -Const*Scale  (op direction flips when Scale < 0)
    BoundVal = -Poly.Const * Scale;
  }
  bool Flip = Scale.isNegative();

  std::set<int> Dummy;
  bool Ok = true;
  switch (O) {
  case Op::Le:
    Ok = Flip ? assertLower(Var, DeltaRat(BoundVal), Tag, &Dummy)
              : assertUpper(Var, DeltaRat(BoundVal), Tag, &Dummy);
    break;
  case Op::Lt:
    Ok = Flip ? assertLower(Var, DeltaRat(BoundVal, Rational(1)), Tag, &Dummy)
              : assertUpper(Var, DeltaRat(BoundVal, Rational(-1)), Tag,
                            &Dummy);
    break;
  case Op::Eq:
    Ok = assertLower(Var, DeltaRat(BoundVal), Tag, &Dummy) &&
         assertUpper(Var, DeltaRat(BoundVal), Tag, &Dummy);
    break;
  case Op::Ne:
    if (IsInt[Var] && !BoundVal.isInteger())
      return true; // trivially satisfied
    Diseqs.emplace_back(Var, BoundVal, Tag);
    return true;
  }
  if (!Ok) {
    TriviallyUnsat = true;
    TrivialConflict = Dummy;
    return false;
  }
  return true;
}

bool ArithSolver::assertCachedBound(int Var, bool IsUpper,
                                    const DeltaRat &Value, int Tag) {
  if (TriviallyUnsat)
    return false;
  std::set<int> Dummy;
  bool Ok = IsUpper ? assertUpper(Var, Value, Tag, &Dummy)
                    : assertLower(Var, Value, Tag, &Dummy);
  if (!Ok) {
    TriviallyUnsat = true;
    TrivialConflict = Dummy;
    return false;
  }
  return true;
}

void ArithSolver::pivot(int B, int N) {
  ++Pivots;
  assert(IsBasic[B] && !IsBasic[N]);
  std::map<int, Rational> Row = std::move(Rows[B]);
  Rows[B].clear();
  Rational A = Row[N];
  assert(!A.isZero());
  // Solve for N: N = B/A - sum_{j != N} (a_j / A) * x_j
  std::map<int, Rational> NewRow;
  Rational InvA = Rational(1) / A;
  NewRow[B] = InvA;
  for (const auto &[J, C] : Row) {
    if (J == N)
      continue;
    NewRow[J] = -C * InvA;
  }
  IsBasic[B] = false;
  IsBasic[N] = true;
  Rows[N] = NewRow;
  // Substitute N's definition into every other basic row containing N.
  for (int K = 0; K < numVars(); ++K) {
    if (!IsBasic[K] || K == N)
      continue;
    auto It = Rows[K].find(N);
    if (It == Rows[K].end())
      continue;
    Rational Factor = It->second;
    Rows[K].erase(It);
    for (const auto &[J, C] : NewRow) {
      Rows[K][J] += Factor * C;
      if (Rows[K][J].isZero())
        Rows[K].erase(J);
    }
  }
}

ArithSolver::Result ArithSolver::simplexCheck(std::set<int> &ConflictOut) {
  for (;;) {
    // Select the smallest violating basic variable (Bland's rule).
    int B = -1;
    bool BelowLower = false;
    for (int V = 0; V < numVars(); ++V) {
      if (!IsBasic[V])
        continue;
      if (Lower[V].Active && Beta[V] < Lower[V].Value) {
        B = V;
        BelowLower = true;
        break;
      }
      if (Upper[V].Active && Upper[V].Value < Beta[V]) {
        B = V;
        BelowLower = false;
        break;
      }
    }
    if (B == -1)
      return Result::Sat;

    const DeltaRat Target =
        BelowLower ? Lower[B].Value : Upper[B].Value;
    // Find the smallest suitable nonbasic variable in B's row.
    int N = -1;
    for (const auto &[J, C] : Rows[B]) {
      bool CanHelp;
      if (BelowLower) {
        // Need to increase B.
        CanHelp = (C > Rational(0) &&
                   (!Upper[J].Active || Beta[J] < Upper[J].Value)) ||
                  (C < Rational(0) &&
                   (!Lower[J].Active || Lower[J].Value < Beta[J]));
      } else {
        // Need to decrease B.
        CanHelp = (C > Rational(0) &&
                   (!Lower[J].Active || Lower[J].Value < Beta[J])) ||
                  (C < Rational(0) &&
                   (!Upper[J].Active || Beta[J] < Upper[J].Value));
      }
      if (CanHelp && (N == -1 || J < N))
        N = J;
    }
    if (N == -1) {
      // Farkas conflict: the violated bound plus the blocking bounds.
      ConflictOut.insert(BelowLower ? Lower[B].Tag : Upper[B].Tag);
      for (const auto &[J, C] : Rows[B]) {
        bool UpperBlocks = BelowLower == (C > Rational(0));
        ConflictOut.insert(UpperBlocks ? Upper[J].Tag : Lower[J].Tag);
      }
      ConflictOut.erase(-1);
      return Result::Unsat;
    }

    // pivotAndUpdate(B, N, Target)
    Rational A = Rows[B][N];
    DeltaRat Theta = (Target - Beta[B]) * (Rational(1) / A);
    Beta[B] = Target;
    Beta[N] = Beta[N] + Theta;
    for (int K = 0; K < numVars(); ++K) {
      if (!IsBasic[K] || K == B)
        continue;
      auto It = Rows[K].find(N);
      if (It != Rows[K].end())
        Beta[K] = Beta[K] + Theta * It->second;
    }
    pivot(B, N);
  }
}

ArithSolver::Snapshot ArithSolver::save() const {
  return {Lower, Upper, Beta, Diseqs.size()};
}

void ArithSolver::restore(const Snapshot &S) {
  // Variables created after the snapshot keep their (unbounded) state.
  for (size_t I = 0; I < S.Lower.size(); ++I) {
    Lower[I] = S.Lower[I];
    Upper[I] = S.Upper[I];
    Beta[I] = S.Beta[I];
  }
  for (size_t I = S.Lower.size(); I < Lower.size(); ++I) {
    Lower[I] = Bound();
    Upper[I] = Bound();
  }
  Diseqs.resize(S.NumDiseqs);
  // The basis may have changed since the snapshot, so the restored betas
  // can break the simplex invariants. Re-establish them: clamp nonbasic
  // variables into their bounds, then recompute basic variables from their
  // rows.
  for (int V = 0; V < numVars(); ++V) {
    if (IsBasic[V])
      continue;
    if (Lower[V].Active && Beta[V] < Lower[V].Value)
      Beta[V] = Lower[V].Value;
    else if (Upper[V].Active && Upper[V].Value < Beta[V])
      Beta[V] = Upper[V].Value;
  }
  for (int V = 0; V < numVars(); ++V) {
    if (!IsBasic[V])
      continue;
    DeltaRat Value;
    for (const auto &[J, C] : Rows[V])
      Value = Value + Beta[J] * C;
    Beta[V] = Value;
  }
}

namespace {
// Depth budget for branch & bound / disequality splitting. Each frame
// carries a tableau snapshot, so the budget must stay well under what the
// thread stack can hold; exhaustion is reported as Result::Unknown and
// surfaces as solver-level Unknown, never as a wrong verdict.
constexpr int MaxSearchDepth = 256;
// Branch cuts are tagged per depth: a frame's "cut unused" test and its
// core-combine step must strip exactly its own cuts, never an ancestor's.
// With a single shared tag, an inner combine would erase an outer frame's
// cut dependency and the outer "core stands on its own" early return
// could report an Unsat core that silently relied on an outer cut.
// The range [-1000 - MaxSearchDepth, -1000] avoids every other internal
// tag (-1 unset, -3 probe, -7 model-repair separation).
constexpr int CutTagBase = -1000;
constexpr int cutTagFor(int Depth) { return CutTagBase - Depth; }
} // namespace

template <typename LoFn, typename HiFn>
ArithSolver::Result ArithSolver::splitOnCuts(int Depth, int ExtraTag,
                                             const LoFn &AssertLo,
                                             const HiFn &AssertHi,
                                             std::set<int> &ConflictOut) {
  const int CutTag = cutTagFor(Depth);
  ++Branches;
  Snapshot S = save();
  std::set<int> Core1, Core2;
  bool Feasible1 = AssertLo(CutTag, Core1);
  Result R1 = Feasible1 ? search(Core1, Depth + 1) : Result::Unsat;
  if (R1 == Result::Sat)
    return Result::Sat;
  restore(S);
  if (R1 == Result::Unsat && !Core1.count(CutTag)) {
    ConflictOut = Core1; // cut unused: core refutes the input alone
    ConflictOut.erase(CutTag);
    return Result::Unsat;
  }
  bool Feasible2 = AssertHi(CutTag, Core2);
  Result R2 = Feasible2 ? search(Core2, Depth + 1) : Result::Unsat;
  if (R2 == Result::Sat)
    return Result::Sat;
  restore(S);
  // A branch-2 core that never used the cut refutes the input
  // constraints on its own, independent of branch 1's outcome.
  if (R2 == Result::Unsat && !Core2.count(CutTag)) {
    ConflictOut = Core2;
    ConflictOut.erase(CutTag);
    return Result::Unsat;
  }
  // Unsat needs both branches refuted; an Unknown branch forfeits that.
  if (R1 == Result::Unknown || R2 == Result::Unknown)
    return Result::Unknown;
  Core1.insert(Core2.begin(), Core2.end());
  Core1.erase(CutTag);
  if (ExtraTag != -1)
    Core1.insert(ExtraTag);
  ConflictOut = Core1;
  return Result::Unsat;
}

ArithSolver::Result ArithSolver::search(std::set<int> &ConflictOut,
                                        int Depth) {
  Result R = simplexCheck(ConflictOut);
  if (R == Result::Unsat)
    return R;

  // Integer branching.
  for (int V = 0; V < numVars(); ++V) {
    if (!IsInt[V])
      continue;
    assert(Beta[V].D.isZero() && "integer variable has a delta component");
    if (Beta[V].R.isInteger())
      continue;
    // The depth budget gates branching only: a frame at the cap still
    // runs its LP check above, so a decisive relaxation is never
    // forfeited to Unknown.
    if (Depth >= MaxSearchDepth)
      return Result::Unknown;
    Rational FloorV(Beta[V].R.floor());
    return splitOnCuts(
        Depth, /*ExtraTag=*/-1,
        [&](int CutTag, std::set<int> &Core) {
          return assertUpper(V, DeltaRat(FloorV), CutTag, &Core);
        },
        [&](int CutTag, std::set<int> &Core) {
          return assertLower(V, DeltaRat(FloorV + Rational(1)), CutTag,
                             &Core);
        },
        ConflictOut);
  }

  // Disequality splitting.
  for (size_t I = 0; I < Diseqs.size(); ++I) {
    // Not a structured binding: the split lambdas below must capture
    // these, which C++17 forbids for binding names.
    const int V = std::get<0>(Diseqs[I]);
    const Rational C = std::get<1>(Diseqs[I]);
    const int Tag = std::get<2>(Diseqs[I]);
    if (Beta[V] != DeltaRat(C))
      continue;
    if (Depth >= MaxSearchDepth)
      return Result::Unknown;
    return splitOnCuts(
        Depth, /*ExtraTag=*/Tag,
        [&](int CutTag, std::set<int> &Core) {
          return IsInt[V]
                     ? assertUpper(V, DeltaRat(C - Rational(1)), CutTag,
                                   &Core)
                     : assertUpper(V, DeltaRat(C, Rational(-1)), CutTag,
                                   &Core);
        },
        [&](int CutTag, std::set<int> &Core) {
          return IsInt[V]
                     ? assertLower(V, DeltaRat(C + Rational(1)), CutTag,
                                   &Core)
                     : assertLower(V, DeltaRat(C, Rational(1)), CutTag,
                                   &Core);
        },
        ConflictOut);
  }

  return Result::Sat;
}

void ArithSolver::push() {
  Marks.push_back({BoundTrail.size(), Diseqs.size(), TriviallyUnsat});
}

void ArithSolver::pop() {
  assert(!Marks.empty() && "pop without matching push");
  LevelMark M = Marks.back();
  Marks.pop_back();
  // Undo bound strengthenings in reverse. Weakening bounds preserves the
  // simplex invariant (nonbasic variables remain inside looser bounds and
  // basic values are row combinations of unchanged nonbasic values), so
  // beta needs no repair here. Variables created above the mark (slack
  // definitions) persist with whatever bounds the trail restores — for
  // them that is the unbounded default, since every strengthening above
  // the mark is on the trail.
  while (BoundTrail.size() > M.BoundTrailSize) {
    const BoundUndo &U = BoundTrail.back();
    (U.IsLower ? Lower : Upper)[U.Var] = U.Old;
    BoundTrail.pop_back();
  }
  Diseqs.resize(M.NumDiseqs);
  if (!M.TriviallyUnsat) {
    TriviallyUnsat = false;
    TrivialConflict.clear();
  }
}

namespace {
/// Raises a flag for the current scope (exception-free code, but early
/// returns abound in the search entry points).
struct ScopedFlag {
  bool &Flag;
  bool Saved;
  explicit ScopedFlag(bool &Flag) : Flag(Flag), Saved(Flag) { Flag = true; }
  ~ScopedFlag() { Flag = Saved; }
};
} // namespace

void ArithSolver::watchVar(int Var) {
  if (Var >= static_cast<int>(Watched.size()))
    Watched.resize(Var + 1, 0);
  Watched[Var] = 1;
}

ArithSolver::Result ArithSolver::check(std::set<int> &ConflictOut) {
  if (TriviallyUnsat) {
    ConflictOut = TrivialConflict;
    return Result::Unsat;
  }
  // Cut bounds asserted by the internal search are transient; keep them
  // out of the watcher change log.
  ScopedFlag Suppress(SuppressBoundLog);
  return search(ConflictOut, 0);
}

Rational ArithSolver::modelValue(int Var) const {
  // Concretize delta: pick a positive value small enough to respect every
  // active bound and registered disequality.
  Rational DeltaVal(1);
  auto Tighten = [&](const DeltaRat &Value, const DeltaRat &BoundV,
                     bool IsLower) {
    // Requirement: IsLower ? BoundV <= Value : Value <= BoundV under the
    // chosen delta. In DeltaRat terms the bound holds; a constraint on
    // delta arises only when the rational parts tie-break via delta.
    DeltaRat Diff = IsLower ? Value - BoundV : BoundV - Value;
    // Need: Diff.R + Diff.D * delta >= 0 with Diff >= 0 lexicographically.
    if (Diff.R > Rational(0) && Diff.D < Rational(0)) {
      Rational Limit = Diff.R / -Diff.D;
      if (Limit < DeltaVal)
        DeltaVal = Limit;
    }
  };
  for (int V = 0; V < numVars(); ++V) {
    if (Lower[V].Active)
      Tighten(Beta[V], Lower[V].Value, true);
    if (Upper[V].Active)
      Tighten(Beta[V], Upper[V].Value, false);
  }
  for (const auto &[V, C, Tag] : Diseqs) {
    (void)Tag;
    Rational DiffR = Beta[V].R - C;
    if (!DiffR.isZero() && !Beta[V].D.isZero()) {
      Rational Limit = (DiffR < Rational(0) ? -DiffR : DiffR) /
                       (Beta[V].D < Rational(0) ? -Beta[V].D : Beta[V].D);
      Limit = Limit / Rational(2);
      if (Limit < DeltaVal && !Limit.isZero())
        DeltaVal = Limit;
    }
  }
  DeltaVal = DeltaVal / Rational(2);
  return Beta[Var].R + Beta[Var].D * DeltaVal;
}

bool ArithSolver::assertPolyNegative(LinTerm Poly, int Tag,
                                     std::set<int> &Core) {
  // Asserts Poly < 0, using the integral rewrite (Poly + 1 <= 0) when the
  // polynomial ranges over integers only.
  bool AllInt = true;
  for (const auto &[V, C] : Poly.Coeffs) {
    (void)C;
    AllInt = AllInt && IsInt[V];
  }
  bool Strict = !AllInt;
  if (AllInt)
    Poly.Const += Rational(1);

  Rational Scale;
  int Var;
  Rational BoundVal;
  if (Poly.Coeffs.size() == 1) {
    Var = Poly.Coeffs.begin()->first;
    Rational C = Poly.Coeffs.begin()->second;
    BoundVal = -Poly.Const / C;
    Scale = C;
  } else {
    Var = slackFor(Poly, Scale);
    BoundVal = -Poly.Const * Scale;
  }
  bool Flip = Scale.isNegative();
  DeltaRat B = Strict ? DeltaRat(BoundVal, Flip ? Rational(1) : Rational(-1))
                      : DeltaRat(BoundVal);
  return Flip ? assertLower(Var, B, Tag, &Core)
              : assertUpper(Var, B, Tag, &Core);
}

bool ArithSolver::probeForcedEqual(int Var1, int Var2,
                                   std::set<int> &TagsOut,
                                   bool *UnknownOut,
                                   const std::vector<int> *WitnessVars,
                                   std::vector<Rational> *WitnessOut) {
  constexpr int ProbeTag = -3;
  // Probe bounds are transient (see check()).
  ScopedFlag Suppress(SuppressBoundLog);
  LinTerm Diff;
  Diff.add(Var1, Rational(1));
  Diff.add(Var2, Rational(-1));
  if (Diff.Coeffs.empty())
    return true; // syntactically identical

  // Captures the separating model for the caller's whole candidate set
  // (must run before restore() discards the probe assignment).
  auto CaptureWitness = [&] {
    if (!WitnessVars || !WitnessOut)
      return;
    WitnessOut->clear();
    WitnessOut->reserve(WitnessVars->size());
    for (int V : *WitnessVars)
      WitnessOut->push_back(modelValue(V));
  };

  Snapshot S = save();
  std::set<int> Core1, Core2;
  // Probe Var1 < Var2.
  bool Feasible = assertPolyNegative(Diff, ProbeTag, Core1);
  Result R1 = Feasible ? search(Core1, 0) : Result::Unsat;
  if (R1 == Result::Sat)
    CaptureWitness();
  restore(S);
  if (R1 == Result::Sat)
    return false; // a strict order is possible: not forced
  // Probe Var1 > Var2.
  LinTerm NegDiff;
  NegDiff.add(Var1, Rational(-1));
  NegDiff.add(Var2, Rational(1));
  Feasible = assertPolyNegative(NegDiff, ProbeTag, Core2);
  Result R2 = Feasible ? search(Core2, 0) : Result::Unsat;
  if (R2 == Result::Sat)
    CaptureWitness();
  restore(S);
  if (R2 == Result::Sat)
    return false;
  // Forced equality needs both probes refuted. An undecided probe whose
  // sibling did not prove Sat must be reported: the caller cannot
  // distinguish "not forced" from "undecided", and acting on the latter
  // can cascade into a wrong verdict.
  if (R1 == Result::Unknown || R2 == Result::Unknown) {
    if (UnknownOut)
      *UnknownOut = true;
    return false;
  }

  // A refutation is only evidence of a forced equality when it rests on
  // input constraints alone. Besides our own ProbeTag (and -1, the "no
  // tag" marker), a negative tag in a core marks an artificial assertion
  // injected by the SMT driver (e.g. a model-repair separation); claiming
  // "forced" with that dependence silently stripped would hand the caller
  // an explanation the inputs do not imply. Report such probes as
  // undecided instead. (Branch cut tags never escape: every search frame
  // erases its own before returning.)
  auto RestsOnArtificial = [](const std::set<int> &Core) {
    for (int T : Core)
      if (T < 0 && T != ProbeTag && T != -1)
        return true;
    return false;
  };
  if (RestsOnArtificial(Core1) || RestsOnArtificial(Core2)) {
    if (UnknownOut)
      *UnknownOut = true;
    return false;
  }

  for (int T : Core1)
    if (T >= 0)
      TagsOut.insert(T);
  for (int T : Core2)
    if (T >= 0)
      TagsOut.insert(T);
  return true;
}
