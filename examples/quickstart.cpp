//===- examples/quickstart.cpp - Library quickstart ------------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: define a data structure *intrinsically* (ghost monadic maps
/// + a local condition, Definition 2.4 of the paper), annotate a method
/// with the Fix-What-You-Break macros (Section 4.1), and verify it — the
/// whole paper pipeline in one call to `verifySource`.
///
/// The structure here is a counted stack: a singly-linked list with a
/// ghost `depth` map. The local condition pins each node's depth to its
/// successor's, so "being a stack of depth n" needs no recursion.
///
//===----------------------------------------------------------------------===//

#include "driver/Verifier.h"

#include <cstdio>

using namespace ids;

static const char *Source = R"IDS(
structure Stack {
  field next: Loc;
  field val: int;
  ghost field prev: Loc;     // inverse pointer: rules out merging lists
  ghost field depth: int;    // ghost monadic map: distance to the bottom

  local s (x) {
    (x.next != nil ==> x.next.prev == x && x.depth == x.next.depth + 1)
    && (x.prev != nil ==> x.prev.next == x)
    && (x.next == nil ==> x.depth == 1)
  }

  correlation (y) { y.prev == nil }

  impact next  [s] { x, old(x.next) }
  impact prev  [s] { x, old(x.prev) }
  impact val   [s] { x, x.prev }
  impact depth [s] { x, x.prev }
}

// push: the classic FWYB shape — allocate, wire, repair, prove LC, done.
procedure push(top: Loc, v: int) returns (r: Loc)
  requires br(s) == {}
  requires top != nil && top.prev == nil
  ensures  br(s) == {}
  ensures  r != nil && r.prev == nil && r.next == top
  ensures  r.val == v
  ensures  r.depth == old(top.depth) + 1
  modifies {top}
{
  var z: Loc;
  InferLCOutsideBr(s, top);     // top is unbroken: assume LC(top)
  NewObj(z);                    // z joins every broken set
  Mut(z.val, v);
  Mut(z.next, top);
  Mut(top.prev, z);             // breaks top: impact set {top, old(prev)}
  Mut(z.depth, top.depth + 1);  // ghost repair
  AssertLCAndRemove(s, top);    // prove LC(top), shrink Br
  AssertLCAndRemove(s, z);      // prove LC(z), Br is empty again
  r := z;
}
)IDS";

int main() {
  DiagEngine Diags;
  driver::VerifyOptions Opts;
  driver::ModuleResult R = driver::verifySource(Source, Opts, Diags);
  if (!R.FrontEndOk) {
    fprintf(stderr, "front-end error:\n%s", Diags.toString().c_str());
    return 1;
  }
  printf("structure %s: LC has %u conjuncts\n", R.StructureName.c_str(),
         R.LcSize);
  for (const driver::ImpactResult &I : R.Impacts)
    printf("  impact set for '%s' [%s]: %s\n", I.Field.c_str(),
           I.Group.c_str(), I.Ok ? "machine-checked correct" : "WRONG");
  for (const driver::ProcResult &P : R.Procs) {
    printf("  procedure %s: %s in %.2fs (%u obligations, %u code + %u "
           "spec + %u ghost lines)\n",
           P.Name.c_str(),
           P.St == driver::Status::Verified ? "VERIFIED" : "failed",
           P.Seconds, P.NumObligations, P.Metrics.CodeLines,
           P.Metrics.SpecLines, P.Metrics.AnnotLines);
    if (P.St != driver::Status::Verified)
      printf("    %s\n", P.FailedObligation.c_str());
  }
  return R.allVerified() ? 0 : 1;
}
