//===- tests/smt/SatTest.cpp - CDCL SAT core tests -------------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "smt/SatSolver.h"

#include <gtest/gtest.h>

#include <random>

using namespace ids::sat;

TEST(SatTest, TrivialSat) {
  SatSolver S;
  Var A = S.newVar();
  EXPECT_TRUE(S.addClause({Lit(A, false)}));
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
  EXPECT_TRUE(S.modelValue(A));
}

TEST(SatTest, TrivialUnsat) {
  SatSolver S;
  Var A = S.newVar();
  S.addClause({Lit(A, false)});
  S.addClause({Lit(A, true)});
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(SatTest, UnitPropagationChain) {
  SatSolver S;
  std::vector<Var> Vs;
  for (int I = 0; I < 20; ++I)
    Vs.push_back(S.newVar());
  // v0, v_i -> v_{i+1}, and finally !v19: unsat.
  S.addClause({Lit(Vs[0], false)});
  for (int I = 0; I + 1 < 20; ++I)
    S.addClause({Lit(Vs[I], true), Lit(Vs[I + 1], false)});
  S.addClause({Lit(Vs[19], true)});
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(SatTest, PigeonHole43Unsat) {
  // 4 pigeons, 3 holes: classic small UNSAT instance exercising learning.
  SatSolver S;
  Var P[4][3];
  for (auto &Row : P)
    for (Var &V : Row)
      V = S.newVar();
  for (auto &Row : P)
    S.addClause({Lit(Row[0], false), Lit(Row[1], false), Lit(Row[2], false)});
  for (int H = 0; H < 3; ++H)
    for (int I = 0; I < 4; ++I)
      for (int J = I + 1; J < 4; ++J)
        S.addClause({Lit(P[I][H], true), Lit(P[J][H], true)});
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(SatTest, TautologyClauseIgnored) {
  SatSolver S;
  Var A = S.newVar();
  Var B = S.newVar();
  EXPECT_TRUE(S.addClause({Lit(A, false), Lit(A, true), Lit(B, false)}));
  S.addClause({Lit(B, true)});
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
}

namespace {
/// Brute-force 3-SAT oracle.
bool bruteForceSat(int NumVars, const std::vector<std::vector<Lit>> &Clauses) {
  for (uint32_t Mask = 0; Mask < (1u << NumVars); ++Mask) {
    bool AllSat = true;
    for (const auto &C : Clauses) {
      bool CSat = false;
      for (Lit L : C) {
        bool V = (Mask >> L.var()) & 1;
        if (V != L.negated()) {
          CSat = true;
          break;
        }
      }
      if (!CSat) {
        AllSat = false;
        break;
      }
    }
    if (AllSat)
      return true;
  }
  return false;
}
} // namespace

/// Property test: random 3-SAT instances around the phase transition agree
/// with a brute-force oracle, and Sat models actually satisfy the clauses.
TEST(SatTest, PropertyRandom3SatVsBruteForce) {
  std::mt19937 Rng(4242);
  for (int Iter = 0; Iter < 400; ++Iter) {
    int NumVars = 5 + static_cast<int>(Rng() % 8); // 5..12
    int NumClauses = static_cast<int>(NumVars * 4.3);
    std::vector<std::vector<Lit>> Clauses;
    SatSolver S;
    for (int I = 0; I < NumVars; ++I)
      S.newVar();
    bool AddedOk = true;
    for (int I = 0; I < NumClauses; ++I) {
      std::vector<Lit> C;
      for (int K = 0; K < 3; ++K)
        C.push_back(Lit(static_cast<Var>(Rng() % NumVars), Rng() % 2 == 0));
      Clauses.push_back(C);
      AddedOk = S.addClause(C) && AddedOk;
    }
    bool Expected = bruteForceSat(NumVars, Clauses);
    SatSolver::Result R =
        AddedOk ? S.solve() : SatSolver::Result::Unsat;
    EXPECT_EQ(R == SatSolver::Result::Sat, Expected) << "iter " << Iter;
    if (R == SatSolver::Result::Sat) {
      for (const auto &C : Clauses) {
        bool CSat = false;
        for (Lit L : C)
          CSat = CSat || (S.modelValue(L.var()) != L.negated());
        EXPECT_TRUE(CSat) << "model does not satisfy clause, iter " << Iter;
      }
    }
  }
}

namespace {
/// A theory that forbids a specific combination of two variables, to
/// exercise the theory-conflict path.
class ForbidBoth : public TheoryCallback {
public:
  ForbidBoth(Var A, Var B, const SatSolver &S) : A(A), B(B), S(S) {}
  bool onFullModel(std::vector<Lit> &ConflictOut) override {
    if (S.modelValue(A) && S.modelValue(B)) {
      ConflictOut = {Lit(A, true), Lit(B, true)};
      return false;
    }
    return true;
  }
  Var A, B;
  const SatSolver &S;
};
} // namespace

TEST(SatTest, TheoryCallbackConflicts) {
  SatSolver S;
  Var A = S.newVar(), B = S.newVar();
  S.addClause({Lit(A, false)}); // A forced true
  ForbidBoth T(A, B, S);
  EXPECT_EQ(S.solve(&T), SatSolver::Result::Sat);
  EXPECT_TRUE(S.modelValue(A));
  EXPECT_FALSE(S.modelValue(B));
}

TEST(SatTest, TheoryCallbackUnsat) {
  SatSolver S;
  Var A = S.newVar(), B = S.newVar();
  S.addClause({Lit(A, false)});
  S.addClause({Lit(B, false)});
  ForbidBoth T(A, B, S);
  EXPECT_EQ(S.solve(&T), SatSolver::Result::Unsat);
}

namespace {
/// Adds the pigeonhole clauses (\p Pigeons into \p Holes) over fresh
/// variables; unsat iff Pigeons > Holes, and either way the search has
/// to learn clauses to decide it.
void addPigeonhole(SatSolver &S, int Pigeons, int Holes) {
  std::vector<std::vector<Var>> P(Pigeons, std::vector<Var>(Holes));
  for (auto &Row : P)
    for (Var &V : Row)
      V = S.newVar();
  for (auto &Row : P) {
    std::vector<Lit> AtLeastOne;
    for (Var V : Row)
      AtLeastOne.push_back(Lit(V, false));
    S.addClause(AtLeastOne);
  }
  for (int H = 0; H < Holes; ++H)
    for (int I = 0; I < Pigeons; ++I)
      for (int J = I + 1; J < Pigeons; ++J)
        S.addClause({Lit(P[I][H], true), Lit(P[J][H], true)});
}
} // namespace

TEST(SatTest, ReduceDbSparesLockedAndInputClauses) {
  // Pigeonhole 4/4 is satisfiable but needs real conflict learning, so
  // the Sat assignment's trail has learned clauses as reasons (locked).
  SatSolver S;
  addPigeonhole(S, 4, 4);
  ASSERT_EQ(S.solve(), SatSolver::Result::Sat);
  unsigned InputClauses = S.numClauses() - S.numLearnedClauses();

  // Sweeping at the full assignment must not touch input clauses, and
  // must skip locked ones — deleting the reason of an assigned literal
  // would orphan the implication graph and corrupt the next backtrack.
  S.reduceDB();
  S.reduceDB();
  EXPECT_EQ(S.numClauses() - S.numLearnedClauses(), InputClauses);

  // Force a genuinely different search: block the current model and
  // re-solve. A corrupted trail/reason state would surface here.
  std::vector<Lit> Blocker;
  for (Var V = 0; V < S.numVars(); ++V)
    Blocker.push_back(Lit(V, S.modelValue(V)));
  S.resetToRoot();
  ASSERT_TRUE(S.addClause(Blocker));
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
}

TEST(SatTest, ReduceDbSweepsAcrossAssertLevels) {
  // A tiny trigger forces sweeps during the level-1 refutation; popping
  // the level must recycle deleted and retracted clauses consistently
  // and restore the satisfiable base level.
  SatSolver S;
  S.setReduceDbLimit(1);
  Var X = S.newVar();
  ASSERT_TRUE(S.addClause({Lit(X, false)}));

  S.pushAssertLevel();
  addPigeonhole(S, 4, 3);
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
  EXPECT_TRUE(S.unsatAtCurrentLevel());
  EXPECT_GT(S.numReduceDbSweeps(), 0u);

  S.resetToRoot();
  S.popAssertLevel();
  EXPECT_FALSE(S.unsatAtCurrentLevel());
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
  EXPECT_TRUE(S.modelValue(X));

  // Re-adding the refutation reuses recycled clause slots; the verdict
  // must be identical the second time around.
  S.resetToRoot();
  S.pushAssertLevel();
  addPigeonhole(S, 4, 3);
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
  S.popAssertLevel();
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
}

namespace {
/// External-propagation theory: whenever A is false on the partial trail,
/// every variable in Implied is propagated true. Reason clauses
/// (A or V) are only materialized through explainPropagation — the lazy
/// DPLL(T) contract — and the full-model hook is the semantic backstop
/// that rejects models violating an implication.
class ImplyOnFalse : public TheoryCallback {
public:
  ImplyOnFalse(Var A, std::vector<Var> Implied, const SatSolver &S)
      : A(A), Implied(std::move(Implied)), S(S) {}
  bool onFullModel(std::vector<Lit> &ConflictOut) override {
    if (!S.modelValue(A))
      for (Var V : Implied)
        if (!S.modelValue(V)) {
          ConflictOut = {Lit(A, false), Lit(V, false)};
          return false;
        }
    return true;
  }
  bool propagatePartial(std::vector<Lit> &ImpliedOut,
                        std::vector<Lit> &ConflictOut) override {
    (void)ConflictOut;
    if (S.value(Lit(A, false)) == LBool::False)
      for (Var V : Implied)
        if (S.value(Lit(V, false)) == LBool::Undef)
          ImpliedOut.push_back(Lit(V, false));
    return true;
  }
  void explainPropagation(Lit P, std::vector<Lit> &ReasonOut) override {
    ++Explains;
    LastExplained = P;
    ReasonOut = {P, Lit(A, false)};
  }
  Var A;
  std::vector<Var> Implied;
  const SatSolver &S;
  unsigned Explains = 0;
  Lit LastExplained;
};
} // namespace

TEST(SatTest, TheoryPropagationLazyReason) {
  // Decision order is deterministic (equal activities break ties by
  // variable index, initial phase false): A is decided false, the theory
  // propagates both B and E true at the BCP fixpoint, and the clause
  // (not-B or not-E) is then conflicting. Because both current-level
  // antecedents are theory-propagated, 1UIP analysis must fetch their
  // reasons lazily, resolve through them and learn the unit (A). A
  // binary clause over a single propagated literal would not do: BCP
  // wins the race and derives its negation before the theory runs.
  SatSolver S;
  S.setTheoryPropagation(true);
  Var A = S.newVar(), B = S.newVar(), E = S.newVar(), C = S.newVar();
  S.markTheoryVar(A);
  S.markTheoryVar(B);
  S.markTheoryVar(E);
  ASSERT_TRUE(S.addClause({Lit(A, false), Lit(C, false)})); // keeps A alive
  ASSERT_TRUE(S.addClause({Lit(B, true), Lit(E, true)}));
  ImplyOnFalse T(A, {B, E}, S);
  EXPECT_EQ(S.solve(&T), SatSolver::Result::Sat);
  EXPECT_TRUE(S.modelValue(A));
  EXPECT_GT(T.Explains, 0u);
}

TEST(SatTest, TheoryPropReasonsAcrossPopAssertLevel) {
  // Root-level theory implications and their materialized reason clauses
  // must die with the assertion level whose clauses forced them.
  SatSolver S;
  S.setTheoryPropagation(true);
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.markTheoryVar(A);
  S.markTheoryVar(B);
  // Keep both theory vars alive without constraining them: (A or C) and
  // (B or C) are satisfied by C alone.
  ASSERT_TRUE(S.addClause({Lit(A, false), Lit(C, false)}));
  ASSERT_TRUE(S.addClause({Lit(B, false), Lit(C, false)}));
  ImplyOnFalse T(A, {B}, S);

  // Level 1 forces A false at the root; the theory then propagates B true
  // as a ROOT implication, whose reason clause is materialized eagerly at
  // enqueue and must be recorded against the live assertion level.
  S.pushAssertLevel();
  ASSERT_TRUE(S.addClause({Lit(A, true)}));
  EXPECT_EQ(S.solve(&T), SatSolver::Result::Sat);
  EXPECT_FALSE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));

  // Popping the level kills the unit not-A; the theory-implied B must be
  // unassigned with it — a stale root implication would make the next
  // level's unit not-B incorrectly unsatisfiable.
  S.resetToRoot();
  S.popAssertLevel();
  S.pushAssertLevel();
  ASSERT_TRUE(S.addClause({Lit(B, true)}));
  EXPECT_EQ(S.solve(&T), SatSolver::Result::Sat);
  EXPECT_FALSE(S.modelValue(B));
  EXPECT_TRUE(S.modelValue(A)); // A false would re-imply B via the theory

  S.resetToRoot();
  S.popAssertLevel();
  EXPECT_EQ(S.solve(&T), SatSolver::Result::Sat);
}

/// Property test: aggressive deletion with an assertion-level pop in the
/// middle agrees with the brute-force oracle at every stage — this is
/// the deleted-then-repropagated interaction (a lemma deleted during the
/// level-1 search may have its implications re-derived after the pop
/// from base clauses alone).
TEST(SatTest, PropertyDeletionAcrossPopVsBruteForce) {
  std::mt19937 Rng(1337);
  uint64_t TotalDeleted = 0;
  for (int Iter = 0; Iter < 200; ++Iter) {
    int NumVars = 6 + static_cast<int>(Rng() % 6); // 6..11
    int NumBase = static_cast<int>(NumVars * 2.2);
    int NumLevel1 = static_cast<int>(NumVars * 2.1);
    auto RandomClause = [&] {
      std::vector<Lit> C;
      for (int K = 0; K < 3; ++K)
        C.push_back(Lit(static_cast<Var>(Rng() % NumVars), Rng() % 2 == 0));
      return C;
    };

    SatSolver S;
    S.setReduceDbLimit(2);
    for (int I = 0; I < NumVars; ++I)
      S.newVar();
    std::vector<std::vector<Lit>> Base, Level1;
    bool BaseOk = true;
    for (int I = 0; I < NumBase; ++I) {
      Base.push_back(RandomClause());
      BaseOk = S.addClause(Base.back()) && BaseOk;
    }
    S.pushAssertLevel();
    bool AllOk = BaseOk;
    for (int I = 0; I < NumLevel1; ++I) {
      Level1.push_back(RandomClause());
      AllOk = S.addClause(Level1.back()) && AllOk;
    }

    std::vector<std::vector<Lit>> All = Base;
    All.insert(All.end(), Level1.begin(), Level1.end());
    bool ExpectAll = bruteForceSat(NumVars, All);
    SatSolver::Result R1 =
        AllOk ? S.solve() : SatSolver::Result::Unsat;
    EXPECT_EQ(R1 == SatSolver::Result::Sat, ExpectAll) << "iter " << Iter;

    S.resetToRoot();
    S.popAssertLevel();
    bool ExpectBase = bruteForceSat(NumVars, Base);
    SatSolver::Result R2 =
        BaseOk ? S.solve() : SatSolver::Result::Unsat;
    EXPECT_EQ(R2 == SatSolver::Result::Sat, ExpectBase) << "iter " << Iter;
    TotalDeleted += S.numLemmasDeleted();
  }
  // The tiny limit must have made the sweeps actually delete lemmas
  // somewhere in the run, or this property test is vacuous.
  EXPECT_GT(TotalDeleted, 0u);
}
