//===- driver/Verifier.cpp - End-to-end verification facade ----------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "driver/Verifier.h"

#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "smt/Solver.h"
#include "vcgen/VcGen.h"

#include <chrono>

using namespace ids;
using namespace ids::driver;

std::unique_ptr<lang::Module> driver::frontEnd(const std::string &Source,
                                               DiagEngine &Diags) {
  std::unique_ptr<lang::Module> M = lang::parseModule(Source, Diags);
  if (!M)
    return nullptr;
  if (!lang::typeCheck(*M, Diags))
    return nullptr;
  if (!lang::checkGhostDiscipline(*M, Diags))
    return nullptr;
  if (!lang::checkWellBehaved(*M, Diags))
    return nullptr;
  return M;
}

namespace {
double seconds(std::chrono::steady_clock::time_point Start) {
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

/// Refutes the negation of each obligation group; returns per-module
/// status. On failure, identifies the first failing obligation and its
/// countermodel.
Status solveObligations(smt::TermManager &TM,
                        const std::vector<vcgen::Obligation> &Obls,
                        const VerifyOptions &Opts, std::string &FailedDesc,
                        std::string &Counterexample) {
  if (Obls.empty())
    return Status::Verified;
  unsigned NumGroups = std::max(1u, std::min<unsigned>(
                                        Opts.VcSplits,
                                        static_cast<unsigned>(Obls.size())));
  // Round-robin partition into NumGroups queries.
  for (unsigned G = 0; G < NumGroups; ++G) {
    std::vector<smt::TermRef> Negated;
    for (size_t I = G; I < Obls.size(); I += NumGroups)
      Negated.push_back(
          TM.mkAnd(Obls[I].Guard, TM.mkNot(Obls[I].Claim)));
    smt::TermRef Query = TM.mkOr(std::move(Negated));
    if (Opts.CrossCheckQf && !Opts.QuantifiedMode &&
        TM.containsQuantifier(Query)) {
      FailedDesc = "internal: quantifier leaked into a QF-mode VC";
      return Status::Unknown;
    }
    smt::Solver::Options SOpts;
    SOpts.AllowQuantifiers = Opts.QuantifiedMode;
    SOpts.MaxTheoryChecks = Opts.MaxTheoryChecks;
    SOpts.TimeoutSeconds = Opts.QueryTimeoutSeconds;
    smt::Solver S(TM, SOpts);
    smt::Solver::Result R = S.checkSat(Query);
    if (R == smt::Solver::Result::Unsat)
      continue;
    if (R == smt::Solver::Result::Unknown) {
      FailedDesc = Opts.QuantifiedMode
                       ? "quantified encoding: instantiation was incomplete"
                       : "solver resource budget exhausted";
      return Status::Unknown;
    }
    // Some obligation in this group fails: find which one.
    for (size_t I = G; I < Obls.size(); I += NumGroups) {
      smt::Solver SI(TM, SOpts);
      smt::TermRef Q =
          TM.mkAnd(Obls[I].Guard, TM.mkNot(Obls[I].Claim));
      if (SI.checkSat(Q) == smt::Solver::Result::Sat) {
        FailedDesc = Obls[I].Description + " (at " +
                     Obls[I].Loc.toString() + ")";
        Counterexample = SI.model().toString();
        return Status::Failed;
      }
    }
    FailedDesc = "obligation group failed but no single witness found";
    return Status::Failed;
  }
  return Status::Verified;
}
} // namespace

ModuleResult driver::verifySource(const std::string &Source,
                                  const VerifyOptions &Opts,
                                  DiagEngine &Diags) {
  ModuleResult Result;
  std::unique_ptr<lang::Module> M = frontEnd(Source, Diags);
  if (!M)
    return Result;
  Result.FrontEndOk = true;
  Result.StructureName = M->Structure.Name;
  Result.LcSize = lang::localConditionSize(M->Structure);

  // Impact-set correctness (Appendix C; Section 5.3 reports this <3s per
  // structure).
  if (Opts.CheckImpacts) {
    auto Start = std::chrono::steady_clock::now();
    for (const lang::ImpactDecl &I : M->Structure.Impacts) {
      ImpactResult IR;
      IR.Field = I.Field;
      IR.Group = I.Group;
      auto IStart = std::chrono::steady_clock::now();
      smt::TermManager TM;
      vcgen::ProcVc Vc = vcgen::generateImpactVc(TM, *M, I);
      std::string Desc, Cex;
      IR.Ok = solveObligations(TM, Vc.Obligations, Opts, Desc, Cex) ==
              Status::Verified;
      IR.Seconds = seconds(IStart);
      Result.Impacts.push_back(std::move(IR));
    }
    Result.ImpactSeconds = seconds(Start);
  }

  for (const lang::ProcDecl &P : M->Procs) {
    if (!Opts.OnlyProc.empty() && P.Name != Opts.OnlyProc)
      continue;
    ProcResult PR;
    PR.Name = P.Name;
    PR.Metrics = lang::computeMetrics(M->Structure, P);
    auto Start = std::chrono::steady_clock::now();
    smt::TermManager TM;
    vcgen::VcOptions VOpts;
    VOpts.QuantifiedMode = Opts.QuantifiedMode;
    VOpts.CheckFrames = Opts.CheckFrames;
    vcgen::ProcVc Vc = vcgen::generateVc(TM, *M, P, VOpts);
    PR.NumObligations = static_cast<unsigned>(Vc.Obligations.size());
    PR.St = solveObligations(TM, Vc.Obligations, Opts, PR.FailedObligation,
                             PR.Counterexample);
    PR.Seconds = seconds(Start);
    Result.Procs.push_back(std::move(PR));
  }
  return Result;
}
