//===- pipeline/Simplify.cpp - VC simplification pass ----------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Simplify.h"

#include <algorithm>

using namespace ids;
using namespace ids::pipeline;
using namespace ids::smt;

namespace {

/// Distinctness provable from the terms alone: two different interned
/// values of the same sort denote different elements (Int/Rat/Bool
/// constants are interpreted).
bool provablyDistinct(TermRef A, TermRef B) {
  return A != B && A->isValue() && B->isValue();
}

/// Adds every free Var of \p T to \p Out.
void collectVars(TermRef T, std::unordered_set<TermRef> &Out) {
  std::vector<TermRef> Work = {T};
  std::unordered_set<TermRef> Seen;
  while (!Work.empty()) {
    TermRef Cur = Work.back();
    Work.pop_back();
    if (!Seen.insert(Cur).second)
      continue;
    if (Cur->getKind() == TermKind::Var)
      Out.insert(Cur);
    for (TermRef Arg : Cur->getArgs())
      Work.push_back(Arg);
  }
}

} // namespace

TermRef Simplifier::simplifySelect(TermRef Array, TermRef Index) {
  // Walk past stores at provably distinct indices; stop at the first
  // store whose index might alias. Then expand reads over the pointwise
  // combinators so boolean simplification (and further store walking in
  // the branches) can fire. The (array, index) memo keeps the expansion
  // linear when combinator operands are DAG-shared.
  auto Memo = SelectCache.find({Array, Index});
  if (Memo != SelectCache.end())
    return Memo->second;
  TermRef OrigArray = Array;
  TermRef Result = nullptr;
  for (;;) {
    if (Array->getKind() == TermKind::Store) {
      if (Array->getArg(1) == Index) {
        Result = Array->getArg(2);
        break;
      }
      if (provablyDistinct(Array->getArg(1), Index)) {
        ++StoresResolved;
        Array = Array->getArg(0);
        continue;
      }
      break;
    }
    if (Array->getKind() == TermKind::ConstArray) {
      Result = Array->getArg(0);
      break;
    }
    if (Array->getKind() == TermKind::MapOr) {
      Result = TM.mkOr(simplifySelect(Array->getArg(0), Index),
                       simplifySelect(Array->getArg(1), Index));
      break;
    }
    if (Array->getKind() == TermKind::MapAnd) {
      Result = TM.mkAnd(simplifySelect(Array->getArg(0), Index),
                        simplifySelect(Array->getArg(1), Index));
      break;
    }
    if (Array->getKind() == TermKind::MapDiff) {
      Result = TM.mkAnd(simplifySelect(Array->getArg(0), Index),
                        TM.mkNot(simplifySelect(Array->getArg(1), Index)));
      break;
    }
    if (Array->getKind() == TermKind::PwIte) {
      Result = TM.mkIte(simplifySelect(Array->getArg(0), Index),
                        simplifySelect(Array->getArg(1), Index),
                        simplifySelect(Array->getArg(2), Index));
      break;
    }
    break;
  }
  if (!Result)
    Result = TM.mkSelect(Array, Index);
  SelectCache.emplace(std::make_pair(OrigArray, Index), Result);
  return Result;
}

TermRef Simplifier::rewriteNode(TermRef T, const std::vector<TermRef> &Args) {
  switch (T->getKind()) {
  case TermKind::Not:
    return TM.mkNot(Args[0]);
  case TermKind::And:
  case TermKind::Or: {
    bool IsAnd = T->getKind() == TermKind::And;
    TermRef R = IsAnd ? TM.mkAnd(Args) : TM.mkOr(Args);
    if (R->getKind() != T->getKind())
      return R;
    // Complementary-literal collapse the smart constructor skips.
    std::unordered_set<TermRef> Present(R->getArgs().begin(),
                                        R->getArgs().end());
    for (TermRef A : R->getArgs())
      if (A->getKind() == TermKind::Not && Present.count(A->getArg(0)))
        return IsAnd ? TM.mkFalse() : TM.mkTrue();
    return R;
  }
  case TermKind::Implies:
    return TM.mkImplies(Args[0], Args[1]);
  case TermKind::Ite:
    return TM.mkIte(Args[0], Args[1], Args[2]);
  case TermKind::Eq:
    return TM.mkEq(Args[0], Args[1]);
  case TermKind::Add:
    return TM.mkAdd(Args);
  case TermKind::Mul:
    return TM.mkMulConst(Args[0]->getKind() == TermKind::IntConst
                             ? Rational(Args[0]->getIntValue())
                             : Args[0]->getRatValue(),
                         Args[1]);
  case TermKind::Le:
    return TM.mkLe(Args[0], Args[1]);
  case TermKind::Lt:
    return TM.mkLt(Args[0], Args[1]);
  case TermKind::Select:
    return simplifySelect(Args[0], Args[1]);
  case TermKind::Store:
    return TM.mkStore(Args[0], Args[1], Args[2]);
  case TermKind::ConstArray:
    return TM.mkConstArray(T->getSort(), Args[0]);
  case TermKind::MapOr:
    return TM.mkMapOr(Args[0], Args[1]);
  case TermKind::MapAnd:
    return TM.mkMapAnd(Args[0], Args[1]);
  case TermKind::MapDiff:
    return TM.mkMapDiff(Args[0], Args[1]);
  case TermKind::PwIte:
    return TM.mkPwIte(Args[0], Args[1], Args[2]);
  case TermKind::Apply:
    return TM.mkApply(T->getDecl(), Args);
  case TermKind::Forall: {
    std::vector<TermRef> Bound = T->getBoundVars();
    return TM.mkForall(std::move(Bound), Args[0]);
  }
  default:
    return T; // leaves
  }
}

TermRef Simplifier::rewrite(TermRef T) {
  std::vector<TermRef> Stack = {T};
  while (!Stack.empty()) {
    TermRef Cur = Stack.back();
    if (Cache.count(Cur)) {
      Stack.pop_back();
      continue;
    }
    bool Ready = true;
    for (TermRef Arg : Cur->getArgs())
      if (!Cache.count(Arg)) {
        Stack.push_back(Arg);
        Ready = false;
      }
    if (!Ready)
      continue;
    Stack.pop_back();
    std::vector<TermRef> Args;
    Args.reserve(Cur->getNumArgs());
    for (TermRef Arg : Cur->getArgs())
      Args.push_back(Cache[Arg]);
    Cache.emplace(Cur, rewriteNode(Cur, Args));
  }
  return Cache[T];
}

bool Simplifier::propagateGuardEqualities(std::vector<TermRef> &Conjuncts,
                                          TermRef &Claim, SimplifyStats *St) {
  // A set {x_i == t_i} may be eliminated simultaneously only when no x_i
  // occurs in any t_j: then every x_i is gone after substitution, each
  // dropped equality is independently satisfiable, and Guard /\ !Claim is
  // equisatisfiable with its substituted form. Build the set greedily
  // under that invariant.
  std::unordered_map<TermRef, TermRef> Map;
  std::unordered_set<TermRef> Keys;
  std::unordered_set<TermRef> RhsVars;
  std::vector<bool> Consumed(Conjuncts.size(), false);

  for (size_t I = 0; I < Conjuncts.size(); ++I) {
    TermRef C = Conjuncts[I];
    TermRef Key = nullptr, Rhs = nullptr;
    if (C->getKind() == TermKind::Eq) {
      // mkEq orders args by id; prefer eliminating the younger variable.
      if (C->getArg(1)->getKind() == TermKind::Var) {
        Key = C->getArg(1);
        Rhs = C->getArg(0);
      } else if (C->getArg(0)->getKind() == TermKind::Var) {
        Key = C->getArg(0);
        Rhs = C->getArg(1);
      }
    } else if (C->getKind() == TermKind::Var) {
      Key = C;
      Rhs = TM.mkTrue();
    } else if (C->getKind() == TermKind::Not &&
               C->getArg(0)->getKind() == TermKind::Var) {
      Key = C->getArg(0);
      Rhs = TM.mkFalse();
    }
    if (!Key || Keys.count(Key) || RhsVars.count(Key))
      continue;
    // Occurs check against the accepted keys plus the candidate itself,
    // done in one DFS over Rhs (no per-candidate copy of Keys: guards
    // are dominated by incarnation equalities, so this is a hot loop).
    std::unordered_set<TermRef> CandVars;
    collectVars(Rhs, CandVars);
    if (CandVars.count(Key) ||
        std::any_of(CandVars.begin(), CandVars.end(),
                    [&](TermRef V) { return Keys.count(V) != 0; }))
      continue; // occurs check / would re-introduce an eliminated var
    Keys.insert(Key);
    Map.emplace(Key, Rhs);
    RhsVars.insert(CandVars.begin(), CandVars.end());
    Consumed[I] = true;
  }
  if (Map.empty())
    return false;
  if (St)
    St->EqualitiesSubstituted += static_cast<unsigned>(Map.size());

  std::vector<TermRef> Next;
  Next.reserve(Conjuncts.size());
  for (size_t I = 0; I < Conjuncts.size(); ++I)
    if (!Consumed[I])
      Next.push_back(rewrite(TM.substitute(Conjuncts[I], Map)));
  Conjuncts = std::move(Next);
  Claim = rewrite(TM.substitute(Claim, Map));
  return true;
}

bool Simplifier::simplifyObligation(TermRef &Guard, TermRef &Claim,
                                    SimplifyStats *St) {
  unsigned Before = StoresResolved;
  Guard = rewrite(Guard);
  Claim = rewrite(Claim);
  std::vector<TermRef> Conjuncts = guardConjuncts(Guard);
  constexpr unsigned MaxRounds = 8;
  for (unsigned Round = 0; Round < MaxRounds; ++Round) {
    if (Claim == TM.mkTrue() || Guard == TM.mkFalse())
      break;
    if (!propagateGuardEqualities(Conjuncts, Claim, St))
      break;
    Guard = TM.mkAnd(Conjuncts);
    Conjuncts = guardConjuncts(Guard);
  }
  if (St)
    St->StoresResolved += StoresResolved - Before;

  bool Proved = false;
  if (Claim == TM.mkTrue() || Guard == TM.mkFalse()) {
    Proved = true;
  } else {
    // Syntactic subsumption: every claim conjunct already a guard
    // conjunct (or, for a disjunctive claim, some disjunct is).
    std::unordered_set<TermRef> GuardSet(Conjuncts.begin(), Conjuncts.end());
    if (GuardSet.count(Claim)) {
      Proved = true;
    } else if (Claim->getKind() == TermKind::And) {
      Proved = std::all_of(
          Claim->getArgs().begin(), Claim->getArgs().end(),
          [&](TermRef C) { return GuardSet.count(C) != 0; });
    } else if (Claim->getKind() == TermKind::Or) {
      Proved = std::any_of(
          Claim->getArgs().begin(), Claim->getArgs().end(),
          [&](TermRef C) { return GuardSet.count(C) != 0; });
    }
  }
  if (Proved && St)
    ++St->ProvedTrivially;
  return Proved;
}
