//===- smt/Term.cpp - Hash-consed term DAG --------------------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "smt/Term.h"

#include "support/Trace.h"

#include <algorithm>

using namespace ids;
using namespace ids::smt;

const std::string &Term::getName() const {
  assert(Kind == TermKind::Var || Kind == TermKind::Apply);
  if (Kind == TermKind::Apply)
    return Decl->getName();
  return Name;
}

std::string Sort::toString() const {
  switch (Kind) {
  case SortKind::Bool:
    return "Bool";
  case SortKind::Int:
    return "Int";
  case SortKind::Rat:
    return "Rat";
  case SortKind::Uninterpreted:
    return Name;
  case SortKind::Array:
    return "(Array " + Key->toString() + " " + Value->toString() + ")";
  }
  return "<bad-sort>";
}

namespace {
/// 64-bit mixer for the structural DAG hashes (splitmix64 finalizer).
uint64_t structMix(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ull + (H << 12) + (H >> 4);
  H = (H ^ (H >> 30)) * 0xbf58476d1ce4e5b9ull;
  H = (H ^ (H >> 27)) * 0x94d049bb133111ebull;
  return H ^ (H >> 31);
}

uint64_t sortFingerprintOf(SortKind K, const std::string &Name,
                           const Sort *Key, const Sort *Value) {
  uint64_t H = structMix(0x51d0f00du, static_cast<uint64_t>(K));
  if (!Name.empty())
    H = structMix(H, std::hash<std::string>()(Name));
  if (Key)
    H = structMix(H, Key->getFingerprint());
  if (Value)
    H = structMix(H, Value->getFingerprint());
  return H;
}
} // namespace

TermManager::TermManager() {
  auto MakeSort = [&](SortKind K) {
    Sorts.emplace_back(new Sort(K, "", nullptr, nullptr));
    Sorts.back()->Fingerprint = sortFingerprintOf(K, "", nullptr, nullptr);
    return Sorts.back().get();
  };
  BoolSort = MakeSort(SortKind::Bool);
  IntSort = MakeSort(SortKind::Int);
  RatSort = MakeSort(SortKind::Rat);
  LocSort = getUninterpretedSort("Loc");

  Term TrueNode;
  TrueNode.Kind = TermKind::True;
  TrueNode.SortPtr = BoolSort;
  TrueTerm = intern(std::move(TrueNode));
  Term FalseNode;
  FalseNode.Kind = TermKind::False;
  FalseNode.SortPtr = BoolSort;
  FalseTerm = intern(std::move(FalseNode));
  NilTerm = mkVar("nil", LocSort);
}

TermManager::TermManager(const TermManager &Base, Snapshot) {
  assert(Base.Frozen && "snapshot overlay over an unfrozen base");
  BaseMgr = &Base;
  BoolSort = Base.BoolSort;
  IntSort = Base.IntSort;
  RatSort = Base.RatSort;
  LocSort = Base.LocSort;
  TrueTerm = Base.TrueTerm;
  FalseTerm = Base.FalseTerm;
  NilTerm = Base.NilTerm;
  // Continue the base's id space so overlay ids never collide with base
  // ids — id-keyed solver structures see one consistent dense-ish space.
  NextId = Base.NextId;
  FreshCounter = Base.FreshCounter;
}

const Sort *TermManager::getUninterpretedSort(const std::string &Name) {
  if (BaseMgr) {
    auto BIt = BaseMgr->NamedSorts.find(Name);
    if (BIt != BaseMgr->NamedSorts.end())
      return BIt->second;
  }
  auto It = NamedSorts.find(Name);
  if (It != NamedSorts.end())
    return It->second;
  assert(!Frozen && "interning a new sort in a frozen TermManager");
  Sorts.emplace_back(new Sort(SortKind::Uninterpreted, Name, nullptr, nullptr));
  Sorts.back()->Fingerprint =
      sortFingerprintOf(SortKind::Uninterpreted, Name, nullptr, nullptr);
  const Sort *S = Sorts.back().get();
  NamedSorts.emplace(Name, S);
  return S;
}

const Sort *TermManager::getArraySort(const Sort *Key, const Sort *Value) {
  std::string Mangled = "[" + Key->toString() + "->" + Value->toString() + "]";
  if (BaseMgr) {
    auto BIt = BaseMgr->NamedSorts.find(Mangled);
    if (BIt != BaseMgr->NamedSorts.end())
      return BIt->second;
  }
  auto It = NamedSorts.find(Mangled);
  if (It != NamedSorts.end())
    return It->second;
  assert(!Frozen && "interning a new sort in a frozen TermManager");
  Sorts.emplace_back(new Sort(SortKind::Array, "", Key, Value));
  Sorts.back()->Fingerprint =
      sortFingerprintOf(SortKind::Array, "", Key, Value);
  const Sort *S = Sorts.back().get();
  NamedSorts.emplace(Mangled, S);
  return S;
}

const FuncDecl *TermManager::getFuncDecl(const std::string &Name,
                                         std::vector<const Sort *> ArgSorts,
                                         const Sort *RetSort) {
  if (BaseMgr) {
    auto BIt = BaseMgr->NamedDecls.find(Name);
    if (BIt != BaseMgr->NamedDecls.end()) {
      assert(BIt->second->getRetSort() == RetSort &&
             BIt->second->getArgSorts() == ArgSorts &&
             "function redeclared with a different signature");
      return BIt->second;
    }
  }
  auto It = NamedDecls.find(Name);
  if (It != NamedDecls.end()) {
    assert(It->second->getRetSort() == RetSort &&
           It->second->getArgSorts() == ArgSorts &&
           "function redeclared with a different signature");
    return It->second;
  }
  assert(!Frozen && "interning a new declaration in a frozen TermManager");
  Decls.emplace_back(new FuncDecl(Name, std::move(ArgSorts), RetSort));
  {
    FuncDecl *D = Decls.back().get();
    uint64_t H = structMix(0xdec1u, std::hash<std::string>()(D->Name));
    H = structMix(H, D->RetSort->getFingerprint());
    for (const Sort *A : D->ArgSorts)
      H = structMix(H, A->getFingerprint());
    D->Fingerprint = H;
  }
  const FuncDecl *D = Decls.back().get();
  NamedDecls.emplace(Name, D);
  return D;
}

size_t TermManager::hashTerm(const Term &Node) {
  size_t H = static_cast<size_t>(Node.Kind) * 0x9e3779b97f4a7c15ull;
  H ^= reinterpret_cast<size_t>(Node.SortPtr) + (H << 6) + (H >> 2);
  for (TermRef Arg : Node.Args)
    H ^= Arg->getId() + 0x9e3779b9u + (H << 6) + (H >> 2);
  for (TermRef BV : Node.Bound)
    H ^= BV->getId() * 131u + (H << 5);
  H ^= std::hash<std::string>()(Node.Name) + (H << 3);
  H ^= Node.IntVal.hash() * 7u;
  H ^= Node.RatVal.hash() * 13u;
  H ^= reinterpret_cast<size_t>(Node.Decl);
  return H;
}

bool TermManager::equalTerm(const Term &A, const Term &B) {
  return A.Kind == B.Kind && A.SortPtr == B.SortPtr && A.Args == B.Args &&
         A.Bound == B.Bound && A.Name == B.Name && A.Decl == B.Decl &&
         A.IntVal == B.IntVal && A.RatVal == B.RatVal;
}

TermRef TermManager::intern(Term &&Node) {
  size_t H = hashTerm(Node);
  // Probe the frozen base first: its sort/decl/term pointers are shared
  // with this overlay, so hash and equality agree across the two tables
  // and a base hit is returned with no copy and no lock.
  if (BaseMgr) {
    auto BIt = BaseMgr->Table.find(H);
    if (BIt != BaseMgr->Table.end())
      for (TermRef Existing : BIt->second)
        if (equalTerm(*Existing, Node))
          return Existing;
  }
  auto &Bucket = Table[H];
  for (TermRef Existing : Bucket)
    if (equalTerm(*Existing, Node))
      return Existing;
  assert(!Frozen && "interning a new term in a frozen TermManager");
  Node.Id = NextId++;
  // Structural DAG hash: two independently seeded 64-bit mixes over the
  // node's kind, payload and the (already computed) child hashes. O(1)
  // per node since children are interned first.
  for (int Half = 0; Half < 2; ++Half) {
    uint64_t SH = structMix(Half == 0 ? 0x1d5a11ceull : 0xc0dedbadull,
                            static_cast<uint64_t>(Node.Kind));
    switch (Node.Kind) {
    case TermKind::Var:
      SH = structMix(SH, std::hash<std::string>()(Node.Name));
      SH = structMix(SH, Node.SortPtr->getFingerprint());
      break;
    case TermKind::IntConst:
      SH = structMix(SH, Node.IntVal.hash());
      break;
    case TermKind::RatConst:
      SH = structMix(SH, Node.RatVal.hash());
      break;
    case TermKind::Apply:
      SH = structMix(SH, Node.Decl->getFingerprint());
      break;
    case TermKind::ConstArray:
      SH = structMix(SH, Node.SortPtr->getFingerprint());
      break;
    default:
      break;
    }
    for (TermRef Arg : Node.Args)
      SH = structMix(SH, Half == 0 ? Arg->getStructHashLo()
                                   : Arg->getStructHashHi());
    for (TermRef BV : Node.Bound)
      SH = structMix(SH, Half == 0 ? BV->getStructHashLo()
                                   : BV->getStructHashHi());
    (Half == 0 ? Node.StructHashLo : Node.StructHashHi) = SH;
  }
  Terms.emplace_back(new Term(std::move(Node)));
  TermRef Result = Terms.back().get();
  Bucket.push_back(Result);
  return Result;
}

TermRef TermManager::mkIntConst(BigInt Value) {
  Term Node;
  Node.Kind = TermKind::IntConst;
  Node.SortPtr = IntSort;
  Node.IntVal = std::move(Value);
  return intern(std::move(Node));
}

TermRef TermManager::mkRatConst(Rational Value) {
  Term Node;
  Node.Kind = TermKind::RatConst;
  Node.SortPtr = RatSort;
  Node.RatVal = std::move(Value);
  return intern(std::move(Node));
}

TermRef TermManager::mkVar(const std::string &Name, const Sort *S) {
  if (BaseMgr) {
    auto BIt = BaseMgr->NamedVars.find(Name);
    if (BIt != BaseMgr->NamedVars.end()) {
      assert(BIt->second->getSort() == S &&
             "variable redeclared with a different sort");
      return BIt->second;
    }
  }
  auto It = NamedVars.find(Name);
  if (It != NamedVars.end()) {
    assert(It->second->getSort() == S &&
           "variable redeclared with a different sort");
    return It->second;
  }
  Term Node;
  Node.Kind = TermKind::Var;
  Node.SortPtr = S;
  Node.Name = Name;
  TermRef Result = intern(std::move(Node));
  NamedVars.emplace(Name, Result);
  return Result;
}

TermRef TermManager::mkFreshVar(const std::string &Prefix, const Sort *S) {
  for (;;) {
    std::string Candidate = Prefix + "!" + std::to_string(FreshCounter++);
    if (NamedVars.count(Candidate))
      continue;
    if (BaseMgr && BaseMgr->NamedVars.count(Candidate))
      continue;
    return mkVar(Candidate, S);
  }
}

TermRef TermManager::mkNot(TermRef A) {
  assert(A->getSort()->isBool());
  if (A == TrueTerm)
    return FalseTerm;
  if (A == FalseTerm)
    return TrueTerm;
  if (A->getKind() == TermKind::Not)
    return A->getArg(0);
  Term Node;
  Node.Kind = TermKind::Not;
  Node.SortPtr = BoolSort;
  Node.Args = {A};
  return intern(std::move(Node));
}

TermRef TermManager::mkAnd(std::vector<TermRef> Args) {
  std::vector<TermRef> Flat;
  for (TermRef A : Args) {
    assert(A->getSort()->isBool());
    if (A == TrueTerm)
      continue;
    if (A == FalseTerm)
      return FalseTerm;
    if (A->getKind() == TermKind::And) {
      for (TermRef Sub : A->getArgs())
        Flat.push_back(Sub);
    } else {
      Flat.push_back(A);
    }
  }
  std::sort(Flat.begin(), Flat.end(),
            [](TermRef A, TermRef B) { return A->getId() < B->getId(); });
  Flat.erase(std::unique(Flat.begin(), Flat.end()), Flat.end());
  if (Flat.empty())
    return TrueTerm;
  if (Flat.size() == 1)
    return Flat[0];
  Term Node;
  Node.Kind = TermKind::And;
  Node.SortPtr = BoolSort;
  Node.Args = std::move(Flat);
  return intern(std::move(Node));
}

TermRef TermManager::mkOr(std::vector<TermRef> Args) {
  std::vector<TermRef> Flat;
  for (TermRef A : Args) {
    assert(A->getSort()->isBool());
    if (A == FalseTerm)
      continue;
    if (A == TrueTerm)
      return TrueTerm;
    if (A->getKind() == TermKind::Or) {
      for (TermRef Sub : A->getArgs())
        Flat.push_back(Sub);
    } else {
      Flat.push_back(A);
    }
  }
  std::sort(Flat.begin(), Flat.end(),
            [](TermRef A, TermRef B) { return A->getId() < B->getId(); });
  Flat.erase(std::unique(Flat.begin(), Flat.end()), Flat.end());
  if (Flat.empty())
    return FalseTerm;
  if (Flat.size() == 1)
    return Flat[0];
  Term Node;
  Node.Kind = TermKind::Or;
  Node.SortPtr = BoolSort;
  Node.Args = std::move(Flat);
  return intern(std::move(Node));
}

TermRef TermManager::mkImplies(TermRef A, TermRef B) {
  return mkOr(mkNot(A), B);
}

TermRef TermManager::mkIte(TermRef Cond, TermRef Then, TermRef Else) {
  assert(Cond->getSort()->isBool());
  assert(Then->getSort() == Else->getSort());
  if (Cond == TrueTerm)
    return Then;
  if (Cond == FalseTerm)
    return Else;
  if (Then == Else)
    return Then;
  if (Then->getSort()->isBool()) {
    // Fold boolean ite into connectives; keeps CNF conversion simpler.
    if (Then == TrueTerm)
      return mkOr(Cond, Else);
    if (Then == FalseTerm)
      return mkAnd(mkNot(Cond), Else);
    if (Else == TrueTerm)
      return mkOr(mkNot(Cond), Then);
    if (Else == FalseTerm)
      return mkAnd(Cond, Then);
  }
  Term Node;
  Node.Kind = TermKind::Ite;
  Node.SortPtr = Then->getSort();
  Node.Args = {Cond, Then, Else};
  return intern(std::move(Node));
}

TermRef TermManager::mkEq(TermRef A, TermRef B) {
  assert(A->getSort() == B->getSort() && "equality between distinct sorts");
  if (A == B)
    return TrueTerm;
  if (A->isValue() && B->isValue())
    return FalseTerm; // distinct interned constants of the same sort
  if (A->getSort()->isBool()) {
    if (A == TrueTerm)
      return B;
    if (B == TrueTerm)
      return A;
    if (A == FalseTerm)
      return mkNot(B);
    if (B == FalseTerm)
      return mkNot(A);
  }
  if (A->getId() > B->getId())
    std::swap(A, B);
  Term Node;
  Node.Kind = TermKind::Eq;
  Node.SortPtr = BoolSort;
  Node.Args = {A, B};
  return intern(std::move(Node));
}

static bool isNumericConst(TermRef T) {
  return T->getKind() == TermKind::IntConst ||
         T->getKind() == TermKind::RatConst;
}

static Rational constValue(TermRef T) {
  if (T->getKind() == TermKind::IntConst)
    return Rational(T->getIntValue());
  return T->getRatValue();
}

TermRef TermManager::mkAdd(std::vector<TermRef> Args) {
  assert(!Args.empty());
  const Sort *S = Args[0]->getSort();
  assert(S->isNumeric());
  std::vector<TermRef> Flat;
  Rational ConstSum;
  for (TermRef A : Args) {
    assert(A->getSort() == S && "mixed-sort addition");
    if (A->getKind() == TermKind::Add) {
      for (TermRef Sub : A->getArgs()) {
        if (isNumericConst(Sub))
          ConstSum += constValue(Sub);
        else
          Flat.push_back(Sub);
      }
    } else if (isNumericConst(A)) {
      ConstSum += constValue(A);
    } else {
      Flat.push_back(A);
    }
  }
  // Collect like terms: decompose c*t / t and sum coefficients per base.
  std::vector<std::pair<TermRef, Rational>> Bases;
  for (TermRef A : Flat) {
    TermRef Base = A;
    Rational Coeff(1);
    if (A->getKind() == TermKind::Mul) {
      Coeff = constValue(A->getArg(0));
      Base = A->getArg(1);
    }
    bool Found = false;
    for (auto &[B, C] : Bases) {
      if (B == Base) {
        C += Coeff;
        Found = true;
        break;
      }
    }
    if (!Found)
      Bases.emplace_back(Base, Coeff);
  }
  Flat.clear();
  for (const auto &[Base, Coeff] : Bases)
    if (!Coeff.isZero())
      Flat.push_back(mkMulConst(Coeff, Base));
  if (!ConstSum.isZero() || Flat.empty()) {
    if (S->isInt()) {
      assert(ConstSum.isInteger());
      Flat.push_back(mkIntConst(ConstSum.numerator()));
    } else {
      Flat.push_back(mkRatConst(ConstSum));
    }
  }
  if (Flat.size() == 1)
    return Flat[0];
  std::sort(Flat.begin(), Flat.end(),
            [](TermRef A, TermRef B) { return A->getId() < B->getId(); });
  Term Node;
  Node.Kind = TermKind::Add;
  Node.SortPtr = S;
  Node.Args = std::move(Flat);
  return intern(std::move(Node));
}

TermRef TermManager::mkMulConst(const Rational &Const, TermRef A) {
  const Sort *S = A->getSort();
  assert(S->isNumeric());
  if (isNumericConst(A)) {
    Rational V = constValue(A) * Const;
    if (S->isInt()) {
      assert(V.isInteger());
      return mkIntConst(V.numerator());
    }
    return mkRatConst(V);
  }
  if (Const.isZero())
    return S->isInt() ? mkIntConst(0) : mkRatConst(Rational(0));
  if (Const == Rational(1))
    return A;
  if (A->getKind() == TermKind::Mul)
    return mkMulConst(Const * constValue(A->getArg(0)), A->getArg(1));
  if (A->getKind() == TermKind::Add) {
    std::vector<TermRef> Scaled;
    Scaled.reserve(A->getNumArgs());
    for (TermRef Sub : A->getArgs())
      Scaled.push_back(mkMulConst(Const, Sub));
    return mkAdd(std::move(Scaled));
  }
  TermRef ConstTerm;
  if (S->isInt()) {
    assert(Const.isInteger() && "non-integer coefficient on Int term");
    ConstTerm = mkIntConst(Const.numerator());
  } else {
    ConstTerm = mkRatConst(Const);
  }
  Term Node;
  Node.Kind = TermKind::Mul;
  Node.SortPtr = S;
  Node.Args = {ConstTerm, A};
  return intern(std::move(Node));
}

TermRef TermManager::mkNeg(TermRef A) { return mkMulConst(Rational(-1), A); }

TermRef TermManager::mkSub(TermRef A, TermRef B) {
  return mkAdd(A, mkNeg(B));
}

TermRef TermManager::mkLe(TermRef A, TermRef B) {
  assert(A->getSort() == B->getSort() && A->getSort()->isNumeric());
  if (A == B)
    return TrueTerm;
  if (isNumericConst(A) && isNumericConst(B))
    return mkBool(constValue(A) <= constValue(B));
  Term Node;
  Node.Kind = TermKind::Le;
  Node.SortPtr = BoolSort;
  Node.Args = {A, B};
  return intern(std::move(Node));
}

TermRef TermManager::mkLt(TermRef A, TermRef B) {
  assert(A->getSort() == B->getSort() && A->getSort()->isNumeric());
  if (A == B)
    return FalseTerm;
  if (isNumericConst(A) && isNumericConst(B))
    return mkBool(constValue(A) < constValue(B));
  Term Node;
  Node.Kind = TermKind::Lt;
  Node.SortPtr = BoolSort;
  Node.Args = {A, B};
  return intern(std::move(Node));
}

TermRef TermManager::mkSelect(TermRef Array, TermRef Index) {
  const Sort *S = Array->getSort();
  assert(S->isArray() && S->getKey() == Index->getSort());
  if (Array->getKind() == TermKind::Store) {
    if (Array->getArg(1) == Index)
      return Array->getArg(2);
  }
  if (Array->getKind() == TermKind::ConstArray)
    return Array->getArg(0);
  Term Node;
  Node.Kind = TermKind::Select;
  Node.SortPtr = S->getValue();
  Node.Args = {Array, Index};
  return intern(std::move(Node));
}

TermRef TermManager::mkStore(TermRef Array, TermRef Index, TermRef Value) {
  const Sort *S = Array->getSort();
  assert(S->isArray() && S->getKey() == Index->getSort() &&
         S->getValue() == Value->getSort());
  if (Array->getKind() == TermKind::Store && Array->getArg(1) == Index)
    Array = Array->getArg(0);
  Term Node;
  Node.Kind = TermKind::Store;
  Node.SortPtr = S;
  Node.Args = {Array, Index, Value};
  return intern(std::move(Node));
}

TermRef TermManager::mkConstArray(const Sort *ArraySort, TermRef Value) {
  assert(ArraySort->isArray() && ArraySort->getValue() == Value->getSort());
  Term Node;
  Node.Kind = TermKind::ConstArray;
  Node.SortPtr = ArraySort;
  Node.Args = {Value};
  return intern(std::move(Node));
}

static bool isConstBoolArray(TermRef T, bool Value) {
  return T->getKind() == TermKind::ConstArray &&
         T->getArg(0)->getKind() ==
             (Value ? TermKind::True : TermKind::False);
}

TermRef TermManager::mkMapOr(TermRef A, TermRef B) {
  assert(A->getSort() == B->getSort() && A->getSort()->isArray() &&
         A->getSort()->getValue()->isBool());
  if (A == B)
    return A;
  if (isConstBoolArray(A, false))
    return B;
  if (isConstBoolArray(B, false))
    return A;
  if (isConstBoolArray(A, true) || isConstBoolArray(B, true))
    return mkConstArray(A->getSort(), mkTrue());
  if (A->getId() > B->getId())
    std::swap(A, B);
  Term Node;
  Node.Kind = TermKind::MapOr;
  Node.SortPtr = A->getSort();
  Node.Args = {A, B};
  return intern(std::move(Node));
}

TermRef TermManager::mkMapAnd(TermRef A, TermRef B) {
  assert(A->getSort() == B->getSort() && A->getSort()->isArray() &&
         A->getSort()->getValue()->isBool());
  if (A == B)
    return A;
  if (isConstBoolArray(A, true))
    return B;
  if (isConstBoolArray(B, true))
    return A;
  if (isConstBoolArray(A, false) || isConstBoolArray(B, false))
    return mkConstArray(A->getSort(), mkFalse());
  if (A->getId() > B->getId())
    std::swap(A, B);
  Term Node;
  Node.Kind = TermKind::MapAnd;
  Node.SortPtr = A->getSort();
  Node.Args = {A, B};
  return intern(std::move(Node));
}

TermRef TermManager::mkMapDiff(TermRef A, TermRef B) {
  assert(A->getSort() == B->getSort() && A->getSort()->isArray() &&
         A->getSort()->getValue()->isBool());
  if (isConstBoolArray(B, false))
    return A;
  if (A == B || isConstBoolArray(A, false) || isConstBoolArray(B, true))
    return mkConstArray(A->getSort(), mkFalse());
  Term Node;
  Node.Kind = TermKind::MapDiff;
  Node.SortPtr = A->getSort();
  Node.Args = {A, B};
  return intern(std::move(Node));
}

TermRef TermManager::mkPwIte(TermRef Guard, TermRef A, TermRef B) {
  assert(Guard->getSort()->isArray() &&
         Guard->getSort()->getValue()->isBool());
  assert(A->getSort() == B->getSort() && A->getSort()->isArray() &&
         A->getSort()->getKey() == Guard->getSort()->getKey());
  if (A == B)
    return A;
  if (isConstBoolArray(Guard, true))
    return A;
  if (isConstBoolArray(Guard, false))
    return B;
  Term Node;
  Node.Kind = TermKind::PwIte;
  Node.SortPtr = A->getSort();
  Node.Args = {Guard, A, B};
  return intern(std::move(Node));
}

TermRef TermManager::mkEmptySet(const Sort *ElemSort) {
  return mkConstArray(getArraySort(ElemSort, BoolSort), mkFalse());
}

TermRef TermManager::mkSingleton(TermRef Elem) {
  return mkSetInsert(mkEmptySet(Elem->getSort()), Elem);
}

TermRef TermManager::mkApply(const FuncDecl *Decl, std::vector<TermRef> Args) {
  assert(Decl->getArgSorts().size() == Args.size());
  for (size_t I = 0; I < Args.size(); ++I)
    assert(Args[I]->getSort() == Decl->getArgSorts()[I]);
  Term Node;
  Node.Kind = TermKind::Apply;
  Node.SortPtr = Decl->getRetSort();
  Node.Args = std::move(Args);
  Node.Decl = Decl;
  return intern(std::move(Node));
}

TermRef TermManager::mkForall(std::vector<TermRef> BoundVars, TermRef Body) {
  assert(Body->getSort()->isBool());
  for ([[maybe_unused]] TermRef BV : BoundVars)
    assert(BV->getKind() == TermKind::Var && "binder must be a Var term");
  if (Body == TrueTerm || Body == FalseTerm || BoundVars.empty())
    return Body;
  Term Node;
  Node.Kind = TermKind::Forall;
  Node.SortPtr = BoolSort;
  Node.Args = {Body};
  Node.Bound = std::move(BoundVars);
  return intern(std::move(Node));
}

namespace {
/// Rebuilds a term bottom-up through the smart constructors, applying a
/// Var substitution. Memoised per call.
class Substituter {
public:
  Substituter(TermManager &TM,
              const std::unordered_map<TermRef, TermRef> &Map)
      : TM(TM), Map(Map) {}

  TermRef visit(TermRef T) {
    auto It = Cache.find(T);
    if (It != Cache.end())
      return It->second;
    TermRef Result = compute(T);
    Cache.emplace(T, Result);
    return Result;
  }

private:
  TermRef compute(TermRef T);

  TermManager &TM;
  const std::unordered_map<TermRef, TermRef> &Map;
  std::unordered_map<TermRef, TermRef> Cache;
};
} // namespace

TermRef Substituter::compute(TermRef T) {
  switch (T->getKind()) {
  case TermKind::Var: {
    auto It = Map.find(T);
    return It == Map.end() ? T : It->second;
  }
  case TermKind::True:
  case TermKind::False:
  case TermKind::IntConst:
  case TermKind::RatConst:
    return T;
  default:
    break;
  }
  std::vector<TermRef> NewArgs;
  NewArgs.reserve(T->getNumArgs());
  bool Changed = false;
  for (TermRef Arg : T->getArgs()) {
    TermRef NewArg = visit(Arg);
    Changed |= NewArg != Arg;
    NewArgs.push_back(NewArg);
  }
  if (!Changed)
    return T;
  switch (T->getKind()) {
  case TermKind::Not:
    return TM.mkNot(NewArgs[0]);
  case TermKind::And:
    return TM.mkAnd(std::move(NewArgs));
  case TermKind::Or:
    return TM.mkOr(std::move(NewArgs));
  case TermKind::Ite:
    return TM.mkIte(NewArgs[0], NewArgs[1], NewArgs[2]);
  case TermKind::Eq:
    return TM.mkEq(NewArgs[0], NewArgs[1]);
  case TermKind::Add:
    return TM.mkAdd(std::move(NewArgs));
  case TermKind::Mul:
    return TM.mkMulConst(NewArgs[0]->getKind() == TermKind::IntConst
                             ? Rational(NewArgs[0]->getIntValue())
                             : NewArgs[0]->getRatValue(),
                         NewArgs[1]);
  case TermKind::Le:
    return TM.mkLe(NewArgs[0], NewArgs[1]);
  case TermKind::Lt:
    return TM.mkLt(NewArgs[0], NewArgs[1]);
  case TermKind::Select:
    return TM.mkSelect(NewArgs[0], NewArgs[1]);
  case TermKind::Store:
    return TM.mkStore(NewArgs[0], NewArgs[1], NewArgs[2]);
  case TermKind::ConstArray:
    return TM.mkConstArray(T->getSort(), NewArgs[0]);
  case TermKind::MapOr:
    return TM.mkMapOr(NewArgs[0], NewArgs[1]);
  case TermKind::MapAnd:
    return TM.mkMapAnd(NewArgs[0], NewArgs[1]);
  case TermKind::MapDiff:
    return TM.mkMapDiff(NewArgs[0], NewArgs[1]);
  case TermKind::PwIte:
    return TM.mkPwIte(NewArgs[0], NewArgs[1], NewArgs[2]);
  case TermKind::Apply:
    return TM.mkApply(T->getDecl(), std::move(NewArgs));
  case TermKind::Forall: {
    // Shadowed binders must not be substituted; our pipeline never maps
    // bound names, but guard anyway by filtering them out.
    std::vector<TermRef> Bound = T->getBoundVars();
    for ([[maybe_unused]] TermRef BV : Bound)
      assert(!Map.count(BV) && "substitution would capture a bound variable");
    return TM.mkForall(std::move(Bound), NewArgs[0]);
  }
  default:
    assert(false && "unhandled term kind in substitution");
    return T;
  }
}

TermRef TermManager::substitute(
    TermRef T, const std::unordered_map<TermRef, TermRef> &Map) {
  if (Map.empty())
    return T;
  Substituter S(*this, Map);
  return S.visit(T);
}

const Sort *TermManager::importSort(const Sort *Foreign) {
  switch (Foreign->getKind()) {
  case SortKind::Bool:
    return BoolSort;
  case SortKind::Int:
    return IntSort;
  case SortKind::Rat:
    return RatSort;
  case SortKind::Uninterpreted:
    return getUninterpretedSort(Foreign->getName());
  case SortKind::Array:
    return getArraySort(importSort(Foreign->getKey()),
                        importSort(Foreign->getValue()));
  }
  assert(false && "unhandled sort kind");
  return BoolSort;
}

TermRef TermManager::import(TermRef Foreign) {
  trace::counter("smt.term_imports").add(1);
  // Iterative post-order: VC terms can be deep (long store chains), so
  // recursion is not an option.
  std::vector<TermRef> Stack = {Foreign};
  while (!Stack.empty()) {
    TermRef T = Stack.back();
    if (ImportCache.count(T)) {
      Stack.pop_back();
      continue;
    }
    bool Ready = true;
    for (TermRef Arg : T->getArgs())
      if (!ImportCache.count(Arg)) {
        Stack.push_back(Arg);
        Ready = false;
      }
    if (T->getKind() == TermKind::Forall)
      for (TermRef BV : T->getBoundVars())
        if (!ImportCache.count(BV)) {
          Stack.push_back(BV);
          Ready = false;
        }
    if (!Ready)
      continue;
    Stack.pop_back();

    std::vector<TermRef> Args;
    Args.reserve(T->getNumArgs());
    for (TermRef Arg : T->getArgs())
      Args.push_back(ImportCache[Arg]);

    TermRef Local = nullptr;
    switch (T->getKind()) {
    case TermKind::True:
      Local = TrueTerm;
      break;
    case TermKind::False:
      Local = FalseTerm;
      break;
    case TermKind::IntConst:
      Local = mkIntConst(T->getIntValue());
      break;
    case TermKind::RatConst:
      Local = mkRatConst(T->getRatValue());
      break;
    case TermKind::Var:
      Local = mkVar(T->getName(), importSort(T->getSort()));
      break;
    case TermKind::Not:
      Local = mkNot(Args[0]);
      break;
    case TermKind::And:
      Local = mkAnd(std::move(Args));
      break;
    case TermKind::Or:
      Local = mkOr(std::move(Args));
      break;
    case TermKind::Implies:
      Local = mkImplies(Args[0], Args[1]);
      break;
    case TermKind::Ite:
      Local = mkIte(Args[0], Args[1], Args[2]);
      break;
    case TermKind::Eq:
      Local = mkEq(Args[0], Args[1]);
      break;
    case TermKind::Add:
      Local = mkAdd(std::move(Args));
      break;
    case TermKind::Mul:
      Local = mkMulConst(Args[0]->getKind() == TermKind::IntConst
                             ? Rational(Args[0]->getIntValue())
                             : Args[0]->getRatValue(),
                         Args[1]);
      break;
    case TermKind::Le:
      Local = mkLe(Args[0], Args[1]);
      break;
    case TermKind::Lt:
      Local = mkLt(Args[0], Args[1]);
      break;
    case TermKind::Select:
      Local = mkSelect(Args[0], Args[1]);
      break;
    case TermKind::Store:
      Local = mkStore(Args[0], Args[1], Args[2]);
      break;
    case TermKind::ConstArray:
      Local = mkConstArray(importSort(T->getSort()), Args[0]);
      break;
    case TermKind::MapOr:
      Local = mkMapOr(Args[0], Args[1]);
      break;
    case TermKind::MapAnd:
      Local = mkMapAnd(Args[0], Args[1]);
      break;
    case TermKind::MapDiff:
      Local = mkMapDiff(Args[0], Args[1]);
      break;
    case TermKind::PwIte:
      Local = mkPwIte(Args[0], Args[1], Args[2]);
      break;
    case TermKind::Apply: {
      const FuncDecl *D = T->getDecl();
      std::vector<const Sort *> ArgSorts;
      ArgSorts.reserve(D->getArgSorts().size());
      for (const Sort *S : D->getArgSorts())
        ArgSorts.push_back(importSort(S));
      Local = mkApply(getFuncDecl(D->getName(), std::move(ArgSorts),
                                  importSort(D->getRetSort())),
                      std::move(Args));
      break;
    }
    case TermKind::Forall: {
      std::vector<TermRef> Bound;
      Bound.reserve(T->getBoundVars().size());
      for (TermRef BV : T->getBoundVars())
        Bound.push_back(ImportCache[BV]);
      Local = mkForall(std::move(Bound), Args[0]);
      break;
    }
    }
    assert(Local && "unhandled term kind in import");
    ImportCache.emplace(T, Local);
  }
  return ImportCache[Foreign];
}

bool TermManager::containsQuantifier(TermRef T) const {
  std::vector<TermRef> Work = {T};
  std::unordered_map<TermRef, bool> Seen;
  while (!Work.empty()) {
    TermRef Cur = Work.back();
    Work.pop_back();
    if (Seen.count(Cur))
      continue;
    Seen.emplace(Cur, true);
    if (Cur->getKind() == TermKind::Forall)
      return true;
    for (TermRef Arg : Cur->getArgs())
      Work.push_back(Arg);
  }
  return false;
}
