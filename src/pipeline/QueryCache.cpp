//===- pipeline/QueryCache.cpp - Structural query result cache -------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "pipeline/QueryCache.h"

using namespace ids;
using namespace ids::pipeline;
using namespace ids::smt;

std::string QueryCache::keyFor(TermRef Query) {
  // Post-order DFS assigning dense indices; each node serializes its kind,
  // payload, and argument indices. First-visit order is determined by the
  // DAG structure alone, so identical DAGs in different managers produce
  // identical keys.
  std::string Key;
  std::unordered_map<TermRef, unsigned> Index;
  std::vector<TermRef> Stack = {Query};
  while (!Stack.empty()) {
    TermRef T = Stack.back();
    if (Index.count(T)) {
      Stack.pop_back();
      continue;
    }
    bool Ready = true;
    // Push in reverse so children are visited in argument order.
    for (auto It = T->getArgs().rbegin(); It != T->getArgs().rend(); ++It)
      if (!Index.count(*It)) {
        Stack.push_back(*It);
        Ready = false;
      }
    if (T->getKind() == TermKind::Forall)
      for (auto It = T->getBoundVars().rbegin();
           It != T->getBoundVars().rend(); ++It)
        if (!Index.count(*It)) {
          Stack.push_back(*It);
          Ready = false;
        }
    if (!Ready)
      continue;
    Stack.pop_back();

    Key += 'k';
    Key += std::to_string(static_cast<unsigned>(T->getKind()));
    switch (T->getKind()) {
    case TermKind::Var:
      Key += 'v';
      Key += T->getName();
      Key += ':';
      Key += T->getSort()->toString();
      break;
    case TermKind::IntConst:
      Key += 'i';
      Key += T->getIntValue().toString();
      break;
    case TermKind::RatConst:
      Key += 'r';
      Key += T->getRatValue().toString();
      break;
    case TermKind::Apply:
      Key += 'f';
      Key += T->getDecl()->getName();
      Key += ':';
      Key += T->getDecl()->getRetSort()->toString();
      break;
    case TermKind::ConstArray:
      Key += 'c';
      Key += T->getSort()->toString();
      break;
    case TermKind::Forall:
      Key += 'q';
      for (TermRef BV : T->getBoundVars()) {
        Key += std::to_string(Index[BV]);
        Key += '.';
      }
      break;
    default:
      break;
    }
    Key += '(';
    for (TermRef Arg : T->getArgs()) {
      Key += std::to_string(Index[Arg]);
      Key += ',';
    }
    Key += ')';
    Index.emplace(T, static_cast<unsigned>(Index.size()));
    Key += ';';
  }
  return Key;
}

bool QueryCache::lookup(const std::string &Key, Outcome &Out) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Map.find(Key);
  if (It == Map.end())
    return false;
  Out = It->second;
  return true;
}

void QueryCache::insert(const std::string &Key, Outcome O) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Map.emplace(Key, std::move(O));
}

size_t QueryCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Map.size();
}
