//===- structures/Registry.cpp - Embedded benchmark suite ------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "structures/Registry.h"

using namespace ids;
using namespace ids::structures;

#include "structures/Sources.h"

const std::vector<Benchmark> &structures::allBenchmarks() {
  static const std::vector<Benchmark> All = {
      {"singly-linked-list", "Singly-Linked List", SinglyLinkedListSource},
      {"sorted-list", "Sorted List", SortedListSource},
      {"bst", "Binary Search Tree", BstSource},
      {"treap", "Treap", TreapSource},
  };
  return All;
}

const char *structures::findBenchmark(const std::string &Name) {
  for (const Benchmark &B : allBenchmarks())
    if (Name == B.Name)
      return B.Source;
  return nullptr;
}
