//===- tests/lang/ChecksTest.cpp - Ghost/WB discipline tests ---------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "lang/Checks.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"

#include <gtest/gtest.h>

using namespace ids;
using namespace ids::lang;

namespace {
const char *Prelude = R"(
structure S {
  field next: Loc;
  field key: int;
  ghost field prev: Loc;
  ghost field len: int;
  local l (x) { (x.next != nil ==> x.next.prev == x)
             && (x.next != nil ==> x.len == x.next.len + 1) }
  correlation (y) { y.prev == nil }
  impact next [l] { x, old(x.next) }
  impact prev [l] { x, old(x.prev) }
  impact len  [l] { x, x.prev }
}
)";

enum class Which { Ghost, WellBehaved };

bool passes(Which W, const std::string &ProcText, std::string *Err = nullptr) {
  DiagEngine Diags;
  auto M = parseModule(std::string(Prelude) + ProcText, Diags);
  EXPECT_TRUE(M != nullptr) << Diags.toString();
  if (!M)
    return false;
  EXPECT_TRUE(typeCheck(*M, Diags)) << Diags.toString();
  bool Ok = W == Which::Ghost ? checkGhostDiscipline(*M, Diags)
                              : checkWellBehaved(*M, Diags);
  if (Err)
    *Err = Diags.toString();
  return Ok;
}
} // namespace

TEST(GhostCheckTest, UserCannotReadGhost) {
  EXPECT_FALSE(passes(Which::Ghost, R"(
procedure p(a: Loc) returns (r: Loc)
{
  r := a.prev;
}
)"));
  // Ghost variables may read ghost fields.
  EXPECT_TRUE(passes(Which::Ghost, R"(
procedure p(a: Loc) returns (r: Loc)
{
  ghost var g: Loc := a.prev;
  r := a;
}
)"));
}

TEST(GhostCheckTest, GhostCannotWriteUserState) {
  EXPECT_FALSE(passes(Which::Ghost, R"(
procedure p(a: Loc) returns (r: Loc)
{
  ghost { r := a; }
}
)"));
  EXPECT_FALSE(passes(Which::Ghost, R"(
procedure p(a: Loc) returns (r: Loc)
{
  ghost { Mut(a.next, nil); }
  r := a;
}
)"));
  // Mutating a ghost field inside a ghost block is the normal FWYB repair.
  EXPECT_TRUE(passes(Which::Ghost, R"(
procedure p(a: Loc) returns (r: Loc)
{
  ghost { Mut(a.prev, nil); }
  r := a;
}
)"));
}

TEST(GhostCheckTest, UserControlFlowCannotDependOnGhost) {
  EXPECT_FALSE(passes(Which::Ghost, R"(
procedure p(a: Loc) returns (r: Loc)
{
  if (a.prev == nil) { r := a; } else { r := nil; }
}
)"));
  EXPECT_TRUE(passes(Which::Ghost, R"(
procedure p(a: Loc) returns (r: Loc)
{
  ghost {
    if (a.prev == nil) { Mut(a.prev, nil); }
  }
  r := a;
}
)"));
}

TEST(GhostCheckTest, GhostLoopsNeedDecreases) {
  EXPECT_FALSE(passes(Which::Ghost, R"(
procedure p(a: Loc) returns (r: Loc)
{
  ghost {
    var c: Loc := a;
    while (c != nil) { c := c.prev; }
  }
  r := a;
}
)"));
  EXPECT_TRUE(passes(Which::Ghost, R"(
procedure p(a: Loc) returns (r: Loc)
{
  ghost {
    var c: Loc := a;
    var n: int := 10;
    while (c != nil && n > 0) decreases n { c := c.prev; n := n - 1; }
  }
  r := a;
}
)"));
}

TEST(WellBehavedTest, BranchConditionsMustNotMentionBr) {
  EXPECT_FALSE(passes(Which::WellBehaved, R"(
procedure p(a: Loc) returns (r: Loc)
{
  if (a in br(l)) { r := a; } else { r := nil; }
}
)"));
}

TEST(WellBehavedTest, MutationNeedsImpactDeclaration) {
  // `key` is read by no impact declaration... the group's LC does not read
  // key at all, so mutating it is fine.
  EXPECT_TRUE(passes(Which::WellBehaved, R"(
procedure p(a: Loc) returns (r: Loc)
{
  Mut(a.key, 3);
  r := a;
}
)"));
}

TEST(WellBehavedTest, MissingImpactForLcField) {
  // A structure whose LC reads `key` but declares no impact for it.
  DiagEngine Diags;
  auto M = parseModule(R"(
structure S {
  field next: Loc;
  field key: int;
  ghost field prev: Loc;
  local l (x) { (x.next != nil ==> x.key <= x.next.key) }
  correlation (y) { y.prev == nil }
  impact next [l] { x, old(x.next) }
}
procedure p(a: Loc) returns (r: Loc)
{
  Mut(a.key, 3);
  r := a;
}
)",
                      Diags);
  ASSERT_TRUE(M != nullptr) << Diags.toString();
  ASSERT_TRUE(typeCheck(*M, Diags)) << Diags.toString();
  EXPECT_FALSE(checkWellBehaved(*M, Diags));
}

TEST(MetricsTest, CountsCodeSpecAnnotation) {
  DiagEngine Diags;
  auto M = parseModule(std::string(Prelude) + R"(
procedure p(a: Loc) returns (r: Loc)
  requires a != nil
  ensures r == a
  modifies {a}
{
  r := a;
  InferLCOutsideBr(l, a);
  ghost { Mut(a.prev, nil); }
  Mut(a.next, nil);
}
)",
                      Diags);
  ASSERT_TRUE(M != nullptr);
  ASSERT_TRUE(typeCheck(*M, Diags));
  ProcMetrics PM = computeMetrics(M->Structure, M->Procs[0]);
  EXPECT_EQ(PM.SpecLines, 3u);
  EXPECT_EQ(PM.CodeLines, 2u);  // r := a; Mut(a.next,...)
  EXPECT_EQ(PM.AnnotLines, 2u); // InferLC...; ghost Mut
}

TEST(MetricsTest, LcSizeCountsConjuncts) {
  DiagEngine Diags;
  auto M = parseModule(std::string(Prelude) + R"(
procedure p(a: Loc) returns (r: Loc) { r := a; }
)",
                      Diags);
  ASSERT_TRUE(M != nullptr);
  EXPECT_EQ(localConditionSize(M->Structure), 2u);
}

TEST(WellBehavedTest, SharedFieldNeedsImpactForEveryGroup) {
  // A field read by two local-condition groups: mutating it with an
  // impact set declared for only one group violates the Mutation rule
  // for the other; the multi-group clause fixes it.
  const char *Tmpl = R"(
structure S {
  field next: Loc;
  field key: int;
  local a (x) { x.key >= 0 }
  local b (x) { x.next != nil ==> x.key <= x.next.key }
  impact next [b] { x }
  IMPACTS
}
procedure p(v: Loc)
  requires v != nil
{
  Mut(v.key, 1);
}
)";
  auto Run = [&](const std::string &Impacts) {
    std::string Src = Tmpl;
    Src.replace(Src.find("IMPACTS"), 7, Impacts);
    DiagEngine Diags;
    auto M = parseModule(Src, Diags);
    EXPECT_TRUE(M != nullptr) << Diags.toString();
    if (!M)
      return false;
    EXPECT_TRUE(typeCheck(*M, Diags)) << Diags.toString();
    return checkWellBehaved(*M, Diags);
  };
  EXPECT_FALSE(Run("impact key [a] { x }"));
  EXPECT_FALSE(Run("impact key [b] { x }"));
  EXPECT_TRUE(Run("impact key [a, b] { x }"));
}
