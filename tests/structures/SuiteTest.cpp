//===- tests/structures/SuiteTest.cpp - Benchmark suite tests --------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integration tests over the embedded Table 2 suite: every benchmark
/// passes the front end, impact sets machine-check, the fast methods
/// verify end-to-end, and seeded annotation bugs are caught (mutation
/// testing of the methodology itself). The long-running methods (e.g.
/// the recursive sorted-list insert) are exercised by bench_table2
/// rather than unit tests to keep ctest fast.
///
//===----------------------------------------------------------------------===//

#include "driver/Verifier.h"
#include "structures/Registry.h"

#include <gtest/gtest.h>

using namespace ids;
using namespace ids::driver;

namespace {
ModuleResult run(const char *Bench, VerifyOptions Opts) {
  const char *Src = structures::findBenchmarkSource(Bench);
  EXPECT_NE(Src, nullptr) << Bench;
  DiagEngine Diags;
  ModuleResult R = verifySource(Src, Opts, Diags);
  EXPECT_TRUE(R.FrontEndOk) << Diags.toString();
  return R;
}
} // namespace

TEST(SuiteTest, AllBenchmarksPassFrontEndAndImpactChecks) {
  for (const structures::Benchmark &B : structures::allBenchmarks()) {
    VerifyOptions Opts;
    Opts.OnlyProc = "<impacts only>";
    ModuleResult R = run(B.Name, Opts);
    EXPECT_FALSE(R.Impacts.empty()) << B.Name;
    for (const ImpactResult &I : R.Impacts)
      EXPECT_TRUE(I.Ok) << B.Name << ": impact " << I.Field << " ["
                        << I.Group << "]";
    EXPECT_LT(R.ImpactSeconds, 3.0)
        << B.Name << ": the paper reports <3s per structure";
  }
}

TEST(SuiteTest, SinglyLinkedListVerifies) {
  VerifyOptions Opts;
  Opts.CheckImpacts = false;
  ModuleResult R = run("singly-linked-list", Opts);
  ASSERT_EQ(R.Procs.size(), 2u);
  for (const ProcResult &P : R.Procs)
    EXPECT_EQ(P.St, Status::Verified)
        << P.Name << ": " << P.FailedObligation;
}

TEST(SuiteTest, BstFindVerifies) {
  VerifyOptions Opts;
  Opts.CheckImpacts = false;
  Opts.OnlyProc = "find";
  ModuleResult R = run("bst", Opts);
  ASSERT_EQ(R.Procs.size(), 1u);
  EXPECT_EQ(R.Procs[0].St, Status::Verified)
      << R.Procs[0].FailedObligation;
}

TEST(SuiteTest, TreapVerifies) {
  VerifyOptions Opts;
  Opts.CheckImpacts = false;
  ModuleResult R = run("treap", Opts);
  for (const ProcResult &P : R.Procs)
    EXPECT_EQ(P.St, Status::Verified)
        << P.Name << ": " << P.FailedObligation;
}

TEST(SuiteTest, LcSizesMatchExpectations) {
  // LC sizes are stable properties of the definitions (Table 2 column 2).
  struct Row {
    const char *Name;
    unsigned LcSize;
  } Rows[] = {
      {"singly-linked-list", 8},
      {"sorted-list", 9},
      {"sorted-list-minmax", 8},
      {"circular-list", 6},
      {"bst", 13},
      {"bst-scaffold", 17},
      {"avl", 22},
      {"red-black-tree", 20},
      {"treap", 13},
      {"scheduler-queue", 20},
  };
  for (const Row &Want : Rows) {
    VerifyOptions Opts;
    Opts.OnlyProc = "<none>";
    Opts.CheckImpacts = false;
    ModuleResult R = run(Want.Name, Opts);
    EXPECT_EQ(R.LcSize, Want.LcSize) << Want.Name;
  }
}

namespace {
/// Seeds a textual mutation into a benchmark source and expects the
/// verifier to reject some procedure (mutation testing for the
/// methodology: broken annotations must not verify).
void expectMutationCaught(const char *Bench, const std::string &From,
                          const std::string &To) {
  std::string Src = structures::findBenchmarkSource(Bench);
  size_t Pos = Src.find(From);
  ASSERT_NE(Pos, std::string::npos) << From;
  Src.replace(Pos, From.size(), To);
  DiagEngine Diags;
  VerifyOptions Opts;
  Opts.CheckImpacts = false;
  ModuleResult R = verifySource(Src, Opts, Diags);
  if (!R.FrontEndOk)
    return; // rejected even earlier, fine
  bool AnyFailed = false;
  for (const ProcResult &P : R.Procs)
    AnyFailed = AnyFailed || P.St != Status::Verified;
  EXPECT_TRUE(AnyFailed) << "mutation survived: " << From << " -> " << To;
}
} // namespace

TEST(SuiteTest, MutationForgottenGhostRepairCaught) {
  // Dropping the length repair on the new head must fail LC(z).
  expectMutationCaught("singly-linked-list",
                       "Mut(z.length, x.length + 1);", "");
}

TEST(SuiteTest, MutationForgottenBrRemovalCaught) {
  // Never removing x from Br violates `ensures br(l) == {}`.
  expectMutationCaught("singly-linked-list", "AssertLCAndRemove(l, x);",
                       "");
}

TEST(SuiteTest, MutationWrongKeysRepairCaught) {
  expectMutationCaught("singly-linked-list",
                       "Mut(z.keys, {k} union x.keys);",
                       "Mut(z.keys, x.keys);");
}

TEST(SuiteTest, MutationWrongBstGuardCaught) {
  // Searching the wrong subtree breaks nothing structural, but claiming
  // the found key matches must still hold — flip the comparison so the
  // loop can return a node without checking its key.
  expectMutationCaught("bst", "if (cur.key == k) {\n      res := cur;",
                       "if (cur.key <= k) {\n      res := cur;");
}

namespace {
/// Every procedure of \p Bench verifies under the default options (used
/// for the fast benchmarks; the slow ones run in bench_table2/e2e).
void expectAllVerified(const char *Bench) {
  VerifyOptions Opts;
  Opts.CheckImpacts = false;
  ModuleResult R = run(Bench, Opts);
  EXPECT_FALSE(R.Procs.empty()) << Bench;
  for (const ProcResult &P : R.Procs)
    EXPECT_EQ(P.St, Status::Verified)
        << Bench << "." << P.Name << ": " << P.FailedObligation;
}
} // namespace

TEST(SuiteTest, SortedListMinMaxVerifies) {
  expectAllVerified("sorted-list-minmax");
}

TEST(SuiteTest, CircularListVerifies) { expectAllVerified("circular-list"); }

TEST(SuiteTest, BstScaffoldVerifies) { expectAllVerified("bst-scaffold"); }

TEST(SuiteTest, AvlVerifies) { expectAllVerified("avl"); }

TEST(SuiteTest, RedBlackTreeVerifies) {
  expectAllVerified("red-black-tree");
}

TEST(SuiteTest, SchedulerQueueVerifies) {
  expectAllVerified("scheduler-queue");
}

TEST(SuiteTest, MutationWrongMaxvRepairCaught) {
  // Breaking the maxv propagation in the min/max list must fail get_max.
  expectMutationCaught("sorted-list-minmax",
                       "&& x.maxv == x.next.maxv", "");
}

TEST(SuiteTest, MutationCircularRankMidpointCaught) {
  // Inserting with the predecessor's rank (not the midpoint) breaks the
  // strict rank decrease at the new node or its predecessor.
  expectMutationCaught("circular-list",
                       "ite(x == x.last, y.rank + 1, (x.rank + y.rank) / 2)",
                       "x.rank");
}

TEST(SuiteTest, MutationAvlSearchGuardCaught) {
  // As for the BST: returning a node without checking its key must break
  // find's postcondition (the slow rotate-arithmetic mutations are
  // exercised by the e2e goldens, not the unit suite).
  expectMutationCaught("avl", "if (cur.key == k) {\n      res := cur;",
                       "if (cur.key <= k) {\n      res := cur;");
}

TEST(SuiteTest, MutationRbtBlackCountCaught) {
  // Counting red nodes as black breaks the black-height postcondition.
  expectMutationCaught("red-black-tree",
                       "n := n + ite(cur.red, 0, 1);\n}",
                       "n := n + 1;\n}");
}

TEST(SuiteTest, MutationSchedulerOrderCaught) {
  // Dropping enqueue's urgency precondition breaks the queue's key order.
  expectMutationCaught("scheduler-queue", "requires k <= h.key", "");
}

TEST(SuiteTest, MutationScaffoldCountCaught) {
  // Registering without bumping the count breaks LC(s, z).
  expectMutationCaught("bst-scaffold",
                       "Mut(z.scount, h.scount + 1);",
                       "Mut(z.scount, h.scount);");
}

TEST(SuiteTest, RegistryLookupBehaves) {
  EXPECT_NE(structures::findBenchmarkSource("sorted-list"), nullptr);
  EXPECT_EQ(structures::findBenchmarkSource("no-such-structure"), nullptr);
  EXPECT_GE(structures::allBenchmarks().size(), 4u);
}
