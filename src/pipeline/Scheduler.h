//===- pipeline/Scheduler.h - Parallel obligation scheduler ----*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dispatches independent solver tasks across a bounded worker pool
/// (`--jobs N`). Every task clones its obligation into a private
/// TermManager via TermManager::import, so no manager is ever shared
/// across threads — the source manager's interned terms are immutable
/// and safe to read concurrently. With Jobs <= 1 tasks run inline on
/// the calling thread, making the serial and parallel paths produce
/// byte-identical results.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_PIPELINE_SCHEDULER_H
#define IDS_PIPELINE_SCHEDULER_H

#include <functional>
#include <vector>

namespace ids {
namespace pipeline {

class Scheduler {
public:
  /// \p Jobs == 0 (the CLI default) auto-detects the worker count from
  /// std::thread::hardware_concurrency(); an explicit N pins it.
  explicit Scheduler(unsigned Jobs) : Jobs(resolveJobs(Jobs)) {}

  /// 0 -> hardware_concurrency() (min 1: the detection may report 0).
  static unsigned resolveJobs(unsigned Jobs);

  /// Runs every task and blocks until all complete. Tasks must be
  /// mutually independent; any state they share must do its own locking
  /// (the QueryCache does).
  void run(const std::vector<std::function<void()>> &Tasks) const;

  unsigned jobs() const { return Jobs; }

private:
  unsigned Jobs;
};

} // namespace pipeline
} // namespace ids

#endif // IDS_PIPELINE_SCHEDULER_H
