//===- smt/CongruenceClosure.h - EUF congruence closure --------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Congruence closure over the term DAG with conflict explanations
/// (Nieuwenhuis-Oliveras proof forest). This is the EUF half of the theory
/// stack: after the eager array reduction, VC reasoning needs exactly
/// congruence of `select`/`Apply` applications, equality/disequality
/// bookkeeping, and clash detection between distinct interpreted values
/// (numerals, true/false) that arithmetic merges into classes.
///
/// Every assertion carries an integer tag; conflicts and equality
/// explanations are reported as sets of tags, which the SMT driver maps
/// back to literals (or to composite theory-propagation reasons).
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SMT_CONGRUENCECLOSURE_H
#define IDS_SMT_CONGRUENCECLOSURE_H

#include "smt/Term.h"

#include <set>
#include <unordered_map>
#include <vector>

namespace ids {
namespace smt {

/// Congruence closure with explanations and a trail-based undo stack:
/// push() opens a backtracking level, pop() undoes every registration,
/// merge, disequality, signature entry and path compression performed
/// above it (Failed state included). The persistent theory engine uses
/// one level per synced SAT-trail literal so consecutive theory checks
/// only re-assert the diverging suffix of the assignment instead of
/// rebuilding the closure from scratch.
class CongruenceClosure {
public:
  explicit CongruenceClosure(TermManager &TM) : TM(TM) {}

  /// Opens an undo level.
  void push();
  /// Undoes everything since the matching push (including a conflict
  /// entered above it).
  void pop();
  unsigned numLevels() const { return static_cast<unsigned>(Levels.size()); }

  /// Registers \p T and all subterms. Idempotent.
  void registerTerm(TermRef T);

  /// Asserts T1 == T2 under explanation tag \p Tag. Returns false on
  /// conflict (query conflictTags() for the explanation).
  bool assertEqual(TermRef T1, TermRef T2, int Tag);

  /// Asserts T1 != T2 under \p Tag. Returns false on conflict.
  bool assertDisequal(TermRef T1, TermRef T2, int Tag);

  bool inConflict() const { return Failed; }
  const std::vector<int> &conflictTags() const { return ConflictTags; }

  /// True when \p T has been registered (directly or as a subterm).
  bool isRegistered(TermRef T) const { return nodeOf(T) >= 0; }

  /// True when both terms are registered and currently in the same class,
  /// or are the identical term.
  bool areEqual(TermRef T1, TermRef T2);
  /// True when the classes of the two terms are known distinct (asserted
  /// disequal or hold distinct interpreted values).
  bool areDisequal(TermRef T1, TermRef T2);

  /// Explanation (set of tags) for an equality that currently holds.
  void explainEquality(TermRef T1, TermRef T2, std::set<int> &TagsOut);

  /// Representative term of T's class (for model construction).
  TermRef representative(TermRef T);

  /// All registered terms, for model enumeration.
  const std::vector<TermRef> &terms() const { return NodeTerms; }

private:
  int getId(TermRef T);
  /// CC node of a registered term, or -1. Terms carry a dense per-manager
  /// interning id, so this is a flat array read — no hashing.
  int nodeOf(TermRef T) const {
    unsigned TId = T->getId();
    return TId < NodeOf.size() ? NodeOf[TId] : -1;
  }
  int findRoot(int Node);
  bool mergeRoots(int A, int B);
  bool processPending();
  void explainPath(int A, int B, std::set<int> &TagsOut,
                   std::set<std::pair<int, int>> &SeenPairs);
  void explainPair(int A, int B, std::set<int> &TagsOut,
                   std::set<std::pair<int, int>> &SeenPairs);
  int proofAncestorDepth(int Node);
  /// Checks the last \p MovedCount entries of DiseqIdx[\p Root] for a
  /// violated disequality (both endpoints now in Root's class).
  bool checkMovedDiseqs(int Root, int MovedCount);
  /// Fills \p Sig with the node's current signature (kind, symbol, child
  /// roots). Caller-provided scratch so lookups allocate nothing.
  void signatureOf(int Node, std::vector<int> &Sig);

  struct Reason {
    // Tag >= 0: input assertion; Tag == -1: congruence of (CongA, CongB).
    int Tag = -1;
    int CongA = -1;
    int CongB = -1;
  };

  /// One undoable mutation. Entries are replayed in reverse on pop().
  struct TrailEntry {
    enum Kind : uint8_t {
      Register, ///< node A was created
      UseListPush, ///< a parent was pushed onto UseLists[A]
      SigInsert,   ///< SigIdx names the inserted key (in SigKeys)
      Merge,       ///< class of root A absorbed into root B; C is the
                   ///< proof child, D its former proof root, E the former
                   ///< ValueNode[B], F the number of use-list entries moved,
                   ///< G the number of diseq-index entries moved
      Diseq,       ///< a disequality was appended (indexed under roots A, B)
      Compress,    ///< UnionParent[A] changed from B (path compression)
    };
    Kind K;
    int A = -1, B = -1, C = -1, D = -1, E = -1, F = 0, G = 0;
  };
  struct LevelMark {
    size_t TrailSize;
    size_t SigKeysSize;
    bool Failed;
    std::vector<int> ConflictTags;
  };

  void undoTo(size_t TrailSize);
  void rerootProofTree(int NewRoot);

  TermManager &TM;
  /// Term interning id -> CC node (-1 when unregistered).
  std::vector<int> NodeOf;
  std::vector<TermRef> NodeTerms;
  std::vector<int> SigScratch; // signatureOf scratch
  std::vector<int> UnionParent;   // union-find with path compression
  std::vector<int> ClassSize;
  std::vector<int> ProofParent;   // explanation forest (no compression)
  std::vector<Reason> ProofReason;
  std::vector<std::vector<int>> UseLists; // parents per root
  std::vector<int> ValueNode;     // interpreted value in class, or -1
  /// FNV-style hash over a signature vector (kind, symbol, child roots).
  struct SigHash {
    size_t operator()(const std::vector<int> &Sig) const {
      size_t H = 0xcbf29ce484222325ull;
      for (int V : Sig)
        H = (H ^ static_cast<uint32_t>(V)) * 0x100000001b3ull;
      return H;
    }
  };
  std::unordered_map<std::vector<int>, int, SigHash> SigTable;
  std::vector<std::tuple<int, int, int>> Diseqs; // (a, b, tag)
  /// Per-root index into Diseqs: the disequalities with one endpoint in
  /// that root's class. A merge moves the absorbed root's entries onto the
  /// surviving root, so violation checks touch only the moved entries
  /// instead of scanning every disequality.
  std::vector<std::vector<int>> DiseqIdx;
  std::vector<std::tuple<int, int, Reason>> Pending;
  Reason StagedReason; // reason of the merge currently being applied

  std::vector<TrailEntry> Trail;
  /// Keys of signature-table insertions, referenced by SigInsert entries
  /// (kept separately so TrailEntry stays POD-sized).
  std::vector<std::vector<int>> SigKeys;
  std::vector<LevelMark> Levels;

  bool Failed = false;
  std::vector<int> ConflictTags;
};

} // namespace smt
} // namespace ids

#endif // IDS_SMT_CONGRUENCECLOSURE_H
