//===- tests/smt/IncrFuzzTest.cpp - Incremental differential fuzzing -------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized differential testing of the incremental solving core:
/// generate random push / assertTerm / pop / checkSat sequences over the
/// shared formula corpus, and cross-check EVERY intermediate verdict
/// against a fresh one-shot solve of the conjunction of the currently
/// active assertion stack. A Sat-vs-Unsat disagreement is a soundness bug
/// in the assertion-level machinery (SAT clause retraction, theory trails,
/// lemma retention, or the level-aware array reducer); Sat models are
/// additionally validated against the active conjunction.
///
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"
#include "smt/SolverContext.h"
#include "smt/TermPrinter.h"

#include "FormulaGen.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

using namespace ids;
using namespace ids::smt;

namespace {

struct SeqCounts {
  unsigned Checks = 0;
  unsigned Sat = 0, Unsat = 0, Unknown = 0;
  unsigned Mismatches = 0;
};

/// Runs \p Sequences random assertion-stack scripts. Each script
/// interleaves push/assert/pop with checkSat calls; every verdict is
/// cross-checked one-shot.
SeqCounts runIncrementalDifferential(
    uint32_t Seed, unsigned Sequences, unsigned OpsPerSequence,
    unsigned Depth, const SolverOptions &CtxOpts = SolverOptions(),
    const SolverOptions &RefOpts = SolverOptions()) {
  std::mt19937 Rng(Seed);
  SeqCounts C;
  for (unsigned S = 0; S < Sequences; ++S) {
    TermManager TM;
    FormulaGen Gen(TM, Rng);
    SolverOptions Opts = CtxOpts;
    Opts.MaxTheoryChecks = 20000; // bound pathological instances
    SolverContext Ctx(TM, Opts);
    // Active stack mirror: one vector of formulas per level.
    std::vector<std::vector<TermRef>> Stack(1);

    auto CrossCheck = [&]() {
      ++C.Checks;
      SolverResult Inc = Ctx.checkSat();
      std::vector<TermRef> Active;
      for (const auto &Lvl : Stack)
        for (TermRef F : Lvl)
          Active.push_back(F);
      TermRef Conj = TM.mkAnd(Active);
      TermManager Fresh;
      SolverOptions OneShotOpts = RefOpts;
      OneShotOpts.MaxTheoryChecks = Opts.MaxTheoryChecks;
      Solver OneShot(Fresh, OneShotOpts);
      SolverResult Ref = OneShot.checkSat(Fresh.import(Conj));
      switch (Inc) {
      case SolverResult::Sat:
        ++C.Sat;
        break;
      case SolverResult::Unsat:
        ++C.Unsat;
        break;
      case SolverResult::Unknown:
        ++C.Unknown;
        break;
      }
      // Unknown (either side) abstains; Sat vs Unsat is a soundness bug.
      bool Mismatch = (Inc == SolverResult::Sat &&
                       Ref == SolverResult::Unsat) ||
                      (Inc == SolverResult::Unsat &&
                       Ref == SolverResult::Sat);
      if (Mismatch)
        ++C.Mismatches;
      EXPECT_FALSE(Mismatch)
          << "incremental " << (Inc == SolverResult::Sat ? "Sat" : "Unsat")
          << " vs one-shot "
          << (Ref == SolverResult::Sat ? "Sat" : "Unsat") << " (seed "
          << Seed << ", sequence " << S << ", check " << C.Checks << ")\n"
          << printTerm(Conj);
      if (Inc == SolverResult::Sat) {
        Value V = Ctx.model().evaluate(Conj);
        EXPECT_TRUE(V.K == Value::Kind::Bool && V.B)
            << "incremental Sat model refutes the active conjunction "
            << "(seed " << Seed << ", sequence " << S << ")\n"
            << printTerm(Conj) << "\nmodel:\n"
            << Ctx.model().toString();
      }
    };

    for (unsigned Op = 0; Op < OpsPerSequence; ++Op) {
      switch (Rng() % 6) {
      case 0:
        Ctx.push();
        Stack.emplace_back();
        break;
      case 1:
        if (Stack.size() > 1) {
          Ctx.pop();
          Stack.pop_back();
        } else {
          Ctx.push();
          Stack.emplace_back();
        }
        break;
      case 2:
      case 3: {
        TermRef F = Gen.boolFormula(Depth);
        Ctx.assertTerm(F);
        Stack.back().push_back(F);
        break;
      }
      default:
        CrossCheck();
        break;
      }
    }
    CrossCheck(); // every sequence ends with a checked verdict
  }
  return C;
}

} // namespace

// 300+ sequences across the three suites, each interleaving push / assert
// / pop / check — the acceptance bar for the incremental core.
TEST(IncrFuzzTest, DifferentialShallow) {
  SeqCounts C = runIncrementalDifferential(/*Seed=*/0x5EED1, /*Sequences=*/160,
                                           /*OpsPerSequence=*/12,
                                           /*Depth=*/3);
  EXPECT_EQ(C.Mismatches, 0u);
  // The scripts must exercise both verdicts and real push/pop reuse.
  EXPECT_GT(C.Checks, 300u);
  EXPECT_GT(C.Sat, 60u);
  EXPECT_GT(C.Unsat, 30u);
}

TEST(IncrFuzzTest, DifferentialDeepStacks) {
  SeqCounts C = runIncrementalDifferential(/*Seed=*/0x5EED2, /*Sequences=*/80,
                                           /*OpsPerSequence=*/20,
                                           /*Depth=*/3);
  EXPECT_EQ(C.Mismatches, 0u);
  EXPECT_GT(C.Checks, 200u);
}

TEST(IncrFuzzTest, DifferentialArrayHeavy) {
  SeqCounts C = runIncrementalDifferential(/*Seed=*/0x5EED3, /*Sequences=*/60,
                                           /*OpsPerSequence=*/10,
                                           /*Depth=*/4);
  EXPECT_EQ(C.Mismatches, 0u);
  EXPECT_GT(C.Checks, 100u);
}

// The two solver fast paths under incremental solving, each checked
// against the most conservative one-shot reference (blind eager array
// instantiation, no clause deletion) — the configuration the earlier
// goldens were recorded with.

TEST(IncrFuzzTest, DifferentialLazyArrays) {
  SolverOptions Ctx;
  Ctx.LazyArrayInstantiation = true;
  SolverOptions Ref;
  Ref.EagerArrayInstantiation = true;
  Ref.ClauseDeletion = false;
  SeqCounts C = runIncrementalDifferential(/*Seed=*/0x5EED4, /*Sequences=*/80,
                                           /*OpsPerSequence=*/14,
                                           /*Depth=*/4, Ctx, Ref);
  EXPECT_EQ(C.Mismatches, 0u);
  EXPECT_GT(C.Checks, 150u);
}

TEST(IncrFuzzTest, DifferentialTheoryProp) {
  // Theory propagation under full push/assert/pop interleavings, against
  // the propagation-free one-shot reference. This is where the lazy
  // reason-clause machinery earns its keep: frames pop mid-script, so
  // preRegister pins, watch epochs and ReasonOnly clause scrubbing on
  // popAssertLevel are all exercised at fuzz scale.
  SolverOptions Ctx;
  Ctx.TheoryPropagation = true;
  Ctx.LazyArrayInstantiation = true;
  SolverOptions Ref;
  Ref.TheoryPropagation = false;
  SeqCounts C = runIncrementalDifferential(/*Seed=*/0x5EED6, /*Sequences=*/100,
                                           /*OpsPerSequence=*/14,
                                           /*Depth=*/4, Ctx, Ref);
  EXPECT_EQ(C.Mismatches, 0u);
  EXPECT_GT(C.Checks, 150u);
}

TEST(IncrFuzzTest, DifferentialDeletionStress) {
  // A tiny reduceDB trigger forces sweeps on every nontrivial search, so
  // the pop interaction (deleted clauses vs assertion-level retraction)
  // is actually exercised at fuzz scale.
  SolverOptions Ctx;
  Ctx.LazyArrayInstantiation = true;
  Ctx.ReduceDbLimit = 4;
  SolverOptions Ref;
  Ref.EagerArrayInstantiation = true;
  Ref.ClauseDeletion = false;
  SeqCounts C = runIncrementalDifferential(/*Seed=*/0x5EED5, /*Sequences=*/80,
                                           /*OpsPerSequence=*/14,
                                           /*Depth=*/3, Ctx, Ref);
  EXPECT_EQ(C.Mismatches, 0u);
  EXPECT_GT(C.Checks, 150u);
}
