//===- structures/RedBlackTree.cpp - Red-black tree benchmark --------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Red-black trees: the BST intrinsic definition extended with a color
/// field and a black-height ghost map. The local condition states the two
/// red-black invariants node-locally — a red node has no red child, and
/// the black-heights computed through both children agree — so the global
/// equal-black-count property is carried entirely by the bh map.
/// count_blacks walks an arbitrary root-to-leaf path (steered by a key)
/// and proves the number of black nodes met equals the root's map value.
///
//===----------------------------------------------------------------------===//

#include "structures/Sources.h"

const char *ids::structures::RedBlackTreeSource = R"IDS(
structure RedBlackTree {
  field l: Loc;
  field r: Loc;
  field key: int;
  field red: bool;
  ghost field p: Loc;
  ghost field rank: rat;
  ghost field bh: int;
  ghost field min: int;
  ghost field max: int;

  // BST ordering via min/max and rational ranks (acyclicity), plus the
  // red-black conditions: bh is the number of black nodes strictly below
  // x on any path to a leaf (nil counts 0), both children agree on it,
  // and red nodes have black children.
  local t (x) {
    x.min <= x.key && x.key <= x.max
    && x.bh >= 0
    && (x.p != nil ==> (x.p.l == x || x.p.r == x))
    && (x.l == nil ==> x.min == x.key && x.bh == 0)
    && (x.l != nil ==>
          x.l.p == x && x.l.rank < x.rank
       && x.l.max < x.key && x.min == x.l.min
       && x.bh == x.l.bh + ite(x.l.red, 0, 1))
    && (x.r == nil ==> x.max == x.key && x.bh == 0)
    && (x.r != nil ==>
          x.r.p == x && x.r.rank < x.rank
       && x.key < x.r.min && x.max == x.r.max
       && x.bh == x.r.bh + ite(x.r.red, 0, 1))
    && (x.red ==> (x.l != nil ==> !x.l.red) && (x.r != nil ==> !x.r.red))
  }

  correlation (y) { y.p == nil }

  impact l    [t] { x, old(x.l) }
  impact r    [t] { x, old(x.r) }
  impact p    [t] { x, old(x.p) }
  impact key  [t] { x }
  impact red  [t] { x, x.p }
  impact bh   [t] { x, x.p }
  impact min  [t] { x, x.p }
  impact max  [t] { x, x.p }
  impact rank [t] { x, x.p }
}

// Search by key, walking the ordering maps (as in the plain BST).
procedure find(root: Loc, k: int) returns (res: Loc)
  requires br(t) == {}
  requires root != nil
  ensures  br(t) == {}
  ensures  res != nil ==> res.key == k
{
  var cur: Loc;
  cur := root;
  res := nil;
  while (cur != nil && res == nil)
    invariant br(t) == {}
    invariant res != nil ==> res.key == k
  {
    InferLCOutsideBr(t, cur);
    if (cur.key == k) {
      res := cur;
    } else {
      if (k < cur.key) {
        cur := cur.l;
      } else {
        cur := cur.r;
      }
    }
  }
}

// The classic final step of red-black insertion: the root may be
// repainted black unconditionally (no parent reads its color, and bh
// counts strictly-below blacks only).
procedure paint_root_black(root: Loc)
  requires br(t) == {}
  requires root != nil && root.p == nil
  ensures  br(t) == {}
  ensures  !root.red
  ensures  root.bh == old(root.bh)
  modifies {root}
{
  InferLCOutsideBr(t, root);
  if (root.red) {
    Mut(root.red, false);
    AssertLCAndRemove(t, root);
  }
}

// Walk an arbitrary root-to-leaf path (steered by k where possible) and
// count the black nodes met: the count always equals the root's
// black-height plus the root's own color contribution — the global
// red-black balance property, recovered from the node-local bh map.
procedure count_blacks(root: Loc, k: int) returns (n: int)
  requires br(t) == {}
  requires root != nil
  ensures  br(t) == {}
  ensures  n == old(root.bh) + ite(old(root.red), 0, 1)
{
  var cur: Loc;
  n := 0;
  cur := root;
  InferLCOutsideBr(t, root);
  while (cur.l != nil || cur.r != nil)
    invariant br(t) == {}
    invariant cur != nil
    invariant n + cur.bh + ite(cur.red, 0, 1)
                == old(root.bh) + ite(old(root.red), 0, 1)
  {
    InferLCOutsideBr(t, cur);
    n := n + ite(cur.red, 0, 1);
    if (k < cur.key && cur.l != nil) {
      cur := cur.l;
    } else {
      if (cur.r != nil) {
        cur := cur.r;
      } else {
        cur := cur.l;
      }
    }
  }
  InferLCOutsideBr(t, cur);
  n := n + ite(cur.red, 0, 1);
}
)IDS";
