//===- pipeline/Scheduler.cpp - Parallel obligation scheduler --------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Scheduler.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

using namespace ids;
using namespace ids::pipeline;

unsigned Scheduler::resolveJobs(unsigned Jobs) {
  if (Jobs != 0)
    return Jobs;
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : HW;
}

void Scheduler::run(const std::vector<std::function<void()>> &Tasks) const {
  if (Jobs <= 1 || Tasks.size() <= 1) {
    for (const auto &Task : Tasks)
      Task();
    return;
  }
  std::atomic<size_t> Next{0};
  // An exception escaping a std::thread body is std::terminate; capture
  // the first one and rethrow on the caller's thread after join so
  // --jobs N fails the same way --jobs 1 does.
  std::exception_ptr FirstError;
  std::mutex ErrorMutex;
  auto Worker = [&] {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Tasks.size())
        return;
      try {
        Tasks[I]();
      } catch (...) {
        std::lock_guard<std::mutex> Lock(ErrorMutex);
        if (!FirstError)
          FirstError = std::current_exception();
      }
    }
  };
  unsigned NumThreads =
      static_cast<unsigned>(std::min<size_t>(Jobs, Tasks.size()));
  std::vector<std::thread> Pool;
  Pool.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Pool.emplace_back(Worker);
  for (std::thread &T : Pool)
    T.join();
  if (FirstError)
    std::rethrow_exception(FirstError);
}
