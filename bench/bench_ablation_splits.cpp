//===- bench/bench_ablation_splits.cpp - VC split ablation ------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation E5 (DESIGN.md): the paper runs Boogie with "maximum number of
/// VC splits set to 8" (Section 5.3). This harness sweeps the split factor
/// on representative methods to show how query granularity affects solver
/// time in our reproduction.
///
//===----------------------------------------------------------------------===//

#include "driver/Verifier.h"
#include "structures/Registry.h"

#include <cstdio>

using namespace ids;

int main() {
  const unsigned Splits[] = {1, 2, 4, 8, 16, 64};
  struct Target {
    const char *Bench;
    const char *Proc;
  } Targets[] = {
      {"singly-linked-list", "insert_front"},
      {"singly-linked-list", "find"},
      {"bst", "find"},
      {"treap", "find_max_prio_on_path"},
  };
  printf("VC split-factor ablation (Section 5.3 uses max 8 splits)\n");
  printf("%-22s %-24s", "Structure", "Method");
  for (unsigned S : Splits)
    printf(" %8u", S);
  printf("\n--------------------------------------------------------------"
         "--------------------\n");
  for (const Target &T : Targets) {
    const char *Src = structures::findBenchmarkSource(T.Bench);
    if (!Src)
      continue;
    printf("%-22s %-24s", T.Bench, T.Proc);
    for (unsigned S : Splits) {
      DiagEngine Diags;
      driver::VerifyOptions Opts;
      Opts.CheckImpacts = false;
      Opts.OnlyProc = T.Proc;
      Opts.VcSplits = S;
      Opts.QueryTimeoutSeconds = 45;
      driver::ModuleResult R = driver::verifySource(Src, Opts, Diags);
      double Secs = R.Procs.empty() ? -1 : R.Procs[0].Seconds;
      bool Ok = !R.Procs.empty() &&
                R.Procs[0].St == driver::Status::Verified;
      printf(" %7.2f%s", Secs, Ok ? "" : "!");
    }
    printf("\n");
  }
  printf("\n('!' marks a non-verified outcome; times in seconds)\n");
  return 0;
}
