//===- lang/Checks.cpp - Ghost-flow and well-behavedness checks ------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "lang/Checks.h"

#include <functional>

using namespace ids;
using namespace ids::lang;

bool lang::isGhostExpr(const StructureDecl &S, const Expr *E,
                       const std::set<std::string> &GhostVars) {
  switch (E->Kind) {
  case ExprKind::BrSet:
  case ExprKind::AllocSet:
  case ExprKind::LcApp:
  case ExprKind::Fresh:
    return true;
  case ExprKind::VarRef:
    return GhostVars.count(E->Name) != 0;
  case ExprKind::FieldRead: {
    const FieldDecl *F = S.findField(E->Name);
    if (F && F->IsGhost)
      return true;
    break;
  }
  default:
    break;
  }
  for (const Expr *A : E->Args)
    if (isGhostExpr(S, A, GhostVars))
      return true;
  return false;
}

std::set<std::string> lang::fieldsReadByLocal(const StructureDecl &S,
                                              const std::string &Group) {
  std::set<std::string> Out;
  const LocalCondDecl *L = S.findLocal(Group);
  if (!L)
    return Out;
  std::function<void(const Expr *)> Walk = [&](const Expr *E) {
    if (E->Kind == ExprKind::FieldRead)
      Out.insert(E->Name);
    for (const Expr *A : E->Args)
      Walk(A);
  };
  Walk(L->Body);
  return Out;
}

namespace {
class GhostChecker {
public:
  GhostChecker(Module &M, DiagEngine &Diags) : M(M), Diags(Diags) {}

  bool run() {
    for (ProcDecl &P : M.Procs)
      checkProc(P);
    return Ok;
  }

private:
  void error(SourceLoc Loc, const std::string &Msg) {
    Diags.error(Loc, Msg);
    Ok = false;
  }

  void checkProc(ProcDecl &P) {
    GhostVars.clear();
    for (const ParamDecl &Param : P.Params)
      if (Param.IsGhost)
        GhostVars.insert(Param.Name);
    for (const ParamDecl &Ret : P.Returns)
      if (Ret.IsGhost)
        GhostVars.insert(Ret.Name);
    checkStmts(P.Body->Body, /*InGhost=*/false);
  }

  bool ghost(const Expr *E) const {
    return isGhostExpr(M.Structure, E, GhostVars);
  }

  void checkStmts(const std::vector<Stmt *> &Body, bool InGhost) {
    for (Stmt *St : Body)
      checkStmt(St, InGhost);
  }

  void checkStmt(Stmt *St, bool InGhost) {
    switch (St->Kind) {
    case StmtKind::VarDecl:
      if (St->IsGhost || InGhost) {
        GhostVars.insert(St->VarName);
      } else if (St->Init && ghost(St->Init)) {
        error(St->Loc, "user variable '" + St->VarName +
                           "' initialised from ghost state");
      }
      return;
    case StmtKind::Assign: {
      bool LhsGhost = GhostVars.count(St->VarName) != 0;
      if (InGhost && !LhsGhost) {
        error(St->Loc, "ghost code assigns to user variable '" +
                           St->VarName + "'");
        return;
      }
      if (!LhsGhost && ghost(St->Init))
        error(St->Loc, "user variable '" + St->VarName +
                           "' assigned from ghost state");
      return;
    }
    case StmtKind::Mut: {
      const FieldDecl *F = M.Structure.findField(St->Target->Name);
      bool FieldGhost = F && F->IsGhost;
      if (InGhost && !FieldGhost) {
        error(St->Loc, "ghost code mutates user field '" + St->Target->Name +
                           "'");
        return;
      }
      if (!FieldGhost) {
        if (ghost(St->Init) || ghost(St->Target))
          error(St->Loc, "user field '" + St->Target->Name +
                             "' written from ghost state");
      }
      return;
    }
    case StmtKind::NewObj:
      if (InGhost)
        error(St->Loc, "allocation inside ghost code");
      return;
    case StmtKind::AssertLcRemove:
    case StmtKind::InferLc:
    case StmtKind::Assert:
    case StmtKind::Assume:
      return; // specification-level; may mention anything
    case StmtKind::If:
      if (!InGhost && ghost(St->Cond))
        error(St->Loc,
              "user-level branch condition depends on ghost state");
      checkStmts(St->Body, InGhost);
      checkStmts(St->ElseBody, InGhost);
      return;
    case StmtKind::While:
      if (!InGhost && ghost(St->Cond))
        error(St->Loc, "user-level loop condition depends on ghost state");
      if (InGhost && !St->Decreases)
        error(St->Loc,
              "ghost loop requires a decreases clause (termination is "
              "needed for soundness; Section 3.2)");
      checkStmts(St->Body, InGhost);
      return;
    case StmtKind::Call: {
      if (InGhost) {
        error(St->Loc, "procedure calls are not allowed in ghost blocks");
        return;
      }
      const ProcDecl *Callee = M.findProc(St->Callee);
      if (!Callee)
        return;
      for (size_t I = 0; I < St->CallArgs.size(); ++I) {
        if (!Callee->Params[I].IsGhost && ghost(St->CallArgs[I]))
          error(St->CallArgs[I]->Loc,
                "ghost state passed to user parameter '" +
                    Callee->Params[I].Name + "'");
      }
      for (size_t I = 0; I < St->CallLhs.size(); ++I) {
        bool LhsGhost = GhostVars.count(St->CallLhs[I]) != 0;
        if (Callee->Returns[I].IsGhost && !LhsGhost)
          error(St->Loc, "ghost result stored into user variable '" +
                             St->CallLhs[I] + "'");
      }
      return;
    }
    case StmtKind::Return:
      return;
    case StmtKind::Block:
      checkStmts(St->Body, InGhost);
      return;
    case StmtKind::GhostBlock:
      checkStmts(St->Body, /*InGhost=*/true);
      return;
    }
  }

  Module &M;
  DiagEngine &Diags;
  std::set<std::string> GhostVars;
  bool Ok = true;
};

/// Walks expressions looking for br(...) occurrences.
bool mentionsBr(const Expr *E) {
  if (E->Kind == ExprKind::BrSet)
    return true;
  for (const Expr *A : E->Args)
    if (mentionsBr(A))
      return true;
  return false;
}
} // namespace

bool lang::checkGhostDiscipline(Module &M, DiagEngine &Diags) {
  GhostChecker C(M, Diags);
  return C.run();
}

bool lang::checkWellBehaved(Module &M, DiagEngine &Diags) {
  bool Ok = true;
  auto Error = [&](SourceLoc Loc, const std::string &Msg) {
    Diags.error(Loc, Msg);
    Ok = false;
  };

  // Per-group field read sets for impact coverage.
  std::vector<std::pair<std::string, std::set<std::string>>> GroupReads;
  for (const LocalCondDecl &L : M.Structure.Locals)
    GroupReads.emplace_back(L.Name, fieldsReadByLocal(M.Structure, L.Name));

  std::function<void(const Stmt *)> Walk = [&](const Stmt *St) {
    switch (St->Kind) {
    case StmtKind::Mut: {
      const std::string &Field = St->Target->Name;
      for (const auto &[Group, Reads] : GroupReads) {
        if (!Reads.count(Field))
          continue;
        bool Declared = false;
        for (const ImpactDecl &I : M.Structure.Impacts)
          if (I.Field == Field && I.Group == Group)
            Declared = true;
        if (!Declared)
          Error(St->Loc,
                "mutation of field '" + Field +
                    "' requires a declared impact set for group '" + Group +
                    "' (the Mutation rule of Figure 2)");
      }
      return;
    }
    case StmtKind::If:
      if (mentionsBr(St->Cond))
        Error(St->Loc, "branch condition must not mention broken sets "
                       "(side condition of Figure 2)");
      for (const Stmt *Sub : St->Body)
        Walk(Sub);
      for (const Stmt *Sub : St->ElseBody)
        Walk(Sub);
      return;
    case StmtKind::While:
      if (mentionsBr(St->Cond))
        Error(St->Loc, "loop condition must not mention broken sets "
                       "(side condition of Figure 2)");
      for (const Stmt *Sub : St->Body)
        Walk(Sub);
      return;
    case StmtKind::Block:
    case StmtKind::GhostBlock:
      for (const Stmt *Sub : St->Body)
        Walk(Sub);
      return;
    default:
      return;
    }
  };
  for (const ProcDecl &P : M.Procs)
    Walk(P.Body);
  return Ok;
}

ProcMetrics lang::computeMetrics(const StructureDecl &S, const ProcDecl &P) {
  ProcMetrics PM;
  PM.SpecLines = static_cast<unsigned>(P.Requires.size() + P.Ensures.size() +
                                       P.Modifies.size());
  std::function<void(const Stmt *, bool)> Walk = [&](const Stmt *St,
                                                     bool InGhost) {
    auto Count = [&](bool IsAnnot) {
      if (IsAnnot || InGhost)
        ++PM.AnnotLines;
      else
        ++PM.CodeLines;
    };
    switch (St->Kind) {
    case StmtKind::VarDecl:
      Count(St->IsGhost);
      return;
    case StmtKind::Assign:
      Count(false);
      return;
    case StmtKind::Mut: {
      const FieldDecl *F = S.findField(St->Target->Name);
      Count(F && F->IsGhost);
      return;
    }
    case StmtKind::NewObj:
      Count(false);
      return;
    case StmtKind::AssertLcRemove:
    case StmtKind::InferLc:
    case StmtKind::Assert:
    case StmtKind::Assume:
      ++PM.AnnotLines;
      return;
    case StmtKind::If:
      Count(false);
      for (const Stmt *Sub : St->Body)
        Walk(Sub, InGhost);
      for (const Stmt *Sub : St->ElseBody)
        Walk(Sub, InGhost);
      return;
    case StmtKind::While:
      Count(false);
      PM.AnnotLines += static_cast<unsigned>(St->Invariants.size());
      if (St->Decreases)
        ++PM.AnnotLines;
      for (const Stmt *Sub : St->Body)
        Walk(Sub, InGhost);
      return;
    case StmtKind::Call:
    case StmtKind::Return:
      Count(false);
      return;
    case StmtKind::Block:
      for (const Stmt *Sub : St->Body)
        Walk(Sub, InGhost);
      return;
    case StmtKind::GhostBlock:
      for (const Stmt *Sub : St->Body)
        Walk(Sub, /*InGhost=*/true);
      return;
    }
  };
  Walk(P.Body, false);
  return PM;
}

unsigned lang::localConditionSize(const StructureDecl &S) {
  unsigned Count = 0;
  std::function<void(const Expr *)> CountConjuncts = [&](const Expr *E) {
    if (E->Kind == ExprKind::Binary && E->BOp == BinOp::And) {
      CountConjuncts(E->arg(0));
      CountConjuncts(E->arg(1));
      return;
    }
    // An implication whose consequent is a conjunction contributes each
    // conjunct (matches how the paper counts, e.g. 8 for plain lists).
    if (E->Kind == ExprKind::Binary && E->BOp == BinOp::Implies) {
      CountConjuncts(E->arg(1));
      return;
    }
    ++Count;
  };
  for (const LocalCondDecl &L : S.Locals)
    CountConjuncts(L.Body);
  return Count;
}
