//===- smt/TheoryEngine.cpp - DPLL(T) theory integration ------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "smt/TheoryEngine.h"

#include "smt/TermPrinter.h"
#include "support/Log.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace ids;
using namespace ids::smt;

namespace {
/// Kind test: boolean terms that become SAT structure rather than atoms.
bool isBoolStructure(TermRef T) {
  switch (T->getKind()) {
  case TermKind::Not:
  case TermKind::And:
  case TermKind::Or:
    return true;
  case TermKind::Ite:
    return T->getSort()->isBool();
  case TermKind::Eq:
    return T->getArg(0)->getSort()->isBool();
  default:
    return false;
  }
}
} // namespace

sat::Lit SolverCore::litFor(TermRef T) {
  if (T->getKind() == TermKind::Not)
    return ~litFor(T->getArg(0));
  auto It = LitCache.find(T);
  if (It != LitCache.end()) {
    sat::Lit L;
    L.Code = It->second;
    return L;
  }
  sat::Lit Result;
  if (T->getKind() == TermKind::True || T->getKind() == TermKind::False) {
    sat::Var V = Sat.newVar();
    Result = sat::Lit(V, /*Negated=*/T->getKind() == TermKind::False);
    Sat.addClause({sat::Lit(V, T->getKind() == TermKind::False)});
  } else if (isBoolStructure(T)) {
    sat::Var V = Sat.newVar();
    Result = sat::Lit(V, false);
    switch (T->getKind()) {
    case TermKind::And: {
      std::vector<sat::Lit> Long = {Result};
      for (TermRef A : T->getArgs()) {
        sat::Lit LA = litFor(A);
        Sat.addClause({~Result, LA});
        Long.push_back(~LA);
      }
      Sat.addClause(std::move(Long));
      break;
    }
    case TermKind::Or: {
      std::vector<sat::Lit> Long = {~Result};
      for (TermRef A : T->getArgs()) {
        sat::Lit LA = litFor(A);
        Sat.addClause({Result, ~LA});
        Long.push_back(LA);
      }
      Sat.addClause(std::move(Long));
      break;
    }
    case TermKind::Eq: { // iff
      sat::Lit X = litFor(T->getArg(0));
      sat::Lit Y = litFor(T->getArg(1));
      Sat.addClause({~Result, ~X, Y});
      Sat.addClause({~Result, X, ~Y});
      Sat.addClause({Result, X, Y});
      Sat.addClause({Result, ~X, ~Y});
      break;
    }
    case TermKind::Ite: {
      sat::Lit Cond = litFor(T->getArg(0));
      sat::Lit Th = litFor(T->getArg(1));
      sat::Lit El = litFor(T->getArg(2));
      Sat.addClause({~Result, ~Cond, Th});
      Sat.addClause({~Result, Cond, El});
      Sat.addClause({Result, ~Cond, ~Th});
      Sat.addClause({Result, Cond, ~El});
      break;
    }
    default:
      break;
    }
  } else {
    // Theory atom.
    sat::Var V = Sat.newVar();
    Result = sat::Lit(V, false);
    Sat.markTheoryVar(V);
    AtomIndex.emplace(T, static_cast<int>(Atoms.size()));
    Atoms.push_back(T);
    AtomVar.push_back(V);
    LitCache.emplace(T, Result.Code);
    return Result;
  }
  if (EncodingLog)
    EncodingLog->push_back(T);
  LitCache.emplace(T, Result.Code);
  return Result;
}

namespace ids::smt {
/// Tag for the artificial x != y separations asserted during model repair
/// (index-collision splitting). Negative so expandTags never leaks it into
/// a learned clause; conflict cores containing it must not become theory
/// lemmas (the separation is not an input constraint).
constexpr int SeparationTag = -7;
} // namespace ids::smt

TheoryEngine::TheoryEngine(SolverCore &C, bool Persistent)
    : C(C), TM(C.TM), Persistent(Persistent),
      PropMode(Persistent && C.Opts.TheoryPropagation) {
  if (Persistent) {
    CC = std::make_unique<CongruenceClosure>(TM);
    Arith = std::make_unique<ArithSolver>();
  }
}

TheoryEngine::~TheoryEngine() = default;

LinTerm TheoryEngine::polyOf(TermRef T) {
  LinTerm Result;
  switch (T->getKind()) {
  case TermKind::IntConst:
    Result.Const = Rational(T->getIntValue());
    return Result;
  case TermKind::RatConst:
    Result.Const = T->getRatValue();
    return Result;
  case TermKind::Add: {
    for (TermRef A : T->getArgs()) {
      LinTerm Sub = polyOf(A);
      Result.Const += Sub.Const;
      for (const auto &[V, Coeff] : Sub.Coeffs)
        Result.add(V, Coeff);
    }
    return Result;
  }
  case TermKind::Mul: {
    TermRef CT = T->getArg(0);
    Rational Coeff = CT->getKind() == TermKind::IntConst
                         ? Rational(CT->getIntValue())
                         : CT->getRatValue();
    LinTerm Sub = polyOf(T->getArg(1));
    Result.Const = Sub.Const * Coeff;
    for (const auto &[V, SubCoeff] : Sub.Coeffs)
      Result.add(V, SubCoeff * Coeff);
    return Result;
  }
  default:
    // Opaque numeric term (Var / Select / Apply).
    Result.add(arithVarFor(T), Rational(1));
    return Result;
  }
}

int TheoryEngine::arithVarFor(TermRef T) {
  auto It = ArithVars.find(T);
  if (It != ArithVars.end())
    return It->second;
  CC->registerTerm(T);
  int V;
  auto VIt = VarOfTerm.find(T);
  if (VIt != VarOfTerm.end()) {
    V = VIt->second; // re-asserted after a pop: reuse the variable
  } else {
    V = Arith->addVar(T->getSort()->isInt());
    VarOfTerm.emplace(T, V);
  }
  ArithVars.emplace(T, V);
  OpaqueNumeric.push_back(T);
  return V;
}

int TheoryEngine::newCompositeTag(const std::set<int> &Expl) {
  int Tag = static_cast<int>(C.Atoms.size() + CompositeExpl.size());
  CompositeExpl.emplace_back(Expl.begin(), Expl.end());
  return Tag;
}

void TheoryEngine::expandTags(const std::set<int> &In,
                              std::set<int> &Out) const {
  std::vector<int> Work(In.begin(), In.end());
  std::set<int> Seen;
  int Base = static_cast<int>(C.Atoms.size());
  while (!Work.empty()) {
    int T = Work.back();
    Work.pop_back();
    if (T < 0 || !Seen.insert(T).second)
      continue;
    if (T < Base) {
      Out.insert(T);
      continue;
    }
    for (int Sub : CompositeExpl[T - Base])
      Work.push_back(Sub);
  }
}

void TheoryEngine::clauseFromTags(const std::set<int> &Tags,
                                  std::vector<sat::Lit> &Out) const {
  std::set<int> AtomTags;
  expandTags(Tags, AtomTags);
  Out.clear();
  for (int T : AtomTags) {
    bool V = atomValue(T);
    // The clause negates the current assignment of this atom.
    Out.push_back(sat::Lit(C.AtomVar[T], /*Negated=*/V));
  }
}

bool TheoryEngine::assertOneAtom(int AtomIdx,
                                 std::vector<sat::Lit> &ConflictOut) {
  TermRef A = C.Atoms[AtomIdx];
  bool V = atomValue(AtomIdx);
  int Tag = AtomIdx;
  switch (A->getKind()) {
  case TermKind::Eq: {
    TermRef X = A->getArg(0), Y = A->getArg(1);
    CC->registerTerm(X);
    CC->registerTerm(Y);
    bool Ok = V ? CC->assertEqual(X, Y, Tag)
                : CC->assertDisequal(X, Y, Tag);
    if (X->getSort()->isNumeric()) {
      LinTerm P = polyOf(X);
      LinTerm R = polyOf(Y);
      P.Const -= R.Const;
      for (const auto &[Var, Coeff] : R.Coeffs)
        P.add(Var, -Coeff);
      Arith->assertAtom(P, V ? ArithSolver::Op::Eq : ArithSolver::Op::Ne,
                        Tag);
    }
    if (!Ok || CC->inConflict()) {
      std::set<int> Tags(CC->conflictTags().begin(),
                         CC->conflictTags().end());
      clauseFromTags(Tags, ConflictOut);
      return false;
    }
    break;
  }
  case TermKind::Le:
  case TermKind::Lt: {
    // Re-sync fast path: preRegister cached the lowered (slack var,
    // direction, bound) for both polarities, so re-asserting after a
    // backjump skips polynomial renormalization entirely.
    if (PropMode) {
      auto WIt = ArithWatchOf.find(AtomIdx);
      if (WIt != ArithWatchOf.end()) {
        const PolarityWatch &PW = V ? WIt->second.Pos : WIt->second.Neg;
        if (PW.W >= 0) {
          Arith->assertCachedBound(PW.W, PW.IsUpper, PW.B, Tag);
          break;
        }
      }
    }
    TermRef X = A->getArg(0), Y = A->getArg(1);
    bool IsLe = A->getKind() == TermKind::Le;
    LinTerm P;
    ArithSolver::Op O;
    auto Sub = [&](TermRef Lhs, TermRef Rhs) {
      LinTerm L = polyOf(Lhs);
      LinTerm R = polyOf(Rhs);
      L.Const -= R.Const;
      for (const auto &[Var, Coeff] : R.Coeffs)
        L.add(Var, -Coeff);
      return L;
    };
    if (V) {
      P = Sub(X, Y);
      O = IsLe ? ArithSolver::Op::Le : ArithSolver::Op::Lt;
    } else {
      P = Sub(Y, X);
      O = IsLe ? ArithSolver::Op::Lt : ArithSolver::Op::Le;
    }
    if (O == ArithSolver::Op::Lt && X->getSort()->isInt()) {
      P.Const += Rational(1);
      O = ArithSolver::Op::Le;
    }
    Arith->assertAtom(P, O, Tag);
    break;
  }
  default: {
    // Boolean opaque atom: Var / Select / Apply of Bool sort.
    assert(A->getSort()->isBool());
    CC->registerTerm(A);
    bool Ok = CC->assertEqual(A, V ? TM.mkTrue() : TM.mkFalse(), Tag);
    if (!Ok || CC->inConflict()) {
      std::set<int> Tags(CC->conflictTags().begin(),
                         CC->conflictTags().end());
      clauseFromTags(Tags, ConflictOut);
      return false;
    }
    break;
  }
  }
  return true;
}

bool TheoryEngine::equalityFixpoint(std::vector<sat::Lit> &ConflictOut) {
  for (;;) {
    bool Changed = false;
    // CC -> arithmetic: equalities between opaque numeric terms.
    std::map<TermRef, std::vector<TermRef>> Classes;
    for (TermRef T : OpaqueNumeric)
      Classes[CC->representative(T)].push_back(T);
    for (auto &[Root, Members] : Classes) {
      for (size_t I = 1; I < Members.size(); ++I) {
        TermRef X = Members[0], Y = Members[I];
        auto Key = std::minmax(X, Y);
        if (!AssertedCCEqualities.insert({Key.first, Key.second}).second)
          continue;
        std::set<int> Expl;
        CC->explainEquality(X, Y, Expl);
        int CTag = newCompositeTag(Expl);
        LinTerm P;
        P.add(ArithVars[X], Rational(1));
        P.add(ArithVars[Y], Rational(-1));
        Arith->assertAtom(P, ArithSolver::Op::Eq, CTag);
        Changed = true;
        ++C.St.EqualitiesPropagated;
      }
    }
    std::set<int> Core;
    ArithSolver::Result AR = Arith->check(Core);
    if (AR == ArithSolver::Result::Unsat) {
      if (Core.count(SeparationTag)) {
        // The contradiction leans on an artificial model-repair
        // separation (x != y asserted under SeparationTag), which
        // expandTags would silently drop — the resulting lemma over the
        // real atoms alone would be stronger than justified. A blocking
        // clause is no better: it would claim the whole assignment has
        // no theory model when only our separation was at fault. Give up
        // on this query explicitly.
        ++C.St.ModelGiveUps;
        C.BudgetExhausted = true;
        return true;
      }
      clauseFromTags(Core, ConflictOut);
      return false;
    }
    if (AR == ArithSolver::Result::Unknown) {
      // Branch-and-bound budget exhausted: stop the search and let
      // checkSat() report Unknown rather than loop on an undecided check.
      C.BudgetExhausted = true;
      return true;
    }
    // Arithmetic -> CC: probe forced equalities among model-equal opaques.
    // Only terms feeding congruence (select/store indices, apply args)
    // matter for the exchange; probing every numeric term is quadratic
    // noise.
    computeInterfaceTerms();
    std::map<std::pair<const Sort *, Rational>, std::vector<TermRef>>
        Buckets;
    for (TermRef T : OpaqueNumeric)
      if (InterfaceTerms.count(T))
        Buckets[{T->getSort(), Arith->modelValue(ArithVars[T])}]
            .push_back(T);
    for (auto &[Key, Members] : Buckets) {
      // Model-based refinement: when a probe finds a separating model,
      // that model's values split the whole candidate group at once —
      // members with different witness values cannot be forced equal. A
      // bucket with no forced equalities then costs O(k) probes instead
      // of the O(k^2) of probing every pair.
      std::vector<std::vector<TermRef>> Groups;
      Groups.push_back(std::move(Members));
      while (!Groups.empty()) {
        std::vector<TermRef> G = std::move(Groups.back());
        Groups.pop_back();
        // Collapse to one representative per CC class (CC-equal opaques
        // were already equated on the arithmetic side above, so their
        // probes are interchangeable).
        std::vector<TermRef> Reps;
        for (TermRef T : G) {
          bool Dup = false;
          for (TermRef R : Reps)
            Dup = Dup || CC->areEqual(R, T);
          if (!Dup)
            Reps.push_back(T);
        }
        if (Reps.size() < 2)
          continue;
        TermRef X = Reps[0], Y = Reps[1];
        std::vector<int> ProbeVars;
        ProbeVars.reserve(Reps.size());
        for (TermRef T : Reps)
          ProbeVars.push_back(ArithVars[T]);
        std::set<int> Expl;
        bool ProbeUnknown = false;
        std::vector<Rational> Witness;
        if (!Arith->probeForcedEqual(ArithVars[X], ArithVars[Y], Expl,
                                     &ProbeUnknown, &ProbeVars, &Witness)) {
          if (ProbeUnknown) {
            // Undecided probe: a missed forced equality can cascade
            // into a bogus blocking clause, so give up explicitly.
            C.BudgetExhausted = true;
            return true;
          }
          // Split on the separating model; X and Y land in different
          // subgroups, so every iteration makes progress.
          std::map<Rational, std::vector<TermRef>> Split;
          for (size_t I = 0; I < Reps.size(); ++I)
            Split[Witness[I]].push_back(Reps[I]);
          if (Split.size() == 1) {
            // Defensive: a witness that fails to separate would loop
            // forever; fall back to discarding the probed pair.
            Reps.erase(Reps.begin() + 1);
            Groups.push_back(std::move(Reps));
          } else {
            for (auto &[W, Sub] : Split)
              if (Sub.size() > 1)
                Groups.push_back(std::move(Sub));
          }
          continue;
        }
        int CTag = newCompositeTag(Expl);
        if (!CC->assertEqual(X, Y, CTag)) {
          std::set<int> Tags(CC->conflictTags().begin(),
                             CC->conflictTags().end());
          clauseFromTags(Tags, ConflictOut);
          return false;
        }
        Changed = true;
        ++C.St.EqualitiesPropagated;
        // Y is now CC-equal to X; the re-queued group collapses it away
        // and goes on probing the remaining members.
        Groups.push_back(std::move(Reps));
      }
    }
    if (!Changed)
      return true;
  }
}

void TheoryEngine::computeInterfaceTerms() {
  InterfaceTerms.clear();
  ConstIndexValues.clear();
  auto Consider = [&](TermRef A) {
    if (!A->getSort()->isNumeric())
      return;
    if (A->getKind() == TermKind::IntConst)
      ConstIndexValues.emplace(
          std::make_pair(A->getSort(), Rational(A->getIntValue())), A);
    else if (A->getKind() == TermKind::RatConst)
      ConstIndexValues.emplace(std::make_pair(A->getSort(), A->getRatValue()),
                               A);
    else {
      // Interface terms must exist as arithmetic opaques even when no
      // atom mentions them directly (a nested index like `a[a[x]]`'s
      // inner select): the model builder keys array entries by their
      // values, and collision repair can only separate terms the
      // simplex knows. Composite linear indices (x + 1) stay composite,
      // but their opaque leaves get variables so separation can reach
      // them.
      if (A->getKind() == TermKind::Add || A->getKind() == TermKind::Mul)
        (void)polyOf(A);
      else
        arithVarFor(A);
      InterfaceTerms.insert(A);
    }
  };
  for (TermRef T : CC->terms()) {
    switch (T->getKind()) {
    case TermKind::Select:
    case TermKind::Store:
      Consider(T->getArg(1));
      break;
    case TermKind::Apply:
      for (TermRef A : T->getArgs())
        Consider(A);
      break;
    default:
      break;
    }
  }
}

Value TheoryEngine::valueOfTerm(TermRef T) {
  auto It = TermValues.find(T);
  if (It != TermValues.end())
    return It->second;
  Value V;
  const Sort *S_ = T->getSort();
  if (T->getKind() == TermKind::IntConst) {
    V = Value::ofInt(T->getIntValue());
  } else if (T->getKind() == TermKind::RatConst) {
    V = Value::ofRat(T->getRatValue());
  } else if (T->getKind() == TermKind::True) {
    V = Value::ofBool(true);
  } else if (T->getKind() == TermKind::False) {
    V = Value::ofBool(false);
  } else if (S_->isNumeric()) {
    // Composite arithmetic terms (e.g. `k + 1` used as a set index) are
    // evaluated structurally; opaque ones come from the simplex model.
    if (T->getKind() == TermKind::Add) {
      Rational Sum;
      for (TermRef A : T->getArgs()) {
        Value AV = valueOfTerm(A);
        Sum += AV.K == Value::Kind::Int ? Rational(AV.I) : AV.R;
      }
      V = S_->isInt() ? Value::ofInt(Sum.numerator()) : Value::ofRat(Sum);
    } else if (T->getKind() == TermKind::Mul) {
      Value CV = valueOfTerm(T->getArg(0));
      Value AV = valueOfTerm(T->getArg(1));
      Rational Coeff = CV.K == Value::Kind::Int ? Rational(CV.I) : CV.R;
      Rational A = AV.K == Value::Kind::Int ? Rational(AV.I) : AV.R;
      Rational Prod = Coeff * A;
      V = S_->isInt() ? Value::ofInt(Prod.numerator()) : Value::ofRat(Prod);
    } else {
      auto AIt = ArithVars.find(T);
      V = AIt != ArithVars.end()
              ? (S_->isInt() ? Value::ofInt(Arith->modelValue(AIt->second)
                                                .numerator())
                             : Value::ofRat(Arith->modelValue(AIt->second)))
              : Model::defaultFor(S_);
    }
  } else if (S_->isBool()) {
    auto AIt = C.AtomIndex.find(T);
    if (AIt != C.AtomIndex.end() && atomAssigned(AIt->second))
      V = Value::ofBool(atomValue(AIt->second));
    else if (CC->areEqual(T, TM.mkTrue()))
      V = Value::ofBool(true);
    else
      V = Value::ofBool(false);
  } else if (S_->isUninterpreted()) {
    TermRef Root = CC->isRegistered(T) ? CC->representative(T) : T;
    auto LIt = LocIds.find(Root);
    int64_t Id;
    if (LIt != LocIds.end()) {
      Id = LIt->second;
    } else {
      Id = (Root == TM.mkNil() || CC->areEqual(Root, TM.mkNil())) ? 0
                                                                  : NextLocId++;
      LocIds.emplace(Root, Id);
    }
    V = Value::ofLoc(Id);
  } else {
    assert(S_->isArray());
    TermRef Root = CC->isRegistered(T) ? CC->representative(T) : T;
    V = buildClassArray(Root);
  }
  TermValues.emplace(T, V);
  return V;
}

Value TheoryEngine::buildClassArray(TermRef Root) {
  auto It = ClassArrays.find(Root);
  if (It != ClassArrays.end())
    return It->second;
  if (!SelectsIndexValid) {
    // One scan indexes every select under its base's class; the per-class
    // builds below then touch only their own entries.
    SelectsByRoot.clear();
    for (TermRef T : CC->terms()) {
      if (T->getKind() != TermKind::Select)
        continue;
      TermRef Base = T->getArg(0);
      TermRef BRoot = CC->isRegistered(Base) ? CC->representative(Base) : Base;
      SelectsByRoot[BRoot].push_back(T);
    }
    SelectsIndexValid = true;
  }
  auto Arr = std::make_shared<ArrayValue>();
  Arr->Default = Model::defaultFor(Root->getSort()->getValue());
  // Pre-insert to break recursion on (impossible, but safe) cycles.
  ClassArrays.emplace(Root, Value::ofArray(Arr));
  auto SIt = SelectsByRoot.find(Root);
  if (SIt != SelectsByRoot.end()) {
    for (TermRef T : SIt->second) {
      Value Key = valueOfTerm(T->getArg(1));
      Value Val = valueOfTerm(T);
      auto EIt = Arr->Entries.find(Key);
      if (EIt != Arr->Entries.end())
        continue; // colliding entry; separateCollisions recomputes the pairs

      if (!(Val == Arr->Default))
        Arr->Entries.emplace(std::move(Key), std::move(Val));
    }
  }
  Value Result = Value::ofArray(Arr);
  ClassArrays[Root] = Result;
  return Result;
}

void TheoryEngine::buildModel() {
  TermValues.clear();
  ClassArrays.clear();
  SelectsIndexValid = false;
  LocIds.clear();
  NextLocId = 1;
  Model M;
  // Give nil its id first so it prints as nil.
  if (CC->isRegistered(TM.mkNil()))
    LocIds.emplace(CC->representative(TM.mkNil()), 0);

  // Collect leaf terms needing assignments: vars and opaque applications
  // registered anywhere (CC terms, atoms, arith opaques).
  auto Assign = [&](TermRef T) {
    if (T->getKind() != TermKind::Var && T->getKind() != TermKind::Apply)
      return;
    M.set(T, valueOfTerm(T));
  };
  for (TermRef T : CC->terms())
    Assign(T);
  for (TermRef T : OpaqueNumeric)
    Assign(T);
  for (TermRef A : C.Atoms) {
    Assign(A);
    for (TermRef Sub : A->getArgs())
      Assign(Sub);
  }
  // Pure-SAT boolean variables (stale unassigned atoms keep whatever the
  // term-value pass gave them).
  for (size_t I = 0; I < C.Atoms.size(); ++I)
    if (C.Atoms[I]->getKind() == TermKind::Var &&
        atomAssigned(static_cast<int>(I)))
      M.set(C.Atoms[I], Value::ofBool(atomValue(static_cast<int>(I))));
  C.CurrentModel = std::move(M);
}

Value TheoryEngine::lazyEval(TermRef T,
                             std::unordered_map<TermRef, Value> &Hybrid,
                             std::unordered_map<TermRef, Value> &Structural) {
  auto It = Hybrid.find(T);
  if (It != Hybrid.end())
    return It->second;
  Value V;
  switch (T->getKind()) {
  case TermKind::True:
  case TermKind::False:
  case TermKind::IntConst:
  case TermKind::RatConst:
    V = valueOfTerm(T);
    break;
  default:
    if (CC->isRegistered(T) || C.AtomIndex.count(T) != 0) {
      // The theory stack has a candidate value for this term; use it even
      // though it may disagree with the term's structural semantics —
      // that disagreement is what a violated lemma looks like.
      V = valueOfTerm(T);
      break;
    }
    switch (T->getKind()) {
    case TermKind::Not: {
      Value A = lazyEval(T->getArg(0), Hybrid, Structural);
      if (A.K == Value::Kind::Bool) {
        V = Value::ofBool(!A.B);
        break;
      }
      V = C.CurrentModel.evalWithCache(T, Structural);
      break;
    }
    case TermKind::And:
    case TermKind::Or: {
      bool IsAnd = T->getKind() == TermKind::And;
      bool Acc = IsAnd;
      bool Ok = true;
      for (TermRef A : T->getArgs()) {
        Value AV = lazyEval(A, Hybrid, Structural);
        if (AV.K != Value::Kind::Bool) {
          Ok = false;
          break;
        }
        Acc = IsAnd ? (Acc && AV.B) : (Acc || AV.B);
      }
      V = Ok ? Value::ofBool(Acc)
             : C.CurrentModel.evalWithCache(T, Structural);
      break;
    }
    case TermKind::Implies: {
      Value A = lazyEval(T->getArg(0), Hybrid, Structural);
      Value B = lazyEval(T->getArg(1), Hybrid, Structural);
      if (A.K == Value::Kind::Bool && B.K == Value::Kind::Bool) {
        V = Value::ofBool(!A.B || B.B);
        break;
      }
      V = C.CurrentModel.evalWithCache(T, Structural);
      break;
    }
    case TermKind::Eq:
      V = Value::ofBool(lazyEval(T->getArg(0), Hybrid, Structural) ==
                        lazyEval(T->getArg(1), Hybrid, Structural));
      break;
    case TermKind::Select: {
      Value AV = lazyEval(T->getArg(0), Hybrid, Structural);
      Value KV = lazyEval(T->getArg(1), Hybrid, Structural);
      if (AV.K == Value::Kind::Array) {
        auto EIt = AV.Arr->Entries.find(KV);
        V = EIt != AV.Arr->Entries.end() ? EIt->second : AV.Arr->Default;
        break;
      }
      V = C.CurrentModel.evalWithCache(T, Structural);
      break;
    }
    default:
      // No candidate value anywhere in this subtree: plain structural
      // evaluation under the candidate model.
      V = C.CurrentModel.evalWithCache(T, Structural);
      break;
    }
    break;
  }
  Hybrid.emplace(T, V);
  return V;
}

bool TheoryEngine::collectViolatedLemmas() {
  if (!Persistent || !C.Reducer || !C.Reducer->lazy())
    return false;
  const std::vector<TermRef> &Pool = C.Reducer->pendingLemmas();
  if (Pool.empty())
    return false;
  std::unordered_map<TermRef, Value> Hybrid, Structural;
  C.PendingInstantiations.clear();
  for (TermRef L : Pool) {
    if (C.Reducer->isActivated(L))
      continue;
    Value V = lazyEval(L, Hybrid, Structural);
    if (V.K == Value::Kind::Bool && !V.B)
      C.PendingInstantiations.push_back(L);
  }
  return !C.PendingInstantiations.empty();
}

bool TheoryEngine::queueAllPendingLemmas() {
  if (!Persistent || !C.Reducer || !C.Reducer->lazy())
    return false;
  C.PendingInstantiations.clear();
  for (TermRef L : C.Reducer->pendingLemmas())
    if (!C.Reducer->isActivated(L))
      C.PendingInstantiations.push_back(L);
  return !C.PendingInstantiations.empty();
}

bool TheoryEngine::hasPendingLemmas() {
  return !C.PendingInstantiations.empty();
}

bool TheoryEngine::flushPendingLemmas() {
  std::vector<TermRef> Queue = std::move(C.PendingInstantiations);
  C.PendingInstantiations.clear();
  for (TermRef L : Queue) {
    if (C.Reducer->isActivated(L))
      continue;
    C.Reducer->markActivated(L);
    ++C.St.LazyInstantiations;
    sat::Lit Root = C.litFor(L);
    if (!C.Sat.addClause({Root}))
      return false;
    // Lazy lemmas carry fresh select terms: pin their registrations at the
    // current frame so later propagation sees them without scratch churn.
    if (PropMode)
      preRegister(L);
  }
  return true;
}

void TheoryEngine::popTheoryLevel() {
  CC->pop();
  Arith->pop();
  size_t Target = LevelOpaqueSize.back();
  LevelOpaqueSize.pop_back();
  while (OpaqueNumeric.size() > Target) {
    ArithVars.erase(OpaqueNumeric.back());
    OpaqueNumeric.pop_back();
  }
}

size_t TheoryEngine::syncToTrail() {
  if (ScratchPushed) {
    popTheoryLevel();
    ScratchPushed = false;
  }
  // var -> atom map: vars and atoms are append-only, so extend only the
  // tail added since the last sync (this runs on every theory check).
  VarToAtom.resize(static_cast<size_t>(C.Sat.numVars()), -1);
  for (size_t A = MappedAtoms; A < C.AtomVar.size(); ++A)
    VarToAtom[C.AtomVar[A]] = static_cast<int>(A);
  MappedAtoms = C.AtomVar.size();
  // Project the SAT trail onto theory atoms (assignment order). With
  // propagation on, the SAT core maintains that projection already (the
  // theory trail), and its reset counter tells us when the synced prefix
  // is known intact — the common case between consecutive propagation
  // calls is pure growth, which skips the elementwise compare.
  if (PropMode) {
    const std::vector<sat::Lit> &TT = C.Sat.theoryTrail();
    uint64_t Resets = C.Sat.theoryTrailResets();
    if (PropSyncValid && Resets == TrailResetsSeen &&
        SyncedAtoms.size() <= TT.size()) {
      // Pure growth since the last sync: the synced prefix is known
      // intact (no reset), and CurAtomTrail[0..synced) still mirrors
      // SyncedAtoms from that sync — project only the new suffix. This
      // is the per-BCP-fixpoint steady state; projecting the whole
      // trail here was quadratic over a solve.
      CurAtomTrail.resize(SyncedAtoms.size());
      for (size_t I = SyncedAtoms.size(); I < TT.size(); ++I) {
        int A = VarToAtom[TT[I].var()];
        assert(A >= 0 && "theory trail holds a non-atom var");
        CurAtomTrail.push_back({A, !TT[I].negated()});
      }
      return SyncedAtoms.size();
    }
    CurAtomTrail.clear();
    for (sat::Lit L : TT) {
      int A = VarToAtom[L.var()];
      assert(A >= 0 && "theory trail holds a non-atom var");
      CurAtomTrail.push_back({A, !L.negated()});
    }
    TrailResetsSeen = Resets;
    PropSyncValid = true;
  } else {
    CurAtomTrail.clear();
    for (sat::Lit L : C.Sat.trail()) {
      int A = VarToAtom[L.var()];
      if (A >= 0)
        CurAtomTrail.push_back({A, !L.negated()});
    }
  }
  size_t K = 0;
  while (K < SyncedAtoms.size() && K < CurAtomTrail.size() &&
         SyncedAtoms[K] == CurAtomTrail[K])
    ++K;
  while (SyncedAtoms.size() > K) {
    popTheoryLevel();
    SyncedAtoms.pop_back();
  }
  return K;
}

bool TheoryEngine::syncAssert(std::vector<sat::Lit> &ConflictOut,
                              bool CountReuse) {
  size_t K = syncToTrail();
  if (CountReuse)
    C.St.TheoryAssertsReused += K;
  for (size_t I = K; I < CurAtomTrail.size(); ++I) {
    CC->push();
    Arith->push();
    LevelOpaqueSize.push_back(OpaqueNumeric.size());
    SyncedAtoms.push_back(CurAtomTrail[I]);
    if (!assertOneAtom(CurAtomTrail[I].first, ConflictOut))
      return false;
  }
  return true;
}

void TheoryEngine::resetSyncedLevels() {
  if (!Persistent)
    return;
  if (ScratchPushed) {
    popTheoryLevel();
    ScratchPushed = false;
  }
  while (!SyncedAtoms.empty()) {
    popTheoryLevel();
    SyncedAtoms.pop_back();
  }
}

bool TheoryEngine::onFullModel(std::vector<sat::Lit> &ConflictOut) {
  ++C.St.TheoryChecks;
  if (C.Opts.MaxTheoryChecks != 0 &&
      C.St.TheoryChecks - C.TheoryCheckBase > C.Opts.MaxTheoryChecks) {
    // Budget exhausted: accept the propositional model to stop the
    // search; checkSat() reports Unknown.
    C.BudgetExhausted = true;
    return true;
  }
  if (C.SolveDeadline != 0 &&
      std::chrono::duration<double>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count() > C.SolveDeadline) {
    C.BudgetExhausted = true;
    return true;
  }
  if (C.St.TheoryChecks % 25 == 1)
    logging::debugf("smt",
                    "theory check #%llu (conflicts %llu, give-ups %llu, "
                    "repairs %llu)\n",
                    (unsigned long long)C.St.TheoryChecks,
                    (unsigned long long)C.Sat.numConflicts(),
                    (unsigned long long)C.St.ModelGiveUps,
                    (unsigned long long)C.St.ModelRepairs);

  CompositeExpl.clear();
  AssertedCCEqualities.clear();
  if (!Persistent) {
    // One-shot mode: rebuild the theory engines for this assignment.
    CC = std::make_unique<CongruenceClosure>(TM);
    Arith = std::make_unique<ArithSolver>();
    ArithVars.clear();
    OpaqueNumeric.clear();
    VarOfTerm.clear();
    for (size_t I = 0; I < C.Atoms.size(); ++I)
      if (!assertOneAtom(static_cast<int>(I), ConflictOut))
        return false;
  } else {
    // Persistent mode: pop to the longest common trail prefix and assert
    // only the diverging suffix, one undo level per atom.
    if (!syncAssert(ConflictOut, /*CountReuse=*/true))
      return false;
    // Everything below is assignment-specific (exchange equalities,
    // probes, repair separations, branch cuts left by Sat checks): scratch
    // level, popped at the start of the next sync.
    CC->push();
    Arith->push();
    LevelOpaqueSize.push_back(OpaqueNumeric.size());
    ScratchPushed = true;
  }
  if (CC->inConflict()) {
    std::set<int> Tags(CC->conflictTags().begin(), CC->conflictTags().end());
    clauseFromTags(Tags, ConflictOut);
    return false;
  }
  if (!equalityFixpoint(ConflictOut))
    return false;
  if (C.BudgetExhausted)
    return true;

  // Model construction with index-collision repair.
  for (unsigned Iter = 0; Iter <= C.Opts.MaxModelRepairIters; ++Iter) {
    buildModel();
    Value V = C.CurrentModel.eval(C.EvalFormula);
    if (V.K == Value::Kind::Bool && V.B)
      return true; // genuine model
    // Lazy array instantiation: before paying for collision repair, check
    // whether the mismatch is a deferred lemma this candidate violates.
    // Queued lemmas are flushed by the SAT core at decision level zero and
    // the search resumes with the new constraints.
    if (collectViolatedLemmas())
      return true;
    ++C.St.ModelRepairs;
    if (logging::debugEnabled("smt") && C.St.ModelRepairs <= 4) {
      unsigned Shown = 0;
      for (size_t I = 0; I < C.Atoms.size() && Shown < 6; ++I) {
        if (!atomAssigned(static_cast<int>(I)))
          continue;
        Value AV = C.CurrentModel.eval(C.Atoms[I]);
        if (AV.K == Value::Kind::Bool &&
            AV.B != atomValue(static_cast<int>(I))) {
          logging::debugf("smt", "atom mismatch (sat=%d eval=%d): %s\n",
                          (int)atomValue(static_cast<int>(I)), (int)AV.B,
                          printTerm(C.Atoms[I]).c_str());
          ++Shown;
        }
      }
      if (Shown == 0)
        logging::debugf("smt", "eval failed but all atoms agree\n");
    }
    // Separate every colliding pair of numeric index terms at once —
    // including collisions with a constant index value, which have no
    // second opaque member to separate but corrupt the entry map just
    // the same.
    if (!separateCollisions())
      break; // nothing to repair: the mismatch has another cause
    std::set<int> Core;
    ArithSolver::Result AR = Arith->check(Core);
    if (AR == ArithSolver::Result::Unknown) {
      // Undecided separation: blocking this assignment could turn a
      // satisfiable formula into a bogus Unsat. Before reporting Unknown,
      // fall back to flushing every deferred array lemma — the extra
      // constraints often decide what the separation probe could not.
      if (queueAllPendingLemmas())
        return true;
      C.BudgetExhausted = true;
      return true;
    }
    if (AR == ArithSolver::Result::Unsat)
      break; // separation infeasible (some pair is forced equal)
    if (!equalityFixpoint(ConflictOut))
      return false;
    if (C.BudgetExhausted)
      return true;
  }
  // Full-flush fallback: with lazy instantiation, give up only after the
  // complete lemma set — everything the up-front closure would have
  // asserted — is in the clause database. This bounds lazy mode at one
  // round-trip worse than the up-front mode on any query, instead of
  // trading speed for new Unknowns.
  if (queueAllPendingLemmas())
    return true;
  // The model builder could not produce a witness, and no sound
  // explanation clause is available: a blocking clause here would assert
  // "this assignment has no theory model" without proof, and on formulas
  // whose models all funnel through such assignments that manufactures a
  // wrong Unsat (found by the pipeline differential fuzzer). Give up
  // explicitly instead.
  ++C.St.ModelGiveUps;
  C.BudgetExhausted = true;
  return true;
}

/// Asserts an artificial disequality (under SeparationTag) between every
/// pair of distinct-in-CC index terms that share a model value, and
/// between every opaque index term whose value collides with a constant
/// index. Returns false when no collision was found.
bool TheoryEngine::separateCollisions() {
  bool Repaired = false;
  computeInterfaceTerms();
  std::map<std::pair<const Sort *, Rational>, std::vector<TermRef>> Buckets;
  for (TermRef T : OpaqueNumeric)
    if (InterfaceTerms.count(T))
      Buckets[{T->getSort(), Arith->modelValue(ArithVars[T])}].push_back(T);
  for (auto &[Key, Members] : Buckets) {
    for (size_t I = 0; I < Members.size(); ++I) {
      for (size_t J = I + 1; J < Members.size(); ++J) {
        TermRef X = Members[I], Y = Members[J];
        if (CC->areEqual(X, Y))
          continue;
        LinTerm P;
        P.add(ArithVars[X], Rational(1));
        P.add(ArithVars[Y], Rational(-1));
        Arith->assertAtom(P, ArithSolver::Op::Ne, SeparationTag);
        Repaired = true;
      }
    }
    auto CIt = ConstIndexValues.find(Key);
    if (CIt == ConstIndexValues.end())
      continue;
    for (TermRef X : Members) {
      if (CC->isRegistered(CIt->second) && CC->areEqual(X, CIt->second))
        continue;
      LinTerm P;
      P.add(ArithVars[X], Rational(1));
      P.Const = -Key.second;
      Arith->assertAtom(P, ArithSolver::Op::Ne, SeparationTag);
      Repaired = true;
    }
  }
  return Repaired;
}

//===----------------------------------------------------------------------===//
// Theory propagation + incremental registration (PropMode)
//===----------------------------------------------------------------------===//

bool TheoryEngine::ccWatchValid(int AtomIdx) const {
  auto It = CcWatchEpoch.find(AtomIdx);
  if (It == CcWatchEpoch.end())
    return false;
  if (It->second == 0)
    return true; // registered with no frame open: pinned permanently
  return std::find(FrameEpochs.begin(), FrameEpochs.end(), It->second) !=
         FrameEpochs.end();
}

void TheoryEngine::pushAssertionFrame() {
  if (!PropMode)
    return;
  resetSyncedLevels();
  CC->push();
  Arith->push();
  LevelOpaqueSize.push_back(OpaqueNumeric.size());
  FrameEpochs.push_back(NextEpoch++);
}

void TheoryEngine::popAssertionFrame() {
  if (!PropMode)
    return;
  resetSyncedLevels();
  popTheoryLevel();
  FrameEpochs.pop_back();
}

void TheoryEngine::preRegister(TermRef F) {
  if (!PropMode)
    return;
  // Registration must happen from the frame base: anything trailed under a
  // synced atom level would silently die with the next sync's pops.
  resetSyncedLevels();
  int Epoch = FrameEpochs.empty() ? 0 : FrameEpochs.back();

  // Mirrors assertOneAtom's polarity lowering and ArithSolver::assertAtom's
  // bound normalization exactly, so the watch tests the same (var, bound)
  // the eventual assert would install.
  auto makeBoundWatch = [&](TermRef A, bool V) -> PolarityWatch {
    PolarityWatch PW;
    TermRef X = A->getArg(0), Y = A->getArg(1);
    bool IsLe = A->getKind() == TermKind::Le;
    auto Sub = [&](TermRef Lhs, TermRef Rhs) {
      LinTerm L = polyOf(Lhs);
      LinTerm R = polyOf(Rhs);
      L.Const -= R.Const;
      for (const auto &[Var, Coeff] : R.Coeffs)
        L.add(Var, -Coeff);
      return L;
    };
    LinTerm P;
    ArithSolver::Op O;
    if (V) {
      P = Sub(X, Y);
      O = IsLe ? ArithSolver::Op::Le : ArithSolver::Op::Lt;
    } else {
      P = Sub(Y, X);
      O = IsLe ? ArithSolver::Op::Lt : ArithSolver::Op::Le;
    }
    if (O == ArithSolver::Op::Lt && X->getSort()->isInt()) {
      P.Const += Rational(1);
      O = ArithSolver::Op::Le;
    }
    if (P.Coeffs.empty())
      return PW; // constant atom: nothing to watch
    Rational Scale;
    Rational BoundVal;
    int W;
    if (P.Coeffs.size() == 1) {
      W = P.Coeffs.begin()->first;
      Rational Coef = P.Coeffs.begin()->second;
      BoundVal = -P.Const / Coef;
      Scale = Coef;
    } else {
      W = Arith->ensureSlack(P, Scale);
      BoundVal = -P.Const * Scale;
    }
    bool Flip = Scale.isNegative();
    PW.W = W;
    PW.IsUpper = !Flip;
    PW.B = O == ArithSolver::Op::Le
               ? DeltaRat(BoundVal)
               : (Flip ? DeltaRat(BoundVal, Rational(1))
                       : DeltaRat(BoundVal, Rational(-1)));
    return PW;
  };

  std::vector<TermRef> Work{F};
  std::unordered_set<TermRef> Seen;
  while (!Work.empty()) {
    TermRef T = Work.back();
    Work.pop_back();
    if (!Seen.insert(T).second)
      continue;
    if (T->getKind() == TermKind::True || T->getKind() == TermKind::False)
      continue;
    if (isBoolStructure(T)) {
      for (TermRef A : T->getArgs())
        Work.push_back(A);
      continue;
    }
    auto AIt = C.AtomIndex.find(T);
    if (AIt == C.AtomIndex.end())
      continue; // not interned as an atom (nothing will ever assert it)
    int AtomIdx = AIt->second;
    auto registerOperand = [&](TermRef Operand) {
      if (CC->isRegistered(Operand))
        ++C.St.CcRegistrationsReused;
      else
        CC->registerTerm(Operand);
    };
    switch (T->getKind()) {
    case TermKind::Eq: {
      TermRef X = T->getArg(0), Y = T->getArg(1);
      registerOperand(X);
      registerOperand(Y);
      if (X->getSort()->isNumeric()) {
        (void)polyOf(X);
        (void)polyOf(Y);
      }
      if (!ccWatchValid(AtomIdx)) {
        CC->watchEquality(AtomIdx, X, Y);
        CcWatchEpoch[AtomIdx] = Epoch;
      }
      break;
    }
    case TermKind::Le:
    case TermKind::Lt: {
      if (ArithWatchOf.count(AtomIdx)) {
        // Watch thresholds are permanent (slack definitions survive pops);
        // just re-pin the operand leaves in the current frame.
        (void)polyOf(T->getArg(0));
        (void)polyOf(T->getArg(1));
        break;
      }
      ArithWatch W;
      W.Pos = makeBoundWatch(T, true);
      W.Neg = makeBoundWatch(T, false);
      if (W.Pos.W >= 0) {
        Arith->watchVar(W.Pos.W);
        VarWatchers[W.Pos.W].push_back(AtomIdx);
      }
      if (W.Neg.W >= 0 && W.Neg.W != W.Pos.W) {
        Arith->watchVar(W.Neg.W);
        VarWatchers[W.Neg.W].push_back(AtomIdx);
      }
      ArithWatchOf.emplace(AtomIdx, std::move(W));
      break;
    }
    default: {
      if (!T->getSort()->isBool())
        break;
      registerOperand(T);
      if (!ccWatchValid(AtomIdx)) {
        CC->watchEquality(AtomIdx, T, TM.mkTrue());
        CcWatchEpoch[AtomIdx] = Epoch;
      }
      break;
    }
    }
  }
}

bool TheoryEngine::proposeEntailment(int AtomIdx, bool Polarity,
                                     const std::set<int> &Tags,
                                     std::vector<sat::Lit> &ImpliedOut) {
  sat::Lit P(C.AtomVar[AtomIdx], !Polarity);
  if (!ProposedLits.insert(P.Code).second)
    return false;
  std::vector<sat::Lit> Reason{P};
  for (int T : Tags) {
    // Every cited tag must be a live, currently SAT-assigned input atom:
    // composite/separation tags or an unassigned citation would make the
    // reason clause unsound, so the propagation is skipped (the full-model
    // check remains the backstop).
    if (T < 0 || T >= static_cast<int>(C.Atoms.size()) || T == AtomIdx ||
        !atomAssigned(T))
      return false;
    Reason.push_back(sat::Lit(C.AtomVar[T], atomValue(T)));
  }
  PendingExpl E;
  E.K = PendingExpl::Kind::Lits;
  E.Lits = std::move(Reason);
  PendingReasons[P.Code] = std::move(E);
  ImpliedOut.push_back(P);
  return true;
}

void TheoryEngine::proposeCcEntailment(int AtomIdx, bool Polarity,
                                       std::vector<sat::Lit> &ImpliedOut) {
  sat::Var V = C.AtomVar[AtomIdx];
  if (C.Sat.value(sat::Lit(V, false)) != sat::LBool::Undef ||
      !C.Sat.varActive(V))
    return;
  TermRef A = C.Atoms[AtomIdx];
  TermRef X, Y;
  if (A->getKind() == TermKind::Eq) {
    X = A->getArg(0);
    Y = A->getArg(1);
  } else if (A->getSort()->isBool() && A->getKind() != TermKind::Le &&
             A->getKind() != TermKind::Lt) {
    X = A;
    Y = TM.mkTrue();
  } else {
    return;
  }
  if (!CC->isRegistered(X) || !CC->isRegistered(Y))
    return;
  // Revalidate against the live closure (pending entries may be stale —
  // generated under merges that were since popped), but do NOT walk the
  // proof paths here: the endpoints (and, for disequalities, the pinned
  // witness) are stored and expanded only if conflict analysis ever asks
  // for the reason. At propose time every tag on those paths is a plain
  // input-atom tag asserted from the synced trail — scratch levels are
  // popped before propagation — so the expansion is sound without the
  // eager per-tag validation proposeEntailment performs for arith.
  sat::Lit P(C.AtomVar[AtomIdx], !Polarity);
  if (!ProposedLits.insert(P.Code).second)
    return;
  PendingExpl E;
  if (Polarity) {
    if (!CC->areEqual(X, Y))
      return;
    E.K = PendingExpl::Kind::CcEq;
    E.X = X;
    E.Y = Y;
  } else {
    if (!CC->areDisequal(X, Y))
      return;
    if (!CC->diseqWitness(X, Y, E.W))
      return;
    E.K = PendingExpl::Kind::CcDiseq;
  }
  PendingReasons[P.Code] = std::move(E);
  ImpliedOut.push_back(P);
}

void TheoryEngine::proposeArithEntailment(int AtomIdx,
                                          std::vector<sat::Lit> &ImpliedOut) {
  auto WIt = ArithWatchOf.find(AtomIdx);
  if (WIt == ArithWatchOf.end())
    return;
  sat::Var V = C.AtomVar[AtomIdx];
  if (C.Sat.value(sat::Lit(V, false)) != sat::LBool::Undef ||
      !C.Sat.varActive(V))
    return;
  auto entailingTag = [&](const PolarityWatch &PW) -> int {
    if (PW.W < 0 || PW.W >= Arith->numVars())
      return -1;
    if (PW.IsUpper) {
      if (Arith->upperActive(PW.W) && Arith->upperValue(PW.W) <= PW.B)
        return Arith->upperTag(PW.W);
    } else {
      if (Arith->lowerActive(PW.W) && PW.B <= Arith->lowerValue(PW.W))
        return Arith->lowerTag(PW.W);
    }
    return -1;
  };
  bool Polarity = true;
  int Tag = entailingTag(WIt->second.Pos);
  if (Tag < 0) {
    Polarity = false;
    Tag = entailingTag(WIt->second.Neg);
  }
  if (Tag < 0)
    return;
  std::set<int> Tags{Tag};
  proposeEntailment(AtomIdx, Polarity, Tags, ImpliedOut);
}

bool TheoryEngine::propagatePartial(std::vector<sat::Lit> &ImpliedOut,
                                    std::vector<sat::Lit> &ConflictOut) {
  if (!PropMode || C.BudgetExhausted)
    return true;
  // Cheap deadline probe: propagation runs orders of magnitude more often
  // than full-model checks, so the clock is only consulted periodically.
  if (C.SolveDeadline != 0 && (++PropCalls & 1023) == 0 &&
      std::chrono::duration<double>(
          std::chrono::steady_clock::now().time_since_epoch())
              .count() > C.SolveDeadline) {
    C.BudgetExhausted = true;
    return true;
  }
  if (!syncAssert(ConflictOut, /*CountReuse=*/false))
    return false;
  // Strict conflict-clause construction for the partial-trail state: only
  // plain input-atom tags, every one currently assigned. Anything else
  // (composite, separation, stale) aborts the early conflict and defers to
  // the full-model check.
  auto conflictFromTags = [&](const std::set<int> &Tags) -> bool {
    ConflictOut.clear();
    for (int T : Tags) {
      if (T < 0 || T >= static_cast<int>(C.Atoms.size()) || !atomAssigned(T))
        return false;
      ConflictOut.push_back(sat::Lit(C.AtomVar[T], atomValue(T)));
    }
    return true;
  };
  if (CC->inConflict()) {
    std::set<int> Tags(CC->conflictTags().begin(), CC->conflictTags().end());
    if (conflictFromTags(Tags))
      return false;
    return true;
  }
  if (Arith->inConflict()) {
    if (conflictFromTags(Arith->trivialCore()))
      return false;
    return true;
  }
  // Drain the entailment candidates both engines queued while asserting.
  ProposedLits.clear();
  if (!CC->pendingEntailed().empty()) {
    for (auto [AtomId, Pol] : CC->pendingEntailed())
      proposeCcEntailment(AtomId, Pol, ImpliedOut);
    CC->clearPendingEntailed();
  }
  if (!Arith->boundChangeLog().empty()) {
    for (int W : Arith->boundChangeLog()) {
      auto It = VarWatchers.find(W);
      if (It == VarWatchers.end())
        continue;
      for (int AtomId : It->second)
        proposeArithEntailment(AtomId, ImpliedOut);
    }
    Arith->clearBoundChangeLog();
  }
  return true;
}

void TheoryEngine::explainPropagation(sat::Lit P,
                                      std::vector<sat::Lit> &ReasonOut) {
  auto It = PendingReasons.find(P.Code);
  assert(It != PendingReasons.end() && "no captured reason for literal");
  if (It == PendingReasons.end()) {
    // Unreachable by construction (a reason is captured before the literal
    // is ever proposed); a degenerate unit reason keeps release builds
    // from crashing in conflict analysis.
    ReasonOut.assign(1, P);
    return;
  }
  const PendingExpl &E = It->second;
  if (E.K == PendingExpl::Kind::Lits) {
    ReasonOut = E.Lits;
    return;
  }
  // Lazy CC reason: expand the frozen proof paths now. Every tag produced
  // is a plain input-atom index that was asserted from the synced trail
  // before P was implied, and is still assigned while P is.
  std::set<int> Tags;
  if (E.K == PendingExpl::Kind::CcEq)
    CC->explainEquality(E.X, E.Y, Tags);
  else
    CC->explainWitness(E.W, Tags);
  ReasonOut.clear();
  ReasonOut.push_back(P);
  for (int T : Tags) {
    assert(T >= 0 && T < static_cast<int>(C.Atoms.size()) &&
           "lazy CC reason cites a non-atom tag");
    assert(atomAssigned(T) && "lazy CC reason cites an unassigned atom");
    assert(C.AtomVar[T] != P.var() && "lazy CC reason cites the implied atom");
    ReasonOut.push_back(sat::Lit(C.AtomVar[T], atomValue(T)));
  }
}
