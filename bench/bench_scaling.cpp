//===- bench/bench_scaling.cpp - Parallel dispatch scaling bench -----------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel-scaling benchmark for the work-stealing job system behind
/// --jobs: runs the full embedded suite (the `--benchmark all` workload,
/// procedures + impact checks) at --jobs 1, 2, 4 and 8, records the
/// wall-clock of each sweep plus every per-procedure verdict, and writes
/// BENCH_scaling.json.
///
/// The run doubles as the cross-jobs differential check CI gates on:
///
///  - every jobs level must produce verdicts identical to --jobs 1 (a
///    parallelism-induced verdict flip is exactly the regression this
///    benchmark exists to catch), and
///  - on hardware with >= 4 cores, the --jobs 4 sweep must not be slower
///    than --jobs 1 (work-stealing overhead must be paid for).
///
/// Any violation makes the exit code nonzero. On boxes with fewer than 4
/// cores the speedup gate is skipped with a warning (the verdict gate
/// always applies) so the bench stays meaningful in 1-core containers.
///
/// Usage: bench_scaling [jobs ...]   (default: 1 2 4 8)
///
//===----------------------------------------------------------------------===//

#include "driver/Verifier.h"
#include "structures/Registry.h"
#include "support/Json.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

using namespace ids;

namespace {

const char *statusName(driver::Status St) {
  switch (St) {
  case driver::Status::Verified:
    return "verified";
  case driver::Status::Failed:
    return "failed";
  case driver::Status::Unknown:
    break;
  }
  return "unknown";
}

/// One "bench:proc -> status" row; impact checks ride along as
/// "bench!field/group -> ok|refuted" so a parallelism bug in the impact
/// path cannot hide behind matching procedure verdicts.
struct VerdictRow {
  std::string Key;
  std::string Status;
};

struct SweepResult {
  unsigned Jobs = 0;
  double Seconds = 0;
  bool FrontEndOk = true;
  std::vector<VerdictRow> Verdicts;
};

SweepResult runSweep(unsigned Jobs) {
  SweepResult R;
  R.Jobs = Jobs;
  auto Start = std::chrono::steady_clock::now();
  for (const structures::Benchmark &B : structures::allBenchmarks()) {
    DiagEngine Diags;
    driver::VerifyOptions Opts;
    Opts.Jobs = Jobs;
    // Same guard rails as --benchmark all: per-benchmark budget and a
    // bounded per-query timeout so a regression reports 'unknown'
    // instead of hanging the sweep.
    Opts.QueryTimeoutSeconds = 300;
    if (B.DefaultBudget > 0)
      Opts.MaxTheoryChecks = B.DefaultBudget;
    driver::ModuleResult M = driver::verifySource(B.Source, Opts, Diags);
    if (!M.FrontEndOk) {
      fprintf(stderr, "front-end error on '%s':\n%s", B.Name,
              Diags.toString().c_str());
      R.FrontEndOk = false;
      continue;
    }
    for (const driver::ProcResult &P : M.Procs)
      R.Verdicts.push_back(
          {std::string(B.Name) + ":" + P.Name, statusName(P.St)});
    for (const driver::ImpactResult &I : M.Impacts)
      R.Verdicts.push_back({std::string(B.Name) + "!" + I.Field + "/" +
                                I.Group,
                            I.Ok ? "ok" : "refuted"});
  }
  R.Seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            Start)
                  .count();
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<unsigned> JobLevels;
  for (int I = 1; I < Argc; ++I) {
    char *End = nullptr;
    unsigned long J = strtoul(Argv[I], &End, 10);
    if (!End || *End || J == 0 || J > 1024) {
      fprintf(stderr, "usage: bench_scaling [jobs ...]\n");
      return 2;
    }
    JobLevels.push_back(unsigned(J));
  }
  if (JobLevels.empty())
    JobLevels = {1, 2, 4, 8};

  unsigned Hw = std::thread::hardware_concurrency();
  printf("bench_scaling: %u hardware thread(s)\n", Hw ? Hw : 1);

  bool Ok = true;
  std::vector<SweepResult> Sweeps;
  for (unsigned Jobs : JobLevels) {
    SweepResult S = runSweep(Jobs);
    if (!S.FrontEndOk)
      Ok = false;
    printf("  --jobs %-2u  %8.2fs  (%zu verdicts)\n", Jobs, S.Seconds,
           S.Verdicts.size());
    Sweeps.push_back(std::move(S));
  }

  // Gate 1: every sweep agrees with the first (serial baseline when the
  // default levels run). Order is deterministic — the registry and each
  // module's procedure list are fixed — so rows compare positionally.
  const SweepResult &Base = Sweeps.front();
  for (size_t S = 1; S < Sweeps.size(); ++S) {
    const SweepResult &Cur = Sweeps[S];
    if (Cur.Verdicts.size() != Base.Verdicts.size()) {
      fprintf(stderr,
              "VERDICT MISMATCH: --jobs %u produced %zu verdicts, --jobs "
              "%u produced %zu\n",
              Base.Jobs, Base.Verdicts.size(), Cur.Jobs,
              Cur.Verdicts.size());
      Ok = false;
      continue;
    }
    for (size_t I = 0; I < Base.Verdicts.size(); ++I)
      if (Base.Verdicts[I].Key != Cur.Verdicts[I].Key ||
          Base.Verdicts[I].Status != Cur.Verdicts[I].Status) {
        fprintf(stderr,
                "VERDICT MISMATCH on %s: '%s' under --jobs %u, '%s' (%s) "
                "under --jobs %u\n",
                Base.Verdicts[I].Key.c_str(),
                Base.Verdicts[I].Status.c_str(), Base.Jobs,
                Cur.Verdicts[I].Status.c_str(), Cur.Verdicts[I].Key.c_str(),
                Cur.Jobs);
        Ok = false;
      }
  }

  // Gate 2: --jobs 4 must not be slower than --jobs 1 when the hardware
  // can actually run 4 workers.
  const SweepResult *J1 = nullptr, *J4 = nullptr;
  for (const SweepResult &S : Sweeps) {
    if (S.Jobs == 1)
      J1 = &S;
    if (S.Jobs == 4)
      J4 = &S;
  }
  double Speedup4 = 0;
  if (J1 && J4 && J4->Seconds > 0)
    Speedup4 = J1->Seconds / J4->Seconds;
  if (J1 && J4) {
    if (Hw >= 4) {
      printf("  --jobs 4 speedup over --jobs 1: %.2fx\n", Speedup4);
      if (J4->Seconds > J1->Seconds) {
        fprintf(stderr,
                "SCALING REGRESSION: --jobs 4 (%.2fs) slower than --jobs 1 "
                "(%.2fs) on %u-core hardware\n",
                J4->Seconds, J1->Seconds, Hw);
        Ok = false;
      }
    } else {
      printf("  (speedup gate skipped: only %u hardware thread(s))\n",
             Hw ? Hw : 1);
    }
  }

  json::Value Root = json::Value::object();
  Root.set("bench", json::Value::string("scaling"));
  Root.set("hardware_concurrency", json::Value::number(double(Hw)));
  Root.set("speedup_jobs4_over_jobs1", json::Value::number(Speedup4));
  json::Value Runs = json::Value::array();
  for (const SweepResult &S : Sweeps) {
    json::Value Run = json::Value::object();
    Run.set("jobs", json::Value::number(double(S.Jobs)));
    Run.set("seconds", json::Value::number(S.Seconds));
    json::Value Rows = json::Value::array();
    for (const VerdictRow &V : S.Verdicts) {
      json::Value Row = json::Value::object();
      Row.set("target", json::Value::string(V.Key));
      Row.set("status", json::Value::string(V.Status));
      Rows.push(std::move(Row));
    }
    Run.set("verdicts", std::move(Rows));
    Runs.push(std::move(Run));
  }
  Root.set("runs", std::move(Runs));

  FILE *Json = fopen("BENCH_scaling.json", "w");
  if (!Json) {
    fprintf(stderr, "cannot open BENCH_scaling.json for writing\n");
    return 1;
  }
  fprintf(Json, "%s\n", Root.serialize().c_str());
  fclose(Json);
  printf("Wrote BENCH_scaling.json (%zu jobs levels).\n", Sweeps.size());
  return Ok ? 0 : 1;
}
