//===- tests/lang/LexerTest.cpp - Lexer tests ------------------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <gtest/gtest.h>

using namespace ids;
using namespace ids::lang;

namespace {
std::vector<Token> lex(const std::string &S) {
  DiagEngine Diags;
  auto Toks = tokenize(S, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.toString();
  return Toks;
}
} // namespace

TEST(LexerTest, Identifiers) {
  auto T = lex("foo bar_baz _x x1");
  ASSERT_EQ(T.size(), 5u); // + eof
  EXPECT_TRUE(T[0].isIdent("foo"));
  EXPECT_TRUE(T[1].isIdent("bar_baz"));
  EXPECT_TRUE(T[2].isIdent("_x"));
  EXPECT_TRUE(T[3].isIdent("x1"));
  EXPECT_TRUE(T[4].is(TokKind::Eof));
}

TEST(LexerTest, OperatorsAndLocations) {
  auto T = lex(":= == != <= >= ==> <==> && || < >");
  EXPECT_TRUE(T[0].is(TokKind::Assign));
  EXPECT_TRUE(T[1].is(TokKind::EqEq));
  EXPECT_TRUE(T[2].is(TokKind::NotEq));
  EXPECT_TRUE(T[3].is(TokKind::LessEq));
  EXPECT_TRUE(T[4].is(TokKind::GreaterEq));
  EXPECT_TRUE(T[5].is(TokKind::Implies));
  EXPECT_TRUE(T[6].is(TokKind::Iff));
  EXPECT_TRUE(T[7].is(TokKind::AndAnd));
  EXPECT_TRUE(T[8].is(TokKind::OrOr));
  EXPECT_TRUE(T[9].is(TokKind::LAngle));
  EXPECT_TRUE(T[10].is(TokKind::RAngle));
  EXPECT_EQ(T[0].Loc.Line, 1u);
  EXPECT_EQ(T[0].Loc.Column, 1u);
  EXPECT_EQ(T[1].Loc.Column, 4u);
}

TEST(LexerTest, CommentsSkipped) {
  auto T = lex("a // comment\n b /* multi\nline */ c");
  ASSERT_EQ(T.size(), 4u);
  EXPECT_TRUE(T[0].isIdent("a"));
  EXPECT_TRUE(T[1].isIdent("b"));
  EXPECT_TRUE(T[2].isIdent("c"));
  EXPECT_EQ(T[2].Loc.Line, 3u);
}

TEST(LexerTest, IntegerLiterals) {
  auto T = lex("0 42 123456789012345678901234567890");
  EXPECT_TRUE(T[0].is(TokKind::IntLit));
  EXPECT_EQ(T[2].Text, "123456789012345678901234567890");
}

TEST(LexerTest, ErrorOnBadCharacter) {
  DiagEngine Diags;
  tokenize("a $ b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, UnterminatedComment) {
  DiagEngine Diags;
  tokenize("a /* never closed", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}
