//===- smt/CongruenceClosure.cpp - EUF congruence closure -----------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "smt/CongruenceClosure.h"

#include <algorithm>

using namespace ids;
using namespace ids::smt;

int CongruenceClosure::getId(TermRef T) {
  auto It = Ids.find(T);
  if (It != Ids.end())
    return It->second;
  // Register children first so signatures can reference them.
  for (TermRef Arg : T->getArgs())
    getId(Arg);
  int Id = static_cast<int>(NodeTerms.size());
  Ids.emplace(T, Id);
  NodeTerms.push_back(T);
  UnionParent.push_back(Id);
  ClassSize.push_back(1);
  ProofParent.push_back(-1);
  ProofReason.push_back(Reason());
  UseLists.emplace_back();
  ValueNode.push_back(T->isValue() ? Id : -1);
  if (!T->getArgs().empty()) {
    // Enter into the signature table and record use-lists.
    for (TermRef Arg : T->getArgs())
      UseLists[findRoot(Ids[Arg])].push_back(Id);
    std::vector<int> Sig = signatureOf(Id);
    auto [SigIt, Inserted] = SigTable.emplace(std::move(Sig), Id);
    if (!Inserted && findRoot(SigIt->second) != Id) {
      Reason R;
      R.CongA = Id;
      R.CongB = SigIt->second;
      Pending.emplace_back(Id, SigIt->second, R);
      processPending();
    }
  }
  return Id;
}

void CongruenceClosure::registerTerm(TermRef T) { getId(T); }

std::vector<int> CongruenceClosure::signatureOf(int Node) {
  TermRef T = NodeTerms[Node];
  std::vector<int> Sig;
  Sig.reserve(T->getNumArgs() + 3);
  Sig.push_back(static_cast<int>(T->getKind()));
  // Distinguish different Apply symbols and different sorts of e.g. Select.
  Sig.push_back(static_cast<int>(
      reinterpret_cast<uintptr_t>(T->getKind() == TermKind::Apply
                                      ? static_cast<const void *>(T->getDecl())
                                      : static_cast<const void *>(T->getSort()))));
  for (TermRef Arg : T->getArgs())
    Sig.push_back(findRoot(Ids[Arg]));
  return Sig;
}

int CongruenceClosure::findRoot(int Node) {
  int Root = Node;
  while (UnionParent[Root] != Root)
    Root = UnionParent[Root];
  while (UnionParent[Node] != Root) {
    int Next = UnionParent[Node];
    UnionParent[Node] = Root;
    Node = Next;
  }
  return Root;
}

bool CongruenceClosure::assertEqual(TermRef T1, TermRef T2, int Tag) {
  if (Failed)
    return false;
  int A = getId(T1), B = getId(T2);
  if (Failed)
    return false; // registration may already trigger congruence conflicts
  Reason R;
  R.Tag = Tag;
  Pending.emplace_back(A, B, R);
  return processPending();
}

bool CongruenceClosure::assertDisequal(TermRef T1, TermRef T2, int Tag) {
  if (Failed)
    return false;
  int A = getId(T1), B = getId(T2);
  if (Failed)
    return false;
  if (findRoot(A) == findRoot(B)) {
    Failed = true;
    std::set<int> Tags;
    std::set<std::pair<int, int>> Seen;
    explainPair(A, B, Tags, Seen);
    Tags.insert(Tag);
    ConflictTags.assign(Tags.begin(), Tags.end());
    return false;
  }
  Diseqs.emplace_back(A, B, Tag);
  return true;
}

int CongruenceClosure::proofAncestorDepth(int Node) {
  int Depth = 0;
  while (ProofParent[Node] != -1) {
    Node = ProofParent[Node];
    ++Depth;
  }
  return Depth;
}

bool CongruenceClosure::mergeRoots(int A, int B) {
  // A and B are arbitrary nodes whose classes merge; the proof edge runs
  // between the original nodes, the union operates on the roots.
  int Ra = findRoot(A), Rb = findRoot(B);
  assert(Ra != Rb);
  if (ClassSize[Ra] > ClassSize[Rb]) {
    std::swap(Ra, Rb);
    std::swap(A, B);
  }
  // Reverse the proof path from A to its root so A can take B as parent.
  {
    int Prev = -1;
    Reason PrevReason;
    int Cur = A;
    while (Cur != -1) {
      int Next = ProofParent[Cur];
      Reason NextReason = ProofReason[Cur];
      ProofParent[Cur] = Prev;
      ProofReason[Cur] = PrevReason;
      Prev = Cur;
      PrevReason = NextReason;
      Cur = Next;
    }
  }
  ProofParent[A] = B;
  // Reason for this edge was staged by the caller in PendingReason.
  ProofReason[A] = StagedReason;

  // Union: Ra (smaller) under Rb.
  UnionParent[Ra] = Rb;
  ClassSize[Rb] += ClassSize[Ra];

  // Value clash detection.
  if (ValueNode[Ra] != -1 && ValueNode[Rb] != -1 &&
      NodeTerms[ValueNode[Ra]] != NodeTerms[ValueNode[Rb]]) {
    Failed = true;
    std::set<int> Tags;
    std::set<std::pair<int, int>> Seen;
    explainPair(ValueNode[Ra], ValueNode[Rb], Tags, Seen);
    ConflictTags.assign(Tags.begin(), Tags.end());
    return false;
  }
  if (ValueNode[Rb] == -1)
    ValueNode[Rb] = ValueNode[Ra];

  // Recompute signatures of parents of the smaller class.
  std::vector<int> Moved;
  Moved.swap(UseLists[Ra]);
  for (int ParentNode : Moved) {
    std::vector<int> Sig = signatureOf(ParentNode);
    auto [It, Inserted] = SigTable.emplace(std::move(Sig), ParentNode);
    if (!Inserted && findRoot(It->second) != findRoot(ParentNode)) {
      Reason R;
      R.CongA = ParentNode;
      R.CongB = It->second;
      Pending.emplace_back(ParentNode, It->second, R);
    }
    UseLists[Rb].push_back(ParentNode);
  }

  return checkDiseqsAndValues(Rb);
}

bool CongruenceClosure::checkDiseqsAndValues(int /*NewRoot*/) {
  for (auto &[DA, DB, DTag] : Diseqs) {
    if (findRoot(DA) == findRoot(DB)) {
      Failed = true;
      std::set<int> Tags;
      std::set<std::pair<int, int>> Seen;
      explainPair(DA, DB, Tags, Seen);
      Tags.insert(DTag);
      ConflictTags.assign(Tags.begin(), Tags.end());
      return false;
    }
  }
  return true;
}

bool CongruenceClosure::processPending() {
  while (!Pending.empty()) {
    auto [A, B, R] = Pending.back();
    Pending.pop_back();
    if (findRoot(A) == findRoot(B))
      continue;
    StagedReason = R;
    if (!mergeRoots(A, B))
      return false;
  }
  return !Failed;
}

bool CongruenceClosure::areEqual(TermRef T1, TermRef T2) {
  if (T1 == T2)
    return true;
  auto It1 = Ids.find(T1), It2 = Ids.find(T2);
  if (It1 == Ids.end() || It2 == Ids.end())
    return false;
  return findRoot(It1->second) == findRoot(It2->second);
}

bool CongruenceClosure::areDisequal(TermRef T1, TermRef T2) {
  auto It1 = Ids.find(T1), It2 = Ids.find(T2);
  if (It1 == Ids.end() || It2 == Ids.end())
    return false;
  int Ra = findRoot(It1->second), Rb = findRoot(It2->second);
  if (Ra == Rb)
    return false;
  if (ValueNode[Ra] != -1 && ValueNode[Rb] != -1)
    return true; // distinct interpreted values
  for (auto &[DA, DB, DTag] : Diseqs) {
    (void)DTag;
    int Da = findRoot(DA), Db = findRoot(DB);
    if ((Da == Ra && Db == Rb) || (Da == Rb && Db == Ra))
      return true;
  }
  return false;
}

void CongruenceClosure::explainEquality(TermRef T1, TermRef T2,
                                        std::set<int> &TagsOut) {
  assert(areEqual(T1, T2) && "explaining an equality that does not hold");
  std::set<std::pair<int, int>> Seen;
  explainPair(Ids[T1], Ids[T2], TagsOut, Seen);
}

void CongruenceClosure::explainPair(int A, int B, std::set<int> &TagsOut,
                                    std::set<std::pair<int, int>> &SeenPairs) {
  if (A == B)
    return;
  auto Key = std::minmax(A, B);
  if (!SeenPairs.insert({Key.first, Key.second}).second)
    return;
  explainPath(A, B, TagsOut, SeenPairs);
}

void CongruenceClosure::explainPath(int A, int B, std::set<int> &TagsOut,
                                    std::set<std::pair<int, int>> &SeenPairs) {
  // Find the common ancestor in the proof forest by depth alignment.
  int DepthA = proofAncestorDepth(A);
  int DepthB = proofAncestorDepth(B);
  int WalkA = A, WalkB = B;
  auto Step = [&](int Node) {
    Reason &R = ProofReason[Node];
    if (R.Tag >= 0) {
      TagsOut.insert(R.Tag);
    } else {
      // Congruence edge: children of CongA/CongB are pairwise equal.
      TermRef TA = NodeTerms[R.CongA];
      TermRef TB = NodeTerms[R.CongB];
      assert(TA->getNumArgs() == TB->getNumArgs());
      for (unsigned I = 0; I < TA->getNumArgs(); ++I)
        explainPair(Ids[TA->getArg(I)], Ids[TB->getArg(I)], TagsOut,
                    SeenPairs);
    }
    return ProofParent[Node];
  };
  while (DepthA > DepthB) {
    WalkA = Step(WalkA);
    --DepthA;
  }
  while (DepthB > DepthA) {
    WalkB = Step(WalkB);
    --DepthB;
  }
  while (WalkA != WalkB) {
    WalkA = Step(WalkA);
    WalkB = Step(WalkB);
  }
  assert(WalkA == WalkB && "proof forest paths failed to meet");
}

TermRef CongruenceClosure::representative(TermRef T) {
  auto It = Ids.find(T);
  assert(It != Ids.end() && "term not registered");
  return NodeTerms[findRoot(It->second)];
}
