//===- smt/TermPrinter.cpp - SMT-LIB style term printing ------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "smt/TermPrinter.h"

#include <set>
#include <unordered_map>

using namespace ids;
using namespace ids::smt;

namespace {
class Printer {
public:
  std::string visit(TermRef T) {
    auto It = Cache.find(T);
    if (It != Cache.end())
      return It->second;
    std::string Result = compute(T);
    Cache.emplace(T, Result);
    return Result;
  }

private:
  std::string nary(const char *Op, TermRef T) {
    std::string Result = std::string("(") + Op;
    for (TermRef Arg : T->getArgs()) {
      Result += ' ';
      Result += visit(Arg);
    }
    Result += ')';
    return Result;
  }

  std::string compute(TermRef T) {
    switch (T->getKind()) {
    case TermKind::True:
      return "true";
    case TermKind::False:
      return "false";
    case TermKind::IntConst:
      return T->getIntValue().toString();
    case TermKind::RatConst:
      return T->getRatValue().toString();
    case TermKind::Var:
      return T->getName();
    case TermKind::Not:
      return nary("not", T);
    case TermKind::And:
      return nary("and", T);
    case TermKind::Or:
      return nary("or", T);
    case TermKind::Implies:
      return nary("=>", T);
    case TermKind::Ite:
      return nary("ite", T);
    case TermKind::Eq:
      return nary("=", T);
    case TermKind::Add:
      return nary("+", T);
    case TermKind::Mul:
      return nary("*", T);
    case TermKind::Le:
      return nary("<=", T);
    case TermKind::Lt:
      return nary("<", T);
    case TermKind::Select:
      return nary("select", T);
    case TermKind::Store:
      return nary("store", T);
    case TermKind::ConstArray:
      return "((as const " + T->getSort()->toString() + ") " +
             visit(T->getArg(0)) + ")";
    case TermKind::MapOr:
      return nary("map.or", T);
    case TermKind::MapAnd:
      return nary("map.and", T);
    case TermKind::MapDiff:
      return nary("map.diff", T);
    case TermKind::PwIte:
      return nary("map.ite", T);
    case TermKind::Apply:
      return nary(T->getDecl()->getName().c_str(), T);
    case TermKind::Forall: {
      std::string Result = "(forall (";
      bool First = true;
      for (TermRef BV : T->getBoundVars()) {
        if (!First)
          Result += ' ';
        First = false;
        Result += "(" + BV->getName() + " " + BV->getSort()->toString() + ")";
      }
      Result += ") " + visit(T->getArg(0)) + ")";
      return Result;
    }
    }
    return "<bad-term>";
  }

  std::unordered_map<TermRef, std::string> Cache;
};
} // namespace

std::string smt::printTerm(TermRef T) {
  Printer P;
  return P.visit(T);
}

std::string smt::printQuery(TermRef T) {
  // Collect free constants for declarations.
  std::set<std::pair<std::string, std::string>> Decls;
  std::unordered_map<TermRef, bool> Seen;
  std::vector<TermRef> Work = {T};
  while (!Work.empty()) {
    TermRef Cur = Work.back();
    Work.pop_back();
    if (Seen.count(Cur))
      continue;
    Seen.emplace(Cur, true);
    if (Cur->getKind() == TermKind::Var)
      Decls.emplace(Cur->getName(), Cur->getSort()->toString());
    for (TermRef Arg : Cur->getArgs())
      Work.push_back(Arg);
  }
  std::string Result;
  for (const auto &[Name, SortText] : Decls)
    Result += "(declare-const " + Name + " " + SortText + ")\n";
  Result += "(assert " + printTerm(T) + ")\n(check-sat)\n";
  return Result;
}
