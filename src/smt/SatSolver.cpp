//===- smt/SatSolver.cpp - CDCL SAT core ----------------------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "smt/SatSolver.h"

#include <algorithm>

using namespace ids;
using namespace ids::sat;

TheoryCallback::~TheoryCallback() = default;

Var SatSolver::newVar() {
  Var V = static_cast<Var>(Assign.size());
  Assign.push_back(LBool::Undef);
  Level.push_back(0);
  ReasonIdx.push_back(-1);
  RootAssertLevel.push_back(0);
  VarOcc.push_back(0);
  IsTheoryVar.push_back(0);
  Activity.push_back(0.0);
  SavedPhase.push_back(false);
  SeenBuffer.push_back(0);
  Watches.emplace_back();
  Watches.emplace_back();
  HeapPos.push_back(-1);
  heapInsert(V);
  return V;
}

void SatSolver::heapSiftUp(int I) {
  Var V = Heap[I];
  double Act = Activity[V];
  while (I > 0) {
    int P = (I - 1) >> 1;
    if (Activity[Heap[P]] >= Act)
      break;
    Heap[I] = Heap[P];
    HeapPos[Heap[I]] = I;
    I = P;
  }
  Heap[I] = V;
  HeapPos[V] = I;
}

void SatSolver::heapSiftDown(int I) {
  Var V = Heap[I];
  double Act = Activity[V];
  int N = static_cast<int>(Heap.size());
  for (;;) {
    int C = 2 * I + 1;
    if (C >= N)
      break;
    if (C + 1 < N && Activity[Heap[C + 1]] > Activity[Heap[C]])
      ++C;
    if (Activity[Heap[C]] <= Act)
      break;
    Heap[I] = Heap[C];
    HeapPos[Heap[I]] = I;
    I = C;
  }
  Heap[I] = V;
  HeapPos[V] = I;
}

void SatSolver::heapInsert(Var V) {
  if (HeapPos[V] != -1)
    return;
  HeapPos[V] = static_cast<int>(Heap.size());
  Heap.push_back(V);
  heapSiftUp(static_cast<int>(Heap.size()) - 1);
}

void SatSolver::attachClause(int Idx) {
  Clause &C = Clauses[Idx];
  assert(C.Lits.size() >= 2 && "cannot watch a short clause");
  Watches[C.Lits[0].Code].push_back({Idx, C.Lits[1]});
  Watches[C.Lits[1].Code].push_back({Idx, C.Lits[0]});
}

void SatSolver::detachClause(int Idx) {
  Clause &C = Clauses[Idx];
  for (int W = 0; W < 2; ++W) {
    std::vector<Watcher> &List = Watches[C.Lits[W].Code];
    for (size_t I = 0; I < List.size(); ++I)
      if (List[I].ClauseIdx == Idx) {
        List[I] = List.back();
        List.pop_back();
        break;
      }
  }
}

void SatSolver::bumpOcc(const std::vector<Lit> &Lits, int Delta) {
  for (Lit L : Lits) {
    Var V = L.var();
    VarOcc[V] += Delta;
    // A 0 -> 1 transition revives a variable that pickBranchLit may have
    // discarded from the heap while it was unconstrained.
    if (Delta > 0 && VarOcc[V] == 1)
      heapInsert(V);
  }
}

int SatSolver::allocClause(std::vector<Lit> Lits, bool Learned,
                           unsigned AssertLevel, bool ReasonOnly) {
  // ReasonOnly clauses are invisible to the clause economy: no watches,
  // no VarOcc (they must not revive stale-atom suppression), no learned
  // count (they are freed on unassignment, not by reduceDB).
  if (!ReasonOnly)
    bumpOcc(Lits, +1);
  int Idx;
  if (!FreeClauseSlots.empty()) {
    Idx = FreeClauseSlots.back();
    FreeClauseSlots.pop_back();
    Clauses[Idx] = {std::move(Lits), Learned,     false, false,
                    ReasonOnly,      AssertLevel, 0.0};
  } else {
    Idx = static_cast<int>(Clauses.size());
    Clauses.push_back({std::move(Lits), Learned, false, false, ReasonOnly,
                       AssertLevel, 0.0});
  }
  ++NumLiveClauses;
  if (Learned && !ReasonOnly) {
    ++NumLearnedLive;
    // Fresh lemmas start hot so a reduceDB sweep right after learning
    // cannot delete them before they had a chance to prune anything.
    Clauses[Idx].Act = ClaInc;
  }
  return Idx;
}

void SatSolver::removeClause(int Idx) {
  Clause &C = Clauses[Idx];
  assert(!C.Dead && "removing a dead clause");
  if (!C.ReasonOnly) {
    if (C.Lits.size() >= 2)
      detachClause(Idx);
    bumpOcc(C.Lits, -1);
  }
  C.Dead = true;
  C.Lits.clear();
  C.Lits.shrink_to_fit();
  --NumLiveClauses;
  if (C.Learned && !C.ReasonOnly)
    --NumLearnedLive;
  FreeClauseSlots.push_back(Idx);
}

void SatSolver::bumpClause(int Idx) {
  Clause &C = Clauses[Idx];
  C.Act += ClaInc;
  if (C.Act > 1e20) {
    for (Clause &D : Clauses)
      D.Act *= 1e-20;
    ClaInc *= 1e-20;
  }
}

void SatSolver::decayClauseActivities() { ClaInc *= (1.0 / 0.999); }

bool SatSolver::clauseLocked(int Idx) const {
  const Clause &C = Clauses[Idx];
  for (Lit L : C.Lits) {
    Var V = L.var();
    if (ReasonIdx[V] == Idx && Assign[V] != LBool::Undef)
      return true;
  }
  return false;
}

void SatSolver::reduceDB() {
  // Deletable: learned, longer than binary (short lemmas are cheap for
  // BCP and typically the distilled theory facts), and not currently the
  // reason of an assigned literal.
  std::vector<int> Deletable;
  for (size_t Idx = 0; Idx < Clauses.size(); ++Idx) {
    const Clause &C = Clauses[Idx];
    if (C.Dead || !C.Learned || C.ReasonOnly || C.Lits.size() <= 2)
      continue;
    if (clauseLocked(static_cast<int>(Idx)))
      continue;
    Deletable.push_back(static_cast<int>(Idx));
  }
  std::sort(Deletable.begin(), Deletable.end(),
            [&](int A, int B) { return Clauses[A].Act < Clauses[B].Act; });
  size_t Kill = Deletable.size() / 2;
  for (size_t I = 0; I < Kill; ++I) {
    removeClause(Deletable[I]);
    ++LemmasDeleted;
  }
  ++ReduceDbSweeps;
  // Grow the limit so deleted-but-still-needed theory lemmas (which the
  // theory callback will regenerate) cannot make the search thrash.
  MaxLearned += MaxLearned / 5 + 1;
}

void SatSolver::markUnsat(unsigned Level_) {
  if (UnsatAssertLevel < 0 || static_cast<unsigned>(UnsatAssertLevel) > Level_)
    UnsatAssertLevel = static_cast<int>(Level_);
}

bool SatSolver::addClause(std::vector<Lit> Lits) {
  assert(currentLevel() == 0 && "clauses must be added at level zero");
  if (unsatAtCurrentLevel())
    return false;
  // Simplify: drop duplicate/false literals, detect tautologies. Root
  // assignments consulted here were all derived at assertion levels at or
  // below the current one (assertions only happen at the top level), so
  // the simplified clause is valid exactly as long as its own level.
  std::sort(Lits.begin(), Lits.end(),
            [](Lit A, Lit B) { return A.Code < B.Code; });
  Lits.erase(std::unique(Lits.begin(), Lits.end()), Lits.end());
  std::vector<Lit> Kept;
  unsigned ClauseLevel = CurrentAssertLevel;
  for (size_t I = 0; I < Lits.size(); ++I) {
    if (I + 1 < Lits.size() && Lits[I + 1] == ~Lits[I])
      return true; // tautology
    LBool V = value(Lits[I]);
    if (V == LBool::True)
      return true; // already satisfied at level 0
    if (V == LBool::Undef)
      Kept.push_back(Lits[I]);
  }
  if (Kept.empty()) {
    markUnsat(ClauseLevel);
    return false;
  }
  if (Kept.size() == 1) {
    // The unit conclusion rests on the clause plus the dropped root-false
    // literals; record that so a later pop can retract the assignment.
    // (All contributing levels are <= ClauseLevel; being exact does not
    // matter here, only soundness of retraction.)
    enqueue(Kept[0], -1);
    RootAssertLevel[Kept[0].var()] = ClauseLevel;
    if (propagate() != -1) {
      markUnsat(CurrentAssertLevel);
      return false;
    }
    return true;
  }
  int Idx = allocClause(std::move(Kept), false, ClauseLevel);
  attachClause(Idx);
  return true;
}

void SatSolver::enqueue(Lit L, int Reason) {
  assert(value(L) == LBool::Undef && "enqueueing an assigned literal");
  Var V = L.var();
  Assign[V] = L.negated() ? LBool::False : LBool::True;
  Level[V] = currentLevel();
  ReasonIdx[V] = Reason;
  if (currentLevel() == 0) {
    // Root assignment: track the assertion level it depends on so pops can
    // retract exactly the assignments that lose their justification.
    unsigned AL = 0;
    if (Reason >= 0) {
      const Clause &C = Clauses[Reason];
      AL = C.AssertLevel;
      for (Lit Q : C.Lits)
        if (Q.var() != V)
          AL = std::max(AL, RootAssertLevel[Q.var()]);
    } else {
      AL = CurrentAssertLevel;
    }
    RootAssertLevel[V] = AL;
  }
  Trail.push_back(L);
  if (TheoryPropEnabled && IsTheoryVar[V]) {
    TheoryTrail.push_back(L);
    TheoryTrailSrc.push_back(static_cast<int>(Trail.size()) - 1);
  }
}

int SatSolver::propagate() {
  while (PropagateHead < Trail.size()) {
    Lit P = Trail[PropagateHead++];
    ++Propagations;
    // Clauses watching ~P must find a new watch or propagate/conflict.
    std::vector<Watcher> &WatchList = Watches[(~P).Code];
    size_t Keep = 0;
    for (size_t I = 0; I < WatchList.size(); ++I) {
      Watcher W = WatchList[I];
      if (value(W.Blocker) == LBool::True) {
        WatchList[Keep++] = W;
        continue;
      }
      Clause &C = Clauses[W.ClauseIdx];
      // Normalize so that the falsified watch is Lits[1].
      if (C.Lits[0] == ~P)
        std::swap(C.Lits[0], C.Lits[1]);
      assert(C.Lits[1] == ~P);
      if (value(C.Lits[0]) == LBool::True) {
        WatchList[Keep++] = {W.ClauseIdx, C.Lits[0]};
        continue;
      }
      bool FoundWatch = false;
      for (size_t K = 2; K < C.Lits.size(); ++K) {
        if (value(C.Lits[K]) != LBool::False) {
          std::swap(C.Lits[1], C.Lits[K]);
          Watches[C.Lits[1].Code].push_back({W.ClauseIdx, C.Lits[0]});
          FoundWatch = true;
          break;
        }
      }
      if (FoundWatch)
        continue;
      // Unit or conflicting.
      WatchList[Keep++] = W;
      if (value(C.Lits[0]) == LBool::False) {
        // Conflict: keep remaining watchers and report.
        for (size_t K = I + 1; K < WatchList.size(); ++K)
          WatchList[Keep++] = WatchList[K];
        WatchList.resize(Keep);
        PropagateHead = Trail.size();
        return W.ClauseIdx;
      }
      enqueue(C.Lits[0], W.ClauseIdx);
    }
    WatchList.resize(Keep);
  }
  return -1;
}

void SatSolver::bumpVar(Var V) {
  Activity[V] += VarInc;
  if (Activity[V] > 1e100) {
    // Uniform rescale preserves the heap order, so no fix-up is needed.
    for (double &A : Activity)
      A *= 1e-100;
    VarInc *= 1e-100;
  }
  if (HeapPos[V] != -1)
    heapSiftUp(HeapPos[V]);
}

void SatSolver::decayActivities() { VarInc *= (1.0 / 0.95); }

void SatSolver::analyze(int ConflictIdx, std::vector<Lit> &LearnedOut,
                        int &BacktrackLevel, unsigned &AssertLevelOut) {
  LearnedOut.clear();
  LearnedOut.push_back(Lit()); // slot for the asserting (1UIP) literal
  std::vector<char> &Seen = SeenBuffer;
  std::fill(Seen.begin(), Seen.end(), 0);
  int Counter = 0;
  Lit P;
  bool HaveP = false;
  size_t TrailIdx = Trail.size();
  int Reason = ConflictIdx;
  // The learned clause is derived by resolution from the conflicting
  // clause, the reason clauses, and the root-false literals it drops; its
  // assertion level is the max over all of them.
  AssertLevelOut = 0;

  do {
    if (Reason == ReasonTheory)
      Reason = materializeReason(P.var());
    assert(Reason != -1 && "conflict analysis ran past a decision");
    Clause &C = Clauses[Reason];
    if (C.Learned)
      bumpClause(Reason);
    AssertLevelOut = std::max(AssertLevelOut, C.AssertLevel);
    for (Lit Q : C.Lits) {
      if (HaveP && Q == P)
        continue;
      Var V = Q.var();
      if (Seen[V])
        continue;
      if (Level[V] == 0) {
        AssertLevelOut = std::max(AssertLevelOut, RootAssertLevel[V]);
        continue;
      }
      Seen[V] = 1;
      bumpVar(V);
      if (Level[V] == currentLevel())
        ++Counter;
      else
        LearnedOut.push_back(Q);
    }
    // Walk back to the most recent seen literal on the trail.
    while (!Seen[Trail[TrailIdx - 1].var()])
      --TrailIdx;
    P = Trail[--TrailIdx];
    HaveP = true;
    Seen[P.var()] = 0;
    Reason = ReasonIdx[P.var()];
    --Counter;
  } while (Counter > 0);
  LearnedOut[0] = ~P;

  // Backtrack level: highest level among the non-asserting literals.
  BacktrackLevel = 0;
  size_t MaxIdx = 1;
  for (size_t I = 1; I < LearnedOut.size(); ++I) {
    if (Level[LearnedOut[I].var()] > BacktrackLevel) {
      BacktrackLevel = Level[LearnedOut[I].var()];
      MaxIdx = I;
    }
  }
  if (LearnedOut.size() > 1)
    std::swap(LearnedOut[1], LearnedOut[MaxIdx]);
}

int SatSolver::materializeReason(Var V) {
  assert(ActiveTheory && "theory-propagated literal without a theory");
  assert(Assign[V] != LBool::Undef && "materializing for an unassigned var");
  Lit P(V, Assign[V] == LBool::False);
  std::vector<Lit> Reason;
  ActiveTheory->explainPropagation(P, Reason);
  assert(!Reason.empty() && Reason[0] == P &&
         "theory reason must lead with the propagated literal");
  int Idx = allocClause(std::move(Reason), /*Learned=*/true,
                        /*AssertLevel=*/0, /*ReasonOnly=*/true);
  ReasonIdx[V] = Idx;
  return Idx;
}

void SatSolver::backtrack(int TargetLevel) {
  if (currentLevel() <= TargetLevel)
    return;
  size_t Bound = TrailLim[TargetLevel];
  for (size_t I = Trail.size(); I-- > Bound;) {
    Var V = Trail[I].var();
    SavedPhase[V] = Assign[V] == LBool::True;
    Assign[V] = LBool::Undef;
    // A materialized theory reason lives exactly as long as its literal's
    // assignment; free it here so reasons cannot pile up across restarts.
    int RIdx = ReasonIdx[V];
    if (RIdx >= 0 && Clauses[RIdx].ReasonOnly)
      removeClause(RIdx);
    ReasonIdx[V] = -1;
    heapInsert(V);
  }
  Trail.resize(Bound);
  TrailLim.resize(TargetLevel);
  PropagateHead = Trail.size();
  // Pop the retracted theory-trail suffix and flag the shrink.
  size_t N = TheoryTrail.size();
  while (N > 0 && TheoryTrailSrc[N - 1] >= static_cast<int>(Bound))
    --N;
  if (N != TheoryTrail.size()) {
    TheoryTrail.resize(N);
    TheoryTrailSrc.resize(N);
    ++TheoryTrailResetsCount;
  }
  if (TheoryPropSeen > N)
    TheoryPropSeen = N;
}

Lit SatSolver::pickBranchLit() {
  while (!Heap.empty()) {
    Var V = Heap[0];
    Var Last = Heap.back();
    Heap.pop_back();
    HeapPos[V] = -1;
    if (!Heap.empty()) {
      Heap[0] = Last;
      HeapPos[Last] = 0;
      heapSiftDown(0);
    }
    // Variables with no live clause are unconstrained: leaving them
    // unassigned keeps popped levels' atoms out of the theory entirely.
    if (Assign[V] == LBool::Undef && VarOcc[V] > 0)
      return Lit(V, !SavedPhase[V]);
  }
  return Lit();
}

bool SatSolver::learnConflict(std::vector<Lit> Lits) {
  ++TheoryConflicts;
  // A theory conflict clause is theory-valid over its atoms: it depends on
  // no input clause at all, so its base assertion level is 0 and it is
  // retained across pops (lemma reuse). Dropping literals that are false
  // at level 0 reintroduces a dependency on their root justification.
  unsigned AssertLv = 0;
  std::vector<Lit> Final;
  for (Lit L : Lits) {
    assert(value(L) == LBool::False && "theory conflict literal not false");
    if (Level[L.var()] > 0)
      Final.push_back(L);
    else
      AssertLv = std::max(AssertLv, RootAssertLevel[L.var()]);
  }
  if (Final.empty()) {
    markUnsat(AssertLv);
    return false;
  }
  // Theory-aware branching: atoms the theory had to refute are the ones
  // worth deciding early. Gated on the propagation flag so the
  // --no-theory-prop baseline keeps the historical branching order.
  if (TheoryPropEnabled) {
    for (Lit L : Final)
      bumpVar(L.var());
    decayActivities();
  }
  // Find the two highest levels.
  std::sort(Final.begin(), Final.end(), [&](Lit A, Lit B) {
    return Level[A.var()] > Level[B.var()];
  });
  int TopLevel = Level[Final[0].var()];
  bool TopUnique = Final.size() == 1 || Level[Final[1].var()] < TopLevel;
  if (Final.size() == 1) {
    backtrack(0);
    enqueue(Final[0], -1);
    RootAssertLevel[Final[0].var()] = AssertLv;
    if (propagate() != -1) {
      markUnsat(CurrentAssertLevel);
      return false;
    }
    return true;
  }
  int ClauseIdx = allocClause(Final, true, AssertLv);
  attachClause(ClauseIdx);
  if (TopUnique) {
    // Asserting clause: jump to the second-highest level and propagate.
    backtrack(Level[Clauses[ClauseIdx].Lits[1].var()]);
    enqueue(Clauses[ClauseIdx].Lits[0], ClauseIdx);
  } else {
    // Not asserting; retreat below the top level so the watches are sound.
    backtrack(TopLevel - 1);
  }
  return true;
}

unsigned SatSolver::pushAssertLevel() {
  assert(currentLevel() == 0 && "push during search");
  return ++CurrentAssertLevel;
}

void SatSolver::popAssertLevel() {
  assert(CurrentAssertLevel > 0 && "pop without matching push");
  backtrack(0);
  unsigned NewLevel = --CurrentAssertLevel;

  // Retract clauses above the new level; count retained learned clauses
  // (the theory lemmas whose derivations survived).
  for (size_t Idx = 0; Idx < Clauses.size(); ++Idx) {
    Clause &C = Clauses[Idx];
    if (C.Dead)
      continue;
    if (C.AssertLevel > NewLevel) {
      removeClause(static_cast<int>(Idx));
    } else if (C.Learned && !C.ReasonOnly && !C.CountedRetained) {
      ++LemmasRetained;
      C.CountedRetained = true;
    }
  }

  // Retract root assignments whose justification depended on a popped
  // level. Surviving entries keep their order; propagation is replayed
  // from scratch on the next solve (idempotent and cheap relative to a
  // query).
  std::vector<Lit> NewTrail;
  NewTrail.reserve(Trail.size());
  for (Lit L : Trail) {
    Var V = L.var();
    // Free the materialized theory reason either way: survivors never
    // consult their reason again at level 0, and retracted entries lose
    // their assignment.
    int RIdx = ReasonIdx[V];
    if (RIdx >= 0 && !Clauses[RIdx].Dead && Clauses[RIdx].ReasonOnly)
      removeClause(RIdx);
    if (RootAssertLevel[V] <= NewLevel) {
      // Reason clauses of surviving entries may have been freed and their
      // slots reused; the reason is never consulted again at level 0, but
      // scrub it so no stale index can ever be dereferenced.
      ReasonIdx[V] = -1;
      NewTrail.push_back(L);
      continue;
    }
    SavedPhase[V] = Assign[V] == LBool::True;
    Assign[V] = LBool::Undef;
    ReasonIdx[V] = -1;
    heapInsert(V);
  }
  Trail = std::move(NewTrail);
  PropagateHead = 0;

  // Rebuild the theory trail from the surviving root assignments.
  TheoryTrail.clear();
  TheoryTrailSrc.clear();
  if (TheoryPropEnabled) {
    for (size_t I = 0; I < Trail.size(); ++I)
      if (IsTheoryVar[Trail[I].var()]) {
        TheoryTrail.push_back(Trail[I]);
        TheoryTrailSrc.push_back(static_cast<int>(I));
      }
  }
  ++TheoryTrailResetsCount;
  TheoryPropSeen = 0;

  if (UnsatAssertLevel >= 0 &&
      static_cast<unsigned>(UnsatAssertLevel) > NewLevel)
    UnsatAssertLevel = -1;
}

uint64_t SatSolver::luby(uint64_t I) {
  // Classic MiniSat formulation: find the finite subsequence containing
  // index I and the position within it.
  uint64_t Size = 1, Seq = 0;
  while (Size < I + 1) {
    ++Seq;
    Size = 2 * Size + 1;
  }
  while (Size - 1 != I) {
    Size = (Size - 1) >> 1;
    --Seq;
    I = I % Size;
  }
  return 1ull << Seq;
}

SatSolver::Result SatSolver::solve(TheoryCallback *Theory) {
  if (unsatAtCurrentLevel())
    return Result::Unsat;
  ActiveTheory = Theory;
  backtrack(0);
  PropagateHead = 0; // replay root propagation (clauses may have changed)
  uint64_t RestartCount = 0;
  uint64_t ConflictBudget = 128 * luby(RestartCount);
  uint64_t ConflictsThisRestart = 0;

  for (;;) {
    int ConflictIdx = propagate();
    if (ConflictIdx != -1) {
      ++Conflicts;
      ++ConflictsThisRestart;
      if (currentLevel() == 0) {
        markUnsat(CurrentAssertLevel);
        return Result::Unsat;
      }
      std::vector<Lit> Learned;
      int BtLevel = 0;
      unsigned AssertLv = 0;
      analyze(ConflictIdx, Learned, BtLevel, AssertLv);
      backtrack(BtLevel);
      if (Learned.size() == 1) {
        enqueue(Learned[0], -1);
        if (currentLevel() == 0)
          RootAssertLevel[Learned[0].var()] = AssertLv;
      } else {
        int Idx = allocClause(std::move(Learned), true, AssertLv);
        attachClause(Idx);
        enqueue(Clauses[Idx].Lits[0], Idx);
      }
      decayActivities();
      decayClauseActivities();
      if (ClauseDeletionEnabled && NumLearnedLive >= MaxLearned)
        reduceDB();
      continue;
    }

    // DPLL(T) theory propagation at the BCP fixpoint: ask the theory for
    // literals entailed by the partial trail (or an outright conflict)
    // before spending a decision. Skipped while no new theory atom was
    // assigned since the last call. This is an optimization only — the
    // full-model check below remains the soundness backstop.
    if (Theory && TheoryPropEnabled && TheoryPropSeen != TheoryTrail.size()) {
      TheoryPropSeen = TheoryTrail.size();
      TheoryImpliedBuf.clear();
      TheoryConflictBuf.clear();
      if (!Theory->propagatePartial(TheoryImpliedBuf, TheoryConflictBuf)) {
        ++TheoryPropConflicts;
        if (!learnConflict(std::move(TheoryConflictBuf)))
          return Result::Unsat;
        if (ClauseDeletionEnabled && NumLearnedLive >= MaxLearned)
          reduceDB();
        continue;
      }
      bool Changed = false;
      bool PropConflict = false;
      for (Lit L : TheoryImpliedBuf) {
        LBool Val = value(L);
        if (Val == LBool::True)
          continue;
        if (Val == LBool::False) {
          // Two theories entailed opposite polarities (e.g. CC says equal,
          // arithmetic says apart): the reason clause for L is all-false —
          // a genuine theory conflict on the current trail.
          std::vector<Lit> Reason;
          Theory->explainPropagation(L, Reason);
          ++TheoryPropConflicts;
          if (!learnConflict(std::move(Reason)))
            return Result::Unsat;
          PropConflict = true;
          break;
        }
        ++TheoryPropagations;
        if (currentLevel() == 0) {
          // Root propagation: materialize the reason eagerly so enqueue
          // derives the assignment's RootAssertLevel from the cited atoms
          // (a lazy reason could outlive a pop otherwise).
          std::vector<Lit> Reason;
          Theory->explainPropagation(L, Reason);
          int Idx = allocClause(std::move(Reason), /*Learned=*/true,
                                /*AssertLevel=*/0, /*ReasonOnly=*/true);
          enqueue(L, Idx);
        } else {
          enqueue(L, ReasonTheory);
        }
        Changed = true;
      }
      if (PropConflict || Changed)
        continue; // run BCP over the new assignments before deciding
    }

    if (ConflictsThisRestart >= ConflictBudget && currentLevel() > 0) {
      ++RestartCount;
      ++Restarts;
      ConflictBudget = 128 * luby(RestartCount);
      ConflictsThisRestart = 0;
      backtrack(0);
      continue;
    }

    Lit Next = pickBranchLit();
    if (Next.Code == -1) {
      // Full assignment; consult the theory.
      if (!Theory)
        return Result::Sat;
      std::vector<Lit> TheoryConflict;
      if (Theory->onFullModel(TheoryConflict)) {
        if (!Theory->hasPendingLemmas())
          return Result::Sat;
        // Lazy instantiation: the theory accepted this propositional
        // model but queued lemma clauses the model violates. Assert them
        // at the root and resume search instead of declaring Sat.
        backtrack(0);
        if (!Theory->flushPendingLemmas() || unsatAtCurrentLevel())
          return Result::Unsat;
        continue;
      }
      if (!learnConflict(std::move(TheoryConflict)))
        return Result::Unsat;
      if (ClauseDeletionEnabled && NumLearnedLive >= MaxLearned)
        reduceDB();
      continue;
    }
    ++Decisions;
    TrailLim.push_back(static_cast<int>(Trail.size()));
    enqueue(Next, -1);
  }
}
