//===- smt/ArithSolver.h - Simplex-based linear arithmetic -----*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linear arithmetic over exact rationals and integers: the general simplex
/// of Dutertre & de Moura (the algorithm underlying Z3/Yices, which the
/// paper's Boogie backend relies on), extended with
///   - delta-rationals for strict bounds,
///   - branch & bound for integer variables,
///   - case-splitting for numeric disequalities, and
///   - probing for implied equalities (x == y forced), which the combined
///     theory solver uses for Nelson-Oppen style equality exchange with
///     the congruence closure.
///
/// Assertions carry integer tags; Unsat results report a conflict core as
/// a set of tags derived from Farkas-style bound explanations.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SMT_ARITHSOLVER_H
#define IDS_SMT_ARITHSOLVER_H

#include "support/Rational.h"

#include <map>
#include <optional>
#include <set>
#include <vector>

namespace ids {
namespace smt {

/// A rational extended with an infinitesimal: R + D*delta, ordered
/// lexicographically. Represents strict bounds exactly.
struct DeltaRat {
  Rational R;
  Rational D;

  DeltaRat() = default;
  DeltaRat(Rational R) : R(std::move(R)) {}
  DeltaRat(Rational R, Rational D) : R(std::move(R)), D(std::move(D)) {}

  DeltaRat operator+(const DeltaRat &RHS) const {
    return DeltaRat(R + RHS.R, D + RHS.D);
  }
  DeltaRat operator-(const DeltaRat &RHS) const {
    return DeltaRat(R - RHS.R, D - RHS.D);
  }
  DeltaRat operator*(const Rational &C) const {
    return DeltaRat(R * C, D * C);
  }
  int compare(const DeltaRat &RHS) const {
    int C = R.compare(RHS.R);
    return C != 0 ? C : D.compare(RHS.D);
  }
  bool operator<(const DeltaRat &RHS) const { return compare(RHS) < 0; }
  bool operator<=(const DeltaRat &RHS) const { return compare(RHS) <= 0; }
  bool operator==(const DeltaRat &RHS) const { return compare(RHS) == 0; }
  bool operator!=(const DeltaRat &RHS) const { return compare(RHS) != 0; }

  bool isIntegral() const { return D.isZero() && R.isInteger(); }
  std::string toString() const;
};

/// A linear polynomial over solver variables plus a constant.
struct LinTerm {
  std::map<int, Rational> Coeffs;
  Rational Const;

  void add(int Var, const Rational &C);
};

/// Simplex-based solver for conjunctions of linear atoms.
///
/// Externally backtrackable: push() opens a level and pop() retracts the
/// bounds and disequalities asserted above it via a bound-restoration
/// trail. Variables, slack definitions and the tableau basis persist
/// across pops — pivoting preserves the row space, and weakening bounds
/// never invalidates the simplex invariant (nonbasic variables stay
/// inside bounds that only got looser), so no O(tableau) repair is needed
/// at pop time. The persistent theory engine opens one level per synced
/// SAT-trail literal. Internal snapshots still drive branch & bound and
/// probing.
class ArithSolver {
public:
  enum class Op { Le, Lt, Eq, Ne };
  /// Unknown is reported when branch & bound exhausts its depth budget —
  /// bounded resources instead of unbounded recursion (which would
  /// overflow the stack on adversarial integer instances).
  enum class Result { Sat, Unsat, Unknown };

  /// Creates a solver variable. \p IsInt marks integrality.
  int addVar(bool IsInt);
  int numVars() const { return static_cast<int>(IsInt.size()); }

  /// Asserts `Poly <op> 0` under \p Tag. Callers must rewrite strict
  /// integer comparisons into weak ones (x < y becomes x - y + 1 <= 0)
  /// before asserting. Returns false on an immediate trivial conflict.
  bool assertAtom(const LinTerm &Poly, Op O, int Tag);

  /// Opens a backtracking level.
  void push();
  /// Retracts every bound strengthening and disequality asserted above the
  /// matching push (a trivial-conflict state entered above it included).
  void pop();
  unsigned numLevels() const { return static_cast<unsigned>(Marks.size()); }

  /// Decides the asserted conjunction. On Unsat, \p ConflictOut holds the
  /// core (input tags only).
  Result check(std::set<int> &ConflictOut);

  /// Concrete model value after a Sat check (delta instantiated).
  Rational modelValue(int Var) const;

  /// After a Sat check: returns true when Var1 == Var2 in every model, and
  /// fills \p TagsOut with the explanation. Only meaningful when the
  /// current model already agrees on the two variables. When a probe
  /// search exhausts its depth budget the result is not trustworthy
  /// either way; \p UnknownOut (when non-null) is set so the caller can
  /// surface budget exhaustion instead of acting on a silent "false".
  ///
  /// When the probe finds a separating model (result false, not unknown)
  /// and \p WitnessVars is non-null, \p WitnessOut receives that model's
  /// value for each variable in \p WitnessVars — the caller can split its
  /// whole candidate bucket on one witness instead of probing every pair
  /// (model-based refinement).
  bool probeForcedEqual(int Var1, int Var2, std::set<int> &TagsOut,
                        bool *UnknownOut = nullptr,
                        const std::vector<int> *WitnessVars = nullptr,
                        std::vector<Rational> *WitnessOut = nullptr);

  /// Statistics for the bench harness.
  uint64_t numPivots() const { return Pivots; }
  uint64_t numBranches() const { return Branches; }

  // ------------------------------------------------- Bound watching --
  /// True when an asserted atom already produced a trivial bound-vs-bound
  /// conflict (no simplex needed); trivialCore() holds its tags. The
  /// theory-propagation path uses this as a cheap conflict probe after
  /// each asserted atom, without paying for a full check().
  bool inConflict() const { return TriviallyUnsat; }
  const std::set<int> &trivialCore() const { return TrivialConflict; }

  /// Marks \p Var: every externally asserted strengthening of its bounds
  /// is appended to boundChangeLog(). Internal search/probe cuts are
  /// excluded (they are retracted before control returns).
  void watchVar(int Var);
  /// Watched variables whose bounds were strengthened since the last
  /// clear; may contain duplicates and entries whose strengthening was
  /// since popped (consumers revalidate against the live bounds).
  const std::vector<int> &boundChangeLog() const { return BoundLog; }
  void clearBoundChangeLog() { BoundLog.clear(); }

  /// Live bound accessors for entailment tests against watched atoms.
  bool lowerActive(int Var) const { return Lower[Var].Active; }
  bool upperActive(int Var) const { return Upper[Var].Active; }
  const DeltaRat &lowerValue(int Var) const { return Lower[Var].Value; }
  const DeltaRat &upperValue(int Var) const { return Upper[Var].Value; }
  int lowerTag(int Var) const { return Lower[Var].Tag; }
  int upperTag(int Var) const { return Upper[Var].Tag; }

  /// Public wrapper over the slack-variable interning: returns the solver
  /// variable representing \p Poly's variable part and the scale applied
  /// (slack == Scale * var part). Slack definitions persist across pops,
  /// so this is safe to call at registration time.
  int ensureSlack(const LinTerm &Poly, Rational &ScaleOut) {
    return slackFor(Poly, ScaleOut);
  }

  /// Asserts a pre-lowered bound — the (slack var, direction, delta
  /// value) triple assertAtom would derive, computed once at registration
  /// time. The theory-propagation re-sync path re-asserts atoms after
  /// every backjump; this skips re-normalizing the polynomial (gcd,
  /// slack-map lookup) each time.
  bool assertCachedBound(int Var, bool IsUpper, const DeltaRat &Value,
                         int Tag);

private:
  struct Bound {
    DeltaRat Value;
    int Tag = -1;
    bool Active = false;
  };
  struct Snapshot {
    std::vector<Bound> Lower, Upper;
    std::vector<DeltaRat> Beta;
    size_t NumDiseqs;
  };
  /// Bound-restoration trail entry: the bound \p Var carried before an
  /// overwrite above the current level mark.
  struct BoundUndo {
    int Var;
    bool IsLower;
    Bound Old;
  };
  struct LevelMark {
    size_t BoundTrailSize;
    size_t NumDiseqs;
    bool TriviallyUnsat;
  };

  /// Returns the slack variable representing \p Poly's variable part
  /// (normalized), plus the scale applied: slack == Scale * (var part).
  int slackFor(const LinTerm &Poly, Rational &ScaleOut);
  bool assertPolyNegative(LinTerm Poly, int Tag, std::set<int> &Core);
  bool assertLower(int Var, DeltaRat Value, int Tag,
                   std::set<int> *ConflictOut);
  bool assertUpper(int Var, DeltaRat Value, int Tag,
                   std::set<int> *ConflictOut);
  void updateNonbasic(int Var, const DeltaRat &NewValue);
  void pivot(int BasicVar, int NonbasicVar);
  Result simplexCheck(std::set<int> &ConflictOut);
  /// Full search: simplex + integer branching + disequality splits.
  Result search(std::set<int> &ConflictOut, int Depth);
  /// Shared driver for the two-way case splits (integer branch & bound
  /// and disequality splitting): snapshots the tableau, explores the two
  /// complementary cuts asserted by \p AssertLo / \p AssertHi (each gets
  /// the depth's cut tag and a core to fill), and combines the sub-cores
  /// under the "cut unused" rules. \p ExtraTag (-1 for none) is the input
  /// tag both sub-refutations jointly depend on — the split disequality —
  /// and is added to a combined Unsat core. Templated over the two
  /// callables (signature bool(int CutTag, std::set<int> &Core)) so the
  /// search inner loop never allocates a std::function; instantiated
  /// only inside ArithSolver.cpp.
  template <typename LoFn, typename HiFn>
  Result splitOnCuts(int Depth, int ExtraTag, const LoFn &AssertLo,
                     const HiFn &AssertHi, std::set<int> &ConflictOut);
  Snapshot save() const;
  void restore(const Snapshot &S);

  // Tableau: for each basic variable, its row over nonbasic variables.
  std::vector<bool> IsBasic;
  std::vector<std::map<int, Rational>> Rows; // indexed by var; valid if basic
  std::vector<bool> IsInt;
  std::vector<Bound> Lower, Upper;
  std::vector<DeltaRat> Beta;
  std::map<std::vector<std::pair<int, Rational>>, int> SlackTable;
  std::vector<std::tuple<int, Rational, int>> Diseqs; // (var, value, tag)
  std::vector<BoundUndo> BoundTrail;
  std::vector<LevelMark> Marks;
  /// Bound-watch state: flags per var, plus the change log of watched
  /// vars whose bounds were externally strengthened. SuppressBoundLog is
  /// raised around the internal search/probe (their cut bounds are
  /// transient and must not wake watchers).
  std::vector<char> Watched;
  std::vector<int> BoundLog;
  bool SuppressBoundLog = false;
  bool TriviallyUnsat = false;
  std::set<int> TrivialConflict;
  uint64_t Pivots = 0;
  uint64_t Branches = 0;
};

} // namespace smt
} // namespace ids

#endif // IDS_SMT_ARITHSOLVER_H
