//===- support/Trace.cpp - Structured tracing & metrics --------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

using namespace ids;
using namespace ids::trace;

namespace {

// ---------------------------------------------------------------- Registry --

struct CounterRegistry {
  std::mutex M;
  // std::map: stable addresses under insertion AND name-sorted
  // iteration for free (snapshots are deterministic).
  std::map<std::string, Counter> Counters;
};

CounterRegistry &counters() {
  static CounterRegistry R;
  return R;
}

uint64_t epochUs() {
  static const uint64_t Epoch = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return Epoch;
}

// ------------------------------------------------------------ Span buffers --

struct SpanEvent {
  // Owned copy: the ScopedSpan's name pointer need not outlive the span
  // itself (copied once per recorded event, on the enabled path only).
  std::string Name;
  uint64_t TsUs;
  uint64_t DurUs;
  uint32_t Tid;
  std::vector<std::pair<std::string, json::Value>> Args;
};

/// One buffer per thread that ever opened a span. Appends take the
/// buffer's own mutex (uncontended: only its thread appends; the
/// exporter contends only at flush time). The registry keeps a second
/// shared_ptr so buffers of exited threads survive until export.
struct ThreadBuf {
  std::mutex M;
  std::vector<SpanEvent> Events;
  uint32_t Tid = 0;
};

struct SpanRegistry {
  std::mutex M;
  std::vector<std::shared_ptr<ThreadBuf>> Bufs;
  uint32_t NextTid = 1;
};

SpanRegistry &spans() {
  static SpanRegistry R;
  return R;
}

std::atomic<bool> SpansOn{false};

ThreadBuf &threadBuf() {
  thread_local std::shared_ptr<ThreadBuf> Buf = [] {
    auto B = std::make_shared<ThreadBuf>();
    SpanRegistry &R = spans();
    std::lock_guard<std::mutex> Lock(R.M);
    B->Tid = R.NextTid++;
    R.Bufs.push_back(B);
    return B;
  }();
  return *Buf;
}

// --------------------------------------------------------- Slow-query sink --

struct SlowLog {
  std::mutex M;
  std::FILE *F = nullptr;
  std::atomic<double> ThresholdMs{0};
};

SlowLog &slowLog() {
  static SlowLog L;
  return L;
}

} // namespace

// ---------------------------------------------------------------- Counters --

Counter &trace::counter(const std::string &Name) {
  CounterRegistry &R = counters();
  std::lock_guard<std::mutex> Lock(R.M);
  return R.Counters[Name];
}

std::vector<std::pair<std::string, uint64_t>> trace::counterSnapshot() {
  CounterRegistry &R = counters();
  std::lock_guard<std::mutex> Lock(R.M);
  std::vector<std::pair<std::string, uint64_t>> Out;
  Out.reserve(R.Counters.size());
  for (const auto &[Name, C] : R.Counters)
    Out.emplace_back(Name, C.value());
  return Out;
}

json::Value trace::statsJson() {
  json::Value Doc = json::Value::object();
  Doc.set("schema", json::Value::string("ids-stats-v1"));
  json::Value Cs = json::Value::object();
  for (const auto &[Name, V] : counterSnapshot())
    Cs.set(Name, json::Value::number(static_cast<double>(V)));
  Doc.set("counters", std::move(Cs));
  return Doc;
}

bool trace::writeStatsJson(const std::string &Path, std::string &Error) {
  std::FILE *F = fopen(Path.c_str(), "wb");
  if (!F) {
    Error = "cannot open stats file '" + Path + "' for writing";
    return false;
  }
  std::string S = statsJson().serialize();
  fwrite(S.data(), 1, S.size(), F);
  fputc('\n', F);
  fclose(F);
  return true;
}

void trace::resetCountersForTest() {
  CounterRegistry &R = counters();
  std::lock_guard<std::mutex> Lock(R.M);
  for (auto &[Name, C] : R.Counters) {
    (void)Name;
    C.reset();
  }
}

// ------------------------------------------------------------------- Spans --

uint64_t trace::nowUs() {
  uint64_t Now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return Now - epochUs();
}

bool trace::spansEnabled() {
  return SpansOn.load(std::memory_order_relaxed);
}

void trace::setSpansEnabled(bool On) {
  epochUs(); // pin the epoch no later than the first enable
  SpansOn.store(On, std::memory_order_relaxed);
}

ScopedSpan::ScopedSpan(const char *Name) : Name(Name) {
  if (!trace::spansEnabled())
    return;
  Active = true;
  StartUs = nowUs();
}

void ScopedSpan::arg(const char *Key, std::string Val) {
  if (Active)
    Args.emplace_back(Key, json::Value::string(std::move(Val)));
}

void ScopedSpan::arg(const char *Key, double Num) {
  if (Active)
    Args.emplace_back(Key, json::Value::number(Num));
}

ScopedSpan::~ScopedSpan() {
  if (!Active)
    return;
  uint64_t End = nowUs();
  ThreadBuf &B = threadBuf();
  std::lock_guard<std::mutex> Lock(B.M);
  B.Events.push_back(
      {Name, StartUs, End - StartUs, B.Tid, std::move(Args)});
}

json::Value trace::chromeTraceJson() {
  std::vector<SpanEvent> All;
  {
    SpanRegistry &R = spans();
    std::lock_guard<std::mutex> Lock(R.M);
    for (const std::shared_ptr<ThreadBuf> &B : R.Bufs) {
      std::lock_guard<std::mutex> BLock(B->M);
      All.insert(All.end(), B->Events.begin(), B->Events.end());
    }
  }
  std::stable_sort(All.begin(), All.end(),
                   [](const SpanEvent &A, const SpanEvent &B) {
                     return A.TsUs < B.TsUs;
                   });
  json::Value Events = json::Value::array();
  for (const SpanEvent &E : All) {
    json::Value V = json::Value::object();
    V.set("name", json::Value::string(E.Name));
    V.set("ph", json::Value::string("X"));
    V.set("ts", json::Value::number(static_cast<double>(E.TsUs)));
    V.set("dur", json::Value::number(static_cast<double>(E.DurUs)));
    V.set("pid", json::Value::number(1));
    V.set("tid", json::Value::number(E.Tid));
    if (!E.Args.empty()) {
      json::Value Args = json::Value::object();
      for (const auto &[K, Val] : E.Args)
        Args.set(K, Val);
      V.set("args", std::move(Args));
    }
    Events.push(std::move(V));
  }
  json::Value Doc = json::Value::object();
  Doc.set("traceEvents", std::move(Events));
  Doc.set("displayTimeUnit", json::Value::string("ms"));
  return Doc;
}

bool trace::writeChromeTrace(const std::string &Path, std::string &Error) {
  std::FILE *F = fopen(Path.c_str(), "wb");
  if (!F) {
    Error = "cannot open trace file '" + Path + "' for writing";
    return false;
  }
  std::string S = chromeTraceJson().serialize();
  fwrite(S.data(), 1, S.size(), F);
  fputc('\n', F);
  fclose(F);
  return true;
}

void trace::resetSpansForTest() {
  SpanRegistry &R = spans();
  std::lock_guard<std::mutex> Lock(R.M);
  for (const std::shared_ptr<ThreadBuf> &B : R.Bufs) {
    std::lock_guard<std::mutex> BLock(B->M);
    B->Events.clear();
  }
}

// ---------------------------------------------------------- Slow-query log --

void trace::setSlowQueryThresholdMs(double Ms) {
  slowLog().ThresholdMs.store(Ms, std::memory_order_relaxed);
}

double trace::slowQueryThresholdMs() {
  return slowLog().ThresholdMs.load(std::memory_order_relaxed);
}

bool trace::openSlowQueryLog(const std::string &Path, std::string &Error) {
  SlowLog &L = slowLog();
  std::lock_guard<std::mutex> Lock(L.M);
  if (L.F)
    fclose(L.F);
  L.F = fopen(Path.c_str(), "ab");
  if (!L.F) {
    Error = "cannot open slow-query log '" + Path + "' for appending";
    return false;
  }
  return true;
}

void trace::closeSlowQueryLog() {
  SlowLog &L = slowLog();
  std::lock_guard<std::mutex> Lock(L.M);
  if (L.F)
    fclose(L.F);
  L.F = nullptr;
}

void trace::appendSlowQuery(const json::Value &Record) {
  SlowLog &L = slowLog();
  std::lock_guard<std::mutex> Lock(L.M);
  if (!L.F)
    return;
  std::string S = Record.serialize();
  fwrite(S.data(), 1, S.size(), L.F);
  fputc('\n', L.F);
  fflush(L.F);
}
