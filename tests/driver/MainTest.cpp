//===- tests/driver/MainTest.cpp - Driver facade / CLI-surface tests -------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the driver-layer surface the `ids-verify` CLI is built on: the
/// embedded benchmark registry (--list / --benchmark resolution) and the
/// front-end entry points, including the bad-input paths that map to CLI
/// exit code 2. Process-level exit codes themselves are pinned by the
/// driver_cli_* ctest entries registered in CMakeLists.txt.
///
//===----------------------------------------------------------------------===//

#include "driver/Verifier.h"
#include "structures/Registry.h"

#include <gtest/gtest.h>

#include <set>

using namespace ids;

namespace {

TEST(RegistryTest, ListIsNonEmptyAndUnique) {
  const std::vector<structures::Benchmark> &All = structures::allBenchmarks();
  ASSERT_FALSE(All.empty());
  std::set<std::string> Names;
  for (const structures::Benchmark &B : All) {
    ASSERT_NE(B.Name, nullptr);
    ASSERT_NE(B.Table2Name, nullptr);
    ASSERT_NE(B.Source, nullptr);
    EXPECT_TRUE(Names.insert(B.Name).second)
        << "duplicate registry key: " << B.Name;
  }
}

TEST(RegistryTest, FindBenchmarkRoundTrips) {
  for (const structures::Benchmark &B : structures::allBenchmarks()) {
    const structures::Benchmark *Found = structures::findBenchmark(B.Name);
    ASSERT_NE(Found, nullptr) << B.Name;
    EXPECT_EQ(Found->Source, B.Source) << B.Name;
    EXPECT_EQ(structures::findBenchmarkSource(B.Name), B.Source) << B.Name;
  }
}

TEST(RegistryTest, FindBenchmarkUnknownIsNull) {
  EXPECT_EQ(structures::findBenchmark("no-such-structure"), nullptr);
  EXPECT_EQ(structures::findBenchmark(""), nullptr);
  EXPECT_EQ(structures::findBenchmarkSource("no-such-structure"), nullptr);
}

TEST(RegistryTest, MetadataIsComplete) {
  // The metadata-driven registry: every entry carries a description,
  // tags and at least one expected per-procedure verdict, and every
  // expectation names a legal status.
  for (const structures::Benchmark &B : structures::allBenchmarks()) {
    EXPECT_NE(B.Description, nullptr) << B.Name;
    EXPECT_NE(B.Tags, nullptr) << B.Name;
    ASSERT_FALSE(B.Expected.empty()) << B.Name;
    for (const structures::ProcExpectation &E : B.Expected) {
      std::string St = E.Status;
      EXPECT_TRUE(St == "verified" || St == "unknown" || St == "failed")
          << B.Name << "." << E.Proc << ": " << St;
    }
    EXPECT_EQ(B.expectedStatus("no-such-proc"), nullptr);
  }
}

TEST(DriverTest, FrontEndAcceptsEveryBenchmark) {
  for (const structures::Benchmark &B : structures::allBenchmarks()) {
    DiagEngine Diags;
    std::unique_ptr<lang::Module> M = driver::frontEnd(B.Source, Diags);
    EXPECT_NE(M, nullptr) << B.Name << ": " << Diags.toString();
  }
}

TEST(DriverTest, FrontEndRejectsGarbage) {
  DiagEngine Diags;
  std::unique_ptr<lang::Module> M =
      driver::frontEnd("this is not an ids module", Diags);
  EXPECT_EQ(M, nullptr);
  EXPECT_FALSE(Diags.toString().empty());
}

TEST(DriverTest, VerifySourceReportsFrontEndFailure) {
  DiagEngine Diags;
  driver::VerifyOptions Opts;
  driver::ModuleResult R = driver::verifySource("garbage {", Opts, Diags);
  EXPECT_FALSE(R.FrontEndOk);
  EXPECT_FALSE(R.allVerified());
}

TEST(DriverTest, OnlyProcRestrictsVerification) {
  // Verify a single procedure of the first benchmark; the result must
  // contain exactly the requested procedure.
  const std::vector<structures::Benchmark> &All = structures::allBenchmarks();
  ASSERT_FALSE(All.empty());
  DiagEngine ParseDiags;
  std::unique_ptr<lang::Module> M =
      driver::frontEnd(All[0].Source, ParseDiags);
  ASSERT_NE(M, nullptr) << ParseDiags.toString();
  ASSERT_FALSE(M->Procs.empty());
  const std::string Target = M->Procs[0].Name;

  DiagEngine Diags;
  driver::VerifyOptions Opts;
  Opts.OnlyProc = Target;
  Opts.CheckImpacts = false;
  driver::ModuleResult R = driver::verifySource(All[0].Source, Opts, Diags);
  ASSERT_TRUE(R.FrontEndOk) << Diags.toString();
  ASSERT_EQ(R.Procs.size(), 1u);
  EXPECT_EQ(R.Procs[0].Name, Target);
}

} // namespace
