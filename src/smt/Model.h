//===- smt/Model.h - Models and term evaluation ----------------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// First-order models over the solver's sorts and a full semantic
/// evaluator. Models serve two purposes:
///   - counterexample reporting when a VC fails (the verification engineer
///     sees concrete field values / broken-set contents), and
///   - the solver's safety net: a Sat answer is only reported after the
///     original formula evaluates to true under the constructed model.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SMT_MODEL_H
#define IDS_SMT_MODEL_H

#include "smt/Term.h"

#include <map>
#include <memory>
#include <string>
#include <unordered_map>

namespace ids {
namespace smt {

struct ArrayValue;

/// A model value: boolean, integer, rational, location (abstract id) or
/// array (finite map + default).
struct Value {
  enum class Kind : uint8_t { Bool, Int, Rat, Loc, Array };

  Kind K = Kind::Bool;
  bool B = false;
  BigInt I;
  Rational R;
  int64_t Loc = 0;
  std::shared_ptr<const ArrayValue> Arr;

  static Value ofBool(bool V);
  static Value ofInt(BigInt V);
  static Value ofRat(Rational V);
  static Value ofLoc(int64_t Id);
  static Value ofArray(std::shared_ptr<const ArrayValue> A);

  bool operator==(const Value &RHS) const { return compare(RHS) == 0; }
  bool operator!=(const Value &RHS) const { return compare(RHS) != 0; }
  bool operator<(const Value &RHS) const { return compare(RHS) < 0; }
  int compare(const Value &RHS) const;

  std::string toString() const;
};

/// A finite-support array value: entries different from \c Default.
/// Normalised: no entry maps to the default.
struct ArrayValue {
  Value Default;
  std::map<Value, Value> Entries;

  int compare(const ArrayValue &RHS) const;
  std::string toString() const;
};

/// A model assigning values to free constants (and opaque applications).
class Model {
public:
  /// Sets the value of a Var (or of an opaque application term, keyed by
  /// the term itself).
  void set(TermRef T, Value V) { Base[T] = std::move(V); }
  bool has(TermRef T) const { return Base.count(T) != 0; }

  /// Evaluates an arbitrary quantifier-free term. Unassigned leaves get a
  /// sort-default value (false / 0 / loc 0 / empty array).
  Value eval(TermRef T) const;

  /// Public evaluation entry point for differential testing: a Sat answer
  /// from the solver can be cross-checked by evaluating the original
  /// formula under the produced model. Alias of eval().
  Value evaluate(TermRef T) const { return eval(T); }

  /// eval() with a caller-owned memo cache, for callers that evaluate
  /// many related terms against one model (the lazy-instantiation
  /// violation scan evaluates every pending array lemma per candidate
  /// model).
  Value evalWithCache(TermRef T,
                      std::unordered_map<TermRef, Value> &Cache) const {
    return evalImpl(T, Cache);
  }

  /// Default value for a sort (used for unconstrained leaves).
  static Value defaultFor(const Sort *S);

  /// Renders the assignments of the named constants, for counterexample
  /// display.
  std::string toString() const;

private:
  Value evalImpl(TermRef T, std::unordered_map<TermRef, Value> &Cache) const;

  std::unordered_map<TermRef, Value> Base;
};

} // namespace smt
} // namespace ids

#endif // IDS_SMT_MODEL_H
