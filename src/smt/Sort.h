//===- smt/Sort.h - SMT sorts and function declarations --------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sorts of the multi-sorted logic L of the paper (Definition 2.4): Bool,
/// Int, Rat (the paper's Q), uninterpreted location sorts, and Array(K,V)
/// which models both heap fields (Loc -> V maps) and set-valued monadic
/// maps (sets are Array(T, Bool)).
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SMT_SORT_H
#define IDS_SMT_SORT_H

#include <cassert>
#include <string>
#include <vector>

namespace ids {
namespace smt {

/// Discriminator for Sort.
enum class SortKind : uint8_t {
  Bool,
  Int,
  Rat,
  Uninterpreted, ///< e.g. the location sort Loc
  Array,
};

/// An interned sort; pointer identity is semantic identity (the TermManager
/// interns all sorts).
class Sort {
public:
  SortKind getKind() const { return Kind; }
  bool isBool() const { return Kind == SortKind::Bool; }
  bool isInt() const { return Kind == SortKind::Int; }
  bool isRat() const { return Kind == SortKind::Rat; }
  bool isNumeric() const { return isInt() || isRat(); }
  bool isUninterpreted() const { return Kind == SortKind::Uninterpreted; }
  bool isArray() const { return Kind == SortKind::Array; }

  /// Name of an uninterpreted sort.
  const std::string &getName() const {
    assert(isUninterpreted());
    return Name;
  }
  const Sort *getKey() const {
    assert(isArray());
    return Key;
  }
  const Sort *getValue() const {
    assert(isArray());
    return Value;
  }

  /// Manager-independent structural fingerprint (equal sorts in different
  /// TermManagers fingerprint equally). Feeds the interned-term DAG hash
  /// behind QueryCache keys.
  uint64_t getFingerprint() const { return Fingerprint; }

  std::string toString() const;

private:
  friend class TermManager;
  Sort(SortKind Kind, std::string Name, const Sort *Key, const Sort *Value)
      : Kind(Kind), Name(std::move(Name)), Key(Key), Value(Value) {}

  SortKind Kind;
  std::string Name;         // Uninterpreted only
  const Sort *Key = nullptr;   // Array only
  const Sort *Value = nullptr; // Array only
  uint64_t Fingerprint = 0;    // set by TermManager at creation
};

/// An interned uninterpreted function declaration (used by Apply terms).
/// Zero-arity functions are represented as Var terms instead.
class FuncDecl {
public:
  const std::string &getName() const { return Name; }
  const std::vector<const Sort *> &getArgSorts() const { return ArgSorts; }
  const Sort *getRetSort() const { return RetSort; }
  /// Manager-independent structural fingerprint (name + signature).
  uint64_t getFingerprint() const { return Fingerprint; }

private:
  friend class TermManager;
  FuncDecl(std::string Name, std::vector<const Sort *> ArgSorts,
           const Sort *RetSort)
      : Name(std::move(Name)), ArgSorts(std::move(ArgSorts)),
        RetSort(RetSort) {}

  std::string Name;
  std::vector<const Sort *> ArgSorts;
  const Sort *RetSort;
  uint64_t Fingerprint = 0; // set by TermManager at creation
};

} // namespace smt
} // namespace ids

#endif // IDS_SMT_SORT_H
