//===- driver/Main.cpp - ids-verify command line tool ----------------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command line front end:
///
///   ids-verify FILE.ids            verify a module from a file
///   ids-verify --benchmark NAME    verify an embedded Table 2 benchmark
///   ids-verify --list              list embedded benchmarks
///
/// Options: --quant (Dafny-style quantified encoding, RQ3), --splits N,
/// --proc NAME, --no-frames, --no-impacts, --budget N (theory-check
/// budget per solver query; exhaustion reports "unknown"), --timeout S
/// (wall-clock budget per query), and the VC pipeline controls:
/// --jobs N (parallel obligation dispatch), --no-simp (disable the
/// simplifier), --no-slice (disable cone-of-influence slicing),
/// --no-cache (disable the structural query cache), --stats (print
/// per-procedure pipeline statistics).
///
//===----------------------------------------------------------------------===//

#include "driver/Verifier.h"
#include "structures/Registry.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace ids;

static void printPipelineStats(const pipeline::Stats &St) {
  printf("    pipeline: %u obligations (%u simplified away), "
         "%u/%u guard conjuncts sliced, %u queries (%u cache hits, "
         "%u slice fallbacks, %u escalated), max %u atoms / %u array "
         "lemmas\n",
         St.Obligations, St.ProvedBySimplify, St.ConjunctsSliced,
         St.ConjunctsBeforeSlice, St.Queries, St.CacheHits,
         St.SliceFallbacks, St.EscalatedQueries, St.MaxAtoms,
         St.MaxArrayLemmas);
  if (St.PrefixGroups > 0)
    printf("    incremental: %u prefix groups, %u context reuses, "
           "%llu lemmas retained, %u sat rechecks\n",
           St.PrefixGroups, St.ContextReuses,
           (unsigned long long)St.LemmasRetained, St.IncrSatRechecks);
}

/// Registry-comparable status key; must produce exactly the strings
/// structures::ProcExpectation::Status uses.
static const char *statusKey(driver::Status St) {
  switch (St) {
  case driver::Status::Verified:
    return "verified";
  case driver::Status::Failed:
    return "failed";
  case driver::Status::Unknown:
    break;
  }
  return "unknown";
}

static void printResult(const driver::ModuleResult &R, bool ShowStats) {
  printf("structure %s  (LC size: %u conjuncts)\n", R.StructureName.c_str(),
         R.LcSize);
  if (!R.Impacts.empty()) {
    unsigned Bad = 0;
    for (const driver::ImpactResult &I : R.Impacts)
      if (!I.Ok)
        ++Bad;
    printf("impact sets: %zu checked, %u failed (%.2fs)\n",
           R.Impacts.size(), Bad, R.ImpactSeconds);
    if (ShowStats) {
      pipeline::Stats Agg;
      for (const driver::ImpactResult &I : R.Impacts)
        Agg.merge(I.Pipeline);
      printPipelineStats(Agg);
    }
    for (const driver::ImpactResult &I : R.Impacts)
      if (!I.Ok)
        printf("  FAILED impact %s [%s]\n", I.Field.c_str(),
               I.Group.c_str());
  }
  for (const driver::ProcResult &P : R.Procs) {
    const char *St = P.St == driver::Status::Verified ? "verified"
                     : P.St == driver::Status::Failed ? "FAILED"
                                                      : "unknown";
    printf("  %-24s %3u+%u+%-3u  %3u obligations  %7.2fs  %s\n",
           P.Name.c_str(), P.Metrics.CodeLines, P.Metrics.SpecLines,
           P.Metrics.AnnotLines, P.NumObligations, P.Seconds, St);
    if (ShowStats)
      printPipelineStats(P.Pipeline);
    if (P.St != driver::Status::Verified) {
      printf("    obligation: %s\n", P.FailedObligation.c_str());
      if (!P.Counterexample.empty()) {
        printf("    counterexample:\n");
        std::istringstream In(P.Counterexample);
        std::string Line;
        while (std::getline(In, Line))
          printf("      %s\n", Line.c_str());
      }
    }
  }
}

int main(int Argc, char **Argv) {
  driver::VerifyOptions Opts;
  std::string File, BenchName;
  bool List = false;
  bool ShowStats = false;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--quant") {
      Opts.QuantifiedMode = true;
    } else if (A == "--no-frames") {
      Opts.CheckFrames = false;
    } else if (A == "--no-impacts") {
      Opts.CheckImpacts = false;
    } else if (A == "--no-simp") {
      Opts.SimplifyVc = false;
    } else if (A == "--no-slice") {
      Opts.SliceVc = false;
    } else if (A == "--no-cache") {
      Opts.CacheQueries = false;
    } else if (A == "--no-incremental") {
      Opts.Incremental = false;
    } else if (A == "--stats") {
      ShowStats = true;
    } else if (A == "--jobs" && I + 1 < Argc) {
      Opts.Jobs = static_cast<unsigned>(atoi(Argv[++I]));
    } else if (A == "--splits" && I + 1 < Argc) {
      Opts.VcSplits = static_cast<unsigned>(atoi(Argv[++I]));
    } else if (A == "--proc" && I + 1 < Argc) {
      Opts.OnlyProc = Argv[++I];
    } else if (A == "--budget" && I + 1 < Argc) {
      Opts.MaxTheoryChecks = static_cast<uint64_t>(atoll(Argv[++I]));
    } else if (A == "--timeout" && I + 1 < Argc) {
      Opts.QueryTimeoutSeconds = atof(Argv[++I]);
    } else if (A == "--benchmark" && I + 1 < Argc) {
      BenchName = Argv[++I];
    } else if (A == "--list") {
      List = true;
    } else if (A[0] != '-') {
      File = A;
    } else {
      fprintf(stderr, "unknown option: %s\n", A.c_str());
      return 2;
    }
  }
  if (List) {
    for (const structures::Benchmark &B : structures::allBenchmarks()) {
      printf("%s  (%s)\n", B.Name, B.Table2Name);
      printf("    %s\n", B.Description);
      printf("    tags: %s", B.Tags);
      if (B.DefaultBudget > 0)
        printf("  [default budget: %llu]",
               (unsigned long long)B.DefaultBudget);
      printf("\n    expected:");
      for (const structures::ProcExpectation &E : B.Expected)
        printf(" %s=%s", E.Proc, E.Status);
      printf("\n");
    }
    return 0;
  }
  if (BenchName == "all") {
    // Verify the whole embedded suite in one invocation, applying each
    // benchmark's registry default budget unless the user chose one.
    // Success means every procedure lands on its registry-expected
    // verdict (a budgeted "unknown" on record is not a regression).
    int Worst = 0;
    for (const structures::Benchmark &B : structures::allBenchmarks()) {
      driver::VerifyOptions BOpts = Opts;
      if (BOpts.MaxTheoryChecks == 0 && B.DefaultBudget > 0)
        BOpts.MaxTheoryChecks = B.DefaultBudget;
      printf("=== %s (%s) ===\n", B.Name, B.Table2Name);
      DiagEngine Diags;
      driver::ModuleResult R = driver::verifySource(B.Source, BOpts, Diags);
      if (!R.FrontEndOk) {
        fprintf(stderr, "%s", Diags.toString().c_str());
        return 2;
      }
      printResult(R, ShowStats);
      for (const driver::ImpactResult &I : R.Impacts)
        if (!I.Ok)
          Worst = 1;
      for (const driver::ProcResult &P : R.Procs) {
        const char *St = statusKey(P.St);
        const char *Want = B.expectedStatus(P.Name);
        if (std::string(St) != (Want ? Want : "verified")) {
          printf("  MISMATCH: %s expected %s, got %s\n", P.Name.c_str(),
                 Want ? Want : "verified", St);
          Worst = 1;
        }
      }
      // The reverse direction (skipped under --proc, which restricts the
      // run on purpose): every registry-expected procedure must have
      // actually run, or a renamed/removed procedure would pass silently.
      if (Opts.OnlyProc.empty()) {
        for (const structures::ProcExpectation &E : B.Expected) {
          bool Ran = false;
          for (const driver::ProcResult &P : R.Procs)
            Ran = Ran || P.Name == E.Proc;
          if (!Ran) {
            printf("  MISSING: expected procedure '%s' did not run\n",
                   E.Proc);
            Worst = 1;
          }
        }
      }
    }
    return Worst;
  }
  std::string Source;
  if (!BenchName.empty()) {
    const char *Src = structures::findBenchmarkSource(BenchName);
    if (!Src) {
      fprintf(stderr, "unknown benchmark '%s' (try --list)\n",
              BenchName.c_str());
      return 2;
    }
    Source = Src;
  } else if (!File.empty()) {
    std::ifstream In(File);
    if (!In) {
      fprintf(stderr, "cannot open '%s'\n", File.c_str());
      return 2;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  } else {
    fprintf(stderr,
            "usage: ids-verify [options] (FILE | --benchmark NAME | "
            "--list)\n"
            "       --benchmark all verifies the whole embedded suite "
            "(each\n"
            "       benchmark under its registry default budget; exit 0 "
            "iff every\n"
            "       procedure matches its registry-expected verdict)\n"
            "       --list prints each benchmark's description, tags, "
            "default\n"
            "       budget and expected per-procedure verdicts\n"
            "options: --quant --splits N --proc NAME --no-frames "
            "--no-impacts --budget N --timeout S\n"
            "VC pipeline: --jobs N (parallel obligation dispatch; "
            "default 0 = auto-detect\n"
            "                      from hardware concurrency)\n"
            "             --no-simp (disable the VC simplifier)\n"
            "             --no-slice (disable cone-of-influence "
            "slicing)\n"
            "             --no-cache (disable the structural query "
            "cache)\n"
            "             --no-incremental (disable shared-prefix "
            "batching on\n"
            "                      incremental solver contexts; every "
            "query then\n"
            "                      gets a fresh one-shot solve)\n"
            "             --stats (print per-procedure pipeline "
            "statistics)\n");
    return 2;
  }

  DiagEngine Diags;
  driver::ModuleResult R = driver::verifySource(Source, Opts, Diags);
  if (!R.FrontEndOk) {
    fprintf(stderr, "%s", Diags.toString().c_str());
    return 2;
  }
  printResult(R, ShowStats);
  return R.allVerified() ? 0 : 1;
}
