//===- support/Diag.h - Source locations and diagnostics -------*- C++ -*-===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations and a diagnostic sink shared by the lexer, parser, type
/// checker, ghost checker, well-behavedness checker and verifier driver.
///
//===----------------------------------------------------------------------===//

#ifndef IDS_SUPPORT_DIAG_H
#define IDS_SUPPORT_DIAG_H

#include <string>
#include <vector>

namespace ids {

/// 1-based line/column position in a source buffer. Line 0 marks an
/// unknown/synthesised location.
struct SourceLoc {
  unsigned Line = 0;
  unsigned Column = 0;

  bool isValid() const { return Line != 0; }
  std::string toString() const;
};

/// Severity of a reported diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported diagnostic.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  SourceLoc Loc;
  std::string Message;

  std::string toString() const;
};

/// Collects diagnostics produced by a front-end pass.
///
/// Passes report through this sink instead of printing, so library users
/// (tests, the CLI, the bench harness) decide how to render failures.
class DiagEngine {
public:
  void error(SourceLoc Loc, const std::string &Message) {
    Diags.push_back({DiagKind::Error, Loc, Message});
    ++ErrorCount;
  }
  void warning(SourceLoc Loc, const std::string &Message) {
    Diags.push_back({DiagKind::Warning, Loc, Message});
  }
  void note(SourceLoc Loc, const std::string &Message) {
    Diags.push_back({DiagKind::Note, Loc, Message});
  }

  bool hasErrors() const { return ErrorCount != 0; }
  unsigned errorCount() const { return ErrorCount; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// All diagnostics joined by newlines; convenient for test failure text.
  std::string toString() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned ErrorCount = 0;
};

} // namespace ids

#endif // IDS_SUPPORT_DIAG_H
