//===- tests/support/RationalTest.cpp - Rational unit & property tests ----===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "support/Rational.h"

#include <gtest/gtest.h>

#include <random>

using ids::BigInt;
using ids::Rational;

TEST(RationalTest, NormalisationLowestTerms) {
  Rational R(6, 8);
  EXPECT_EQ(R.numerator().toString(), "3");
  EXPECT_EQ(R.denominator().toString(), "4");
  Rational Neg(3, -6);
  EXPECT_EQ(Neg.numerator().toString(), "-1");
  EXPECT_EQ(Neg.denominator().toString(), "2");
  EXPECT_EQ(Rational(0, 17).toString(), "0");
}

TEST(RationalTest, Arithmetic) {
  EXPECT_EQ((Rational(1, 2) + Rational(1, 3)).toString(), "5/6");
  EXPECT_EQ((Rational(1, 2) - Rational(1, 3)).toString(), "1/6");
  EXPECT_EQ((Rational(2, 3) * Rational(3, 4)).toString(), "1/2");
  EXPECT_EQ((Rational(2, 3) / Rational(4, 3)).toString(), "1/2");
  EXPECT_EQ((-Rational(2, 3)).toString(), "-2/3");
}

TEST(RationalTest, ComparisonAcrossDenominators) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(7, 2), Rational(3));
}

TEST(RationalTest, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor().toString(), "3");
  EXPECT_EQ(Rational(7, 2).ceil().toString(), "4");
  EXPECT_EQ(Rational(-7, 2).floor().toString(), "-4");
  EXPECT_EQ(Rational(-7, 2).ceil().toString(), "-3");
  EXPECT_EQ(Rational(4).floor().toString(), "4");
  EXPECT_EQ(Rational(4).ceil().toString(), "4");
  EXPECT_EQ(Rational(-4).floor().toString(), "-4");
}

TEST(RationalTest, MidpointIsBetween) {
  // The paper's rank repair uses (rank(x)+rank(y))/2; check density.
  Rational A(3, 7), B(4, 7);
  Rational Mid = (A + B) / Rational(2);
  EXPECT_LT(A, Mid);
  EXPECT_LT(Mid, B);
}

TEST(RationalTest, PropertyFieldAxioms) {
  std::mt19937_64 Rng(7);
  std::uniform_int_distribution<int64_t> Dist(-50, 50);
  auto Rand = [&]() {
    int64_t D = 0;
    while (D == 0)
      D = Dist(Rng);
    return Rational(Dist(Rng), D);
  };
  for (int I = 0; I < 1000; ++I) {
    Rational A = Rand(), B = Rand(), C = Rand();
    EXPECT_EQ(A + B, B + A);
    EXPECT_EQ((A + B) + C, A + (B + C));
    EXPECT_EQ(A * (B + C), A * B + A * C);
    EXPECT_EQ(A - A, Rational(0));
    if (!B.isZero())
      EXPECT_EQ(A / B * B, A);
    // floor(x) <= x < floor(x)+1
    EXPECT_LE(Rational(A.floor()), A);
    EXPECT_LT(A, Rational(A.floor() + BigInt(1)));
  }
}
