//===- support/Json.cpp - Minimal JSON value, parser, writer ---------------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace ids;
using namespace ids::json;

const Value *Value::get(const std::string &Key) const {
  for (const auto &M : Members)
    if (M.first == Key)
      return &M.second;
  return nullptr;
}

void Value::set(const std::string &Key, Value V) {
  for (auto &M : Members)
    if (M.first == Key) {
      M.second = std::move(V);
      return;
    }
  Members.emplace_back(Key, std::move(V));
}

//===----------------------------------------------------------------------===//
// Serializer
//===----------------------------------------------------------------------===//

static void appendEscaped(std::string &Out, const std::string &S) {
  Out += '"';
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  Out += '"';
}

static void appendNumber(std::string &Out, double N) {
  if (!std::isfinite(N)) {
    // JSON has no Inf/NaN; null is the conventional lossless-ish stand-in.
    Out += "null";
    return;
  }
  char Buf[32];
  if (N == std::floor(N) && std::fabs(N) < 1e15) {
    snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(N));
  } else {
    snprintf(Buf, sizeof(Buf), "%.17g", N);
  }
  Out += Buf;
}

static void serializeInto(const Value &V, std::string &Out) {
  switch (V.kind()) {
  case Value::Kind::Null:
    Out += "null";
    break;
  case Value::Kind::Bool:
    Out += V.asBool() ? "true" : "false";
    break;
  case Value::Kind::Number:
    appendNumber(Out, V.asNumber());
    break;
  case Value::Kind::String:
    appendEscaped(Out, V.asString());
    break;
  case Value::Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &M : V.members()) {
      if (!First)
        Out += ',';
      First = false;
      appendEscaped(Out, M.first);
      Out += ':';
      serializeInto(M.second, Out);
    }
    Out += '}';
    break;
  }
  case Value::Kind::Array: {
    Out += '[';
    bool First = true;
    for (const Value &E : V.elements()) {
      if (!First)
        Out += ',';
      First = false;
      serializeInto(E, Out);
    }
    Out += ']';
    break;
  }
  }
}

std::string Value::serialize() const {
  std::string Out;
  serializeInto(*this, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  Parser(const std::string &Text) : Text(Text) {}

  bool parse(Value &Out) {
    skipWs();
    if (!parseValue(Out, 0))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after JSON value");
    return true;
  }

  std::string error() const { return Error; }

private:
  static constexpr unsigned MaxDepth = 128;

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                                 Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Lit) {
    size_t N = 0;
    while (Lit[N])
      ++N;
    if (Text.compare(Pos, N, Lit) != 0)
      return false;
    Pos += N;
    return true;
  }

  bool parseValue(Value &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    switch (C) {
    case 'n':
      if (!literal("null"))
        return fail("invalid literal");
      Out = Value::null();
      return true;
    case 't':
      if (!literal("true"))
        return fail("invalid literal");
      Out = Value::boolean(true);
      return true;
    case 'f':
      if (!literal("false"))
        return fail("invalid literal");
      Out = Value::boolean(false);
      return true;
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Value::string(std::move(S));
      return true;
    }
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(Value &Out, unsigned Depth) {
    ++Pos; // '{'
    Out = Value::object();
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return fail("expected ':' after object key");
      ++Pos;
      skipWs();
      Value V;
      if (!parseValue(V, Depth + 1))
        return false;
      Out.set(Key, std::move(V));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(Value &Out, unsigned Depth) {
    ++Pos; // '['
    Out = Value::array();
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      Value V;
      if (!parseValue(V, Depth + 1))
        return false;
      Out.push(std::move(V));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  void appendUtf8(std::string &S, unsigned Code) {
    if (Code < 0x80) {
      S += static_cast<char>(Code);
    } else if (Code < 0x800) {
      S += static_cast<char>(0xC0 | (Code >> 6));
      S += static_cast<char>(0x80 | (Code & 0x3F));
    } else if (Code < 0x10000) {
      S += static_cast<char>(0xE0 | (Code >> 12));
      S += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      S += static_cast<char>(0x80 | (Code & 0x3F));
    } else {
      S += static_cast<char>(0xF0 | (Code >> 18));
      S += static_cast<char>(0x80 | ((Code >> 12) & 0x3F));
      S += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      S += static_cast<char>(0x80 | (Code & 0x3F));
    }
  }

  bool parseHex4(unsigned &Out) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      char C = Text[Pos++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= static_cast<unsigned>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= static_cast<unsigned>(C - 'A' + 10);
      else
        return fail("invalid \\u escape");
    }
    return true;
  }

  bool parseString(std::string &S) {
    ++Pos; // '"'
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        S += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        S += '"';
        break;
      case '\\':
        S += '\\';
        break;
      case '/':
        S += '/';
        break;
      case 'n':
        S += '\n';
        break;
      case 'r':
        S += '\r';
        break;
      case 't':
        S += '\t';
        break;
      case 'b':
        S += '\b';
        break;
      case 'f':
        S += '\f';
        break;
      case 'u': {
        unsigned Code = 0;
        if (!parseHex4(Code))
          return false;
        if (Code >= 0xD800 && Code <= 0xDBFF) {
          // High surrogate: require a low surrogate to follow.
          if (Pos + 1 < Text.size() && Text[Pos] == '\\' &&
              Text[Pos + 1] == 'u') {
            Pos += 2;
            unsigned Low = 0;
            if (!parseHex4(Low))
              return false;
            if (Low < 0xDC00 || Low > 0xDFFF)
              return fail("invalid low surrogate");
            Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
          } else {
            return fail("lone high surrogate");
          }
        } else if (Code >= 0xDC00 && Code <= 0xDFFF) {
          return fail("lone low surrogate");
        }
        appendUtf8(S, Code);
        break;
      }
      default:
        return fail("invalid escape character");
      }
    }
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    bool Digits = false;
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9') {
      ++Pos;
      Digits = true;
    }
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9') {
        ++Pos;
        Digits = true;
      }
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      bool ExpDigits = false;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9') {
        ++Pos;
        ExpDigits = true;
      }
      if (!ExpDigits)
        return fail("invalid number exponent");
    }
    if (!Digits) {
      Pos = Start;
      return fail("invalid value");
    }
    Out = Value::number(strtod(Text.c_str() + Start, nullptr));
    return true;
  }

  const std::string &Text;
  size_t Pos = 0;
  std::string Error;
};

} // namespace

Value Value::parse(const std::string &Text, std::string &Error) {
  Parser P(Text);
  Value V;
  if (!P.parse(V)) {
    Error = P.error();
    return Value::null();
  }
  Error.clear();
  return V;
}
