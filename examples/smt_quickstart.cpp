//===- examples/smt_quickstart.cpp - Using the SMT layer directly ----------===//
//
// Part of the IDSVerify project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver substrate is a reusable library: quantifier-free EUF +
/// linear arithmetic + generalized arrays/sets. This example decides the
/// paper's parameterized-map-update frame property (Appendix A.3) and a
/// rank-midpoint repair query directly at the API level.
///
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"
#include "smt/TermPrinter.h"

#include <cstdio>

using namespace ids;
using namespace ids::smt;

int main() {
  TermManager TM;

  // Frame property: M' = pwIte(Mod, H, M), o not in Mod => M'[o] = M[o].
  const Sort *ArrS = TM.getArraySort(TM.locSort(), TM.intSort());
  const Sort *SetS = TM.getArraySort(TM.locSort(), TM.boolSort());
  TermRef M = TM.mkVar("M", ArrS);
  TermRef H = TM.mkVar("H", ArrS);
  TermRef Mod = TM.mkVar("Mod", SetS);
  TermRef O = TM.mkVar("o", TM.locSort());
  TermRef Claim = TM.mkImplies(
      TM.mkNot(TM.mkMember(O, Mod)),
      TM.mkEq(TM.mkSelect(TM.mkPwIte(Mod, H, M), O), TM.mkSelect(M, O)));
  {
    Solver S(TM);
    Solver::Result R = S.checkSat(TM.mkNot(Claim));
    printf("frame property of parameterized map updates: %s\n",
           R == Solver::Result::Unsat ? "VALID" : "not valid?!");
  }

  // Rank repair: rank(z) = (rank(x)+rank(y))/2 with rank(x) < rank(y)
  // puts z strictly between x and y (the Figure 7 repair).
  TermRef RX = TM.mkVar("rank_x", TM.ratSort());
  TermRef RY = TM.mkVar("rank_y", TM.ratSort());
  TermRef RZ = TM.mkMulConst(Rational(1, 2), TM.mkAdd(RX, RY));
  TermRef RankClaim =
      TM.mkImplies(TM.mkLt(RX, RY),
                   TM.mkAnd(TM.mkLt(RX, RZ), TM.mkLt(RZ, RY)));
  {
    Solver S(TM);
    printf("rank midpoint strictly between: %s\n",
           S.checkSat(TM.mkNot(RankClaim)) == Solver::Result::Unsat
               ? "VALID"
               : "not valid?!");
  }

  // A satisfiable set constraint, with its model.
  TermRef A = TM.mkVar("A", SetS);
  TermRef X = TM.mkVar("x", TM.locSort());
  TermRef F = TM.mkAnd(
      {TM.mkMember(X, A), TM.mkNot(TM.mkEq(A, TM.mkEmptySet(TM.locSort()))),
       TM.mkDistinct(X, TM.mkNil())});
  Solver S(TM);
  if (S.checkSat(F) == Solver::Result::Sat) {
    printf("satisfiable; model:\n%s", S.model().toString().c_str());
  }
  return 0;
}
